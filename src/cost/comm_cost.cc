#include "cost/comm_cost.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace fastt {

void CommCostModel::AddSample(DeviceId src, DeviceId dst, int64_t bytes,
                              double duration_s) {
  models_[{src, dst}].Add(static_cast<double>(bytes), duration_s);
  ++version_;
}

void CommCostModel::AddProfile(const RunProfile& profile) {
  for (const CommProfile& t : profile.transfers)
    AddSample(t.src, t.dst, t.bytes, t.duration_s);
}

double CommCostModel::Estimate(DeviceId src, DeviceId dst,
                               int64_t bytes) const {
  if (src == dst) return 0.0;
  auto it = models_.find({src, dst});
  if (it == models_.end()) return 0.0;  // unknown pair: explore
  return std::max(0.0, it->second.Predict(static_cast<double>(bytes)));
}

double CommCostModel::MaxOverPairs(int64_t bytes) const {
  double best = 0.0;
  for (const auto& [pair, model] : models_)
    best = std::max(best,
                    std::max(0.0, model.Predict(static_cast<double>(bytes))));
  return best;
}

bool CommCostModel::KnowsPair(DeviceId src, DeviceId dst) const {
  return models_.find({src, dst}) != models_.end();
}

std::optional<std::pair<double, double>> CommCostModel::InterceptSlope(
    DeviceId src, DeviceId dst) const {
  auto it = models_.find({src, dst});
  if (it == models_.end()) return std::nullopt;
  return std::make_pair(it->second.intercept(), it->second.slope());
}

std::optional<CommCostModel::PairFit> CommCostModel::Fit(DeviceId src,
                                                         DeviceId dst) const {
  auto it = models_.find({src, dst});
  if (it == models_.end()) return std::nullopt;
  PairFit fit;
  fit.intercept = it->second.intercept();
  fit.slope = it->second.slope();
  fit.r2 = it->second.r_squared();
  fit.samples = it->second.count();
  return fit;
}

std::vector<std::pair<DeviceId, DeviceId>> CommCostModel::KnownPairs() const {
  std::vector<std::pair<DeviceId, DeviceId>> pairs;
  pairs.reserve(models_.size());
  for (const auto& [pair, model] : models_) pairs.push_back(pair);
  return pairs;
}

std::string CommCostModel::Serialize() const {
  std::string out;
  for (const auto& [pair, model] : models_) {
    out += StrFormat("%d\t%d\t%.17e\t%.17e\n", pair.first, pair.second,
                     model.intercept(), model.slope());
  }
  return out;
}

CommCostModel CommCostModel::Deserialize(const std::string& text) {
  CommCostModel model;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    DeviceId src = 0, dst = 0;
    double intercept = 0.0, slope = 0.0;
    ls >> src >> dst >> intercept >> slope;
    // Two synthetic samples on the fitted line reconstruct it exactly.
    model.AddSample(src, dst, 0, intercept);
    model.AddSample(src, dst, 1 << 20, intercept + slope * (1 << 20));
  }
  return model;
}

}  // namespace fastt
