// Online simple linear regression y = a + b·x.
//
// The paper fits, per source-destination device pair, a linear model of
// tensor size vs. transfer time; "in each update of the cost model, newly
// collected data are fed and parameters of the linear model are re-computed".
// We keep sufficient statistics so refits are O(1).
#pragma once

#include <cstddef>

namespace fastt {

class LinearRegression {
 public:
  void Add(double x, double y);

  size_t count() const { return n_; }
  // Intercept / slope of the least-squares fit. With one sample the model is
  // the constant y; with zero samples both are 0.
  double intercept() const;
  double slope() const;
  double Predict(double x) const;
  // Coefficient of determination of the fit against its own samples:
  // squared correlation of x and y. 1 when the responses have no variance
  // left to explain (0 or 1 samples, or all y equal); 0 when x is constant
  // but y is not (the fit degenerates to the mean).
  double r_squared() const;

 private:
  size_t n_ = 0;
  double sum_x_ = 0.0, sum_y_ = 0.0, sum_xx_ = 0.0, sum_xy_ = 0.0;
  double sum_yy_ = 0.0;
};

}  // namespace fastt
