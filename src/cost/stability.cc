#include "cost/stability.h"

#include <cmath>
#include <limits>

#include "util/strings.h"

namespace fastt {

double StabilityDetector::Observe(const CompCostModel& model,
                                  int32_t num_devices,
                                  const std::vector<std::string>& keys) {
  double max_change = 0.0;
  bool new_entry = false;
  std::unordered_map<std::string, double> current;
  for (const std::string& key : keys) {
    for (DeviceId d = 0; d < num_devices; ++d) {
      auto value = model.Lookup(key, d);
      if (!value) continue;
      const std::string entry = key + "@" + StrFormat("%d", d);
      current[entry] = *value;
      auto it = last_.find(entry);
      if (it == last_.end()) {
        new_entry = true;
      } else if (it->second > 0.0) {
        max_change =
            std::max(max_change, std::fabs(*value - it->second) / it->second);
      }
    }
  }
  last_ = std::move(current);
  if (new_entry) {
    stable_rounds_ = 0;
    return std::numeric_limits<double>::infinity();
  }
  if (max_change <= tolerance_) {
    ++stable_rounds_;
  } else {
    stable_rounds_ = 0;
  }
  return max_change;
}

}  // namespace fastt
