#include "cost/stability.h"

#include <cmath>
#include <limits>
#include <vector>

#include "util/stats.h"
#include "util/strings.h"

namespace fastt {

double StabilityDetector::Observe(const CompCostModel& model,
                                  int32_t num_devices,
                                  const std::vector<std::string>& keys) {
  bool new_entry = false;
  std::vector<double> changes;
  std::unordered_map<std::string, double> current;
  for (const std::string& key : keys) {
    for (DeviceId d = 0; d < num_devices; ++d) {
      auto value = model.Lookup(key, d);
      if (!value) continue;
      const std::string entry = key + "@" + StrFormat("%d", d);
      current[entry] = *value;
      auto it = last_.find(entry);
      if (it == last_.end()) {
        new_entry = true;
      } else if (it->second > 0.0) {
        changes.push_back(std::fabs(*value - it->second) / it->second);
      }
    }
  }
  last_ = std::move(current);

  StabilityStats stats;
  stats.entries = static_cast<int>(changes.size());
  stats.mean_change = Mean(changes);
  stats.stddev_change = Stddev(changes);
  stats.tolerance = tolerance_;
  stats.patience = patience_;
  stats.new_entries = new_entry;
  if (new_entry) {
    stable_rounds_ = 0;
    stats.max_change = std::numeric_limits<double>::infinity();
    stats.margin = -std::numeric_limits<double>::infinity();
  } else {
    stats.max_change = changes.empty() ? 0.0 : Max(changes);
    stats.margin = tolerance_ - stats.max_change;
    if (stats.max_change <= tolerance_) {
      ++stable_rounds_;
    } else {
      stable_rounds_ = 0;
    }
  }
  stats.stable_rounds = stable_rounds_;
  last_stats_ = stats;
  return stats.max_change;
}

}  // namespace fastt
