#include "cost/linreg.h"

#include <cmath>

namespace fastt {

void LinearRegression::Add(double x, double y) {
  ++n_;
  sum_x_ += x;
  sum_y_ += y;
  sum_xx_ += x * x;
  sum_xy_ += x * y;
  sum_yy_ += y * y;
}

double LinearRegression::r_squared() const {
  if (n_ < 2) return 1.0;
  const double n = static_cast<double>(n_);
  const double sxx = sum_xx_ - sum_x_ * sum_x_ / n;
  const double syy = sum_yy_ - sum_y_ * sum_y_ / n;
  if (syy <= 1e-30 * (1.0 + sum_yy_)) return 1.0;  // nothing to explain
  if (sxx <= 1e-12 * (1.0 + sum_xx_)) return 0.0;  // constant-x degenerate
  const double sxy = sum_xy_ - sum_x_ * sum_y_ / n;
  const double r2 = (sxy * sxy) / (sxx * syy);
  return r2 > 1.0 ? 1.0 : (r2 < 0.0 ? 0.0 : r2);
}

double LinearRegression::slope() const {
  if (n_ < 2) return 0.0;
  const double n = static_cast<double>(n_);
  const double denom = n * sum_xx_ - sum_x_ * sum_x_;
  // All samples at (numerically) the same x: fall back to a constant model.
  if (std::fabs(denom) < 1e-12 * (1.0 + sum_xx_ * n)) return 0.0;
  return (n * sum_xy_ - sum_x_ * sum_y_) / denom;
}

double LinearRegression::intercept() const {
  if (n_ == 0) return 0.0;
  const double n = static_cast<double>(n_);
  return (sum_y_ - slope() * sum_x_) / n;
}

double LinearRegression::Predict(double x) const {
  return intercept() + slope() * x;
}

}  // namespace fastt
