#include "cost/linreg.h"

#include <cmath>

namespace fastt {

void LinearRegression::Add(double x, double y) {
  ++n_;
  sum_x_ += x;
  sum_y_ += y;
  sum_xx_ += x * x;
  sum_xy_ += x * y;
}

double LinearRegression::slope() const {
  if (n_ < 2) return 0.0;
  const double n = static_cast<double>(n_);
  const double denom = n * sum_xx_ - sum_x_ * sum_x_;
  // All samples at (numerically) the same x: fall back to a constant model.
  if (std::fabs(denom) < 1e-12 * (1.0 + sum_xx_ * n)) return 0.0;
  return (n * sum_xy_ - sum_x_ * sum_y_) / denom;
}

double LinearRegression::intercept() const {
  if (n_ == 0) return 0.0;
  const double n = static_cast<double>(n_);
  return (sum_y_ - slope() * sum_x_) / n;
}

double LinearRegression::Predict(double x) const {
  return intercept() + slope() * x;
}

}  // namespace fastt
