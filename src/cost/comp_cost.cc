#include "cost/comp_cost.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/strings.h"

namespace fastt {

void CompCostModel::AddSample(const std::string& cost_key, DeviceId device,
                              double duration_s) {
  entries_[cost_key].by_device[device].Add(duration_s);
  ++version_;
}

void CompCostModel::AddProfile(const RunProfile& profile) {
  for (const OpProfile& p : profile.ops)
    AddSample(p.cost_key, p.device, p.duration_s);
}

std::optional<double> CompCostModel::Lookup(const std::string& cost_key,
                                            DeviceId device) const {
  auto it = entries_.find(cost_key);
  if (it == entries_.end()) return std::nullopt;
  auto jt = it->second.by_device.find(device);
  if (jt == it->second.by_device.end()) return std::nullopt;
  return jt->second.mean();
}

double CompCostModel::EstimateOrExplore(const Operation& op,
                                        DeviceId device) const {
  if (auto exact = Lookup(op.CostKey(), device)) return *exact;
  if (!op.cost_basis_key.empty()) {
    if (auto basis = Lookup(op.cost_basis_key, device))
      return *basis * op.cost_scale;
  }
  return 0.0;  // unknown: explore
}

double CompCostModel::MaxTimeOverDevices(const Operation& op,
                                         int32_t num_devices) const {
  double best = 0.0;
  for (DeviceId d = 0; d < num_devices; ++d)
    best = std::max(best, EstimateOrExplore(op, d));
  return best;
}

bool CompCostModel::Knows(const std::string& cost_key) const {
  auto it = entries_.find(cost_key);
  return it != entries_.end() && !it->second.by_device.empty();
}

size_t CompCostModel::num_entries() const {
  size_t n = 0;
  // Order-independent integer sum: hash order cannot affect the result.
  for (const auto& [key, per] : entries_) n += per.by_device.size();  // NOLINT(fastt-D1)
  return n;
}

void CompCostModel::Clear() {
  entries_.clear();
  ++version_;
}

std::string CompCostModel::Serialize() const {
  // entries_ and by_device are hash maps; a direct walk would serialize in
  // hash order, making the bytes depend on insertion history and standard
  // library version. Emit a sorted snapshot so the artifact is stable.
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  // Hash-order visit is confined to collecting keys for the sort below.
  for (const auto& [key, per] : entries_) keys.push_back(key);  // NOLINT(fastt-D1)
  std::sort(keys.begin(), keys.end());
  std::string out;
  for (const std::string& key : keys) {
    const PerDevice& per = entries_.at(key);
    std::vector<DeviceId> devices;
    devices.reserve(per.by_device.size());
    for (const auto& [device, mean] : per.by_device)  // NOLINT(fastt-D1)
      devices.push_back(device);
    std::sort(devices.begin(), devices.end());
    for (DeviceId device : devices) {
      const OnlineMean& mean = per.by_device.at(device);
      out += StrFormat("%s\t%d\t%.9e\t%zu\n", key.c_str(), device,
                       mean.mean(), mean.count());
    }
  }
  return out;
}

CompCostModel CompCostModel::Deserialize(const std::string& text) {
  CompCostModel model;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    int device = 0;
    double mean = 0.0;
    size_t count = 0;
    std::getline(ls, key, '\t');
    ls >> device >> mean >> count;
    // Replay the mean `count` times: reconstructs mean exactly (variance is
    // not persisted — acceptable; only means feed the scheduler).
    for (size_t i = 0; i < count; ++i)
      model.AddSample(key, device, mean);
  }
  return model;
}

}  // namespace fastt
