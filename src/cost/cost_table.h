// Dense, read-mostly snapshots of the adaptive cost models.
//
// The cost models are keyed by strings (computation) and map lookups
// (communication) — fine for incremental updates from profiles, but the
// search interrogates them millions of times: every DPOS queue pop scores
// every candidate device, and OS-DPOS reschedules whole trial graphs per
// split probe. A table is built once per scheduler invocation (one string
// lookup per (op, device) and one map lookup per device pair), after which
// every query is an array read. Tables are immutable after construction, so
// the parallel search reads them from many threads without synchronization,
// and each carries the model version it was built from so stale snapshots
// are detectable after a profiling round feeds the models.
#pragma once

#include <cstdint>
#include <vector>

#include "cost/comm_cost.h"
#include "cost/comp_cost.h"
#include "graph/graph.h"
#include "util/memtrack.h"

namespace fastt {

// EstimateOrExplore for every (op slot, device) of one graph.
class CompCostTable {
 public:
  CompCostTable() = default;
  CompCostTable(const Graph& g, const CompCostModel& model,
                int32_t num_devices);

  // EstimateOrExplore(g.op(op), device), as an array read.
  double Time(OpId op, DeviceId device) const {
    return times_[static_cast<size_t>(op) * static_cast<size_t>(num_devices_) +
                  static_cast<size_t>(device)];
  }
  // MaxTimeOverDevices — the w_i term in rank_u.
  double MaxOverDevices(OpId op) const {
    return max_time_[static_cast<size_t>(op)];
  }

  int32_t num_devices() const { return num_devices_; }
  int32_t num_slots() const { return num_slots_; }
  // Version of the computation model this snapshot was built from.
  uint64_t model_version() const { return model_version_; }
  // True iff the snapshot still reflects `model` for a graph of this shape.
  bool Fresh(const Graph& g, const CompCostModel& model) const;

 private:
  int32_t num_devices_ = 0;
  int32_t num_slots_ = 0;
  uint64_t model_version_ = 0;
  // Snapshot storage is charged to MemTag::kCost wherever it is built.
  TaggedVector<double> times_{
      TaggedAlloc<double>(MemTag::kCost)};  // num_slots × num_devices
  TaggedVector<double> max_time_{TaggedAlloc<double>(MemTag::kCost)};
};

// Fitted (intercept, slope) for every ordered device pair.
class CommCostTable {
 public:
  CommCostTable() = default;
  CommCostTable(const CommCostModel& model, int32_t num_devices);

  // CommCostModel::Estimate, as arithmetic on snapshotted parameters.
  double Estimate(DeviceId src, DeviceId dst, int64_t bytes) const {
    if (src == dst) return 0.0;
    const Pair& p = pairs_[static_cast<size_t>(src) *
                               static_cast<size_t>(num_devices_) +
                           static_cast<size_t>(dst)];
    if (!p.known) return 0.0;  // unknown pair: explore
    const double t = p.intercept + p.slope * static_cast<double>(bytes);
    return t > 0.0 ? t : 0.0;
  }
  // CommCostModel::MaxOverPairs — the c_{i,j} term in rank_u.
  double MaxOverPairs(int64_t bytes) const;

  int32_t num_devices() const { return num_devices_; }
  uint64_t model_version() const { return model_version_; }
  bool Fresh(const CommCostModel& model) const;

 private:
  struct Pair {
    double intercept = 0.0;
    double slope = 0.0;
    bool known = false;
  };
  int32_t num_devices_ = 0;
  uint64_t model_version_ = 0;
  TaggedVector<Pair> pairs_{
      TaggedAlloc<Pair>(MemTag::kCost)};  // num_devices × num_devices
  // Dense list for MaxOverPairs.
  TaggedVector<Pair> known_pairs_{TaggedAlloc<Pair>(MemTag::kCost)};
};

}  // namespace fastt
