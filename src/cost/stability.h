// Pre-training termination rule (paper §4): "when the cost models become
// stable (the average time of the same (sub-)operation(s) on the same
// device(s) does not vary much), we finish the pre-training stage."
//
// The detector snapshots the per-entry means each round and reports stability
// once the maximal relative change between consecutive snapshots stays below
// a tolerance for `patience` rounds.
#pragma once

#include <string>
#include <unordered_map>

#include "cost/comp_cost.h"

namespace fastt {

class StabilityDetector {
 public:
  explicit StabilityDetector(double tolerance = 0.05, int patience = 2)
      : tolerance_(tolerance), patience_(patience) {}

  // Feed the current model state; returns the max relative change vs. the
  // previous snapshot (infinity on first call or when new keys appeared).
  double Observe(const CompCostModel& model, int32_t num_devices,
                 const std::vector<std::string>& keys);

  bool IsStable() const { return stable_rounds_ >= patience_; }
  int stable_rounds() const { return stable_rounds_; }

 private:
  double tolerance_;
  int patience_;
  int stable_rounds_ = 0;
  std::unordered_map<std::string, double> last_;
};

}  // namespace fastt
