// Pre-training termination rule (paper §4): "when the cost models become
// stable (the average time of the same (sub-)operation(s) on the same
// device(s) does not vary much), we finish the pre-training stage."
//
// The detector snapshots the per-entry means each round and reports stability
// once the maximal relative change between consecutive snapshots stays below
// a tolerance for `patience` rounds. Beyond the boolean stop signal it keeps
// the window statistics of the latest observation (max/mean/stddev of the
// per-entry relative changes, and the margin to the tolerance), so the
// calibration report and the event log can show *how close* each round was
// to stability rather than just whether it stopped.
#pragma once

#include <limits>
#include <string>
#include <unordered_map>

#include "cost/comp_cost.h"

namespace fastt {

// Statistics of one Observe() call: how the tracked cost-model entries moved
// relative to the previous snapshot.
struct StabilityStats {
  int entries = 0;  // (cost key, device) pairs compared against the snapshot
  // Relative changes |new - old| / old over the compared entries. max_change
  // is infinity on the first observation or when new entries appeared.
  double max_change = std::numeric_limits<double>::infinity();
  double mean_change = 0.0;
  double stddev_change = 0.0;
  double tolerance = 0.0;
  // tolerance - max_change: how much headroom the round had. Negative while
  // the models are still moving; -infinity when new entries reset the clock.
  double margin = -std::numeric_limits<double>::infinity();
  bool new_entries = true;  // unseen (key, device) pairs appeared this round
  int stable_rounds = 0;
  int patience = 0;
};

class StabilityDetector {
 public:
  explicit StabilityDetector(double tolerance = 0.05, int patience = 2)
      : tolerance_(tolerance), patience_(patience) {}

  // Feed the current model state; returns the max relative change vs. the
  // previous snapshot (infinity on first call or when new keys appeared).
  double Observe(const CompCostModel& model, int32_t num_devices,
                 const std::vector<std::string>& keys);

  bool IsStable() const { return stable_rounds_ >= patience_; }
  int stable_rounds() const { return stable_rounds_; }
  double tolerance() const { return tolerance_; }
  int patience() const { return patience_; }

  // Window statistics of the most recent Observe() (default-initialized —
  // max_change infinite, zero entries — before the first call).
  const StabilityStats& last_stats() const { return last_stats_; }

 private:
  double tolerance_;
  int patience_;
  int stable_rounds_ = 0;
  StabilityStats last_stats_;
  std::unordered_map<std::string, double> last_;
};

}  // namespace fastt
