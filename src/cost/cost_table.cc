#include "cost/cost_table.h"

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace fastt {

CompCostTable::CompCostTable(const Graph& g, const CompCostModel& model,
                             int32_t num_devices)
    : num_devices_(num_devices),
      num_slots_(g.num_slots()),
      model_version_(model.version()) {
  FASTT_TRACE_SPAN("cost/comp_table");
  const size_t slots = static_cast<size_t>(num_slots_);
  const size_t devs = static_cast<size_t>(num_devices_);
  times_.assign(slots * devs, 0.0);
  max_time_.assign(slots, 0.0);
  int64_t unknown = 0;  // explore-at-zero entries: no profile, no basis
  for (OpId id = 0; id < num_slots_; ++id) {
    const Operation& op = g.op(id);
    if (op.dead) continue;
    double best = 0.0;
    for (DeviceId d = 0; d < num_devices_; ++d) {
      const double t = model.EstimateOrExplore(op, d);
      if (t == 0.0) ++unknown;
      times_[static_cast<size_t>(id) * devs + static_cast<size_t>(d)] = t;
      best = t > best ? t : best;
    }
    max_time_[static_cast<size_t>(id)] = best;
  }
  CurrentMetrics().AddCounter("cost/comp_table_builds");
  if (unknown > 0) {
    CurrentMetrics().AddCounter("cost/comp_table_unknown_entries",
                                         unknown);
    FASTT_TRACE_INSTANT("cost/comp_table_unknown", unknown);
  }
}

bool CompCostTable::Fresh(const Graph& g, const CompCostModel& model) const {
  return model_version_ == model.version() && num_slots_ == g.num_slots();
}

CommCostTable::CommCostTable(const CommCostModel& model, int32_t num_devices)
    : num_devices_(num_devices), model_version_(model.version()) {
  FASTT_TRACE_SPAN("cost/comm_table");
  pairs_.assign(static_cast<size_t>(num_devices_) *
                    static_cast<size_t>(num_devices_),
                Pair{});
  int64_t unknown = 0;  // pairs with no regression yet (treated as free)
  for (DeviceId src = 0; src < num_devices_; ++src) {
    for (DeviceId dst = 0; dst < num_devices_; ++dst) {
      if (src == dst) continue;
      if (auto fit = model.InterceptSlope(src, dst)) {
        Pair& p = pairs_[static_cast<size_t>(src) *
                             static_cast<size_t>(num_devices_) +
                         static_cast<size_t>(dst)];
        p.intercept = fit->first;
        p.slope = fit->second;
        p.known = true;
        known_pairs_.push_back(p);
      } else {
        ++unknown;
      }
    }
  }
  CurrentMetrics().AddCounter("cost/comm_table_builds");
  if (unknown > 0) {
    CurrentMetrics().AddCounter("cost/comm_table_unknown_pairs",
                                         unknown);
    FASTT_TRACE_INSTANT("cost/comm_table_unknown", unknown);
  }
}

double CommCostTable::MaxOverPairs(int64_t bytes) const {
  double best = 0.0;
  for (const Pair& p : known_pairs_) {
    const double t = p.intercept + p.slope * static_cast<double>(bytes);
    best = t > best ? t : best;
  }
  return best;
}

bool CommCostTable::Fresh(const CommCostModel& model) const {
  return model_version_ == model.version();
}

}  // namespace fastt
