// Communication cost model: per ordered device pair, a linear model of tensor
// size → transfer time, fitted from profiled transfers (paper §4, "Cost
// Models"). The fitted intercept absorbs link latency and the slope the
// inverse effective bandwidth, including whatever congestion the profiles saw.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cost/linreg.h"
#include "sim/device.h"
#include "sim/profiler.h"

namespace fastt {

class CommCostModel {
 public:
  void AddSample(DeviceId src, DeviceId dst, int64_t bytes,
                 double duration_s);
  void AddProfile(const RunProfile& profile);

  // Estimated transfer time of `bytes` from src to dst. Same device → 0.
  // Unknown pair → 0 (explore, mirroring the computation model's rule).
  double Estimate(DeviceId src, DeviceId dst, int64_t bytes) const;

  // Maximal estimated transfer time of `bytes` over all known ordered pairs —
  // the c_{i,j} term in rank_u (paper uses the max over device pairs).
  double MaxOverPairs(int64_t bytes) const;

  bool KnowsPair(DeviceId src, DeviceId dst) const;
  size_t num_pairs() const { return models_.size(); }
  void Clear() {
    models_.clear();
    ++version_;
  }

  // Monotonic mutation counter (see CompCostModel::version).
  uint64_t version() const { return version_; }

  // Fitted parameters for inspection/tests.
  std::optional<std::pair<double, double>> InterceptSlope(DeviceId src,
                                                          DeviceId dst) const;

  // Full fit diagnostics of one pair's regression — what the calibration
  // report tracks round over round (parameter drift, fit quality).
  struct PairFit {
    double intercept = 0.0;
    double slope = 0.0;
    double r2 = 0.0;     // fit against the pair's own profiled samples
    size_t samples = 0;  // transfers the regression has absorbed
  };
  std::optional<PairFit> Fit(DeviceId src, DeviceId dst) const;
  // Every fitted ordered pair, in (src, dst) order.
  std::vector<std::pair<DeviceId, DeviceId>> KnownPairs() const;

  // Text (de)serialization: one "src<TAB>dst<TAB>intercept<TAB>slope" line
  // per pair (checkpoint parity with CompCostModel; the fitted line, not
  // the raw samples, is what the scheduler consumes).
  std::string Serialize() const;
  static CommCostModel Deserialize(const std::string& text);

 private:
  std::map<std::pair<DeviceId, DeviceId>, LinearRegression> models_;
  uint64_t version_ = 0;
};

}  // namespace fastt
