// Computation cost model: (operation cost-key, device) → execution time.
//
// Built from profiles, never from ground truth. Queries follow the paper's
// exploration rule: "when our algorithm finds a cost it needs is not in the
// cost model, it sets the cost to 0, so that the algorithm prefers to explore
// the placement" — the next profiled run then records the real cost. For
// sub-ops created by hypothetical splits (OS-DPOS probes dozens of candidate
// rewrites per decision) we additionally support a recorded fallback (parent
// key × fractional scale), which plays the role of the extra profiled
// iterations the paper spends before a split's costs are known.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/operation.h"
#include "sim/device.h"
#include "sim/profiler.h"
#include "util/stats.h"

namespace fastt {

class CompCostModel {
 public:
  // Record one observed execution.
  void AddSample(const std::string& cost_key, DeviceId device,
                 double duration_s);
  void AddProfile(const RunProfile& profile);

  // Mean observed time of this key on this device, if any sample exists.
  std::optional<double> Lookup(const std::string& cost_key,
                               DeviceId device) const;

  // Cost used by the scheduler for a concrete (op, device):
  //   1. exact (key, device) profile;
  //   2. op.cost_basis_key profile on that device × op.cost_scale;
  //   3. 0 — explore (paper's rule).
  double EstimateOrExplore(const Operation& op, DeviceId device) const;

  // Maximal estimated time of the op over the given devices — the w_i term in
  // rank_u. Zero if nothing is known anywhere.
  double MaxTimeOverDevices(const Operation& op, int32_t num_devices) const;

  // True if any device has a sample for this key.
  bool Knows(const std::string& cost_key) const;

  size_t num_entries() const;
  void Clear();

  // Monotonic mutation counter: bumped by every AddSample/Clear. Dense
  // snapshots (CompCostTable) record it so staleness after a profiling
  // round is detectable.
  uint64_t version() const { return version_; }

  // Text (de)serialization: one "key<TAB>device<TAB>mean<TAB>count" per line.
  std::string Serialize() const;
  static CompCostModel Deserialize(const std::string& text);

 private:
  struct PerDevice {
    std::unordered_map<DeviceId, OnlineMean> by_device;
  };
  std::unordered_map<std::string, PerDevice> entries_;
  uint64_t version_ = 0;
};

}  // namespace fastt
