#include "models/builder.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace fastt {
namespace {

constexpr int64_t kF32 = 4;  // bytes per element

// Spatial output size under TF "SAME"/"VALID" padding.
int64_t ConvOut(int64_t in, int kernel, int stride, bool same) {
  if (same) return (in + stride - 1) / stride;
  return (in - kernel) / stride + 1;
}

}  // namespace

ModelBuilder::ModelBuilder(Graph& graph, std::string prefix, int64_t batch)
    : graph_(graph), prefix_(std::move(prefix)), batch_(batch) {
  FASTT_CHECK(batch_ >= 1);
}

std::string ModelBuilder::Name(const std::string& suffix) const {
  return prefix_.empty() ? suffix : prefix_ + "/" + suffix;
}

const TensorShape& ModelBuilder::shape_of(OpId op) const {
  return graph_.op(op).output_shape;
}

OpId ModelBuilder::AddForwardOp(const std::string& name, OpType type,
                                TensorShape shape, double flops,
                                int64_t bytes_touched, int64_t param_bytes,
                                const std::vector<OpId>& data_preds,
                                const std::vector<int64_t>& pred_bytes) {
  Operation op;
  op.name = Name(name);
  op.cost_key = name;  // replicas share cost-model entries
  op.type = type;
  op.output_shape = std::move(shape);
  op.flops = flops;
  op.bytes_touched = bytes_touched;
  op.param_bytes = param_bytes;
  op.batch = op.output_shape.rank() > 0 ? op.output_shape.dim(0) : 0;
  op.channels = op.output_shape.rank() > 1
                    ? op.output_shape.dim(op.output_shape.rank() - 1)
                    : 0;
  const OpId id = graph_.AddOp(std::move(op));
  for (size_t i = 0; i < data_preds.size(); ++i) {
    const int64_t bytes =
        i < pred_bytes.size() ? pred_bytes[i] : int64_t{-1};
    graph_.AddEdge(data_preds[i], id, bytes);
  }
  forward_ops_.push_back(id);
  return id;
}

void ModelBuilder::RegisterGrad(OpId op, GradInfo info) {
  grad_info_[op] = std::move(info);
}

OpId ModelBuilder::AddVariable(const std::string& name, int64_t param_bytes) {
  Operation op;
  op.name = Name(name);
  op.cost_key = name;
  op.type = OpType::kVariable;
  op.output_shape = TensorShape{param_bytes / 4};
  // The output tensor IS the parameter storage; it stays resident until the
  // last (backward) consumer releases it. bytes_touched stays 0: reading
  // resident weights on their own device is free.
  const OpId id = graph_.AddOp(std::move(op));
  forward_ops_.push_back(id);
  return id;
}

OpId ModelBuilder::Input(const std::string& name, TensorShape shape,
                         DType dtype) {
  Operation op;
  op.name = Name(name);
  op.cost_key = name;
  op.type = OpType::kInput;
  op.output_shape = std::move(shape);
  op.dtype = dtype;
  op.bytes_touched = op.output_bytes();
  op.batch = op.output_shape.rank() > 0 ? op.output_shape.dim(0) : 0;
  const OpId id = graph_.AddOp(std::move(op));
  forward_ops_.push_back(id);
  return id;
}

OpId ModelBuilder::Conv2D(const std::string& name, OpId in, int kernel,
                          int out_channels, int stride, int padding_same) {
  return Conv2DRect(name, in, kernel, kernel, out_channels, stride,
                    padding_same != 0);
}

OpId ModelBuilder::Conv2DRect(const std::string& name, OpId in, int kh,
                              int kw, int out_channels, int stride,
                              bool padding_same) {
  const TensorShape& is = shape_of(in);
  FASTT_CHECK_MSG(is.rank() == 4, "Conv2D input must be NHWC: " + name);
  const int64_t b = is.dim(0), h = is.dim(1), w = is.dim(2), cin = is.dim(3);
  const int64_t ho = ConvOut(h, kh, stride, padding_same);
  const int64_t wo = ConvOut(w, kw, stride, padding_same);
  const TensorShape out{b, ho, wo, out_channels};
  const double flops = 2.0 * static_cast<double>(b * ho * wo) *
                       kh * kw * static_cast<double>(cin) * out_channels;
  const int64_t weights =
      (int64_t{kh} * kw * cin * out_channels + out_channels) * kF32;
  const int64_t bytes = is.ByteSize(DType::kF32) + out.ByteSize(DType::kF32) +
                        weights;
  const OpId var = AddVariable(name + "/weights", weights);
  const OpId id = AddForwardOp(name, OpType::kConv2D, out, flops, bytes, 0,
                               {in, var});
  // Winograd-eligible spatial kernels run near peak; 1x1 convs are
  // bandwidth-limited GEMMs.
  graph_.mutable_op(id).efficiency_override = kh * kw >= 9 ? 0.82 : 0.55;
  GradInfo gi;
  // dX reads the filter (the other data input) and the incoming gradient.
  gi.inputs.push_back(InputGradSpec{in, OpType::kConv2DBackpropInput, flops,
                                    bytes, ActNeed::kOtherPredOutput, true,
                                    1.0});
  gi.inputs.push_back(InputGradSpec{var, OpType::kIdentity, 0.0, 0,
                                    ActNeed::kNone, false, 1.0});
  // dW reads the input activation — this keeps it alive until backward.
  gi.wgrad = WGradSpec{true, OpType::kConv2DBackpropFilter, flops, bytes,
                       ActNeed::kPredOutput};
  gi.variable = var;
  RegisterGrad(id, std::move(gi));
  return id;
}

OpId ModelBuilder::Elementwise(const std::string& name, OpType fwd,
                               OpType bwd, OpId in, double byte_factor,
                               ActNeed act) {
  const TensorShape out = shape_of(in);
  const int64_t obytes = out.ByteSize(DType::kF32);
  const int64_t bytes =
      static_cast<int64_t>(byte_factor * static_cast<double>(obytes));
  const OpId id = AddForwardOp(name, fwd, out, 0.0, bytes, 0, {in});
  GradInfo gi;
  gi.inputs.push_back(InputGradSpec{in, bwd, 0.0, bytes + obytes, act, true,
                                    1.0});
  RegisterGrad(id, std::move(gi));
  return id;
}

OpId ModelBuilder::MaxPool(const std::string& name, OpId in, int kernel,
                           int stride) {
  const TensorShape& is = shape_of(in);
  FASTT_CHECK(is.rank() == 4);
  const TensorShape out{is.dim(0), ConvOut(is.dim(1), kernel, stride, false),
                        ConvOut(is.dim(2), kernel, stride, false), is.dim(3)};
  const int64_t bytes =
      is.ByteSize(DType::kF32) + out.ByteSize(DType::kF32);
  const OpId id =
      AddForwardOp(name, OpType::kMaxPool, out, 0.0, bytes, 0, {in});
  GradInfo gi;
  gi.inputs.push_back(InputGradSpec{in, OpType::kMaxPoolGrad, 0.0, 2 * bytes,
                                    ActNeed::kOwnOutput, true, 1.0});
  RegisterGrad(id, std::move(gi));
  return id;
}

OpId ModelBuilder::AvgPool(const std::string& name, OpId in, int kernel,
                           int stride) {
  const TensorShape& is = shape_of(in);
  FASTT_CHECK(is.rank() == 4);
  const TensorShape out{is.dim(0), ConvOut(is.dim(1), kernel, stride, false),
                        ConvOut(is.dim(2), kernel, stride, false), is.dim(3)};
  const int64_t bytes =
      is.ByteSize(DType::kF32) + out.ByteSize(DType::kF32);
  const OpId id =
      AddForwardOp(name, OpType::kAvgPool, out, 0.0, bytes, 0, {in});
  GradInfo gi;
  gi.inputs.push_back(InputGradSpec{in, OpType::kAvgPoolGrad, 0.0, 2 * bytes,
                                    ActNeed::kNone, true, 1.0});
  RegisterGrad(id, std::move(gi));
  return id;
}

OpId ModelBuilder::GlobalAvgPool(const std::string& name, OpId in) {
  const TensorShape& is = shape_of(in);
  FASTT_CHECK(is.rank() == 4);
  const TensorShape out{is.dim(0), is.dim(3)};
  const int64_t bytes = is.ByteSize(DType::kF32);
  const OpId id =
      AddForwardOp(name, OpType::kAvgPool, out, 0.0, bytes, 0, {in});
  GradInfo gi;
  gi.inputs.push_back(InputGradSpec{in, OpType::kAvgPoolGrad, 0.0, bytes,
                                    ActNeed::kNone, true, 1.0});
  RegisterGrad(id, std::move(gi));
  return id;
}

OpId ModelBuilder::Relu(const std::string& name, OpId in) {
  // ReluGrad reads the relu *output*, so the pre-activation dies in forward.
  return Elementwise(name, OpType::kRelu, OpType::kReluGrad, in, 2.0,
                     ActNeed::kOwnOutput);
}

OpId ModelBuilder::BatchNorm(const std::string& name, OpId in) {
  const TensorShape out = shape_of(in);
  const int64_t c = out.dim(out.rank() - 1);
  const int64_t obytes = out.ByteSize(DType::kF32);
  const int64_t weights = 4 * c * kF32;  // scale, offset, moving mean/var
  const OpId var = AddVariable(name + "/weights", weights);
  const OpId id = AddForwardOp(name, OpType::kBatchNorm, out, 0.0,
                               3 * obytes, 0, {in, var});
  GradInfo gi;
  // BN grad re-reads the normalized input: the conv output stays alive.
  gi.inputs.push_back(InputGradSpec{in, OpType::kBatchNormGrad, 0.0,
                                    4 * obytes, ActNeed::kPredOutput, true,
                                    1.0});
  gi.inputs.push_back(InputGradSpec{var, OpType::kIdentity, 0.0, 0,
                                    ActNeed::kNone, false, 1.0});
  gi.wgrad = WGradSpec{true, OpType::kBatchNormGrad, 0.0, obytes,
                       ActNeed::kNone};
  gi.variable = var;
  RegisterGrad(id, std::move(gi));
  return id;
}

OpId ModelBuilder::LRN(const std::string& name, OpId in) {
  return Elementwise(name, OpType::kLRN, OpType::kLRNGrad, in, 3.0,
                     ActNeed::kPredOutput);
}

OpId ModelBuilder::Dropout(const std::string& name, OpId in) {
  // Forward writes output + mask; backward re-reads the mask (own output).
  return Elementwise(name, OpType::kDropout, OpType::kDropoutGrad, in, 2.25,
                     ActNeed::kOwnOutput);
}

OpId ModelBuilder::Add(const std::string& name, OpId a, OpId b) {
  const TensorShape out = shape_of(a);
  const int64_t obytes = out.ByteSize(DType::kF32);
  const OpId id =
      AddForwardOp(name, OpType::kAdd, out, 0.0, 3 * obytes, 0, {a, b});
  GradInfo gi;
  // Residual gradient is the identity toward both inputs.
  gi.inputs.push_back(InputGradSpec{a, OpType::kIdentity, 0.0, 0,
                                    ActNeed::kNone, true, 1.0});
  gi.inputs.push_back(InputGradSpec{b, OpType::kIdentity, 0.0, 0,
                                    ActNeed::kNone, true, 1.0});
  RegisterGrad(id, std::move(gi));
  return id;
}

OpId ModelBuilder::ConcatChannels(const std::string& name,
                                  const std::vector<OpId>& ins) {
  FASTT_CHECK(!ins.empty());
  const TensorShape& first = shape_of(ins[0]);
  FASTT_CHECK(first.rank() >= 2);
  int64_t channels = 0;
  int64_t bytes = 0;
  for (OpId in : ins) {
    const TensorShape& s = shape_of(in);
    channels += s.dim(s.rank() - 1);
    bytes += s.ByteSize(DType::kF32);
  }
  const TensorShape out = first.WithDim(first.rank() - 1, channels);
  const OpId id =
      AddForwardOp(name, OpType::kConcat, out, 0.0, 2 * bytes, 0, ins);
  GradInfo gi;
  for (OpId in : ins) {
    gi.inputs.push_back(InputGradSpec{in, OpType::kIdentity, 0.0,
                                      shape_of(in).ByteSize(DType::kF32),
                                      ActNeed::kNone, true, 1.0});
  }
  RegisterGrad(id, std::move(gi));
  return id;
}

OpId ModelBuilder::ConcatSteps(const std::string& name,
                               const std::vector<OpId>& steps, int64_t seq,
                               int64_t hidden, int64_t b) {
  FASTT_CHECK(static_cast<int64_t>(steps.size()) == seq);
  const TensorShape out{b, seq, hidden};
  const int64_t obytes = out.ByteSize(DType::kF32);
  const OpId id = AddForwardOp(name, OpType::kConcat, out, 0.0, 2 * obytes,
                               0, steps);
  GradInfo gi;
  for (OpId step : steps) {
    // Stack gradient slices back to each timestep.
    gi.inputs.push_back(InputGradSpec{step, OpType::kIdentity, 0.0,
                                      2 * b * hidden * 4, ActNeed::kNone,
                                      true, 1.0});
  }
  RegisterGrad(id, std::move(gi));
  return id;
}

OpId ModelBuilder::Dense(const std::string& name, OpId in, int64_t units,
                         bool relu) {
  const TensorShape& is = shape_of(in);
  const int64_t b = is.dim(0);
  const int64_t k = is.num_elements() / b;
  const TensorShape out{b, units};
  const double flops = 2.0 * static_cast<double>(b) *
                       static_cast<double>(k) * static_cast<double>(units);
  const int64_t weights = k * units * kF32;
  const int64_t bytes = is.ByteSize(DType::kF32) +
                        out.ByteSize(DType::kF32) + weights;
  const OpId var = AddVariable(name + "/weights", weights);
  const OpId mm = AddForwardOp(name, OpType::kMatMul, out, flops, bytes, 0,
                               {in, var});
  {
    GradInfo gi;
    gi.inputs.push_back(InputGradSpec{in, OpType::kMatMul, flops, bytes,
                                      ActNeed::kOtherPredOutput, true, 1.0});
    gi.inputs.push_back(InputGradSpec{var, OpType::kIdentity, 0.0, 0,
                                      ActNeed::kNone, false, 1.0});
    gi.wgrad = WGradSpec{true, OpType::kMatMul, flops, bytes,
                         ActNeed::kPredOutput};
    gi.variable = var;
    RegisterGrad(mm, std::move(gi));
  }
  const int64_t bias = units * kF32;
  const OpId bvar = AddVariable(name + "_bias/weights", bias);
  const OpId ba = AddForwardOp(name + "_bias", OpType::kBiasAdd, out, 0.0,
                               2 * out.ByteSize(DType::kF32), 0, {mm, bvar});
  {
    GradInfo gi;
    gi.inputs.push_back(InputGradSpec{mm, OpType::kIdentity, 0.0, 0,
                                      ActNeed::kNone, true, 1.0});
    gi.inputs.push_back(InputGradSpec{bvar, OpType::kIdentity, 0.0, 0,
                                      ActNeed::kNone, false, 1.0});
    gi.wgrad = WGradSpec{true, OpType::kBiasAddGrad, 0.0,
                         out.ByteSize(DType::kF32), ActNeed::kNone};
    gi.variable = bvar;
    RegisterGrad(ba, std::move(gi));
  }
  return relu ? Relu(name + "_relu", ba) : ba;
}

OpId ModelBuilder::MatMulAct(const std::string& name, OpId a, OpId b,
                             int64_t m, int64_t k, int64_t n,
                             int64_t batch_mult) {
  const TensorShape out{batch_mult, m, n};
  const double flops = 2.0 * static_cast<double>(batch_mult) *
                       static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n);
  const int64_t bytes = shape_of(a).ByteSize(DType::kF32) +
                        shape_of(b).ByteSize(DType::kF32) +
                        out.ByteSize(DType::kF32);
  const OpId id = AddForwardOp(name, OpType::kMatMul, out, flops, bytes, 0,
                               {a, b});
  GradInfo gi;
  // dA = dY · Bᵀ needs B; dB = Aᵀ · dY needs A.
  gi.inputs.push_back(InputGradSpec{a, OpType::kMatMul, flops, bytes,
                                    ActNeed::kOtherPredOutput, true, 1.0});
  gi.inputs.push_back(InputGradSpec{b, OpType::kMatMul, flops, bytes,
                                    ActNeed::kOtherPredOutput, true, 1.0});
  RegisterGrad(id, std::move(gi));
  return id;
}

OpId ModelBuilder::Softmax(const std::string& name, OpId in) {
  return Elementwise(name, OpType::kSoftmax, OpType::kSoftmaxGrad, in, 3.0,
                     ActNeed::kOwnOutput);
}

OpId ModelBuilder::LayerNorm(const std::string& name, OpId in) {
  const TensorShape out = shape_of(in);
  const int64_t c = out.dim(out.rank() - 1);
  const int64_t obytes = out.ByteSize(DType::kF32);
  const OpId var = AddVariable(name + "/weights", 2 * c * kF32);
  const OpId id = AddForwardOp(name, OpType::kLayerNorm, out, 0.0,
                               3 * obytes, 0, {in, var});
  GradInfo gi;
  gi.inputs.push_back(InputGradSpec{in, OpType::kLayerNormGrad, 0.0,
                                    4 * obytes, ActNeed::kPredOutput, true,
                                    1.0});
  gi.inputs.push_back(InputGradSpec{var, OpType::kIdentity, 0.0, 0,
                                    ActNeed::kNone, false, 1.0});
  gi.wgrad = WGradSpec{true, OpType::kLayerNormGrad, 0.0, obytes,
                       ActNeed::kNone};
  gi.variable = var;
  RegisterGrad(id, std::move(gi));
  return id;
}

OpId ModelBuilder::Gelu(const std::string& name, OpId in) {
  // TF expands tanh-gelu into a chain of ~8 elementwise kernels (pow, mul,
  // add, tanh, …) whose intermediates are all retained for the backward
  // pass; modeling five stages reproduces both the op count and the
  // activation footprint of the BERT reference implementation.
  OpId h = in;
  for (const char* stage : {"_a", "_b", "_c", "_d", "_e"}) {
    h = Elementwise(name + stage, OpType::kGelu, OpType::kGeluGrad, h, 2.0,
                    ActNeed::kPredOutput);
  }
  return h;
}

OpId ModelBuilder::Embedding(const std::string& name, OpId ids, int64_t vocab,
                             int64_t hidden, int64_t seq) {
  const int64_t b = shape_of(ids).dim(0);
  const TensorShape out{b, seq, hidden};
  const int64_t weights = vocab * hidden * kF32;
  const int64_t obytes = out.ByteSize(DType::kF32);
  const OpId var = AddVariable(name + "/weights", weights);
  const OpId id = AddForwardOp(name, OpType::kEmbeddingLookup, out, 0.0,
                               2 * obytes, 0, {ids, var});
  GradInfo gi;
  // Token ids are not differentiable; only the table gets a gradient.
  gi.inputs.push_back(InputGradSpec{ids, OpType::kIdentity, 0.0, 0,
                                    ActNeed::kNone, false, 1.0});
  gi.inputs.push_back(InputGradSpec{var, OpType::kIdentity, 0.0, 0,
                                    ActNeed::kNone, false, 1.0});
  gi.wgrad = WGradSpec{true, OpType::kEmbeddingGrad, 0.0, 2 * obytes,
                       ActNeed::kPredOutput};
  gi.variable = var;
  RegisterGrad(id, std::move(gi));
  return id;
}

OpId ModelBuilder::Transpose(const std::string& name, OpId in) {
  const TensorShape out = shape_of(in);
  const int64_t obytes = out.ByteSize(DType::kF32);
  const OpId id = AddForwardOp(name, OpType::kIdentity, out, 0.0, 2 * obytes,
                               0, {in});
  GradInfo gi;
  // kPredOutput: in TF graphs the pre-transpose tensor typically has other
  // backward consumers; retaining it matches observed training footprints.
  gi.inputs.push_back(InputGradSpec{in, OpType::kIdentity, 0.0, 2 * obytes,
                                    ActNeed::kPredOutput, true, 1.0});
  RegisterGrad(id, std::move(gi));
  return id;
}

OpId ModelBuilder::MaskAdd(const std::string& name, OpId in) {
  return Elementwise(name, OpType::kAdd, OpType::kIdentity, in, 2.0,
                     ActNeed::kPredOutput);
}

OpId ModelBuilder::Reshape(const std::string& name, OpId in,
                           TensorShape shape) {
  FASTT_CHECK_MSG(shape.num_elements() == shape_of(in).num_elements(),
                  "reshape changes element count: " + name);
  const OpId id =
      AddForwardOp(name, OpType::kIdentity, std::move(shape), 0.0, 0, 0,
                   {in});
  GradInfo gi;
  gi.inputs.push_back(InputGradSpec{in, OpType::kIdentity, 0.0, 0,
                                    ActNeed::kNone, true, 1.0});
  RegisterGrad(id, std::move(gi));
  return id;
}

std::vector<OpId> ModelBuilder::LSTMLayer(const std::string& name, OpId x_seq,
                                          int64_t seq, int64_t input_dim,
                                          int64_t hidden) {
  const int64_t b = shape_of(x_seq).dim(0);
  const int64_t slice_bytes = b * input_dim * kF32;
  const double cell_flops =
      2.0 * static_cast<double>(b) * 4.0 *
          static_cast<double>(hidden) *
          static_cast<double>(input_dim + hidden) +
      30.0 * static_cast<double>(b * hidden);
  const int64_t weights = 4 * (input_dim + hidden + 1) * hidden * kF32;
  const int64_t cell_bytes =
      slice_bytes + 2 * b * hidden * kF32 + weights / 4;

  std::vector<OpId> hs;
  const OpId var = AddVariable(name + "/weights", weights);
  OpId prev = kInvalidOp;
  for (int64_t t = 0; t < seq; ++t) {
    // Per-step input slice (TF's unstack materializes these).
    const OpId slice = AddForwardOp(
        StrFormat("%s/x%lld", name.c_str(), (long long)t), OpType::kSplit,
        TensorShape{b, input_dim}, 0.0, 2 * slice_bytes, 0, {x_seq},
        {slice_bytes});
    {
      GradInfo gi;
      // Slice gradient is a 1/seq-sized identity back into the sequence.
      gi.inputs.push_back(InputGradSpec{x_seq, OpType::kIdentity, 0.0,
                                        slice_bytes, ActNeed::kNone, true,
                                        1.0 / static_cast<double>(seq)});
      RegisterGrad(slice, std::move(gi));
    }
    std::vector<OpId> preds{slice, var};
    std::vector<int64_t> pred_bytes{slice_bytes, weights};
    if (prev != kInvalidOp) {
      preds.push_back(prev);
      pred_bytes.push_back(2 * b * hidden * kF32);  // h and c states
    }
    const OpId cell = AddForwardOp(
        StrFormat("%s/cell%lld", name.c_str(), (long long)t),
        OpType::kLSTMCell, TensorShape{b, hidden}, cell_flops, cell_bytes,
        0, preds, pred_bytes);
    if (t > 0) {
      graph_.mutable_op(cell).cost_basis_key =
          graph_.op(hs.front()).CostKey();
    }
    GradInfo gi;
    // Toward the input slice: the lighter recomputation.
    gi.inputs.push_back(InputGradSpec{slice, OpType::kLSTMCellGrad,
                                      0.6 * cell_flops, cell_bytes,
                                      ActNeed::kOwnOutput, true, 1.0});
    gi.inputs.push_back(InputGradSpec{var, OpType::kIdentity, 0.0, 0,
                                      ActNeed::kNone, false, 1.0});
    if (prev != kInvalidOp) {
      // Toward the previous step: the recurrent (critical-path) gradient.
      gi.inputs.push_back(InputGradSpec{prev, OpType::kLSTMCellGrad,
                                        1.4 * cell_flops, cell_bytes,
                                        ActNeed::kOwnOutput, true, 1.0});
    }
    if (t == 0) {
      gi.wgrad = WGradSpec{true, OpType::kLSTMCellGrad, 0.0,
                           weights, ActNeed::kNone};
      gi.variable = var;
    }
    RegisterGrad(cell, std::move(gi));
    hs.push_back(cell);
    prev = cell;
  }
  return hs;
}

OpId ModelBuilder::SoftmaxCrossEntropy(const std::string& name, OpId logits,
                                       int64_t classes) {
  const int64_t b = shape_of(logits).dim(0);
  const TensorShape out{b};
  const int64_t lbytes = b * classes * kF32;
  const OpId id = AddForwardOp(name, OpType::kSoftmaxCrossEntropy, out, 0.0,
                               2 * lbytes, 0, {logits});
  GradInfo gi;
  gi.inputs.push_back(InputGradSpec{logits, OpType::kSoftmaxCrossEntropyGrad,
                                    0.0, 2 * lbytes, ActNeed::kPredOutput,
                                    true, 1.0});
  RegisterGrad(id, std::move(gi));
  FASTT_CHECK_MSG(loss_ == kInvalidOp, "model already has a loss");
  loss_ = id;
  return id;
}

void ModelBuilder::Finish() {
  FASTT_CHECK_MSG(!finished_, "Finish() called twice");
  FASTT_CHECK_MSG(loss_ != kInvalidOp, "model has no loss op");
  finished_ = true;

  // Gradient contributions (producers of dL/d(output of op)).
  std::unordered_map<OpId, std::vector<OpId>> pending;

  // Reverse topological order over the forward subgraph.
  std::vector<OpId> order = graph_.TopoOrder();
  std::reverse(order.begin(), order.end());

  for (OpId f : order) {
    auto info_it = grad_info_.find(f);
    if (info_it == grad_info_.end()) continue;  // Input or gradient-free op
    // Copy: adding gradient ops below reallocates the op table.
    const Operation fop = graph_.op(f);

    // Combine upstream gradient contributions into one tensor.
    OpId g = kInvalidOp;
    auto pend_it = pending.find(f);
    const bool is_loss = (f == loss_);
    if (pend_it == pending.end() || pend_it->second.empty()) {
      if (!is_loss) continue;  // nothing consumes this op's output downstream
      g = f;                   // loss: implicit upstream gradient of 1
    } else if (pend_it->second.size() == 1) {
      g = pend_it->second[0];
    } else {
      Operation sum;
      sum.name = fop.name + "/grad_sum";
      sum.cost_key = fop.CostKey() + "/grad_sum";
      sum.type = OpType::kAdd;
      sum.output_shape = fop.output_shape;
      sum.bytes_touched =
          static_cast<int64_t>(pend_it->second.size() + 1) *
          fop.output_bytes();
      sum.batch = fop.batch;
      sum.is_backward = true;
      g = graph_.AddOp(std::move(sum));
      for (OpId contrib : pend_it->second) graph_.AddEdge(contrib, g);
    }

    const GradInfo& info = info_it->second;

    // Weight gradient + optimizer update.
    if (info.wgrad.present) {
      FASTT_CHECK(info.variable != kInvalidOp);
      const int64_t param_bytes = graph_.op(info.variable).output_bytes();
      Operation dw;
      dw.name = fop.name + "/wgrad";
      dw.cost_key = fop.CostKey() + "/wgrad";
      dw.type = info.wgrad.type;
      dw.output_shape = TensorShape{param_bytes / kF32};
      dw.flops = info.wgrad.flops;
      dw.bytes_touched = info.wgrad.bytes;
      if (fop.efficiency_override > 0.0)
        dw.efficiency_override = 0.82 * fop.efficiency_override;
      dw.batch = fop.batch;
      dw.channels = fop.channels;
      dw.is_backward = true;
      dw.reduces_batch = true;  // weight gradients sum over the batch
      const OpId dw_id = graph_.AddOp(std::move(dw));
      graph_.AddEdge(g, dw_id, fop.output_bytes());
      if (info.wgrad.act == ActNeed::kPredOutput) {
        for (const InputGradSpec& is : info.inputs) {
          if (graph_.op(is.pred).type != OpType::kVariable)
            graph_.AddEdge(is.pred, dw_id);
        }
      } else if (info.wgrad.act == ActNeed::kOwnOutput) {
        graph_.AddEdge(f, dw_id);
      }

      Operation apply;
      apply.name = fop.name + "/apply";
      apply.cost_key = fop.CostKey() + "/apply";
      apply.type = OpType::kApplyGradient;
      apply.output_shape = TensorShape{0};
      apply.bytes_touched = 4 * param_bytes;  // read g,m,v + write w
      apply.param_bytes = 2 * param_bytes;    // Adam slots
      apply.colocate_with = info.variable;  // update runs where weights live
      apply.is_backward = true;
      const OpId apply_id = graph_.AddOp(std::move(apply));
      graph_.AddEdge(dw_id, apply_id, param_bytes);
    }

    // Gradients toward data inputs.
    for (const InputGradSpec& is : info.inputs) {
      if (!is.propagate) continue;
      if (graph_.op(is.pred).type == OpType::kInput) continue;
      // Copy: AddOp below invalidates references into the op table.
      const Operation pop = graph_.op(is.pred);
      Operation dx;
      dx.name = fop.name + "/grad_to/" + pop.CostKey();
      dx.cost_key = fop.CostKey() + "/dx_" + pop.CostKey();
      dx.type = is.type;
      if (is.out_scale == 1.0) {
        dx.output_shape = pop.output_shape;
      } else {
        const int64_t elems = std::max<int64_t>(
            1, static_cast<int64_t>(
                   is.out_scale *
                   static_cast<double>(pop.output_shape.num_elements())));
        dx.output_shape = TensorShape{elems};
      }
      dx.flops = is.flops;
      dx.bytes_touched = is.bytes;
      if (fop.efficiency_override > 0.0)
        dx.efficiency_override = 0.85 * fop.efficiency_override;
      dx.batch = fop.batch;
      dx.channels = fop.channels;
      dx.is_backward = true;
      const OpId dx_id = graph_.AddOp(std::move(dx));
      graph_.AddEdge(g, dx_id, fop.output_bytes());
      switch (is.act) {
        case ActNeed::kPredOutput:
          graph_.AddEdge(is.pred, dx_id);
          break;
        case ActNeed::kOwnOutput:
          graph_.AddEdge(f, dx_id);
          break;
        case ActNeed::kOtherPredOutput:
          for (const InputGradSpec& other : info.inputs)
            if (other.pred != is.pred) graph_.AddEdge(other.pred, dx_id);
          break;
        case ActNeed::kNone:
          break;
      }
      pending[is.pred].push_back(dx_id);
    }
  }
}

}  // namespace fastt
