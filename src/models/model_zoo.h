// The nine benchmark models of the paper's evaluation (§6.2): five CNNs
// (LeNet, AlexNet, VGG-19, Inception-v3, ResNet-200) and four NLP models
// (GNMT-4, RNNLM, Transformer, BERT-large), each built as a full training
// graph (forward + backward + optimizer) at a caller-chosen batch size.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace fastt {

struct ModelSpec {
  std::string name;
  // Global batch used in Table 1 (strong scaling, chosen by the authors to
  // fully utilize one GPU) and per-GPU batch used in Table 2 (weak scaling).
  int64_t strong_batch = 0;
  int64_t weak_batch = 0;
  // Appends one replica of the training graph with the given name prefix.
  std::function<void(Graph&, const std::string& prefix, int64_t batch)>
      build;
};

// All nine models, in the paper's table order.
const std::vector<ModelSpec>& ModelZoo();

// Lookup by name ("vgg19", "bert_large", ...). Throws on unknown names.
const ModelSpec& FindModel(const std::string& name);

// Lookup returning nullptr on unknown names — the CLI uses this to report
// bad input with an actionable message instead of a raw exception.
const ModelSpec* FindModelOrNull(const std::string& name);

// Builds a single-replica training graph at the given batch size.
Graph BuildSingle(const ModelSpec& spec, int64_t batch);

// Individual builders (exposed for tests).
void BuildLeNet(Graph& g, const std::string& prefix, int64_t batch);
void BuildAlexNet(Graph& g, const std::string& prefix, int64_t batch);
void BuildVgg19(Graph& g, const std::string& prefix, int64_t batch);
void BuildInceptionV3(Graph& g, const std::string& prefix, int64_t batch);
void BuildResNet200(Graph& g, const std::string& prefix, int64_t batch);
void BuildGnmt(Graph& g, const std::string& prefix, int64_t batch);
void BuildRnnlm(Graph& g, const std::string& prefix, int64_t batch);
void BuildTransformer(Graph& g, const std::string& prefix, int64_t batch);
void BuildBertLarge(Graph& g, const std::string& prefix, int64_t batch);

}  // namespace fastt
