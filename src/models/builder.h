// ModelBuilder: constructs training DAGs (forward + backward + optimizer
// update) for the paper's nine benchmark models.
//
// Each layer helper appends the forward op(s) and registers gradient specs;
// Finish() then walks the forward graph in reverse topological order and
// emits the backward pass — one gradient op per (op, data-input) pair, weight
// gradients, gradient summation where fan-out requires it, and an
// ApplyGradient per parameterized op (colocated with it, like TF's
// colocation constraint between a variable and its optimizer slot).
//
// Memory realism notes (these drive Table 3's OOM reproduction):
//  * an op's param_bytes are resident all iteration;
//  * ApplyGradient carries 2× param_bytes resident (Adam m/v slots);
//  * activation tensors stay alive until their last consumer — wiring each
//    gradient op to the activation it really reads (own output vs. input
//    activation) reproduces which forward tensors training must retain.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace fastt {

class ModelBuilder {
 public:
  // Builds into `graph`, prefixing every op name with `prefix` (used by the
  // data-parallel constructor to lay down replicas side by side). `batch` is
  // the number of samples this replica processes per iteration.
  ModelBuilder(Graph& graph, std::string prefix, int64_t batch);

  int64_t batch() const { return batch_; }

  // ---- sources -----------------------------------------------------------
  OpId Input(const std::string& name, TensorShape shape,
             DType dtype = DType::kF32);

  // ---- CNN layers (NHWC tensors) -------------------------------------------
  OpId Conv2D(const std::string& name, OpId in, int kernel, int out_channels,
              int stride, int padding_same = true);
  // Rectangular kernels (Inception's 1x7 / 7x1 factorized convolutions).
  OpId Conv2DRect(const std::string& name, OpId in, int kh, int kw,
                  int out_channels, int stride, bool padding_same = true);
  OpId MaxPool(const std::string& name, OpId in, int kernel, int stride);
  OpId AvgPool(const std::string& name, OpId in, int kernel, int stride);
  // Global average pool to [B, C].
  OpId GlobalAvgPool(const std::string& name, OpId in);
  OpId Relu(const std::string& name, OpId in);
  OpId BatchNorm(const std::string& name, OpId in);
  OpId LRN(const std::string& name, OpId in);
  OpId Dropout(const std::string& name, OpId in);
  // Elementwise sum (residual connections).
  OpId Add(const std::string& name, OpId a, OpId b);
  // Last-axis concat (inception blocks; attention context combine). All
  // inputs must share their leading dimensions.
  OpId ConcatChannels(const std::string& name, const std::vector<OpId>& ins);
  // Stacks `seq` per-step [B, hidden] tensors into one [B, seq, hidden]
  // sequence tensor (TF's stack after an unrolled RNN).
  OpId ConcatSteps(const std::string& name, const std::vector<OpId>& steps,
                   int64_t seq, int64_t hidden, int64_t b);

  // ---- dense / attention ---------------------------------------------------
  // Fully connected: flattens input to [B, K] and multiplies by [K, units].
  // Emits MatMul + BiasAdd (+ optional Relu) like TF's dense layer.
  OpId Dense(const std::string& name, OpId in, int64_t units,
             bool relu = false);
  // Parameterless matmul of two activations, [m,k]x[k,n] per batch item
  // repeated `batch_mult` times (attention score/context products).
  OpId MatMulAct(const std::string& name, OpId a, OpId b, int64_t m,
                 int64_t k, int64_t n, int64_t batch_mult);
  OpId Softmax(const std::string& name, OpId in);
  // Attention-mask addition (bias broadcast onto attention scores).
  OpId MaskAdd(const std::string& name, OpId in);
  OpId LayerNorm(const std::string& name, OpId in);
  OpId Gelu(const std::string& name, OpId in);
  // Token embedding lookup: [B, seq] ids -> [B, seq, hidden].
  OpId Embedding(const std::string& name, OpId ids, int64_t vocab,
                 int64_t hidden, int64_t seq);
  // Materialized layout change (TF transpose/reshape emit real copies; they
  // matter for BERT's op count and activation footprint).
  OpId Transpose(const std::string& name, OpId in);
  // Zero-copy view with a new shape (same element count).
  OpId Reshape(const std::string& name, OpId in, TensorShape shape);

  // ---- recurrent ------------------------------------------------------------
  // One LSTM layer over `seq` timesteps. x inputs are per-step slices of
  // `x_seq` (shape [B, seq, input_dim]); returns per-step hidden outputs
  // (shape [B, hidden]). Weights live on the first cell; later cells are
  // colocated with it (shared weights must sit on one device, like TF).
  std::vector<OpId> LSTMLayer(const std::string& name, OpId x_seq,
                              int64_t seq, int64_t input_dim, int64_t hidden);

  // ---- loss -----------------------------------------------------------------
  // Marks the model's loss; Finish() seeds backpropagation here.
  OpId SoftmaxCrossEntropy(const std::string& name, OpId logits,
                           int64_t classes);

  // Generates the backward pass + optimizer updates. Call exactly once.
  void Finish();

  // ---- low-level access (used by a few bespoke builders) -------------------
  Graph& graph() { return graph_; }
  OpId loss_op() const { return loss_; }
  const TensorShape& shape_of(OpId op) const;

 private:
  friend class BuilderInternals;

  enum class ActNeed {
    kNone,
    kPredOutput,       // gradient op reads this predecessor's activation
    kOwnOutput,        // gradient op reads the forward op's own output
    kOtherPredOutput,  // reads the *other* data input (matmul grads)
  };
  struct InputGradSpec {
    OpId pred = kInvalidOp;
    OpType type = OpType::kReluGrad;
    double flops = 0.0;
    int64_t bytes = 0;
    ActNeed act = ActNeed::kOwnOutput;
    bool propagate = true;
    // Gradient tensor size relative to the predecessor's output (slices of a
    // sequence tensor produce 1/seq-sized gradients that are later summed).
    double out_scale = 1.0;
  };
  struct WGradSpec {
    bool present = false;
    OpType type = OpType::kConv2DBackpropFilter;
    double flops = 0.0;
    int64_t bytes = 0;
    ActNeed act = ActNeed::kPredOutput;
  };
  struct GradInfo {
    std::vector<InputGradSpec> inputs;
    WGradSpec wgrad;
    // The kVariable op holding this op's parameters; the optimizer update is
    // colocated with it (TF's variable/optimizer-slot colocation).
    OpId variable = kInvalidOp;
  };

  std::string Name(const std::string& suffix) const;
  // Parameter tensor holder. Weights are explicit producers: every consumer
  // placed on another device pays the weight-broadcast transfer, exactly the
  // traffic TF-slim's shared-variable data parallelism generates (and the
  // traffic FastT's placement learns to avoid).
  OpId AddVariable(const std::string& name, int64_t param_bytes);
  // `pred_bytes`, when non-empty, overrides the edge size per data input
  // (e.g. a timestep slice of a sequence tensor, not the whole tensor).
  OpId AddForwardOp(const std::string& name, OpType type, TensorShape shape,
                    double flops, int64_t bytes_touched, int64_t param_bytes,
                    const std::vector<OpId>& data_preds,
                    const std::vector<int64_t>& pred_bytes = {});
  // Registers gradient metadata for the op added last.
  void RegisterGrad(OpId op, GradInfo info);

  // Emits a memory-bound elementwise fwd op + its grad spec in one call.
  OpId Elementwise(const std::string& name, OpType fwd, OpType bwd, OpId in,
                   double byte_factor, ActNeed act);

  Graph& graph_;
  std::string prefix_;
  int64_t batch_ = 0;
  OpId loss_ = kInvalidOp;
  bool finished_ = false;
  std::vector<OpId> forward_ops_;  // insertion order
  std::unordered_map<OpId, GradInfo> grad_info_;
};

}  // namespace fastt
