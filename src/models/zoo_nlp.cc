// NLP members of the model zoo: the two LSTM models (GNMT-4, RNNLM) and the
// two attention models (Transformer, BERT-large).
//
// The attention models decompose multi-head attention into the dense
// projections, batched score/context MatMuls, softmax/dropout and the
// materialized transposes TF emits — MatMul is what FastT ends up splitting
// for these models (paper Table 6), so the MatMul inventory matters.
#include "models/builder.h"
#include "models/model_zoo.h"
#include "util/strings.h"

namespace fastt {
namespace {

constexpr int64_t kGnmtVocab = 32000;
constexpr int64_t kGnmtHidden = 1024;
constexpr int64_t kGnmtSeq = 32;

constexpr int64_t kRnnlmVocab = 10000;
constexpr int64_t kRnnlmHidden = 1500;
constexpr int64_t kRnnlmSeq = 35;

// One multi-head attention block. `q_in` attends over `kv_in`.
// Shapes: q_in [B*Sq, d], kv_in [B*Skv, d].
//
// `heavy` models the BERT reference implementation, which materializes a
// reshape-to-heads copy plus a transpose per projection and an explicit
// attention-mask addition; tensor2tensor's Transformer attention is leaner
// (one transpose, fused bias), which is why Transformer trains within memory
// at large token batches while BERT-large OOMs early (paper Table 3).
OpId Attention(ModelBuilder& mb, const std::string& n, OpId q_in, OpId kv_in,
               int64_t b, int64_t sq, int64_t skv, int64_t d, int64_t heads,
               bool heavy) {
  const int64_t dh = d / heads;
  OpId q = mb.Dense(n + "/q", q_in, d);
  OpId k = mb.Dense(n + "/k", kv_in, d);
  OpId v = mb.Dense(n + "/v", kv_in, d);
  OpId tq = mb.Transpose(n + "/tq", heavy ? mb.Transpose(n + "/rq", q) : q);
  OpId tk = mb.Transpose(n + "/tk", heavy ? mb.Transpose(n + "/rk", k) : k);
  OpId tv = mb.Transpose(n + "/tv", heavy ? mb.Transpose(n + "/rv", v) : v);
  OpId scores = mb.MatMulAct(n + "/scores", tq, tk, sq, dh, skv, b * heads);
  if (heavy) scores = mb.MaskAdd(n + "/mask", scores);
  OpId probs = mb.Softmax(n + "/softmax", scores);
  OpId drop = mb.Dropout(n + "/attn_drop", probs);
  OpId ctx = mb.MatMulAct(n + "/context", drop, tv, sq, skv, dh, b * heads);
  OpId tctx = mb.Transpose(n + "/tctx", ctx);
  OpId flat = mb.Reshape(n + "/flat", tctx, TensorShape{b * sq, d});
  return mb.Dense(n + "/out", flat, d);
}

// Post-attention residual + layernorm + dropout.
OpId AddNorm(ModelBuilder& mb, const std::string& n, OpId x, OpId sub) {
  OpId drop = mb.Dropout(n + "/drop", sub);
  OpId sum = mb.Add(n + "/add", x, drop);
  return mb.LayerNorm(n + "/ln", sum);
}

// Position-wise feed-forward: d -> ffn -> d.
OpId FeedForward(ModelBuilder& mb, const std::string& n, OpId in, int64_t ffn,
                 int64_t d, bool gelu) {
  OpId h = mb.Dense(n + "/ffn1", in, ffn);
  h = gelu ? mb.Gelu(n + "/gelu", h) : mb.Relu(n + "/relu", h);
  return mb.Dense(n + "/ffn2", h, d);
}

}  // namespace

void BuildGnmt(Graph& g, const std::string& prefix, int64_t batch) {
  ModelBuilder mb(g, prefix, batch);
  const int64_t h = kGnmtHidden, seq = kGnmtSeq;
  OpId src = mb.Input("src_ids", TensorShape{batch, seq}, DType::kI32);
  OpId tgt = mb.Input("tgt_ids", TensorShape{batch, seq}, DType::kI32);

  // Encoder: embedding + 4 stacked LSTM layers.
  OpId enc_emb = mb.Embedding("enc/embedding", src, kGnmtVocab, h, seq);
  OpId enc_seq = enc_emb;
  std::vector<OpId> enc_steps;
  for (int layer = 0; layer < 4; ++layer) {
    enc_steps = mb.LSTMLayer(StrFormat("enc/lstm%d", layer), enc_seq, seq, h,
                             h);
    enc_seq = mb.ConcatSteps(StrFormat("enc/stack%d", layer), enc_steps, seq,
                             h, batch);
  }

  // Decoder: embedding + 4 LSTM layers + attention over encoder states.
  OpId dec_emb = mb.Embedding("dec/embedding", tgt, kGnmtVocab, h, seq);
  OpId dec_seq = dec_emb;
  for (int layer = 0; layer < 4; ++layer) {
    auto steps = mb.LSTMLayer(StrFormat("dec/lstm%d", layer), dec_seq, seq,
                              h, h);
    dec_seq = mb.ConcatSteps(StrFormat("dec/stack%d", layer), steps, seq, h,
                             batch);
  }
  // Luong-style attention: scores over encoder outputs, context, combine.
  OpId scores =
      mb.MatMulAct("attn/scores", dec_seq, enc_seq, seq, h, seq, batch);
  OpId probs = mb.Softmax("attn/softmax", scores);
  OpId ctx = mb.MatMulAct("attn/context", probs, enc_seq, seq, seq, h, batch);
  OpId cat = mb.ConcatChannels("attn/concat", {dec_seq, ctx});
  OpId flat = mb.Reshape("attn/flat", cat, TensorShape{batch * seq, 2 * h});
  OpId proj = mb.Dense("attn/proj", flat, h, /*relu=*/true);

  OpId logits = mb.Dense("logits", proj, kGnmtVocab);
  mb.SoftmaxCrossEntropy("loss", logits, kGnmtVocab);
  mb.Finish();
}

void BuildRnnlm(Graph& g, const std::string& prefix, int64_t batch) {
  ModelBuilder mb(g, prefix, batch);
  const int64_t h = kRnnlmHidden, seq = kRnnlmSeq;
  OpId ids = mb.Input("ids", TensorShape{batch, seq}, DType::kI32);
  OpId emb = mb.Embedding("embedding", ids, kRnnlmVocab, h, seq);
  OpId x = emb;
  for (int layer = 0; layer < 2; ++layer) {
    auto steps = mb.LSTMLayer(StrFormat("lstm%d", layer), x, seq, h, h);
    x = mb.ConcatSteps(StrFormat("stack%d", layer), steps, seq, h, batch);
    x = mb.Dropout(StrFormat("drop%d", layer), x);
  }
  OpId flat = mb.Reshape("flat", x, TensorShape{batch * seq, h});
  OpId logits = mb.Dense("logits", flat, kRnnlmVocab);
  mb.SoftmaxCrossEntropy("loss", logits, kRnnlmVocab);
  mb.Finish();
}

void BuildTransformer(Graph& g, const std::string& prefix, int64_t batch) {
  // `batch` is the paper's global batch in TOKENS (4096); sentences of
  // length 32. Transformer *Big* dimensions (the paper's throughput implies
  // the big variant).
  const int64_t seq = 32;
  const int64_t sentences = std::max<int64_t>(1, batch / seq);
  const int64_t d = 1024, heads = 16, ffn = 4096, vocab = 32768;
  ModelBuilder mb(g, prefix, sentences);

  OpId src = mb.Input("src_ids", TensorShape{sentences, seq}, DType::kI32);
  OpId tgt = mb.Input("tgt_ids", TensorShape{sentences, seq}, DType::kI32);
  OpId enc = mb.Embedding("enc/embedding", src, vocab, d, seq);
  enc = mb.Reshape("enc/flat", enc, TensorShape{sentences * seq, d});
  for (int l = 0; l < 6; ++l) {
    const std::string n = StrFormat("enc/layer%d", l);
    OpId attn = Attention(mb, n + "/self", enc, enc, sentences, seq, seq, d,
                          heads, /*heavy=*/false);
    OpId x = AddNorm(mb, n + "/self_norm", enc, attn);
    OpId ff = FeedForward(mb, n + "/ff", x, ffn, d, /*gelu=*/false);
    enc = AddNorm(mb, n + "/ff_norm", x, ff);
  }

  OpId dec = mb.Embedding("dec/embedding", tgt, vocab, d, seq);
  dec = mb.Reshape("dec/flat", dec, TensorShape{sentences * seq, d});
  for (int l = 0; l < 6; ++l) {
    const std::string n = StrFormat("dec/layer%d", l);
    OpId self = Attention(mb, n + "/self", dec, dec, sentences, seq, seq, d,
                          heads, /*heavy=*/false);
    OpId x = AddNorm(mb, n + "/self_norm", dec, self);
    OpId cross = Attention(mb, n + "/cross", x, enc, sentences, seq, seq, d,
                           heads, /*heavy=*/false);
    x = AddNorm(mb, n + "/cross_norm", x, cross);
    OpId ff = FeedForward(mb, n + "/ff", x, ffn, d, /*gelu=*/false);
    dec = AddNorm(mb, n + "/ff_norm", x, ff);
  }

  OpId logits = mb.Dense("logits", dec, vocab);
  mb.SoftmaxCrossEntropy("loss", logits, vocab);
  mb.Finish();
}

void BuildBertLarge(Graph& g, const std::string& prefix, int64_t batch) {
  const int64_t seq = 64;  // paper: max sequence length 64
  const int64_t d = 1024, heads = 16, ffn = 4096, vocab = 30522;
  ModelBuilder mb(g, prefix, batch);

  OpId ids = mb.Input("ids", TensorShape{batch, seq}, DType::kI32);
  OpId emb = mb.Embedding("embedding", ids, vocab, d, seq);
  OpId x = mb.Reshape("emb/flat", emb, TensorShape{batch * seq, d});
  x = mb.LayerNorm("emb/ln", x);
  x = mb.Dropout("emb/drop", x);
  for (int l = 0; l < 24; ++l) {
    const std::string n = StrFormat("layer%d", l);
    OpId attn =
        Attention(mb, n + "/self", x, x, batch, seq, seq, d, heads,
                  /*heavy=*/true);
    OpId h = AddNorm(mb, n + "/self_norm", x, attn);
    OpId ff = FeedForward(mb, n + "/ff", h, ffn, d, /*gelu=*/true);
    x = AddNorm(mb, n + "/ff_norm", h, ff);
  }
  // Masked-LM head (pre-training workload): transform + gelu + layernorm +
  // vocab projection over every position. The [B*S, vocab] logits tensor is
  // a major part of BERT's training footprint.
  OpId t = mb.Dense("mlm/transform", x, d);
  t = mb.Gelu("mlm/gelu", t);
  t = mb.LayerNorm("mlm/ln", t);
  OpId logits = mb.Dense("mlm/logits", t, vocab);
  mb.SoftmaxCrossEntropy("loss", logits, vocab);
  mb.Finish();
}

}  // namespace fastt
