// CNN members of the model zoo. Layer inventories follow the original
// architecture papers; names of VGG layers match the paper's Table 5
// (conv1_1, conv1_2, pool1, ..., fc6) so the split-decision experiment can
// report the same rows.
#include "models/builder.h"
#include "models/model_zoo.h"
#include "util/strings.h"

namespace fastt {
namespace {

// conv + relu, the VGG/AlexNet building block.
OpId ConvRelu(ModelBuilder& mb, const std::string& name, OpId in, int kernel,
              int channels, int stride = 1, bool same = true) {
  OpId c = mb.Conv2D(name, in, kernel, channels, stride, same);
  return mb.Relu("relu_" + name, c);
}

// conv + batch-norm + relu, the Inception/ResNet building block.
OpId ConvBnRelu(ModelBuilder& mb, const std::string& name, OpId in,
                int kernel, int channels, int stride = 1, bool same = true) {
  OpId c = mb.Conv2D(name, in, kernel, channels, stride, same);
  OpId b = mb.BatchNorm(name + "_bn", c);
  return mb.Relu(name + "_relu", b);
}

// Rectangular-kernel variant (Inception's factorized 1x7 / 7x1 convs).
OpId ConvBnReluRect(ModelBuilder& mb, const std::string& name, OpId in,
                    int kh, int kw, int channels) {
  OpId c = mb.Conv2DRect(name, in, kh, kw, channels, 1, true);
  OpId b = mb.BatchNorm(name + "_bn", c);
  return mb.Relu(name + "_relu", b);
}

}  // namespace

void BuildLeNet(Graph& g, const std::string& prefix, int64_t batch) {
  ModelBuilder mb(g, prefix, batch);
  OpId x = mb.Input("images", TensorShape{batch, 28, 28, 1});
  OpId c1 = ConvRelu(mb, "conv1", x, 5, 20, 1, false);
  OpId p1 = mb.MaxPool("pool1", c1, 2, 2);
  OpId c2 = ConvRelu(mb, "conv2", p1, 5, 50, 1, false);
  OpId p2 = mb.MaxPool("pool2", c2, 2, 2);
  OpId f1 = mb.Dense("fc1", p2, 500, /*relu=*/true);
  OpId f2 = mb.Dense("fc2", f1, 10);
  mb.SoftmaxCrossEntropy("loss", f2, 10);
  mb.Finish();
}

void BuildAlexNet(Graph& g, const std::string& prefix, int64_t batch) {
  ModelBuilder mb(g, prefix, batch);
  OpId x = mb.Input("images", TensorShape{batch, 224, 224, 3});
  OpId c1 = ConvRelu(mb, "conv1", x, 11, 96, 4, false);
  OpId n1 = mb.LRN("lrn1", c1);
  OpId p1 = mb.MaxPool("pool1", n1, 3, 2);
  OpId c2 = ConvRelu(mb, "conv2", p1, 5, 256, 1, true);
  OpId n2 = mb.LRN("lrn2", c2);
  OpId p2 = mb.MaxPool("pool2", n2, 3, 2);
  OpId c3 = ConvRelu(mb, "conv3", p2, 3, 384, 1, true);
  OpId c4 = ConvRelu(mb, "conv4", c3, 3, 384, 1, true);
  OpId c5 = ConvRelu(mb, "conv5", c4, 3, 256, 1, true);
  OpId p5 = mb.MaxPool("pool5", c5, 3, 2);
  OpId f6 = mb.Dense("fc6", p5, 4096, /*relu=*/true);
  OpId d6 = mb.Dropout("drop6", f6);
  OpId f7 = mb.Dense("fc7", d6, 4096, /*relu=*/true);
  OpId d7 = mb.Dropout("drop7", f7);
  OpId f8 = mb.Dense("fc8", d7, 1000);
  mb.SoftmaxCrossEntropy("loss", f8, 1000);
  mb.Finish();
}

void BuildVgg19(Graph& g, const std::string& prefix, int64_t batch) {
  ModelBuilder mb(g, prefix, batch);
  OpId x = mb.Input("images", TensorShape{batch, 224, 224, 3});
  // Five conv blocks: 2-2-4-4-4 convs with 64..512 channels.
  const int blocks[5] = {2, 2, 4, 4, 4};
  const int channels[5] = {64, 128, 256, 512, 512};
  OpId h = x;
  for (int b = 0; b < 5; ++b) {
    for (int i = 0; i < blocks[b]; ++i) {
      const std::string name = StrFormat("conv%d_%d", b + 1, i + 1);
      h = mb.Conv2D(name, h, 3, channels[b], 1, true);
      h = mb.Relu(StrFormat("relu%d_%d", b + 1, i + 1), h);
    }
    h = mb.MaxPool(StrFormat("pool%d", b + 1), h, 2, 2);
  }
  OpId f6 = mb.Dense("fc6", h, 4096, /*relu=*/true);
  OpId d6 = mb.Dropout("drop6", f6);
  OpId f7 = mb.Dense("fc7", d6, 4096, /*relu=*/true);
  OpId d7 = mb.Dropout("drop7", f7);
  OpId f8 = mb.Dense("fc8", d7, 1000);
  mb.SoftmaxCrossEntropy("loss", f8, 1000);
  mb.Finish();
}

namespace {

// Inception-v3 blocks (channel layouts from Szegedy et al. 2016).
OpId InceptionA(ModelBuilder& mb, const std::string& n, OpId in,
                int pool_ch) {
  OpId b1 = ConvBnRelu(mb, n + "/b1_1x1", in, 1, 64);
  OpId b2 = ConvBnRelu(mb, n + "/b2_1x1", in, 1, 48);
  b2 = ConvBnRelu(mb, n + "/b2_5x5", b2, 5, 64);
  OpId b3 = ConvBnRelu(mb, n + "/b3_1x1", in, 1, 64);
  b3 = ConvBnRelu(mb, n + "/b3_3x3a", b3, 3, 96);
  b3 = ConvBnRelu(mb, n + "/b3_3x3b", b3, 3, 96);
  OpId b4 = mb.AvgPool(n + "/b4_pool", in, 3, 1);
  b4 = ConvBnRelu(mb, n + "/b4_1x1", b4, 1, pool_ch);
  return mb.ConcatChannels(n + "/concat", {b1, b2, b3, b4});
}

OpId ReductionA(ModelBuilder& mb, const std::string& n, OpId in) {
  OpId b1 = ConvBnRelu(mb, n + "/b1_3x3", in, 3, 384, 2, false);
  OpId b2 = ConvBnRelu(mb, n + "/b2_1x1", in, 1, 64);
  b2 = ConvBnRelu(mb, n + "/b2_3x3a", b2, 3, 96);
  b2 = ConvBnRelu(mb, n + "/b2_3x3b", b2, 3, 96, 2, false);
  OpId b3 = mb.MaxPool(n + "/b3_pool", in, 3, 2);
  return mb.ConcatChannels(n + "/concat", {b1, b2, b3});
}

OpId InceptionB(ModelBuilder& mb, const std::string& n, OpId in, int mid) {
  OpId b1 = ConvBnRelu(mb, n + "/b1_1x1", in, 1, 192);
  OpId b2 = ConvBnRelu(mb, n + "/b2_1x1", in, 1, mid);
  b2 = ConvBnReluRect(mb, n + "/b2_1x7", b2, 1, 7, mid);
  b2 = ConvBnReluRect(mb, n + "/b2_7x1", b2, 7, 1, 192);
  OpId b3 = ConvBnRelu(mb, n + "/b3_1x1", in, 1, mid);
  b3 = ConvBnReluRect(mb, n + "/b3_7x1a", b3, 7, 1, mid);
  b3 = ConvBnReluRect(mb, n + "/b3_1x7a", b3, 1, 7, mid);
  b3 = ConvBnReluRect(mb, n + "/b3_7x1b", b3, 7, 1, mid);
  b3 = ConvBnReluRect(mb, n + "/b3_1x7b", b3, 1, 7, 192);
  OpId b4 = mb.AvgPool(n + "/b4_pool", in, 3, 1);
  b4 = ConvBnRelu(mb, n + "/b4_1x1", b4, 1, 192);
  return mb.ConcatChannels(n + "/concat", {b1, b2, b3, b4});
}

OpId ReductionB(ModelBuilder& mb, const std::string& n, OpId in) {
  OpId b1 = ConvBnRelu(mb, n + "/b1_1x1", in, 1, 192);
  b1 = ConvBnRelu(mb, n + "/b1_3x3", b1, 3, 320, 2, false);
  OpId b2 = ConvBnRelu(mb, n + "/b2_1x1", in, 1, 192);
  b2 = ConvBnReluRect(mb, n + "/b2_1x7", b2, 1, 7, 192);
  b2 = ConvBnReluRect(mb, n + "/b2_7x1", b2, 7, 1, 192);
  b2 = ConvBnRelu(mb, n + "/b2_3x3", b2, 3, 192, 2, false);
  OpId b3 = mb.MaxPool(n + "/b3_pool", in, 3, 2);
  return mb.ConcatChannels(n + "/concat", {b1, b2, b3});
}

OpId InceptionC(ModelBuilder& mb, const std::string& n, OpId in) {
  OpId b1 = ConvBnRelu(mb, n + "/b1_1x1", in, 1, 320);
  OpId b2 = ConvBnRelu(mb, n + "/b2_1x1", in, 1, 384);
  OpId b2a = ConvBnReluRect(mb, n + "/b2_1x3", b2, 1, 3, 384);
  OpId b2b = ConvBnReluRect(mb, n + "/b2_3x1", b2, 3, 1, 384);
  OpId b3 = ConvBnRelu(mb, n + "/b3_1x1", in, 1, 448);
  b3 = ConvBnRelu(mb, n + "/b3_3x3", b3, 3, 384);
  OpId b3a = ConvBnReluRect(mb, n + "/b3_1x3", b3, 1, 3, 384);
  OpId b3b = ConvBnReluRect(mb, n + "/b3_3x1", b3, 3, 1, 384);
  OpId b4 = mb.AvgPool(n + "/b4_pool", in, 3, 1);
  b4 = ConvBnRelu(mb, n + "/b4_1x1", b4, 1, 192);
  return mb.ConcatChannels(n + "/concat", {b1, b2a, b2b, b3a, b3b, b4});
}

}  // namespace

void BuildInceptionV3(Graph& g, const std::string& prefix, int64_t batch) {
  ModelBuilder mb(g, prefix, batch);
  OpId x = mb.Input("images", TensorShape{batch, 299, 299, 3});
  OpId h = ConvBnRelu(mb, "stem/conv1", x, 3, 32, 2, false);
  h = ConvBnRelu(mb, "stem/conv2", h, 3, 32, 1, false);
  h = ConvBnRelu(mb, "stem/conv3", h, 3, 64, 1, true);
  h = mb.MaxPool("stem/pool1", h, 3, 2);
  h = ConvBnRelu(mb, "stem/conv4", h, 1, 80, 1, false);
  h = ConvBnRelu(mb, "stem/conv5", h, 3, 192, 1, false);
  h = mb.MaxPool("stem/pool2", h, 3, 2);
  h = InceptionA(mb, "mixed0", h, 32);
  h = InceptionA(mb, "mixed1", h, 64);
  h = InceptionA(mb, "mixed2", h, 64);
  h = ReductionA(mb, "mixed3", h);
  h = InceptionB(mb, "mixed4", h, 128);
  h = InceptionB(mb, "mixed5", h, 160);
  h = InceptionB(mb, "mixed6", h, 160);
  h = InceptionB(mb, "mixed7", h, 192);
  h = ReductionB(mb, "mixed8", h);
  h = InceptionC(mb, "mixed9", h);
  h = InceptionC(mb, "mixed10", h);
  h = mb.GlobalAvgPool("avgpool", h);
  OpId logits = mb.Dense("logits", h, 1000);
  mb.SoftmaxCrossEntropy("loss", logits, 1000);
  mb.Finish();
}

namespace {

// Pre-activation bottleneck block (ResNet v2).
OpId Bottleneck(ModelBuilder& mb, const std::string& n, OpId in, int mid,
                int out, int stride, bool project) {
  OpId h = ConvBnRelu(mb, n + "/conv1", in, 1, mid, 1, true);
  h = ConvBnRelu(mb, n + "/conv2", h, 3, mid, stride, true);
  h = mb.Conv2D(n + "/conv3", h, 1, out, 1, true);
  h = mb.BatchNorm(n + "/conv3_bn", h);
  OpId shortcut = in;
  if (project) {
    shortcut = mb.Conv2D(n + "/proj", in, 1, out, stride, true);
    shortcut = mb.BatchNorm(n + "/proj_bn", shortcut);
  }
  OpId sum = mb.Add(n + "/add", h, shortcut);
  return mb.Relu(n + "/relu", sum);
}

}  // namespace

void BuildResNet200(Graph& g, const std::string& prefix, int64_t batch) {
  ModelBuilder mb(g, prefix, batch);
  OpId x = mb.Input("images", TensorShape{batch, 224, 224, 3});
  OpId h = ConvBnRelu(mb, "stem/conv1", x, 7, 64, 2, true);
  h = mb.MaxPool("stem/pool1", h, 3, 2);
  // ResNet-200: stages of 3 / 24 / 36 / 3 bottleneck blocks.
  const int depths[4] = {3, 24, 36, 3};
  const int mids[4] = {64, 128, 256, 512};
  for (int s = 0; s < 4; ++s) {
    for (int b = 0; b < depths[s]; ++b) {
      const int stride = (b == 0 && s > 0) ? 2 : 1;
      h = Bottleneck(mb, StrFormat("stage%d/block%d", s + 1, b), h, mids[s],
                     mids[s] * 4, stride, /*project=*/b == 0);
    }
  }
  h = mb.GlobalAvgPool("avgpool", h);
  OpId logits = mb.Dense("logits", h, 1000);
  mb.SoftmaxCrossEntropy("loss", logits, 1000);
  mb.Finish();
}

}  // namespace fastt
