#include "models/model_zoo.h"

#include "util/check.h"

namespace fastt {

const std::vector<ModelSpec>& ModelZoo() {
  // Batch sizes are Table 1's global batches (strong scaling) and Table 2's
  // per-GPU batches (weak scaling); the paper uses the same values for both.
  static const std::vector<ModelSpec> kZoo = {
      {"inception_v3", 64, 64, BuildInceptionV3},
      {"vgg19", 64, 64, BuildVgg19},
      {"resnet200", 32, 32, BuildResNet200},
      {"lenet", 256, 256, BuildLeNet},
      {"alexnet", 256, 256, BuildAlexNet},
      {"gnmt", 128, 128, BuildGnmt},
      {"rnnlm", 64, 64, BuildRnnlm},
      {"transformer", 4096, 4096, BuildTransformer},
      {"bert_large", 16, 16, BuildBertLarge},
  };
  return kZoo;
}

const ModelSpec* FindModelOrNull(const std::string& name) {
  for (const ModelSpec& spec : ModelZoo())
    if (spec.name == name) return &spec;
  return nullptr;
}

const ModelSpec& FindModel(const std::string& name) {
  const ModelSpec* spec = FindModelOrNull(name);
  FASTT_CHECK_MSG(spec != nullptr, "unknown model: " + name);
  return *spec;
}

Graph BuildSingle(const ModelSpec& spec, int64_t batch) {
  Graph g(spec.name);
  spec.build(g, "", batch);
  g.Validate();
  return g;
}

}  // namespace fastt
