// Dense float tensors for the numeric executor.
//
// Everything else in the repository treats tensors as metadata; this small
// runtime gives them real values so that semantic-preservation claims — in
// particular the paper's §5.2 statement that operation splitting "does not
// change training semantics … resulting in no model accuracy loss" — can be
// verified by executing the same training step on the original and the
// rewritten graph and comparing the numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/shape.h"

namespace fastt {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(TensorShape shape);
  Tensor(TensorShape shape, std::vector<float> values);

  const TensorShape& shape() const { return shape_; }
  int64_t size() const { return static_cast<int64_t>(values_.size()); }
  float* data() { return values_.data(); }
  const float* data() const { return values_.data(); }
  float& at(int64_t i) { return values_[static_cast<size_t>(i)]; }
  float at(int64_t i) const { return values_[static_cast<size_t>(i)]; }
  const std::vector<float>& values() const { return values_; }

  // Leading (batch) dimension and the per-row stride.
  int64_t rows() const;
  int64_t row_size() const;

  // Rows [begin, end) as a new tensor.
  Tensor SliceRows(int64_t begin, int64_t end) const;

  // Largest absolute elementwise difference; infinity on shape mismatch.
  static double MaxAbsDiff(const Tensor& a, const Tensor& b);

 private:
  TensorShape shape_;
  std::vector<float> values_;
};

// Stacks tensors along the leading dimension.
Tensor ConcatRows(const std::vector<Tensor>& parts);

// Deterministic pseudo-random fill in [-scale, scale] (seeded per tensor).
Tensor RandomTensor(TensorShape shape, uint64_t seed, float scale = 0.1f);

}  // namespace fastt
