// Numeric executor: runs a training graph built by ModelBuilder with real
// float values, for the dense/relu/softmax-xent family of layers.
//
// Purpose: semantic validation. Placement, execution order and operation
// splitting are *structural* transforms — any topologically valid execution
// must produce bit-identical losses and weight updates. The executor
// interprets the graph the builder emitted (forward ops, the generated
// gradient ops, SGD updates, Alg. 2's split/concat glue) and exposes the
// loss and the updated parameters so tests can compare transformed against
// untransformed graphs.
//
// Supported op vocabulary (everything a Dense/Relu/SoftmaxCrossEntropy
// model and its rewrites contain): Input, Variable, MatMul (forward, dX,
// dW), BiasAdd (+grad), Relu (+grad), Add / grad_sum, Identity,
// SoftmaxCrossEntropy (+grad), ApplyGradient (SGD), GradAggregate, Split,
// Concat. Convolutions and recurrent cells are out of scope — the rewrite
// mechanics they share with MatMul are what is under test.
#pragma once

#include <map>
#include <string>

#include "exec/tensor.h"
#include "graph/graph.h"

namespace fastt {

struct NumericOptions {
  uint64_t seed = 42;        // deterministic Input / Variable initialization
  float learning_rate = 0.1f;
};

struct NumericResult {
  double loss = 0.0;
  // Updated parameter values by variable op NAME (post-ApplyGradient).
  std::map<std::string, Tensor> parameters;
  // Every op's output by name (for fine-grained inspection).
  std::map<std::string, Tensor> outputs;
};

// Executes one training step of the graph. Throws std::logic_error when the
// graph contains an op kind outside the supported vocabulary.
NumericResult ExecuteNumerically(const Graph& g,
                                 const NumericOptions& options = {});

}  // namespace fastt
