#include "exec/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/rng.h"

namespace fastt {

Tensor::Tensor(TensorShape shape)
    : shape_(std::move(shape)),
      values_(static_cast<size_t>(shape_.num_elements()), 0.0f) {}

Tensor::Tensor(TensorShape shape, std::vector<float> values)
    : shape_(std::move(shape)), values_(std::move(values)) {
  FASTT_CHECK_MSG(
      static_cast<int64_t>(values_.size()) == shape_.num_elements(),
      "tensor values do not match shape");
}

int64_t Tensor::rows() const {
  return shape_.rank() == 0 ? 1 : shape_.dim(0);
}

int64_t Tensor::row_size() const {
  const int64_t r = rows();
  return r == 0 ? 0 : size() / r;
}

Tensor Tensor::SliceRows(int64_t begin, int64_t end) const {
  FASTT_CHECK(begin >= 0 && begin <= end && end <= rows());
  const int64_t stride = row_size();
  Tensor out(shape_.WithDim(0, end - begin));
  std::copy(values_.begin() + begin * stride,
            values_.begin() + end * stride, out.values_.begin());
  return out;
}

double Tensor::MaxAbsDiff(const Tensor& a, const Tensor& b) {
  if (a.size() != b.size())
    return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (int64_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::fabs(static_cast<double>(a.at(i)) -
                                      static_cast<double>(b.at(i))));
  return worst;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  FASTT_CHECK(!parts.empty());
  int64_t total_rows = 0;
  for (const Tensor& p : parts) {
    FASTT_CHECK_MSG(p.row_size() == parts[0].row_size(),
                    "row size mismatch in concat");
    total_rows += p.rows();
  }
  Tensor out(parts[0].shape().WithDim(0, total_rows));
  float* cursor = out.data();
  for (const Tensor& p : parts) {
    std::copy(p.data(), p.data() + p.size(), cursor);
    cursor += p.size();
  }
  return out;
}

Tensor RandomTensor(TensorShape shape, uint64_t seed, float scale) {
  Tensor out(std::move(shape));
  Rng rng(seed);
  for (int64_t i = 0; i < out.size(); ++i)
    out.at(i) = static_cast<float>(rng.NextDouble(-scale, scale));
  return out;
}

}  // namespace fastt
