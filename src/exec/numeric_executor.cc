#include "exec/numeric_executor.h"

#include <algorithm>
#include <stdexcept>
#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/strings.h"

namespace fastt {
namespace {

// Stable per-op seed so Inputs/Variables initialize identically regardless
// of graph transformations (cost keys survive rewrites; names of replicas
// differ, which is intended — each replica gets its own data shard).
uint64_t OpSeed(uint64_t base, const Operation& op) {
  uint64_t h = base;
  for (char c : op.name) h = h * 1099511628211ULL + static_cast<uint8_t>(c);
  return h;
}

// Synthetic classification labels, deterministic per row.
int LabelFor(uint64_t seed, int64_t row, int64_t classes) {
  return static_cast<int>((seed + static_cast<uint64_t>(row) * 2654435761ULL)
                          % static_cast<uint64_t>(classes));
}

struct Interpreter {
  const Graph& g;
  const NumericOptions& options;
  std::vector<Tensor> value;  // by OpId
  NumericResult result;

  Interpreter(const Graph& graph, const NumericOptions& opts)
      : g(graph), options(opts),
        value(static_cast<size_t>(graph.num_slots())) {}

  struct In {
    const Tensor* tensor = nullptr;
    const Operation* producer = nullptr;
  };

  // Live input tensors of `id`, in edge-insertion order, with the slice
  // semantics of Alg. 2's split nodes applied. Rewrites reorder edges, so
  // kernels classify inputs by producer kind, never by position.
  std::vector<In> Inputs(OpId id, std::vector<Tensor>& scratch) {
    std::vector<EdgeId> live;
    for (EdgeId e : g.in_edges(id)) {
      const Edge& edge = g.edge(e);
      if (!edge.dead && !g.op(edge.src).dead) live.push_back(e);
    }
    // Two passes: slices land in `scratch` first so pointers stay stable.
    std::vector<In> inputs(live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      const Edge& edge = g.edge(live[i]);
      if (g.op(edge.src).type == OpType::kSplit)
        scratch.push_back(SplitView(edge.src, id));
    }
    size_t scratch_next = 0;
    for (size_t i = 0; i < live.size(); ++i) {
      const Edge& edge = g.edge(live[i]);
      inputs[i].producer = &g.op(edge.src);
      inputs[i].tensor =
          g.op(edge.src).type == OpType::kSplit
              ? &scratch[scratch_next++]
              : &value[static_cast<size_t>(edge.src)];
    }
    return inputs;
  }

  // A parameter tensor arrives either straight from a Variable or through a
  // chain of split nodes broadcasting one (nested rewrites nest the glue).
  static bool CarriesParams(const Graph& graph, OpId id) {
    while (graph.op(id).type == OpType::kSplit) {
      const auto preds = graph.Preds(id);
      if (preds.size() != 1) return false;
      id = preds[0];
    }
    return graph.op(id).type == OpType::kVariable;
  }

  static bool IsParamInput(const Graph& graph, const In& in) {
    return CarriesParams(graph, in.producer->id);
  }

  // First input matching / not matching a predicate; throws when absent.
  template <typename Pred>
  static const Tensor& Pick(const std::vector<In>& inputs, Pred pred,
                            const char* what) {
    for (const In& in : inputs)
      if (pred(in)) return *in.tensor;
    FASTT_CHECK_MSG(false, std::string("missing expected input: ") + what);
    return *inputs.front().tensor;  // unreachable
  }

  // The slice of split node `sp` that consumer `consumer` (a ".../partI"
  // sub-op, or a nested split node standing in for one) reads. Weight
  // tensors broadcast whole: batch splits replicate parameters into every
  // partition.
  Tensor SplitView(OpId sp, OpId consumer) {
    const Tensor& full = value[static_cast<size_t>(sp)];
    // Weight-broadcast chains forward the whole tensor.
    if (CarriesParams(g, sp)) return full;

    const std::string& name = g.op(consumer).name;
    const size_t pos = name.rfind("/part");
    FASTT_CHECK_MSG(pos != std::string::npos,
                    "split consumer is not a partition: " + name);
    const int index = std::atoi(name.c_str() + pos + 5);
    // Partition row ranges mirror SplitOperation's remainder distribution.
    const auto siblings = g.Succs(sp);
    const int n = static_cast<int>(siblings.size());
    const int64_t rows = full.rows();
    int64_t begin = 0;
    for (int i = 0; i < index; ++i)
      begin += rows / n + (i < rows % n ? 1 : 0);
    const int64_t size = rows / n + (index < rows % n ? 1 : 0);
    if (g.op(consumer).type != OpType::kSplit) {
      FASTT_CHECK_MSG(g.op(consumer).batch == size,
                      "numeric executor supports batch splits only");
    }
    return full.SliceRows(begin, begin + size);
  }

  // Partition index of a concat input's producer relative to the concat's
  // base op name, or -1 when the input is not a ".../partI..." producer.
  static int PartitionIndex(const std::string& concat_name,
                            const std::string& producer_name) {
    const size_t base_len = concat_name.rfind("/concat");
    if (base_len == std::string::npos) return -1;
    const std::string needle =
        concat_name.substr(0, base_len) + "/part";
    if (producer_name.compare(0, needle.size(), needle) != 0) return -1;
    return std::atoi(producer_name.c_str() + needle.size());
  }

  // y = x · W, where W is the flat `weights` reshaped to [k, n].
  static Tensor MatMulForward(const Tensor& x, const Tensor& weights,
                              int64_t n) {
    const int64_t b = x.rows();
    const int64_t k = x.row_size();
    FASTT_CHECK_MSG(weights.size() == k * n, "weight shape mismatch");
    Tensor y(TensorShape{b, n});
    for (int64_t i = 0; i < b; ++i)
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p)
          acc += x.at(i * k + p) * weights.at(p * n + j);
        y.at(i * n + j) = acc;
      }
    return y;
  }

  // dX = dY · Wᵀ.
  static Tensor MatMulGradInput(const Tensor& dy, const Tensor& weights,
                                int64_t k) {
    const int64_t b = dy.rows();
    const int64_t n = dy.row_size();
    Tensor dx(TensorShape{b, k});
    for (int64_t i = 0; i < b; ++i)
      for (int64_t p = 0; p < k; ++p) {
        float acc = 0.0f;
        for (int64_t j = 0; j < n; ++j)
          acc += dy.at(i * n + j) * weights.at(p * n + j);
        dx.at(i * k + p) = acc;
      }
    return dx;
  }

  // dW = Xᵀ · dY (flat [k*n]).
  static Tensor MatMulGradWeights(const Tensor& x, const Tensor& dy) {
    const int64_t b = x.rows();
    const int64_t k = x.row_size();
    const int64_t n = dy.row_size();
    Tensor dw(TensorShape{k * n});
    for (int64_t p = 0; p < k; ++p)
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int64_t i = 0; i < b; ++i)
          acc += x.at(i * k + p) * dy.at(i * n + j);
        dw.at(p * n + j) = acc;
      }
    return dw;
  }

  struct ConvDims {
    int64_t b, h, w, cin, ho, wo, cout, k, stride, pad;
  };

  // Recovers kernel geometry from the activation/weight shapes (builders
  // emit SAME padding; weights are [k,k,cin,cout] + cout bias, flattened).
  static ConvDims InferConv(const TensorShape& in, const TensorShape& out,
                            int64_t weight_elems) {
    ConvDims d{};
    d.b = in.dim(0);
    d.h = in.dim(1);
    d.w = in.dim(2);
    d.cin = in.dim(3);
    d.ho = out.dim(1);
    d.wo = out.dim(2);
    d.cout = out.dim(3);
    const int64_t kk = (weight_elems - d.cout) / (d.cin * d.cout);
    d.k = 1;
    while (d.k * d.k < kk) ++d.k;
    FASTT_CHECK_MSG(d.k * d.k == kk, "non-square conv kernel");
    d.stride = (d.h + d.ho - 1) / d.ho;
    FASTT_CHECK_MSG((d.h + d.stride - 1) / d.stride == d.ho,
                    "numeric executor supports SAME padding only");
    d.pad = ((d.ho - 1) * d.stride + d.k - d.h) / 2;
    return d;
  }

  static Tensor ConvForward(const Tensor& x, const Tensor& w,
                            const ConvDims& d, const TensorShape& out_shape) {
    Tensor y(out_shape);
    const float* bias = w.data() + d.k * d.k * d.cin * d.cout;
    for (int64_t n = 0; n < d.b; ++n)
      for (int64_t oy = 0; oy < d.ho; ++oy)
        for (int64_t ox = 0; ox < d.wo; ++ox)
          for (int64_t oc = 0; oc < d.cout; ++oc) {
            float acc = bias[oc];
            for (int64_t ky = 0; ky < d.k; ++ky)
              for (int64_t kx = 0; kx < d.k; ++kx) {
                const int64_t iy = oy * d.stride + ky - d.pad;
                const int64_t ix = ox * d.stride + kx - d.pad;
                if (iy < 0 || iy >= d.h || ix < 0 || ix >= d.w) continue;
                for (int64_t ic = 0; ic < d.cin; ++ic)
                  acc += x.at(((n * d.h + iy) * d.w + ix) * d.cin + ic) *
                         w.at(((ky * d.k + kx) * d.cin + ic) * d.cout + oc);
              }
            y.at(((n * d.ho + oy) * d.wo + ox) * d.cout + oc) = acc;
          }
    return y;
  }

  static Tensor ConvGradInput(const Tensor& dy, const Tensor& w,
                              const ConvDims& d,
                              const TensorShape& in_shape) {
    Tensor dx(in_shape);
    for (int64_t n = 0; n < d.b; ++n)
      for (int64_t oy = 0; oy < d.ho; ++oy)
        for (int64_t ox = 0; ox < d.wo; ++ox)
          for (int64_t oc = 0; oc < d.cout; ++oc) {
            const float g =
                dy.at(((n * d.ho + oy) * d.wo + ox) * d.cout + oc);
            for (int64_t ky = 0; ky < d.k; ++ky)
              for (int64_t kx = 0; kx < d.k; ++kx) {
                const int64_t iy = oy * d.stride + ky - d.pad;
                const int64_t ix = ox * d.stride + kx - d.pad;
                if (iy < 0 || iy >= d.h || ix < 0 || ix >= d.w) continue;
                for (int64_t ic = 0; ic < d.cin; ++ic)
                  dx.at(((n * d.h + iy) * d.w + ix) * d.cin + ic) +=
                      g * w.at(((ky * d.k + kx) * d.cin + ic) * d.cout + oc);
              }
          }
    return dx;
  }

  static Tensor ConvGradWeights(const Tensor& x, const Tensor& dy,
                                const ConvDims& d, int64_t weight_elems) {
    Tensor dw(TensorShape{weight_elems});
    float* dbias = dw.data() + d.k * d.k * d.cin * d.cout;
    for (int64_t n = 0; n < d.b; ++n)
      for (int64_t oy = 0; oy < d.ho; ++oy)
        for (int64_t ox = 0; ox < d.wo; ++ox)
          for (int64_t oc = 0; oc < d.cout; ++oc) {
            const float g =
                dy.at(((n * d.ho + oy) * d.wo + ox) * d.cout + oc);
            dbias[oc] += g;
            for (int64_t ky = 0; ky < d.k; ++ky)
              for (int64_t kx = 0; kx < d.k; ++kx) {
                const int64_t iy = oy * d.stride + ky - d.pad;
                const int64_t ix = ox * d.stride + kx - d.pad;
                if (iy < 0 || iy >= d.h || ix < 0 || ix >= d.w) continue;
                for (int64_t ic = 0; ic < d.cin; ++ic)
                  dw.at(((ky * d.k + kx) * d.cin + ic) * d.cout + oc) +=
                      g * x.at(((n * d.h + iy) * d.w + ix) * d.cin + ic);
              }
          }
    return dw;
  }

  // Softmax probabilities per row.
  static Tensor Softmax(const Tensor& logits) {
    const int64_t b = logits.rows();
    const int64_t c = logits.row_size();
    Tensor p(logits.shape());
    for (int64_t i = 0; i < b; ++i) {
      float max_logit = logits.at(i * c);
      for (int64_t j = 1; j < c; ++j)
        max_logit = std::max(max_logit, logits.at(i * c + j));
      float total = 0.0f;
      for (int64_t j = 0; j < c; ++j) {
        const float e = std::exp(logits.at(i * c + j) - max_logit);
        p.at(i * c + j) = e;
        total += e;
      }
      for (int64_t j = 0; j < c; ++j) p.at(i * c + j) /= total;
    }
    return p;
  }

  void Execute(OpId id) {
    const Operation& op = g.op(id);
    std::vector<Tensor> scratch;
    scratch.reserve(4);
    const auto inputs = Inputs(id, scratch);
    Tensor out;

    switch (op.type) {
      case OpType::kInput:
        (void)inputs;
        out = RandomTensor(op.output_shape, OpSeed(options.seed, op), 1.0f);
        break;
      case OpType::kVariable:
        out = RandomTensor(op.output_shape,
                           OpSeed(options.seed * 31 + 7, op), 0.1f);
        break;
      case OpType::kSplit:
        // Pass-through; consumers slice via SplitView.
        FASTT_CHECK(inputs.size() == 1);
        out = *inputs[0].tensor;
        break;
      case OpType::kConcat: {
        // Rewrite concats must reassemble partitions in index order even
        // when later rewrites appended edges out of order.
        std::vector<std::pair<int, const Tensor*>> ordered;
        for (size_t i = 0; i < inputs.size(); ++i) {
          const int index =
              PartitionIndex(op.name, inputs[i].producer->name);
          ordered.emplace_back(index >= 0 ? index : static_cast<int>(i),
                               inputs[i].tensor);
        }
        std::sort(ordered.begin(), ordered.end(),
                  [](const auto& a, const auto& b) {
                    return a.first < b.first;
                  });
        std::vector<Tensor> parts;
        for (const auto& [index, tensor] : ordered)
          parts.push_back(*tensor);
        out = ConcatRows(parts);
        break;
      }
      case OpType::kIdentity:
        FASTT_CHECK(!inputs.empty());
        out = *inputs[0].tensor;
        break;
      case OpType::kAdd:           // residual add or generated grad_sum
      case OpType::kGradAggregate: {
        FASTT_CHECK(!inputs.empty());
        out = *inputs[0].tensor;
        for (size_t i = 1; i < inputs.size(); ++i) {
          FASTT_CHECK(inputs[i].tensor->size() == out.size());
          for (int64_t j = 0; j < out.size(); ++j)
            out.at(j) += inputs[i].tensor->at(j);
        }
        break;
      }
      case OpType::kRelu: {
        FASTT_CHECK(inputs.size() == 1);
        out = *inputs[0].tensor;
        for (int64_t j = 0; j < out.size(); ++j)
          out.at(j) = std::max(0.0f, out.at(j));
        break;
      }
      case OpType::kReluGrad: {
        const Tensor& dy = Pick(
            inputs, [](const In& in) { return in.producer->is_backward; },
            "upstream gradient");
        const Tensor& y = Pick(
            inputs, [](const In& in) { return !in.producer->is_backward; },
            "relu output");
        out = dy;
        for (int64_t j = 0; j < out.size(); ++j)
          if (y.at(j) <= 0.0f) out.at(j) = 0.0f;
        break;
      }
      case OpType::kBiasAdd: {
        const Tensor& bias = Pick(
            inputs,
            [&](const In& in) { return IsParamInput(g, in); }, "bias");
        const Tensor& x = Pick(
            inputs,
            [&](const In& in) { return !IsParamInput(g, in); }, "input");
        out = x;
        const int64_t n = out.row_size();
        FASTT_CHECK(bias.size() == n);
        for (int64_t i = 0; i < out.rows(); ++i)
          for (int64_t j = 0; j < n; ++j) out.at(i * n + j) += bias.at(j);
        break;
      }
      case OpType::kBiasAddGrad: {
        // db = sum over rows of dY.
        FASTT_CHECK(!inputs.empty());
        const Tensor& dy = *inputs[0].tensor;
        const int64_t n = dy.row_size();
        out = Tensor(TensorShape{n});
        for (int64_t i = 0; i < dy.rows(); ++i)
          for (int64_t j = 0; j < n; ++j) out.at(j) += dy.at(i * n + j);
        break;
      }
      case OpType::kMatMul: {
        FASTT_CHECK(inputs.size() == 2);
        if (EndsWith(op.name, "/wgrad")) {
          // dW = Xᵀ · dY: the gradient comes from the backward sweep, the
          // activation from the forward one.
          const Tensor& dy = Pick(
              inputs, [](const In& in) { return in.producer->is_backward; },
              "upstream gradient");
          const Tensor& x = Pick(
              inputs,
              [](const In& in) { return !in.producer->is_backward; },
              "activation");
          out = MatMulGradWeights(x, dy);
        } else if (Contains(op.name, "/grad_to/")) {
          // dX = dY · Wᵀ.
          const Tensor& weights = Pick(
              inputs, [&](const In& in) { return IsParamInput(g, in); },
              "weights");
          const Tensor& dy = Pick(
              inputs, [&](const In& in) { return !IsParamInput(g, in); },
              "upstream gradient");
          const int64_t n = dy.row_size();
          const int64_t k = weights.size() / n;
          out = MatMulGradInput(dy, weights, k);
        } else {
          const Tensor& weights = Pick(
              inputs, [&](const In& in) { return IsParamInput(g, in); },
              "weights");
          const Tensor& x = Pick(
              inputs, [&](const In& in) { return !IsParamInput(g, in); },
              "input");
          const int64_t cols =
              op.output_shape.dim(op.output_shape.rank() - 1);
          out = MatMulForward(x, weights, cols);
        }
        break;
      }
      case OpType::kConv2D: {
        const Tensor& w = Pick(
            inputs, [&](const In& in) { return IsParamInput(g, in); },
            "filter");
        const Tensor& x = Pick(
            inputs, [&](const In& in) { return !IsParamInput(g, in); },
            "input");
        const ConvDims d = InferConv(x.shape(), op.output_shape, w.size());
        out = ConvForward(x, w, d, op.output_shape);
        break;
      }
      case OpType::kConv2DBackpropInput: {
        const Tensor& w = Pick(
            inputs, [&](const In& in) { return IsParamInput(g, in); },
            "filter");
        const Tensor& dy = Pick(
            inputs, [&](const In& in) { return !IsParamInput(g, in); },
            "upstream gradient");
        const ConvDims d =
            InferConv(op.output_shape, dy.shape(), w.size());
        out = ConvGradInput(dy, w, d, op.output_shape);
        break;
      }
      case OpType::kConv2DBackpropFilter: {
        const Tensor& dy = Pick(
            inputs, [](const In& in) { return in.producer->is_backward; },
            "upstream gradient");
        const Tensor& x = Pick(
            inputs, [](const In& in) { return !in.producer->is_backward; },
            "activation");
        const ConvDims d =
            InferConv(x.shape(), dy.shape(), op.output_shape.num_elements());
        out = ConvGradWeights(x, dy, d, op.output_shape.num_elements());
        break;
      }
      case OpType::kSoftmaxCrossEntropy: {
        FASTT_CHECK(inputs.size() == 1);
        const Tensor probs = Softmax(*inputs[0].tensor);
        const int64_t b = probs.rows();
        const int64_t c = probs.row_size();
        out = Tensor(TensorShape{b});
        double total = 0.0;
        for (int64_t i = 0; i < b; ++i) {
          const int label = LabelFor(options.seed, i, c);
          const float p = std::max(probs.at(i * c + label), 1e-12f);
          out.at(i) = -std::log(p);
          total += out.at(i);
        }
        result.loss = total / static_cast<double>(b);
        break;
      }
      case OpType::kSoftmaxCrossEntropyGrad: {
        const Tensor& logits = Pick(
            inputs,
            [](const In& in) {
              return in.producer->type != OpType::kSoftmaxCrossEntropy;
            },
            "logits");
        const Tensor probs = Softmax(logits);
        const int64_t b = probs.rows();
        const int64_t c = probs.row_size();
        out = probs;
        for (int64_t i = 0; i < b; ++i) {
          const int label = LabelFor(options.seed, i, c);
          out.at(i * c + label) -= 1.0f;
          for (int64_t j = 0; j < c; ++j)
            out.at(i * c + j) /= static_cast<float>(b);
        }
        break;
      }
      case OpType::kApplyGradient: {
        // SGD on the colocated variable: W' = W - lr * g.
        FASTT_CHECK(inputs.size() == 1);
        const OpId var = op.colocate_with;
        FASTT_CHECK_MSG(var != kInvalidOp && !g.op(var).dead,
                        "apply without a variable: " + op.name);
        Tensor updated = value[static_cast<size_t>(var)];
        FASTT_CHECK(inputs[0].tensor->size() == updated.size());
        for (int64_t j = 0; j < updated.size(); ++j)
          updated.at(j) -= options.learning_rate * inputs[0].tensor->at(j);
        result.parameters.emplace(g.op(var).name, updated);
        out = Tensor(TensorShape{0});
        break;
      }
      default:
        FASTT_CHECK_MSG(false, std::string("numeric executor does not "
                                           "support op type ") +
                                   OpTypeName(op.type) + " (" + op.name +
                                   ")");
    }

    // Normalize to the op's declared logical shape (matmul kernels produce
    // flat [rows, cols] tensors even when the logical tensor is NHWC).
    // Split nodes keep their input's true shape: row slicing depends on it.
    if (op.type != OpType::kSplit &&
        out.size() == op.output_shape.num_elements() &&
        !(out.shape() == op.output_shape)) {
      out = Tensor(op.output_shape, out.values());
    }
    result.outputs.emplace(op.name, out);
    value[static_cast<size_t>(id)] = std::move(out);
  }
};

}  // namespace

NumericResult ExecuteNumerically(const Graph& g,
                                 const NumericOptions& options) {
  Interpreter interp(g, options);
  for (OpId id : g.TopoOrder()) {
    try {
      interp.Execute(id);
    } catch (const std::logic_error& e) {
      throw std::logic_error(std::string(e.what()) + " [while executing " +
                             g.op(id).name + "]");
    }
  }
  return std::move(interp.result);
}

}  // namespace fastt
