#include "graph/serialize.h"

#include <sstream>
#include <vector>

#include "util/check.h"
#include "util/strings.h"

namespace fastt {
namespace {

constexpr int kFormatVersion = 1;

// Dead slots keep their position (so OpId-indexed vectors stay valid) but
// not their name: the name pool belongs to live ops.
std::string DeadName(OpId id) { return StrFormat("~dead~%d", id); }

}  // namespace

void SerializeGraph(const Graph& g, std::ostream& out) {
  out.precision(17);  // round-trip doubles exactly
  out << "fastt_graph " << kFormatVersion << "\n";
  out << "graph " << g.name() << "\n";
  for (OpId id = 0; id < g.num_slots(); ++id) {
    const Operation& op = g.op(id);
    int flags = 0;
    if (op.dead) flags |= 1;
    if (op.is_backward) flags |= 2;
    out << "op " << id << ' ' << static_cast<int>(op.type) << ' ' << flags
        << ' ' << op.flops << ' ' << op.bytes_touched << ' '
        << op.param_bytes << ' ' << op.temp_bytes << ' ' << op.batch << ' '
        << op.channels << ' ' << op.efficiency_override << ' '
        << op.cost_scale << ' ' << op.colocate_with << ' '
        << static_cast<int>(op.dtype);
    out << " dims";
    for (int64_t d : op.output_shape.dims()) out << ' ' << d;
    out << " | " << (op.dead ? DeadName(id) : op.name) << " | "
        << op.cost_key << " | " << op.cost_basis_key << "\n";
  }
  for (OpId id = 0; id < g.num_slots(); ++id) {
    if (g.op(id).dead) continue;
    for (EdgeId e : g.out_edges(id)) {
      const Edge& edge = g.edge(e);
      if (edge.dead || g.op(edge.dst).dead) continue;
      out << "edge " << edge.src << ' ' << edge.dst << ' ' << edge.bytes
          << "\n";
    }
  }
}

std::string SerializeGraph(const Graph& g) {
  std::ostringstream out;
  SerializeGraph(g, out);
  return out.str();
}

Graph DeserializeGraph(std::istream& in) {
  std::string keyword;
  int version = 0;
  in >> keyword >> version;
  FASTT_CHECK_MSG(keyword == "fastt_graph", "not a fastt graph file");
  FASTT_CHECK_MSG(version == kFormatVersion, "unsupported graph version");

  Graph g;
  std::vector<OpId> dead_ids;
  std::string line;
  std::getline(in, line);  // rest of header line
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "graph") {
      std::string name;
      ls >> name;
      g.set_name(name);
    } else if (kind == "op") {
      OpId id;
      int type = 0, flags = 0, dtype = 0;
      Operation op;
      ls >> id >> type >> flags >> op.flops >> op.bytes_touched >>
          op.param_bytes >> op.temp_bytes >> op.batch >> op.channels >>
          op.efficiency_override >> op.cost_scale >> op.colocate_with >>
          dtype;
      op.type = static_cast<OpType>(type);
      op.dtype = static_cast<DType>(dtype);
      std::string token;
      ls >> token;
      FASTT_CHECK_MSG(token == "dims", "malformed op line: " + line);
      std::vector<int64_t> dims;
      while (ls >> token && token != "|")
        dims.push_back(std::stoll(token));
      op.output_shape = TensorShape(std::move(dims));
      // Remaining: " name | cost_key | basis_key" (name first, already past
      // the first '|').
      std::string rest;
      std::getline(ls, rest);
      std::vector<std::string> fields;
      size_t pos = 0;
      while (true) {
        const size_t bar = rest.find('|', pos);
        std::string field = rest.substr(
            pos, bar == std::string::npos ? std::string::npos : bar - pos);
        // Trim surrounding spaces.
        const size_t b = field.find_first_not_of(' ');
        const size_t e = field.find_last_not_of(' ');
        fields.push_back(b == std::string::npos
                             ? std::string()
                             : field.substr(b, e - b + 1));
        if (bar == std::string::npos) break;
        pos = bar + 1;
      }
      FASTT_CHECK_MSG(fields.size() == 3, "malformed op fields: " + line);
      op.name = fields[0];
      op.cost_key = fields[1];
      op.cost_basis_key = fields[2];
      const bool dead = (flags & 1) != 0;
      op.is_backward = (flags & 2) != 0;
      const OpId assigned = g.AddOp(std::move(op));
      FASTT_CHECK_MSG(assigned == id, "non-contiguous op ids in file");
      if (dead) dead_ids.push_back(id);
    } else if (kind == "edge") {
      OpId src, dst;
      int64_t bytes;
      ls >> src >> dst >> bytes;
      g.AddEdge(src, dst, bytes);
    } else {
      FASTT_CHECK_MSG(false, "unknown record: " + kind);
    }
  }
  for (OpId id : dead_ids) g.RemoveOp(id);
  return g;
}

Graph DeserializeGraph(const std::string& text) {
  std::istringstream in(text);
  return DeserializeGraph(in);
}

}  // namespace fastt
