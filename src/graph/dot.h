// Graphviz export for debugging placements and rewrites.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace fastt {

// Renders the live subgraph as DOT. If `placement` is non-empty it must be
// indexed by OpId; nodes are colored per device.
std::string ExportDot(const Graph& g,
                      const std::vector<int>& placement = {});

}  // namespace fastt
