#include "graph/graph.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/check.h"

namespace fastt {

OpId Graph::AddOp(Operation op) {
  FASTT_CHECK_MSG(!op.name.empty(), "operation must have a name");
  FASTT_CHECK_MSG(by_name_.find(op.name) == by_name_.end(),
                  "duplicate op name: " + op.name);
  const OpId id = static_cast<OpId>(ops_.size());
  op.id = id;
  by_name_.emplace(op.name, id);
  ops_.push_back(std::move(op));
  // Adjacency lists get an explicit kGraph allocator — emplace_back would
  // otherwise default-construct them under the caller's ambient tag.
  out_edges_.emplace_back(TaggedAlloc<EdgeId>(MemTag::kGraph));
  in_edges_.emplace_back(TaggedAlloc<EdgeId>(MemTag::kGraph));
  ++num_live_;
  return id;
}

EdgeId Graph::AddEdge(OpId src, OpId dst, int64_t bytes) {
  FASTT_CHECK(src >= 0 && src < num_slots());
  FASTT_CHECK(dst >= 0 && dst < num_slots());
  FASTT_CHECK_MSG(src != dst, "self-edge on op " + ops_[src].name);
  FASTT_CHECK_MSG(!ops_[src].dead && !ops_[dst].dead,
                  "edge touches a dead op");
  Edge e;
  e.id = static_cast<EdgeId>(edges_.size());
  e.src = src;
  e.dst = dst;
  e.bytes = bytes >= 0 ? bytes : ops_[src].output_bytes();
  edges_.push_back(e);
  out_edges_[src].push_back(e.id);
  in_edges_[dst].push_back(e.id);
  return e.id;
}

void Graph::RemoveOp(OpId id) {
  Operation& op = mutable_op(id);
  if (op.dead) return;
  op.dead = true;
  --num_live_;
  by_name_.erase(op.name);
  for (EdgeId e : out_edges_[id]) edges_[e].dead = true;
  for (EdgeId e : in_edges_[id]) edges_[e].dead = true;
}

void Graph::RemoveEdge(EdgeId id) {
  FASTT_CHECK(id >= 0 && id < static_cast<EdgeId>(edges_.size()));
  edges_[id].dead = true;
}

int64_t Graph::num_live_edges() const {
  int64_t n = 0;
  for (const Edge& e : edges_)
    if (!e.dead) ++n;
  return n;
}

const Operation& Graph::op(OpId id) const {
  FASTT_CHECK(id >= 0 && id < num_slots());
  return ops_[static_cast<size_t>(id)];
}

Operation& Graph::mutable_op(OpId id) {
  FASTT_CHECK(id >= 0 && id < num_slots());
  return ops_[static_cast<size_t>(id)];
}

const Edge& Graph::edge(EdgeId id) const {
  FASTT_CHECK(id >= 0 && id < static_cast<EdgeId>(edges_.size()));
  return edges_[static_cast<size_t>(id)];
}

std::vector<OpId> Graph::LiveOps() const {
  std::vector<OpId> out;
  out.reserve(static_cast<size_t>(num_live_));
  for (const Operation& op : ops_)
    if (!op.dead) out.push_back(op.id);
  return out;
}

const EdgeIdList& Graph::out_edges(OpId id) const {
  FASTT_CHECK(id >= 0 && id < num_slots());
  return out_edges_[static_cast<size_t>(id)];
}

const EdgeIdList& Graph::in_edges(OpId id) const {
  FASTT_CHECK(id >= 0 && id < num_slots());
  return in_edges_[static_cast<size_t>(id)];
}

std::vector<OpId> Graph::Preds(OpId id) const {
  std::vector<OpId> out;
  std::unordered_set<OpId> seen;
  for (EdgeId e : in_edges(id)) {
    const Edge& edge = edges_[e];
    if (edge.dead || ops_[edge.src].dead) continue;
    if (seen.insert(edge.src).second) out.push_back(edge.src);
  }
  return out;
}

std::vector<OpId> Graph::Succs(OpId id) const {
  std::vector<OpId> out;
  std::unordered_set<OpId> seen;
  for (EdgeId e : out_edges(id)) {
    const Edge& edge = edges_[e];
    if (edge.dead || ops_[edge.dst].dead) continue;
    if (seen.insert(edge.dst).second) out.push_back(edge.dst);
  }
  return out;
}

OpId Graph::FindOp(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidOp : it->second;
}

std::vector<OpId> Graph::EntryOps() const {
  std::vector<OpId> out;
  for (const Operation& op : ops_) {
    if (op.dead) continue;
    bool has_live_in = false;
    for (EdgeId e : in_edges_[op.id]) {
      if (!edges_[e].dead) {
        has_live_in = true;
        break;
      }
    }
    if (!has_live_in) out.push_back(op.id);
  }
  return out;
}

std::vector<OpId> Graph::ExitOps() const {
  std::vector<OpId> out;
  for (const Operation& op : ops_) {
    if (op.dead) continue;
    bool has_live_out = false;
    for (EdgeId e : out_edges_[op.id]) {
      if (!edges_[e].dead) {
        has_live_out = true;
        break;
      }
    }
    if (!has_live_out) out.push_back(op.id);
  }
  return out;
}

std::vector<OpId> Graph::TopoOrder() const {
  std::vector<int32_t> in_degree(ops_.size(), 0);
  for (const Edge& e : edges_) {
    if (e.dead || ops_[e.src].dead || ops_[e.dst].dead) continue;
    ++in_degree[static_cast<size_t>(e.dst)];
  }
  std::deque<OpId> ready;
  for (const Operation& op : ops_)
    if (!op.dead && in_degree[static_cast<size_t>(op.id)] == 0)
      ready.push_back(op.id);

  std::vector<OpId> order;
  order.reserve(static_cast<size_t>(num_live_));
  while (!ready.empty()) {
    const OpId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (EdgeId e : out_edges_[id]) {
      const Edge& edge = edges_[e];
      if (edge.dead || ops_[edge.dst].dead) continue;
      if (--in_degree[static_cast<size_t>(edge.dst)] == 0)
        ready.push_back(edge.dst);
    }
  }
  FASTT_CHECK_MSG(order.size() == static_cast<size_t>(num_live_),
                  "graph contains a cycle");
  return order;
}

bool Graph::IsAcyclic() const {
  try {
    TopoOrder();
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

void Graph::Validate() const {
  std::unordered_set<std::string> names;
  for (const Operation& op : ops_) {
    if (op.dead) continue;
    FASTT_CHECK_MSG(names.insert(op.name).second,
                    "duplicate live op name: " + op.name);
    FASTT_CHECK(op.flops >= 0.0);
    FASTT_CHECK(op.param_bytes >= 0);
  }
  for (const Edge& e : edges_) {
    if (e.dead) continue;
    FASTT_CHECK_MSG(!ops_[e.src].dead && !ops_[e.dst].dead,
                    "live edge touches dead op");
    FASTT_CHECK(e.bytes >= 0);
  }
  FASTT_CHECK(IsAcyclic());
}

std::vector<double> Graph::LongestPathFromExit(
    const std::function<double(const Operation&)>& node_w,
    const std::function<double(const Edge&)>& edge_w) const {
  std::vector<double> value(ops_.size(), 0.0);
  const std::vector<OpId> order = TopoOrder();
  // Reverse topological sweep: successors are finalized before predecessors.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const OpId id = *it;
    double best_succ = 0.0;
    for (EdgeId e : out_edges_[id]) {
      const Edge& edge = edges_[e];
      if (edge.dead || ops_[edge.dst].dead) continue;
      best_succ = std::max(best_succ,
                           edge_w(edge) + value[static_cast<size_t>(edge.dst)]);
    }
    value[static_cast<size_t>(id)] = node_w(ops_[static_cast<size_t>(id)]) +
                                     best_succ;
  }
  return value;
}

double Graph::TotalFlops() const {
  double total = 0.0;
  for (const Operation& op : ops_)
    if (!op.dead) total += op.flops;
  return total;
}

int64_t Graph::TotalParamBytes() const {
  int64_t total = 0;
  for (const Operation& op : ops_)
    if (!op.dead) total += op.param_bytes;
  return total;
}

}  // namespace fastt
