// Placement memory accounting shared by the scheduler (DPOS device
// feasibility), the greedy model-parallel bootstrap and the strategy
// verifier. Lives in fastt_graph — it reads nothing but the graph — so the
// analysis layer can price memory without depending on fastt_core.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace fastt {

// Per-op device-memory demand used for placement feasibility: resident
// parameters/optimizer slots, plus the op's output activation when that
// activation is retained until the backward pass (i.e. some gradient op
// consumes it). Retained activations dominate training peak memory; tensors
// consumed only within the forward pass die quickly and are not charged.
int64_t MemNeed(const Graph& g, OpId id);

}  // namespace fastt
