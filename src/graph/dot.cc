#include "graph/dot.h"

#include "util/strings.h"

namespace fastt {

std::string ExportDot(const Graph& g, const std::vector<int>& placement) {
  static const char* kPalette[] = {"lightblue", "lightsalmon", "palegreen",
                                   "plum",      "khaki",       "lightcyan",
                                   "mistyrose", "lavender"};
  std::string out = "digraph \"" + g.name() + "\" {\n  rankdir=TB;\n";
  for (OpId id : g.LiveOps()) {
    const Operation& op = g.op(id);
    std::string attrs = StrFormat(
        "label=\"%s\\n%s %s\"", op.name.c_str(), OpTypeName(op.type),
        op.output_shape.ToString().c_str());
    if (static_cast<size_t>(id) < placement.size() && placement[id] >= 0) {
      attrs += StrFormat(
          ", style=filled, fillcolor=%s",
          kPalette[static_cast<size_t>(placement[id]) % 8]);
    }
    out += StrFormat("  n%d [%s];\n", id, attrs.c_str());
  }
  for (OpId id : g.LiveOps()) {
    for (EdgeId e : g.out_edges(id)) {
      const Edge& edge = g.edge(e);
      if (edge.dead || g.op(edge.dst).dead) continue;
      out += StrFormat("  n%d -> n%d [label=\"%s\"];\n", edge.src, edge.dst,
                       HumanBytes(static_cast<double>(edge.bytes)).c_str());
    }
  }
  out += "}\n";
  return out;
}

}  // namespace fastt
