// Text (de)serialization of computation graphs.
//
// The FastT workflow checkpoints the session and restarts it to activate a
// new strategy (paper §4): the rewritten graph and the strategy must
// round-trip through storage. The format is a line-oriented, versioned,
// human-diffable text format:
//
//   fastt_graph 1
//   graph <name>
//   op <id> <type> <flags> <flops> <bytes> <params> <temp> <batch>
//      <channels> <eff> <scale> <colocate> <dtype> <shape...> | <name> |
//      <cost_key> | <basis_key>
//   edge <src> <dst> <bytes>
//
// Dead slots are preserved so OpIds (and any placement/priority vectors
// indexed by them) stay valid across a round trip.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace fastt {

// Serializes the graph (including tombstoned slots) to text.
std::string SerializeGraph(const Graph& g);
void SerializeGraph(const Graph& g, std::ostream& out);

// Parses a graph previously produced by SerializeGraph. Throws
// std::logic_error on malformed input or version mismatch.
Graph DeserializeGraph(const std::string& text);
Graph DeserializeGraph(std::istream& in);

}  // namespace fastt
