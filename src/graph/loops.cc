#include "graph/loops.h"

#include "util/check.h"
#include "util/strings.h"

namespace fastt {

UnrolledLoop UnrollLoop(Graph& g, const LoopSpec& loop,
                        const std::string& prefix, int trip_count,
                        const std::vector<OpId>& initial) {
  FASTT_CHECK_MSG(trip_count >= 1, "loop needs at least one iteration");
  FASTT_CHECK_MSG(static_cast<bool>(loop.body), "loop has no body");

  UnrolledLoop result;
  result.carried = initial;
  for (int t = 0; t < trip_count; ++t) {
    const int32_t before = g.num_slots();
    const std::vector<OpId> next = loop.body(
        g, StrFormat("%s/iter%d", prefix.c_str(), t), result.carried);
    FASTT_CHECK_MSG(next.size() == result.carried.size(),
                    "body changed the loop-carried arity");
    for (OpId id : next)
      FASTT_CHECK_MSG(id >= 0 && id < g.num_slots() && !g.op(id).dead,
                      "body returned an invalid carried op");
    std::vector<OpId> instantiated;
    for (OpId id = before; id < g.num_slots(); ++id)
      if (!g.op(id).dead) instantiated.push_back(id);
    result.per_iteration_ops.push_back(std::move(instantiated));
    result.carried = next;
  }
  FASTT_CHECK_MSG(g.IsAcyclic(), "unrolled body introduced a cycle");
  return result;
}

}  // namespace fastt
