#include "graph/memory.h"

namespace fastt {

int64_t MemNeed(const Graph& g, OpId id) {
  const Operation& op = g.op(id);
  int64_t need = op.resident_bytes();
  if (!op.is_backward) {
    // A forward activation consumed by the backward pass stays alive until
    // then; that retained set (plus parameters) dominates training peaks.
    for (OpId s : g.Succs(id)) {
      if (g.op(s).is_backward) {
        need += op.output_bytes();
        break;
      }
    }
  }
  return need;
}

}  // namespace fastt
