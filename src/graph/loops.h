// Cyclic-graph support via unrolling — the paper's stated future work.
//
// §8: "some new features … allow cycles in computation graphs, such as
// dynamic RNN layers. Currently, FastT does not handle graphs with cycles.
// A potential solution is to break the cycles and reorganize the graph to
// be a DAG." This module implements that solution: a while-loop construct
// is described as a body builder plus its loop-carried values, and
// UnrollLoop instantiates the body `trip_count` times, threading each
// instance's carried outputs into the next instance's carried inputs — a
// DAG every FastT algorithm already handles. Dynamic trip counts are bounded
// by their maximum (exactly how bucketing/max-sequence-length padding works
// in practice); §3 of the paper likewise optimizes "the DAG within each of
// its loops".
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace fastt {

struct LoopSpec {
  // Builds ONE body instance into the graph under `prefix`, consuming the
  // loop-carried values of this iteration (op ids producing them) and
  // returning the next iteration's carried values. The body may reference
  // ops outside the loop (weights, inputs) freely — they become shared
  // predecessors of every instance.
  std::function<std::vector<OpId>(Graph&, const std::string& prefix,
                                  const std::vector<OpId>& carried)>
      body;
};

struct UnrolledLoop {
  // Final values of the loop-carried variables (outputs of the last body).
  std::vector<OpId> carried;
  // Every op instantiated, per iteration (for placement diagnostics).
  std::vector<std::vector<OpId>> per_iteration_ops;
};

// Unrolls `loop` for `trip_count` iterations under `prefix` ("while0"),
// starting from `initial` carried values. Throws if the body changes the
// carried arity or introduces a cycle.
UnrolledLoop UnrollLoop(Graph& g, const LoopSpec& loop,
                        const std::string& prefix, int trip_count,
                        const std::vector<OpId>& initial);

}  // namespace fastt
