// Graph rewrites.
//
// SplitOperation is the function of the same name in the paper's Alg. 2: it
// replaces one operation with n sub-operations partitioned along a
// parallelizable dimension, wiring split nodes on every predecessor edge and
// a concatenate node in front of the successors. Splitting preserves training
// semantics (the rewrite is purely structural), so there is no accuracy cost
// — only the compute/communication trade-off the scheduler weighs.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace fastt {

struct SplitResult {
  std::vector<OpId> sub_ops;     // the n partitions
  std::vector<OpId> split_nodes; // one per (live) predecessor edge
  OpId concat_node = kInvalidOp; // single concat feeding all successors
};

// True if `op` may be split into n parts along `dim` (type supports the
// dimension and the extent is at least n).
bool CanSplit(const Graph& g, OpId op, SplitDim dim, int n);

// Applies the rewrite in place. The original op is tombstoned. Requires
// CanSplit(g, op, dim, n).
//
// Cost semantics of the produced nodes:
//  * sub-op i performs size_i/extent of the original FLOPs and carries a
//    cost-model fallback (basis = parent key, scale = size_i/extent);
//  * batch split: weights are replicated into each sub-op; input edges carry
//    1/n of the tensor (fine-grained data parallelism);
//  * channel split: weights are partitioned 1/n; every sub-op reads the FULL
//    input tensor (fine-grained model parallelism) — this is the extra
//    broadcast traffic that makes channel splits of large-weight ops
//    unattractive, matching the paper's Table 5 analysis;
//  * split/concat glue nodes are memory-bound (cost ∝ bytes moved).
SplitResult SplitOperation(Graph& g, OpId op, SplitDim dim, int n);

// Shared cost-model key for byte-priced glue nodes (Split/Concat/
// GradAggregate): sizes are bucketed to powers of two so one profile prices
// every glue node of a similar size.
std::string GlueCostKey(OpType type, int64_t bytes);

}  // namespace fastt
