// A single node of the computation DAG.
#pragma once

#include <cstdint>
#include <string>

#include "graph/op_type.h"
#include "graph/shape.h"

namespace fastt {

using OpId = int32_t;
inline constexpr OpId kInvalidOp = -1;

struct Operation {
  OpId id = kInvalidOp;
  std::string name;          // unique within a graph, e.g. "rep0/conv1_2"
  OpType type = OpType::kIdentity;

  // Shape/dtype of the op's (single, logical) output tensor. Edge byte counts
  // default to this tensor's size.
  TensorShape output_shape;
  DType dtype = DType::kF32;

  // Analytic cost inputs. The simulator derives ground-truth durations from
  // these; FastT itself only ever sees profiled times.
  double flops = 0.0;         // floating-point operations performed
  int64_t bytes_touched = 0;  // memory traffic for memory-bound ops
  // Kernel efficiency override (fraction of device peak). 0 = use the
  // per-op-type default. Model builders set this where the kernel shape
  // matters (e.g. Winograd-eligible 3x3 convs vs. bandwidth-bound 1x1s).
  double efficiency_override = 0.0;

  // Memory footprint on the device the op is placed on.
  int64_t param_bytes = 0;    // persistent (weights owned by this op)
  int64_t temp_bytes = 0;     // transient workspace while executing

  // Split bookkeeping (Alg. 2): current extents along the splittable dims.
  int64_t batch = 0;          // samples this op processes (0 = n/a)
  int64_t channels = 0;       // output channels / columns (0 = n/a)

  // Cost-model key. Data-parallel replicas of the same logical op share this
  // key so a profile of one replica prices all of them — matching the paper's
  // observation that DP bootstrapping learns each op's time on every device
  // in a handful of iterations.
  std::string cost_key;

  // When a fresh op is created by a graph rewrite (a split sub-op), the cost
  // model has no profile for it yet. The paper explores such ops by pricing
  // them at zero and profiling the next run; to let OS-DPOS evaluate
  // hypothetical splits without a profiling round-trip we also record the
  // parent op's key and a scale factor as an estimation fallback.
  std::string cost_basis_key;
  double cost_scale = 1.0;

  // Colocation constraint (TF-style): this op must be placed on the same
  // device as the referenced op — optimizer updates run where the parameters
  // live; LSTM timestep cells run where the (shared) layer weights live.
  // Placement algorithms resolve this after placing the referenced op.
  OpId colocate_with = kInvalidOp;

  // True for ops whose output is a reduction over the batch dimension
  // (weight gradients, bias gradients): Alg. 2's split/concat rewrite is
  // only valid along dimensions that partition the OUTPUT, so batch splits
  // of such ops are rejected — their batch-partitioned partials would need
  // a sum, not a concat. (The paper notes different split methods exist for
  // different op types; the concat method is the one it details.)
  bool reduces_batch = false;

  // True for ops created by backward-pass generation (gradients, gradient
  // sums, optimizer updates, aggregation). Backward tensors are transient —
  // produced and consumed within the backward sweep — so placement memory
  // accounting does not charge their outputs as retained activations.
  bool is_backward = false;

  // Rewrites tombstone ops instead of compacting ids.
  bool dead = false;

  int64_t output_bytes() const { return output_shape.ByteSize(dtype); }

  // Resident memory the op demands on its device (activations are accounted
  // dynamically by the simulator; this is the static part).
  int64_t resident_bytes() const { return param_bytes; }

  const std::string& CostKey() const {
    return cost_key.empty() ? name : cost_key;
  }
};

}  // namespace fastt
