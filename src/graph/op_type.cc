#include "graph/op_type.h"

namespace fastt {

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kInput: return "Input";
    case OpType::kVariable: return "Variable";
    case OpType::kConv2D: return "Conv2D";
    case OpType::kConv2DBackpropInput: return "Conv2DBackpropInput";
    case OpType::kConv2DBackpropFilter: return "Conv2DBackpropFilter";
    case OpType::kMaxPool: return "MaxPool";
    case OpType::kMaxPoolGrad: return "MaxPoolGrad";
    case OpType::kAvgPool: return "AvgPool";
    case OpType::kAvgPoolGrad: return "AvgPoolGrad";
    case OpType::kLRN: return "LRN";
    case OpType::kLRNGrad: return "LRNGrad";
    case OpType::kBatchNorm: return "BatchNorm";
    case OpType::kBatchNormGrad: return "BatchNormGrad";
    case OpType::kMatMul: return "MatMul";
    case OpType::kBiasAdd: return "BiasAdd";
    case OpType::kBiasAddGrad: return "BiasAddGrad";
    case OpType::kLayerNorm: return "LayerNorm";
    case OpType::kLayerNormGrad: return "LayerNormGrad";
    case OpType::kSoftmax: return "Softmax";
    case OpType::kSoftmaxGrad: return "SoftmaxGrad";
    case OpType::kEmbeddingLookup: return "EmbeddingLookup";
    case OpType::kEmbeddingGrad: return "EmbeddingGrad";
    case OpType::kGelu: return "Gelu";
    case OpType::kGeluGrad: return "GeluGrad";
    case OpType::kLSTMCell: return "LSTMCell";
    case OpType::kLSTMCellGrad: return "LSTMCellGrad";
    case OpType::kRelu: return "Relu";
    case OpType::kReluGrad: return "ReluGrad";
    case OpType::kAdd: return "Add";
    case OpType::kDropout: return "Dropout";
    case OpType::kDropoutGrad: return "DropoutGrad";
    case OpType::kIdentity: return "Identity";
    case OpType::kSoftmaxCrossEntropy: return "SoftmaxCrossEntropy";
    case OpType::kSoftmaxCrossEntropyGrad: return "SoftmaxCrossEntropyGrad";
    case OpType::kGradAggregate: return "GradAggregate";
    case OpType::kApplyGradient: return "ApplyGradient";
    case OpType::kSplit: return "Split";
    case OpType::kConcat: return "Concat";
  }
  return "Unknown";
}

const char* SplitDimName(SplitDim dim) {
  switch (dim) {
    case SplitDim::kNone: return "none";
    case SplitDim::kBatch: return "batch";
    case SplitDim::kChannel: return "channel";
  }
  return "?";
}

std::vector<SplitDim> ParallelizableDims(OpType type) {
  switch (type) {
    // Conv2D and its gradients split on both batch (fine-grained data
    // parallelism) and channel (fine-grained model parallelism) — paper §5.2.
    case OpType::kConv2D:
    case OpType::kConv2DBackpropInput:
    case OpType::kConv2DBackpropFilter:
      return {SplitDim::kBatch, SplitDim::kChannel};
    // MatMul splits on the row (batch) dimension and the output-column
    // dimension (which partitions the weight matrix — channel-style).
    case OpType::kMatMul:
      return {SplitDim::kBatch, SplitDim::kChannel};
    // Cheap elementwise / pooling ops are batch-splittable in principle;
    // OS-DPOS virtually never picks them because the split/concat overhead
    // dominates, but the solution space includes them.
    case OpType::kRelu:
    case OpType::kReluGrad:
    case OpType::kMaxPool:
    case OpType::kMaxPoolGrad:
    case OpType::kAvgPool:
    case OpType::kAvgPoolGrad:
    case OpType::kGelu:
    case OpType::kGeluGrad:
    case OpType::kLSTMCell:
    case OpType::kLSTMCellGrad:
      return {SplitDim::kBatch};
    // BatchNorm is the paper's explicit example of a non-splittable op (its
    // statistics couple the whole batch); normalization and glue likewise.
    default:
      return {};
  }
}

bool IsComputeBound(OpType type) {
  switch (type) {
    case OpType::kConv2D:
    case OpType::kConv2DBackpropInput:
    case OpType::kConv2DBackpropFilter:
    case OpType::kMatMul:
    case OpType::kLSTMCell:
    case OpType::kLSTMCellGrad:
      return true;
    default:
      return false;
  }
}

bool IsMathOp(OpType type) {
  switch (type) {
    case OpType::kInput:
    case OpType::kVariable:
    case OpType::kSplit:
    case OpType::kConcat:
      return false;
    default:
      return true;
  }
}

bool IsGradOp(OpType type) {
  switch (type) {
    case OpType::kConv2DBackpropInput:
    case OpType::kConv2DBackpropFilter:
    case OpType::kMaxPoolGrad:
    case OpType::kAvgPoolGrad:
    case OpType::kLRNGrad:
    case OpType::kBatchNormGrad:
    case OpType::kBiasAddGrad:
    case OpType::kLayerNormGrad:
    case OpType::kSoftmaxGrad:
    case OpType::kEmbeddingGrad:
    case OpType::kGeluGrad:
    case OpType::kLSTMCellGrad:
    case OpType::kReluGrad:
    case OpType::kDropoutGrad:
    case OpType::kSoftmaxCrossEntropyGrad:
      return true;
    default:
      return false;
  }
}

}  // namespace fastt
