// The computation DAG: operations (nodes) connected by tensors (edges).
//
// This is the structure every FastT algorithm consumes — ranks (§5.1), DPOS
// device selection, OS-DPOS splitting (§5.2) — and the structure the
// simulator executes. Rewrites tombstone nodes/edges rather than renumbering,
// so OpIds remain stable across SplitOperation calls.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/operation.h"
#include "util/memtrack.h"

namespace fastt {

using EdgeId = int32_t;

// Graph storage is charged to MemTag::kGraph regardless of which subsystem
// constructs or copies the graph (OS-DPOS trial copies included) — the
// allocator is fixed per-member, not taken from the ambient scope.
using EdgeIdList = TaggedVector<EdgeId>;

struct Edge {
  EdgeId id = -1;
  OpId src = kInvalidOp;
  OpId dst = kInvalidOp;
  int64_t bytes = 0;  // tensor size carried by this edge
  bool dead = false;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // ---- Construction ----------------------------------------------------

  // Adds an operation; assigns and returns its id. Names must be unique.
  OpId AddOp(Operation op);

  // Adds an edge carrying `bytes` (or, if bytes < 0, the source op's output
  // tensor size). Self-edges and duplicate (src,dst) pairs are allowed —
  // TF graphs routinely carry several tensors between the same pair.
  EdgeId AddEdge(OpId src, OpId dst, int64_t bytes = -1);

  // Tombstones an op and every edge touching it.
  void RemoveOp(OpId id);
  void RemoveEdge(EdgeId id);

  // ---- Access ------------------------------------------------------------

  // Total slots including tombstones; iterate with op(i).dead checks, or use
  // LiveOps().
  int32_t num_slots() const { return static_cast<int32_t>(ops_.size()); }
  // Total edge slots including tombstones (index space of EdgeId).
  int32_t num_edge_slots() const { return static_cast<int32_t>(edges_.size()); }
  int32_t num_live_ops() const { return num_live_; }
  int64_t num_live_edges() const;

  const Operation& op(OpId id) const;
  Operation& mutable_op(OpId id);
  const Edge& edge(EdgeId id) const;

  // Live op ids in insertion order.
  std::vector<OpId> LiveOps() const;

  // Edge-id lists (may include dead edges; filter with edge(e).dead).
  const EdgeIdList& out_edges(OpId id) const;
  const EdgeIdList& in_edges(OpId id) const;

  // Live predecessor / successor op ids (deduplicated, insertion order).
  std::vector<OpId> Preds(OpId id) const;
  std::vector<OpId> Succs(OpId id) const;

  // Lookup by name; kInvalidOp if absent (or dead).
  OpId FindOp(const std::string& name) const;

  // Ops with no live in-edges / no live out-edges.
  std::vector<OpId> EntryOps() const;
  std::vector<OpId> ExitOps() const;

  // ---- Algorithms --------------------------------------------------------

  // Topological order of live ops. Throws std::logic_error on a cycle.
  std::vector<OpId> TopoOrder() const;

  // True iff the live subgraph is acyclic.
  bool IsAcyclic() const;

  // Validates ids, name uniqueness among live ops, acyclicity.
  void Validate() const;

  // Longest path value per op given node weights and edge weights: for each
  // live op, weight(op) + max over live out-edges of (edge_w + value(succ)).
  // This is exactly the paper's rank_u recursion with pluggable costs.
  std::vector<double> LongestPathFromExit(
      const std::function<double(const Operation&)>& node_w,
      const std::function<double(const Edge&)>& edge_w) const;

  // ---- Aggregate stats ----------------------------------------------------
  double TotalFlops() const;
  int64_t TotalParamBytes() const;

 private:
  using NameMap =
      std::unordered_map<std::string, OpId, std::hash<std::string>,
                         std::equal_to<std::string>,
                         TaggedAlloc<std::pair<const std::string, OpId>>>;

  std::string name_;
  TaggedVector<Operation> ops_{TaggedAlloc<Operation>(MemTag::kGraph)};
  TaggedVector<Edge> edges_{TaggedAlloc<Edge>(MemTag::kGraph)};
  TaggedVector<EdgeIdList> out_edges_{TaggedAlloc<EdgeIdList>(MemTag::kGraph)};
  TaggedVector<EdgeIdList> in_edges_{TaggedAlloc<EdgeIdList>(MemTag::kGraph)};
  NameMap by_name_{NameMap::allocator_type(MemTag::kGraph)};
  int32_t num_live_ = 0;
};

}  // namespace fastt
