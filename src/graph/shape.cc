#include "graph/shape.h"

#include "util/check.h"
#include "util/strings.h"

namespace fastt {

int64_t DTypeSize(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return 4;
    case DType::kF16:
      return 2;
    case DType::kI32:
      return 4;
    case DType::kI64:
      return 8;
  }
  return 4;
}

const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "f32";
    case DType::kF16:
      return "f16";
    case DType::kI32:
      return "i32";
    case DType::kI64:
      return "i64";
  }
  return "?";
}

TensorShape::TensorShape(std::initializer_list<int64_t> dims) : dims_(dims) {
  for (int64_t d : dims_) FASTT_CHECK_MSG(d >= 0, "negative dimension");
}

TensorShape::TensorShape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
  for (int64_t d : dims_) FASTT_CHECK_MSG(d >= 0, "negative dimension");
}

int64_t TensorShape::dim(int64_t i) const {
  FASTT_CHECK(i >= 0 && i < rank());
  return dims_[static_cast<size_t>(i)];
}

int64_t TensorShape::num_elements() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

int64_t TensorShape::ByteSize(DType dtype) const {
  return num_elements() * DTypeSize(dtype);
}

TensorShape TensorShape::WithDim(int64_t i, int64_t v) const {
  FASTT_CHECK(i >= 0 && i < rank());
  FASTT_CHECK(v >= 0);
  std::vector<int64_t> dims = dims_;
  dims[static_cast<size_t>(i)] = v;
  return TensorShape(std::move(dims));
}

std::string TensorShape::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(dims_.size());
  for (int64_t d : dims_) parts.push_back(StrFormat("%lld", (long long)d));
  // Built via append rather than operator+ chains: GCC 12's -Wrestrict
  // false-fires on `"[" + std::string&& + "]"` at -O3 (PR105329).
  std::string out = "[";
  out += Join(parts, ",");
  out += "]";
  return out;
}

}  // namespace fastt
