#include "graph/rewrite.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace fastt {
namespace {

// Extent of the splittable dimension for this op.
int64_t SplitExtent(const Operation& op, SplitDim dim) {
  switch (dim) {
    case SplitDim::kBatch:
      return op.batch;
    case SplitDim::kChannel:
      return op.channels;
    case SplitDim::kNone:
      return 0;
  }
  return 0;
}

// Index of the output-shape axis corresponding to the split dimension, or -1
// if the shape does not expose it. Model builders emit NHWC conv tensors and
// [rows, cols] matmul tensors, so batch is axis 0 and channel the last axis.
int64_t SplitAxis(const Operation& op, SplitDim dim) {
  if (op.output_shape.rank() == 0) return -1;
  if (dim == SplitDim::kBatch) {
    return op.output_shape.dim(0) > 1 ? 0 : -1;
  }
  const int64_t last = op.output_shape.rank() - 1;
  return op.output_shape.dim(last) > 1 ? last : -1;
}

}  // namespace

std::string GlueCostKey(OpType type, int64_t bytes) {
  int bucket = 0;
  while ((int64_t{1} << bucket) < std::max<int64_t>(bytes, 1)) ++bucket;
  return StrFormat("%s#2^%d", OpTypeName(type), bucket);
}

bool CanSplit(const Graph& g, OpId op_id, SplitDim dim, int n) {
  if (n < 2) return false;
  const Operation& op = g.op(op_id);
  if (op.dead) return false;
  // Concat cannot express the sum a batch-reducing op would need.
  if (dim == SplitDim::kBatch && op.reduces_batch) return false;
  const auto dims = ParallelizableDims(op.type);
  if (std::find(dims.begin(), dims.end(), dim) == dims.end()) return false;
  return SplitExtent(op, dim) >= n;
}

SplitResult SplitOperation(Graph& g, OpId op_id, SplitDim dim, int n) {
  FASTT_CHECK_MSG(CanSplit(g, op_id, dim, n),
                  "invalid split of " + g.op(op_id).name);
  // Copy: the reference would dangle once we add ops.
  const Operation op = g.op(op_id);
  const int64_t extent = SplitExtent(op, dim);

  // Snapshot live incident edges before tombstoning.
  struct InEdge {
    OpId pre;
    int64_t bytes;
  };
  std::vector<InEdge> in;
  for (EdgeId e : g.in_edges(op_id)) {
    const Edge& edge = g.edge(e);
    if (!edge.dead && !g.op(edge.src).dead)
      in.push_back({edge.src, edge.bytes});
  }
  struct OutEdge {
    OpId suc;
    int64_t bytes;
  };
  std::vector<OutEdge> out;
  for (EdgeId e : g.out_edges(op_id)) {
    const Edge& edge = g.edge(e);
    if (!edge.dead && !g.op(edge.dst).dead)
      out.push_back({edge.dst, edge.bytes});
  }

  g.RemoveOp(op_id);

  SplitResult result;

  // ---- n sub-operations --------------------------------------------------
  const int64_t axis = SplitAxis(op, dim);
  for (int i = 0; i < n; ++i) {
    const int64_t size_i = extent / n + (i < extent % n ? 1 : 0);
    const double frac = static_cast<double>(size_i) /
                        static_cast<double>(extent);
    Operation sub = op;
    sub.id = kInvalidOp;
    sub.dead = false;
    sub.name = StrFormat("%s/part%d", op.name.c_str(), i);
    sub.flops = op.flops * frac;
    sub.bytes_touched =
        static_cast<int64_t>(static_cast<double>(op.bytes_touched) * frac);
    if (axis >= 0) {
      const int64_t new_dim = std::max<int64_t>(
          1, static_cast<int64_t>(
                 std::llround(static_cast<double>(op.output_shape.dim(axis)) *
                              frac)));
      sub.output_shape = op.output_shape.WithDim(axis, new_dim);
    }
    if (dim == SplitDim::kBatch) {
      sub.batch = size_i;
      // Weights replicated into each partition.
      sub.param_bytes = op.param_bytes;
    } else {
      sub.channels = size_i;
      sub.param_bytes = op.param_bytes / n;
    }
    sub.temp_bytes =
        static_cast<int64_t>(static_cast<double>(op.temp_bytes) * frac);
    // All equal-sized partitions of the same parent share a cost-model entry.
    sub.cost_key = StrFormat("%s#%s/%d", op.CostKey().c_str(),
                             SplitDimName(dim), n);
    sub.cost_basis_key = op.CostKey();
    sub.cost_scale = frac;
    result.sub_ops.push_back(g.AddOp(std::move(sub)));
  }

  // ---- split node per predecessor edge ------------------------------------
  for (size_t k = 0; k < in.size(); ++k) {
    Operation sp;
    sp.name = StrFormat("%s/split%zu", op.name.c_str(), k);
    sp.type = OpType::kSplit;
    sp.output_shape = TensorShape{in[k].bytes / 4};  // flat f32 view
    sp.dtype = DType::kF32;
    sp.bytes_touched = in[k].bytes;
    sp.cost_key = GlueCostKey(OpType::kSplit, in[k].bytes);
    sp.is_backward = op.is_backward;
    const OpId sp_id = g.AddOp(std::move(sp));
    result.split_nodes.push_back(sp_id);
    g.AddEdge(in[k].pre, sp_id, in[k].bytes);
    for (int i = 0; i < n; ++i) {
      // Batch split partitions the input; channel split broadcasts it whole.
      const int64_t part_bytes =
          dim == SplitDim::kBatch ? in[k].bytes / n : in[k].bytes;
      g.AddEdge(sp_id, result.sub_ops[static_cast<size_t>(i)], part_bytes);
    }
  }

  // Ops colocated with the vanished original follow its first partition.
  for (OpId id : g.LiveOps()) {
    if (g.op(id).colocate_with == op_id)
      g.mutable_op(id).colocate_with = result.sub_ops.front();
  }

  // ---- concat feeding the successors --------------------------------------
  // Alg. 2 creates a concat per successor; a single shared concat is
  // semantically identical and cheaper, so we emit one.
  if (!out.empty()) {
    Operation con;
    con.name = StrFormat("%s/concat", op.name.c_str());
    con.type = OpType::kConcat;
    con.output_shape = op.output_shape;
    con.dtype = op.dtype;
    con.bytes_touched = op.output_bytes();
    con.cost_key = GlueCostKey(OpType::kConcat, op.output_bytes());
    con.is_backward = op.is_backward;
    result.concat_node = g.AddOp(std::move(con));
    for (OpId sub : result.sub_ops)
      g.AddEdge(sub, result.concat_node, g.op(sub).output_bytes());
    for (const OutEdge& oe : out)
      g.AddEdge(result.concat_node, oe.suc, oe.bytes);
  }

  return result;
}

}  // namespace fastt
