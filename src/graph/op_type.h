// Operation taxonomy.
//
// Mirrors the TensorFlow op kinds that appear in the paper's nine benchmark
// models, plus the glue nodes FastT's graph rewrites introduce (Split/Concat,
// Alg. 2) and the gradient-aggregation traffic data parallelism creates.
#pragma once

#include <cstdint>
#include <vector>

namespace fastt {

enum class OpType : uint8_t {
  // Sources / parameters.
  kInput,        // training-batch feed
  kVariable,     // parameter read (weights resident on the op's device)

  // Convolutional nets.
  kConv2D,
  kConv2DBackpropInput,
  kConv2DBackpropFilter,
  kMaxPool,
  kMaxPoolGrad,
  kAvgPool,
  kAvgPoolGrad,
  kLRN,
  kLRNGrad,
  kBatchNorm,
  kBatchNormGrad,

  // Dense / attention nets.
  kMatMul,        // also all MatMul-shaped gradient ops
  kBiasAdd,
  kBiasAddGrad,
  kLayerNorm,
  kLayerNormGrad,
  kSoftmax,
  kSoftmaxGrad,
  kEmbeddingLookup,
  kEmbeddingGrad,
  kGelu,
  kGeluGrad,

  // Recurrent nets.
  kLSTMCell,
  kLSTMCellGrad,

  // Elementwise / misc.
  kRelu,
  kReluGrad,
  kAdd,           // residual adds etc.
  kDropout,
  kDropoutGrad,
  kIdentity,

  // Loss.
  kSoftmaxCrossEntropy,
  kSoftmaxCrossEntropyGrad,

  // Optimizer / data-parallel glue.
  kGradAggregate,  // sums replica gradients (the all-reduce stand-in)
  kApplyGradient,  // SGD parameter update

  // Graph-rewrite glue (Alg. 2 SplitOperation).
  kSplit,
  kConcat,
};

// Dimension an operation may be partitioned along (paper §5.2): batch-dim
// split is fine-grained data parallelism, channel-dim split is fine-grained
// model parallelism. kNone means the op is not splittable (e.g. BatchNorm).
enum class SplitDim : uint8_t {
  kNone,
  kBatch,
  kChannel,
};

const char* OpTypeName(OpType type);
const char* SplitDimName(SplitDim dim);

// Dimensions along which ops of this type can be split. Empty if none.
std::vector<SplitDim> ParallelizableDims(OpType type);

// Compute-bound ops are priced by FLOPs; memory-bound ops by bytes touched.
bool IsComputeBound(OpType type);

// True for ops that do real numerical work (excludes Input/Variable/Identity
// and the Split/Concat/aggregation glue) — used when reporting "computation
// time" in the Fig. 5 breakdown.
bool IsMathOp(OpType type);

// True for backward-pass op kinds; used by tests and placement diagnostics.
bool IsGradOp(OpType type);

}  // namespace fastt
