// Tensor metadata: element types and shapes.
//
// The computation graph is a metadata-only representation — we never allocate
// real tensor storage. Shapes exist so that operation FLOP counts, tensor
// transfer sizes and device memory demands are derived from the same model
// definitions the paper trains.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace fastt {

enum class DType : uint8_t {
  kF32,
  kF16,
  kI32,
  kI64,
};

// Bytes per element.
int64_t DTypeSize(DType dtype);
const char* DTypeName(DType dtype);

class TensorShape {
 public:
  TensorShape() = default;
  TensorShape(std::initializer_list<int64_t> dims);
  explicit TensorShape(std::vector<int64_t> dims);

  int64_t rank() const { return static_cast<int64_t>(dims_.size()); }
  int64_t dim(int64_t i) const;
  const std::vector<int64_t>& dims() const { return dims_; }

  // Product of dimensions; 1 for a scalar (rank 0).
  int64_t num_elements() const;

  int64_t ByteSize(DType dtype) const;

  // Returns a copy with dimension `i` replaced by `v`.
  TensorShape WithDim(int64_t i, int64_t v) const;

  std::string ToString() const;  // e.g. "[64,224,224,3]"

  bool operator==(const TensorShape& other) const = default;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace fastt
