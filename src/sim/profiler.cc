#include "sim/profiler.h"

namespace fastt {

RunProfile ExtractProfile(const Graph& g, const SimResult& result) {
  RunProfile profile;
  profile.iteration_s = result.makespan;
  profile.ops.reserve(result.op_records.size());
  for (const OpRecord& rec : result.op_records) {
    if (rec.device == kInvalidDevice) continue;  // dead slot
    profile.ops.push_back(
        OpProfile{g.op(rec.op).CostKey(), rec.device, rec.duration()});
  }
  profile.transfers.reserve(result.transfers.size());
  for (const TransferRecord& t : result.transfers) {
    // Report the un-queued path time (what a tracer's memcpy span shows);
    // queueing behind other tensors is congestion, which the linear model
    // absorbs into its fitted slope/intercept over many samples.
    profile.transfers.push_back(
        CommProfile{t.src, t.dst, t.bytes, t.arrival - t.start});
  }
  return profile;
}

}  // namespace fastt
