#include "sim/cluster.h"

#include "util/check.h"
#include "util/strings.h"

namespace fastt {

Cluster::Cluster(std::vector<Device> devices, InterconnectParams params)
    : devices_(std::move(devices)), params_(params) {
  for (size_t i = 0; i < devices_.size(); ++i)
    FASTT_CHECK_MSG(devices_[i].id == static_cast<DeviceId>(i),
                    "device ids must be dense and ordered");
}

Cluster Cluster::SingleServer(int num_gpus, InterconnectParams params) {
  return MultiServer(1, num_gpus, params);
}

Cluster Cluster::MultiServer(int num_servers, int gpus_per_server,
                             InterconnectParams params) {
  FASTT_CHECK(num_servers >= 1 && gpus_per_server >= 1);
  std::vector<Device> devices;
  DeviceId id = 0;
  for (int s = 0; s < num_servers; ++s)
    for (int g = 0; g < gpus_per_server; ++g)
      devices.push_back(MakeV100(id++, s, g));
  return Cluster(std::move(devices), params);
}

const Device& Cluster::device(DeviceId id) const {
  FASTT_CHECK(id >= 0 && id < num_devices());
  return devices_[static_cast<size_t>(id)];
}

Link Cluster::LinkBetween(DeviceId src, DeviceId dst) const {
  FASTT_CHECK(src != dst);
  const Device& a = device(src);
  const Device& b = device(dst);
  if (a.server == b.server)
    return Link{params_.nvlink_bandwidth, params_.nvlink_latency};
  return Link{params_.net_bandwidth, params_.net_latency};
}

Link Cluster::SlowestLink() const {
  bool multi_server = false;
  for (const Device& d : devices_)
    if (d.server != devices_.front().server) multi_server = true;
  if (multi_server) return Link{params_.net_bandwidth, params_.net_latency};
  return Link{params_.nvlink_bandwidth, params_.nvlink_latency};
}

std::string Cluster::ToString() const {
  int servers = 0;
  for (const Device& d : devices_) servers = std::max(servers, d.server + 1);
  return StrFormat("%d GPU(s) on %d server(s)", num_devices(), servers);
}

}  // namespace fastt
