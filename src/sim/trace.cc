#include "sim/trace.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace fastt {
namespace {

// Trace Event Format timestamps are microseconds.
double Us(double seconds) { return seconds * 1e6; }

void AppendEvent(std::ostringstream& out, bool& first,
                 const std::string& name, const char* category, int pid,
                 int tid, double start_s, double duration_s) {
  if (!first) out << ",\n";
  first = false;
  // Escape is unnecessary: op names are [A-Za-z0-9_/#~.-] by construction.
  out << "  {\"name\": \"" << name << "\", \"cat\": \"" << category
      << "\", \"ph\": \"X\", \"pid\": " << pid << ", \"tid\": " << tid
      << ", \"ts\": " << StrFormat("%.3f", Us(start_s))
      << ", \"dur\": " << StrFormat("%.3f", Us(duration_s)) << "}";
}

void AppendThreadName(std::ostringstream& out, bool& first, int pid, int tid,
                      const std::string& name) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << pid
      << ", \"tid\": " << tid << ", \"args\": {\"name\": \"" << name
      << "\"}}";
}

}  // namespace

std::string ExportChromeTrace(const Graph& g, const SimResult& result) {
  std::ostringstream out;
  out << "[\n";
  bool first = true;

  const int num_devices = static_cast<int>(result.device_busy_s.size());
  for (int d = 0; d < num_devices; ++d) {
    AppendThreadName(out, first, 0, d, StrFormat("GPU %d compute", d));
    AppendThreadName(out, first, 0, 100 + d,
                     StrFormat("GPU %d egress copy", d));
  }

  for (const OpRecord& rec : result.op_records) {
    if (rec.device == kInvalidDevice) continue;
    AppendEvent(out, first, g.op(rec.op).name, "op", 0, rec.device,
                rec.start, rec.duration());
  }
  for (const TransferRecord& t : result.transfers) {
    AppendEvent(out, first,
                StrFormat("%s -> GPU%d (%s)", g.op(t.src_op).name.c_str(),
                          t.dst,
                          HumanBytes(static_cast<double>(t.bytes)).c_str()),
                "memcpy", 0, 100 + t.src, t.start, t.duration());
  }
  out << "\n]\n";
  return out.str();
}

bool WriteChromeTrace(const Graph& g, const SimResult& result,
                      const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  const std::string json = ExportChromeTrace(g, result);
  file << json;
  return static_cast<bool>(file);
}

}  // namespace fastt
