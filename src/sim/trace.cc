#include "sim/trace.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace fastt {
namespace {

// Trace Event Format timestamps are microseconds.
double Us(double seconds) { return seconds * 1e6; }

void AppendEvent(std::ostringstream& out, bool& first,
                 const std::string& name, const char* category, int pid,
                 int tid, double start_s, double duration_s) {
  if (!first) out << ",\n";
  first = false;
  // Escape is unnecessary: op names are [A-Za-z0-9_/#~.-] by construction.
  out << "  {\"name\": \"" << name << "\", \"cat\": \"" << category
      << "\", \"ph\": \"X\", \"pid\": " << pid << ", \"tid\": " << tid
      << ", \"ts\": " << StrFormat("%.3f", Us(start_s))
      << ", \"dur\": " << StrFormat("%.3f", Us(duration_s)) << "}";
}

void AppendThreadName(std::ostringstream& out, bool& first, int pid, int tid,
                      const std::string& name) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << pid
      << ", \"tid\": " << tid << ", \"args\": {\"name\": \"" << name
      << "\"}}";
}

// Flow event ("s" start / "t" step / "f" finish): Perfetto draws an arrow
// through the slices enclosing each ts, which is how producer → transfer →
// consumer causality becomes visible. `ts` must land inside the slice, so
// callers pass the slice midpoint.
void AppendFlow(std::ostringstream& out, bool& first, const char* phase,
                int id, int tid, double ts_s) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\": \"tensor\", \"cat\": \"flow\", \"ph\": \"" << phase
      << "\", \"id\": " << id << ", \"pid\": 0, \"tid\": " << tid
      << ", \"ts\": " << StrFormat("%.3f", Us(ts_s));
  if (phase[0] == 'f') out << ", \"bp\": \"e\"";
  out << "}";
}

// Counter event: one sample of a per-device counter track.
void AppendCounter(std::ostringstream& out, bool& first,
                   const std::string& name, double ts_s, int64_t value) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\": \"" << name << "\", \"ph\": \"C\", \"pid\": 0"
      << ", \"ts\": " << StrFormat("%.3f", Us(ts_s))
      << ", \"args\": {\"bytes\": " << value << "}}";
}

}  // namespace

std::string ExportChromeTrace(const Graph& g, const SimResult& result) {
  std::ostringstream out;
  out << "[\n";
  bool first = true;

  const int num_devices = static_cast<int>(result.device_busy_s.size());
  for (int d = 0; d < num_devices; ++d) {
    AppendThreadName(out, first, 0, d, StrFormat("GPU %d compute", d));
    AppendThreadName(out, first, 0, 100 + d,
                     StrFormat("GPU %d egress copy", d));
  }

  for (const OpRecord& rec : result.op_records) {
    if (rec.device == kInvalidDevice) continue;
    AppendEvent(out, first, g.op(rec.op).name, "op", 0, rec.device,
                rec.start, rec.duration());
  }
  int flow_id = 0;
  for (const TransferRecord& t : result.transfers) {
    AppendEvent(out, first,
                StrFormat("%s -> GPU%d (%s)", g.op(t.src_op).name.c_str(),
                          t.dst,
                          HumanBytes(static_cast<double>(t.bytes)).c_str()),
                "memcpy", 0, 100 + t.src, t.start, t.duration());
    // Producer kernel → copy slice → consumer kernel, as one flow arrow.
    const OpRecord& src = result.op_records[static_cast<size_t>(t.src_op)];
    const OpRecord& dst = result.op_records[static_cast<size_t>(t.dst_op)];
    const int id = flow_id++;
    AppendFlow(out, first, "s", id, t.src, (src.start + src.finish) / 2.0);
    AppendFlow(out, first, "t", id, 100 + t.src,
               (t.start + t.arrival) / 2.0);
    if (dst.device != kInvalidDevice)
      AppendFlow(out, first, "f", id, t.dst,
                 (dst.start + dst.finish) / 2.0);
  }

  // Live-memory counter tracks (populated when the simulation ran with
  // record_memory_timeline): lets Perfetto show exactly when a device
  // approaches its capacity — the Table 3 OOM story as a picture.
  for (size_t d = 0; d < result.memory_timeline.size(); ++d) {
    const std::string name = StrFormat("GPU %zu memory", d);
    for (const MemorySample& sample : result.memory_timeline[d])
      AppendCounter(out, first, name, sample.time, sample.bytes);
  }
  out << "\n]\n";
  return out.str();
}

bool WriteChromeTrace(const Graph& g, const SimResult& result,
                      const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  const std::string json = ExportChromeTrace(g, result);
  file << json;
  return static_cast<bool>(file);
}

}  // namespace fastt
