// Incremental re-simulation: after a local strategy edit — one op re-placed,
// or one op split — only the affected cone of the event timeline is
// recomputed; everything outside the cone is copied from the cached run.
//
// The contract is exactness, not approximation: the result after each update
// equals what a fresh Simulate() of the edited graph/placement would return
// (makespan, per-op records, per-edge arrivals, transfers — bit-identical),
// which the property tests enforce. That works because:
//
//  * Simulate's events are processed in the canonical order
//    (time, kind, op, edge) — a pure function of event content — so a replay
//    that generates only a subset of the events still interleaves them
//    exactly as the full run would.
//  * The dirty cone is closed under two per-device horizons, both found by a
//    worklist fixpoint that only ever lowers them:
//      - dispatch horizon hd(D): every op on D whose cached start is at or
//        after hd(D) is dirty. Each dirty op X carries an uncertainty time
//        u(X), a lower bound on when its record can first differ from the
//        cache; dirtying X lowers hd(dev(X)) to u(X). Too-low a u is merely
//        conservative (dirties more), never wrong. Simulated durations are a
//        pure function of (op, device, seed) and link times of (edge, device
//        pair), so a consumer of X inherits u(X) + duration(X) plus the
//        link's latency and occupancy when cross-device — not u(X) itself —
//        which keeps the cone of a late edit from swallowing the timeline.
//      - engine horizon he(D): every cached carrying transfer touching D
//        (either endpoint) that starts at or after he(D) has its producer
//        marked emission-dirty; an emission-dirty producer re-runs its send
//        loop and its cross-device consumers are dirtied at its finish.
//    Closure gives the two invariants replay relies on: every clean op on D
//    starts before any dirty op on D can become ready (so clean dispatch
//    decisions are untouched), and no clean transfer ever selects a copy
//    engine slot written by a dirty transfer.
//  * Replay re-dispatches only dirty ops. Clean ops keep their cached
//    records. Emission-dirty producers re-run their send loop as an event at
//    their cached finish (sharing the canonical position of their op-finish
//    in the full run). Every other clean producer is passive: it never
//    enters the event queue — its cached transfers are applied to the copy
//    engines by a pointer walk merged into the event stream in canonical
//    order, its dirty consumers receive their cached arrivals as up-front
//    events, and only a device's canonically-last clean op gets a finish
//    event (it must release the device to dirty work).
//
// Scope: timing only. Memory tracking is not replayed (construct with
// SimOptions::track_memory = false); peak_memory/oom stay empty/false.
#pragma once

#include <queue>
#include <utility>
#include <vector>

#include "graph/rewrite.h"
#include "sim/cluster.h"
#include "sim/exec_sim.h"

namespace fastt {

class IncrementalSim {
 public:
  // Runs one full simulation to seed the cache. `g` is held by reference and
  // must outlive this object; it may only be mutated through rewrites that
  // are reported via NotifySplit. Requires options.track_memory == false.
  IncrementalSim(const Graph& g, std::vector<DeviceId> placement,
                 const Cluster& cluster, const SimOptions& options = {});

  // The simulation of the current graph + placement (always up to date).
  const SimResult& result() const { return base_; }
  const std::vector<DeviceId>& placement() const { return placement_; }

  // Moves one live op to `device` and recomputes the affected cone.
  const SimResult& Replace(OpId op, DeviceId device);

  // Call after SplitOperation(g, removed, ...) rewrote the bound graph:
  // `removed` is tombstoned and split.{split_nodes, sub_ops, concat_node}
  // are new live ops. `devices` places them (parallel to the concatenation
  // split_nodes ++ sub_ops ++ concat_node used by AddedOps()).
  const SimResult& NotifySplit(OpId removed, const SplitResult& split,
                               const std::vector<DeviceId>& devices);

  // The new ops a split introduces, in NotifySplit's placement order.
  static std::vector<OpId> AddedOps(const SplitResult& split);

 private:
  // One queued fixpoint consequence: dirty `op` from t on, re-run `op`'s send
  // loop, or lower a device horizon to t. Drained in ascending (t, kind, id)
  // order — any order reaches the same least fixpoint (every quantity only
  // decreases), but ascending-time processing settles each op's uncertainty
  // near its final value the first time it is seen instead of re-relaxing its
  // whole downstream cone once per lowering.
  struct WorkItem {
    double t = 0.0;
    enum Kind { kDirty = 0, kEmit = 1, kHd = 2, kHe = 3 };
    Kind kind = kDirty;
    int32_t id = -1;  // op for kDirty/kEmit, device for kHd/kHe
    bool operator>(const WorkItem& other) const {
      if (t != other.t) return t > other.t;
      if (kind != other.kind) return kind > other.kind;
      return id > other.id;
    }
  };

  // Enqueues one consequence, unless the target state already satisfies it
  // (every quantity only decreases, so a consequence satisfied at push time
  // is still satisfied at pop time and would drain as a no-op). On dense
  // cones most consequences are already satisfied; filtering here keeps the
  // heap proportional to actual state changes.
  void Push(WorkItem::Kind kind, int32_t id, double t);
  void LowerDispatchHorizon(DeviceId d, double t);
  void LowerEngineHorizon(DeviceId d, double t);
  void MarkDirty(OpId op, double u);
  void MarkEmissionDirty(OpId op);
  void Drain();
  void Replay();
  void RebuildIndexes();

  const Graph& g_;
  std::vector<DeviceId> placement_;
  const Cluster& cluster_;
  SimOptions options_;
  SimResult base_;

  // Fixpoint state, reset after each Replay().
  std::vector<char> dirty_;
  std::vector<char> emit_dirty_;
  std::vector<double> u_;         // per op; meaningful when dirty_
  std::vector<double> hd_, he_;   // per device
  // Worklist drained to closure by Drain().
  std::priority_queue<WorkItem, std::vector<WorkItem>, std::greater<WorkItem>>
      work_;

  // Indexes over the cached run, rebuilt after each replay: live ops per
  // device sorted by cached start (dispatch-horizon sweeps), cached carrying
  // transfers touching each device sorted by cached transfer start
  // (engine-horizon sweeps), cached transfers produced by each op, and the
  // cached transfer carrying each edge, if any.
  std::vector<std::vector<OpId>> ops_by_device_;
  std::vector<std::vector<size_t>> transfers_by_device_;
  std::vector<std::vector<size_t>> transfers_by_src_;
  std::vector<int64_t> transfer_of_edge_;
};

}  // namespace fastt
