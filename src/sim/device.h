// Device model for the simulated testbed.
//
// The paper's experiments run on servers with 8 NVIDIA V100 GPUs (16 GB HBM2,
// NVLink). We model each GPU as a single serial execution engine with a peak
// FLOP rate, a memory bandwidth, a per-kernel launch overhead and a memory
// capacity. Ground-truth operation durations are derived analytically from
// these parameters via a roofline-style model; FastT itself never reads them
// — it only sees profiled durations, exactly as on real hardware.
#pragma once

#include <cstdint>
#include <string>

#include "graph/operation.h"

namespace fastt {

using DeviceId = int32_t;
inline constexpr DeviceId kInvalidDevice = -1;

struct Device {
  DeviceId id = kInvalidDevice;
  std::string name;            // "/server0/gpu:0"
  int32_t server = 0;          // server (machine) index
  int64_t memory_bytes = 0;    // HBM capacity
  // Fraction of HBM a training process can actually fill with tensors: the
  // TF runtime pool, cuDNN/cuBLAS workspaces and allocator fragmentation
  // claim the rest. Calibrated so the paper's OOM thresholds (Table 3)
  // reproduce on 16 GB cards.
  double usable_fraction = 0.57;
  double peak_flops = 0.0;     // FP32 peak, FLOP/s
  double mem_bandwidth = 0.0;  // bytes/s
  double launch_overhead_s = 0.0;  // fixed per-kernel cost
  double speed_factor = 1.0;   // >1 = faster device (heterogeneity hook)

  int64_t usable_bytes() const {
    return static_cast<int64_t>(usable_fraction *
                                static_cast<double>(memory_bytes));
  }
};

// V100-like defaults used by all experiment clusters.
Device MakeV100(DeviceId id, int32_t server, int32_t index_in_server);

// Fraction of peak FLOPs an op type achieves (kernel efficiency). Compute
// kernels differ: dense GEMMs run close to peak, convolutions somewhat lower,
// LSTM cells are launch/bandwidth limited.
double OpEfficiency(OpType type);

// Analytic ground-truth duration of `op` on `device` in seconds (no noise).
// Compute-bound ops follow a roofline max(flops-term, bytes-term); memory-
// bound ops are priced by bytes touched; metadata ops cost one launch.
double GroundTruthDuration(const Operation& op, const Device& device);

}  // namespace fastt
