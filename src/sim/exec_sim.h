// Discrete-event execution simulator — the stand-in for running a training
// iteration on the real multi-GPU testbed.
//
// Faithfully models the aspects of TensorFlow execution the paper's
// heuristics exploit:
//   * each GPU is a serial kernel engine; ready ops are dispatched FIFO
//     (TensorFlow's default executor) or by FastT's enforced priorities;
//   * tensors crossing devices occupy a per-direction channel (NVLink or the
//     network) and overlap with computation, so compute/memcpy overlap and
//     link contention emerge naturally;
//   * device memory is accounted (resident parameters + live activations +
//     workspace) and overflow is reported as OOM, which drives the paper's
//     Table 3 and all memory-feasibility decisions.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sim/cluster.h"

namespace fastt {

// How a device's ready queue is drained.
enum class DispatchMode {
  // Deterministic arrival order — an idealized FIFO.
  kFifo,
  // Arrival order scrambled among concurrently-ready ops: models the real
  // TF executor, whose inter-op thread pool dequeues the ready queue in
  // effectively arbitrary order. This is what makes op ordering matter (the
  // TicTac observation the paper cites): a bulk tensor send picked before a
  // critical one stalls downstream devices.
  kRandom,
  // Ascending priority — FastT's order enforcement (paper §6.1).
  kPriority,
};

struct SimOptions {
  // DMA copy engines per device per direction (V100-class hardware).
  static constexpr size_t kCopyEnginesPerDirection = 2;

  DispatchMode dispatch = DispatchMode::kFifo;
  // Backwards-compatible alias: enforce_order = true selects kPriority.
  bool enforce_order = false;
  // Priorities indexed by OpId; required for kPriority.
  std::vector<int64_t> priorities;
  // Multiplicative lognormal-ish execution-time noise (coefficient of
  // variation). 0 = deterministic. Profiling realism for the cost models.
  double noise_cv = 0.0;
  uint64_t seed = 1;
  // Account memory and flag OOM.
  bool track_memory = true;
  // Additionally record the live-memory timeline per device (one sample per
  // alloc/free). Off by default: trace export wants it, the thousands of
  // simulations inside the strategy search do not.
  bool record_memory_timeline = false;
};

// One live-memory sample: bytes resident on the device at `time`.
struct MemorySample {
  double time = 0.0;
  int64_t bytes = 0;
};

struct OpRecord {
  OpId op = kInvalidOp;
  DeviceId device = kInvalidDevice;
  double start = 0.0;
  double finish = 0.0;
  double duration() const { return finish - start; }
};

struct TransferRecord {
  OpId src_op = kInvalidOp;
  OpId dst_op = kInvalidOp;
  DeviceId src = kInvalidDevice;
  DeviceId dst = kInvalidDevice;
  int64_t bytes = 0;
  double start = 0.0;    // when the channel begins carrying the tensor
  double arrival = 0.0;  // when the consumer may use it
  EdgeId edge = -1;      // the carrying edge (dedup'd consumers alias it)
  double duration() const { return arrival - start; }
};

struct SimResult {
  double makespan = 0.0;
  // Indexed by OpId (slots for dead ops have device == kInvalidDevice).
  std::vector<OpRecord> op_records;
  std::vector<TransferRecord> transfers;
  std::vector<double> device_busy_s;    // per device
  std::vector<int64_t> peak_memory;     // per device, bytes
  bool oom = false;
  std::vector<DeviceId> oom_devices;
  // Sum of numerical-op durations across devices ("computation time" in the
  // paper's Fig. 5 breakdown) and sum of transfer durations ("memcpy time").
  double total_compute_s = 0.0;
  double total_memcpy_s = 0.0;
  // Per-device live-memory samples; populated only when
  // SimOptions::record_memory_timeline is set (feeds the Chrome-trace
  // counter tracks that visualize the Table 3 OOM story).
  std::vector<std::vector<MemorySample>> memory_timeline;
  // Consumer-visible arrival time per EdgeId slot (-1 for dead/unused
  // edges). Same-device edges arrive at the producer's finish; dedup'd
  // cross-device edges share the carrying transfer's arrival. This is the
  // per-edge timeline that incremental re-simulation replays.
  std::vector<double> edge_arrival;
};

// Executes the live subgraph of `g` under `placement` (DeviceId per OpId) on
// `cluster`. Throws std::logic_error on malformed inputs (missing placements,
// cyclic graph).
//
// Event-ordering contract: simultaneous events are processed in the canonical
// order (time, kind, op id, edge id) with op-finish ranked before arrival.
// This makes the processing order a pure function of event content — not of
// push order — which is what lets IncrementalSim replay a subset of the
// timeline and still interleave identically with the full simulation.
SimResult Simulate(const Graph& g, const std::vector<DeviceId>& placement,
                   const Cluster& cluster, const SimOptions& options = {});

// Deterministic per-op execution-time noise factor, a pure function of
// (run seed, op id, cv) — shared by Simulate and IncrementalSim so a
// replayed op draws exactly the duration the full simulation would.
double SimNoiseFactor(uint64_t seed, OpId op, double cv);

// Convenience: true iff the placement's resident parameters alone already
// exceed some device's memory (cheap static check used by schedulers).
bool PlacementParamsFit(const Graph& g,
                        const std::vector<DeviceId>& placement,
                        const Cluster& cluster);

}  // namespace fastt
