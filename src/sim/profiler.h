// Profiler: converts a simulated run into the RunMetadata-shaped records the
// cost models consume — per-(op, device) execution times and per-(device
// pair) tensor transfer samples. This is the seam between the substrate and
// FastT proper: on real hardware these records come from the TensorFlow
// tracer, here from the simulator; everything above this interface is the
// paper's algorithm operating on profiles only.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "sim/exec_sim.h"

namespace fastt {

struct OpProfile {
  std::string cost_key;  // shared by data-parallel replicas / equal sub-ops
  DeviceId device = kInvalidDevice;
  double duration_s = 0.0;
};

struct CommProfile {
  DeviceId src = kInvalidDevice;
  DeviceId dst = kInvalidDevice;
  int64_t bytes = 0;
  double duration_s = 0.0;  // latency + serialization, excluding queueing
};

struct RunProfile {
  std::vector<OpProfile> ops;
  std::vector<CommProfile> transfers;
  double iteration_s = 0.0;
};

// Extracts profile records from a finished simulation.
RunProfile ExtractProfile(const Graph& g, const SimResult& result);

}  // namespace fastt
