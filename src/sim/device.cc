#include "sim/device.h"

#include <algorithm>

#include "util/strings.h"

namespace fastt {

Device MakeV100(DeviceId id, int32_t server, int32_t index_in_server) {
  Device d;
  d.id = id;
  d.name = StrFormat("/server%d/gpu:%d", server, index_in_server);
  d.server = server;
  d.memory_bytes = int64_t{16} * 1024 * 1024 * 1024;  // 16 GB
  d.peak_flops = 15.7e12;                             // FP32 peak
  d.mem_bandwidth = 900e9;                            // HBM2
  d.launch_overhead_s = 4e-6;
  return d;
}

double OpEfficiency(OpType type) {
  switch (type) {
    case OpType::kMatMul:
      return 0.70;
    case OpType::kConv2D:
      return 0.55;
    case OpType::kConv2DBackpropInput:
      return 0.48;
    case OpType::kConv2DBackpropFilter:
      return 0.45;
    case OpType::kLSTMCell:
      return 0.32;
    case OpType::kLSTMCellGrad:
      return 0.30;
    default:
      // Memory-bound ops: fraction of peak memory bandwidth achieved.
      return 0.75;
  }
}

double GroundTruthDuration(const Operation& op, const Device& device) {
  const double eff = op.efficiency_override > 0.0 ? op.efficiency_override
                                                  : OpEfficiency(op.type);
  double t = 0.0;
  if (IsComputeBound(op.type)) {
    const double flops_t = op.flops / (device.peak_flops * eff);
    const double bytes_t =
        static_cast<double>(op.bytes_touched) / device.mem_bandwidth;
    t = std::max(flops_t, bytes_t);
  } else {
    t = static_cast<double>(op.bytes_touched) / (device.mem_bandwidth * eff);
  }
  return (t + device.launch_overhead_s) / device.speed_factor;
}

}  // namespace fastt
