// Chrome trace export of a simulated iteration.
//
// Emits the Trace Event Format (the JSON array chrome://tracing,
// about:tracing and Perfetto load), with one row per device for kernels and
// one per copy-engine direction for transfers — the visualization
// practitioners use to see compute/communication overlap, pipeline bubbles
// and head-of-line blocking in a schedule.
#pragma once

#include <string>

#include "graph/graph.h"
#include "sim/exec_sim.h"

namespace fastt {

// Renders the run as a JSON string (self-contained, loadable as-is).
std::string ExportChromeTrace(const Graph& g, const SimResult& result);

// Convenience: writes the trace to a file. Returns false on I/O failure.
bool WriteChromeTrace(const Graph& g, const SimResult& result,
                      const std::string& path);

}  // namespace fastt
