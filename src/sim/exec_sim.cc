#include "sim/exec_sim.h"

#include <algorithm>
#include <map>
#include <queue>
#include <unordered_set>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/memtrack.h"
#include "util/rng.h"

namespace fastt {

// Deterministic per-op noise independent of event processing order: each op
// draws from its own stream derived from (run seed, op id).
double SimNoiseFactor(uint64_t seed, OpId op, double cv) {
  if (cv <= 0.0) return 1.0;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(op) + 1);
  const double f = 1.0 + cv * rng.NextGaussian();
  return std::max(0.25, f);
}

namespace {

struct Event {
  double time = 0.0;
  enum Kind { kOpFinish = 0, kArrival = 1 } kind = kOpFinish;
  OpId op = kInvalidOp;       // kOpFinish: the op; kArrival: consumer op
  EdgeId edge = -1;           // kArrival only
  // Canonical order (time, kind, op, edge): a pure function of event
  // content, so any engine that generates the same events — in particular
  // IncrementalSim's partial replay — processes them in the same order.
  // (No two events share all four fields: an op finishes once, an edge
  // delivers once.)
  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    if (op != other.op) return op > other.op;
    return edge > other.edge;
  }
};

struct ReadyEntry {
  int64_t key = 0;    // priority (enforce) or arrival sequence (FIFO)
  uint64_t seq = 0;   // insertion tie-break
  OpId op = kInvalidOp;
  bool operator>(const ReadyEntry& other) const {
    if (key != other.key) return key > other.key;
    return seq > other.seq;
  }
};

class MemoryTracker {
 public:
  MemoryTracker(const Cluster& cluster, bool enabled, bool record_timeline)
      : enabled_(enabled),
        usage_(static_cast<size_t>(cluster.num_devices()), 0),
        peak_(static_cast<size_t>(cluster.num_devices()), 0) {
    if (enabled_ && record_timeline)
      timeline_.resize(static_cast<size_t>(cluster.num_devices()));
  }

  void Alloc(DeviceId d, int64_t bytes, double now) {
    if (!enabled_ || bytes == 0) return;
    auto i = static_cast<size_t>(d);
    usage_[i] += bytes;
    peak_[i] = std::max(peak_[i], usage_[i]);
    Sample(i, now);
  }
  void Free(DeviceId d, int64_t bytes, double now) {
    if (!enabled_ || bytes == 0) return;
    usage_[static_cast<size_t>(d)] -= bytes;
    Sample(static_cast<size_t>(d), now);
  }
  const std::vector<int64_t>& peak() const { return peak_; }
  std::vector<std::vector<MemorySample>> TakeTimeline() {
    return std::move(timeline_);
  }

 private:
  void Sample(size_t i, double now) {
    if (timeline_.empty()) return;
    auto& t = timeline_[i];
    // Coalesce same-timestamp updates into the final value at that instant.
    if (!t.empty() && t.back().time == now)
      t.back().bytes = usage_[i];
    else
      t.push_back(MemorySample{now, usage_[i]});
  }

  bool enabled_;
  std::vector<int64_t> usage_;
  std::vector<int64_t> peak_;
  std::vector<std::vector<MemorySample>> timeline_;
};

}  // namespace

bool PlacementParamsFit(const Graph& g,
                        const std::vector<DeviceId>& placement,
                        const Cluster& cluster) {
  std::vector<int64_t> resident(static_cast<size_t>(cluster.num_devices()), 0);
  for (OpId id : g.LiveOps()) {
    const DeviceId d = placement[static_cast<size_t>(id)];
    resident[static_cast<size_t>(d)] += g.op(id).resident_bytes();
  }
  for (int32_t d = 0; d < cluster.num_devices(); ++d)
    if (resident[static_cast<size_t>(d)] > cluster.device(d).usable_bytes())
      return false;
  return true;
}

SimResult Simulate(const Graph& g, const std::vector<DeviceId>& placement,
                   const Cluster& cluster, const SimOptions& options) {
  FASTT_SCOPED_TIMER("sim/simulate");
  const auto live = g.LiveOps();
  FASTT_CHECK_MSG(placement.size() >= static_cast<size_t>(g.num_slots()),
                  "placement must cover all op slots");
  for (OpId id : live) {
    const DeviceId d = placement[static_cast<size_t>(id)];
    FASTT_CHECK_MSG(d >= 0 && d < cluster.num_devices(),
                    "op " + g.op(id).name + " has no valid device");
  }
  const DispatchMode dispatch = options.enforce_order
                                    ? DispatchMode::kPriority
                                    : options.dispatch;
  if (dispatch == DispatchMode::kPriority) {
    FASTT_CHECK_MSG(
        options.priorities.size() >= static_cast<size_t>(g.num_slots()),
        "priority dispatch requires priorities per op");
  }

  SimResult result;
  result.op_records.assign(static_cast<size_t>(g.num_slots()), OpRecord{});
  result.edge_arrival.assign(static_cast<size_t>(g.num_edge_slots()), -1.0);
  result.device_busy_s.assign(static_cast<size_t>(cluster.num_devices()), 0.0);

  MemoryTracker memory(cluster, options.track_memory,
                       options.record_memory_timeline);
  // Parameters are resident for the whole iteration.
  for (OpId id : live)
    memory.Alloc(placement[static_cast<size_t>(id)],
                 g.op(id).resident_bytes(), 0.0);

  // Remaining tensor arrivals per op (each live in-edge delivers one).
  std::vector<int32_t> pending(static_cast<size_t>(g.num_slots()), 0);
  // Remaining holds on each op's producer-side output buffer. Same-device
  // consumers release their hold when they finish (they read the buffer in
  // place); cross-device consumers release it once the transfer lands.
  std::vector<int32_t> out_refs(static_cast<size_t>(g.num_slots()), 0);
  // Bytes staged on a consumer's device by cross-device transfers; freed
  // when the consumer finishes.
  std::vector<int64_t> staged_bytes(static_cast<size_t>(g.num_slots()), 0);

  for (OpId id : live) {
    for (EdgeId e : g.in_edges(id)) {
      const Edge& edge = g.edge(e);
      if (!edge.dead && !g.op(edge.src).dead)
        ++pending[static_cast<size_t>(id)];
    }
    for (EdgeId e : g.out_edges(id)) {
      const Edge& edge = g.edge(e);
      if (!edge.dead && !g.op(edge.dst).dead)
        ++out_refs[static_cast<size_t>(id)];
    }
  }

  // Event churn is the simulator's dominant allocation source; charge the
  // queues (and per-device ready heaps) to sim/events so memstat and the
  // trace counters attribute them.
  MemTagScope mem_scope(MemTag::kSimEvents);
  std::priority_queue<Event, TaggedVector<Event>, std::greater<Event>> events(
      std::greater<Event>(), TaggedVector<Event>(TaggedAlloc<Event>(MemTag::kSimEvents)));

  using ReadyQueue =
      std::priority_queue<ReadyEntry, TaggedVector<ReadyEntry>,
                          std::greater<ReadyEntry>>;
  std::vector<ReadyQueue> ready(
      static_cast<size_t>(cluster.num_devices()),
      ReadyQueue(std::greater<ReadyEntry>(),
                 TaggedVector<ReadyEntry>(
                     TaggedAlloc<ReadyEntry>(MemTag::kSimEvents))));
  std::vector<bool> busy(static_cast<size_t>(cluster.num_devices()), false);
  uint64_t ready_counter = 0;

  // Copy-engine model: a small number of DMA engines per device and
  // direction (V100s expose a few; TF stripes copies across them), so
  // concurrent transfers sharing an endpoint serialize once the engines are
  // saturated.
  const size_t engines = SimOptions::kCopyEnginesPerDirection;
  std::vector<std::vector<double>> egress_free(
      static_cast<size_t>(cluster.num_devices()),
      std::vector<double>(engines, 0.0));
  std::vector<std::vector<double>> ingress_free(
      static_cast<size_t>(cluster.num_devices()),
      std::vector<double>(engines, 0.0));
  auto earliest = [](std::vector<double>& v) {
    return std::min_element(v.begin(), v.end());
  };
  // Edges whose arrival carries a physical copy (vs. aliasing a dedup'd one).
  std::unordered_set<EdgeId> carrying_edges;

  auto release_output_hold = [&](OpId producer, double now) {
    if (--out_refs[static_cast<size_t>(producer)] == 0) {
      memory.Free(placement[static_cast<size_t>(producer)],
                  g.op(producer).output_bytes(), now);
    }
  };

  auto push_ready = [&](OpId op) {
    const DeviceId d = placement[static_cast<size_t>(op)];
    ReadyEntry entry;
    entry.seq = ready_counter++;
    switch (dispatch) {
      case DispatchMode::kFifo:
        entry.key = static_cast<int64_t>(entry.seq);
        break;
      case DispatchMode::kRandom: {
        // Deterministic pseudo-random dequeue order per (seed, op).
        Rng rng(options.seed * 0x2545f4914f6cdd1dULL +
                static_cast<uint64_t>(op));
        entry.key = static_cast<int64_t>(rng.NextU64() >> 1);
        break;
      }
      case DispatchMode::kPriority:
        entry.key = options.priorities[static_cast<size_t>(op)];
        break;
    }
    entry.op = op;
    ready[static_cast<size_t>(d)].push(entry);
  };

  auto try_dispatch = [&](DeviceId d, double now) {
    auto& q = ready[static_cast<size_t>(d)];
    if (busy[static_cast<size_t>(d)] || q.empty()) return;
    const OpId op = q.top().op;
    q.pop();
    busy[static_cast<size_t>(d)] = true;
    const Operation& o = g.op(op);
    const double dur = GroundTruthDuration(o, cluster.device(d)) *
                       SimNoiseFactor(options.seed, op, options.noise_cv);
    auto& rec = result.op_records[static_cast<size_t>(op)];
    rec.op = op;
    rec.device = d;
    rec.start = now;
    rec.finish = now + dur;
    memory.Alloc(d, o.temp_bytes, now);
    events.push(Event{rec.finish, Event::kOpFinish, op, -1});
  };

  // Seed: ops with no inputs are ready at t = 0.
  for (OpId id : live)
    if (pending[static_cast<size_t>(id)] == 0) push_ready(id);
  for (int32_t d = 0; d < cluster.num_devices(); ++d) try_dispatch(d, 0.0);

  size_t finished = 0;
  while (!events.empty()) {
    const Event ev = events.top();
    events.pop();
    const double now = ev.time;

    if (ev.kind == Event::kOpFinish) {
      ++finished;
      const OpId op = ev.op;
      const Operation& o = g.op(op);
      const DeviceId d = placement[static_cast<size_t>(op)];
      const auto& rec = result.op_records[static_cast<size_t>(op)];
      result.device_busy_s[static_cast<size_t>(d)] += rec.duration();
      if (IsMathOp(o.type)) result.total_compute_s += rec.duration();
      memory.Free(d, o.temp_bytes, now);
      memory.Free(d, staged_bytes[static_cast<size_t>(op)], now);
      staged_bytes[static_cast<size_t>(op)] = 0;
      result.makespan = std::max(result.makespan, now);

      // Output buffer materializes now; terminal ops drop it immediately.
      memory.Alloc(d, o.output_bytes(), now);
      if (out_refs[static_cast<size_t>(op)] == 0)
        memory.Free(d, o.output_bytes(), now);

      // This op held its same-device inputs in place while running.
      for (EdgeId e : g.in_edges(op)) {
        const Edge& edge = g.edge(e);
        if (edge.dead || g.op(edge.src).dead) continue;
        if (placement[static_cast<size_t>(edge.src)] == d)
          release_output_hold(edge.src, now);
      }

      // TF rendezvous semantics: one physical send per (tensor, destination
      // device) — additional consumers on that device alias the landed copy.
      std::map<DeviceId, double> sent_arrival;
      for (EdgeId e : g.out_edges(op)) {
        const Edge& edge = g.edge(e);
        if (edge.dead || g.op(edge.dst).dead) continue;
        const DeviceId dd = placement[static_cast<size_t>(edge.dst)];
        if (dd == d) {
          result.edge_arrival[static_cast<size_t>(e)] = now;
          events.push(Event{now, Event::kArrival, edge.dst, e});
        } else if (auto it = sent_arrival.find(dd);
                   it != sent_arrival.end()) {
          result.edge_arrival[static_cast<size_t>(e)] = it->second;
          events.push(Event{it->second, Event::kArrival, edge.dst, e});
        } else {
          const Link link = cluster.LinkBetween(d, dd);
          auto eg = earliest(egress_free[static_cast<size_t>(d)]);
          auto in_ = earliest(ingress_free[static_cast<size_t>(dd)]);
          const double start = std::max({now, *eg, *in_});
          const double occupancy =
              static_cast<double>(edge.bytes) / link.bandwidth;
          const double arrival = start + link.latency + occupancy;
          *eg = start + occupancy;
          *in_ = start + occupancy;
          sent_arrival[dd] = arrival;
          carrying_edges.insert(e);
          result.transfers.push_back(TransferRecord{
              op, edge.dst, d, dd, edge.bytes, start, arrival, e});
          result.total_memcpy_s += arrival - start;
          result.edge_arrival[static_cast<size_t>(e)] = arrival;
          events.push(Event{arrival, Event::kArrival, edge.dst, e});
        }
      }
      busy[static_cast<size_t>(d)] = false;
      try_dispatch(d, now);
    } else {  // kArrival
      const Edge& edge = g.edge(ev.edge);
      const OpId consumer = ev.op;
      const DeviceId cd = placement[static_cast<size_t>(consumer)];
      const DeviceId pd = placement[static_cast<size_t>(edge.src)];
      if (cd != pd) {
        // Only the physical (carrying) transfer stages a copy on the
        // consumer's device; aliased arrivals reuse it. The producer-side
        // buffer hold is released per consumer as arrivals land.
        if (carrying_edges.count(ev.edge) > 0) {
          memory.Alloc(cd, edge.bytes, now);
          staged_bytes[static_cast<size_t>(consumer)] += edge.bytes;
        }
        release_output_hold(edge.src, now);
      }
      auto& left = pending[static_cast<size_t>(consumer)];
      FASTT_CHECK(left > 0);
      if (--left == 0) {
        push_ready(consumer);
        try_dispatch(cd, now);
      }
    }
  }

  FASTT_CHECK_MSG(finished == live.size(),
                  "deadlock: not all ops executed (cycle or missing input)");

  result.peak_memory = memory.peak();
  for (int32_t d = 0; d < cluster.num_devices(); ++d) {
    if (result.peak_memory[static_cast<size_t>(d)] >
        cluster.device(d).usable_bytes()) {
      result.oom = true;
      result.oom_devices.push_back(d);
    }
  }
  if (options.record_memory_timeline)
    result.memory_timeline = memory.TakeTimeline();

  MetricsRegistry& metrics = CurrentMetrics();
  metrics.AddCounter("sim/runs");
  metrics.AddCounter("sim/ops_executed", static_cast<int64_t>(finished));
  metrics.AddCounter("sim/transfers",
                     static_cast<int64_t>(result.transfers.size()));
  if (result.oom) metrics.AddCounter("sim/oom_runs");
  EmitMemTraceCounters();
  return result;
}

}  // namespace fastt
