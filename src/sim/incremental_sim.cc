#include "sim/incremental_sim.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "graph/rewrite.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/device.h"
#include "util/check.h"
#include "util/memtrack.h"
#include "util/rng.h"

namespace fastt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Mirrors exec_sim's canonical event order (time, kind, op, edge); kEmit is
// a clean producer's op-finish replayed at its cached time, so it shares the
// finish rank and orders exactly where the full run's kOpFinish would.
struct REvent {
  double time = 0.0;
  enum Kind { kFinish = 0, kArrival = 1 } kind = kFinish;
  OpId op = kInvalidOp;
  EdgeId edge = -1;
  bool operator>(const REvent& other) const {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    if (op != other.op) return op > other.op;
    return edge > other.edge;
  }
};

struct ReadyEntry {
  int64_t key = 0;
  uint64_t seq = 0;
  OpId op = kInvalidOp;
  bool operator>(const ReadyEntry& other) const {
    if (key != other.key) return key > other.key;
    return seq > other.seq;
  }
};

}  // namespace

std::vector<OpId> IncrementalSim::AddedOps(const SplitResult& split) {
  std::vector<OpId> added;
  added.insert(added.end(), split.split_nodes.begin(), split.split_nodes.end());
  added.insert(added.end(), split.sub_ops.begin(), split.sub_ops.end());
  if (split.concat_node != kInvalidOp) added.push_back(split.concat_node);
  return added;
}

IncrementalSim::IncrementalSim(const Graph& g,
                               std::vector<DeviceId> placement,
                               const Cluster& cluster,
                               const SimOptions& options)
    : g_(g),
      placement_(std::move(placement)),
      cluster_(cluster),
      options_(options) {
  FASTT_CHECK_MSG(!options_.track_memory && !options_.record_memory_timeline,
                  "IncrementalSim replays timing only; construct with "
                  "track_memory = false");
  FASTT_TRACE_SPAN("incsim/seed");
  base_ = Simulate(g_, placement_, cluster_, options_);
  const size_t slots = static_cast<size_t>(g_.num_slots());
  dirty_.assign(slots, 0);
  emit_dirty_.assign(slots, 0);
  u_.assign(slots, kInf);
  hd_.assign(static_cast<size_t>(cluster_.num_devices()), kInf);
  he_.assign(static_cast<size_t>(cluster_.num_devices()), kInf);
  RebuildIndexes();
}

void IncrementalSim::RebuildIndexes() {
  FASTT_SCOPED_TIMER("inc_sim/rebuild");
  const size_t n_dev = static_cast<size_t>(cluster_.num_devices());
  ops_by_device_.assign(n_dev, {});
  for (OpId id : g_.LiveOps())
    ops_by_device_[static_cast<size_t>(placement_[static_cast<size_t>(id)])]
        .push_back(id);
  for (auto& ops : ops_by_device_) {
    std::sort(ops.begin(), ops.end(), [&](OpId a, OpId b) {
      const double sa = base_.op_records[static_cast<size_t>(a)].start;
      const double sb = base_.op_records[static_cast<size_t>(b)].start;
      if (sa != sb) return sa < sb;
      return a < b;
    });
  }
  transfers_by_device_.assign(n_dev, {});
  transfers_by_src_.assign(static_cast<size_t>(g_.num_slots()), {});
  transfer_of_edge_.assign(static_cast<size_t>(g_.num_edge_slots()), -1);
  for (size_t i = 0; i < base_.transfers.size(); ++i) {
    const TransferRecord& t = base_.transfers[i];
    transfers_by_device_[static_cast<size_t>(t.src)].push_back(i);
    if (t.dst != t.src)
      transfers_by_device_[static_cast<size_t>(t.dst)].push_back(i);
    transfers_by_src_[static_cast<size_t>(t.src_op)].push_back(i);
    transfer_of_edge_[static_cast<size_t>(t.edge)] = static_cast<int64_t>(i);
  }
  // Engine-horizon sweeps binary-search each device's transfers by cached
  // start (emission order is not start order: a transfer emitted earlier can
  // start later if its engine is backed up).
  for (auto& ts : transfers_by_device_) {
    std::sort(ts.begin(), ts.end(), [&](size_t a, size_t b) {
      const double sa = base_.transfers[a].start;
      const double sb = base_.transfers[b].start;
      if (sa != sb) return sa < sb;
      return a < b;
    });
  }
}

// ---- Dirty-cone fixpoint ---------------------------------------------------
// MarkDirty / MarkEmissionDirty / Lower* apply their state change immediately
// and queue the consequences; Drain() runs the worklist to closure. All three
// quantities (u per op, hd and he per device) only ever decrease and are
// drawn from the finite set of cached times, so the fixpoint terminates.

void IncrementalSim::Push(WorkItem::Kind kind, int32_t id, double t) {
  switch (kind) {
    case WorkItem::kDirty:
      if (dirty_[static_cast<size_t>(id)] && u_[static_cast<size_t>(id)] <= t)
        return;
      break;
    case WorkItem::kEmit:
      // Emission-dirtying is idempotent and subsumed by full dirtiness.
      if (dirty_[static_cast<size_t>(id)] ||
          emit_dirty_[static_cast<size_t>(id)])
        return;
      break;
    case WorkItem::kHd:
      if (hd_[static_cast<size_t>(id)] <= t) return;
      break;
    case WorkItem::kHe:
      if (he_[static_cast<size_t>(id)] <= t) return;
      break;
  }
  work_.push(WorkItem{t, kind, id});
}

void IncrementalSim::LowerDispatchHorizon(DeviceId d, double t) {
  if (t >= hd_[static_cast<size_t>(d)]) return;
  const double old = hd_[static_cast<size_t>(d)];
  hd_[static_cast<size_t>(d)] = t;
  // Every op on d whose cached start falls in [t, old) may now be dispatched
  // differently; ops at >= old were dirtied by an earlier lowering.
  const auto& ops = ops_by_device_[static_cast<size_t>(d)];
  auto it = std::lower_bound(ops.begin(), ops.end(), t, [&](OpId a, double v) {
    return base_.op_records[static_cast<size_t>(a)].start < v;
  });
  for (; it != ops.end(); ++it) {
    if (base_.op_records[static_cast<size_t>(*it)].start >= old) break;
    Push(WorkItem::kDirty, *it, t);
  }
}

void IncrementalSim::LowerEngineHorizon(DeviceId d, double t) {
  if (t >= he_[static_cast<size_t>(d)]) return;
  const double old = he_[static_cast<size_t>(d)];
  he_[static_cast<size_t>(d)] = t;
  // Any cached carrying transfer whose start falls in [t, old) may see
  // different engine availability; its producer must re-emit live. Starts
  // at >= old were swept by an earlier lowering.
  const auto& ts = transfers_by_device_[static_cast<size_t>(d)];
  auto it = std::lower_bound(ts.begin(), ts.end(), t, [&](size_t ti, double v) {
    return base_.transfers[ti].start < v;
  });
  for (; it != ts.end(); ++it) {
    const TransferRecord& tr = base_.transfers[*it];
    if (tr.start >= old) break;
    Push(WorkItem::kEmit, tr.src_op,
         base_.op_records[static_cast<size_t>(tr.src_op)].finish);
  }
}

void IncrementalSim::MarkDirty(OpId op, double u) {
  if (g_.op(op).dead) return;
  if (dirty_[static_cast<size_t>(op)] && u_[static_cast<size_t>(op)] <= u)
    return;
  const bool newly = !dirty_[static_cast<size_t>(op)];
  dirty_[static_cast<size_t>(op)] = 1;
  u_[static_cast<size_t>(op)] = std::min(u_[static_cast<size_t>(op)], u);
  const double uu = u_[static_cast<size_t>(op)];
  const DeviceId d = placement_[static_cast<size_t>(op)];
  // The op's start can move to uu, so dispatch on its device can change from
  // uu on. But its duration is a pure function of (op, device, seed), so
  // nothing downstream — its finish, its outgoing transfers, its consumers —
  // can react before uu + dur, and cross-device consumers not before the
  // link's latency + occupancy on top (IEEE addition is monotone, so these
  // bounds hold bit-exactly against the replay's own arithmetic).
  const double dur =
      GroundTruthDuration(g_.op(op), cluster_.device(d)) *
      SimNoiseFactor(options_.seed, op, options_.noise_cv);
  const double fin = uu + dur;
  Push(WorkItem::kHd, d, uu);
  Push(WorkItem::kHe, d, fin);
  for (EdgeId e : g_.out_edges(op)) {
    const Edge& edge = g_.edge(e);
    if (edge.dead || g_.op(edge.dst).dead) continue;
    const DeviceId cd = placement_[static_cast<size_t>(edge.dst)];
    if (cd == d) {
      Push(WorkItem::kDirty, edge.dst, fin);
    } else {
      const Link link = cluster_.LinkBetween(d, cd);
      Push(WorkItem::kDirty, edge.dst,
           fin + link.latency +
               static_cast<double>(edge.bytes) / link.bandwidth);
      Push(WorkItem::kHe, cd, fin);
    }
  }
  if (newly) {
    // Its cached outgoing reservations disappear from the engine timelines.
    for (size_t ti : transfers_by_src_[static_cast<size_t>(op)]) {
      const TransferRecord& tr = base_.transfers[ti];
      Push(WorkItem::kHe, tr.src, tr.start);
      Push(WorkItem::kHe, tr.dst, tr.start);
    }
  }
}

void IncrementalSim::MarkEmissionDirty(OpId op) {
  if (g_.op(op).dead) return;
  if (dirty_[static_cast<size_t>(op)] || emit_dirty_[static_cast<size_t>(op)])
    return;
  emit_dirty_[static_cast<size_t>(op)] = 1;
  // The op itself is clean — its finish stands — but its send loop re-runs,
  // so cross-device consumers' arrivals and both engine endpoints can change
  // from its finish time on (consumers not before the link time on top).
  const double f = base_.op_records[static_cast<size_t>(op)].finish;
  const DeviceId d = placement_[static_cast<size_t>(op)];
  Push(WorkItem::kHe, d, f);
  for (EdgeId e : g_.out_edges(op)) {
    const Edge& edge = g_.edge(e);
    if (edge.dead || g_.op(edge.dst).dead) continue;
    const DeviceId cd = placement_[static_cast<size_t>(edge.dst)];
    if (cd == d) continue;  // same-device arrival == finish, unchanged
    const Link link = cluster_.LinkBetween(d, cd);
    Push(WorkItem::kDirty, edge.dst,
         f + link.latency + static_cast<double>(edge.bytes) / link.bandwidth);
    Push(WorkItem::kHe, cd, f);
  }
}

void IncrementalSim::Drain() {
  FASTT_SCOPED_TIMER("inc_sim/drain");
  FASTT_TRACE_SPAN("incsim/drain");
  while (!work_.empty()) {
    const WorkItem w = work_.top();
    work_.pop();
    switch (w.kind) {
      case WorkItem::kDirty:
        MarkDirty(w.id, w.t);
        break;
      case WorkItem::kEmit:
        MarkEmissionDirty(w.id);
        break;
      case WorkItem::kHd:
        LowerDispatchHorizon(static_cast<DeviceId>(w.id), w.t);
        break;
      case WorkItem::kHe:
        LowerEngineHorizon(static_cast<DeviceId>(w.id), w.t);
        break;
    }
  }
}

const SimResult& IncrementalSim::Replace(OpId op, DeviceId device) {
  FASTT_CHECK_MSG(op >= 0 && op < g_.num_slots() && !g_.op(op).dead,
                  "Replace: op must be live");
  FASTT_CHECK(device >= 0 && device < cluster_.num_devices());
  const DeviceId old = placement_[static_cast<size_t>(op)];
  if (old == device) return base_;
  FASTT_TRACE_SPAN("incsim/replace");
  CurrentMetrics().AddCounter("inc_sim/replacements");

  // The old device dispatches differently from where the op used to start.
  LowerDispatchHorizon(old, base_.op_records[static_cast<size_t>(op)].start);
  placement_[static_cast<size_t>(op)] = device;

  // Earliest the op can possibly be ready on the new device: each producer's
  // finish plus, for cross-device producers, the link's latency + occupancy
  // (the tensor must still traverse the wire even on an idle engine).
  double u0 = 0.0;
  for (EdgeId e : g_.in_edges(op)) {
    const Edge& edge = g_.edge(e);
    if (edge.dead || g_.op(edge.src).dead) continue;
    const double f = base_.op_records[static_cast<size_t>(edge.src)].finish;
    const DeviceId pd = placement_[static_cast<size_t>(edge.src)];
    double bound = f;
    if (pd != device) {
      const Link link = cluster_.LinkBetween(pd, device);
      bound = f + link.latency +
              static_cast<double>(edge.bytes) / link.bandwidth;
    }
    u0 = std::max(u0, bound);
    // Producers now send here instead of (or in addition to) the old device.
    Push(WorkItem::kEmit, edge.src, f);
    // Their cached transfers into the old placement free those engine slots.
    const int64_t ti = transfer_of_edge_[static_cast<size_t>(e)];
    if (ti >= 0) {
      const TransferRecord& tr = base_.transfers[static_cast<size_t>(ti)];
      Push(WorkItem::kHe, tr.src, tr.start);
      Push(WorkItem::kHe, tr.dst, tr.start);
    }
  }
  MarkDirty(op, u0);
  Drain();
  Replay();
  return base_;
}

const SimResult& IncrementalSim::NotifySplit(
    OpId removed, const SplitResult& split,
    const std::vector<DeviceId>& devices) {
  FASTT_CHECK_MSG(g_.op(removed).dead,
                  "NotifySplit: `removed` must already be tombstoned");
  const std::vector<OpId> added = AddedOps(split);
  FASTT_CHECK_MSG(devices.size() == added.size(),
                  "NotifySplit: one device per added op");
  FASTT_TRACE_SPAN("incsim/split");
  CurrentMetrics().AddCounter("inc_sim/splits");

  // The graph grew: extend every slot-indexed structure.
  const size_t slots = static_cast<size_t>(g_.num_slots());
  placement_.resize(slots, kInvalidDevice);
  dirty_.resize(slots, 0);
  emit_dirty_.resize(slots, 0);
  u_.resize(slots, kInf);
  base_.op_records.resize(slots, OpRecord{});
  base_.edge_arrival.resize(static_cast<size_t>(g_.num_edge_slots()), -1.0);
  transfers_by_src_.resize(slots, {});
  for (size_t i = 0; i < added.size(); ++i) {
    FASTT_CHECK(!g_.op(added[i]).dead);
    FASTT_CHECK(devices[i] >= 0 && devices[i] < cluster_.num_devices());
    placement_[static_cast<size_t>(added[i])] = devices[i];
  }

  // Removal seeds, using the removed op's cached record (then cleared).
  const DeviceId old_dev = placement_[static_cast<size_t>(removed)];
  LowerDispatchHorizon(old_dev,
                       base_.op_records[static_cast<size_t>(removed)].start);
  auto free_cached_transfer = [&](EdgeId e) {
    const int64_t ti = transfer_of_edge_[static_cast<size_t>(e)];
    if (ti < 0) return;
    const TransferRecord& tr = base_.transfers[static_cast<size_t>(ti)];
    Push(WorkItem::kHe, tr.src, tr.start);
    Push(WorkItem::kHe, tr.dst, tr.start);
  };
  for (EdgeId e : g_.in_edges(removed)) {
    const Edge& edge = g_.edge(e);
    if (g_.op(edge.src).dead) continue;
    // Former producers now feed the split nodes instead.
    Push(WorkItem::kEmit, edge.src,
         base_.op_records[static_cast<size_t>(edge.src)].finish);
    free_cached_transfer(e);
    base_.edge_arrival[static_cast<size_t>(e)] = -1.0;
  }
  for (EdgeId e : g_.out_edges(removed)) {
    free_cached_transfer(e);
    base_.edge_arrival[static_cast<size_t>(e)] = -1.0;
  }

  // Dirty the new ops in topological order (split_nodes -> sub_ops ->
  // concat), so each one's uncertainty can read its producers' current
  // state (the fixpoint re-relaxes through the new edges if a producer is
  // lowered later). Bounds mirror MarkDirty's: a dirty producer cannot emit
  // before u + its deterministic duration, a clean one before its cached
  // finish, and a cross-device tensor adds the link's latency + occupancy.
  for (OpId a : added) {
    const DeviceId ad = placement_[static_cast<size_t>(a)];
    double u = 0.0;
    for (EdgeId e : g_.in_edges(a)) {
      const Edge& edge = g_.edge(e);
      if (edge.dead || g_.op(edge.src).dead) continue;
      const size_t s = static_cast<size_t>(edge.src);
      const DeviceId sd = placement_[s];
      double bound;
      if (dirty_[s]) {
        const double dur =
            GroundTruthDuration(g_.op(edge.src), cluster_.device(sd)) *
            SimNoiseFactor(options_.seed, edge.src, options_.noise_cv);
        bound = u_[s] + dur;
      } else {
        bound = base_.op_records[s].finish;
      }
      if (sd != ad) {
        const Link link = cluster_.LinkBetween(sd, ad);
        bound = bound + link.latency +
                static_cast<double>(edge.bytes) / link.bandwidth;
      }
      u = std::max(u, bound);
    }
    MarkDirty(a, u);
  }
  Drain();
  // Only now may the tombstoned record be cleared: the dispatch-horizon
  // sweeps above binary-search ops_by_device_ by cached start, and the
  // removed op still sits in that index — zeroing its start mid-fixpoint
  // would unsort the array under lower_bound and skip ops it must dirty.
  base_.op_records[static_cast<size_t>(removed)] = OpRecord{};
  Replay();
  return base_;
}

// ---- Replay ----------------------------------------------------------------

void IncrementalSim::Replay() {
  FASTT_SCOPED_TIMER("inc_sim/replay");
  FASTT_TRACE_SPAN("incsim/replay");
  const auto live = g_.LiveOps();
  const size_t n_dev = static_cast<size_t>(cluster_.num_devices());
  const DispatchMode dispatch = options_.enforce_order
                                    ? DispatchMode::kPriority
                                    : options_.dispatch;
  if (dispatch == DispatchMode::kPriority) {
    FASTT_CHECK_MSG(
        options_.priorities.size() >= static_cast<size_t>(g_.num_slots()),
        "priority dispatch requires priorities per op (incl. split ops)");
  }

  // The clean op that releases each device to dirty work: the one whose
  // op-finish event is canonically last among that device's clean ops.
  std::vector<OpId> last_clean(n_dev, kInvalidOp);
  size_t dirty_live = 0;
  for (OpId id : live) {
    if (dirty_[static_cast<size_t>(id)]) {
      ++dirty_live;
      continue;
    }
    const size_t d = static_cast<size_t>(placement_[static_cast<size_t>(id)]);
    const OpId prev = last_clean[d];
    if (prev == kInvalidOp) {
      last_clean[d] = id;
    } else {
      const double f = base_.op_records[static_cast<size_t>(id)].finish;
      const double pf = base_.op_records[static_cast<size_t>(prev)].finish;
      if (f > pf || (f == pf && id > prev)) last_clean[d] = id;
    }
  }
  CurrentMetrics().AddCounter("inc_sim/dirty_ops",
                                       static_cast<int64_t>(dirty_live));
  FASTT_TRACE_COUNTER("incsim/cone_ops", dirty_live);
  CurrentMetrics().AddCounter(
      "inc_sim/clean_ops", static_cast<int64_t>(live.size() - dirty_live));

  // Charge the event/ready heaps to sim/events, same as the full simulator.
  MemTagScope mem_scope(MemTag::kSimEvents);
  std::priority_queue<REvent, TaggedVector<REvent>, std::greater<REvent>>
      events(std::greater<REvent>(),
             TaggedVector<REvent>(TaggedAlloc<REvent>(MemTag::kSimEvents)));

  // Clean producers come in two kinds. Emission-dirty ones re-run their send
  // loop live, as an event at their cached finish. Every other clean
  // producer is passive: the fixpoint guarantees all its transfers keep
  // their cached timing, so it never enters the event queue — its dirty
  // consumers get their cached arrivals as up-front events, and only a
  // device's canonically-last clean op needs a finish event (device
  // hand-off duty). Passive engine occupancy is applied by the cached-
  // transfer walk below.
  for (OpId id : live) {
    if (dirty_[static_cast<size_t>(id)]) continue;
    const double finish = base_.op_records[static_cast<size_t>(id)].finish;
    if (emit_dirty_[static_cast<size_t>(id)]) {
      events.push(REvent{finish, REvent::kFinish, id, -1});
      continue;
    }
    if (id == last_clean[static_cast<size_t>(
                 placement_[static_cast<size_t>(id)])])
      events.push(REvent{finish, REvent::kFinish, id, -1});
    for (EdgeId e : g_.out_edges(id)) {
      const Edge& edge = g_.edge(e);
      if (edge.dead || g_.op(edge.dst).dead) continue;
      if (!dirty_[static_cast<size_t>(edge.dst)]) continue;
      // Cross-device: the cached transfer is guaranteed untouched. Same
      // device: arrival == the producer's (unchanged) finish.
      const double arrival = base_.edge_arrival[static_cast<size_t>(e)];
      events.push(REvent{arrival, REvent::kArrival, edge.dst, e});
    }
  }

  // Cached transfers of passive producers, in full-run emission order (the
  // order base_.transfers was recorded in). The walk below merges them into
  // the event stream at their producer's canonical op-finish position and
  // applies their (unchanged) engine occupancy, reproducing the engine
  // timelines the full run would build without replaying the producers.
  std::vector<size_t> passive;
  passive.reserve(base_.transfers.size());
  for (size_t i = 0; i < base_.transfers.size(); ++i) {
    const TransferRecord& t = base_.transfers[i];
    if (g_.op(t.src_op).dead || g_.op(t.dst_op).dead ||
        g_.edge(t.edge).dead)
      continue;
    if (dirty_[static_cast<size_t>(t.src_op)] ||
        emit_dirty_[static_cast<size_t>(t.src_op)])
      continue;
    passive.push_back(i);
  }
  size_t next_passive = 0;

  // Dirty-op scheduling state. Clean ops never enter the ready queues: the
  // cone invariant guarantees every clean op on a device starts before any
  // dirty op there can become ready, so their cached records stand.
  std::vector<int32_t> pending(static_cast<size_t>(g_.num_slots()), 0);
  for (OpId id : live) {
    if (!dirty_[static_cast<size_t>(id)]) continue;
    for (EdgeId e : g_.in_edges(id)) {
      const Edge& edge = g_.edge(e);
      if (!edge.dead && !g_.op(edge.src).dead)
        ++pending[static_cast<size_t>(id)];
    }
  }

  using ReadyQueue = std::priority_queue<ReadyEntry, TaggedVector<ReadyEntry>,
                                         std::greater<ReadyEntry>>;
  std::vector<ReadyQueue> ready(
      n_dev, ReadyQueue(std::greater<ReadyEntry>(),
                        TaggedVector<ReadyEntry>(
                            TaggedAlloc<ReadyEntry>(MemTag::kSimEvents))));
  std::vector<bool> busy(n_dev, false);
  for (size_t d = 0; d < n_dev; ++d) busy[d] = last_clean[d] != kInvalidOp;
  uint64_t ready_counter = 0;

  const size_t engines = SimOptions::kCopyEnginesPerDirection;
  std::vector<std::vector<double>> egress_free(
      n_dev, std::vector<double>(engines, 0.0));
  std::vector<std::vector<double>> ingress_free(
      n_dev, std::vector<double>(engines, 0.0));
  auto earliest = [](std::vector<double>& v) {
    return std::min_element(v.begin(), v.end());
  };

  std::vector<TransferRecord> transfers;
  transfers.reserve(base_.transfers.size());
  double memcpy_s = 0.0;

  auto push_ready = [&](OpId op) {
    const DeviceId d = placement_[static_cast<size_t>(op)];
    ReadyEntry entry;
    entry.seq = ready_counter++;
    switch (dispatch) {
      case DispatchMode::kFifo:
        // Absolute FIFO keys differ from the full run's (clean ops skip the
        // queue) but the relative order among dirty ops matches, which is
        // all the comparator consumes.
        entry.key = static_cast<int64_t>(entry.seq);
        break;
      case DispatchMode::kRandom: {
        Rng rng(options_.seed * 0x2545f4914f6cdd1dULL +
                static_cast<uint64_t>(op));
        entry.key = static_cast<int64_t>(rng.NextU64() >> 1);
        break;
      }
      case DispatchMode::kPriority:
        entry.key = options_.priorities[static_cast<size_t>(op)];
        break;
    }
    entry.op = op;
    ready[static_cast<size_t>(d)].push(entry);
  };

  auto try_dispatch = [&](DeviceId d, double now) {
    auto& q = ready[static_cast<size_t>(d)];
    if (busy[static_cast<size_t>(d)] || q.empty()) return;
    const OpId op = q.top().op;
    q.pop();
    busy[static_cast<size_t>(d)] = true;
    const double dur =
        GroundTruthDuration(g_.op(op), cluster_.device(d)) *
        SimNoiseFactor(options_.seed, op, options_.noise_cv);
    auto& rec = base_.op_records[static_cast<size_t>(op)];
    rec.op = op;
    rec.device = d;
    rec.start = now;
    rec.finish = now + dur;
    events.push(REvent{rec.finish, REvent::kFinish, op, -1});
  };

  // Per-destination-device send dedup for emit(), epoch-stamped so it resets
  // per producer without clearing (emit runs once per finishing op — a map
  // here is measurable on large cones).
  std::vector<double> sent_arrival(n_dev, 0.0);
  std::vector<uint64_t> sent_stamp(n_dev, 0);
  uint64_t send_epoch = 0;

  // Re-runs `op`'s send loop at time `now` (its finish). For emission-dirty
  // producers outside every dirty cone this must reproduce the cached
  // timings bit-for-bit — checked below — because no dirty transfer may
  // have touched the engines they select from (the he invariant).
  auto emit = [&](OpId op, double now) {
    const DeviceId d = placement_[static_cast<size_t>(op)];
    ++send_epoch;
    for (EdgeId e : g_.out_edges(op)) {
      const Edge& edge = g_.edge(e);
      if (edge.dead || g_.op(edge.dst).dead) continue;
      const DeviceId dd = placement_[static_cast<size_t>(edge.dst)];
      const bool consumer_dirty = dirty_[static_cast<size_t>(edge.dst)] != 0;
      double arrival = 0.0;
      if (dd == d) {
        arrival = now;
      } else if (sent_stamp[static_cast<size_t>(dd)] == send_epoch) {
        arrival = sent_arrival[static_cast<size_t>(dd)];
      } else {
        const Link link = cluster_.LinkBetween(d, dd);
        auto eg = earliest(egress_free[static_cast<size_t>(d)]);
        auto in_ = earliest(ingress_free[static_cast<size_t>(dd)]);
        const double start = std::max({now, *eg, *in_});
        const double occupancy =
            static_cast<double>(edge.bytes) / link.bandwidth;
        arrival = start + link.latency + occupancy;
        *eg = start + occupancy;
        *in_ = start + occupancy;
        sent_arrival[static_cast<size_t>(dd)] = arrival;
        sent_stamp[static_cast<size_t>(dd)] = send_epoch;
        transfers.push_back(TransferRecord{op, edge.dst, d, dd, edge.bytes,
                                           start, arrival, e});
        memcpy_s += arrival - start;
      }
      if (consumer_dirty) {
        events.push(REvent{arrival, REvent::kArrival, edge.dst, e});
      } else if (dd != d) {
        FASTT_CHECK_MSG(
            arrival == base_.edge_arrival[static_cast<size_t>(e)],
            "incremental cone missed a changed arrival (" +
                g_.op(op).name + " -> " + g_.op(edge.dst).name + ")");
      }
      base_.edge_arrival[static_cast<size_t>(e)] = arrival;
    }
  };

  // Applies one passive cached transfer to the engine timelines: the full
  // run would have selected exactly these min-free slots at this point in
  // the canonical order (the checked equality is the he-invariant: nothing
  // the replay computed live has touched the engines this transfer saw).
  auto apply_cached = [&](const TransferRecord& tr) {
    const Link link = cluster_.LinkBetween(tr.src, tr.dst);
    auto eg = earliest(egress_free[static_cast<size_t>(tr.src)]);
    auto in_ = earliest(ingress_free[static_cast<size_t>(tr.dst)]);
    FASTT_CHECK_MSG(
        std::max({base_.op_records[static_cast<size_t>(tr.src_op)].finish,
                  *eg, *in_}) == tr.start,
        "incremental cone: cached transfer would re-time (" +
            g_.op(tr.src_op).name + " -> " + g_.op(tr.dst_op).name + ")");
    const double occupancy =
        static_cast<double>(tr.bytes) / link.bandwidth;
    *eg = tr.start + occupancy;
    *in_ = tr.start + occupancy;
    transfers.push_back(tr);
    memcpy_s += tr.arrival - tr.start;
  };
  // Applies every passive transfer whose producer's op-finish position
  // (finish, kFinish, src_op) precedes — or is — the event about to be
  // handled, keeping engine-state evolution in full-run order. A tie means
  // the event IS the producer's own finish (a passive last-clean op): its
  // sends precede its device hand-off, exactly as in the full run.
  auto drain_cached_upto = [&](const REvent& ev) {
    while (next_passive < passive.size()) {
      const TransferRecord& tr = base_.transfers[passive[next_passive]];
      const double f = base_.op_records[static_cast<size_t>(tr.src_op)].finish;
      if (f > ev.time) break;
      if (f == ev.time &&
          (REvent::kFinish == ev.kind && tr.src_op > ev.op))
        break;
      apply_cached(tr);
      ++next_passive;
    }
  };

  // Seed: dirty source ops, in LiveOps order (matching the full run's
  // relative FIFO order), then kick idle devices.
  for (OpId id : live)
    if (dirty_[static_cast<size_t>(id)] && pending[static_cast<size_t>(id)] == 0)
      push_ready(id);
  for (size_t d = 0; d < n_dev; ++d)
    if (!busy[d]) try_dispatch(static_cast<DeviceId>(d), 0.0);

  size_t finished_dirty = 0;
  while (!events.empty()) {
    const REvent ev = events.top();
    events.pop();
    drain_cached_upto(ev);
    const double now = ev.time;
    if (ev.kind == REvent::kFinish) {
      const OpId op = ev.op;
      const DeviceId d = placement_[static_cast<size_t>(op)];
      if (dirty_[static_cast<size_t>(op)]) {
        ++finished_dirty;
        emit(op, now);
        busy[static_cast<size_t>(d)] = false;
        try_dispatch(d, now);
      } else {
        if (emit_dirty_[static_cast<size_t>(op)]) emit(op, now);
        if (op == last_clean[static_cast<size_t>(d)]) {
          busy[static_cast<size_t>(d)] = false;
          try_dispatch(d, now);
        }
      }
    } else {
      auto& left = pending[static_cast<size_t>(ev.op)];
      FASTT_CHECK(left > 0);
      if (--left == 0) {
        push_ready(ev.op);
        try_dispatch(placement_[static_cast<size_t>(ev.op)], now);
      }
    }
  }
  // Passive transfers that postdate the last event still occupy engines in
  // the result's transfer list.
  while (next_passive < passive.size())
    apply_cached(base_.transfers[passive[next_passive++]]);
  FASTT_CHECK_MSG(finished_dirty == dirty_live,
                  "incremental replay deadlocked (cone not closed?)");

  // ---- Fold the replay into the cached result -----------------------------
  base_.transfers = std::move(transfers);
  base_.total_memcpy_s = memcpy_s;
  base_.makespan = 0.0;
  // Busy/compute totals re-accumulate in the full run's order (finish-event
  // order) so floating-point summation matches bit-for-bit.
  std::vector<std::pair<double, OpId>> by_finish;
  by_finish.reserve(live.size());
  for (OpId id : live)
    by_finish.emplace_back(base_.op_records[static_cast<size_t>(id)].finish,
                           id);
  std::sort(by_finish.begin(), by_finish.end());
  base_.device_busy_s.assign(n_dev, 0.0);
  base_.total_compute_s = 0.0;
  for (const auto& [finish, id] : by_finish) {
    const auto& rec = base_.op_records[static_cast<size_t>(id)];
    base_.device_busy_s[static_cast<size_t>(rec.device)] += rec.duration();
    if (IsMathOp(g_.op(id).type)) base_.total_compute_s += rec.duration();
    base_.makespan = std::max(base_.makespan, finish);
  }
  base_.peak_memory.assign(n_dev, 0);
  base_.oom = false;
  base_.oom_devices.clear();
  base_.memory_timeline.clear();

  // Reset the fixpoint for the next update.
  std::fill(dirty_.begin(), dirty_.end(), 0);
  std::fill(emit_dirty_.begin(), emit_dirty_.end(), 0);
  std::fill(u_.begin(), u_.end(), kInf);
  std::fill(hd_.begin(), hd_.end(), kInf);
  std::fill(he_.begin(), he_.end(), kInf);
  RebuildIndexes();
  EmitMemTraceCounters();
}

}  // namespace fastt
