// Cluster topology: a set of devices plus the interconnect between them.
//
// Intra-server pairs communicate over NVLink; inter-server pairs over the
// datacenter network (much lower bandwidth, much higher latency) — this is
// the asymmetry behind the paper's observation that FastT's advantage grows
// in the 2-server configurations, where default data parallelism pays dearly
// for cross-server gradient aggregation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/device.h"

namespace fastt {

struct Link {
  double bandwidth = 0.0;  // bytes/s
  double latency = 0.0;    // seconds

  // Time for `bytes` to traverse this link.
  double TransferTime(int64_t bytes) const {
    return latency + static_cast<double>(bytes) / bandwidth;
  }
};

struct InterconnectParams {
  // Effective bandwidth of a TF 1.x device-to-device tensor copy between
  // GPUs on one server. Far below raw NVLink peak: the runtime's send/recv
  // rendezvous stages copies and shares PCIe/host paths, which is what the
  // paper's profiled communication model observes.
  double nvlink_bandwidth = 9e9;
  double nvlink_latency = 15e-6;
  // Cross-server path (NIC + switch + gRPC).
  double net_bandwidth = 3.0e9;
  double net_latency = 60e-6;
};

class Cluster {
 public:
  Cluster() = default;
  Cluster(std::vector<Device> devices, InterconnectParams params);

  // All-GPU single server, V100-like devices.
  static Cluster SingleServer(int num_gpus,
                              InterconnectParams params = {});
  // `num_servers` machines with `gpus_per_server` GPUs each.
  static Cluster MultiServer(int num_servers, int gpus_per_server,
                             InterconnectParams params = {});

  int32_t num_devices() const {
    return static_cast<int32_t>(devices_.size());
  }
  const Device& device(DeviceId id) const;
  const std::vector<Device>& devices() const { return devices_; }
  const InterconnectParams& params() const { return params_; }

  // Link between two distinct devices (src != dst).
  Link LinkBetween(DeviceId src, DeviceId dst) const;

  // Upper bound on per-byte transfer cost over any pair — used for the
  // max-over-pairs communication term in rank_u when no cost model exists.
  Link SlowestLink() const;

  std::string ToString() const;

 private:
  std::vector<Device> devices_;
  InterconnectParams params_;
};

}  // namespace fastt
