// Published-rival searchers for the arena: Baechi's m-ETF and m-SCT list
// schedulers, Tarnawski et al.'s DP contiguous pipeline partitioner, and
// Mayer et al.'s critical-path heuristic — the four concrete competitors the
// ROADMAP's searcher arena names (see PAPERS.md). All four are deterministic
// one-shot constructions over the bare model graph: they consume the same
// analytic ground-truth durations GreedyRankPlacement uses, never call the
// simulator during construction, and spend exactly one evaluation scoring
// the finished placement.
#include <algorithm>
#include <chrono>
#include <limits>
#include <vector>

#include "baselines/searchers.h"
#include "util/check.h"

namespace fastt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Resolves colocation constraints onto an otherwise-free placement (same
// rule as searchers.cc: dependents follow their referent in topo order).
void ApplyColocation(const Graph& g, std::vector<DeviceId>& placement) {
  for (OpId id : g.TopoOrder()) {
    const OpId target = g.op(id).colocate_with;
    if (target != kInvalidOp &&
        placement[static_cast<size_t>(target)] != kInvalidDevice)
      placement[static_cast<size_t>(id)] =
          placement[static_cast<size_t>(target)];
  }
}

// Builds the bare (model-parallel) graph and stamps the shared result
// fields; the construction itself is the caller's job.
SearchResult BareGraphResult(const ModelBuildFn& build,
                             const std::string& model_name, int64_t batch) {
  SearchResult result;
  result.global_batch = batch;
  result.graph = Graph(model_name);
  build(result.graph, "", batch);
  return result;
}

// Static memory footprint an op pins on its device: weights + workspace +
// output tensor (Baechi schedules against per-op profiled memory; ours is
// the analytic equivalent).
int64_t FootprintBytes(const Operation& op) {
  return op.param_bytes + op.temp_bytes + op.output_bytes();
}

// Shared ETF scheduling core. `favorite_child_free_comm` selects the m-SCT
// relaxation: each producer's heaviest consumer transfers for free during
// scheduling (SCT's "one child's communication can be hidden" LP optimism).
SearchResult EtfSchedule(const ModelBuildFn& build,
                         const std::string& model_name, int64_t batch,
                         const Cluster& cluster, const SearchOptions& options,
                         bool favorite_child_free_comm) {
  const auto t0 = std::chrono::steady_clock::now();
  SearchResult result = BareGraphResult(build, model_name, batch);
  const Graph& g = result.graph;
  const size_t slots = static_cast<size_t>(g.num_slots());
  const size_t n_dev = static_cast<size_t>(cluster.num_devices());

  // Favorite children (m-SCT only): heaviest live out-edge per producer,
  // ties to the lowest consumer id.
  std::vector<OpId> favorite(slots, kInvalidOp);
  if (favorite_child_free_comm) {
    for (OpId id : g.LiveOps()) {
      int64_t best_bytes = -1;
      for (EdgeId e : g.out_edges(id)) {
        const Edge& edge = g.edge(e);
        if (edge.dead || g.op(edge.dst).dead) continue;
        if (edge.bytes > best_bytes ||
            (edge.bytes == best_bytes &&
             edge.dst < favorite[static_cast<size_t>(id)])) {
          best_bytes = edge.bytes;
          favorite[static_cast<size_t>(id)] = edge.dst;
        }
      }
    }
  }

  // rank_u tie-break, same weights as GreedyRankPlacement.
  const auto rank = g.LongestPathFromExit(
      [](const Operation& op) { return op.flops + 1.0; },
      [](const Edge& e) { return static_cast<double>(e.bytes); });

  // Live in-degree per op; ready = frontier kept sorted by op id.
  std::vector<int> indeg(slots, 0);
  for (OpId id : g.LiveOps())
    for (EdgeId e : g.in_edges(id)) {
      const Edge& edge = g.edge(e);
      if (!edge.dead && !g.op(edge.src).dead) ++indeg[static_cast<size_t>(id)];
    }
  std::vector<OpId> ready;
  for (OpId id : g.LiveOps())
    if (indeg[static_cast<size_t>(id)] == 0) ready.push_back(id);
  std::sort(ready.begin(), ready.end());

  std::vector<DeviceId> placement(slots, kInvalidDevice);
  std::vector<double> finish(slots, 0.0);
  std::vector<double> device_clock(n_dev, 0.0);
  std::vector<int64_t> device_mem(n_dev, 0);

  while (!ready.empty()) {
    // The ETF step: among all (ready op, memory-feasible device) pairs,
    // commit the earliest start; ties by higher rank, then lower op id,
    // then lower device id.
    double best_est = kInf;
    size_t best_ready = 0;
    DeviceId best_dev = 0;
    double best_dur = 0.0;
    for (size_t r = 0; r < ready.size(); ++r) {
      const OpId id = ready[r];
      const Operation& op = g.op(id);
      const int64_t footprint = FootprintBytes(op);

      // Candidate devices: the colocation referent's device when pinned,
      // else every device whose memory budget fits, else (everything
      // overflows) the least-loaded device — construction always finishes
      // and the simulator flags genuine OOM.
      DeviceId forced = kInvalidDevice;
      if (op.colocate_with != kInvalidOp)
        forced = placement[static_cast<size_t>(op.colocate_with)];
      std::vector<DeviceId> candidates;
      if (forced != kInvalidDevice) {
        candidates.push_back(forced);
      } else {
        DeviceId min_mem_dev = 0;
        for (DeviceId d = 0; d < cluster.num_devices(); ++d) {
          const size_t di = static_cast<size_t>(d);
          if (device_mem[di] + footprint <=
              cluster.device(d).usable_bytes())
            candidates.push_back(d);
          if (device_mem[di] <
              device_mem[static_cast<size_t>(min_mem_dev)])
            min_mem_dev = d;
        }
        if (candidates.empty()) candidates.push_back(min_mem_dev);
      }

      for (DeviceId d : candidates) {
        double arrival = 0.0;
        for (EdgeId e : g.in_edges(id)) {
          const Edge& edge = g.edge(e);
          if (edge.dead || g.op(edge.src).dead) continue;
          const size_t src = static_cast<size_t>(edge.src);
          double a = finish[src];
          const bool free_comm = favorite_child_free_comm &&
                                 favorite[src] == id;
          if (placement[src] != d && !free_comm)
            a += cluster.LinkBetween(placement[src], d)
                     .TransferTime(edge.bytes);
          arrival = std::max(arrival, a);
        }
        const double est =
            std::max(arrival, device_clock[static_cast<size_t>(d)]);
        const bool better =
            est < best_est ||
            (est == best_est &&
             (rank[static_cast<size_t>(id)] >
                  rank[static_cast<size_t>(ready[best_ready])] ||
              (rank[static_cast<size_t>(id)] ==
                   rank[static_cast<size_t>(ready[best_ready])] &&
               (id < ready[best_ready] ||
                (id == ready[best_ready] && d < best_dev)))));
        if (better) {
          best_est = est;
          best_ready = r;
          best_dev = d;
          best_dur = GroundTruthDuration(op, cluster.device(d));
        }
      }
    }

    const OpId id = ready[best_ready];
    placement[static_cast<size_t>(id)] = best_dev;
    finish[static_cast<size_t>(id)] = best_est + best_dur;
    device_clock[static_cast<size_t>(best_dev)] =
        finish[static_cast<size_t>(id)];
    device_mem[static_cast<size_t>(best_dev)] += FootprintBytes(g.op(id));
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best_ready));

    std::vector<OpId> unlocked;
    for (EdgeId e : g.out_edges(id)) {
      const Edge& edge = g.edge(e);
      if (edge.dead || g.op(edge.dst).dead) continue;
      if (--indeg[static_cast<size_t>(edge.dst)] == 0)
        unlocked.push_back(edge.dst);
    }
    std::sort(unlocked.begin(), unlocked.end());
    unlocked.erase(std::unique(unlocked.begin(), unlocked.end()),
                   unlocked.end());
    for (OpId u : unlocked)
      ready.insert(std::lower_bound(ready.begin(), ready.end(), u), u);
  }

  ApplyColocation(g, placement);
  result.placement = std::move(placement);
  SimOptions so;
  so.noise_cv = options.noise_cv;
  so.seed = options.seed;
  ++result.evaluations;
  const SimResult sim = Simulate(result.graph, result.placement, cluster, so);
  result.iteration_s = sim.oom ? kInf : sim.makespan;
  result.stop_reason = "constructed";
  result.wall_s = SecondsSince(t0);
  return result;
}

}  // namespace

SearchResult MEtfPlacement(const ModelBuildFn& build,
                           const std::string& model_name, int64_t batch,
                           const Cluster& cluster,
                           const SearchOptions& options) {
  return EtfSchedule(build, model_name, batch, cluster, options,
                     /*favorite_child_free_comm=*/false);
}

SearchResult MSctPlacement(const ModelBuildFn& build,
                           const std::string& model_name, int64_t batch,
                           const Cluster& cluster,
                           const SearchOptions& options) {
  return EtfSchedule(build, model_name, batch, cluster, options,
                     /*favorite_child_free_comm=*/true);
}

SearchResult DpPipelinePlacement(const ModelBuildFn& build,
                                 const std::string& model_name, int64_t batch,
                                 const Cluster& cluster,
                                 const SearchOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  SearchResult result = BareGraphResult(build, model_name, batch);
  const Graph& g = result.graph;

  std::vector<OpId> topo;
  for (OpId id : g.TopoOrder())
    if (!g.op(id).dead) topo.push_back(id);
  const size_t n = topo.size();
  const size_t n_dev = static_cast<size_t>(cluster.num_devices());
  std::vector<size_t> pos(static_cast<size_t>(g.num_slots()), 0);
  for (size_t i = 0; i < n; ++i) pos[static_cast<size_t>(topo[i])] = i;

  // cut[m]: bytes crossing the boundary between prefix [0,m) and [m,n).
  // An edge from topo position a to b (a < b) crosses boundaries a+1..b;
  // accumulate with a difference array, O(E + n).
  std::vector<int64_t> cut(n + 2, 0);
  for (OpId id : topo)
    for (EdgeId e : g.out_edges(id)) {
      const Edge& edge = g.edge(e);
      if (edge.dead || g.op(edge.dst).dead) continue;
      const size_t a = pos[static_cast<size_t>(edge.src)];
      const size_t b = pos[static_cast<size_t>(edge.dst)];
      cut[a + 1] += edge.bytes;
      cut[b + 1] -= edge.bytes;
    }
  for (size_t m = 1; m <= n; ++m) cut[m] += cut[m - 1];

  // Per-device prefix compute times: work[d][i] = sum of the first i ops'
  // ground-truth durations on device d.
  std::vector<std::vector<double>> work(n_dev,
                                        std::vector<double>(n + 1, 0.0));
  for (size_t d = 0; d < n_dev; ++d)
    for (size_t i = 0; i < n; ++i)
      work[d][i + 1] =
          work[d][i] + GroundTruthDuration(g.op(topo[i]),
                                           cluster.device(
                                               static_cast<DeviceId>(d)));

  // DP over (stage, prefix): bottleneck[j][i] = best achievable pipeline
  // bottleneck when stages 0..j (stage k on device k) cover the first i
  // ops. A stage's cost is its compute plus the transfer of the cut bytes
  // entering it over the link from the previous device. Empty stages are
  // legal (m == i carries bottleneck[j-1][i] forward), so small graphs
  // occupy few devices. O(D·n²).
  std::vector<std::vector<double>> bottleneck(
      n_dev, std::vector<double>(n + 1, kInf));
  std::vector<std::vector<size_t>> split_at(n_dev,
                                            std::vector<size_t>(n + 1, 0));
  for (size_t i = 0; i <= n; ++i) bottleneck[0][i] = work[0][i];
  for (size_t j = 1; j < n_dev; ++j) {
    const Link link = cluster.LinkBetween(static_cast<DeviceId>(j - 1),
                                          static_cast<DeviceId>(j));
    for (size_t i = 0; i <= n; ++i) {
      for (size_t m = 0; m <= i; ++m) {
        double stage = work[j][i] - work[j][m];
        if (m > 0 && m < i) stage += link.TransferTime(cut[m]);
        const double value = std::max(bottleneck[j - 1][m], stage);
        if (value < bottleneck[j][i]) {
          bottleneck[j][i] = value;
          split_at[j][i] = m;
        }
      }
    }
  }

  // Recover stage boundaries and place each contiguous block on its device.
  std::vector<DeviceId> placement(static_cast<size_t>(g.num_slots()),
                                  kInvalidDevice);
  size_t end = n;
  for (size_t j = n_dev; j-- > 0;) {
    const size_t begin = j == 0 ? 0 : split_at[j][end];
    for (size_t i = begin; i < end; ++i)
      placement[static_cast<size_t>(topo[i])] = static_cast<DeviceId>(j);
    end = begin;
  }
  ApplyColocation(g, placement);

  result.placement = std::move(placement);
  SimOptions so;
  so.noise_cv = options.noise_cv;
  so.seed = options.seed;
  ++result.evaluations;
  const SimResult sim = Simulate(result.graph, result.placement, cluster, so);
  result.iteration_s = sim.oom ? kInf : sim.makespan;
  result.stop_reason = "constructed";
  result.wall_s = SecondsSince(t0);
  return result;
}

SearchResult CriticalPathPlacement(const ModelBuildFn& build,
                                   const std::string& model_name,
                                   int64_t batch, const Cluster& cluster,
                                   const SearchOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  SearchResult result = BareGraphResult(build, model_name, batch);
  const Graph& g = result.graph;
  const size_t slots = static_cast<size_t>(g.num_slots());
  const size_t n_dev = static_cast<size_t>(cluster.num_devices());

  const std::vector<OpId> topo = g.TopoOrder();
  std::vector<DeviceId> placement(slots, kInvalidDevice);
  std::vector<bool> assigned(slots, true);
  size_t remaining = 0;
  for (OpId id : g.LiveOps()) {
    assigned[static_cast<size_t>(id)] = false;
    ++remaining;
  }
  std::vector<double> loads(n_dev, 0.0);

  // Reference durations for path extraction (device 0; the clusters the
  // testbed builds are homogeneous). Per-device durations still price the
  // load balance below.
  std::vector<double> dur0(slots, 0.0);
  for (OpId id : g.LiveOps())
    dur0[static_cast<size_t>(id)] =
        GroundTruthDuration(g.op(id), cluster.device(0));

  std::vector<double> lp(slots, 0.0);
  while (remaining > 0) {
    // Longest remaining path (node weights only) over unassigned ops, by a
    // reverse-topo DP; then peel it head to tail onto one device.
    std::fill(lp.begin(), lp.end(), 0.0);
    for (size_t k = topo.size(); k-- > 0;) {
      const OpId id = topo[k];
      const size_t i = static_cast<size_t>(id);
      if (assigned[i]) continue;
      double tail = 0.0;
      for (EdgeId e : g.out_edges(id)) {
        const Edge& edge = g.edge(e);
        if (edge.dead || assigned[static_cast<size_t>(edge.dst)]) continue;
        tail = std::max(tail, lp[static_cast<size_t>(edge.dst)]);
      }
      lp[i] = dur0[i] + tail;
    }

    // Path head: unassigned op with no unassigned live predecessor and the
    // largest path value (ties: lower op id).
    OpId head = kInvalidOp;
    for (OpId id : g.LiveOps()) {
      const size_t i = static_cast<size_t>(id);
      if (assigned[i]) continue;
      bool entry = true;
      for (EdgeId e : g.in_edges(id)) {
        const Edge& edge = g.edge(e);
        if (!edge.dead && !g.op(edge.src).dead &&
            !assigned[static_cast<size_t>(edge.src)]) {
          entry = false;
          break;
        }
      }
      if (!entry) continue;
      if (head == kInvalidOp || lp[i] > lp[static_cast<size_t>(head)])
        head = id;
    }
    FASTT_CHECK(head != kInvalidOp);

    // Least-loaded device takes the whole path (ties: lower device id).
    DeviceId target = 0;
    for (DeviceId d = 1; d < cluster.num_devices(); ++d)
      if (loads[static_cast<size_t>(d)] <
          loads[static_cast<size_t>(target)])
        target = d;

    for (OpId at = head; at != kInvalidOp;) {
      const size_t i = static_cast<size_t>(at);
      placement[i] = target;
      assigned[i] = true;
      --remaining;
      loads[static_cast<size_t>(target)] +=
          GroundTruthDuration(g.op(at), cluster.device(target));
      OpId next = kInvalidOp;
      for (EdgeId e : g.out_edges(at)) {
        const Edge& edge = g.edge(e);
        const size_t di = static_cast<size_t>(edge.dst);
        if (edge.dead || assigned[di]) continue;
        if (next == kInvalidOp || lp[di] > lp[static_cast<size_t>(next)] ||
            (lp[di] == lp[static_cast<size_t>(next)] && edge.dst < next))
          next = edge.dst;
      }
      at = next;
    }
  }
  ApplyColocation(g, placement);

  result.placement = std::move(placement);
  SimOptions so;
  so.noise_cv = options.noise_cv;
  so.seed = options.seed;
  ++result.evaluations;
  const SimResult sim = Simulate(result.graph, result.placement, cluster, so);
  result.iteration_s = sim.oom ? kInf : sim.makespan;
  result.stop_reason = "constructed";
  result.wall_s = SecondsSince(t0);
  return result;
}

}  // namespace fastt
