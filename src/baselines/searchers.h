// Black-box comparator stand-ins for Fig. 3.
//
// The paper compares FastT against published numbers from four systems whose
// search code is unavailable (REINFORCE, GDP, Post) or unreleasable
// (FlexFlow). We reproduce the *comparison* by implementing searchers that
// occupy the same solution spaces and search styles, evaluated against the
// same simulated testbed:
//
//   * REINFORCE-like — black-box random search over model-parallel
//     placements of the bare graph (no data parallelism, no splits): the
//     solution space of the RL placement papers, with a sampling budget.
//   * GDP-like — rank-ordered greedy placement of the bare graph (their
//     GNN+transformer policy collapses to prioritized greedy placement in
//     white-box form; still no DP, no splits).
//   * Post-like — cross-entropy/local-search refinement: iterated
//     hill-climbing over single-op moves from the best random placement.
//   * FlexFlow-like — simulated annealing over placement AND operation
//     splits of the data-parallel graph (the larger SOAP-style space),
//     with a generous evaluation budget.
//
// All four consume simulator evaluations like their originals consume real
// or simulated rollouts; none sees FastT's cost models.
#pragma once

#include <cstdint>
#include <string>

#include "core/data_parallel.h"
#include "core/portfolio.h"
#include "core/strategy.h"
#include "sim/exec_sim.h"

namespace fastt {

// SearchResult / SearchOptions / SearchDeadline moved to core/portfolio.h so
// the portfolio racer in src/core can consume searcher results without a
// layering inversion; this header re-exports them for existing includers.

// REINFORCE-like: random model-parallel placements of the bare model graph.
SearchResult RandomSearchPlacement(const ModelBuildFn& build,
                                   const std::string& model_name,
                                   int64_t batch, const Cluster& cluster,
                                   const SearchOptions& options = {});

// GDP-like: FLOP-rank-ordered greedy min-finish placement of the bare graph
// (one deterministic construction; no splits, no DP).
SearchResult GreedyRankPlacement(const ModelBuildFn& build,
                                 const std::string& model_name,
                                 int64_t batch, const Cluster& cluster,
                                 const SearchOptions& options = {});

// Spotlight-like: greedy start + single-op-move hill climbing on the bare
// graph (proximal refinement of placements).
SearchResult LocalSearchPlacement(const ModelBuildFn& build,
                                  const std::string& model_name,
                                  int64_t batch, const Cluster& cluster,
                                  const SearchOptions& options = {});

// Post-like: the cross-entropy method over model-parallel placements — a
// per-op categorical distribution over devices is refit on the elite
// fraction of each sampled population (Post's CEM core, minus the PPO
// fine-tuning stage).
SearchResult CrossEntropyPlacement(const ModelBuildFn& build,
                                   const std::string& model_name,
                                   int64_t batch, const Cluster& cluster,
                                   const SearchOptions& options = {});

// FlexFlow-like: simulated annealing over (placement, split) of the
// data-parallel graph — the largest search space, the largest budget.
SearchResult AnnealingSearch(const ModelBuildFn& build,
                             const std::string& model_name, int64_t batch,
                             const Cluster& cluster,
                             const SearchOptions& options = {});

// ---------------------------------------------------------------------------
// Published-rival reimplementations (rivals.cc) — white-box constructive
// schedulers from the systems the ROADMAP's searcher arena names. All are
// deterministic one-shot constructions on the bare model graph (evaluations
// == 1, stop_reason "constructed"), consuming the same analytic ground-truth
// durations GreedyRankPlacement uses.

// Baechi-style m-ETF: memory-constrained earliest-task-first list scheduling.
// Among all (ready op, device) pairs, repeatedly commit the pair with the
// earliest start time, skipping devices whose memory budget the op's
// footprint would overflow (Baechi's m-ETF on the profiled-memory cap).
SearchResult MEtfPlacement(const ModelBuildFn& build,
                           const std::string& model_name, int64_t batch,
                           const Cluster& cluster,
                           const SearchOptions& options = {});

// Baechi-style m-SCT: ETF under the small-communication-times relaxation —
// each op designates its heaviest out-edge consumer as its favorite child,
// whose transfer is priced at zero during scheduling (the LP relaxation's
// "communication hidden for one child" assumption). The final objective is
// still the real simulation, so optimism shapes only the construction.
SearchResult MSctPlacement(const ModelBuildFn& build,
                           const std::string& model_name, int64_t batch,
                           const Cluster& cluster,
                           const SearchOptions& options = {});

// Tarnawski-style DP pipeline partitioner: contiguous topo-order prefixes
// assigned to devices 0..D-1 by an O(D·n²) dynamic program minimizing the
// pipeline bottleneck (per-stage compute + cut-bytes transfer into the
// stage). Empty stages are allowed, so small graphs use few devices.
SearchResult DpPipelinePlacement(const ModelBuildFn& build,
                                 const std::string& model_name, int64_t batch,
                                 const Cluster& cluster,
                                 const SearchOptions& options = {});

// Mayer-style critical-path heuristic: iteratively peel the longest
// remaining path and assign it wholesale to the least-loaded device
// (Mayer et al.'s CP splitting rule for model parallelism).
SearchResult CriticalPathPlacement(const ModelBuildFn& build,
                                   const std::string& model_name,
                                   int64_t batch, const Cluster& cluster,
                                   const SearchOptions& options = {});

}  // namespace fastt
