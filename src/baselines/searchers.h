// Black-box comparator stand-ins for Fig. 3.
//
// The paper compares FastT against published numbers from four systems whose
// search code is unavailable (REINFORCE, GDP, Post) or unreleasable
// (FlexFlow). We reproduce the *comparison* by implementing searchers that
// occupy the same solution spaces and search styles, evaluated against the
// same simulated testbed:
//
//   * REINFORCE-like — black-box random search over model-parallel
//     placements of the bare graph (no data parallelism, no splits): the
//     solution space of the RL placement papers, with a sampling budget.
//   * GDP-like — rank-ordered greedy placement of the bare graph (their
//     GNN+transformer policy collapses to prioritized greedy placement in
//     white-box form; still no DP, no splits).
//   * Post-like — cross-entropy/local-search refinement: iterated
//     hill-climbing over single-op moves from the best random placement.
//   * FlexFlow-like — simulated annealing over placement AND operation
//     splits of the data-parallel graph (the larger SOAP-style space),
//     with a generous evaluation budget.
//
// All four consume simulator evaluations like their originals consume real
// or simulated rollouts; none sees FastT's cost models.
#pragma once

#include <cstdint>
#include <string>

#include "core/data_parallel.h"
#include "core/strategy.h"
#include "sim/exec_sim.h"

namespace fastt {

struct SearchResult {
  Graph graph;
  std::vector<DeviceId> placement;
  double iteration_s = 0.0;  // best feasible candidate's simulated time
  int evaluations = 0;       // simulator calls spent
  int64_t global_batch = 0;
};

struct SearchOptions {
  int budget = 200;        // candidate evaluations
  uint64_t seed = 11;
  double noise_cv = 0.0;   // evaluation noise (0: deterministic objective)
};

// REINFORCE-like: random model-parallel placements of the bare model graph.
SearchResult RandomSearchPlacement(const ModelBuildFn& build,
                                   const std::string& model_name,
                                   int64_t batch, const Cluster& cluster,
                                   const SearchOptions& options = {});

// GDP-like: FLOP-rank-ordered greedy min-finish placement of the bare graph
// (one deterministic construction; no splits, no DP).
SearchResult GreedyRankPlacement(const ModelBuildFn& build,
                                 const std::string& model_name,
                                 int64_t batch, const Cluster& cluster,
                                 const SearchOptions& options = {});

// Spotlight-like: greedy start + single-op-move hill climbing on the bare
// graph (proximal refinement of placements).
SearchResult LocalSearchPlacement(const ModelBuildFn& build,
                                  const std::string& model_name,
                                  int64_t batch, const Cluster& cluster,
                                  const SearchOptions& options = {});

// Post-like: the cross-entropy method over model-parallel placements — a
// per-op categorical distribution over devices is refit on the elite
// fraction of each sampled population (Post's CEM core, minus the PPO
// fine-tuning stage).
SearchResult CrossEntropyPlacement(const ModelBuildFn& build,
                                   const std::string& model_name,
                                   int64_t batch, const Cluster& cluster,
                                   const SearchOptions& options = {});

// FlexFlow-like: simulated annealing over (placement, split) of the
// data-parallel graph — the largest search space, the largest budget.
SearchResult AnnealingSearch(const ModelBuildFn& build,
                             const std::string& model_name, int64_t batch,
                             const Cluster& cluster,
                             const SearchOptions& options = {});

}  // namespace fastt
