// The arena roster: every placement searcher in the repository behind the
// shared SearchFn interface, in canonical registry order. PortfolioSearch
// (core/portfolio.h) consumes the roster by value, so src/core never links
// back into src/baselines — the registry is the one place that knows every
// contender.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/portfolio.h"

namespace fastt {

// FastT's own pipeline (bootstrap profiling + DPOS/OS-DPOS via RunFastT)
// behind the searcher interface. The reported iteration_s is the committed
// strategy's noise-free re-simulation, so the differential oracle holds for
// it like for every other searcher; evaluations counts pre-training rounds.
SearchResult FastTSearch(const ModelBuildFn& build,
                         const std::string& model_name, int64_t batch,
                         const Cluster& cluster,
                         const SearchOptions& options = {});

// All registered searchers: fastt first, then the four Fig. 3 black-box
// stand-ins (plus the local-search refinement), then the published-rival
// constructions from rivals.cc. Order is the arena's tie-break and the
// deterministic reduction order — append, never reorder.
const std::vector<ArenaSearcher>& RegisteredSearchers();

// Roster lookup by name; nullptr when absent.
const ArenaSearcher* FindSearcher(const std::string& name);

}  // namespace fastt
