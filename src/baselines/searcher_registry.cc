#include "baselines/searcher_registry.h"

#include <chrono>
#include <utility>

#include "baselines/searchers.h"
#include "core/strategy_calculator.h"

namespace fastt {

SearchResult FastTSearch(const ModelBuildFn& build,
                         const std::string& model_name, int64_t batch,
                         const Cluster& cluster,
                         const SearchOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  // A bounded pre-training workflow: fewer rounds/iterations than the full
  // Table 4 runs so the arena race stays snappy, but the same bootstrap +
  // DPOS/OS-DPOS pipeline. Deterministic for a fixed seed (the profiling
  // noise is seeded, and DPOS reduces in index order on any --jobs width).
  CalculatorOptions copt;
  copt.seed = options.seed;
  copt.max_rounds = 4;
  copt.profile_iterations = 2;
  copt.measure_iterations = 2;
  CalculatorResult ft = RunFastT(build, model_name, batch, Scaling::kStrong,
                                 cluster, copt);
  SearchResult result;
  result.graph = std::move(ft.graph);
  result.placement = std::move(ft.strategy.placement);
  result.execution_order = std::move(ft.strategy.execution_order);
  result.splits = std::move(ft.strategy.splits);
  result.global_batch = ft.global_batch;
  result.evaluations = ft.rounds;
  result.stop_reason = "converged";
  result.iteration_s = ResimulateIteration(result, cluster);
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return result;
}

const std::vector<ArenaSearcher>& RegisteredSearchers() {
  static const std::vector<ArenaSearcher> kRoster = {
      {"fastt", "dpos", FastTSearch},
      {"random", "black-box", RandomSearchPlacement},
      {"greedy-rank", "black-box", GreedyRankPlacement},
      {"local-search", "black-box", LocalSearchPlacement},
      {"cross-entropy", "black-box", CrossEntropyPlacement},
      {"annealing", "black-box", AnnealingSearch},
      {"m-etf", "list-scheduler", MEtfPlacement},
      {"m-sct", "list-scheduler", MSctPlacement},
      {"dp-pipeline", "partitioner", DpPipelinePlacement},
      {"critical-path", "list-scheduler", CriticalPathPlacement},
  };
  return kRoster;
}

const ArenaSearcher* FindSearcher(const std::string& name) {
  for (const ArenaSearcher& s : RegisteredSearchers())
    if (s.name == name) return &s;
  return nullptr;
}

}  // namespace fastt
