// Ring-allreduce data parallelism — the modern (NCCL-style) baseline.
//
// The paper's DP baseline is TF-slim in-graph replication with shared
// variables, whose weight-broadcast/gradient-gather traffic through one
// device is the headroom FastT exploits. Contemporary systems instead keep
// per-replica weights and synchronize gradients with a ring allreduce whose
// per-device traffic is constant in the replica count. This module builds
// that graph — per-replica variables and optimizer updates, plus an explicit
// 2(n-1)-step ring (reduce-scatter + all-gather) of chunked gradient
// exchange ops — so experiments can quantify how much of FastT's Table 1
// advantage survives against a stronger baseline (EXPERIMENTS.md discusses
// the answer: less on CNNs, while placement wins on memory-bound and
// multi-server cases remain).
#pragma once

#include "core/data_parallel.h"

namespace fastt {

struct AllReduceGraph {
  Graph graph;
  int replicas = 0;
  int64_t global_batch = 0;
  std::vector<int> replica_of;  // by OpId; ring ops belong to their replica
};

// Builds `replicas` full model copies (per-replica variables — NO sharing)
// and wires one fused ring allreduce over each replica's flattened gradient
// set: gradients feed a per-replica bucketing op, 2(n-1) ring steps exchange
// chunks between neighbours, and each replica's optimizer updates consume
// its reduced bucket.
AllReduceGraph BuildAllReduceDataParallel(const ModelBuildFn& build,
                                          const std::string& model_name,
                                          int64_t batch, int replicas,
                                          Scaling scaling);

// Canonical placement: replica r (and its ring ops) on device r.
std::vector<DeviceId> AllReducePlacement(const AllReduceGraph& ar);

}  // namespace fastt
