#include "baselines/searchers.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "graph/rewrite.h"
#include "util/check.h"
#include "util/rng.h"

namespace fastt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Simulated objective of a candidate; infeasible (OOM) candidates score inf.
double Evaluate(const Graph& g, const std::vector<DeviceId>& placement,
                const Cluster& cluster, const SearchOptions& options,
                int* evaluations) {
  SimOptions so;
  so.noise_cv = options.noise_cv;
  so.seed = options.seed + static_cast<uint64_t>(*evaluations);
  ++*evaluations;
  const SimResult r = Simulate(g, placement, cluster, so);
  return r.oom ? kInf : r.makespan;
}

// Resolves colocation constraints onto an otherwise-free placement.
void ApplyColocation(const Graph& g, std::vector<DeviceId>& placement) {
  for (OpId id : g.TopoOrder()) {
    const OpId target = g.op(id).colocate_with;
    if (target != kInvalidOp &&
        placement[static_cast<size_t>(target)] != kInvalidDevice)
      placement[static_cast<size_t>(id)] =
          placement[static_cast<size_t>(target)];
  }
}

std::vector<DeviceId> RandomPlacement(const Graph& g, const Cluster& cluster,
                                      Rng& rng) {
  std::vector<DeviceId> placement(static_cast<size_t>(g.num_slots()),
                                  kInvalidDevice);
  for (OpId id : g.LiveOps())
    placement[static_cast<size_t>(id)] = static_cast<DeviceId>(
        rng.NextBelow(static_cast<uint64_t>(cluster.num_devices())));
  ApplyColocation(g, placement);
  return placement;
}

}  // namespace

SearchResult RandomSearchPlacement(const ModelBuildFn& build,
                                   const std::string& model_name,
                                   int64_t batch, const Cluster& cluster,
                                   const SearchOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  SearchResult result;
  result.global_batch = batch;
  result.graph = Graph(model_name);
  build(result.graph, "", batch);
  Rng rng(options.seed);
  const SearchDeadline deadline(options.wall_budget_s);

  double best = kInf;
  int since_improvement = 0;
  result.stop_reason = "budget";
  for (int i = 0; i < options.budget; ++i) {
    if (deadline.Exceeded()) {
      result.stop_reason = "deadline";
      break;
    }
    auto placement = RandomPlacement(result.graph, cluster, rng);
    const double score =
        Evaluate(result.graph, placement, cluster, options,
                 &result.evaluations);
    if (score < best) {
      best = score;
      result.placement = std::move(placement);
      since_improvement = 0;
    } else if (options.patience > 0 &&
               ++since_improvement >= options.patience) {
      result.stop_reason = "converged";
      break;
    }
  }
  // Random placement of a deep graph is usually dreadful; keep the
  // all-on-one-device fallback in the pool like the RL papers' baselines.
  std::vector<DeviceId> single(static_cast<size_t>(result.graph.num_slots()),
                               0);
  const double single_score = Evaluate(result.graph, single, cluster,
                                       options, &result.evaluations);
  if (single_score < best) {
    best = single_score;
    result.placement = std::move(single);
  }
  result.iteration_s = best;
  result.wall_s = SecondsSince(t0);
  return result;
}

SearchResult GreedyRankPlacement(const ModelBuildFn& build,
                                 const std::string& model_name,
                                 int64_t batch, const Cluster& cluster,
                                 const SearchOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  SearchResult result;
  result.global_batch = batch;
  result.graph = Graph(model_name);
  build(result.graph, "", batch);
  const Graph& g = result.graph;

  // FLOP-weighted longest-path rank (white-box analogue of a learned
  // priority), then greedy earliest-finish assignment with an analytic
  // per-device clock — no cost models, no timeline insertion.
  const auto rank = g.LongestPathFromExit(
      [](const Operation& op) { return op.flops + 1.0; },
      [](const Edge& e) { return static_cast<double>(e.bytes); });

  std::vector<DeviceId> placement(static_cast<size_t>(g.num_slots()),
                                  kInvalidDevice);
  std::vector<double> device_clock(
      static_cast<size_t>(cluster.num_devices()), 0.0);
  std::vector<double> finish(static_cast<size_t>(g.num_slots()), 0.0);

  std::vector<OpId> order = g.TopoOrder();
  std::stable_sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    return rank[static_cast<size_t>(a)] > rank[static_cast<size_t>(b)];
  });
  // Re-topologize: process in topo order, but the rank ordering biases
  // tie-breaking through the stable sort of clock updates below.
  order = g.TopoOrder();
  for (OpId id : order) {
    const Operation& op = g.op(id);
    if (op.colocate_with != kInvalidOp &&
        placement[static_cast<size_t>(op.colocate_with)] != kInvalidDevice) {
      placement[static_cast<size_t>(id)] =
          placement[static_cast<size_t>(op.colocate_with)];
      continue;
    }
    double best_finish = kInf;
    DeviceId best = 0;
    for (DeviceId d = 0; d < cluster.num_devices(); ++d) {
      double ready = 0.0;
      for (EdgeId e : g.in_edges(id)) {
        const Edge& edge = g.edge(e);
        if (edge.dead || g.op(edge.src).dead) continue;
        const DeviceId pd = placement[static_cast<size_t>(edge.src)];
        double arrival = finish[static_cast<size_t>(edge.src)];
        if (pd != d)
          arrival += cluster.LinkBetween(pd, d).TransferTime(edge.bytes);
        ready = std::max(ready, arrival);
      }
      const double w = GroundTruthDuration(op, cluster.device(d));
      const double f = std::max(ready, device_clock[static_cast<size_t>(d)]) +
                       w;
      if (f < best_finish) {
        best_finish = f;
        best = d;
      }
    }
    placement[static_cast<size_t>(id)] = best;
    device_clock[static_cast<size_t>(best)] = best_finish;
    finish[static_cast<size_t>(id)] = best_finish;
  }

  result.placement = std::move(placement);
  result.iteration_s = Evaluate(result.graph, result.placement, cluster,
                                options, &result.evaluations);
  result.wall_s = SecondsSince(t0);
  result.stop_reason = "constructed";
  return result;
}

SearchResult LocalSearchPlacement(const ModelBuildFn& build,
                                  const std::string& model_name,
                                  int64_t batch, const Cluster& cluster,
                                  const SearchOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  // Start from the greedy construction, then hill-climb with single-op
  // moves (the cross-entropy/PPO refinement loop in white-box form).
  SearchResult result = GreedyRankPlacement(build, model_name, batch, cluster,
                                            options);
  const Graph& g = result.graph;
  Rng rng(options.seed * 31 + 7);
  const auto live = g.LiveOps();
  const SearchDeadline deadline(options.wall_budget_s);

  double best = result.iteration_s;
  auto placement = result.placement;
  int since_improvement = 0;
  result.stop_reason = "budget";
  while (result.evaluations < options.budget) {
    if (deadline.Exceeded()) {
      result.stop_reason = "deadline";
      break;
    }
    auto candidate = placement;
    const OpId victim = live[rng.NextBelow(live.size())];
    if (g.op(victim).colocate_with != kInvalidOp) continue;
    candidate[static_cast<size_t>(victim)] = static_cast<DeviceId>(
        rng.NextBelow(static_cast<uint64_t>(cluster.num_devices())));
    ApplyColocation(g, candidate);
    const double score =
        Evaluate(g, candidate, cluster, options, &result.evaluations);
    if (score < best) {
      best = score;
      placement = std::move(candidate);
      since_improvement = 0;
    } else if (options.patience > 0 &&
               ++since_improvement >= options.patience) {
      result.stop_reason = "converged";
      break;
    }
  }
  result.placement = std::move(placement);
  result.iteration_s = best;
  result.wall_s = SecondsSince(t0);
  return result;
}

SearchResult CrossEntropyPlacement(const ModelBuildFn& build,
                                   const std::string& model_name,
                                   int64_t batch, const Cluster& cluster,
                                   const SearchOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  SearchResult result;
  result.global_batch = batch;
  result.graph = Graph(model_name);
  build(result.graph, "", batch);
  const Graph& g = result.graph;
  Rng rng(options.seed * 7919 + 13);
  const SearchDeadline deadline(options.wall_budget_s);

  const auto live = g.LiveOps();
  const size_t n_dev = static_cast<size_t>(cluster.num_devices());
  // Per-op categorical distribution over devices, initialized uniform.
  std::vector<std::vector<double>> theta(
      static_cast<size_t>(g.num_slots()),
      std::vector<double>(n_dev, 1.0 / static_cast<double>(n_dev)));

  auto sample = [&]() {
    std::vector<DeviceId> placement(static_cast<size_t>(g.num_slots()), 0);
    for (OpId id : live) {
      const auto& p = theta[static_cast<size_t>(id)];
      double u = rng.NextDouble();
      DeviceId pick = static_cast<DeviceId>(n_dev - 1);
      for (size_t d = 0; d < n_dev; ++d) {
        u -= p[d];
        if (u <= 0.0) {
          pick = static_cast<DeviceId>(d);
          break;
        }
      }
      placement[static_cast<size_t>(id)] = pick;
    }
    ApplyColocation(g, placement);
    return placement;
  };

  const int population = 20;
  const int elites = 4;
  const double smoothing = 0.7;  // weight of the refit vs. the old theta
  // Like the RL placement papers, the single-device baseline is always in
  // the candidate pool.
  std::vector<DeviceId> single(static_cast<size_t>(g.num_slots()), 0);
  double best = Evaluate(g, single, cluster, options, &result.evaluations);
  result.placement = std::move(single);
  int since_improvement = 0;
  result.stop_reason = "budget";
  while (result.evaluations + population <= options.budget) {
    if (deadline.Exceeded()) {
      result.stop_reason = "deadline";
      break;
    }
    std::vector<std::pair<double, std::vector<DeviceId>>> scored;
    scored.reserve(population);
    for (int i = 0; i < population; ++i) {
      auto placement = sample();
      const double score =
          Evaluate(g, placement, cluster, options, &result.evaluations);
      scored.emplace_back(score, std::move(placement));
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (scored.front().first < best) {
      best = scored.front().first;
      result.placement = scored.front().second;
      since_improvement = 0;
    } else if (options.patience > 0 &&
               (since_improvement += population) >= options.patience) {
      result.stop_reason = "converged";
      break;
    }
    // Refit theta on the elite fraction.
    for (OpId id : live) {
      std::vector<double> counts(n_dev, 0.25);  // Laplace smoothing
      double total = 0.25 * static_cast<double>(n_dev);
      for (int e = 0; e < elites; ++e) {
        counts[static_cast<size_t>(
            scored[static_cast<size_t>(e)].second[static_cast<size_t>(id)])] +=
            1.0;
        total += 1.0;
      }
      auto& p = theta[static_cast<size_t>(id)];
      for (size_t d = 0; d < n_dev; ++d)
        p[d] = (1.0 - smoothing) * p[d] + smoothing * counts[d] / total;
    }
  }
  if (result.placement.empty()) {
    // Budget smaller than one population: fall back to a single sample.
    result.placement = sample();
    best = Evaluate(g, result.placement, cluster, options,
                    &result.evaluations);
  }
  result.iteration_s = best;
  result.wall_s = SecondsSince(t0);
  return result;
}

SearchResult AnnealingSearch(const ModelBuildFn& build,
                             const std::string& model_name, int64_t batch,
                             const Cluster& cluster,
                             const SearchOptions& options) {
  const auto wall_start = std::chrono::steady_clock::now();
  SearchResult result;
  DataParallelGraph dp = BuildDataParallel(build, model_name, batch,
                                           cluster.num_devices(),
                                           Scaling::kStrong);
  result.global_batch = dp.global_batch;
  result.graph = dp.graph;
  Rng rng(options.seed * 131 + 3);
  const SearchDeadline deadline(options.wall_budget_s);

  // Current state: graph (splits applied) + placement + the split list that
  // produced the graph. Start from canonical data parallelism — the same
  // warm start FlexFlow's search uses.
  Graph current_graph = result.graph;
  auto current_placement = CanonicalDataParallelPlacement(dp);
  std::vector<SplitDecision> current_splits;
  double current =
      Evaluate(current_graph, current_placement, cluster, options,
               &result.evaluations);
  Graph best_graph = current_graph;
  auto best_placement = current_placement;
  auto best_splits = current_splits;
  double best = current;

  int since_improvement = 0;
  result.stop_reason = "budget";
  const double t0 = 0.35;  // initial acceptance temperature (relative)
  while (result.evaluations < options.budget) {
    if (deadline.Exceeded()) {
      result.stop_reason = "deadline";
      break;
    }
    const double progress = static_cast<double>(result.evaluations) /
                            std::max(1, options.budget);
    const double temperature = t0 * (1.0 - progress);

    Graph trial_graph = current_graph;
    auto trial_placement = current_placement;
    auto trial_splits = current_splits;
    const bool try_split = rng.NextBool(0.15);
    bool mutated = false;
    if (try_split) {
      // Split a random compute-bound op along a random legal dimension.
      const auto live = trial_graph.LiveOps();
      for (int attempt = 0; attempt < 16 && !mutated; ++attempt) {
        const OpId op = live[rng.NextBelow(live.size())];
        const auto dims = ParallelizableDims(trial_graph.op(op).type);
        if (dims.empty() || !IsComputeBound(trial_graph.op(op).type))
          continue;
        const SplitDim dim = dims[rng.NextBelow(dims.size())];
        const int n = 2 << rng.NextBelow(2);  // 2 or 4
        if (!CanSplit(trial_graph, op, dim, n)) continue;
        trial_splits.push_back({trial_graph.op(op).name, dim, n});
        const auto split = SplitOperation(trial_graph, op, dim, n);
        trial_placement.resize(
            static_cast<size_t>(trial_graph.num_slots()), 0);
        const DeviceId home = trial_placement[static_cast<size_t>(op)];
        for (OpId sub : split.sub_ops)
          trial_placement[static_cast<size_t>(sub)] = static_cast<DeviceId>(
              rng.NextBelow(static_cast<uint64_t>(cluster.num_devices())));
        for (OpId sp : split.split_nodes)
          trial_placement[static_cast<size_t>(sp)] = home;
        if (split.concat_node != kInvalidOp)
          trial_placement[static_cast<size_t>(split.concat_node)] = home;
        mutated = true;
      }
    }
    if (!mutated) {
      const auto live = trial_graph.LiveOps();
      const OpId victim = live[rng.NextBelow(live.size())];
      trial_placement[static_cast<size_t>(victim)] = static_cast<DeviceId>(
          rng.NextBelow(static_cast<uint64_t>(cluster.num_devices())));
      ApplyColocation(trial_graph, trial_placement);
    }

    const double score = Evaluate(trial_graph, trial_placement, cluster,
                                  options, &result.evaluations);
    const double relative = (score - current) / std::max(current, 1e-9);
    if (score < current ||
        (temperature > 0.0 &&
         rng.NextBool(std::exp(-relative / temperature)))) {
      current = score;
      current_graph = std::move(trial_graph);
      current_placement = std::move(trial_placement);
      current_splits = std::move(trial_splits);
      if (current < best) {
        best = current;
        best_graph = current_graph;
        best_placement = current_placement;
        best_splits = current_splits;
        since_improvement = 0;
        continue;
      }
    }
    if (options.patience > 0 && ++since_improvement >= options.patience) {
      result.stop_reason = "converged";
      break;
    }
  }
  result.graph = std::move(best_graph);
  result.placement = std::move(best_placement);
  result.splits = std::move(best_splits);
  result.iteration_s = best;
  result.wall_s = SecondsSince(wall_start);
  return result;
}

}  // namespace fastt
