#include "baselines/allreduce_dp.h"

#include <vector>

#include "graph/rewrite.h"
#include "util/check.h"
#include "util/strings.h"

namespace fastt {

AllReduceGraph BuildAllReduceDataParallel(const ModelBuildFn& build,
                                          const std::string& model_name,
                                          int64_t batch, int replicas,
                                          Scaling scaling) {
  FASTT_CHECK(replicas >= 1);
  if (scaling == Scaling::kStrong)
    FASTT_CHECK_MSG(batch >= replicas,
                    "strong scaling needs batch >= replicas");

  AllReduceGraph ar;
  ar.replicas = replicas;
  ar.graph.set_name(StrFormat("%s_allreduce%d", model_name.c_str(),
                              replicas));

  // Per-replica copies with their own variables and optimizer updates.
  for (int r = 0; r < replicas; ++r) {
    int64_t replica_batch = batch;
    if (scaling == Scaling::kStrong)
      replica_batch = batch / replicas + (r < batch % replicas ? 1 : 0);
    ar.global_batch += replica_batch;
    build(ar.graph, replicas == 1 ? "" : StrFormat("rep%d", r),
          replica_batch);
    ar.replica_of.resize(static_cast<size_t>(ar.graph.num_slots()), r);
  }
  if (replicas == 1) {
    ar.graph.Validate();
    return ar;
  }

  // Gather each replica's optimizer updates and their gradient producers.
  struct ApplyEdge {
    OpId apply;
    OpId wgrad;
    EdgeId edge;
    int64_t bytes;
  };
  std::vector<std::vector<ApplyEdge>> per_replica(
      static_cast<size_t>(replicas));
  int64_t total_grad_bytes = 0;
  for (OpId id : ar.graph.LiveOps()) {
    if (ar.graph.op(id).type != OpType::kApplyGradient) continue;
    const int r = ar.replica_of[static_cast<size_t>(id)];
    for (EdgeId e : ar.graph.in_edges(id)) {
      const Edge& edge = ar.graph.edge(e);
      if (edge.dead) continue;
      per_replica[static_cast<size_t>(r)].push_back(
          {id, edge.src, e, edge.bytes});
      if (r == 0) total_grad_bytes += edge.bytes;
    }
  }

  // Fused gradient bucket per replica, then a 2(n-1)-step ring
  // (reduce-scatter + all-gather) exchanging total/n-sized chunks with the
  // ring neighbour, then per-replica updates read the reduced bucket.
  const int64_t chunk = total_grad_bytes / replicas + 1;
  auto ring_op = [&](const std::string& name, int64_t bytes, int replica) {
    Operation op;
    op.name = name;
    op.type = OpType::kGradAggregate;
    op.output_shape = TensorShape{bytes / 4};
    op.bytes_touched = 2 * bytes;
    op.cost_key = GlueCostKey(OpType::kGradAggregate, bytes);
    op.is_backward = true;
    const OpId id = ar.graph.AddOp(std::move(op));
    ar.replica_of.resize(static_cast<size_t>(ar.graph.num_slots()), replica);
    return id;
  };

  std::vector<OpId> stage(static_cast<size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    const OpId bucket =
        ring_op(StrFormat("ring/bucket%d", r), total_grad_bytes, r);
    for (const ApplyEdge& ae : per_replica[static_cast<size_t>(r)])
      ar.graph.AddEdge(ae.wgrad, bucket, ae.bytes);
    stage[static_cast<size_t>(r)] = bucket;
  }
  const int steps = 2 * (replicas - 1);
  for (int t = 0; t < steps; ++t) {
    std::vector<OpId> next(static_cast<size_t>(replicas));
    for (int r = 0; r < replicas; ++r) {
      const int left = (r + replicas - 1) % replicas;
      const OpId op =
          ring_op(StrFormat("ring/step%d_%d", t, r), chunk, r);
      // Local running state + the chunk arriving from the left neighbour.
      ar.graph.AddEdge(stage[static_cast<size_t>(r)], op, chunk);
      ar.graph.AddEdge(stage[static_cast<size_t>(left)], op, chunk);
      next[static_cast<size_t>(r)] = op;
    }
    stage = std::move(next);
  }
  for (int r = 0; r < replicas; ++r) {
    for (const ApplyEdge& ae : per_replica[static_cast<size_t>(r)]) {
      ar.graph.RemoveEdge(ae.edge);
      ar.graph.AddEdge(stage[static_cast<size_t>(r)], ae.apply, ae.bytes);
    }
  }

  ar.graph.Validate();
  return ar;
}

std::vector<DeviceId> AllReducePlacement(const AllReduceGraph& ar) {
  std::vector<DeviceId> placement(
      static_cast<size_t>(ar.graph.num_slots()), kInvalidDevice);
  for (OpId id : ar.graph.LiveOps())
    placement[static_cast<size_t>(id)] =
        static_cast<DeviceId>(ar.replica_of[static_cast<size_t>(id)]);
  return placement;
}

}  // namespace fastt
