#include "obs/bench_history.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/build_info.h"
#include "obs/json.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace fastt {

void BenchMetricSeries::Finalize() {
  // One ComputeSampleStats call sorts once and derives every field —
  // previously each Percentile call re-sorted the series.
  const SampleStats stats = ComputeSampleStats(samples);
  median = stats.p50;
  p90 = stats.p90;
  min = stats.min;
  mean = stats.mean;
}

std::string BenchHistoryDocToJson(const BenchHistoryDoc& doc) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("fastt-bench/1");
  w.Key("build");
  WriteBuildInfo(w);
  w.Key("run").BeginObject();
  for (const auto& [k, v] : doc.run) w.Key(k).String(v);
  w.EndObject();
  w.Key("reports").BeginArray();
  for (const BenchReport& report : doc.reports) {
    w.BeginObject();
    w.Key("benchmark").String(report.benchmark);
    w.Key("params").BeginObject();
    for (const auto& [k, v] : report.params) w.Key(k).String(v);
    w.EndObject();
    w.Key("metrics").BeginArray();
    for (BenchMetricSeries metric : report.metrics) {
      metric.Finalize();
      w.BeginObject();
      w.Key("name").String(metric.name);
      w.Key("unit").String(metric.unit);
      w.Key("lower_is_better").Bool(metric.lower_is_better);
      w.Key("samples").BeginArray();
      for (const double s : metric.samples) w.Number(s);
      w.EndArray();
      w.Key("median").Number(metric.median);
      w.Key("p90").Number(metric.p90);
      w.Key("min").Number(metric.min);
      w.Key("mean").Number(metric.mean);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  if (!doc.process_metrics_json.empty())
    w.Key("process_metrics").Raw(doc.process_metrics_json);
  w.EndObject();
  return w.str();
}

void WriteBenchHistoryDoc(const BenchHistoryDoc& doc,
                          const std::string& path) {
  std::ofstream file(path);
  file << BenchHistoryDocToJson(doc) << "\n";
}

bool ParseBenchHistoryDoc(const std::string& json, BenchHistoryDoc* out,
                          std::string* error) {
  *out = BenchHistoryDoc{};
  JsonValue root;
  if (!JsonParse(json, &root, error)) return false;
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->StringOr("") != "fastt-bench/1") {
    if (error) *error = "not a fastt-bench/1 document";
    return false;
  }
  if (const JsonValue* run = root.Find("run"); run && run->is_object()) {
    for (const auto& [k, v] : run->fields) {
      if (v.is_string()) out->run[k] = v.str_v;
    }
  }
  const JsonValue* reports = root.Find("reports");
  if (reports == nullptr || !reports->is_array()) {
    if (error) *error = "missing reports array";
    return false;
  }
  for (const JsonValue& r : reports->items) {
    BenchReport report;
    if (const JsonValue* b = r.Find("benchmark")) {
      report.benchmark = b->StringOr("");
    }
    if (const JsonValue* params = r.Find("params");
        params && params->is_object()) {
      for (const auto& [k, v] : params->fields) {
        report.params[k] = v.is_string() ? v.str_v : JsonNumber(v.num_v);
      }
    }
    if (const JsonValue* metrics = r.Find("metrics");
        metrics && metrics->is_array()) {
      for (const JsonValue& m : metrics->items) {
        BenchMetricSeries series;
        if (const JsonValue* n = m.Find("name")) series.name = n->StringOr("");
        if (const JsonValue* u = m.Find("unit")) series.unit = u->StringOr("");
        if (const JsonValue* l = m.Find("lower_is_better")) {
          series.lower_is_better =
              l->kind != JsonValue::Kind::kBool || l->bool_v;
        }
        if (const JsonValue* samples = m.Find("samples");
            samples && samples->is_array()) {
          for (const JsonValue& s : samples->items) {
            if (s.is_number()) series.samples.push_back(s.num_v);
          }
        }
        // Stats are derived data; recompute rather than trusting the file.
        series.Finalize();
        report.metrics.push_back(std::move(series));
      }
    }
    out->reports.push_back(std::move(report));
  }
  return true;
}

bool ReadBenchHistoryDoc(const std::string& path, BenchHistoryDoc* out,
                         std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::stringstream buf;
  buf << file.rdbuf();
  return ParseBenchHistoryDoc(buf.str(), out, error);
}

namespace {

std::string ParamsKey(const std::map<std::string, std::string>& params) {
  std::string key;
  for (const auto& [k, v] : params) {
    if (!key.empty()) key += ' ';
    key += k + "=" + v;
  }
  return key;
}

}  // namespace

BenchDiffResult DiffBenchReports(const BenchHistoryDoc& old_doc,
                                 const BenchHistoryDoc& new_doc,
                                 const BenchDiffOptions& options) {
  using Verdict = BenchDiffEntry::Verdict;
  BenchDiffResult result;

  struct Cell {
    BenchMetricSeries series;  // finalized copy: stats derive from samples
    std::string benchmark;
    std::string params;
  };
  // (benchmark, params, metric) -> series
  std::map<std::string, Cell> old_cells;
  auto cell_key = [](const std::string& bench, const std::string& params,
                     const std::string& metric) {
    return bench + "\x1f" + params + "\x1f" + metric;
  };
  for (const BenchReport& r : old_doc.reports) {
    const std::string params = ParamsKey(r.params);
    for (BenchMetricSeries m : r.metrics) {
      m.Finalize();
      const std::string key = cell_key(r.benchmark, params, m.name);
      old_cells[key] = {std::move(m), r.benchmark, params};
    }
  }

  for (const BenchReport& r : new_doc.reports) {
    const std::string params = ParamsKey(r.params);
    for (BenchMetricSeries m : r.metrics) {
      m.Finalize();
      BenchDiffEntry entry;
      entry.benchmark = r.benchmark;
      entry.params = params;
      entry.metric = m.name;
      entry.unit = m.unit;
      entry.new_median = m.median;
      entry.new_samples = static_cast<int>(m.samples.size());

      auto it = old_cells.find(cell_key(r.benchmark, params, m.name));
      if (it == old_cells.end()) {
        entry.verdict = Verdict::kUnmatched;
        ++result.unmatched;
        result.entries.push_back(entry);
        continue;
      }
      const BenchMetricSeries old_m = std::move(it->second.series);
      old_cells.erase(it);
      entry.old_median = old_m.median;
      entry.old_samples = static_cast<int>(old_m.samples.size());
      if (old_m.median == 0.0) {
        // Degenerate baseline; nothing meaningful to compare against.
        entry.verdict = Verdict::kOk;
        result.entries.push_back(entry);
        continue;
      }
      const double raw = (m.median - old_m.median) / old_m.median;
      entry.rel_delta = m.lower_is_better ? raw : -raw;  // >0 = worse
      // Comparisons get a ulp of slack so a delta that is exactly the
      // threshold (up to rounding of the division) still counts.
      constexpr double kEps = 1e-12;
      if (entry.rel_delta >= options.threshold * options.hard_factor - kEps &&
          entry.old_samples >= options.min_repeats &&
          entry.new_samples >= options.min_repeats) {
        entry.verdict = Verdict::kHardRegression;
        ++result.hard_regressions;
      } else if (entry.rel_delta >= options.threshold - kEps) {
        entry.verdict = Verdict::kWarn;
        ++result.warnings;
      } else if (entry.rel_delta <= -(options.threshold - kEps)) {
        entry.verdict = Verdict::kImproved;
        ++result.improvements;
      }
      result.entries.push_back(entry);
    }
  }
  // Old-side metrics that vanished from the new report.
  for (const auto& [key, cell] : old_cells) {
    BenchDiffEntry entry;
    entry.benchmark = cell.benchmark;
    entry.params = cell.params;
    entry.metric = cell.series.name;
    entry.unit = cell.series.unit;
    entry.old_median = cell.series.median;
    entry.old_samples = static_cast<int>(cell.series.samples.size());
    entry.verdict = Verdict::kUnmatched;
    ++result.unmatched;
    result.entries.push_back(entry);
  }

  std::sort(result.entries.begin(), result.entries.end(),
            [](const BenchDiffEntry& a, const BenchDiffEntry& b) {
              if (a.rel_delta != b.rel_delta) return a.rel_delta > b.rel_delta;
              if (a.benchmark != b.benchmark) return a.benchmark < b.benchmark;
              if (a.params != b.params) return a.params < b.params;
              return a.metric < b.metric;
            });
  return result;
}

std::string RenderBenchDiff(const BenchDiffResult& result,
                            const BenchDiffOptions& options) {
  using Verdict = BenchDiffEntry::Verdict;
  TablePrinter table({"benchmark", "cell", "metric", "old", "new", "delta %",
                      "n", "verdict"});
  for (const BenchDiffEntry& e : result.entries) {
    std::string verdict;
    switch (e.verdict) {
      case Verdict::kOk: verdict = "ok"; break;
      case Verdict::kImproved: verdict = "improved"; break;
      case Verdict::kWarn: verdict = "WARN"; break;
      case Verdict::kHardRegression: verdict = "REGRESSION"; break;
      case Verdict::kUnmatched: verdict = "unmatched"; break;
    }
    // Byte-valued metrics render human-readable; everything else raw.
    auto value = [&](double v, int samples) -> std::string {
      if (samples <= 0) return "-";
      return e.unit == "bytes" ? HumanBytes(v) : StrFormat("%.4g", v);
    };
    table.AddRow(
        {e.benchmark, e.params, e.metric,
         value(e.old_median, e.old_samples),
         value(e.new_median, e.new_samples),
         e.old_samples > 0 && e.new_samples > 0
             ? StrFormat("%+.1f", 100.0 * e.rel_delta)
             : "-",
         StrFormat("%d/%d", e.old_samples, e.new_samples), verdict});
  }
  std::string out = table.Render();
  out += StrFormat(
      "\n%d hard regression(s) (>= %.0f%%, both sides >= %d samples), "
      "%d warning(s) (>= %.0f%%), %d improvement(s), %d unmatched\n",
      result.hard_regressions, 100.0 * options.threshold * options.hard_factor,
      options.min_repeats, result.warnings, 100.0 * options.threshold,
      result.improvements, result.unmatched);
  return out;
}

std::string AppendToHistory(const std::string& dir, const std::string& label,
                            const BenchHistoryDoc& doc) {
  std::filesystem::create_directories(dir);
  int seq = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string stem = entry.path().stem().string();
    const size_t dash = stem.rfind('-');
    if (dash == std::string::npos || stem.substr(0, dash) != label) continue;
    seq = std::max(seq, std::atoi(stem.c_str() + dash + 1));
  }
  const std::string path =
      (std::filesystem::path(dir) / StrFormat("%s-%04d.json", label.c_str(),
                                              seq + 1))
          .string();
  WriteBenchHistoryDoc(doc, path);
  return path;
}

}  // namespace fastt
