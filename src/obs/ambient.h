// The ambient telemetry slot: which telemetry sinks "the current thread" is
// writing into.
//
// Every observability facility in this repo (MetricsRegistry, Tracer,
// EventLog, MemTracker) started life as a process-global singleton. A
// long-running service handling concurrent placement requests needs each
// request's telemetry kept apart, so the singletons became *defaults*: the
// instrumentation macros resolve their sink through this thread-local slot
// first and fall back to the process-global instance when the slot is empty.
// TelemetryScope (obs/context.h) installs a TelemetryContext's sinks here,
// and ThreadPool::Run propagates the submitting thread's bindings to the
// workers executing its chunks — the same discipline MemTagScope uses for
// the ambient allocation tag.
//
// This header is dependency-free (only forward declarations; compiled into
// fastt_tracer) so both the tracer macros and the thread pool in fastt_util
// can consult the slot without a util <-> obs cycle.
#pragma once

namespace fastt {

class EventLog;
class MemTracker;
class MetricsRegistry;
class TelemetryContext;
class Tracer;

// The full set of thread-local bindings. All-null means "no scope
// installed": callers fall back to the process-global facilities.
struct AmbientTelemetry {
  TelemetryContext* context = nullptr;
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  EventLog* events = nullptr;
  MemTracker* memtrack = nullptr;
};

// The calling thread's current bindings. Never dereference stale pointers
// out of this struct beyond the installing scope's lifetime.
const AmbientTelemetry& CurrentAmbientTelemetry();

// Installs `bundle` on the calling thread and returns the previous bindings
// so the caller can restore them (TelemetryScope and the pool's task
// wrapper both do exchange/restore pairs).
AmbientTelemetry ExchangeAmbientTelemetry(const AmbientTelemetry& bundle);

}  // namespace fastt
