#include "obs/build_info.h"

#include "obs/json.h"
#include "util/strings.h"

// The three FASTT_BUILD_* macros are injected by src/obs/CMakeLists.txt as
// COMPILE_DEFINITIONS on this file only, so editing a source file elsewhere
// never rebuilds the world just to restamp provenance.
#ifndef FASTT_BUILD_GIT_SHA
#define FASTT_BUILD_GIT_SHA "unknown"
#endif
#ifndef FASTT_BUILD_TYPE
#define FASTT_BUILD_TYPE "unknown"
#endif
#ifndef FASTT_BUILD_FLAGS
#define FASTT_BUILD_FLAGS ""
#endif

namespace fastt {
namespace {

std::string CompilerString() {
#if defined(__clang__)
  return StrFormat("clang++ %d.%d.%d", __clang_major__, __clang_minor__,
                   __clang_patchlevel__);
#elif defined(__GNUC__)
  return StrFormat("g++ %d.%d.%d", __GNUC__, __GNUC_MINOR__,
                   __GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfoData& BuildInfo() {
  static const BuildInfoData* info = [] {
    auto* data = new BuildInfoData();
    data->git_sha = FASTT_BUILD_GIT_SHA;
    data->compiler = CompilerString();
    data->build_type = FASTT_BUILD_TYPE;
    data->flags = FASTT_BUILD_FLAGS;
    return data;
  }();
  return *info;
}

void WriteBuildInfo(JsonWriter& w) {
  const BuildInfoData& info = BuildInfo();
  w.BeginObject();
  w.Key("git_sha").String(info.git_sha);
  w.Key("compiler").String(info.compiler);
  w.Key("build_type").String(info.build_type);
  w.Key("flags").String(info.flags);
  w.EndObject();
}

std::string BuildInfoLine() {
  const BuildInfoData& info = BuildInfo();
  std::string line = StrFormat("sha %s · %s · %s", info.git_sha.c_str(),
                               info.compiler.c_str(),
                               info.build_type.c_str());
  if (!info.flags.empty()) line += StrFormat(" · %s", info.flags.c_str());
  return line;
}

}  // namespace fastt
