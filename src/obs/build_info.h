// Build provenance, stamped into every JSON artifact the CLI can emit
// (fastt-bench/1, fastt-report/1, fastt-prof/1, fastt-blackbox/1) and
// printed by `fastt --version`. A profile or bench report without the sha
// and flags it was built from can't be compared to anything; with them,
// artifacts from different checkouts and build types are self-describing.
#pragma once

#include <string>

namespace fastt {

class JsonWriter;

struct BuildInfoData {
  std::string git_sha;     // short sha at configure time, "unknown" outside git
  std::string compiler;    // e.g. "g++ 13.2.0"
  std::string build_type;  // CMAKE_BUILD_TYPE, e.g. "Release"
  std::string flags;       // sanitizers/options that change comparability
};

// The one shared provenance record for this binary.
const BuildInfoData& BuildInfo();

// Writes the standard "build" object {git_sha, compiler, build_type, flags}
// under the writer's current value position. Callers emit Key("build")
// first so every schema spells the section identically.
void WriteBuildInfo(JsonWriter& w);

// One-line human form for --version: "sha abc123 · g++ 13.2.0 · Release".
std::string BuildInfoLine();

}  // namespace fastt
