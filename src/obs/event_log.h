// Structured event log: an append-only sequence of JSON objects, one per
// line (JSONL). StrategyCalculator narrates the pre-training workflow with
// it — communication probe, bootstrap choice, each round's predicted vs.
// measured iteration time, commits, rollbacks and their reasons, restart
// overheads, the stability stop — so the search becomes replayable data
// instead of an opaque final number.
//
//   EventLog log;
//   log.Emit("round").Int("round", 2).Number("measured_s", 0.081)
//      .Bool("committed", true);
//   log.WriteJsonl("events.jsonl");
//
// The builder stamps "event" (the type) and "seq" automatically; the line is
// appended when the builder goes out of scope.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"

namespace fastt {

class EventLog {
 public:
  class Builder {
   public:
    Builder(EventLog& log, const std::string& type);
    ~Builder();  // appends the finished line to the log
    Builder(const Builder&) = delete;
    Builder& operator=(const Builder&) = delete;

    Builder& Str(const std::string& key, const std::string& value);
    Builder& Number(const std::string& key, double value);
    Builder& Int(const std::string& key, int64_t value);
    Builder& Bool(const std::string& key, bool value);

   private:
    EventLog& log_;
    JsonWriter writer_;
  };

  // Starts a new event of the given type.
  Builder Emit(const std::string& type) { return Builder(*this, type); }

  size_t size() const { return lines_.size(); }
  // The i-th event as a JSON object string (no trailing newline).
  const std::string& line(size_t i) const { return lines_[i]; }

  // All events, newline-separated (JSONL).
  std::string ToJsonl() const;
  // Writes ToJsonl() to `path`. Returns false on I/O failure.
  bool WriteJsonl(const std::string& path) const;

  void Clear() { lines_.clear(); }

 private:
  friend class Builder;
  std::vector<std::string> lines_;
};

}  // namespace fastt
