// Structured event log: an append-only sequence of JSON objects, one per
// line (JSONL). StrategyCalculator narrates the pre-training workflow with
// it — communication probe, bootstrap choice, each round's predicted vs.
// measured iteration time, commits, rollbacks and their reasons, restart
// overheads, the stability stop — so the search becomes replayable data
// instead of an opaque final number.
//
//   EventLog log;
//   log.Emit("round").Int("round", 2).Number("measured_s", 0.081)
//      .Bool("committed", true);
//   log.WriteJsonl("events.jsonl");
//
// The builder stamps "event" (the type) and "seq" automatically; the line is
// appended when the builder goes out of scope.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "util/memtrack.h"
#include "util/sync.h"

namespace fastt {

// Thread-safe: concurrent Emit()s are fine. Each builder takes a unique
// "seq" at construction and appends atomically at destruction, so every
// line is well-formed and no line is lost — though lines may land in the
// log slightly out of seq order when emitters race.
class EventLog {
 public:
  class Builder {
   public:
    Builder(EventLog& log, const std::string& type);
    ~Builder();  // appends the finished line to the log
    Builder(const Builder&) = delete;
    Builder& operator=(const Builder&) = delete;

    Builder& Str(const std::string& key, const std::string& value);
    Builder& Number(const std::string& key, double value);
    Builder& Int(const std::string& key, int64_t value);
    Builder& Bool(const std::string& key, bool value);

   private:
    EventLog& log_;
    JsonWriter writer_;
  };

  EventLog() = default;
  // Movable so results that carry their log by value stay movable. Moving
  // is not thread-safe: don't move a log that other threads still emit to.
  EventLog(EventLog&& other) noexcept { *this = std::move(other); }
  // std::scoped_lock acquires both mutexes inside a system header, which the
  // thread-safety analysis cannot see — and moving is documented as not
  // thread-safe anyway, so the analysis is waived here.
  EventLog& operator=(EventLog&& other) noexcept
      FASTT_NO_THREAD_SAFETY_ANALYSIS {
    if (this != &other) {
      std::scoped_lock lock(mu_, other.mu_);
      lines_ = std::move(other.lines_);
      next_seq_.store(other.next_seq_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      other.lines_.clear();
      other.next_seq_.store(0, std::memory_order_relaxed);
    }
    return *this;
  }

  // Starts a new event of the given type.
  Builder Emit(const std::string& type) { return Builder(*this, type); }

  size_t size() const;
  // The i-th event as a JSON object string (no trailing newline). Returns
  // by value: the underlying vector may reallocate under a racing Emit.
  std::string line(size_t i) const;

  // All events, newline-separated (JSONL).
  std::string ToJsonl() const;
  // Writes ToJsonl() to `path`. Returns false on I/O failure.
  bool WriteJsonl(const std::string& path) const;

  void Clear();

 private:
  friend class Builder;
  void Append(std::string line);

  mutable Mutex mu_;
  std::atomic<int64_t> next_seq_{0};
  // The line store is charged to the obs tag (the strings themselves use
  // the default allocator; the vector's buffer dominates growth).
  TaggedVector<std::string> lines_ FASTT_GUARDED_BY(mu_)
      {TaggedAlloc<std::string>(MemTag::kObs)};
};

}  // namespace fastt
