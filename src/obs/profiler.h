// Sampling CPU profiler for the host-side strategy search.
//
// The tracer (obs/tracer.h) answers "where did the wall time go, among the
// spans we remembered to instrument"; this profiler answers the complement:
// "which functions actually burned the CPU", including everything outside
// hand-placed spans. It is a classic POSIX SIGPROF sampler: every registered
// thread owns a per-thread CPU-time timer (timer_create on the thread's CPU
// clock, SIGEV_THREAD_ID delivery) that fires at --hz and interrupts the
// thread wherever it happens to be; the signal handler captures the call
// stack and appends it to a lock-free single-writer ring buffer mirroring
// the tracer's design (release-store on the head publishes slots, overflow
// overwrites the oldest sample and is counted, never silent).
//
// Signal-safety rules the handler obeys (see DESIGN.md §16):
//   - no allocation, no locks, no stdio: it writes one preallocated ring
//     slot and touches only async-signal-safe calls (clock_gettime) plus a
//     frame-pointer walk over its own stack;
//   - errno is saved and restored;
//   - the stack walk prefers the frame-pointer chain (validated against the
//     registered thread's stack bounds, cached at registration time from
//     pthread_getattr_np) and falls back to backtrace(), which Start() has
//     already warmed up so its one-time dlopen/malloc happens outside any
//     handler;
//   - everything else — symbolization (dladdr + __cxa_demangle), folding,
//     aggregation — happens post-hoc in SymbolizeProfile(), in normal
//     context.
//
// Sample→span join: TraceScope maintains a per-thread stack of the names of
// currently-open tracer spans (ProfSpanPush/ProfSpanPop below — a fixed
// array plus an atomic depth, safe to read from a signal handler running on
// the same thread). Each sample records the innermost open span, so samples
// and spans tell one story: "62% of the cycles under dpos/run were in
// RankU" needs no guessing.
//
// Cost when disabled: zero. No signal handler is installed, no timers
// exist, ProfilingActive() is one relaxed load, and the TraceScope hook is
// two relaxed stores only when tracing itself is already on.
//
// This header is dependency-free (library fastt_tracer) so the thread pool
// in fastt_util can register its workers without a util <-> obs cycle; JSON
// / folded-stack export and diffing live in obs/prof_export.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace fastt {

// ---- Sample→span join (used by TraceScope; see tracer.h) -------------------

// Fixed-depth stack of open tracer-span names on this thread. Single
// writer (the thread itself, via TraceScope); single async reader (the
// SIGPROF handler interrupting that same thread), so plain stores ordered
// by the atomic depth are enough: push writes the name slot before
// publishing the new depth, pop retracts the depth before the name goes
// stale.
struct ProfSpanStack {
  static constexpr int kCap = 64;
  const char* names[kCap];
  std::atomic<int> depth{0};
};

extern thread_local ProfSpanStack t_prof_span_stack;

inline void ProfSpanPush(const char* name) {
  ProfSpanStack& s = t_prof_span_stack;
  int d = s.depth.load(std::memory_order_relaxed);
  if (d < ProfSpanStack::kCap) s.names[d] = name;
  s.depth.store(d + 1, std::memory_order_release);
}

inline void ProfSpanPop() {
  ProfSpanStack& s = t_prof_span_stack;
  int d = s.depth.load(std::memory_order_relaxed);
  if (d > 0) s.depth.store(d - 1, std::memory_order_release);
}

// The innermost open span on the calling thread (nullptr when none, or when
// nesting overflowed kCap — better unattributed than misattributed).
inline const char* ProfCurrentSpan() {
  ProfSpanStack& s = t_prof_span_stack;
  int d = s.depth.load(std::memory_order_acquire);
  if (d <= 0 || d > ProfSpanStack::kCap) return nullptr;
  return s.names[d - 1];
}

// ---- Raw samples -----------------------------------------------------------

inline constexpr int kProfMaxFrames = 48;

// One captured sample: program-counter chain (leaf first) plus the innermost
// open tracer span at interrupt time. POD on purpose — written from the
// signal handler into a preallocated ring slot.
struct ProfRawSample {
  double t_s = 0.0;           // seconds since the profile epoch
  int depth = 0;              // frames captured (0 = capture failed)
  const char* span = nullptr; // innermost open tracer span, if any
  void* frames[kProfMaxFrames];
};

struct ProfThreadDump {
  int tid = 0;  // registration order, stable across a profile
  std::string name;
  uint64_t dropped = 0;  // overwritten by ring wraparound
  std::vector<ProfRawSample> samples;
};

// Everything a drain recovered from the per-thread rings.
struct ProfileDump {
  int hz = 0;
  double duration_s = 0.0;
  uint64_t samples_total = 0;
  uint64_t samples_dropped = 0;
  std::vector<ProfThreadDump> threads;
};

// ---- The profiler ----------------------------------------------------------

struct CpuProfilerOptions {
  int hz = 997;                    // sampling rate (prime: avoids beating
                                   // with periodic work at round rates)
  size_t ring_capacity = 1 << 14;  // samples per thread ring
  int64_t epoch_ns = 0;            // steady-clock ns origin for sample
                                   // timestamps; 0 = "now" (pass the
                                   // tracer's epoch to merge timelines)
};

// Process-wide sampling profiler. A single instance: SIGPROF has one
// process-wide disposition, so unlike tracers there is nothing to scope.
// Threads opt in via RegisterProfiledThread (the pool does this for its
// workers); Start() arms one CPU-clock timer per registered thread and
// installs the handler, Stop() disarms and restores the previous
// disposition. Start/Stop/Drain require quiescence with each other (CLI
// and tests call them from one thread); registration is safe anytime.
class CpuProfiler {
 public:
  static CpuProfiler& Global();

  CpuProfiler();
  ~CpuProfiler();
  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

  // Installs the SIGPROF handler and arms a timer for every registered
  // thread (threads registering later are armed on registration). Resets
  // all rings. Returns false if timers could not be created.
  bool Start(const CpuProfilerOptions& opts);
  void Stop();
  bool active() const { return active_.load(std::memory_order_relaxed); }

  // Collects every ring's samples. Requires the profiler stopped (the CLI
  // drains after Stop; the crash black box is the one excused caller — it
  // reads whatever is published mid-flight, which single-writer rings make
  // safe). Samples from threads that have since exited are retained.
  ProfileDump Drain();

 private:
  std::atomic<bool> active_{false};
};

// Opts the calling thread into profiling: allocates its ring + stack-bounds
// slot and, if a profile is running, arms its timer. Idempotent per thread
// (re-registering renames). `name` labels the thread in the output.
void RegisterProfiledThread(const char* name);
// Disarms and detaches the calling thread's slot (samples already recorded
// survive until the next Drain). Called by exiting pool workers.
void UnregisterProfiledThread();

// True while a profile is running. One relaxed load.
bool ProfilingActive();

// ---- Post-hoc symbolization ------------------------------------------------

// One unique stack, root first, already stripped of profiler-internal
// frames and symbolized.
struct ProfStackRow {
  std::vector<std::string> frames;  // root ... leaf
  std::string span;                 // "" when unattributed
  uint64_t count = 0;
};

// Flat per-frame totals: `self` counts samples where the frame is the leaf,
// `total` counts samples where it appears anywhere (once per sample, so
// recursion does not double-count).
struct ProfFrameRow {
  std::string name;
  uint64_t self = 0;
  uint64_t total = 0;
};

struct SymbolizedProfile {
  int hz = 0;
  double duration_s = 0.0;
  uint64_t samples_total = 0;
  uint64_t samples_dropped = 0;
  uint64_t span_attributed = 0;            // samples with a non-null span
  std::vector<ProfStackRow> stacks;        // count-descending
  std::vector<ProfFrameRow> frames;        // self-descending
};

// Resolves every PC through dladdr + demangling, strips the handler's own
// frames, folds identical stacks, and aggregates per-frame self/total.
SymbolizedProfile SymbolizeProfile(const ProfileDump& dump);

// Resolves one PC to a display name ("fastt::OsDpos", or "module+0x1234"
// when no symbol covers it). Exposed for the Chrome-trace sample track.
std::string ProfSymbolizePc(void* pc);

// True when `symbol` names one of the profiler's own capture functions —
// export uses it to strip handler frames from symbolized stacks.
bool ProfIsInternalFrame(const std::string& symbol);

}  // namespace fastt
