#include "obs/trace_export.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "obs/json.h"
#include "obs/profiler.h"
#include "util/strings.h"
#include "util/table.h"

namespace fastt {
namespace {

int64_t Us(double seconds) { return static_cast<int64_t>(seconds * 1e6); }

// Sample tracks live on tids offset past the span tracks so Perfetto shows
// "cpu samples: <thread>" rows under the same pid-1 process group.
constexpr int kSampleTidOffset = 1000;

void WriteChromeEvents(JsonWriter& w, const TraceDump& dump) {
  for (const TraceThreadInfo& t : dump.threads) {
    w.BeginObject();
    w.Key("name").String("thread_name");
    w.Key("ph").String("M");
    w.Key("pid").Int(1);
    w.Key("tid").Int(t.tid);
    w.Key("args").BeginObject();
    w.Key("name").String(t.name.empty() ? StrFormat("thread %d", t.tid)
                                        : t.name);
    w.EndObject();
    w.EndObject();
  }
  for (const TraceSpan& s : dump.spans) {
    w.BeginObject();
    w.Key("name").String(s.name);
    w.Key("ph").String("X");
    w.Key("pid").Int(1);
    w.Key("tid").Int(s.tid);
    w.Key("ts").Int(Us(s.start_s));
    w.Key("dur").Int(std::max<int64_t>(Us(s.dur_s), 1));
    w.Key("cat").String("search");
    w.EndObject();
  }
  for (const TracePoint& p : dump.points) {
    w.BeginObject();
    w.Key("name").String(p.name);
    w.Key("ph").String(p.is_counter ? "C" : "i");
    w.Key("pid").Int(1);
    w.Key("tid").Int(p.tid);
    w.Key("ts").Int(Us(p.t_s));
    if (p.is_counter) {
      w.Key("args").BeginObject();
      w.Key("value").Number(p.value);
      w.EndObject();
    } else {
      w.Key("s").String("t");
      w.Key("args").BeginObject();
      w.Key("value").Number(p.value);
      w.EndObject();
    }
    w.EndObject();
  }
}

void WriteChromeSampleEvents(JsonWriter& w, const ProfileDump& prof) {
  std::unordered_map<void*, std::string> cache;
  auto leaf_symbol = [&cache](const ProfRawSample& s) -> const std::string* {
    for (int i = 0; i < s.depth; ++i) {
      auto it = cache.find(s.frames[i]);
      if (it == cache.end()) {
        it = cache.emplace(s.frames[i], ProfSymbolizePc(s.frames[i])).first;
      }
      if (!ProfIsInternalFrame(it->second)) return &it->second;
    }
    return nullptr;
  };
  for (const ProfThreadDump& td : prof.threads) {
    const int tid = kSampleTidOffset + td.tid;
    w.BeginObject();
    w.Key("name").String("thread_name");
    w.Key("ph").String("M");
    w.Key("pid").Int(1);
    w.Key("tid").Int(tid);
    w.Key("args").BeginObject();
    w.Key("name").String(StrFormat(
        "cpu samples: %s",
        td.name.empty() ? StrFormat("thread %d", td.tid).c_str()
                        : td.name.c_str()));
    w.EndObject();
    w.EndObject();
    for (const ProfRawSample& s : td.samples) {
      const std::string* leaf = leaf_symbol(s);
      w.BeginObject();
      w.Key("name").String(leaf != nullptr ? *leaf : "[unknown]");
      w.Key("ph").String("i");
      w.Key("s").String("t");
      w.Key("cat").String("cpu_sample");
      w.Key("pid").Int(1);
      w.Key("tid").Int(tid);
      w.Key("ts").Int(Us(s.t_s));
      if (s.span != nullptr) {
        w.Key("args").BeginObject();
        w.Key("span").String(s.span);
        w.EndObject();
      }
      w.EndObject();
    }
  }
}

}  // namespace

std::string TraceToChromeJson(const TraceDump& dump) {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  WriteChromeEvents(w, dump);
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.Key("metadata").BeginObject();
  w.Key("dropped_events").Int(static_cast<int64_t>(dump.dropped_events));
  w.Key("dropped_spans").Int(static_cast<int64_t>(dump.dropped_spans));
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string TraceToChromeJson(const TraceDump& dump, const ProfileDump& prof) {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  WriteChromeEvents(w, dump);
  // Both timelines share the epoch (the profiler is started with the
  // tracer's epoch_ns), so samples land on the span timeline directly.
  WriteChromeSampleEvents(w, prof);
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.Key("metadata").BeginObject();
  w.Key("dropped_events").Int(static_cast<int64_t>(dump.dropped_events));
  w.Key("dropped_spans").Int(static_cast<int64_t>(dump.dropped_spans));
  w.Key("samples").Int(static_cast<int64_t>(prof.samples_total));
  w.Key("samples_dropped").Int(static_cast<int64_t>(prof.samples_dropped));
  w.EndObject();
  w.EndObject();
  return w.str();
}

TraceSummary SummarizeTrace(const TraceDump& dump) {
  TraceSummary out;
  out.dropped_events = dump.dropped_events;
  out.dropped_spans = dump.dropped_spans;
  out.span_count = dump.spans.size();

  struct Agg {
    int64_t count = 0;
    double total_s = 0.0;
    double self_s = 0.0;
  };
  std::map<std::string, Agg> by_name;
  std::map<int, TraceThreadStats> by_tid;
  for (const TraceThreadInfo& t : dump.threads) {
    by_tid[t.tid] = {t.tid, t.name, 0.0};
  }

  // Spans arrive sorted by (tid, start asc, dur desc) — Drain guarantees
  // it — so a linear scan with an enclosing-span stack recovers nesting:
  // same-thread spans either nest or are disjoint.
  struct Open {
    double end_s;
    std::string name;
    double child_s = 0.0;  // time covered by direct children
  };
  std::vector<Open> stack;
  int cur_tid = -1;
  auto close_to = [&](double start_s) {
    while (!stack.empty() && stack.back().end_s <= start_s) {
      Agg& a = by_name[stack.back().name];
      a.self_s -= stack.back().child_s;
      stack.pop_back();
    }
  };
  for (const TraceSpan& s : dump.spans) {
    if (s.tid != cur_tid) {
      close_to(1e300);
      cur_tid = s.tid;
    }
    close_to(s.start_s);
    Agg& a = by_name[s.name];
    ++a.count;
    a.total_s += s.dur_s;
    a.self_s += s.dur_s;
    if (!stack.empty()) {
      stack.back().child_s += s.dur_s;
    } else {
      // Top-level span: counts toward thread busy time and root coverage.
      by_tid[s.tid].busy_s += s.dur_s;
      out.root_span_s += s.dur_s;
    }
    out.wall_s = std::max(out.wall_s, s.end_s());
    stack.push_back({s.end_s(), s.name, 0.0});
  }
  close_to(1e300);

  for (auto& [name, a] : by_name) {
    out.phases.push_back({name, a.count, a.total_s, std::max(0.0, a.self_s)});
  }
  std::sort(out.phases.begin(), out.phases.end(),
            [](const TracePhase& x, const TracePhase& y) {
              if (x.total_s != y.total_s) return x.total_s > y.total_s;
              return x.name < y.name;
            });
  for (auto& [tid, stats] : by_tid) out.threads.push_back(stats);
  return out;
}

std::string RenderTraceSummary(const TraceSummary& summary) {
  std::string out;
  TablePrinter phases({"phase", "count", "total s", "self s", "self %"});
  const double denom = summary.wall_s > 0 ? summary.wall_s : 1.0;
  for (const TracePhase& p : summary.phases) {
    phases.AddRow({p.name, StrFormat("%lld", static_cast<long long>(p.count)),
                   StrFormat("%.4f", p.total_s), StrFormat("%.4f", p.self_s),
                   StrFormat("%.1f", 100.0 * p.self_s / denom)});
  }
  out += phases.Render();
  out += "\n";
  TablePrinter threads({"thread", "busy s", "busy %"});
  for (const TraceThreadStats& t : summary.threads) {
    threads.AddRow(
        {t.name.empty() ? StrFormat("thread %d", t.tid) : t.name,
         StrFormat("%.4f", t.busy_s),
         StrFormat("%.1f", 100.0 * t.busy_s / denom)});
  }
  out += threads.Render();
  out += StrFormat(
      "\nwall %.4f s  ·  %llu spans  ·  dropped %llu events, %llu spans\n",
      summary.wall_s, static_cast<unsigned long long>(summary.span_count),
      static_cast<unsigned long long>(summary.dropped_events),
      static_cast<unsigned long long>(summary.dropped_spans));
  return out;
}

}  // namespace fastt
