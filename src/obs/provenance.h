// Placement decision provenance — why an op landed on its device.
//
// DPOS makes tens of thousands of placement decisions per search, each one a
// reduction over per-device scores that is normally discarded the moment the
// winner is committed. When recording is on (DposOptions::record_provenance),
// every decision keeps its full candidate table — per device: the earliest
// data-ready time (EST), the insertion-based earliest finish time (EFT), the
// score DPOS actually minimized (EFT + communication affinity) and whether
// the device was memory-rejected — plus a reason code naming which policy
// picked the winner. OS-DPOS likewise records every split trial it probed
// (dimension, split count, viability, predicted makespan, whether it won).
//
// Capture is gated like the tracer: disabled cost is a single branch per
// placement decision, so the hooks stay in the production search paths
// unconditionally. The records are plain data (op names as strings, device
// ids as int32), so this header stays free of graph/scheduler dependencies
// and serializes through the existing JSON layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fastt {

// Which DPOS policy chose the device.
enum class PlacementReason : uint8_t {
  kBestEft,             // min-(EFT + comm affinity) over feasible devices
  kCriticalPathDevice,  // phase-1 critical-path device reservation
  kColocated,           // pinned to an already-placed op's device
  kMemoryOverflow,      // nothing fit; overflowed to the max-headroom device
};
const char* PlacementReasonName(PlacementReason reason);

// One scored candidate device of one placement decision.
struct CandidateScore {
  int32_t device = -1;
  double est_s = 0.0;    // earliest data-ready time on this device
  double eft_s = 0.0;    // insertion-based earliest finish time
  double score_s = 0.0;  // EFT + comm-affinity term (what DPOS minimizes);
                         // +inf (serialized as null) when memory-rejected
  bool memory_rejected = false;
};

// Everything DPOS knew when it placed one op.
struct PlacementDecision {
  int32_t op = -1;  // slot id in the scheduled graph
  std::string op_name;
  int32_t chosen = -1;
  PlacementReason reason = PlacementReason::kBestEft;
  double chosen_eft_s = 0.0;
  // Every device, ascending id, including the chosen one.
  std::vector<CandidateScore> candidates;
};

// One OS-DPOS split trial: a candidate rewrite of a critical-path op that
// was rescheduled with DPOS and compared against the incumbent makespan.
struct SplitTrialRecord {
  std::string op_name;  // the probed critical-path op
  std::string dim;      // "batch" / "channel"
  int num_splits = 0;
  bool viable = false;       // schedulable within device memory
  double predicted_s = 0.0;  // FT(o_exit) of the trial schedule (0 if not)
  double baseline_s = 0.0;   // incumbent FT(o_exit) the trial competed with
  bool committed = false;    // won its probe round and was committed
};

// Human-readable trace of one decision. `predicted_s`/`realized_s` are the
// op's scheduler-predicted and simulator-realized durations (< 0 = unknown);
// non-chosen candidates print their EFT delta vs. the chosen device.
std::string RenderPlacementDecision(const PlacementDecision& decision,
                                    double predicted_s, double realized_s);

// One line per split trial of `op_name` (all trials when empty).
std::string RenderSplitTrials(const std::vector<SplitTrialRecord>& trials,
                              const std::string& op_name);

// JSON document: {"decisions": [...], "split_trials": [...]}.
std::string ProvenanceToJson(const std::vector<PlacementDecision>& decisions,
                             const std::vector<SplitTrialRecord>& trials);

}  // namespace fastt
