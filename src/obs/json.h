// Minimal JSON support for the observability layer: a streaming writer used
// by every exporter (metrics, event log, schedule analysis, bench reports)
// and a validating parser used by tests and tools to assert that what we
// emit actually is JSON. Dependency-light by design — no third-party JSON
// library is available in the build image, and the subsystem only needs
// write + validate, never a DOM.
#pragma once

#include <cstdint>
#include <string>

namespace fastt {

// Escapes `s` for inclusion in a JSON string and wraps it in quotes.
std::string JsonQuote(const std::string& s);

// Formats a double as a JSON number (finite values only; non-finite values
// render as 0 with no trailing garbage, since JSON has no Inf/NaN).
std::string JsonNumber(double v);

// Streaming writer for nested objects/arrays. Keeps a small state stack so
// commas and closings are emitted correctly:
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("makespan").Number(0.012);
//   w.Key("devices").BeginArray();
//   w.BeginObject(); w.Key("id").Int(0); w.EndObject();
//   w.EndArray();
//   w.EndObject();
//   std::string json = w.str();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Bool(bool value);
  // Splices a pre-serialized JSON value in verbatim (caller guarantees
  // well-formedness) — used to embed one exporter's output in another's.
  JsonWriter& Raw(const std::string& json);

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();
  std::string out_;
  // 'O' = in object expecting key, 'V' = in object expecting value,
  // 'A' = in array.
  std::string stack_;
  bool needs_comma_ = false;
};

// Validates that `text` is a single well-formed JSON value. On failure
// returns false and, if `error` is non-null, a human-readable reason with an
// offset. Accepts exactly the JSON grammar (RFC 8259) minus no extensions.
bool JsonValidate(const std::string& text, std::string* error = nullptr);

// Validates a JSONL document: every non-empty line must be well-formed JSON.
bool JsonlValidate(const std::string& text, std::string* error = nullptr);

}  // namespace fastt
