// Minimal JSON support for the observability layer: a streaming writer used
// by every exporter (metrics, event log, schedule analysis, bench reports),
// a validating parser used by tests and tools to assert that what we emit
// actually is JSON, and a small DOM (JsonValue/JsonParse) for the consumers
// that must read reports back (bench-diff). Dependency-light by design — no
// third-party JSON library is available in the build image.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fastt {

// Escapes `s` for inclusion in a JSON string and wraps it in quotes.
std::string JsonQuote(const std::string& s);

// Formats a double as a JSON number. JSON has no Inf/NaN, so non-finite
// values render as `null` (an empty timer's mean, a 0/0 ratio) rather than
// corrupting the document.
std::string JsonNumber(double v);

// Streaming writer for nested objects/arrays. Keeps a small state stack so
// commas and closings are emitted correctly:
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("makespan").Number(0.012);
//   w.Key("devices").BeginArray();
//   w.BeginObject(); w.Key("id").Int(0); w.EndObject();
//   w.EndArray();
//   w.EndObject();
//   std::string json = w.str();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Bool(bool value);
  // Splices a pre-serialized JSON value in verbatim (caller guarantees
  // well-formedness) — used to embed one exporter's output in another's.
  JsonWriter& Raw(const std::string& json);

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();
  std::string out_;
  // 'O' = in object expecting key, 'V' = in object expecting value,
  // 'A' = in array.
  std::string stack_;
  bool needs_comma_ = false;
};

// Validates that `text` is a single well-formed JSON value. On failure
// returns false and, if `error` is non-null, a human-readable reason with an
// offset. Accepts exactly the JSON grammar (RFC 8259) minus no extensions.
bool JsonValidate(const std::string& text, std::string* error = nullptr);

// Validates a JSONL document: every non-empty line must be well-formed JSON.
bool JsonlValidate(const std::string& text, std::string* error = nullptr);

// Parsed JSON value. Numbers are held as double; integer tokens that fit
// int64 additionally keep their exact value (is_int/int_v), because a double
// only covers integers up to 2^53 and JsonWriter::Int emits full int64 — a
// byte counter above 9 PB would otherwise come back changed. `null` is a
// distinct kind so readers can tell "absent/non-finite" from 0.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_v = false;
  double num_v = 0.0;
  // Exact integer payload when the source token was integral (no fraction or
  // exponent) and within int64 range.
  bool is_int = false;
  int64_t int_v = 0;
  std::string str_v;
  std::vector<JsonValue> items;                 // kArray
  std::map<std::string, JsonValue> fields;      // kObject (key-sorted)

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Object lookup; returns nullptr when this is not an object or the key is
  // absent, so chained probes read naturally.
  const JsonValue* Find(const std::string& key) const;
  // Typed accessors with fallbacks for optional fields.
  double NumberOr(double fallback) const;
  // Exact for integer tokens; otherwise truncates the double (fallback when
  // not a number at all).
  int64_t IntOr(int64_t fallback) const;
  std::string StringOr(const std::string& fallback) const;
};

// Parses `text` into a DOM. Returns false (with a reason in `error`) on any
// document JsonValidate would reject.
bool JsonParse(const std::string& text, JsonValue* out,
               std::string* error = nullptr);

}  // namespace fastt
