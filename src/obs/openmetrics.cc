#include "obs/openmetrics.h"

#include <cmath>
#include <fstream>

#include "obs/metrics.h"
#include "util/strings.h"

namespace fastt {
namespace {

// Sample values in the exposition: integers print exactly, doubles with
// enough digits to round-trip. Non-finite sums can't occur (histogram sums
// of finite samples), but guard anyway.
std::string Sample(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 9.0e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.17g", v);
}

}  // namespace

std::string OpenMetricsName(const std::string& name) {
  std::string out = "fastt_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string OpenMetricsText(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " counter\n";
    out += om + "_total " + StrFormat("%lld", static_cast<long long>(value)) +
           "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " gauge\n";
    out += om + " " + Sample(value) + "\n";
  }
  for (const auto& [name, t] : snap.timers) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " summary\n";
    out += om + "_count " + StrFormat("%lld", static_cast<long long>(t.count)) +
           "\n";
    out += om + "_sum " + Sample(t.total_s) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " histogram\n";
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      const double upper = HistogramBucketUpper(i);
      // The overflow bucket folds into the mandatory +Inf line below.
      if (std::isinf(upper)) continue;
      cumulative += h.buckets[i];
      out += om + "_bucket{le=\"" + Sample(upper) + "\"} " +
             StrFormat("%lld", static_cast<long long>(cumulative)) + "\n";
    }
    // The +Inf bucket is mandatory and must equal _count.
    out += om + "_bucket{le=\"+Inf\"} " +
           StrFormat("%lld", static_cast<long long>(h.count)) + "\n";
    out += om + "_sum " + Sample(h.sum) + "\n";
    out += om + "_count " +
           StrFormat("%lld", static_cast<long long>(h.count)) + "\n";
  }
  out += "# EOF\n";
  return out;
}

bool WriteOpenMetrics(const std::string& path,
                      const MetricsRegistry& registry) {
  std::ofstream file(path);
  if (!file) return false;
  file << OpenMetricsText(registry);
  return static_cast<bool>(file);
}

}  // namespace fastt
