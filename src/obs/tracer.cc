#include "obs/tracer.h"

#include <algorithm>
#include <chrono>

namespace fastt {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Process-wide count of enabled Tracer instances; see TracingActive().
std::atomic<int64_t> g_enabled_tracers{0};

// Monotonic instance-id source. Ids are never reused, so the per-thread
// buffer cache can key on them safely across tracer destruction.
std::atomic<uint64_t> g_next_tracer_id{1};

}  // namespace

bool TracingActive() {
  return g_enabled_tracers.load(std::memory_order_relaxed) > 0;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives thread-locals
  return *tracer;
}

Tracer::Tracer()
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() {
  if (enabled_.load(std::memory_order_relaxed)) {
    g_enabled_tracers.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Tracer::Enable() {
  MutexLock lock(mu_);
  epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  for (auto& buf : buffers_) buf->head.store(0, std::memory_order_relaxed);
  if (!enabled_.exchange(true, std::memory_order_release)) {
    g_enabled_tracers.fetch_add(1, std::memory_order_relaxed);
  }
}

void Tracer::Disable() {
  if (enabled_.exchange(false, std::memory_order_release)) {
    g_enabled_tracers.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Tracer::SetRingCapacity(size_t events) {
  MutexLock lock(mu_);
  capacity_ = std::max<size_t>(events, 8);
  for (auto& buf : buffers_) {
    buf->ring.assign(capacity_, Event{});
    buf->head.store(0, std::memory_order_relaxed);
  }
}

Tracer::ThreadBuffer* Tracer::CurrentBuffer() {
  // One slot per (tracer, thread), cached thread-locally and keyed by the
  // tracer's never-reused id so an entry for a destroyed context tracer is
  // simply dead weight, never a dangling hit. The linear scan is over the
  // handful of tracers this thread has written to; the common case (one or
  // two live tracers) hits in the first slot. Buffer pointers stay valid
  // for the tracer's lifetime because buffers_ holds unique_ptrs and is
  // never shrunk.
  struct CacheEntry {
    uint64_t tracer_id = 0;
    ThreadBuffer* buf = nullptr;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& entry : cache) {
    if (entry.tracer_id == id_) return entry.buf;
  }
  MutexLock lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>(capacity_));
  buffers_.back()->tid = static_cast<int>(buffers_.size());
  ThreadBuffer* buf = buffers_.back().get();
  // Bound the cache for long-lived worker threads that serve many
  // short-lived context tracers: evict the oldest entry. If that tracer is
  // still live and re-entered later, the thread just registers a fresh
  // buffer with it — a correctness-neutral duplicate.
  constexpr size_t kMaxCachedTracers = 64;
  if (cache.size() >= kMaxCachedTracers) cache.erase(cache.begin());
  cache.push_back({id_, buf});
  return buf;
}

double Tracer::NowSinceEpoch() const {
  return static_cast<double>(SteadyNowNs() -
                             epoch_ns_.load(std::memory_order_relaxed)) *
         1e-9;
}

void Tracer::Emit(Kind kind, const char* name, double value) {
  if (!enabled()) return;
  ThreadBuffer* buf = CurrentBuffer();
  const uint64_t head = buf->head.load(std::memory_order_relaxed);
  Event& slot = buf->ring[head % buf->ring.size()];
  slot.name = name;
  slot.t_s = NowSinceEpoch();
  slot.value = value;
  slot.kind = kind;
  buf->head.store(head + 1, std::memory_order_release);
}

void Tracer::SetCurrentThreadName(const std::string& name) {
  ThreadBuffer* buf = CurrentBuffer();
  MutexLock lock(mu_);
  buf->name = name;
}

TraceDump Tracer::Drain() {
  MutexLock lock(mu_);
  TraceDump dump;
  dump.drained_at_s = NowSinceEpoch();
  for (auto& buf : buffers_) {
    const uint64_t head = buf->head.load(std::memory_order_acquire);
    const size_t cap = buf->ring.size();
    const uint64_t count = std::min<uint64_t>(head, cap);
    if (head > cap) dump.dropped_events += head - cap;
    if (head > 0 || !buf->name.empty()) {
      dump.threads.push_back({buf->tid, buf->name});
    }

    // Oldest surviving event first.
    const uint64_t first = head - count;
    // Pair begins/ends with a LIFO stack; spans on one thread nest
    // properly, so a matching end always closes the innermost open begin.
    std::vector<std::pair<const char*, double>> open;  // (name, start)
    for (uint64_t i = first; i < head; ++i) {
      const Event& ev = buf->ring[i % cap];
      switch (ev.kind) {
        case kBegin:
          open.emplace_back(ev.name, ev.t_s);
          break;
        case kEnd:
          if (!open.empty() && open.back().first == ev.name) {
            dump.spans.push_back(
                {ev.name, buf->tid, open.back().second,
                 std::max(0.0, ev.t_s - open.back().second)});
            open.pop_back();
          } else {
            // Begin was overwritten by wraparound (or Enable() landed
            // mid-span): no start time, drop the end.
            ++dump.dropped_spans;
          }
          break;
        case kInstant:
          dump.points.push_back({ev.name, buf->tid, ev.t_s, ev.value, false});
          break;
        case kCounter:
          dump.points.push_back({ev.name, buf->tid, ev.t_s, ev.value, true});
          break;
      }
    }
    dump.dropped_spans += open.size();  // begins never closed
    buf->head.store(0, std::memory_order_relaxed);
  }
  std::sort(dump.spans.begin(), dump.spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_s != b.start_s) return a.start_s < b.start_s;
              return a.dur_s > b.dur_s;  // parent before child at same start
            });
  std::sort(dump.points.begin(), dump.points.end(),
            [](const TracePoint& a, const TracePoint& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.t_s < b.t_s;
            });
  return dump;
}

}  // namespace fastt
