#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/check.h"
#include "util/strings.h"

namespace fastt {

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  // %.9g round-trips the magnitudes we deal in (seconds, bytes, counts)
  // without printing 17-digit noise for every value.
  std::string s = StrFormat("%.9g", v);
  return s;
}

void JsonWriter::BeforeValue() {
  if (!stack_.empty() && stack_.back() == 'V') {
    stack_.back() = 'O';  // value for the pending key
    return;
  }
  if (needs_comma_) out_ += ',';
  needs_comma_ = false;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_ += 'O';
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  FASTT_CHECK(!stack_.empty() && stack_.back() == 'O');
  stack_.pop_back();
  out_ += '}';
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_ += 'A';
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  FASTT_CHECK(!stack_.empty() && stack_.back() == 'A');
  stack_.pop_back();
  out_ += ']';
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  FASTT_CHECK(!stack_.empty() && stack_.back() == 'O');
  if (needs_comma_) out_ += ',';
  needs_comma_ = false;
  out_ += JsonQuote(name);
  out_ += ':';
  stack_.back() = 'V';
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += JsonQuote(value);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  out_ += JsonNumber(value);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  BeforeValue();
  out_ += json;
  needs_comma_ = true;
  return *this;
}

namespace {

// Recursive-descent parser. Validates always; additionally builds a
// JsonValue DOM when the caller passes a sink (Parse). Tracks position for
// error messages.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Validate(std::string* error) { return Run(nullptr, error); }

  bool Parse(JsonValue* out, std::string* error) { return Run(out, error); }

 private:
  bool Run(JsonValue* out, std::string* error) {
    SkipWs();
    if (!Value(out)) {
      if (error) *error = StrFormat("%s at offset %zu", error_.c_str(), pos_);
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      if (error) *error = StrFormat("trailing garbage at offset %zu", pos_);
      return false;
    }
    return true;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }
  bool Fail(const char* what) {
    error_ = what;
    return false;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return Fail("bad literal");
    pos_ += n;
    return true;
  }

  // Every production takes an optional sink; nullptr means validate-only.
  bool Value(JsonValue* out) {
    if (depth_ > 256) return Fail("nesting too deep");
    switch (Peek()) {
      case '{':
        if (out) out->kind = JsonValue::Kind::kObject;
        return Object(out);
      case '[':
        if (out) out->kind = JsonValue::Kind::kArray;
        return Array(out);
      case '"': {
        std::string s;
        if (!ParseString(out ? &s : nullptr)) return false;
        if (out) {
          out->kind = JsonValue::Kind::kString;
          out->str_v = std::move(s);
        }
        return true;
      }
      case 't':
        if (!Literal("true")) return false;
        if (out) { out->kind = JsonValue::Kind::kBool; out->bool_v = true; }
        return true;
      case 'f':
        if (!Literal("false")) return false;
        if (out) { out->kind = JsonValue::Kind::kBool; out->bool_v = false; }
        return true;
      case 'n':
        if (!Literal("null")) return false;
        if (out) out->kind = JsonValue::Kind::kNull;
        return true;
      default: return ParseNumber(out);
    }
  }

  bool Object(JsonValue* out) {
    ++pos_;  // '{'
    ++depth_;
    SkipWs();
    if (Peek() == '}') { ++pos_; --depth_; return true; }
    while (true) {
      SkipWs();
      if (Peek() != '"') return Fail("expected object key");
      std::string key;
      if (!ParseString(out ? &key : nullptr)) return false;
      SkipWs();
      if (Peek() != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      JsonValue* slot = out ? &out->fields[key] : nullptr;
      if (!Value(slot)) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; --depth_; return true; }
      return Fail("expected ',' or '}'");
    }
  }

  bool Array(JsonValue* out) {
    ++pos_;  // '['
    ++depth_;
    SkipWs();
    if (Peek() == ']') { ++pos_; --depth_; return true; }
    while (true) {
      SkipWs();
      JsonValue* slot = nullptr;
      if (out) {
        out->items.emplace_back();
        slot = &out->items.back();
      }
      if (!Value(slot)) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; --depth_; return true; }
      return Fail("expected ',' or ']'");
    }
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20)
        return Fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        const char e = Peek();
        if (e == 'u') {
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            const char h = Peek();
            if (!std::isxdigit(static_cast<unsigned char>(h)))
              return Fail("bad \\u escape");
            cp = cp * 16 + (std::isdigit(static_cast<unsigned char>(h))
                                ? h - '0'
                                : (std::tolower(h) - 'a') + 10);
          }
          // Surrogate pairs are passed through as-is (replacement char for
          // an unpaired half); the exporters never emit them.
          if (out) AppendUtf8(cp >= 0xD800 && cp < 0xE000 ? 0xFFFD : cp, out);
        } else if (e == '"' || e == '\\' || e == '/') {
          if (out) *out += e;
        } else if (e == 'b') { if (out) *out += '\b';
        } else if (e == 'f') { if (out) *out += '\f';
        } else if (e == 'n') { if (out) *out += '\n';
        } else if (e == 'r') { if (out) *out += '\r';
        } else if (e == 't') { if (out) *out += '\t';
        } else {
          return Fail("bad escape");
        }
      } else if (out) {
        *out += c;
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek())))
      return Fail("expected value");
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    bool integral = true;
    if (Peek() == '.') {
      integral = false;
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek())))
        return Fail("bad fraction");
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      integral = false;
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek())))
        return Fail("bad exponent");
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (out) {
      const std::string token = text_.substr(start, pos_ - start);
      out->kind = JsonValue::Kind::kNumber;
      out->num_v = std::strtod(token.c_str(), nullptr);
      if (integral) {
        // Keep the exact int64 alongside the double: strtod alone silently
        // rounds integers beyond 2^53, breaking write/parse round-trips of
        // JsonWriter::Int. Out-of-range integers stay double-only.
        errno = 0;
        char* end = nullptr;
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno != ERANGE && end != nullptr && *end == '\0') {
          out->is_int = true;
          out->int_v = static_cast<int64_t>(v);
        }
      }
    }
    return pos_ > start;
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = fields.find(key);
  return it == fields.end() ? nullptr : &it->second;
}

double JsonValue::NumberOr(double fallback) const {
  return kind == Kind::kNumber ? num_v : fallback;
}

int64_t JsonValue::IntOr(int64_t fallback) const {
  if (kind != Kind::kNumber) return fallback;
  return is_int ? int_v : static_cast<int64_t>(num_v);
}

std::string JsonValue::StringOr(const std::string& fallback) const {
  return kind == Kind::kString ? str_v : fallback;
}

bool JsonValidate(const std::string& text, std::string* error) {
  return Parser(text).Validate(error);
}

bool JsonParse(const std::string& text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  return Parser(text).Parse(out, error);
}

bool JsonlValidate(const std::string& text, std::string* error) {
  size_t start = 0;
  int lineno = 1;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    if (!line.empty() && line.find_first_not_of(" \t\r") != std::string::npos) {
      std::string inner;
      if (!JsonValidate(line, &inner)) {
        if (error) *error = StrFormat("line %d: %s", lineno, inner.c_str());
        return false;
      }
    }
    if (end == text.size()) break;
    start = end + 1;
    ++lineno;
  }
  return true;
}

}  // namespace fastt
