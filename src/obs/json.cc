#include "obs/json.h"

#include <cctype>
#include <cmath>

#include "util/check.h"
#include "util/strings.h"

namespace fastt {

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  // %.9g round-trips the magnitudes we deal in (seconds, bytes, counts)
  // without printing 17-digit noise for every value.
  std::string s = StrFormat("%.9g", v);
  return s;
}

void JsonWriter::BeforeValue() {
  if (!stack_.empty() && stack_.back() == 'V') {
    stack_.back() = 'O';  // value for the pending key
    return;
  }
  if (needs_comma_) out_ += ',';
  needs_comma_ = false;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_ += 'O';
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  FASTT_CHECK(!stack_.empty() && stack_.back() == 'O');
  stack_.pop_back();
  out_ += '}';
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_ += 'A';
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  FASTT_CHECK(!stack_.empty() && stack_.back() == 'A');
  stack_.pop_back();
  out_ += ']';
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  FASTT_CHECK(!stack_.empty() && stack_.back() == 'O');
  if (needs_comma_) out_ += ',';
  needs_comma_ = false;
  out_ += JsonQuote(name);
  out_ += ':';
  stack_.back() = 'V';
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += JsonQuote(value);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  out_ += JsonNumber(value);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  BeforeValue();
  out_ += json;
  needs_comma_ = true;
  return *this;
}

namespace {

// Recursive-descent validator. Tracks position for error messages.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Validate(std::string* error) {
    SkipWs();
    if (!Value()) {
      if (error) *error = StrFormat("%s at offset %zu", error_.c_str(), pos_);
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      if (error) *error = StrFormat("trailing garbage at offset %zu", pos_);
      return false;
    }
    return true;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }
  bool Fail(const char* what) {
    error_ = what;
    return false;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return Fail("bad literal");
    pos_ += n;
    return true;
  }

  bool Value() {
    if (depth_ > 256) return Fail("nesting too deep");
    switch (Peek()) {
      case '{': return Object();
      case '[': return Array();
      case '"': return ParseString();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return ParseNumber();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    ++depth_;
    SkipWs();
    if (Peek() == '}') { ++pos_; --depth_; return true; }
    while (true) {
      SkipWs();
      if (Peek() != '"') return Fail("expected object key");
      if (!ParseString()) return false;
      SkipWs();
      if (Peek() != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; --depth_; return true; }
      return Fail("expected ',' or '}'");
    }
  }

  bool Array() {
    ++pos_;  // '['
    ++depth_;
    SkipWs();
    if (Peek() == ']') { ++pos_; --depth_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; --depth_; return true; }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString() {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20)
        return Fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        const char e = Peek();
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (!std::isxdigit(static_cast<unsigned char>(Peek())))
              return Fail("bad \\u escape");
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return Fail("bad escape");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek())))
      return Fail("expected value");
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek())))
        return Fail("bad fraction");
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek())))
        return Fail("bad exponent");
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

bool JsonValidate(const std::string& text, std::string* error) {
  return Parser(text).Validate(error);
}

bool JsonlValidate(const std::string& text, std::string* error) {
  size_t start = 0;
  int lineno = 1;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    if (!line.empty() && line.find_first_not_of(" \t\r") != std::string::npos) {
      std::string inner;
      if (!JsonValidate(line, &inner)) {
        if (error) *error = StrFormat("line %d: %s", lineno, inner.c_str());
        return false;
      }
    }
    if (end == text.size()) break;
    start = end + 1;
    ++lineno;
  }
  return true;
}

}  // namespace fastt
