// See profiler.h for the design and the signal-safety rules; the short
// version: the handler below may only write one preallocated ring slot,
// walk its own stack, and read the clock. Everything that allocates,
// locks, or demangles runs post-hoc in SymbolizeProfile().
#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // dladdr, SIGEV_THREAD_ID, pthread_getattr_np
#endif

#include "obs/profiler.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <unordered_map>

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include "util/sync.h"

// Older glibc spells the SIGEV_THREAD_ID target field only through the
// union; the macro is the documented name in newer headers.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace fastt {

thread_local ProfSpanStack t_prof_span_stack;

namespace {

// Single-writer sample ring, one per registered thread. The owning thread's
// signal handler writes ring[head % size] then release-stores head+1; the
// drainer acquire-loads head and reads only published slots — the same
// publication protocol as the tracer's ThreadBuffer.
struct ThreadSlot {
  pid_t kernel_tid = 0;
  pthread_t pthread{};
  int display_tid = 0;
  std::string name;
  timer_t timer{};
  bool timer_armed = false;
  bool exited = false;
  // Stack bounds cached at registration (pthread_getattr_np is not
  // async-signal-safe, so the handler can't ask). hi is exclusive.
  uintptr_t stack_hi = 0;
  std::vector<ProfRawSample> ring;
  std::atomic<uint64_t> head{0};
};

Mutex g_mu;
std::vector<std::unique_ptr<ThreadSlot>>& Slots() FASTT_REQUIRES(g_mu) {
  static auto* slots = new std::vector<std::unique_ptr<ThreadSlot>>();
  return *slots;
}
int g_next_display_tid FASTT_GUARDED_BY(g_mu) = 0;
size_t g_ring_capacity FASTT_GUARDED_BY(g_mu) = 1 << 14;

std::atomic<bool> g_active{false};
std::atomic<int64_t> g_epoch_ns{0};
// The signal handler's return address — i.e. the kernel's sa_restorer
// trampoline (__restore_rt). Recorded by the handler itself so the capture
// below can strip the signal machinery by address: the trampoline is a
// private libc symbol dladdr can't name, so name-based stripping misses it.
std::atomic<void*> g_trampoline{nullptr};
int g_hz = 0;                      // written under g_mu in Start, read after
double g_duration_s = 0.0;         // wall duration of the last profile
struct sigaction g_prev_action {}; // disposition to restore at Stop
bool g_handler_installed = false;

thread_local ThreadSlot* t_slot = nullptr;

int64_t MonotonicNowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 +
         static_cast<int64_t>(ts.tv_nsec);
}

void* PcFromUcontext(void* uctx) {
  if (uctx == nullptr) return nullptr;
#if defined(__x86_64__)
  auto* uc = static_cast<ucontext_t*>(uctx);
  return reinterpret_cast<void*>(uc->uc_mcontext.gregs[REG_RIP]);
#elif defined(__aarch64__)
  auto* uc = static_cast<ucontext_t*>(uctx);
  return reinterpret_cast<void*>(uc->uc_mcontext.pc);
#else
  (void)uctx;
  return nullptr;
#endif
}

}  // namespace

// The two capture functions below are deliberately non-static and
// non-inlined: they land in the dynamic symbol table (CMAKE_ENABLE_EXPORTS),
// so SymbolizeProfile can recognize and strip their frames by name.

// Frame-pointer walk, used when the build keeps frame pointers (sanitizer
// builds do). Bounds: frames must lie between the walker's own frame and
// the registered stack top, be pointer-aligned, and strictly grow — the
// interrupted code may be mid-prologue with a garbage chain, and the walk
// must fail closed rather than fault.
__attribute__((noinline)) int ProfWalkFramePointers(void** out, int max,
                                                    uintptr_t stack_hi) {
  void** fp = static_cast<void**>(__builtin_frame_address(0));
  uintptr_t lo = reinterpret_cast<uintptr_t>(&fp);
  int n = 0;
  while (n < max) {
    uintptr_t f = reinterpret_cast<uintptr_t>(fp);
    if (f <= lo || f + 2 * sizeof(void*) > stack_hi ||
        (f & (sizeof(void*) - 1)) != 0) {
      break;
    }
    void* ret = fp[1];
    if (ret == nullptr) break;
    out[n++] = ret;
    void** next = static_cast<void**>(fp[0]);
    if (next <= fp) break;
    fp = next;
  }
  return n;
}

__attribute__((noinline)) int ProfCaptureStack(void** out, int max, void* uctx,
                                               uintptr_t stack_hi) {
  int n = 0;
  void* pc = PcFromUcontext(uctx);
  if (pc != nullptr && n < max) out[n++] = pc;  // the interrupted leaf
  if (stack_hi != 0) n += ProfWalkFramePointers(out + n, max - n, stack_hi);
  if (n < 4) {
    // Frame pointers omitted (release builds): unwind via .eh_frame.
    // backtrace() crosses the signal frame and includes the leaf itself,
    // so the ucontext PC is not re-prepended. Start() warmed this up, so
    // no lazy dlopen/malloc happens here.
    n = backtrace(out, max);
    if (n < 0) n = 0;
    // The walk starts above the interrupted code: [ProfCaptureStack,
    // handler, trampoline, leaf, ...]. Everything through the trampoline
    // is profiler machinery — drop it here so even unsymbolizable
    // trampoline addresses never reach the output.
    void* tramp = g_trampoline.load(std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      if (out[i] != tramp) continue;
      const int skip = i + 1;
      for (int j = skip; j < n; ++j) out[j - skip] = out[j];
      n -= skip;
      break;
    }
  }
  return n;
}

extern "C" void FasttProfSignalHandler(int /*signo*/, siginfo_t* /*info*/,
                                       void* uctx) {
  ThreadSlot* slot = t_slot;
  if (slot == nullptr || !g_active.load(std::memory_order_relaxed)) return;
  const int saved_errno = errno;
  g_trampoline.store(__builtin_extract_return_addr(__builtin_return_address(0)),
                     std::memory_order_relaxed);
  const uint64_t head = slot->head.load(std::memory_order_relaxed);
  ProfRawSample& s = slot->ring[head % slot->ring.size()];
  s.t_s = static_cast<double>(MonotonicNowNs() -
                              g_epoch_ns.load(std::memory_order_relaxed)) *
          1e-9;
  s.span = ProfCurrentSpan();
  s.depth = ProfCaptureStack(s.frames, kProfMaxFrames, uctx, slot->stack_hi);
  slot->head.store(head + 1, std::memory_order_release);
  errno = saved_errno;
}

namespace {

// Arms `slot`'s per-thread CPU-clock timer at g_hz. Caller holds g_mu.
bool ArmSlot(ThreadSlot* slot) FASTT_REQUIRES(g_mu) {
  if (slot->timer_armed || slot->exited) return slot->timer_armed;
  clockid_t clock;
  if (pthread_getcpuclockid(slot->pthread, &clock) != 0) return false;
  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = slot->kernel_tid;
  if (timer_create(clock, &sev, &slot->timer) != 0) return false;
  const int64_t period_ns = 1000000000 / (g_hz > 0 ? g_hz : 997);
  struct itimerspec its;
  std::memset(&its, 0, sizeof(its));
  its.it_interval.tv_sec = static_cast<time_t>(period_ns / 1000000000);
  its.it_interval.tv_nsec = static_cast<long>(period_ns % 1000000000);
  its.it_value = its.it_interval;
  if (timer_settime(slot->timer, 0, &its, nullptr) != 0) {
    timer_delete(slot->timer);
    return false;
  }
  slot->timer_armed = true;
  return true;
}

void DisarmSlot(ThreadSlot* slot) FASTT_REQUIRES(g_mu) {
  if (!slot->timer_armed) return;
  timer_delete(slot->timer);
  slot->timer_armed = false;
}

}  // namespace

void RegisterProfiledThread(const char* name) {
  if (t_slot != nullptr) {  // re-registering just renames
    MutexLock lock(g_mu);
    t_slot->name = name != nullptr ? name : "";
    return;
  }
  auto slot = std::make_unique<ThreadSlot>();
  slot->kernel_tid = static_cast<pid_t>(syscall(SYS_gettid));
  slot->pthread = pthread_self();
  slot->name = name != nullptr ? name : "";
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* addr = nullptr;
    size_t size = 0;
    if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
      slot->stack_hi = reinterpret_cast<uintptr_t>(addr) + size;
    }
    pthread_attr_destroy(&attr);
  }
  MutexLock lock(g_mu);
  slot->display_tid = g_next_display_tid++;
  slot->ring.resize(g_ring_capacity);
  t_slot = slot.get();
  Slots().push_back(std::move(slot));
  if (g_active.load(std::memory_order_relaxed)) ArmSlot(t_slot);
}

void UnregisterProfiledThread() {
  ThreadSlot* slot = t_slot;
  if (slot == nullptr) return;
  t_slot = nullptr;  // the handler keys off this; clear before disarming
  MutexLock lock(g_mu);
  DisarmSlot(slot);
  slot->exited = true;  // samples survive until the next Drain
}

bool ProfilingActive() { return g_active.load(std::memory_order_relaxed); }

CpuProfiler& CpuProfiler::Global() {
  static CpuProfiler* profiler = new CpuProfiler();
  return *profiler;
}

CpuProfiler::CpuProfiler() = default;
CpuProfiler::~CpuProfiler() = default;

bool CpuProfiler::Start(const CpuProfilerOptions& opts) {
  if (active_.load(std::memory_order_relaxed)) return false;
  // One-time warm-up: backtrace() lazily dlopens libgcc (which mallocs) on
  // first use — do it here, in normal context, never in the handler.
  void* warmup[4];
  backtrace(warmup, 4);

  MutexLock lock(g_mu);
  g_hz = opts.hz > 0 ? opts.hz : 997;
  g_ring_capacity = opts.ring_capacity > 0 ? opts.ring_capacity : 1 << 14;
  g_epoch_ns.store(opts.epoch_ns != 0 ? opts.epoch_ns : MonotonicNowNs(),
                   std::memory_order_relaxed);
  g_duration_s = 0.0;
  for (auto& slot : Slots()) {
    if (slot->ring.size() != g_ring_capacity) slot->ring.resize(g_ring_capacity);
    slot->head.store(0, std::memory_order_relaxed);
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = FasttProfSignalHandler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, &g_prev_action) != 0) return false;
  g_handler_installed = true;

  g_active.store(true, std::memory_order_release);
  active_.store(true, std::memory_order_relaxed);
  bool any_armed = false;
  for (auto& slot : Slots()) any_armed = ArmSlot(slot.get()) || any_armed;
  // No registered threads yet is fine — workers registering later arm then.
  (void)any_armed;
  return true;
}

void CpuProfiler::Stop() {
  if (!active_.load(std::memory_order_relaxed)) return;
  MutexLock lock(g_mu);
  g_active.store(false, std::memory_order_release);
  active_.store(false, std::memory_order_relaxed);
  g_duration_s =
      static_cast<double>(MonotonicNowNs() -
                          g_epoch_ns.load(std::memory_order_relaxed)) *
      1e-9;
  for (auto& slot : Slots()) DisarmSlot(slot.get());
  if (g_handler_installed) {
    // A SIGPROF generated before timer_delete may still be pending on some
    // thread; SIG_DFL for SIGPROF terminates the process, so flush first:
    // POSIX guarantees switching the disposition to SIG_IGN discards every
    // pending instance. Only then is the previous disposition restored —
    // after Stop, no profiler handler remains installed.
    struct sigaction ign;
    std::memset(&ign, 0, sizeof(ign));
    ign.sa_handler = SIG_IGN;
    sigemptyset(&ign.sa_mask);
    sigaction(SIGPROF, &ign, nullptr);
    sigaction(SIGPROF, &g_prev_action, nullptr);
    g_handler_installed = false;
  }
}

ProfileDump CpuProfiler::Drain() {
  ProfileDump dump;
  MutexLock lock(g_mu);
  dump.hz = g_hz;
  dump.duration_s =
      g_active.load(std::memory_order_relaxed)
          ? static_cast<double>(
                MonotonicNowNs() -
                g_epoch_ns.load(std::memory_order_relaxed)) *
                1e-9
          : g_duration_s;
  for (auto& slot : Slots()) {
    const uint64_t head = slot->head.load(std::memory_order_acquire);
    if (head == 0) continue;
    const uint64_t cap = slot->ring.size();
    ProfThreadDump td;
    td.tid = slot->display_tid;
    td.name = slot->name;
    td.dropped = head > cap ? head - cap : 0;
    const uint64_t n = head > cap ? cap : head;
    const uint64_t first = head > cap ? head % cap : 0;
    td.samples.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      const ProfRawSample& s = slot->ring[(first + i) % cap];
      if (s.depth > 0) td.samples.push_back(s);
    }
    dump.samples_total += static_cast<uint64_t>(td.samples.size());
    dump.samples_dropped += td.dropped;
    slot->head.store(0, std::memory_order_relaxed);
    dump.threads.push_back(std::move(td));
  }
  // Exited threads have been collected; drop their slots so long-lived
  // processes that churn pools don't accumulate rings.
  auto& slots = Slots();
  slots.erase(std::remove_if(slots.begin(), slots.end(),
                             [](const std::unique_ptr<ThreadSlot>& s) {
                               return s->exited;
                             }),
              slots.end());
  return dump;
}

// ---- Post-hoc symbolization ------------------------------------------------

bool ProfIsInternalFrame(const std::string& symbol) {
  static const char* const kInternal[] = {
      "FasttProfSignalHandler", "ProfCaptureStack", "ProfWalkFramePointers",
      "__restore_rt",           "backtrace",        "_Unwind",
  };
  for (const char* needle : kInternal) {
    if (symbol.find(needle) != std::string::npos) return true;
  }
  return false;
}

std::string ProfSymbolizePc(void* pc) {
  // Non-leaf entries are return addresses: the sample "belongs" to the call
  // one byte earlier, and a call as a function's final instruction would
  // otherwise attribute to whatever symbol starts next.
  void* lookup = static_cast<char*>(pc) - 1;
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  if (dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name =
        (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    // Drop the argument list — flat frame names fold far better — and keep
    // the name safe for the folded format (';' is the stack separator).
    const size_t paren = name.find('(');
    if (paren != std::string::npos && paren > 0) name.resize(paren);
    for (char& c : name) {
      if (c == ';' || c == '\n' || c == '\t') c = ':';
    }
    return name;
  }
  char buf[64];
  if (info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    const auto off = reinterpret_cast<uintptr_t>(pc) -
                     reinterpret_cast<uintptr_t>(info.dli_fbase);
    std::snprintf(buf, sizeof(buf), "%s+0x%zx", base,
                  static_cast<size_t>(off));
  } else {
    std::snprintf(buf, sizeof(buf), "0x%zx",
                  reinterpret_cast<size_t>(pc));
  }
  return buf;
}

SymbolizedProfile SymbolizeProfile(const ProfileDump& dump) {
  SymbolizedProfile out;
  out.hz = dump.hz;
  out.duration_s = dump.duration_s;
  out.samples_total = dump.samples_total;
  out.samples_dropped = dump.samples_dropped;

  std::unordered_map<void*, std::string> symbol_cache;
  auto symbolize = [&symbol_cache](void* pc) -> const std::string& {
    auto it = symbol_cache.find(pc);
    if (it == symbol_cache.end()) {
      it = symbol_cache.emplace(pc, ProfSymbolizePc(pc)).first;
    }
    return it->second;
  };

  struct Agg {
    uint64_t count = 0;
    std::vector<std::string> frames;  // root first
    std::string span;
  };
  std::map<std::string, Agg> folded;          // key -> aggregate
  std::map<std::string, ProfFrameRow> flat;   // frame name -> self/total

  for (const ProfThreadDump& td : dump.threads) {
    for (const ProfRawSample& s : td.samples) {
      if (s.span != nullptr) ++out.span_attributed;
      // Leaf-first capture -> root-first display, profiler frames stripped.
      std::vector<std::string> frames;
      frames.reserve(static_cast<size_t>(s.depth));
      for (int i = s.depth - 1; i >= 0; --i) {
        const std::string& name = symbolize(s.frames[i]);
        if (ProfIsInternalFrame(name)) continue;
        frames.push_back(name);
      }
      if (frames.empty()) frames.push_back("[unknown]");

      std::string key = s.span != nullptr ? s.span : "";
      key.push_back('\x1e');
      for (const std::string& f : frames) {
        key.append(f);
        key.push_back('\x1f');
      }
      Agg& agg = folded[key];
      if (agg.count == 0) {
        agg.frames = frames;
        agg.span = s.span != nullptr ? s.span : "";
      }
      ++agg.count;

      flat[frames.back()].self += 1;
      // `total` counts each sample once per frame even under recursion.
      std::vector<const std::string*> seen;
      for (const std::string& f : frames) {
        bool dup = false;
        for (const std::string* p : seen) {
          if (*p == f) {
            dup = true;
            break;
          }
        }
        if (dup) continue;
        seen.push_back(&f);
        flat[f].total += 1;
      }
    }
  }

  out.stacks.reserve(folded.size());
  for (auto& [key, agg] : folded) {
    (void)key;
    ProfStackRow row;
    row.frames = std::move(agg.frames);
    row.span = std::move(agg.span);
    row.count = agg.count;
    out.stacks.push_back(std::move(row));
  }
  std::stable_sort(out.stacks.begin(), out.stacks.end(),
                   [](const ProfStackRow& a, const ProfStackRow& b) {
                     return a.count > b.count;
                   });

  out.frames.reserve(flat.size());
  for (auto& [name, row] : flat) {
    row.name = name;
    out.frames.push_back(row);
  }
  std::stable_sort(out.frames.begin(), out.frames.end(),
                   [](const ProfFrameRow& a, const ProfFrameRow& b) {
                     return a.self != b.self ? a.self > b.self
                                             : a.total > b.total;
                   });
  return out;
}

}  // namespace fastt
