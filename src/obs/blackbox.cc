#include "obs/blackbox.h"

#include <csignal>
#include <cstdlib>
#include <exception>
#include <fstream>

#include "obs/build_info.h"
#include "obs/context.h"
#include "obs/json.h"
#include "obs/prof_export.h"
#include "obs/profiler.h"
#include "obs/trace_export.h"

namespace fastt {
namespace {

constexpr int kFatalSignals[] = {SIGABRT, SIGSEGV, SIGBUS, SIGFPE, SIGILL};

// Handler state. Written only by InstallBlackbox (before any crash can use
// it); read by the handlers. The path is stored as a leaked C string so the
// handler never touches std::string internals of a dead object.
const char* g_path = nullptr;
BlackboxOptions g_options;
std::terminate_handler g_prev_terminate = nullptr;
bool g_installed = false;

extern "C" void BlackboxSignalHandler(int sig) {
  // Re-arm the default disposition first: a second fault inside the dump
  // terminates immediately instead of recursing.
  for (int fatal : kFatalSignals) std::signal(fatal, SIG_DFL);
  if (g_path != nullptr) {
    const char* reason = "signal";
    switch (sig) {
      case SIGABRT:
        reason = "SIGABRT";
        break;
      case SIGSEGV:
        reason = "SIGSEGV";
        break;
      case SIGBUS:
        reason = "SIGBUS";
        break;
      case SIGFPE:
        reason = "SIGFPE";
        break;
      case SIGILL:
        reason = "SIGILL";
        break;
      default:
        break;
    }
    WriteBlackboxDump(g_path, CurrentTelemetry(), reason, g_options);
  }
  std::raise(sig);
}

[[noreturn]] void BlackboxTerminateHandler() {
  std::signal(SIGABRT, SIG_DFL);
  if (g_path != nullptr) {
    WriteBlackboxDump(g_path, CurrentTelemetry(), "terminate", g_options);
  }
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

}  // namespace

void InstallBlackbox(const std::string& path, const BlackboxOptions& options) {
  // Leaked on purpose: the handler may run during static destruction.
  char* stable = new char[path.size() + 1];
  path.copy(stable, path.size());
  stable[path.size()] = '\0';
  g_path = stable;
  g_options = options;
  for (int sig : kFatalSignals) std::signal(sig, BlackboxSignalHandler);
  if (options.install_terminate_handler) {
    std::terminate_handler prev = std::set_terminate(BlackboxTerminateHandler);
    if (!g_installed) g_prev_terminate = prev;  // don't chain to ourselves
  }
  g_installed = true;
}

void UninstallBlackbox() {
  if (!g_installed) return;
  for (int sig : kFatalSignals) std::signal(sig, SIG_DFL);
  if (g_prev_terminate != nullptr) std::set_terminate(g_prev_terminate);
  g_path = nullptr;
  g_installed = false;
}

bool WriteBlackboxDump(const std::string& path, TelemetryContext& context,
                       const std::string& reason,
                       const BlackboxOptions& options) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("fastt-blackbox/1");
  w.Key("build");
  WriteBuildInfo(w);
  w.Key("reason").String(reason);
  w.Key("metrics").Raw(context.metrics().ToJson());

  const EventLog& events = context.events();
  const size_t total = events.size();
  const size_t first = total > options.max_events ? total - options.max_events
                                                  : 0;
  w.Key("events_total").Int(static_cast<int64_t>(total));
  w.Key("events").BeginArray();
  for (size_t i = first; i < total; ++i) w.Raw(events.line(i));
  w.EndArray();

  w.Key("trace").BeginObject();
  if (context.tracer().enabled()) {
    // Best effort: draining mid-crash is exactly what a flight recorder is
    // for. Emitters on other threads may still be running; the ring's
    // single-writer publication keeps reads well-formed regardless.
    context.tracer().Disable();
    const TraceDump dump = context.tracer().Drain();
    w.Key("spans").BeginArray();
    for (const TraceSpan& span : dump.spans) {
      w.BeginObject();
      w.Key("name").String(span.name);
      w.Key("tid").Int(span.tid);
      w.Key("start_s").Number(span.start_s);
      w.Key("dur_s").Number(span.dur_s);
      w.EndObject();
    }
    w.EndArray();
    w.Key("points").Int(static_cast<int64_t>(dump.points.size()));
    w.Key("dropped_events").Int(static_cast<int64_t>(dump.dropped_events));
    w.Key("dropped_spans").Int(static_cast<int64_t>(dump.dropped_spans));
  } else {
    w.Key("spans").BeginArray();
    w.EndArray();
    w.Key("points").Int(0);
    w.Key("dropped_events").Int(0);
    w.Key("dropped_spans").Int(0);
  }
  w.EndObject();

  // If a CPU profile was in flight when the process died, the crash comes
  // with its last seconds of samples: stop sampling (the handler must not
  // fire mid-dump) and fold whatever the rings have published.
  if (CpuProfiler::Global().active()) {
    CpuProfiler::Global().Stop();
  }
  {
    const ProfileDump prof_dump = CpuProfiler::Global().Drain();
    if (prof_dump.samples_total > 0) {
      const SymbolizedProfile prof = SymbolizeProfile(prof_dump);
      w.Key("profile").Raw(ProfileToJson(prof, {}));
    }
  }

  w.EndObject();
  std::ofstream file(path);
  if (!file) return false;
  file << w.str() << "\n";
  return static_cast<bool>(file);
}

}  // namespace fastt
