#include "obs/provenance.h"

#include <cmath>
#include <limits>

#include "obs/json.h"
#include "util/strings.h"

namespace fastt {
namespace {

// Millisecond rendering that tolerates the +inf scores of memory-rejected
// candidates (they print as "-", matching the table idiom).
std::string Ms(double seconds) {
  if (!std::isfinite(seconds)) return "-";
  return StrFormat("%.4f ms", seconds * 1e3);
}

}  // namespace

const char* PlacementReasonName(PlacementReason reason) {
  switch (reason) {
    case PlacementReason::kBestEft: return "best_eft";
    case PlacementReason::kCriticalPathDevice: return "critical_path_device";
    case PlacementReason::kColocated: return "colocated";
    case PlacementReason::kMemoryOverflow: return "memory_overflow";
  }
  return "unknown";
}

std::string RenderPlacementDecision(const PlacementDecision& decision,
                                    double predicted_s, double realized_s) {
  std::string out =
      StrFormat("op %s (slot %d)\n", decision.op_name.c_str(), decision.op);
  out += StrFormat("  chosen: gpu%d  reason=%s  eft=%s\n", decision.chosen,
                   PlacementReasonName(decision.reason),
                   Ms(decision.chosen_eft_s).c_str());
  if (!decision.candidates.empty()) out += "  candidates:\n";
  for (const CandidateScore& c : decision.candidates) {
    if (c.memory_rejected) {
      out += StrFormat("    gpu%-3d memory-rejected\n", c.device);
      continue;
    }
    std::string delta;
    if (c.device == decision.chosen) {
      delta = "<- chosen";
    } else {
      delta = StrFormat("eft delta %+.4f ms vs chosen",
                        (c.eft_s - decision.chosen_eft_s) * 1e3);
    }
    out += StrFormat("    gpu%-3d est %-12s eft %-12s score %-12s %s\n",
                     c.device, Ms(c.est_s).c_str(), Ms(c.eft_s).c_str(),
                     Ms(c.score_s).c_str(), delta.c_str());
  }
  if (predicted_s >= 0.0 && realized_s >= 0.0) {
    const double rel =
        realized_s > 0.0 ? (predicted_s - realized_s) / realized_s : 0.0;
    out += StrFormat("  predicted %s, realized %s (%+.1f%% error)\n",
                     Ms(predicted_s).c_str(), Ms(realized_s).c_str(),
                     100.0 * rel);
  } else if (predicted_s >= 0.0) {
    out += StrFormat("  predicted %s (not realized)\n", Ms(predicted_s).c_str());
  }
  return out;
}

std::string RenderSplitTrials(const std::vector<SplitTrialRecord>& trials,
                              const std::string& op_name) {
  std::string out;
  for (const SplitTrialRecord& t : trials) {
    if (!op_name.empty() && t.op_name.find(op_name) == std::string::npos)
      continue;
    if (!t.viable) {
      out += StrFormat("  split trial %s %s x%d: memory-rejected\n",
                       t.op_name.c_str(), t.dim.c_str(), t.num_splits);
      continue;
    }
    out += StrFormat(
        "  split trial %s %s x%d: predicted %s vs incumbent %s (%+.1f%%)%s\n",
        t.op_name.c_str(), t.dim.c_str(), t.num_splits,
        Ms(t.predicted_s).c_str(), Ms(t.baseline_s).c_str(),
        t.baseline_s > 0.0
            ? 100.0 * (t.predicted_s - t.baseline_s) / t.baseline_s
            : 0.0,
        t.committed ? "  <- split_trial_winner" : "");
  }
  return out;
}

std::string ProvenanceToJson(const std::vector<PlacementDecision>& decisions,
                             const std::vector<SplitTrialRecord>& trials) {
  JsonWriter w;
  w.BeginObject();
  w.Key("decisions").BeginArray();
  for (const PlacementDecision& d : decisions) {
    w.BeginObject();
    w.Key("op").Int(d.op);
    w.Key("name").String(d.op_name);
    w.Key("chosen").Int(d.chosen);
    w.Key("reason").String(PlacementReasonName(d.reason));
    w.Key("eft_s").Number(d.chosen_eft_s);
    w.Key("candidates").BeginArray();
    for (const CandidateScore& c : d.candidates) {
      w.BeginObject();
      w.Key("device").Int(c.device);
      w.Key("est_s").Number(c.est_s);
      w.Key("eft_s").Number(c.eft_s);
      w.Key("score_s").Number(c.score_s);  // +inf -> null (memory-rejected)
      w.Key("memory_rejected").Bool(c.memory_rejected);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("split_trials").BeginArray();
  for (const SplitTrialRecord& t : trials) {
    w.BeginObject();
    w.Key("op").String(t.op_name);
    w.Key("dim").String(t.dim);
    w.Key("num_splits").Int(t.num_splits);
    w.Key("viable").Bool(t.viable);
    w.Key("predicted_s").Number(t.predicted_s);
    w.Key("baseline_s").Number(t.baseline_s);
    w.Key("committed").Bool(t.committed);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace fastt
