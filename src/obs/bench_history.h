// Schema and comparator for FASTT_BENCH_JSON reports, so the bench suite
// becomes a tracked, diffable time series instead of write-only output.
//
// Document ("fastt-bench/1"):
//   {"schema": "fastt-bench/1",
//    "run": {"label": ..., "host_cores": N, ...},          // free-form strings
//    "reports": [
//      {"benchmark": "bench_search",
//       "params": {"model": "lenet", "gpus": "2", ...},
//       "metrics": [
//         {"name": "osdpos_wall_s", "unit": "s", "lower_is_better": true,
//          "samples": [..], "median": .., "p90": .., "min": .., "mean": ..}]}]}
//
// DiffBenchReports matches (benchmark, params, metric name) across two
// documents and compares medians: a relative delta in the bad direction of
// at least `threshold` is a warning, `threshold * hard_factor` a hard
// regression — but hard only when both sides have at least `min_repeats`
// samples, so a single noisy run can warn yet never fail CI by itself.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fastt {

struct BenchMetricSeries {
  std::string name;
  std::string unit;            // "s", "ns", "samples/s", ...
  bool lower_is_better = true;
  std::vector<double> samples;

  // Derived over `samples` (recomputed by Finalize / on parse).
  double median = 0.0;
  double p90 = 0.0;
  double min = 0.0;
  double mean = 0.0;

  void Finalize();  // fills the derived stats from samples
};

struct BenchReport {
  std::string benchmark;                      // producing binary / table
  std::map<std::string, std::string> params;  // configuration cell
  std::vector<BenchMetricSeries> metrics;
};

struct BenchHistoryDoc {
  std::map<std::string, std::string> run;  // free-form run metadata
  std::vector<BenchReport> reports;
  // Optional raw JSON object (the process metrics registry) spliced in
  // verbatim under "process_metrics"; opaque to the comparator.
  std::string process_metrics_json;
};

// Serializes with every metric's derived stats recomputed from samples.
std::string BenchHistoryDocToJson(const BenchHistoryDoc& doc);
void WriteBenchHistoryDoc(const BenchHistoryDoc& doc, const std::string& path);

// Parses a fastt-bench/1 document; false + `error` on malformed input or a
// wrong/missing schema tag.
bool ParseBenchHistoryDoc(const std::string& json, BenchHistoryDoc* out,
                          std::string* error = nullptr);
bool ReadBenchHistoryDoc(const std::string& path, BenchHistoryDoc* out,
                         std::string* error = nullptr);

struct BenchDiffOptions {
  double threshold = 0.10;   // relative regression that earns a warning
  double hard_factor = 2.0;  // hard failure at threshold * hard_factor
  int min_repeats = 3;       // samples required on both sides to hard-fail
};

struct BenchDiffEntry {
  enum class Verdict { kOk, kImproved, kWarn, kHardRegression, kUnmatched };
  std::string benchmark;
  std::string params;       // rendered "k=v k=v" cell key
  std::string metric;
  std::string unit;
  double old_median = 0.0;
  double new_median = 0.0;
  double rel_delta = 0.0;   // >0 means worse, sign-adjusted by direction
  int old_samples = 0;
  int new_samples = 0;
  Verdict verdict = Verdict::kOk;
};

struct BenchDiffResult {
  std::vector<BenchDiffEntry> entries;  // worst first
  int warnings = 0;
  int hard_regressions = 0;
  int improvements = 0;
  int unmatched = 0;  // metric present on one side only (informational)
};

BenchDiffResult DiffBenchReports(const BenchHistoryDoc& old_doc,
                                 const BenchHistoryDoc& new_doc,
                                 const BenchDiffOptions& options = {});

std::string RenderBenchDiff(const BenchDiffResult& result,
                            const BenchDiffOptions& options);

// Appends `doc` to `dir` as <label>-<seq>.json (0001, 0002, ...) so the
// history directory stays sorted by arrival. Returns the written path.
std::string AppendToHistory(const std::string& dir, const std::string& label,
                            const BenchHistoryDoc& doc);

}  // namespace fastt
