// Export, parse, render and diff surfaces for the sampling CPU profiler
// (obs/profiler.h). Three output formats:
//
//   fastt-prof/1 JSON — the machine-readable document `fastt profile --json`
//     writes and `fastt prof-diff` consumes:
//       {"schema": "fastt-prof/1",
//        "build": {...},                         // obs/build_info.h
//        "params": {"model": "lenet", ...},
//        "hz": 997, "duration_s": 1.0,
//        "samples": {"total": N, "dropped": N, "span_attributed": N},
//        "stacks": [{"frames": ["main", ..., "leaf"], "span": "dpos/run",
//                    "count": N}],                // root-first, count-desc
//        "frames": [{"name": ..., "self": N, "total": N,
//                    "self_pct": .., "total_pct": ..}]}  // self-desc
//
//   .folded text — Brendan Gregg's collapsed-stack format, one
//     "frame;frame;frame count" line per unique stack, directly consumable
//     by flamegraph.pl / speedscope (validated by scripts/check_folded.py).
//
//   top-N table — the human rendering in `fastt profile` / `fastt report`.
//
// DiffProfiles mirrors the bench-diff contract (obs/bench_history.h) on a
// different axis: per-frame SELF-TIME SHARE (percent of total samples), so
// two profiles of different lengths compare cleanly. A frame whose share
// grew by at least `threshold_pp` percentage points earns a warning,
// `threshold_pp * hard_factor` a hard regression — but hard only when both
// profiles carry at least `min_samples` samples, so a near-empty profile
// can warn yet never fail CI by itself. `fastt prof-diff` exits nonzero iff
// hard_regressions > 0, same as bench-diff.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/profiler.h"

namespace fastt {

// ---- fastt-prof/1 ----------------------------------------------------------

// Serializes a symbolized profile. `params` describes the run (model, gpus,
// hz...) the way bench reports do.
std::string ProfileToJson(const SymbolizedProfile& prof,
                          const std::map<std::string, std::string>& params);

// Collapsed-stack export: "frame;frame;frame count\n" per stack, root first.
std::string ProfileToFolded(const SymbolizedProfile& prof);

// Human top-N self/total table (top_n <= 0 means all frames).
std::string RenderProfileTable(const SymbolizedProfile& prof, int top_n = 15);

// Parses a fastt-prof/1 document back (stacks are not needed for diffing
// and are ignored); false + `error` on malformed input or wrong schema.
struct ProfDoc {
  std::map<std::string, std::string> params;
  int hz = 0;
  double duration_s = 0.0;
  uint64_t samples_total = 0;
  uint64_t samples_dropped = 0;
  uint64_t span_attributed = 0;
  std::vector<ProfFrameRow> frames;
};
bool ParseProfDoc(const std::string& json, ProfDoc* out,
                  std::string* error = nullptr);
bool ReadProfDoc(const std::string& path, ProfDoc* out,
                 std::string* error = nullptr);

// ---- prof-diff -------------------------------------------------------------

struct ProfDiffOptions {
  double threshold_pp = 2.0;   // self-share growth (percentage points)
                               // that earns a warning
  double hard_factor = 2.0;    // hard failure at threshold_pp * hard_factor
  uint64_t min_samples = 50;   // samples required on both sides to hard-fail
  double min_share_pct = 0.5;  // ignore frames below this share on both
                               // sides (symbol noise)
};

struct ProfDiffEntry {
  enum class Verdict { kOk, kImproved, kWarn, kHardRegression, kUnmatched };
  std::string frame;
  double old_self_pct = 0.0;
  double new_self_pct = 0.0;
  double delta_pp = 0.0;  // new - old, >0 means the frame got hotter
  Verdict verdict = Verdict::kOk;
};

struct ProfDiffResult {
  std::vector<ProfDiffEntry> entries;  // worst first
  int warnings = 0;
  int hard_regressions = 0;
  int improvements = 0;
  int unmatched = 0;  // frame present on one side only (informational)
};

ProfDiffResult DiffProfiles(const ProfDoc& old_doc, const ProfDoc& new_doc,
                            const ProfDiffOptions& options = {});

std::string RenderProfDiff(const ProfDiffResult& result,
                           const ProfDiffOptions& options);

}  // namespace fastt
