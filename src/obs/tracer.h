// In-process flight recorder for the host-side strategy search.
//
// The metrics registry answers "how much, in total"; the tracer answers
// "when, on which thread" — where the search's own wall-clock goes: DPOS
// runs and their phases, OS-DPOS split trials on pool workers, incremental
// re-simulation cone replays, cost-table builds, worker occupancy and queue
// wait. Recording is a per-thread ring buffer of fixed capacity (oldest
// events overwritten; a drain reports how many were lost), written without
// locks: each buffer has exactly one writer — its owning thread — and a
// release-store on the head index publishes slots to the drainer. Events
// carry a `const char*` name (string literals only: no allocation, no
// copying on the hot path) and a timestamp relative to the epoch set by
// Enable().
//
// Cost when disabled: every macro boils down to one relaxed atomic load and
// a branch — unmeasurable next to the work being traced — and defining
// FASTT_NO_TRACING compiles the macros out entirely. Cost when enabled: a
// clock read plus one ring slot write per event.
//
// Draining (Tracer::Drain) pairs begin/end events into completed spans and
// requires quiescence: no instrumented code may be emitting concurrently.
// In practice every drain site runs after the traced search returned and
// the pool workers are idle (idle workers emit nothing). Ends whose begins
// were overwritten by ring wraparound, and begins never closed, are dropped
// and counted rather than emitted, so a drain is always well-formed.
//
// Tracers are instances, not a singleton: every TelemetryContext
// (obs/context.h) owns one, and the macros resolve theirs through the
// ambient slot (obs/ambient.h), falling back to Tracer::Global(). The
// disabled fast path stays one relaxed load: TracingActive() counts enabled
// tracers process-wide, and only when it is nonzero do the macros resolve
// the ambient slot and check that tracer's own flag.
//
// This header is dependency-free (library fastt_tracer) so the thread pool
// in fastt_util can be instrumented without a util <-> obs cycle; Chrome
// JSON export and summarization live in obs/trace_export.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/ambient.h"
#include "obs/profiler.h"
#include "util/sync.h"

namespace fastt {

// One completed (paired) span, relative to the trace epoch.
struct TraceSpan {
  const char* name = nullptr;
  int tid = 0;
  double start_s = 0.0;
  double dur_s = 0.0;
  double end_s() const { return start_s + dur_s; }
};

// One instant or counter-sample event.
struct TracePoint {
  const char* name = nullptr;
  int tid = 0;
  double t_s = 0.0;
  double value = 0.0;
  bool is_counter = false;  // false: instant marker; true: counter sample
};

struct TraceThreadInfo {
  int tid = 0;
  std::string name;
};

// Everything a drain recovered from the ring buffers.
struct TraceDump {
  std::vector<TraceThreadInfo> threads;  // only threads that recorded events
  std::vector<TraceSpan> spans;          // per thread, in start order
  std::vector<TracePoint> points;
  uint64_t dropped_events = 0;  // overwritten by ring wraparound
  uint64_t dropped_spans = 0;   // unpairable begins/ends
  double drained_at_s = 0.0;    // drain time relative to the epoch
};

class Tracer {
 public:
  // Process-wide instance: the macros' sink when no ambient context is
  // installed (see CurrentTracer below).
  static Tracer& Global();

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Starts (or restarts) recording: resets every registered ring buffer and
  // re-bases the epoch clock at "now". Requires quiescence.
  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Ring capacity, in events, applied to every buffer (existing buffers are
  // reset). Requires quiescence; intended for tests and the CLI.
  void SetRingCapacity(size_t events);

  // Names the calling thread's row in the drained timeline ("worker 3").
  void SetCurrentThreadName(const std::string& name);

  // Hot-path emitters. `name` must outlive the tracer (string literal).
  void BeginSpan(const char* name) { Emit(kBegin, name, 0.0); }
  void EndSpan(const char* name) { Emit(kEnd, name, 0.0); }
  void Instant(const char* name, double value) { Emit(kInstant, name, value); }
  void Counter(const char* name, double value) { Emit(kCounter, name, value); }

  // Collects every buffer's events, pairs spans, and resets the buffers so
  // a subsequent drain starts empty. Requires quiescence.
  TraceDump Drain();

  // steady_clock nanoseconds at Enable(). The CPU profiler starts from the
  // same origin so sample timestamps land on the span timeline when both
  // are exported into one Chrome trace.
  int64_t epoch_ns() const {
    return epoch_ns_.load(std::memory_order_relaxed);
  }

 private:
  enum Kind : uint8_t { kBegin, kEnd, kInstant, kCounter };

  struct Event {
    const char* name = nullptr;
    double t_s = 0.0;
    double value = 0.0;
    Kind kind = kBegin;
  };

  // Single-writer ring. The owning thread writes ring[head % capacity] then
  // release-stores head+1; the drainer acquire-loads head and reads only
  // published slots.
  struct ThreadBuffer {
    explicit ThreadBuffer(size_t capacity) : ring(capacity) {}
    int tid = 0;
    std::string name;
    std::vector<Event> ring;
    std::atomic<uint64_t> head{0};
  };

  void Emit(Kind kind, const char* name, double value);
  ThreadBuffer* CurrentBuffer();
  double NowSinceEpoch() const;

  // Never-reused instance id: the per-thread buffer cache keys on it, so an
  // entry for a destroyed tracer can't be mistaken for a new tracer that
  // happens to land at the same address.
  const uint64_t id_;
  std::atomic<bool> enabled_{false};
  mutable Mutex mu_;
  // The registry of per-thread buffers is guarded; each buffer's ring is
  // single-writer/lock-free (see the header comment) once registered.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ FASTT_GUARDED_BY(mu_);
  size_t capacity_ FASTT_GUARDED_BY(mu_) = 1 << 16;
  // steady_clock nanoseconds at Enable(). Atomic, not guarded: the hot-path
  // Emit() reads it without the registry lock; Enable()'s release-store on
  // enabled_ publishes the new epoch before any emitter can observe
  // enabled() == true.
  std::atomic<int64_t> epoch_ns_{0};
};

// True when at least one Tracer instance anywhere in the process is
// enabled. One relaxed load: this is the only cost the macros pay when
// tracing is off, same as the old single-global design.
bool TracingActive();

// The tracer the macros write to: the ambient context's tracer if a
// TelemetryScope is installed on this thread, else the process global.
inline Tracer& CurrentTracer() {
  Tracer* ambient = CurrentAmbientTelemetry().tracer;
  return ambient != nullptr ? *ambient : Tracer::Global();
}

// RAII span. Resolves and pins the ambient tracer at entry so a span opened
// while tracing is on always closes on the same sink (Disable mid-span
// leaves at worst one unpaired end, which the drain drops). Every opened
// span is also pushed on the per-thread ProfSpanStack (obs/profiler.h) so
// the sampling profiler can attribute each CPU sample to the innermost
// live span.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (!TracingActive()) return;
    Tracer& t = CurrentTracer();
    if (t.enabled()) {
      tracer_ = &t;
      name_ = name;
      t.BeginSpan(name);
      ProfSpanPush(name);
    }
  }
  ~TraceScope() {
    if (tracer_ != nullptr) {
      ProfSpanPop();
      tracer_->EndSpan(name_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
};

}  // namespace fastt

#define FASTT_TRACE_CONCAT2(a, b) a##b
#define FASTT_TRACE_CONCAT(a, b) FASTT_TRACE_CONCAT2(a, b)

#ifndef FASTT_NO_TRACING
// Times the enclosing scope as a span named `name` (string literal).
#define FASTT_TRACE_SPAN(name)                              \
  ::fastt::TraceScope FASTT_TRACE_CONCAT(fastt_trace_scope_, \
                                         __LINE__)(name)
// One instant marker / counter sample with a numeric value.
#define FASTT_TRACE_INSTANT(name, value)                            \
  do {                                                              \
    if (::fastt::TracingActive()) {                                 \
      ::fastt::Tracer& fastt_trace_t = ::fastt::CurrentTracer();    \
      if (fastt_trace_t.enabled())                                  \
        fastt_trace_t.Instant((name), static_cast<double>(value));  \
    }                                                               \
  } while (0)
#define FASTT_TRACE_COUNTER(name, value)                            \
  do {                                                              \
    if (::fastt::TracingActive()) {                                 \
      ::fastt::Tracer& fastt_trace_t = ::fastt::CurrentTracer();    \
      if (fastt_trace_t.enabled())                                  \
        fastt_trace_t.Counter((name), static_cast<double>(value));  \
    }                                                               \
  } while (0)
#else
#define FASTT_TRACE_SPAN(name) ((void)0)
#define FASTT_TRACE_INSTANT(name, value) ((void)0)
#define FASTT_TRACE_COUNTER(name, value) ((void)0)
#endif
