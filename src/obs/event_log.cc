#include "obs/event_log.h"

#include <fstream>

namespace fastt {

EventLog::Builder::Builder(EventLog& log, const std::string& type)
    : log_(log) {
  writer_.BeginObject();
  writer_.Key("event").String(type);
  writer_.Key("seq").Int(log.next_seq_.fetch_add(1));
}

EventLog::Builder::~Builder() {
  writer_.EndObject();
  log_.Append(writer_.str());
}

void EventLog::Append(std::string line) {
  MutexLock lock(mu_);
  lines_.push_back(std::move(line));
}

size_t EventLog::size() const {
  MutexLock lock(mu_);
  return lines_.size();
}

std::string EventLog::line(size_t i) const {
  MutexLock lock(mu_);
  return lines_[i];
}

void EventLog::Clear() {
  MutexLock lock(mu_);
  lines_.clear();
  next_seq_.store(0);
}

EventLog::Builder& EventLog::Builder::Str(const std::string& key,
                                          const std::string& value) {
  writer_.Key(key).String(value);
  return *this;
}

EventLog::Builder& EventLog::Builder::Number(const std::string& key,
                                             double value) {
  writer_.Key(key).Number(value);
  return *this;
}

EventLog::Builder& EventLog::Builder::Int(const std::string& key,
                                          int64_t value) {
  writer_.Key(key).Int(value);
  return *this;
}

EventLog::Builder& EventLog::Builder::Bool(const std::string& key,
                                           bool value) {
  writer_.Key(key).Bool(value);
  return *this;
}

std::string EventLog::ToJsonl() const {
  MutexLock lock(mu_);
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

bool EventLog::WriteJsonl(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << ToJsonl();
  return static_cast<bool>(file);
}

}  // namespace fastt
