#include "obs/event_log.h"

#include <fstream>

namespace fastt {

EventLog::Builder::Builder(EventLog& log, const std::string& type)
    : log_(log) {
  writer_.BeginObject();
  writer_.Key("event").String(type);
  writer_.Key("seq").Int(static_cast<int64_t>(log.lines_.size()));
}

EventLog::Builder::~Builder() {
  writer_.EndObject();
  log_.lines_.push_back(writer_.str());
}

EventLog::Builder& EventLog::Builder::Str(const std::string& key,
                                          const std::string& value) {
  writer_.Key(key).String(value);
  return *this;
}

EventLog::Builder& EventLog::Builder::Number(const std::string& key,
                                             double value) {
  writer_.Key(key).Number(value);
  return *this;
}

EventLog::Builder& EventLog::Builder::Int(const std::string& key,
                                          int64_t value) {
  writer_.Key(key).Int(value);
  return *this;
}

EventLog::Builder& EventLog::Builder::Bool(const std::string& key,
                                           bool value) {
  writer_.Key(key).Bool(value);
  return *this;
}

std::string EventLog::ToJsonl() const {
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

bool EventLog::WriteJsonl(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << ToJsonl();
  return static_cast<bool>(file);
}

}  // namespace fastt
