// Tiny leveled logger: one stderr line plus one structured "log" event in
// the ambient TelemetryContext's event log per message, so diagnostics that
// used to be ad-hoc fprintf(stderr, ...) calls become per-request data a
// service can tag and return.
//
//   FASTT_LOG(Warn, "calibration drifted %.1f%% on round %d", pct, round);
//
// Levels: Error < Warn < Info < Debug. The threshold (default Warn, so
// library diagnostics stay out of CLI stdout pipelines) gates both sinks
// and comes from, in priority order: SetLogThreshold (the CLI's
// --log-level), else the FASTT_LOG_LEVEL environment variable, else the
// default. FASTT_LOG evaluates its arguments only when the level passes —
// a suppressed Debug line costs one relaxed load and a compare.
#pragma once

#include <string>

namespace fastt {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

// Stable lowercase name: "error", "warn", "info", "debug".
const char* LogLevelName(LogLevel level);

// Parses a name (as produced by LogLevelName). False on unknown input.
bool ParseLogLevel(const std::string& text, LogLevel* out);

// The active threshold (resolving FASTT_LOG_LEVEL on first use).
LogLevel LogThreshold();
void SetLogThreshold(LogLevel level);
// Raises the threshold to at least `level` (no-op if already as verbose);
// opt-in diagnostics like FASTT_DPOS_TRACE use this so setting their env
// var alone is enough to see their lines. An explicitly chosen threshold
// (SetLogThreshold / valid FASTT_LOG_LEVEL) always wins over this raise —
// `--log-level error` stays quiet even with trace env vars set.
void EnsureLogThresholdAtLeast(LogLevel level);

// True when a message at `level` would be emitted.
bool LogEnabled(LogLevel level);

// Formats and emits one message: "fastt [warn] ..." on stderr and a
// {"event":"log","level":"warn","msg":...} record in CurrentEventLog().
// Prefer the FASTT_LOG macro, which checks the threshold first.
void LogMessage(LogLevel level, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace fastt

// Severity is the bare level name: FASTT_LOG(Warn, "..."), FASTT_LOG(Debug,
// "%d candidates", n).
#define FASTT_LOG(Severity, ...)                                       \
  do {                                                                 \
    if (::fastt::LogEnabled(::fastt::LogLevel::k##Severity))           \
      ::fastt::LogMessage(::fastt::LogLevel::k##Severity, __VA_ARGS__); \
  } while (0)
