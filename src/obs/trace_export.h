// Turns a Tracer drain into artifacts: a Chrome-trace JSON timeline (same
// format src/sim/trace emits for the simulated schedule, so both load in
// Perfetto side by side) and an aggregate phase/self-time summary for the
// `fastt search-profile` report.
#pragma once

#include <string>
#include <vector>

#include "obs/tracer.h"

namespace fastt {

// Chrome Trace Event Format: thread_name metadata per recorded thread, "X"
// complete events for spans, "i" instants, "C" counter samples. pid 1 is
// the search (the simulator exporter uses pid 0 per device, so a merged
// view keeps them apart).
std::string TraceToChromeJson(const TraceDump& dump);

// Same, plus CPU-sample tracks from the sampling profiler: one extra
// "cpu samples: <thread>" row per profiled thread (tid offset +1000),
// each sample an instant event named by its leaf symbol. Valid only when
// the profile shared the tracer's epoch (CpuProfilerOptions::epoch_ns =
// tracer.epoch_ns()), which `fastt search-profile --profile` arranges.
std::string TraceToChromeJson(const TraceDump& dump, const ProfileDump& prof);

// One row per distinct span name. `self_s` is `total_s` minus time covered
// by child spans on the same thread — where the clock actually ticked.
struct TracePhase {
  std::string name;
  int64_t count = 0;
  double total_s = 0.0;
  double self_s = 0.0;
};

struct TraceThreadStats {
  int tid = 0;
  std::string name;
  double busy_s = 0.0;  // union of the thread's span intervals
};

struct TraceSummary {
  std::vector<TracePhase> phases;          // by total_s, descending
  std::vector<TraceThreadStats> threads;   // by tid
  double wall_s = 0.0;      // max span end over all threads
  double root_span_s = 0.0; // total of top-level (unparented) spans
  uint64_t span_count = 0;
  uint64_t dropped_events = 0;
  uint64_t dropped_spans = 0;
};

TraceSummary SummarizeTrace(const TraceDump& dump);

// Phase table + worker occupancy, ready to print.
std::string RenderTraceSummary(const TraceSummary& summary);

}  // namespace fastt
