// Crash black-box: a post-mortem dump of the active TelemetryContext.
//
// InstallBlackbox registers handlers for the fatal signals (SIGABRT,
// SIGSEGV, SIGBUS, SIGFPE, SIGILL) and std::terminate. When one fires, the
// handler drains the calling thread's ambient context — flight-recorder
// ring buffers (final trace spans), the last N event-log lines, and a full
// metrics snapshot — into a `fastt-blackbox/1` JSON file, then re-raises
// the default disposition so the process still dies with the original
// signal. An aborted search is thereby debuggable from the artifact it
// leaves behind instead of from nothing.
//
// Honesty note: the dump path allocates and takes locks, which is not
// async-signal-safe. That is the usual flight-recorder trade-off — a crash
// inside malloc or while a drain lock is held can lose the dump, but every
// other abort (CHECK failures, std::abort, uncaught exceptions via
// terminate) produces one. The handlers reset to SIG_DFL before dumping,
// so a second fault during the dump terminates immediately rather than
// recursing.
//
// Layout:
//   {"schema": "fastt-blackbox/1", "reason": "SIGABRT",
//    "metrics": {...}, "events_total": n, "events": [last N lines...],
//    "trace": {"spans": [{"name","tid","start_s","dur_s"}...],
//              "points": n, "dropped_events": n, "dropped_spans": n}}
#pragma once

#include <string>

namespace fastt {

class TelemetryContext;

struct BlackboxOptions {
  // Last N event-log lines kept in the dump ("events_total" still reports
  // the full count).
  size_t max_events = 64;
  bool install_terminate_handler = true;
};

// Arms the black-box: fatal signals and std::terminate will dump the
// calling thread's ambient context (resolved at crash time) to `path`.
// Last install wins; the path must stay valid process-wide.
void InstallBlackbox(const std::string& path,
                     const BlackboxOptions& options = {});

// Restores default signal dispositions (tests).
void UninstallBlackbox();

// The dump itself, callable directly (the handler's body): drains
// `context`'s tracer if enabled and writes the fastt-blackbox/1 document.
// Returns false on I/O failure.
bool WriteBlackboxDump(const std::string& path, TelemetryContext& context,
                       const std::string& reason,
                       const BlackboxOptions& options = {});

}  // namespace fastt
