// fastt-report/1: one JSON document bundling everything a run's telemetry
// produced — metrics, event log, trace phase self-times, and any
// command-specific sections (calibration, verifier summary, memstat
// phases) — so a whole run travels as a single artifact instead of five
// separately-flagged files.
//
// Every CLI command emits one via `--report <file>`; `fastt report` runs
// the full instrumented workflow inside a fresh TelemetryContext and
// writes the richest bundle. Layout:
//   {"schema": "fastt-report/1",
//    "command": "run", "model": "lenet",
//    "params": {"gpus": 2, ...},
//    "metrics": {...MetricsRegistry::ToJson...},     // if set
//    "events": [...],                                // if set
//    "trace_phases": [{"name","count","total_s","self_s"}, ...],  // if set
//    "<section>": <raw JSON>, ...}                   // AddSection, in order
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace fastt {

class EventLog;
class MetricsRegistry;
struct TraceSummary;

class RunReport {
 public:
  RunReport(std::string command, std::string model);

  // Scalar run parameters under "params" (gpus, batch, jobs...).
  void SetParam(const std::string& key, int64_t value);

  void SetMetrics(const MetricsRegistry& registry);
  void SetEvents(const EventLog& events);
  void SetTraceSummary(const TraceSummary& summary);

  // Appends a command-specific section. `raw_json` must be a complete JSON
  // value; sections appear in insertion order after the standard ones.
  void AddSection(const std::string& key, const std::string& raw_json);

  std::string ToJson() const;
  // Writes ToJson to `path`. Returns false on I/O failure.
  bool Write(const std::string& path) const;

 private:
  std::string command_;
  std::string model_;
  std::vector<std::pair<std::string, int64_t>> params_;
  std::string metrics_json_;       // empty: omitted
  std::string events_json_;        // "[" ... "]" array; empty: omitted
  std::string trace_phases_json_;  // array; empty: omitted
  std::string trace_dropped_json_; // {"events","spans"}; empty: omitted
  std::vector<std::pair<std::string, std::string>> sections_;
};

}  // namespace fastt
