#include "obs/context.h"

namespace fastt {

TelemetryContext::TelemetryContext()
    : owned_metrics_(std::make_unique<MetricsRegistry>()),
      owned_tracer_(std::make_unique<Tracer>()),
      owned_events_(std::make_unique<EventLog>()),
      metrics_(owned_metrics_.get()),
      tracer_(owned_tracer_.get()),
      events_(owned_events_.get()),
      memtrack_(&MemTracker::Global()) {}

TelemetryContext::TelemetryContext(ProcessTag)
    : metrics_(&MetricsRegistry::Global()),
      tracer_(&Tracer::Global()),
      memtrack_(&MemTracker::Global()) {
  // The process-wide event log: created here (not a Global() on EventLog
  // itself) because only ambient resolution needs it.
  static EventLog* process_events = new EventLog();  // leaked: program scope
  events_ = process_events;
}

TelemetryContext::~TelemetryContext() = default;

TelemetryContext& TelemetryContext::Process() {
  static TelemetryContext* process =
      new TelemetryContext(ProcessTag{});  // leaked: outlives thread-locals
  return *process;
}

TelemetryContext& CurrentTelemetry() {
  TelemetryContext* ambient = CurrentAmbientTelemetry().context;
  return ambient != nullptr ? *ambient : TelemetryContext::Process();
}

MetricsRegistry& CurrentMetrics() {
  MetricsRegistry* ambient = CurrentAmbientTelemetry().metrics;
  return ambient != nullptr ? *ambient : MetricsRegistry::Global();
}

EventLog& CurrentEventLog() {
  EventLog* ambient = CurrentAmbientTelemetry().events;
  return ambient != nullptr ? *ambient : TelemetryContext::Process().events();
}

TelemetryScope::TelemetryScope(TelemetryContext& context)
    : saved_(ExchangeAmbientTelemetry(AmbientTelemetry{
          &context, &context.metrics(), &context.tracer(), &context.events(),
          &context.memtrack()})) {}

TelemetryScope::~TelemetryScope() { ExchangeAmbientTelemetry(saved_); }

}  // namespace fastt
