#include "obs/ambient.h"

namespace fastt {
namespace {

AmbientTelemetry& Slot() {
  thread_local AmbientTelemetry slot;
  return slot;
}

}  // namespace

const AmbientTelemetry& CurrentAmbientTelemetry() { return Slot(); }

AmbientTelemetry ExchangeAmbientTelemetry(const AmbientTelemetry& bundle) {
  AmbientTelemetry& slot = Slot();
  const AmbientTelemetry previous = slot;
  slot = bundle;
  return previous;
}

}  // namespace fastt
