// Schedule analysis: turns a simulated run (SimResult) into the quantities
// the paper's argument is actually about — where the realized critical path
// runs, how much of each device's time is pipeline bubble, which ops and
// transfers the makespan is made of, and how contended each interconnect
// link was. "It's the Critical Path!" (Mayer et al.) makes the case that
// this structure, not a single scalar, is how scheduling quality should be
// judged; this module extracts it from any schedule the simulator executes.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "sim/cluster.h"
#include "sim/exec_sim.h"

namespace fastt {

// One segment of the realized critical path. The path is gap-free by
// construction: op (kernel) and transfer segments are joined by explicit
// wait segments (executor dispatch delay, channel queueing, link latency
// attributed to the consumer side), so segment durations sum exactly to the
// makespan — the invariant the tests assert.
struct CriticalPathSegment {
  enum class Kind { kOp, kTransfer, kWait };
  Kind kind = Kind::kOp;
  // kOp: the op itself. kTransfer: the consumer op. kWait: the op whose
  // start the wait precedes (kInvalidOp for transfer-internal waits).
  OpId op = kInvalidOp;
  OpId src_op = kInvalidOp;  // kTransfer: producer op
  DeviceId device = kInvalidDevice;
  DeviceId src_device = kInvalidDevice;  // kTransfer only
  int64_t bytes = 0;                     // kTransfer only
  double start = 0.0;
  double finish = 0.0;
  double duration() const { return finish - start; }
};

// Per-device busy/idle decomposition over [0, makespan].
struct DeviceBreakdown {
  DeviceId device = kInvalidDevice;
  int num_ops = 0;
  double busy_s = 0.0;
  double idle_s = 0.0;
  double utilization = 0.0;     // busy_s / makespan
  double bubble_fraction = 0.0; // idle_s / makespan; utilization + this = 1
  int num_bubbles = 0;          // idle gaps (incl. leading/trailing)
  double longest_bubble_s = 0.0;
  int64_t peak_memory_bytes = 0;
};

// Aggregate critical-path contribution of one op (an op can appear once).
struct OpContribution {
  OpId op = kInvalidOp;
  std::string name;
  DeviceId device = kInvalidDevice;
  double seconds = 0.0;
  double share = 0.0;  // seconds / makespan
};

// One critical-path transfer (at most one entry per physical copy).
struct TransferContribution {
  OpId src_op = kInvalidOp;
  std::string name;  // producer op name
  DeviceId src = kInvalidDevice;
  DeviceId dst = kInvalidDevice;
  int64_t bytes = 0;
  double seconds = 0.0;
  double share = 0.0;
};

// All traffic carried by one directed device pair during the run.
struct LinkStat {
  DeviceId src = kInvalidDevice;
  DeviceId dst = kInvalidDevice;
  int num_transfers = 0;
  int64_t bytes = 0;
  double busy_s = 0.0;           // sum of transfer durations
  double achieved_bandwidth = 0.0;  // bytes / busy_s
};

struct ScheduleAnalysis {
  double makespan = 0.0;
  double total_compute_s = 0.0;
  double total_memcpy_s = 0.0;
  bool oom = false;
  std::vector<CriticalPathSegment> critical_path;
  double cp_op_s = 0.0;        // path seconds inside kernels
  double cp_transfer_s = 0.0;  // path seconds inside transfers
  double cp_wait_s = 0.0;      // path seconds idle/queueing
  std::vector<DeviceBreakdown> devices;
  std::vector<OpContribution> top_ops;              // descending seconds
  std::vector<TransferContribution> top_transfers;  // descending seconds
  std::vector<LinkStat> links;                      // descending busy_s
};

// Analyzes a finished simulation of `g` on `cluster`.
ScheduleAnalysis AnalyzeSchedule(const Graph& g, const SimResult& sim,
                                 const Cluster& cluster);

// Human-readable report (TablePrinter tables), showing the top_k entries of
// each ranked section.
std::string RenderScheduleAnalysis(const Graph& g, const ScheduleAnalysis& a,
                                   int top_k = 5);

// Machine-readable export of the full analysis.
std::string ScheduleAnalysisToJson(const Graph& g,
                                   const ScheduleAnalysis& a);

}  // namespace fastt
