// Request-scoped telemetry: one handle bundling the four observability
// facilities (metrics registry, tracer, event log, memory-tracker view) so
// concurrent placement requests in a long-running service keep their
// telemetry apart instead of smearing it into the process-global namespace.
//
// A TelemetryContext owns a fresh MetricsRegistry, Tracer and EventLog.
// The MemTracker member is a *view* of the process tracker, not a fresh
// instance: heap accounting is physical (one heap per process), so contexts
// share it and a request-scoped figure is taken as a before/after delta.
//
// TelemetryScope installs a context as the calling thread's ambient
// bindings (obs/ambient.h) for its lifetime — the same RAII discipline as
// MemTagScope. Everything instrumented with the FASTT_* macros or
// CurrentMetrics()/CurrentTracer()/CurrentEventLog() then lands in that
// context, including work fanned out through ParallelFor: the thread pool
// captures the submitting thread's bindings and installs them around every
// chunk a worker executes. With no scope installed, everything resolves to
// TelemetryContext::Process() — the process-global singletons — so existing
// call sites work unchanged.
//
// Contexts are not internally synchronized against their own destruction:
// a context must outlive every scope that installs it and any pool work
// submitted under such a scope.
#pragma once

#include <memory>

#include "obs/ambient.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "util/memtrack.h"

namespace fastt {

class TelemetryContext {
 public:
  // A fresh, fully isolated context: its own registry, tracer and event
  // log, sharing the process MemTracker (see the header comment).
  TelemetryContext();
  ~TelemetryContext();
  TelemetryContext(const TelemetryContext&) = delete;
  TelemetryContext& operator=(const TelemetryContext&) = delete;

  // The default context wrapping the process-global facilities; what every
  // call site resolves to outside any TelemetryScope.
  static TelemetryContext& Process();

  MetricsRegistry& metrics() const { return *metrics_; }
  Tracer& tracer() const { return *tracer_; }
  EventLog& events() const { return *events_; }
  MemTracker& memtrack() const { return *memtrack_; }

  bool is_process() const { return owned_metrics_ == nullptr; }

 private:
  struct ProcessTag {};
  explicit TelemetryContext(ProcessTag);

  std::unique_ptr<MetricsRegistry> owned_metrics_;  // null for Process()
  std::unique_ptr<Tracer> owned_tracer_;
  std::unique_ptr<EventLog> owned_events_;
  MetricsRegistry* metrics_ = nullptr;
  Tracer* tracer_ = nullptr;
  EventLog* events_ = nullptr;
  MemTracker* memtrack_ = nullptr;
};

// The calling thread's active context: the innermost installed
// TelemetryScope's context, else TelemetryContext::Process().
TelemetryContext& CurrentTelemetry();

// The event log ambient writers append to. The process context's log is a
// real (initially empty) EventLog, so logging works outside any scope too.
EventLog& CurrentEventLog();

// RAII: installs `context` as the calling thread's ambient telemetry for
// the scope's lifetime and restores the previous bindings on exit. Scopes
// nest; the innermost wins.
class TelemetryScope {
 public:
  explicit TelemetryScope(TelemetryContext& context);
  ~TelemetryScope();
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  AmbientTelemetry saved_;
};

}  // namespace fastt
