#include "obs/calibration.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "obs/json.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace fastt {
namespace {

constexpr size_t kPostmortemTopK = 5;

ErrorStats StatsOverAbsRelErrors(std::vector<double> abs_rel) {
  ErrorStats stats;
  stats.n = static_cast<int>(abs_rel.size());
  if (abs_rel.empty()) return stats;
  const SampleStats s = ComputeSampleStats(std::move(abs_rel));
  stats.max = s.max;
  stats.p90 = s.p90;
  stats.p50 = s.p50;
  return stats;
}

std::string Pct(double x) {
  if (!std::isfinite(x)) return "-";
  return StrFormat("%.1f%%", 100.0 * x);
}

std::string Route(DeviceId src, DeviceId dst) {
  return StrFormat("gpu%d->gpu%d", src, dst);
}

const char* Decision(const CalibrationRound& r) {
  return r.committed ? "commit" : r.oom ? "rollback (OOM)" : "rollback (slower)";
}

std::string MarginCell(const StabilityStats& s) {
  if (s.new_entries) return "new entries";
  return StrFormat("%+.3f", s.margin);
}

}  // namespace

CalibrationRound ComputeCalibration(const Graph& g,
                                    const std::vector<double>& predicted_op_s,
                                    const std::vector<DeviceId>& placement,
                                    const CommCostModel& comm_before,
                                    const SimResult& realized) {
  CalibrationRound cal;

  // ---- computation: per-op join -------------------------------------------
  std::vector<double> comp_abs_rel;
  for (OpId id : g.LiveOps()) {
    const size_t slot = static_cast<size_t>(id);
    if (slot >= realized.op_records.size() ||
        realized.op_records[slot].device == kInvalidDevice)
      continue;
    OpResidual r;
    r.name = g.op(id).name;
    r.device = slot < placement.size() ? placement[slot] : kInvalidDevice;
    r.predicted_s = slot < predicted_op_s.size() ? predicted_op_s[slot] : 0.0;
    r.realized_s = realized.op_records[slot].duration();
    r.abs_err_s = std::fabs(r.predicted_s - r.realized_s);
    r.rel_err = r.realized_s > 0.0
                    ? (r.predicted_s - r.realized_s) / r.realized_s
                    : 0.0;
    if (r.realized_s > 0.0) comp_abs_rel.push_back(std::fabs(r.rel_err));
    cal.residuals.push_back(std::move(r));
  }
  cal.comp = StatsOverAbsRelErrors(std::move(comp_abs_rel));

  // ---- communication: per-transfer join -----------------------------------
  std::vector<double> comm_abs_rel;
  struct PairAgg {
    int n = 0;
    double sum_rel = 0.0;
  };
  std::map<std::pair<DeviceId, DeviceId>, PairAgg> per_pair;
  for (const TransferRecord& t : realized.transfers) {
    CommResidual r;
    r.src = t.src;
    r.dst = t.dst;
    r.bytes = t.bytes;
    r.predicted_s = comm_before.Estimate(t.src, t.dst, t.bytes);
    r.realized_s = t.duration();
    r.rel_err = r.realized_s > 0.0
                    ? (r.predicted_s - r.realized_s) / r.realized_s
                    : 0.0;
    if (r.realized_s > 0.0) {
      comm_abs_rel.push_back(std::fabs(r.rel_err));
      PairAgg& agg = per_pair[{t.src, t.dst}];
      ++agg.n;
      agg.sum_rel += std::fabs(r.rel_err);
    }
    cal.comm_residuals.push_back(r);
  }
  cal.comm = StatsOverAbsRelErrors(std::move(comm_abs_rel));

  // ---- per-pair regression diagnostics ------------------------------------
  for (const std::pair<DeviceId, DeviceId>& pair : comm_before.KnownPairs()) {
    const auto fit = comm_before.Fit(pair.first, pair.second);
    if (!fit) continue;
    CommPairFitRecord rec;
    rec.src = pair.first;
    rec.dst = pair.second;
    rec.intercept_s = fit->intercept;
    rec.slope_s_per_byte = fit->slope;
    rec.r2 = fit->r2;
    rec.samples = static_cast<int64_t>(fit->samples);
    auto it = per_pair.find(pair);
    if (it != per_pair.end()) {
      rec.round_transfers = it->second.n;
      rec.mean_rel_err = it->second.sum_rel / it->second.n;
    }
    cal.pairs.push_back(rec);
  }

  // ---- post-mortem candidates ---------------------------------------------
  std::vector<OpResidual> worst = cal.residuals;
  std::sort(worst.begin(), worst.end(),
            [](const OpResidual& a, const OpResidual& b) {
              if (a.abs_err_s != b.abs_err_s) return a.abs_err_s > b.abs_err_s;
              return a.name < b.name;
            });
  if (worst.size() > kPostmortemTopK) worst.resize(kPostmortemTopK);
  cal.postmortem.top_mispredicted = std::move(worst);
  return cal;
}

std::string RenderCalibrationSummary(
    const std::vector<CalibrationRound>& rounds) {
  TablePrinter table({"round", "comp p50", "comp p90", "comp max", "comm p50",
                      "comm p90", "stab margin", "decision"});
  for (const CalibrationRound& r : rounds)
    table.AddRow({StrFormat("%d", r.round), Pct(r.comp.p50), Pct(r.comp.p90),
                  Pct(r.comp.max), Pct(r.comm.p50), Pct(r.comm.p90),
                  MarginCell(r.stability), Decision(r)});
  return table.Render();
}

std::string RenderCalibrationReport(
    const std::vector<CalibrationRound>& rounds) {
  std::string out = "cost-model calibration (predicted vs realized, per "
                    "pre-training round):\n";
  out += RenderCalibrationSummary(rounds);

  // Makespan-level view: the error the rollback rule actually acts on.
  out += "\nround makespans:\n";
  TablePrinter mk({"round", "predicted", "measured", "rel err", "ops joined",
                   "transfers"});
  for (const CalibrationRound& r : rounds)
    mk.AddRow({StrFormat("%d", r.round),
               StrFormat("%.3f ms", r.predicted_makespan_s * 1e3),
               StrFormat("%.3f ms", r.measured_makespan_s * 1e3),
               StrFormat("%+.1f%%", 100.0 * r.makespan_rel_err),
               StrFormat("%d", r.comp.n), StrFormat("%d", r.comm.n)});
  out += mk.Render();

  // Comm-regression fits of the last round, with drift vs. the previous
  // round's parameters: a stable search should show slopes converging.
  if (!rounds.empty() && !rounds.back().pairs.empty()) {
    const CalibrationRound& last = rounds.back();
    const std::vector<CommPairFitRecord>* prev = nullptr;
    if (rounds.size() >= 2) prev = &rounds[rounds.size() - 2].pairs;
    out += StrFormat("\ncomm regressions (round %d):\n", last.round);
    TablePrinter pairs({"route", "intercept", "slope", "R2", "samples",
                       "round err", "slope drift"});
    for (const CommPairFitRecord& p : last.pairs) {
      std::string drift = "-";
      if (prev) {
        for (const CommPairFitRecord& q : *prev) {
          if (q.src != p.src || q.dst != p.dst) continue;
          if (q.slope_s_per_byte != 0.0)
            drift = StrFormat("%+.1f%%",
                              100.0 * (p.slope_s_per_byte -
                                       q.slope_s_per_byte) /
                                  q.slope_s_per_byte);
          break;
        }
      }
      pairs.AddRow({Route(p.src, p.dst),
                    StrFormat("%.1f us", p.intercept_s * 1e6),
                    StrFormat("%.3f ns/KB", p.slope_s_per_byte * 1e9 * 1024),
                    StrFormat("%.4f", p.r2),
                    StrFormat("%lld", (long long)p.samples),
                    p.round_transfers > 0 ? Pct(p.mean_rel_err) : "-", drift});
    }
    out += pairs.Render();
  }

  // Rollback post-mortems: the mis-predictions behind each rejected round.
  for (const CalibrationRound& r : rounds) {
    if (!r.postmortem.rolled_back) continue;
    out += StrFormat("\nrollback post-mortem, round %d (%s): top "
                     "mis-predicted ops\n",
                     r.round, r.oom ? "OOM" : "slower than incumbent");
    TablePrinter top({"op", "device", "predicted", "realized", "abs err",
                      "rel err"});
    for (const OpResidual& o : r.postmortem.top_mispredicted)
      top.AddRow({o.name, StrFormat("gpu%d", o.device),
                  StrFormat("%.4f ms", o.predicted_s * 1e3),
                  StrFormat("%.4f ms", o.realized_s * 1e3),
                  StrFormat("%.4f ms", o.abs_err_s * 1e3),
                  StrFormat("%+.1f%%", 100.0 * o.rel_err)});
    out += top.Render();
  }
  return out;
}

std::string CalibrationToJson(const std::string& model,
                              const std::vector<CalibrationRound>& rounds) {
  JsonWriter w;
  w.BeginObject();
  w.Key("fastt_calibration").Int(1);
  w.Key("model").String(model);
  w.Key("rounds").BeginArray();
  for (const CalibrationRound& r : rounds) {
    w.BeginObject();
    w.Key("round").Int(r.round);
    w.Key("committed").Bool(r.committed);
    w.Key("oom").Bool(r.oom);
    w.Key("predicted_makespan_s").Number(r.predicted_makespan_s);
    w.Key("measured_makespan_s").Number(r.measured_makespan_s);
    w.Key("makespan_rel_err").Number(r.makespan_rel_err);
    auto stats = [&](const char* key, const ErrorStats& s) {
      w.Key(key).BeginObject();
      w.Key("n").Int(s.n);
      w.Key("p50").Number(s.p50);
      w.Key("p90").Number(s.p90);
      w.Key("max").Number(s.max);
      w.EndObject();
    };
    stats("comp_rel_err", r.comp);
    stats("comm_rel_err", r.comm);
    w.Key("stability").BeginObject();
    w.Key("entries").Int(r.stability.entries);
    w.Key("max_change").Number(r.stability.max_change);
    w.Key("mean_change").Number(r.stability.mean_change);
    w.Key("stddev_change").Number(r.stability.stddev_change);
    w.Key("tolerance").Number(r.stability.tolerance);
    w.Key("margin").Number(r.stability.margin);
    w.Key("new_entries").Bool(r.stability.new_entries);
    w.Key("stable_rounds").Int(r.stability.stable_rounds);
    w.Key("patience").Int(r.stability.patience);
    w.EndObject();
    w.Key("residuals").BeginArray();
    for (const OpResidual& o : r.residuals) {
      w.BeginObject();
      w.Key("op").String(o.name);
      w.Key("device").Int(o.device);
      w.Key("predicted_s").Number(o.predicted_s);
      w.Key("realized_s").Number(o.realized_s);
      w.Key("rel_err").Number(o.rel_err);
      w.EndObject();
    }
    w.EndArray();
    w.Key("comm_residuals").BeginArray();
    for (const CommResidual& c : r.comm_residuals) {
      w.BeginObject();
      w.Key("src").Int(c.src);
      w.Key("dst").Int(c.dst);
      w.Key("bytes").Int(c.bytes);
      w.Key("predicted_s").Number(c.predicted_s);
      w.Key("realized_s").Number(c.realized_s);
      w.Key("rel_err").Number(c.rel_err);
      w.EndObject();
    }
    w.EndArray();
    w.Key("pairs").BeginArray();
    for (const CommPairFitRecord& p : r.pairs) {
      w.BeginObject();
      w.Key("src").Int(p.src);
      w.Key("dst").Int(p.dst);
      w.Key("intercept_s").Number(p.intercept_s);
      w.Key("slope_s_per_byte").Number(p.slope_s_per_byte);
      w.Key("r2").Number(p.r2);
      w.Key("samples").Int(p.samples);
      w.Key("round_transfers").Int(p.round_transfers);
      w.Key("mean_rel_err").Number(p.mean_rel_err);
      w.EndObject();
    }
    w.EndArray();
    w.Key("postmortem").BeginObject();
    w.Key("rolled_back").Bool(r.postmortem.rolled_back);
    w.Key("oom").Bool(r.postmortem.oom);
    w.Key("top_mispredicted").BeginArray();
    for (const OpResidual& o : r.postmortem.top_mispredicted) {
      w.BeginObject();
      w.Key("op").String(o.name);
      w.Key("device").Int(o.device);
      w.Key("predicted_s").Number(o.predicted_s);
      w.Key("realized_s").Number(o.realized_s);
      w.Key("abs_err_s").Number(o.abs_err_s);
      w.Key("rel_err").Number(o.rel_err);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace fastt
