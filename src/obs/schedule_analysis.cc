#include "obs/schedule_analysis.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "obs/json.h"
#include "util/check.h"
#include "util/strings.h"
#include "util/table.h"

namespace fastt {
namespace {

using Kind = CriticalPathSegment::Kind;

// Times on the path come from one simulation, so equal bounds compare equal
// exactly in the common case; the epsilon only absorbs double summation
// noise in derived quantities.
constexpr double kEps = 1e-12;

struct Candidate {
  enum What { kNone, kOccupancy, kProducer, kTransfer } what = kNone;
  double time = -1.0;
  OpId op = kInvalidOp;             // producer / occupancy predecessor
  const TransferRecord* transfer = nullptr;
};

// Extracts the realized critical path, gap-free from t = 0 to the makespan:
// walk back from the op finishing last, at each step following whichever
// constraint bound the current op's start — the previous kernel on its
// device (occupancy), a same-device producer, or an incoming transfer — and
// materializing any slack between bound and start as an explicit wait.
std::vector<CriticalPathSegment> ExtractCriticalPath(
    const Graph& g, const SimResult& sim,
    const std::vector<DeviceId>& placement_by_record) {
  std::vector<CriticalPathSegment> rev;
  if (sim.op_records.empty()) return rev;

  // Ops per device ordered by finish time (devices are serial engines).
  std::map<DeviceId, std::vector<const OpRecord*>> by_device;
  OpId last = kInvalidOp;
  for (const OpRecord& rec : sim.op_records) {
    if (rec.device == kInvalidDevice) continue;
    by_device[rec.device].push_back(&rec);
    if (last == kInvalidOp ||
        rec.finish > sim.op_records[static_cast<size_t>(last)].finish)
      last = rec.op;
  }
  if (last == kInvalidOp) return rev;
  for (auto& [d, recs] : by_device)
    std::sort(recs.begin(), recs.end(),
              [](const OpRecord* a, const OpRecord* b) {
                return a->finish < b->finish;
              });

  // Physical copies by (producer, destination device): TF rendezvous sends a
  // tensor once per destination, so aliased consumers must look the carrying
  // record up by producer rather than by their own op id.
  std::map<std::pair<OpId, DeviceId>, const TransferRecord*> copy_of;
  for (const TransferRecord& t : sim.transfers)
    copy_of[{t.src_op, t.dst}] = &t;

  std::unordered_set<OpId> visited;
  OpId cur = last;
  {
    const OpRecord& rec = sim.op_records[static_cast<size_t>(cur)];
    rev.push_back({Kind::kOp, cur, kInvalidOp, rec.device, kInvalidDevice, 0,
                   rec.start, rec.finish});
    visited.insert(cur);
  }
  double t = sim.op_records[static_cast<size_t>(cur)].start;

  const size_t step_limit = sim.op_records.size() + sim.transfers.size() + 4;
  for (size_t step = 0; step < step_limit && t > kEps; ++step) {
    const OpRecord& rec = sim.op_records[static_cast<size_t>(cur)];
    const DeviceId d = rec.device;

    Candidate best;
    auto consider = [&](const Candidate& c) {
      // Prefer the latest bound; on ties prefer transfers, then producers,
      // whose chains carry more structure than bare occupancy.
      if (c.time > best.time + kEps ||
          (c.time > best.time - kEps && c.what > best.what))
        best = c;
    };

    for (EdgeId e : g.in_edges(cur)) {
      const Edge& edge = g.edge(e);
      if (edge.dead || g.op(edge.src).dead) continue;
      const DeviceId pd = placement_by_record[static_cast<size_t>(edge.src)];
      const OpRecord& prec = sim.op_records[static_cast<size_t>(edge.src)];
      if (pd == d) {
        if (!visited.count(edge.src) && prec.finish <= t + kEps)
          consider({Candidate::kProducer, prec.finish, edge.src, nullptr});
      } else if (auto it = copy_of.find({edge.src, d});
                 it != copy_of.end()) {
        const TransferRecord* tr = it->second;
        if (!visited.count(edge.src) && tr->arrival <= t + kEps)
          consider({Candidate::kTransfer, tr->arrival, edge.src, tr});
      }
    }
    {
      // Latest unvisited kernel on this device finishing at or before t.
      const auto& recs = by_device[d];
      for (auto it = recs.rbegin(); it != recs.rend(); ++it) {
        if ((*it)->finish > t + kEps) continue;
        if (visited.count((*it)->op)) continue;
        consider({Candidate::kOccupancy, (*it)->finish, (*it)->op, nullptr});
        break;
      }
    }

    if (best.what == Candidate::kNone) {
      // Entry op: everything before it is executor-startup wait.
      rev.push_back({Kind::kWait, cur, kInvalidOp, d, kInvalidDevice, 0, 0.0,
                     t});
      t = 0.0;
      break;
    }

    if (t - best.time > kEps)
      rev.push_back({Kind::kWait, cur, kInvalidOp, d, kInvalidDevice, 0,
                     best.time, t});

    if (best.what == Candidate::kTransfer) {
      const TransferRecord* tr = best.transfer;
      rev.push_back({Kind::kTransfer, cur, tr->src_op, tr->dst, tr->src,
                     tr->bytes, tr->start, tr->arrival});
      const OpRecord& prec = sim.op_records[static_cast<size_t>(tr->src_op)];
      if (tr->start - prec.finish > kEps)
        // Copy-engine queueing between the producer finishing and the
        // channel picking the tensor up.
        rev.push_back({Kind::kWait, kInvalidOp, tr->src_op, tr->src,
                       kInvalidDevice, 0, prec.finish, tr->start});
      cur = tr->src_op;
    } else {
      cur = best.op;
    }
    const OpRecord& nrec = sim.op_records[static_cast<size_t>(cur)];
    rev.push_back({Kind::kOp, cur, kInvalidOp, nrec.device, kInvalidDevice, 0,
                   nrec.start, nrec.finish});
    visited.insert(cur);
    t = nrec.start;
  }
  if (t > kEps)
    rev.push_back({Kind::kWait, cur, kInvalidOp,
                   sim.op_records[static_cast<size_t>(cur)].device,
                   kInvalidDevice, 0, 0.0, t});

  std::reverse(rev.begin(), rev.end());
  return rev;
}

std::string SegmentName(const Graph& g, const CriticalPathSegment& s) {
  switch (s.kind) {
    case Kind::kOp:
      return g.op(s.op).name;
    case Kind::kTransfer:
      return StrFormat("%s -> GPU%d", g.op(s.src_op).name.c_str(), s.device);
    case Kind::kWait:
      return "(wait)";
  }
  return "";
}

std::string Route(DeviceId src, DeviceId dst) {
  return StrFormat("GPU%d -> GPU%d", src, dst);
}

}  // namespace

ScheduleAnalysis AnalyzeSchedule(const Graph& g, const SimResult& sim,
                                 const Cluster& cluster) {
  ScheduleAnalysis a;
  a.makespan = sim.makespan;
  a.total_compute_s = sim.total_compute_s;
  a.total_memcpy_s = sim.total_memcpy_s;
  a.oom = sim.oom;

  // The sim records placements in op_records; reconstruct the per-slot
  // device vector the path extractor wants.
  std::vector<DeviceId> placement(sim.op_records.size(), kInvalidDevice);
  for (const OpRecord& rec : sim.op_records)
    if (rec.device != kInvalidDevice)
      placement[static_cast<size_t>(rec.op)] = rec.device;

  a.critical_path = ExtractCriticalPath(g, sim, placement);
  for (const CriticalPathSegment& s : a.critical_path) {
    switch (s.kind) {
      case Kind::kOp: a.cp_op_s += s.duration(); break;
      case Kind::kTransfer: a.cp_transfer_s += s.duration(); break;
      case Kind::kWait: a.cp_wait_s += s.duration(); break;
    }
  }

  // ---- per-device busy/bubble decomposition -------------------------------
  const int32_t n_dev = cluster.num_devices();
  a.devices.resize(static_cast<size_t>(n_dev));
  std::vector<std::vector<const OpRecord*>> recs(static_cast<size_t>(n_dev));
  for (const OpRecord& rec : sim.op_records)
    if (rec.device != kInvalidDevice)
      recs[static_cast<size_t>(rec.device)].push_back(&rec);
  for (DeviceId d = 0; d < n_dev; ++d) {
    DeviceBreakdown& db = a.devices[static_cast<size_t>(d)];
    db.device = d;
    auto& r = recs[static_cast<size_t>(d)];
    std::sort(r.begin(), r.end(), [](const OpRecord* x, const OpRecord* y) {
      return x->start < y->start;
    });
    db.num_ops = static_cast<int>(r.size());
    db.busy_s = d < static_cast<DeviceId>(sim.device_busy_s.size())
                    ? sim.device_busy_s[static_cast<size_t>(d)]
                    : 0.0;
    db.idle_s = std::max(0.0, a.makespan - db.busy_s);
    if (a.makespan > 0.0) {
      db.utilization = db.busy_s / a.makespan;
      db.bubble_fraction = 1.0 - db.utilization;
    }
    double cursor = 0.0;
    auto gap = [&](double until) {
      if (until - cursor > kEps) {
        ++db.num_bubbles;
        db.longest_bubble_s = std::max(db.longest_bubble_s, until - cursor);
      }
    };
    for (const OpRecord* rec : r) {
      gap(rec->start);
      cursor = std::max(cursor, rec->finish);
    }
    gap(a.makespan);
    if (d < static_cast<DeviceId>(sim.peak_memory.size()))
      db.peak_memory_bytes = sim.peak_memory[static_cast<size_t>(d)];
  }

  // ---- ranked critical-path contributors ----------------------------------
  std::map<OpId, double> op_seconds;
  for (const CriticalPathSegment& s : a.critical_path) {
    if (s.kind == Kind::kOp) op_seconds[s.op] += s.duration();
    if (s.kind == Kind::kTransfer)
      a.top_transfers.push_back({s.src_op, g.op(s.src_op).name, s.src_device,
                                 s.device, s.bytes, s.duration(),
                                 a.makespan > 0 ? s.duration() / a.makespan
                                                : 0.0});
  }
  for (const auto& [op, seconds] : op_seconds)
    a.top_ops.push_back({op, g.op(op).name, placement[static_cast<size_t>(op)],
                         seconds,
                         a.makespan > 0 ? seconds / a.makespan : 0.0});
  std::sort(a.top_ops.begin(), a.top_ops.end(),
            [](const OpContribution& x, const OpContribution& y) {
              if (x.seconds != y.seconds) return x.seconds > y.seconds;
              return x.op < y.op;
            });
  std::sort(a.top_transfers.begin(), a.top_transfers.end(),
            [](const TransferContribution& x, const TransferContribution& y) {
              if (x.seconds != y.seconds) return x.seconds > y.seconds;
              return x.src_op < y.src_op;
            });

  // ---- link traffic -------------------------------------------------------
  std::map<std::pair<DeviceId, DeviceId>, LinkStat> links;
  for (const TransferRecord& t : sim.transfers) {
    LinkStat& l = links[{t.src, t.dst}];
    l.src = t.src;
    l.dst = t.dst;
    ++l.num_transfers;
    l.bytes += t.bytes;
    l.busy_s += t.duration();
  }
  for (auto& [key, l] : links) {
    if (l.busy_s > 0.0)
      l.achieved_bandwidth = static_cast<double>(l.bytes) / l.busy_s;
    a.links.push_back(l);
  }
  std::sort(a.links.begin(), a.links.end(),
            [](const LinkStat& x, const LinkStat& y) {
              return x.busy_s > y.busy_s;
            });
  return a;
}

std::string RenderScheduleAnalysis(const Graph& g, const ScheduleAnalysis& a,
                                   int top_k) {
  std::string out;
  const double ms = a.makespan;
  auto pct = [&](double s) {
    return ms > 0 ? StrFormat("%.1f%%", 100.0 * s / ms) : std::string("-");
  };
  out += StrFormat("makespan %s   (sum compute %s, sum memcpy %s)%s\n",
                   HumanSeconds(ms).c_str(),
                   HumanSeconds(a.total_compute_s).c_str(),
                   HumanSeconds(a.total_memcpy_s).c_str(),
                   a.oom ? "   ** OOM **" : "");
  out += StrFormat(
      "critical path: %zu segments = kernels %s (%s) + transfers %s (%s) + "
      "waits %s (%s)\n\n",
      a.critical_path.size(), HumanSeconds(a.cp_op_s).c_str(),
      pct(a.cp_op_s).c_str(), HumanSeconds(a.cp_transfer_s).c_str(),
      pct(a.cp_transfer_s).c_str(), HumanSeconds(a.cp_wait_s).c_str(),
      pct(a.cp_wait_s).c_str());

  TablePrinter devices(
      {"device", "ops", "busy", "util", "bubble", "#bubbles",
       "longest bubble", "peak mem"});
  for (const DeviceBreakdown& d : a.devices)
    devices.AddRow({StrFormat("GPU%d", d.device), StrFormat("%d", d.num_ops),
                    HumanSeconds(d.busy_s),
                    StrFormat("%.1f%%", 100.0 * d.utilization),
                    StrFormat("%.1f%%", 100.0 * d.bubble_fraction),
                    StrFormat("%d", d.num_bubbles),
                    HumanSeconds(d.longest_bubble_s),
                    HumanBytes(static_cast<double>(d.peak_memory_bytes))});
  out += "Per-device utilization:\n" + devices.Render();

  TablePrinter ops({"op", "device", "CP time", "share"});
  for (int i = 0; i < top_k && i < static_cast<int>(a.top_ops.size()); ++i) {
    const OpContribution& c = a.top_ops[static_cast<size_t>(i)];
    ops.AddRow({c.name, StrFormat("GPU%d", c.device), HumanSeconds(c.seconds),
                StrFormat("%.1f%%", 100.0 * c.share)});
  }
  out += StrFormat("\nTop %d ops by critical-path contribution:\n", top_k) +
         ops.Render();

  TablePrinter xfer({"tensor (producer)", "route", "bytes", "CP time",
                     "share"});
  for (int i = 0;
       i < top_k && i < static_cast<int>(a.top_transfers.size()); ++i) {
    const TransferContribution& c = a.top_transfers[static_cast<size_t>(i)];
    xfer.AddRow({c.name, Route(c.src, c.dst),
                 HumanBytes(static_cast<double>(c.bytes)),
                 HumanSeconds(c.seconds), StrFormat("%.1f%%", 100.0 * c.share)});
  }
  if (a.top_transfers.empty())
    out += "\nNo transfers on the critical path.\n";
  else
    out += StrFormat("\nTop %d critical-path transfers:\n", top_k) +
           xfer.Render();

  TablePrinter links({"route", "transfers", "bytes", "busy", "achieved bw"});
  for (int i = 0; i < top_k && i < static_cast<int>(a.links.size()); ++i) {
    const LinkStat& l = a.links[static_cast<size_t>(i)];
    links.AddRow({Route(l.src, l.dst), StrFormat("%d", l.num_transfers),
                  HumanBytes(static_cast<double>(l.bytes)),
                  HumanSeconds(l.busy_s),
                  StrFormat("%.2f GB/s", l.achieved_bandwidth / 1e9)});
  }
  if (!a.links.empty())
    out += "\nBusiest links:\n" + links.Render();
  (void)g;
  return out;
}

std::string ScheduleAnalysisToJson(const Graph& g,
                                   const ScheduleAnalysis& a) {
  JsonWriter w;
  w.BeginObject();
  w.Key("makespan_s").Number(a.makespan);
  w.Key("total_compute_s").Number(a.total_compute_s);
  w.Key("total_memcpy_s").Number(a.total_memcpy_s);
  w.Key("oom").Bool(a.oom);
  w.Key("critical_path").BeginObject();
  w.Key("op_s").Number(a.cp_op_s);
  w.Key("transfer_s").Number(a.cp_transfer_s);
  w.Key("wait_s").Number(a.cp_wait_s);
  w.Key("segments").BeginArray();
  for (const CriticalPathSegment& s : a.critical_path) {
    w.BeginObject();
    w.Key("kind").String(s.kind == Kind::kOp ? "op"
                         : s.kind == Kind::kTransfer ? "transfer" : "wait");
    w.Key("name").String(SegmentName(g, s));
    w.Key("device").Int(s.device);
    if (s.kind == Kind::kTransfer) {
      w.Key("src_device").Int(s.src_device);
      w.Key("bytes").Int(s.bytes);
    }
    w.Key("start_s").Number(s.start);
    w.Key("finish_s").Number(s.finish);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Key("devices").BeginArray();
  for (const DeviceBreakdown& d : a.devices) {
    w.BeginObject();
    w.Key("device").Int(d.device);
    w.Key("ops").Int(d.num_ops);
    w.Key("busy_s").Number(d.busy_s);
    w.Key("idle_s").Number(d.idle_s);
    w.Key("utilization").Number(d.utilization);
    w.Key("bubble_fraction").Number(d.bubble_fraction);
    w.Key("num_bubbles").Int(d.num_bubbles);
    w.Key("longest_bubble_s").Number(d.longest_bubble_s);
    w.Key("peak_memory_bytes").Int(d.peak_memory_bytes);
    w.EndObject();
  }
  w.EndArray();
  w.Key("top_ops").BeginArray();
  for (const OpContribution& c : a.top_ops) {
    w.BeginObject();
    w.Key("name").String(c.name);
    w.Key("device").Int(c.device);
    w.Key("seconds").Number(c.seconds);
    w.Key("share").Number(c.share);
    w.EndObject();
  }
  w.EndArray();
  w.Key("top_transfers").BeginArray();
  for (const TransferContribution& c : a.top_transfers) {
    w.BeginObject();
    w.Key("producer").String(c.name);
    w.Key("src").Int(c.src);
    w.Key("dst").Int(c.dst);
    w.Key("bytes").Int(c.bytes);
    w.Key("seconds").Number(c.seconds);
    w.Key("share").Number(c.share);
    w.EndObject();
  }
  w.EndArray();
  w.Key("links").BeginArray();
  for (const LinkStat& l : a.links) {
    w.BeginObject();
    w.Key("src").Int(l.src);
    w.Key("dst").Int(l.dst);
    w.Key("transfers").Int(l.num_transfers);
    w.Key("bytes").Int(l.bytes);
    w.Key("busy_s").Number(l.busy_s);
    w.Key("achieved_bandwidth").Number(l.achieved_bandwidth);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace fastt
