// OpenMetrics / Prometheus text exposition of a MetricsRegistry — the wire
// format a scraper (or the planned `fastt serve` /metrics endpoint) reads.
//
// Mapping, per the OpenMetrics text format:
//   * counters   -> `# TYPE <name> counter` with one `<name>_total` sample
//   * gauges     -> `# TYPE <name> gauge`
//   * timers     -> `# TYPE <name> summary` with `<name>_count` and
//                   `<name>_sum` (seconds)
//   * histograms -> `# TYPE <name> histogram` with cumulative `le` buckets
//                   (only the registry's non-empty buckets, plus the
//                   mandatory `le="+Inf"`), `<name>_sum` and `<name>_count`
// The exposition ends with the required `# EOF` line. Registry names like
// "dpos/latency_s" are sanitized to the metric-name charset and prefixed:
// "fastt_dpos_latency_s".
#pragma once

#include <string>

namespace fastt {

class MetricsRegistry;

// "fastt_" + `name` with every character outside [a-zA-Z0-9_:] replaced by
// '_' (exposed for tests).
std::string OpenMetricsName(const std::string& name);

// The full exposition for `registry`, terminated by "# EOF\n".
std::string OpenMetricsText(const MetricsRegistry& registry);

// Writes OpenMetricsText to `path`. Returns false on I/O failure.
bool WriteOpenMetrics(const std::string& path,
                      const MetricsRegistry& registry);

}  // namespace fastt
