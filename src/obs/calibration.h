// Cost-model calibration auditing — how wrong the cost models were.
//
// FastT's placements are only as good as its adaptive cost models, and the
// paper's rollback loop exists precisely because those models are wrong at
// first. This module quantifies the wrongness: after each simulated
// pre-training round it joins the scheduler's predicted per-op compute costs
// and per-edge transfer costs against the realized ExecSim timings of the
// profiled run, producing per-op residuals, relative-error histograms
// (p50/p90/max), per-device-pair regression diagnostics (intercept/slope/R²,
// so parameter drift across rounds is visible), the stability-detector
// window statistics, and — for rounds that rolled back — a post-mortem
// naming the top mis-predicted ops behind the rollback.
//
// The join is plain data in, plain data out: the caller (StrategyCalculator)
// supplies the candidate schedule's predicted per-slot durations, the
// communication model *as of the search* (snapshotted before the profiled
// steps update it), and one realized simulation of the round.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cost/comm_cost.h"
#include "cost/stability.h"
#include "graph/graph.h"
#include "sim/exec_sim.h"

namespace fastt {

// One op's predicted-vs-realized execution time.
struct OpResidual {
  std::string name;
  DeviceId device = kInvalidDevice;
  double predicted_s = 0.0;
  double realized_s = 0.0;
  double abs_err_s = 0.0;  // |predicted - realized|
  double rel_err = 0.0;    // (predicted - realized) / realized
};

// One realized transfer's predicted-vs-realized time. A predicted 0 on a
// fitted pair means the model priced the tensor at (numerically) nothing;
// on an unknown pair it is the paper's explore-at-zero rule showing up as
// a -100 % residual — honest, not a bug.
struct CommResidual {
  DeviceId src = kInvalidDevice;
  DeviceId dst = kInvalidDevice;
  int64_t bytes = 0;
  double predicted_s = 0.0;
  double realized_s = 0.0;
  double rel_err = 0.0;
};

// Histogram summary over |rel_err| of a residual population.
struct ErrorStats {
  int n = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
};

// Per-pair regression diagnostics at the time of the round's search, plus
// how well that fit priced the round's realized transfers.
struct CommPairFitRecord {
  DeviceId src = kInvalidDevice;
  DeviceId dst = kInvalidDevice;
  double intercept_s = 0.0;
  double slope_s_per_byte = 0.0;
  double r2 = 0.0;
  int64_t samples = 0;      // profiled transfers absorbed by the fit
  int round_transfers = 0;  // realized transfers joined this round
  double mean_rel_err = 0.0;
};

// Why a rolled-back round was mis-scheduled: the ops whose predictions were
// furthest from reality (descending absolute error).
struct RollbackPostmortem {
  bool rolled_back = false;
  bool oom = false;
  std::vector<OpResidual> top_mispredicted;
};

// Everything the calibration audit knows about one pre-training round.
struct CalibrationRound {
  int round = 0;  // 1-based, matching RoundSummary::round
  bool committed = false;
  bool oom = false;
  double predicted_makespan_s = 0.0;
  double measured_makespan_s = 0.0;
  double makespan_rel_err = 0.0;
  ErrorStats comp;  // per-op relative errors
  ErrorStats comm;  // per-transfer relative errors
  std::vector<OpResidual> residuals;  // every joined op, graph order
  std::vector<CommResidual> comm_residuals;
  std::vector<CommPairFitRecord> pairs;
  StabilityStats stability;
  RollbackPostmortem postmortem;
};

// Joins the candidate schedule's predictions against one realized run.
// `predicted_op_s` is indexed by slot (the candidate schedule's per-op
// durations); `comm_before` must be the model the scheduler consulted, i.e.
// snapshotted before this round's profiled steps updated it. Fills the
// residual tables, the error histograms, the pair diagnostics and the
// post-mortem candidates; the caller stamps round number, decision flags
// and stability stats.
CalibrationRound ComputeCalibration(const Graph& g,
                                    const std::vector<double>& predicted_op_s,
                                    const std::vector<DeviceId>& placement,
                                    const CommCostModel& comm_before,
                                    const SimResult& realized);

// Round-by-round text report: calibration summary table, per-pair fit drift
// and a post-mortem block per rolled-back round.
std::string RenderCalibrationReport(const std::vector<CalibrationRound>& rounds);

// One row per round (round, comp p50/p90/max, comm p50/p90, stability
// margin, decision) — the summary block `fastt analyze` embeds.
std::string RenderCalibrationSummary(
    const std::vector<CalibrationRound>& rounds);

// Machine-readable report: {"fastt_calibration": 1, "model": ...,
// "rounds": [...]} with full residual tables.
std::string CalibrationToJson(const std::string& model,
                              const std::vector<CalibrationRound>& rounds);

}  // namespace fastt
