#include "obs/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "obs/context.h"

namespace fastt {
namespace {

// -1: not yet resolved from the environment.
std::atomic<int> g_threshold{-1};
// True once the threshold was chosen on purpose (SetLogThreshold or a
// valid FASTT_LOG_LEVEL) — an explicit choice must not be overridden by
// EnsureLogThresholdAtLeast's courtesy raise.
std::atomic<bool> g_explicit{false};

int ResolveThreshold() {
  int level = g_threshold.load(std::memory_order_relaxed);
  if (level >= 0) return level;
  LogLevel parsed = LogLevel::kWarn;
  bool from_env = false;
  if (const char* env = std::getenv("FASTT_LOG_LEVEL")) {
    from_env = ParseLogLevel(env, &parsed);  // unknown value: keep default
  }
  // First resolver wins; a concurrent SetLogThreshold wins over us.
  int expected = -1;
  if (g_threshold.compare_exchange_strong(expected, static_cast<int>(parsed),
                                          std::memory_order_relaxed) &&
      from_env) {
    g_explicit.store(true, std::memory_order_relaxed);
  }
  return g_threshold.load(std::memory_order_relaxed);
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "unknown";
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  for (LogLevel level : {LogLevel::kError, LogLevel::kWarn, LogLevel::kInfo,
                         LogLevel::kDebug}) {
    if (text == LogLevelName(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

LogLevel LogThreshold() { return static_cast<LogLevel>(ResolveThreshold()); }

void SetLogThreshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
  g_explicit.store(true, std::memory_order_relaxed);
}

void EnsureLogThresholdAtLeast(LogLevel level) {
  const int current = ResolveThreshold();
  if (g_explicit.load(std::memory_order_relaxed)) return;
  if (static_cast<int>(level) > current)
    g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <= ResolveThreshold();
}

void LogMessage(LogLevel level, const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string msg;
  if (n > 0) {
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), format, args_copy);
    msg.assign(buf.data(), static_cast<size_t>(n));
  }
  va_end(args_copy);
  std::fprintf(stderr, "fastt [%s] %s\n", LogLevelName(level), msg.c_str());
  CurrentEventLog().Emit("log").Str("level", LogLevelName(level)).Str("msg",
                                                                      msg);
}

}  // namespace fastt
