#include "obs/prof_export.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/build_info.h"
#include "obs/json.h"
#include "util/strings.h"
#include "util/table.h"

namespace fastt {

namespace {

double Pct(uint64_t part, uint64_t total) {
  return total == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(total);
}

}  // namespace

std::string ProfileToJson(const SymbolizedProfile& prof,
                          const std::map<std::string, std::string>& params) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("fastt-prof/1");
  w.Key("build");
  WriteBuildInfo(w);
  w.Key("params").BeginObject();
  for (const auto& [k, v] : params) w.Key(k).String(v);
  w.EndObject();
  w.Key("hz").Int(prof.hz);
  w.Key("duration_s").Number(prof.duration_s);
  w.Key("samples").BeginObject();
  w.Key("total").Int(static_cast<int64_t>(prof.samples_total));
  w.Key("dropped").Int(static_cast<int64_t>(prof.samples_dropped));
  w.Key("span_attributed").Int(static_cast<int64_t>(prof.span_attributed));
  w.EndObject();
  w.Key("stacks").BeginArray();
  for (const ProfStackRow& row : prof.stacks) {
    w.BeginObject();
    w.Key("frames").BeginArray();
    for (const std::string& f : row.frames) w.String(f);
    w.EndArray();
    if (!row.span.empty()) w.Key("span").String(row.span);
    w.Key("count").Int(static_cast<int64_t>(row.count));
    w.EndObject();
  }
  w.EndArray();
  w.Key("frames").BeginArray();
  for (const ProfFrameRow& row : prof.frames) {
    w.BeginObject();
    w.Key("name").String(row.name);
    w.Key("self").Int(static_cast<int64_t>(row.self));
    w.Key("total").Int(static_cast<int64_t>(row.total));
    w.Key("self_pct").Number(Pct(row.self, prof.samples_total));
    w.Key("total_pct").Number(Pct(row.total, prof.samples_total));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string ProfileToFolded(const SymbolizedProfile& prof) {
  std::string out;
  for (const ProfStackRow& row : prof.stacks) {
    if (row.frames.empty()) continue;
    std::string line;
    for (size_t i = 0; i < row.frames.size(); ++i) {
      if (i > 0) line.push_back(';');
      line.append(row.frames[i]);
    }
    line.push_back(' ');
    line.append(std::to_string(row.count));
    line.push_back('\n');
    out.append(line);
  }
  return out;
}

std::string RenderProfileTable(const SymbolizedProfile& prof, int top_n) {
  std::ostringstream os;
  os << StrFormat(
      "cpu profile: %llu samples at %d Hz over %.2fs (%llu dropped), "
      "%.1f%% span-attributed\n",
      static_cast<unsigned long long>(prof.samples_total), prof.hz,
      prof.duration_s,
      static_cast<unsigned long long>(prof.samples_dropped),
      Pct(prof.span_attributed, prof.samples_total));
  TablePrinter table({"frame", "self", "self%", "total", "total%"});
  int rows = 0;
  for (const ProfFrameRow& row : prof.frames) {
    if (top_n > 0 && rows >= top_n) break;
    // Templated frames (std::_Hashtable<...>::find) can run to hundreds of
    // characters; keep the table readable. JSON/folded keep full names.
    std::string name = row.name;
    if (name.size() > 64) name = name.substr(0, 61) + "...";
    table.AddRow({name, std::to_string(row.self),
                  StrFormat("%.1f%%", Pct(row.self, prof.samples_total)),
                  std::to_string(row.total),
                  StrFormat("%.1f%%", Pct(row.total, prof.samples_total))});
    ++rows;
  }
  os << table.Render();
  return os.str();
}

bool ParseProfDoc(const std::string& json, ProfDoc* out, std::string* error) {
  JsonValue doc;
  if (!JsonParse(json, &doc, error)) return false;
  if (doc.Find("schema") == nullptr ||
      doc.Find("schema")->StringOr("") != "fastt-prof/1") {
    if (error != nullptr) *error = "not a fastt-prof/1 document";
    return false;
  }
  *out = ProfDoc();
  if (const JsonValue* params = doc.Find("params");
      params != nullptr && params->is_object()) {
    for (const auto& [k, v] : params->fields) out->params[k] = v.StringOr("");
  }
  out->hz = static_cast<int>(doc.Find("hz") ? doc.Find("hz")->IntOr(0) : 0);
  out->duration_s =
      doc.Find("duration_s") ? doc.Find("duration_s")->NumberOr(0.0) : 0.0;
  if (const JsonValue* samples = doc.Find("samples"); samples != nullptr) {
    auto u64 = [samples](const char* key) -> uint64_t {
      const JsonValue* v = samples->Find(key);
      const int64_t n = v != nullptr ? v->IntOr(0) : 0;
      return n > 0 ? static_cast<uint64_t>(n) : 0;
    };
    out->samples_total = u64("total");
    out->samples_dropped = u64("dropped");
    out->span_attributed = u64("span_attributed");
  }
  const JsonValue* frames = doc.Find("frames");
  if (frames == nullptr || !frames->is_array()) {
    if (error != nullptr) *error = "fastt-prof/1 document has no frames array";
    return false;
  }
  for (const JsonValue& f : frames->items) {
    ProfFrameRow row;
    row.name = f.Find("name") ? f.Find("name")->StringOr("") : "";
    if (row.name.empty()) continue;
    const int64_t self = f.Find("self") ? f.Find("self")->IntOr(0) : 0;
    const int64_t total = f.Find("total") ? f.Find("total")->IntOr(0) : 0;
    row.self = self > 0 ? static_cast<uint64_t>(self) : 0;
    row.total = total > 0 ? static_cast<uint64_t>(total) : 0;
    out->frames.push_back(std::move(row));
  }
  return true;
}

bool ReadProfDoc(const std::string& path, ProfDoc* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseProfDoc(buf.str(), out, error);
}

ProfDiffResult DiffProfiles(const ProfDoc& old_doc, const ProfDoc& new_doc,
                            const ProfDiffOptions& options) {
  ProfDiffResult result;
  std::map<std::string, double> old_share;
  for (const ProfFrameRow& f : old_doc.frames) {
    old_share[f.name] = Pct(f.self, old_doc.samples_total);
  }
  std::map<std::string, double> new_share;
  for (const ProfFrameRow& f : new_doc.frames) {
    new_share[f.name] = Pct(f.self, new_doc.samples_total);
  }

  const double warn_at = options.threshold_pp;
  const double hard_at = options.threshold_pp * options.hard_factor;
  const bool enough = old_doc.samples_total >= options.min_samples &&
                      new_doc.samples_total >= options.min_samples;

  auto classify = [&](const std::string& name, double old_pct,
                      double new_pct) {
    ProfDiffEntry entry;
    entry.frame = name;
    entry.old_self_pct = old_pct;
    entry.new_self_pct = new_pct;
    entry.delta_pp = new_pct - old_pct;
    if (entry.delta_pp >= hard_at && enough) {
      entry.verdict = ProfDiffEntry::Verdict::kHardRegression;
      ++result.hard_regressions;
    } else if (entry.delta_pp >= warn_at) {
      entry.verdict = ProfDiffEntry::Verdict::kWarn;
      ++result.warnings;
    } else if (entry.delta_pp <= -warn_at) {
      entry.verdict = ProfDiffEntry::Verdict::kImproved;
      ++result.improvements;
    } else {
      entry.verdict = ProfDiffEntry::Verdict::kOk;
    }
    result.entries.push_back(std::move(entry));
  };

  for (const auto& [name, old_pct] : old_share) {
    auto it = new_share.find(name);
    if (it == new_share.end()) {
      if (old_pct < options.min_share_pct) continue;
      ProfDiffEntry entry;
      entry.frame = name;
      entry.old_self_pct = old_pct;
      entry.delta_pp = -old_pct;
      entry.verdict = ProfDiffEntry::Verdict::kUnmatched;
      ++result.unmatched;
      result.entries.push_back(std::move(entry));
      continue;
    }
    if (old_pct < options.min_share_pct && it->second < options.min_share_pct)
      continue;
    classify(name, old_pct, it->second);
  }
  for (const auto& [name, new_pct] : new_share) {
    if (old_share.count(name) != 0) continue;
    if (new_pct < options.min_share_pct) continue;
    // A frame newly appearing hot is a regression candidate like any other:
    // its old share is 0.
    classify(name, 0.0, new_pct);
  }

  auto severity = [](const ProfDiffEntry& e) {
    switch (e.verdict) {
      case ProfDiffEntry::Verdict::kHardRegression: return 0;
      case ProfDiffEntry::Verdict::kWarn: return 1;
      case ProfDiffEntry::Verdict::kImproved: return 2;
      case ProfDiffEntry::Verdict::kOk: return 3;
      case ProfDiffEntry::Verdict::kUnmatched: return 4;
    }
    return 5;
  };
  std::stable_sort(result.entries.begin(), result.entries.end(),
                   [&severity](const ProfDiffEntry& a, const ProfDiffEntry& b) {
                     const int sa = severity(a), sb = severity(b);
                     if (sa != sb) return sa < sb;
                     return std::abs(a.delta_pp) > std::abs(b.delta_pp);
                   });
  return result;
}

std::string RenderProfDiff(const ProfDiffResult& result,
                           const ProfDiffOptions& options) {
  std::ostringstream os;
  TablePrinter table({"frame", "old self%", "new self%", "delta", "verdict"});
  const char* names[] = {"ok", "improved", "WARN", "HARD REGRESSION",
                         "unmatched"};
  int shown = 0;
  for (const ProfDiffEntry& e : result.entries) {
    if (e.verdict == ProfDiffEntry::Verdict::kOk && shown >= 20) continue;
    std::string frame = e.frame;
    if (frame.size() > 64) frame = frame.substr(0, 61) + "...";
    table.AddRow({frame, StrFormat("%.1f%%", e.old_self_pct),
                  StrFormat("%.1f%%", e.new_self_pct),
                  StrFormat("%+.1fpp", e.delta_pp),
                  names[static_cast<int>(e.verdict)]});
    ++shown;
  }
  os << table.Render();
  os << StrFormat(
      "prof-diff: %d hard regression(s), %d warning(s), %d improvement(s), "
      "%d unmatched (warn at +%.1fpp self-share, hard at +%.1fpp)\n",
      result.hard_regressions, result.warnings, result.improvements,
      result.unmatched, options.threshold_pp,
      options.threshold_pp * options.hard_factor);
  return os.str();
}

}  // namespace fastt
