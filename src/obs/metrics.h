// Process-wide metrics: named counters, gauges, accumulating timers and
// log-bucketed histograms with RAII scope helpers, exported as JSON.
//
// Everything FastT does — DPOS invocations, split probes, simulated runs,
// rollbacks — funnels through a handful of hot loops; the registry makes
// those loops observable without plumbing a context object through every
// call site. All operations are thread-safe (searchers and parallel probes
// bump counters concurrently); the maps use node-stable storage so handles
// returned once stay valid for the registry's lifetime, and Reset() zeroes
// values in place rather than erasing nodes, so a handle held across a
// Reset stays valid too.
//
// Timers answer "how much, in total"; histograms answer "how is it
// distributed" (p50/p90/p99) — use a histogram where a mean hides the story:
// probe latencies, allocation sizes.
//
// Typical use:
//   MetricsRegistry::Global().AddCounter("dpos/invocations");
//   { FASTT_SCOPED_TIMER("dpos/total"); ... }
//   MetricsRegistry::Global().RecordHistogram("osdpos/trial_latency_s", dt);
//   WriteMetricsJson("out.json", MetricsRegistry::Global());
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/memtrack.h"
#include "util/sync.h"

namespace fastt {

class EventLog;
struct JsonValue;

// ---- Histogram ------------------------------------------------------------

// Log2-bucketed distribution. Bucket 0 holds values <= 2^kHistMinExp;
// bucket i (0 < i < kHistBuckets-1) holds (2^(kHistMinExp+i-1),
// 2^(kHistMinExp+i)]; the last bucket is overflow. The range spans 2^-30
// (~1 ns latencies) through 2^48 (~256 TiB allocation sizes) so one scheme
// serves both uses.
inline constexpr int kHistMinExp = -30;
inline constexpr int kHistMaxExp = 48;
inline constexpr size_t kHistBuckets =
    static_cast<size_t>(kHistMaxExp - kHistMinExp) + 2;

// Bucket index for a value (pure; exact at power-of-two boundaries).
size_t HistogramBucket(double value);
// Inclusive upper bound of bucket `i` (+inf for the overflow bucket).
double HistogramBucketUpper(size_t i);

struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // meaningful only when count > 0
  double max = 0.0;
  std::vector<int64_t> buckets;  // kHistBuckets entries (empty when count==0)

  void Record(double value);
  // Pointwise sum of two histograms (counts add, min/max combine).
  void Merge(const HistogramSnapshot& other);

  double mean() const { return count > 0 ? sum / double(count) : 0.0; }
  // Quantile estimate with linear interpolation inside the bucket, clamped
  // to [min, max]; monotone in q. q in [0, 1].
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p90() const { return Quantile(0.90); }
  double p99() const { return Quantile(0.99); }

  // {"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,"p90":..,
  //  "p99":..,"buckets":[{"i":idx,"le":upper,"n":count},...]} — only
  // non-empty buckets are listed; `le` is null for the overflow bucket.
  std::string ToJson() const;
};

// Rebuilds a snapshot from its ToJson DOM. False on malformed input.
bool HistogramFromJson(const JsonValue& v, HistogramSnapshot* out);

// ---- Registry -------------------------------------------------------------

class MetricsRegistry {
 private:
  struct Timer;  // accumulated seconds + call count; defined below

 public:
  // The process-wide registry: the sink for instrumented library code when
  // no ambient TelemetryContext is installed (see CurrentMetrics below).
  // Separate instances can be created for tests and contexts.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // ---- Counters (monotonic int64) ----------------------------------------
  void AddCounter(const std::string& name, int64_t delta = 1);
  int64_t counter(const std::string& name) const;  // 0 if absent
  // Node-stable handle for hot instrumented code: bump it with relaxed
  // fetch_add and skip the name lookup. Valid for the registry's lifetime,
  // across Reset() included (Reset zeroes it in place).
  std::atomic<int64_t>& CounterRef(const std::string& name);

  // ---- Gauges (last-written double) --------------------------------------
  void SetGauge(const std::string& name, double value);
  double gauge(const std::string& name) const;  // 0 if absent

  // ---- Timers (accumulated seconds + call count) -------------------------
  void RecordTimer(const std::string& name, double seconds);
  double timer_total_s(const std::string& name) const;
  int64_t timer_count(const std::string& name) const;

  // Interned handles for hot instrumented paths: resolve the name once,
  // record through the handle with zero string construction, copying or
  // hashing afterwards. Like CounterRef, handles are node-stable for the
  // registry's lifetime, across Reset() included. A default-constructed
  // handle is null and must not be recorded through.
  class TimerHandle {
   public:
    TimerHandle() = default;

   private:
    friend class MetricsRegistry;
    Timer* cell_ = nullptr;
  };
  class HistogramHandle {
   public:
    HistogramHandle() = default;

   private:
    friend class MetricsRegistry;
    HistogramSnapshot* cell_ = nullptr;
  };
  TimerHandle TimerRef(const std::string& name);
  HistogramHandle HistogramRef(const std::string& name);
  void Record(TimerHandle handle, double seconds);
  void Record(HistogramHandle handle, double value);

  // ---- Histograms (log2 buckets, see HistogramSnapshot) ------------------
  void RecordHistogram(const std::string& name, double value);
  // Replaces the stored histogram wholesale — for republished snapshots
  // (PublishMemMetrics), the histogram analogue of SetGauge.
  void SetHistogram(const std::string& name, const HistogramSnapshot& snap);
  HistogramSnapshot histogram(const std::string& name) const;  // empty if absent

  // Zeroes every metric IN PLACE: names and node addresses survive, values
  // reset. Long-lived code holding a CounterRef keeps a valid (zeroed)
  // handle — erasing nodes here would dangle it.
  void Reset();

  // Point-in-time copy of everything, for exporters (OpenMetrics, reports)
  // that need structured values rather than the JSON string.
  struct TimerSnapshot {
    int64_t count = 0;
    double total_s = 0.0;
  };
  struct Snapshot {
    std::map<std::string, int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, TimerSnapshot> timers;
    std::map<std::string, HistogramSnapshot> histograms;
  };
  Snapshot TakeSnapshot() const;

  // {"counters": {...}, "gauges": {...},
  //  "timers": {"name": {"count": n, "total_s": t, "mean_s": m}},
  //  "histograms": {"name": {...HistogramSnapshot::ToJson...}}}
  std::string ToJson() const;

 private:
  struct Timer {
    int64_t count = 0;
    double total_s = 0.0;
  };
  // std::map: deterministic export order and node stability under insert.
  // Node storage is charged to MemTag::kObs explicitly (not the ambient
  // tag: registries are constructed and first-touched under arbitrary
  // scopes), so memtrack can assert the interned-handle hot path performs
  // no obs-tagged allocation.
  template <typename V>
  using TaggedMap = std::map<std::string, V, std::less<std::string>,
                             TaggedAlloc<std::pair<const std::string, V>>>;
  template <typename V>
  static TaggedMap<V> MakeMap() {
    return TaggedMap<V>(
        TaggedAlloc<std::pair<const std::string, V>>(MemTag::kObs));
  }

  mutable Mutex mu_;
  // Counter values are atomic so a CounterRef can be bumped without mu_;
  // the map structure itself is only modified under mu_.
  TaggedMap<std::atomic<int64_t>> counters_ FASTT_GUARDED_BY(mu_) =
      MakeMap<std::atomic<int64_t>>();
  TaggedMap<double> gauges_ FASTT_GUARDED_BY(mu_) = MakeMap<double>();
  TaggedMap<Timer> timers_ FASTT_GUARDED_BY(mu_) = MakeMap<Timer>();
  TaggedMap<HistogramSnapshot> histograms_ FASTT_GUARDED_BY(mu_) =
      MakeMap<HistogramSnapshot>();
};

// The registry the instrumentation macros write to: the ambient
// TelemetryContext's registry if a TelemetryScope is installed on this
// thread, else the process global. Defined in obs/context.cc.
MetricsRegistry& CurrentMetrics();

// RAII timer: accumulates the scope's wall time under `name` on destruction.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry& registry, std::string name)
      : registry_(registry),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_.RecordTimer(name_,
                          std::chrono::duration<double>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry& registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

// RAII latency sample: records the scope's wall time into a histogram —
// the distribution-preserving sibling of ScopedTimer.
class ScopedLatencyHistogram {
 public:
  ScopedLatencyHistogram(MetricsRegistry& registry, std::string name)
      : registry_(registry),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatencyHistogram() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_.RecordHistogram(
        name_, std::chrono::duration<double>(elapsed).count());
  }
  ScopedLatencyHistogram(const ScopedLatencyHistogram&) = delete;
  ScopedLatencyHistogram& operator=(const ScopedLatencyHistogram&) = delete;

 private:
  MetricsRegistry& registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

// RAII timer through a pre-interned handle: the hot-path sibling of
// ScopedTimer — no string member, no name lookup at record time.
class ScopedTimerRef {
 public:
  ScopedTimerRef(MetricsRegistry& registry, MetricsRegistry::TimerHandle h)
      : registry_(registry),
        handle_(h),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimerRef() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_.Record(handle_,
                     std::chrono::duration<double>(elapsed).count());
  }
  ScopedTimerRef(const ScopedTimerRef&) = delete;
  ScopedTimerRef& operator=(const ScopedTimerRef&) = delete;

 private:
  MetricsRegistry& registry_;
  MetricsRegistry::TimerHandle handle_;
  std::chrono::steady_clock::time_point start_;
};

// RAII latency sample through a pre-interned handle: the hot-path sibling
// of ScopedLatencyHistogram. The per-trial OS-DPOS instrumentation uses
// this so the instrumented path performs no string allocation.
class ScopedLatencyRef {
 public:
  ScopedLatencyRef(MetricsRegistry& registry,
                   MetricsRegistry::HistogramHandle h)
      : registry_(registry),
        handle_(h),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatencyRef() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_.Record(handle_,
                     std::chrono::duration<double>(elapsed).count());
  }
  ScopedLatencyRef(const ScopedLatencyRef&) = delete;
  ScopedLatencyRef& operator=(const ScopedLatencyRef&) = delete;

 private:
  MetricsRegistry& registry_;
  MetricsRegistry::HistogramHandle handle_;
  std::chrono::steady_clock::time_point start_;
};

// Full metrics document: the registry plus (optionally) a structured event
// log under "events" — what `fastt run --metrics out.json` writes.
std::string MetricsToJson(const MetricsRegistry& registry,
                          const EventLog* events = nullptr);

// Writes MetricsToJson to `path`. Returns false on I/O failure.
bool WriteMetricsJson(const std::string& path, const MetricsRegistry& registry,
                      const EventLog* events = nullptr);

// Copies the search thread-pool's occupancy counters (SearchPoolStats) into
// `registry` as gauges: pool/jobs, pool/batches, pool/tasks,
// pool/queue_wait_total_s, pool/queue_wait_mean_s and pool/worker<i>/tasks.
// Gauges, not counters, so republishing before each export never
// double-counts. Call right before exporting.
void PublishSearchPoolMetrics(MetricsRegistry& registry);

// Copies the MemTracker's tagged heap accounting into `registry`: per-tag
// gauges mem/<tag>/{live_bytes,peak_bytes,allocs,frees,alloc_bytes}, the
// mem/total/* aggregates, and one mem/<tag>/alloc_size_bytes histogram per
// active tag. Gauges/SetHistogram (overwrite), so republishing is safe.
// No-op when the tracker never recorded anything.
void PublishMemMetrics(MetricsRegistry& registry);

}  // namespace fastt

#define FASTT_TIMER_CONCAT2(a, b) a##b
#define FASTT_TIMER_CONCAT(a, b) FASTT_TIMER_CONCAT2(a, b)
// Times the enclosing scope into the ambient registry under `name`.
#define FASTT_SCOPED_TIMER(name)                         \
  ::fastt::ScopedTimer FASTT_TIMER_CONCAT(fastt_scoped_timer_, __LINE__)( \
      ::fastt::CurrentMetrics(), (name))
// Records the enclosing scope's wall time into a latency histogram.
#define FASTT_SCOPED_LATENCY_HISTOGRAM(name)                 \
  ::fastt::ScopedLatencyHistogram FASTT_TIMER_CONCAT(        \
      fastt_scoped_latency_, __LINE__)(                      \
      ::fastt::CurrentMetrics(), (name))
