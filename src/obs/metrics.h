// Process-wide metrics: named counters, gauges and accumulating timers with
// an RAII scope helper, exported as JSON.
//
// Everything FastT does — DPOS invocations, split probes, simulated runs,
// rollbacks — funnels through a handful of hot loops; the registry makes
// those loops observable without plumbing a context object through every
// call site. All operations are thread-safe (searchers and future parallel
// probes may bump counters concurrently); the maps use node-stable storage
// so handles returned once stay valid for the registry's lifetime.
//
// Typical use:
//   MetricsRegistry::Global().AddCounter("dpos/invocations");
//   { FASTT_SCOPED_TIMER("dpos/total"); ... }
//   WriteMetricsJson("out.json", MetricsRegistry::Global());
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "util/sync.h"

namespace fastt {

class EventLog;

class MetricsRegistry {
 public:
  // The process-wide registry used by the FASTT_SCOPED_TIMER macro and the
  // instrumented library code. Separate instances can be created for tests.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // ---- Counters (monotonic int64) ----------------------------------------
  void AddCounter(const std::string& name, int64_t delta = 1);
  int64_t counter(const std::string& name) const;  // 0 if absent

  // ---- Gauges (last-written double) --------------------------------------
  void SetGauge(const std::string& name, double value);
  double gauge(const std::string& name) const;  // 0 if absent

  // ---- Timers (accumulated seconds + call count) -------------------------
  void RecordTimer(const std::string& name, double seconds);
  double timer_total_s(const std::string& name) const;
  int64_t timer_count(const std::string& name) const;

  // Removes every metric (tests; also lets the CLI scope metrics per run).
  void Reset();

  // {"counters": {...}, "gauges": {...},
  //  "timers": {"name": {"count": n, "total_s": t, "mean_s": m}}}
  std::string ToJson() const;

 private:
  struct Timer {
    int64_t count = 0;
    double total_s = 0.0;
  };
  mutable Mutex mu_;
  // std::map: deterministic export order and node stability under insert.
  std::map<std::string, int64_t> counters_ FASTT_GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ FASTT_GUARDED_BY(mu_);
  std::map<std::string, Timer> timers_ FASTT_GUARDED_BY(mu_);
};

// RAII timer: accumulates the scope's wall time under `name` on destruction.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry& registry, std::string name)
      : registry_(registry),
        name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_.RecordTimer(name_,
                          std::chrono::duration<double>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry& registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

// Full metrics document: the registry plus (optionally) a structured event
// log under "events" — what `fastt run --metrics out.json` writes.
std::string MetricsToJson(const MetricsRegistry& registry,
                          const EventLog* events = nullptr);

// Writes MetricsToJson to `path`. Returns false on I/O failure.
bool WriteMetricsJson(const std::string& path, const MetricsRegistry& registry,
                      const EventLog* events = nullptr);

// Copies the search thread-pool's occupancy counters (SearchPoolStats) into
// `registry` as gauges: pool/jobs, pool/batches, pool/tasks,
// pool/queue_wait_total_s, pool/queue_wait_mean_s and pool/worker<i>/tasks.
// Gauges, not counters, so republishing before each export never
// double-counts. Call right before exporting.
void PublishSearchPoolMetrics(MetricsRegistry& registry);

}  // namespace fastt

#define FASTT_TIMER_CONCAT2(a, b) a##b
#define FASTT_TIMER_CONCAT(a, b) FASTT_TIMER_CONCAT2(a, b)
// Times the enclosing scope into the global registry under `name`.
#define FASTT_SCOPED_TIMER(name)                         \
  ::fastt::ScopedTimer FASTT_TIMER_CONCAT(fastt_scoped_timer_, __LINE__)( \
      ::fastt::MetricsRegistry::Global(), (name))
