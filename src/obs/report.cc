#include "obs/report.h"

#include <fstream>

#include "obs/build_info.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"

namespace fastt {

RunReport::RunReport(std::string command, std::string model)
    : command_(std::move(command)), model_(std::move(model)) {}

void RunReport::SetParam(const std::string& key, int64_t value) {
  params_.emplace_back(key, value);
}

void RunReport::SetMetrics(const MetricsRegistry& registry) {
  metrics_json_ = registry.ToJson();
}

void RunReport::SetEvents(const EventLog& events) {
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ',';
    out += events.line(i);
  }
  out += "]";
  events_json_ = std::move(out);
}

void RunReport::SetTraceSummary(const TraceSummary& summary) {
  JsonWriter w;
  w.BeginArray();
  for (const TracePhase& phase : summary.phases) {
    w.BeginObject();
    w.Key("name").String(phase.name);
    w.Key("count").Int(phase.count);
    w.Key("total_s").Number(phase.total_s);
    w.Key("self_s").Number(phase.self_s);
    w.EndObject();
  }
  w.EndArray();
  trace_phases_json_ = w.str();
  // Ring-buffer overflow is never silent: the drop counters ride along so a
  // report whose phase table was starved by wraparound says so itself.
  JsonWriter dropped;
  dropped.BeginObject();
  dropped.Key("events").Int(static_cast<int64_t>(summary.dropped_events));
  dropped.Key("spans").Int(static_cast<int64_t>(summary.dropped_spans));
  dropped.EndObject();
  trace_dropped_json_ = dropped.str();
}

void RunReport::AddSection(const std::string& key,
                           const std::string& raw_json) {
  sections_.emplace_back(key, raw_json);
}

std::string RunReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("fastt-report/1");
  w.Key("build");
  WriteBuildInfo(w);
  w.Key("command").String(command_);
  w.Key("model").String(model_);
  w.Key("params").BeginObject();
  for (const auto& [key, value] : params_) w.Key(key).Int(value);
  w.EndObject();
  if (!metrics_json_.empty()) w.Key("metrics").Raw(metrics_json_);
  if (!events_json_.empty()) w.Key("events").Raw(events_json_);
  if (!trace_phases_json_.empty())
    w.Key("trace_phases").Raw(trace_phases_json_);
  if (!trace_dropped_json_.empty())
    w.Key("trace_dropped").Raw(trace_dropped_json_);
  for (const auto& [key, json] : sections_) w.Key(key).Raw(json);
  w.EndObject();
  return w.str();
}

bool RunReport::Write(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << ToJson() << "\n";
  return static_cast<bool>(file);
}

}  // namespace fastt
