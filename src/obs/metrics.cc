#include "obs/metrics.h"

#include <fstream>

#include "obs/event_log.h"
#include "obs/json.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace fastt {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::AddCounter(const std::string& name, int64_t delta) {
  MutexLock lock(mu_);
  counters_[name] += delta;
}

int64_t MetricsRegistry::counter(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  MutexLock lock(mu_);
  gauges_[name] = value;
}

double MetricsRegistry::gauge(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::RecordTimer(const std::string& name, double seconds) {
  MutexLock lock(mu_);
  Timer& t = timers_[name];
  ++t.count;
  t.total_s += seconds;
}

double MetricsRegistry::timer_total_s(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? 0.0 : it->second.total_s;
}

int64_t MetricsRegistry::timer_count(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? 0 : it->second.count;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters_) w.Key(name).Int(value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges_) w.Key(name).Number(value);
  w.EndObject();
  w.Key("timers").BeginObject();
  for (const auto& [name, t] : timers_) {
    w.Key(name).BeginObject();
    w.Key("count").Int(t.count);
    w.Key("total_s").Number(t.total_s);
    w.Key("mean_s").Number(t.count > 0 ? t.total_s / double(t.count) : 0.0);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string MetricsToJson(const MetricsRegistry& registry,
                          const EventLog* events) {
  // Splice the registry object and the event array into one document. The
  // registry JSON always ends in '}', so insert before it.
  std::string doc = registry.ToJson();
  if (events != nullptr) {
    std::string tail = ",\"events\":[";
    for (size_t i = 0; i < events->size(); ++i) {
      if (i > 0) tail += ',';
      tail += events->line(i);
    }
    tail += "]";
    doc.insert(doc.size() - 1, tail);
  }
  return doc;
}

void PublishSearchPoolMetrics(MetricsRegistry& registry) {
  const PoolStats stats = SearchPoolStats();
  registry.SetGauge("pool/jobs", stats.jobs);
  registry.SetGauge("pool/batches", static_cast<double>(stats.batches));
  registry.SetGauge("pool/tasks", static_cast<double>(stats.tasks));
  const double wait_s = static_cast<double>(stats.queue_wait_ns) * 1e-9;
  registry.SetGauge("pool/queue_wait_total_s", wait_s);
  registry.SetGauge("pool/queue_wait_mean_s",
                    stats.tasks > 0 ? wait_s / double(stats.tasks) : 0.0);
  for (size_t i = 0; i < stats.worker_tasks.size(); ++i) {
    registry.SetGauge(StrFormat("pool/worker%zu/tasks", i),
                      static_cast<double>(stats.worker_tasks[i]));
  }
}

bool WriteMetricsJson(const std::string& path, const MetricsRegistry& registry,
                      const EventLog* events) {
  std::ofstream file(path);
  if (!file) return false;
  file << MetricsToJson(registry, events) << "\n";
  return static_cast<bool>(file);
}

}  // namespace fastt
