#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "obs/event_log.h"
#include "obs/json.h"
#include "util/memtrack.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace fastt {

// ---- Histogram ------------------------------------------------------------

size_t HistogramBucket(double value) {
  if (!(value > 0.0)) return 0;  // <=0 and NaN land in the first bucket
  if (std::isinf(value)) return kHistBuckets - 1;
  // frexp: value = m * 2^e with m in [0.5, 1). The smallest E with
  // value <= 2^E is e, except exactly at a power of two (m == 0.5) where
  // it is e-1 — that keeps 2^k in bucket (2^(k-1), 2^k] as documented.
  int e = 0;
  const double m = std::frexp(value, &e);
  const int ceil_log2 = (m == 0.5) ? e - 1 : e;
  const int i = ceil_log2 - kHistMinExp;
  if (i <= 0) return 0;
  if (i >= static_cast<int>(kHistBuckets) - 1) return kHistBuckets - 1;
  return static_cast<size_t>(i);
}

double HistogramBucketUpper(size_t i) {
  if (i + 1 >= kHistBuckets)
    return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, kHistMinExp + static_cast<int>(i));
}

void HistogramSnapshot::Record(double value) {
  if (buckets.empty()) buckets.assign(kHistBuckets, 0);
  if (count == 0) {
    min = max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  ++buckets[HistogramBucket(value)];
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  if (buckets.empty()) buckets.assign(kHistBuckets, 0);
  for (size_t i = 0; i < kHistBuckets && i < other.buckets.size(); ++i)
    buckets[i] += other.buckets[i];
}

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const double n = static_cast<double>(buckets[i]);
    if (n <= 0.0) continue;
    if (cum + n >= target) {
      // Interpolate within the bucket, with the bucket's nominal bounds
      // tightened to the observed [min, max] so estimates never leave the
      // data's range (this also makes the estimate monotone in q).
      double lo = (i == 0) ? min : std::max(min, HistogramBucketUpper(i - 1));
      double hi = std::min(max, HistogramBucketUpper(i));
      if (!std::isfinite(hi)) hi = max;
      if (hi < lo) hi = lo;
      return std::clamp(Lerp(lo, hi, (target - cum) / n), min, max);
    }
    cum += n;
  }
  return max;
}

std::string HistogramSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("count").Int(count);
  w.Key("sum").Number(sum);
  w.Key("min").Number(count > 0 ? min : 0.0);
  w.Key("max").Number(count > 0 ? max : 0.0);
  w.Key("mean").Number(mean());
  w.Key("p50").Number(p50());
  w.Key("p90").Number(p90());
  w.Key("p99").Number(p99());
  w.Key("buckets").BeginArray();
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    w.BeginObject();
    w.Key("i").Int(static_cast<int64_t>(i));
    w.Key("le").Number(HistogramBucketUpper(i));  // null for overflow (inf)
    w.Key("n").Int(buckets[i]);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

bool HistogramFromJson(const JsonValue& v, HistogramSnapshot* out) {
  if (!v.is_object() || out == nullptr) return false;
  HistogramSnapshot h;
  const JsonValue* count = v.Find("count");
  if (count == nullptr) return false;
  h.count = count->IntOr(-1);
  if (h.count < 0) return false;
  if (const JsonValue* f = v.Find("sum")) h.sum = f->NumberOr(0.0);
  if (const JsonValue* f = v.Find("min")) h.min = f->NumberOr(0.0);
  if (const JsonValue* f = v.Find("max")) h.max = f->NumberOr(0.0);
  const JsonValue* buckets = v.Find("buckets");
  if (h.count > 0) {
    if (buckets == nullptr || !buckets->is_array()) return false;
    h.buckets.assign(kHistBuckets, 0);
    int64_t total = 0;
    for (const JsonValue& entry : buckets->items) {
      const JsonValue* idx = entry.Find("i");
      const JsonValue* n = entry.Find("n");
      if (idx == nullptr || n == nullptr) return false;
      const int64_t i = idx->IntOr(-1);
      const int64_t cnt = n->IntOr(-1);
      if (i < 0 || i >= static_cast<int64_t>(kHistBuckets) || cnt < 0)
        return false;
      h.buckets[static_cast<size_t>(i)] += cnt;
      total += cnt;
    }
    if (total != h.count) return false;
  }
  *out = std::move(h);
  return true;
}

// ---- Registry -------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::AddCounter(const std::string& name, int64_t delta) {
  MutexLock lock(mu_);
  counters_[name].fetch_add(delta, std::memory_order_relaxed);
}

int64_t MetricsRegistry::counter(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0
                               : it->second.load(std::memory_order_relaxed);
}

std::atomic<int64_t>& MetricsRegistry::CounterRef(const std::string& name) {
  MutexLock lock(mu_);
  // Node-stable: the returned atomic lives as long as the registry. Only
  // the map *structure* needs mu_; bumping the atomic afterwards doesn't.
  return counters_[name];
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  MutexLock lock(mu_);
  gauges_[name] = value;
}

double MetricsRegistry::gauge(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::RecordTimer(const std::string& name, double seconds) {
  MutexLock lock(mu_);
  Timer& t = timers_[name];
  ++t.count;
  t.total_s += seconds;
}

double MetricsRegistry::timer_total_s(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? 0.0 : it->second.total_s;
}

int64_t MetricsRegistry::timer_count(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? 0 : it->second.count;
}

MetricsRegistry::TimerHandle MetricsRegistry::TimerRef(
    const std::string& name) {
  MutexLock lock(mu_);
  TimerHandle h;
  h.cell_ = &timers_[name];  // node-stable, survives Reset()
  return h;
}

MetricsRegistry::HistogramHandle MetricsRegistry::HistogramRef(
    const std::string& name) {
  MutexLock lock(mu_);
  HistogramHandle h;
  h.cell_ = &histograms_[name];  // node-stable, survives Reset()
  return h;
}

void MetricsRegistry::Record(TimerHandle handle, double seconds) {
  MutexLock lock(mu_);
  ++handle.cell_->count;
  handle.cell_->total_s += seconds;
}

void MetricsRegistry::Record(HistogramHandle handle, double value) {
  MutexLock lock(mu_);
  handle.cell_->Record(value);
}

void MetricsRegistry::RecordHistogram(const std::string& name, double value) {
  MutexLock lock(mu_);
  histograms_[name].Record(value);
}

void MetricsRegistry::SetHistogram(const std::string& name,
                                   const HistogramSnapshot& snap) {
  MutexLock lock(mu_);
  histograms_[name] = snap;
}

HistogramSnapshot MetricsRegistry::histogram(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSnapshot{} : it->second;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  // Zero in place — never erase. A CounterRef handed out earlier must stay
  // valid (the node-stable storage contract); clearing the maps would leave
  // it dangling.
  for (auto& [name, value] : counters_)
    value.store(0, std::memory_order_relaxed);
  for (auto& [name, value] : gauges_) value = 0.0;
  for (auto& [name, t] : timers_) t = Timer{};
  for (auto& [name, h] : histograms_) h = HistogramSnapshot{};
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  MutexLock lock(mu_);
  Snapshot snap;
  for (const auto& [name, value] : counters_)
    snap.counters[name] = value.load(std::memory_order_relaxed);
  for (const auto& [name, value] : gauges_) snap.gauges[name] = value;
  for (const auto& [name, t] : timers_)
    snap.timers[name] = {t.count, t.total_s};
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h;
  return snap;
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters_)
    w.Key(name).Int(value.load(std::memory_order_relaxed));
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges_) w.Key(name).Number(value);
  w.EndObject();
  w.Key("timers").BeginObject();
  for (const auto& [name, t] : timers_) {
    w.Key(name).BeginObject();
    w.Key("count").Int(t.count);
    w.Key("total_s").Number(t.total_s);
    w.Key("mean_s").Number(t.count > 0 ? t.total_s / double(t.count) : 0.0);
    w.EndObject();
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) w.Key(name).Raw(h.ToJson());
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string MetricsToJson(const MetricsRegistry& registry,
                          const EventLog* events) {
  // Splice the registry object and the event array into one document. The
  // registry JSON always ends in '}', so insert before it.
  std::string doc = registry.ToJson();
  if (events != nullptr) {
    std::string tail = ",\"events\":[";
    for (size_t i = 0; i < events->size(); ++i) {
      if (i > 0) tail += ',';
      tail += events->line(i);
    }
    tail += "]";
    doc.insert(doc.size() - 1, tail);
  }
  return doc;
}

void PublishSearchPoolMetrics(MetricsRegistry& registry) {
  const PoolStats stats = SearchPoolStats();
  registry.SetGauge("pool/jobs", stats.jobs);
  registry.SetGauge("pool/batches", static_cast<double>(stats.batches));
  registry.SetGauge("pool/tasks", static_cast<double>(stats.tasks));
  const double wait_s = static_cast<double>(stats.queue_wait_ns) * 1e-9;
  registry.SetGauge("pool/queue_wait_total_s", wait_s);
  registry.SetGauge("pool/queue_wait_mean_s",
                    stats.tasks > 0 ? wait_s / double(stats.tasks) : 0.0);
  for (size_t i = 0; i < stats.worker_tasks.size(); ++i) {
    registry.SetGauge(StrFormat("pool/worker%zu/tasks", i),
                      static_cast<double>(stats.worker_tasks[i]));
  }
}

namespace {

// Metric-key-safe tag name: "sim/events" → "sim_events", so the key's own
// '/' separators stay unambiguous ("mem/sim_events/live_bytes").
std::string MemTagKey(MemTag tag) {
  std::string key = MemTagName(tag);
  std::replace(key.begin(), key.end(), '/', '_');
  return key;
}

// The tracker bins allocations by log2 size class; reproject those counts
// into the registry's histogram buckets (same log2 scheme, different
// origin). min/max are bucket bounds, not exact observed sizes.
HistogramSnapshot AllocSizeHistogram(const MemTagStats& s) {
  HistogramSnapshot h;
  for (size_t k = 0; k < kMemSizeClasses; ++k) {
    const int64_t n = s.size_class_allocs[k];
    if (n == 0) continue;
    if (h.buckets.empty()) h.buckets.assign(kHistBuckets, 0);
    const double upper = std::ldexp(1.0, static_cast<int>(k));
    const double lower = k == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(k) - 1);
    h.buckets[HistogramBucket(upper)] += n;
    h.count += n;
    h.sum += upper * static_cast<double>(n);
    if (h.count == n) {
      h.min = lower;
      h.max = upper;
    } else {
      h.min = std::min(h.min, lower);
      h.max = std::max(h.max, upper);
    }
  }
  return h;
}

}  // namespace

void PublishMemMetrics(MetricsRegistry& registry) {
  MemTracker& mt = MemTracker::Global();
  if (mt.total_allocs() == 0) return;
  const std::vector<MemTagStats> snap = mt.Snapshot();
  for (size_t t = 0; t < kNumMemTags; ++t) {
    const MemTagStats& s = snap[t];
    if (s.allocs == 0 && s.frees == 0) continue;
    const std::string base = "mem/" + MemTagKey(static_cast<MemTag>(t));
    registry.SetGauge(base + "/live_bytes", static_cast<double>(s.live_bytes));
    registry.SetGauge(base + "/peak_bytes", static_cast<double>(s.peak_bytes));
    registry.SetGauge(base + "/allocs", static_cast<double>(s.allocs));
    registry.SetGauge(base + "/frees", static_cast<double>(s.frees));
    registry.SetGauge(base + "/alloc_bytes",
                      static_cast<double>(s.alloc_bytes));
    const HistogramSnapshot h = AllocSizeHistogram(s);
    if (h.count > 0) registry.SetHistogram(base + "/alloc_size_bytes", h);
  }
  registry.SetGauge("mem/total/live_bytes",
                    static_cast<double>(mt.total_live_bytes()));
  registry.SetGauge("mem/total/peak_bytes",
                    static_cast<double>(mt.total_peak_bytes()));
  registry.SetGauge("mem/total/allocs", static_cast<double>(mt.total_allocs()));
}

bool WriteMetricsJson(const std::string& path, const MetricsRegistry& registry,
                      const EventLog* events) {
  std::ofstream file(path);
  if (!file) return false;
  file << MetricsToJson(registry, events) << "\n";
  return static_cast<bool>(file);
}

}  // namespace fastt
