// Strategy/graph verifier — a pure, simulation-free validity pass.
//
// FastT's claim is that DPOS/OS-DPOS emit *valid* strategies: acyclic after
// split/concat rewrites, fully placed on real devices, memory-feasible, and
// executable without deadlock under priority ordering. Until now the only
// thing standing between a rewrite bug and a wrong benchmark number was the
// simulator happening to crash. This pass checks the plan itself — the same
// "verify the plan, not the run" discipline of TensorFlow's graph validators
// and TVM's relay well-formedness checks — and reports structured
// diagnostics {rule_id, severity, location, message, fix_hint} instead of a
// mystery regression.
//
// Rule catalog (DESIGN.md §12 has the one-line rationale for each):
//   graph.acyclic         split/concat rewrites must leave the DAG acyclic
//   graph.glue.split      a Split node needs 1 producer and >= 2 consumers
//   graph.glue.concat     a Concat node needs >= 2 producers and a consumer
//   strategy.split.op     split decisions must name a real, splittable op
//   strategy.split.shape  sub-op extents must tile the parent's extent
//   place.size            placement vector must cover every op slot
//   place.total           every live op must be placed
//   place.device          placements must name devices that exist
//   place.colocate        colocation constraints must be respected
//   order.complete        the order must list every live op exactly once
//   order.deps            the order must extend the dependency partial order
//                         (the executor-deadlock precondition)
//   loop.iter             unrolled-loop edges must not point backwards
//   mem.capacity [full]   per-device peak under the declared order must fit
//   mem.headroom [full]   ... and should leave the scheduler's headroom
//   comm.model   [full]   cross-device edges should have a priced link
//
// Cheap rules are O(V + E) with no cost-model access and run after every
// DPOS/OS-DPOS round inside StrategyCalculator; the [full] rules add memory
// and cost-model sweeps and run behind CalculatorOptions::verify_full and in
// `fastt verify`.
#pragma once

#include <string>
#include <vector>

#include "core/strategy.h"
#include "cost/comm_cost.h"
#include "graph/graph.h"
#include "sim/cluster.h"

namespace fastt {

enum class VerifySeverity { kWarning, kError };

const char* VerifySeverityName(VerifySeverity severity);

struct Diagnostic {
  std::string rule_id;
  VerifySeverity severity = VerifySeverity::kError;
  OpId op = kInvalidOp;   // offending op, when one can be named
  EdgeId edge = -1;       // offending edge, when one can be named
  std::string message;    // what is wrong, with names and numbers
  std::string fix_hint;   // where to look / what usually causes it
};

struct VerifierOptions {
  // Run only the O(V+E) structural rules (what the per-round hook uses).
  bool cheap_only = false;
  // Fraction of usable device memory the plan may fill before the headroom
  // warning fires; matches DposOptions::memory_headroom.
  double memory_headroom = 0.92;
  // Cap on reported diagnostics per rule so one systemic bug does not bury
  // the rest of the report; a summary line counts the suppressed remainder.
  int max_per_rule = 8;
};

struct VerifyResult {
  std::vector<Diagnostic> diagnostics;
  int errors = 0;
  int warnings = 0;
  int rules_checked = 0;
  bool ok() const { return errors == 0; }
  // First error-severity rule id, or "" — what round rollbacks get named by.
  std::string first_error_rule() const;
};

// Verifies `strategy` against `graph` on `cluster`. `comm` may be null; the
// comm.model rule is skipped when it is null or has no fitted pairs yet.
VerifyResult VerifyStrategy(const Graph& graph, const Strategy& strategy,
                            const Cluster& cluster,
                            const CommCostModel* comm = nullptr,
                            const VerifierOptions& options = {});

// Human-readable report (one block per diagnostic plus a summary line).
std::string RenderDiagnostics(const Graph& graph, const VerifyResult& result);

// {"fastt_verify":1, "graph":name, "errors":n, "warnings":n,
//  "rules_checked":n, "diagnostics":[{rule_id, severity, op, op_name, edge,
//  message, fix_hint}]} — round-trips through JsonParse.
std::string DiagnosticsToJson(const Graph& graph, const VerifyResult& result);

}  // namespace fastt
