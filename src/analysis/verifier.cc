#include "analysis/verifier.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "graph/memory.h"
#include "obs/json.h"
#include "util/strings.h"

namespace fastt {
namespace {

// Collects findings with a per-rule cap: every finding counts toward the
// error/warning totals, but only the first `max_per_rule` per rule are kept
// verbatim; the rest collapse into one summary diagnostic so a systemic bug
// (say, every op unplaced) does not bury the other rules' findings.
class Reporter {
 public:
  Reporter(VerifyResult* result, int max_per_rule)
      : result_(result), max_per_rule_(max_per_rule) {}

  void Add(const std::string& rule_id, VerifySeverity severity, OpId op,
           EdgeId edge, std::string message, std::string fix_hint) {
    if (severity == VerifySeverity::kError)
      ++result_->errors;
    else
      ++result_->warnings;
    const int seen = ++per_rule_[rule_id];
    if (seen > max_per_rule_) {
      ++suppressed_[rule_id];
      severities_[rule_id] = severity;
      return;
    }
    Diagnostic diag;
    diag.rule_id = rule_id;
    diag.severity = severity;
    diag.op = op;
    diag.edge = edge;
    diag.message = std::move(message);
    diag.fix_hint = std::move(fix_hint);
    result_->diagnostics.push_back(std::move(diag));
  }

  void BeginRule() { ++result_->rules_checked; }

  // Emits one summary diagnostic per capped rule.
  void Flush() {
    for (const auto& [rule, count] : suppressed_) {
      Diagnostic diag;
      diag.rule_id = rule;
      diag.severity = severities_[rule];
      diag.message = StrFormat(
          "%d additional finding%s suppressed (already counted above)", count,
          count == 1 ? "" : "s");
      diag.fix_hint = "fix the reported instances first; the rest usually "
                      "share the cause";
      result_->diagnostics.push_back(std::move(diag));
    }
  }

 private:
  VerifyResult* result_;
  int max_per_rule_;
  std::map<std::string, int> per_rule_;
  std::map<std::string, int> suppressed_;
  std::map<std::string, VerifySeverity> severities_;
};

// Extent of the dimension a split partitioned, as recorded on the op.
int64_t ExtentOf(const Operation& op, SplitDim dim) {
  return dim == SplitDim::kBatch ? op.batch
         : dim == SplitDim::kChannel ? op.channels
                                     : 0;
}

// Slot holding an op of this name, dead or alive (Graph::FindOp hides
// tombstones, but split parents ARE tombstones).
OpId FindSlotByName(const Graph& g, const std::string& name) {
  for (OpId id = 0; id < g.num_slots(); ++id)
    if (g.op(id).name == name) return id;
  return kInvalidOp;
}

// Parses "<prefix>/iter<k>/..." names produced by UnrollLoop. Returns true
// and fills (loop prefix, iteration) when the name has such a segment.
bool LoopIteration(const std::string& name, std::string* prefix,
                   int64_t* iteration) {
  size_t pos = 0;
  while ((pos = name.find("/iter", pos)) != std::string::npos) {
    size_t digit = pos + 5;
    size_t end = digit;
    while (end < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[end])) != 0)
      ++end;
    if (end > digit && end < name.size() && name[end] == '/') {
      *prefix = name.substr(0, pos);
      *iteration = std::atoll(name.substr(digit, end - digit).c_str());
      return true;
    }
    pos = end;
  }
  return false;
}

// ---- Rules -----------------------------------------------------------------

void CheckAcyclic(const Graph& g, Reporter& report) {
  report.BeginRule();
  if (g.IsAcyclic()) return;
  // Name an op on a cycle: peel ops with in-degree 0 repeatedly; whatever
  // remains is cyclic.
  std::vector<int> indeg(static_cast<size_t>(g.num_slots()), 0);
  std::vector<OpId> live = g.LiveOps();
  for (OpId id : live)
    indeg[static_cast<size_t>(id)] = static_cast<int>(g.Preds(id).size());
  std::vector<OpId> queue;
  for (OpId id : live)
    if (indeg[static_cast<size_t>(id)] == 0) queue.push_back(id);
  size_t removed = 0;
  while (!queue.empty()) {
    const OpId id = queue.back();
    queue.pop_back();
    ++removed;
    for (OpId s : g.Succs(id))
      if (--indeg[static_cast<size_t>(s)] == 0) queue.push_back(s);
  }
  OpId witness = kInvalidOp;
  for (OpId id : live)
    if (indeg[static_cast<size_t>(id)] > 0) {
      witness = id;
      break;
    }
  report.Add("graph.acyclic", VerifySeverity::kError, witness, -1,
             StrFormat("graph has a cycle through %zu op(s)%s%s",
                       live.size() - removed,
                       witness != kInvalidOp ? ", e.g. " : "",
                       witness != kInvalidOp ? g.op(witness).name.c_str() : ""),
             "a rewrite wired glue edges backwards; check the last "
             "SplitOperation's split->sub->concat direction");
}

// True when `name`'s last path segment marks it as SplitOperation-produced
// glue: "<parent>/split<k>" or "<parent>/concat". Model builders also use
// kSplit/kConcat ops (timestep slicing, inception merges) but under their
// own names; those only get the relaxed connectivity check.
bool IsRewriteGlueName(const std::string& name, bool split) {
  const size_t slash = name.rfind('/');
  if (slash == std::string::npos) return false;
  const std::string last = name.substr(slash + 1);
  if (!split) return last == "concat";
  if (last.size() < 6 || last.compare(0, 5, "split") != 0) return false;
  for (size_t i = 5; i < last.size(); ++i)
    if (std::isdigit(static_cast<unsigned char>(last[i])) == 0) return false;
  return true;
}

void CheckGlueNodes(const Graph& g, Reporter& report) {
  report.BeginRule();  // graph.glue.split
  report.BeginRule();  // graph.glue.concat
  for (OpId id : g.LiveOps()) {
    const Operation& op = g.op(id);
    if (op.type != OpType::kSplit && op.type != OpType::kConcat) continue;
    int live_in = 0;
    int live_out = 0;
    for (EdgeId e : g.in_edges(id))
      if (!g.edge(e).dead && !g.op(g.edge(e).src).dead) ++live_in;
    for (EdgeId e : g.out_edges(id))
      if (!g.edge(e).dead && !g.op(g.edge(e).dst).dead) ++live_out;
    const bool rewrite_glue =
        IsRewriteGlueName(op.name, op.type == OpType::kSplit);
    // Rewrite glue gets the full Alg. 2 arity contract; builder-made
    // split/concat ops (timestep slices can be 1->1) just must be wired.
    const int min_out = rewrite_glue && op.type == OpType::kSplit ? 2 : 1;
    const int min_in = rewrite_glue && op.type == OpType::kConcat ? 2 : 1;
    if (op.type == OpType::kSplit && (live_in != 1 || live_out < min_out)) {
      report.Add(
          "graph.glue.split", VerifySeverity::kError, id, -1,
          StrFormat("split node %s has %d producer(s) and %d consumer(s); "
                    "expected exactly 1 producer and >= %d consumer(s)",
                    op.name.c_str(), live_in, live_out, min_out),
          "the rewrite that created this node lost an edge; a split must "
          "fan one predecessor tensor out to every sub-op");
    } else if (op.type == OpType::kConcat &&
               (live_in < min_in || live_out < 1)) {
      report.Add(
          "graph.glue.concat", VerifySeverity::kError, id, -1,
          StrFormat("concat node %s has %d producer(s) and %d consumer(s); "
                    "expected >= %d producer(s) and >= 1 consumer",
                    op.name.c_str(), live_in, live_out, min_in),
          "a concat merges every sub-op output for the original successors; "
          "orphaned concats mean the rewrite tombstoned the wrong edges");
    }
  }
}

void CheckSplitDecisions(const Graph& g, const Strategy& strategy,
                         Reporter& report) {
  report.BeginRule();  // strategy.split.op
  report.BeginRule();  // strategy.split.shape
  for (const SplitDecision& split : strategy.splits) {
    if (split.dim == SplitDim::kNone || split.num_splits < 2) {
      report.Add("strategy.split.op", VerifySeverity::kError, kInvalidOp, -1,
                 StrFormat("split of %s along %s x%d is not a partition",
                           split.op_name.c_str(), SplitDimName(split.dim),
                           split.num_splits),
                 "split decisions need a real dimension and >= 2 parts");
      continue;
    }
    const OpId parent = FindSlotByName(g, split.op_name);
    if (parent == kInvalidOp) {
      report.Add("strategy.split.op", VerifySeverity::kError, kInvalidOp, -1,
                 StrFormat("split names op %s which does not exist in the "
                           "graph", split.op_name.c_str()),
                 "the split list and the rewritten graph got out of sync");
      continue;
    }
    int64_t extent_sum = 0;
    bool parts_ok = true;
    bool resplit = false;
    for (int i = 0; i < split.num_splits; ++i) {
      const std::string part_name =
          StrFormat("%s/part%d", split.op_name.c_str(), i);
      const OpId part = FindSlotByName(g, part_name);
      if (part == kInvalidOp) {
        report.Add("strategy.split.shape", VerifySeverity::kError, parent, -1,
                   StrFormat("sub-op %s of the %s split is missing",
                             part_name.c_str(), split.op_name.c_str()),
                   "SplitOperation creates exactly num_splits /partN ops; "
                   "a later rewrite removed one without updating the list");
        parts_ok = false;
        continue;
      }
      if (g.op(part).dead) {
        // Legal only if that part was itself split by a later decision.
        const bool chained = std::any_of(
            strategy.splits.begin(), strategy.splits.end(),
            [&](const SplitDecision& other) {
              return other.op_name == part_name;
            });
        if (!chained) {
          report.Add("strategy.split.shape", VerifySeverity::kError, part, -1,
                     StrFormat("sub-op %s is tombstoned but no later split "
                               "decision explains it", part_name.c_str()),
                     "dangling tombstone: the sub-op died outside the "
                     "recorded rewrite chain");
          parts_ok = false;
        }
        resplit = true;
        continue;
      }
      extent_sum += ExtentOf(g.op(part), split.dim);
    }
    const int64_t parent_extent = ExtentOf(g.op(parent), split.dim);
    if (parts_ok && !resplit && parent_extent > 0 &&
        extent_sum != parent_extent) {
      report.Add(
          "strategy.split.shape", VerifySeverity::kError, parent, -1,
          StrFormat("%s parts cover %s extent %lld of parent extent %lld",
                    split.op_name.c_str(), SplitDimName(split.dim),
                    static_cast<long long>(extent_sum),
                    static_cast<long long>(parent_extent)),
          "sub-op extents must tile the parent dimension exactly; check the "
          "size_i = extent/n + remainder arithmetic in the rewrite");
    }
  }
}

void CheckPlacement(const Graph& g, const Strategy& strategy,
                    const Cluster& cluster, Reporter& report) {
  const std::vector<DeviceId>& placement = strategy.placement;
  report.BeginRule();  // place.size
  if (placement.size() != static_cast<size_t>(g.num_slots())) {
    report.Add("place.size", VerifySeverity::kError, kInvalidOp, -1,
               StrFormat("placement has %zu entries for %d op slots",
                         placement.size(), g.num_slots()),
               "the placement vector must be indexed by slot id; a rewrite "
               "added ops without extending it");
  }
  report.BeginRule();  // place.total
  report.BeginRule();  // place.device
  for (OpId id : g.LiveOps()) {
    const size_t slot = static_cast<size_t>(id);
    const DeviceId device =
        slot < placement.size() ? placement[slot] : kInvalidDevice;
    if (device == kInvalidDevice) {
      report.Add("place.total", VerifySeverity::kError, id, -1,
                 StrFormat("live op %s has no device", g.op(id).name.c_str()),
                 "every live op must be placed; kInvalidDevice is only for "
                 "tombstoned slots");
    } else if (device < 0 || device >= cluster.num_devices()) {
      report.Add("place.device", VerifySeverity::kError, id, -1,
                 StrFormat("op %s is placed on device %d but the cluster has "
                           "devices 0..%d",
                           g.op(id).name.c_str(), device,
                           cluster.num_devices() - 1),
                 "device ids must index the cluster the strategy targets; "
                 "was this strategy computed for a different cluster?");
    }
  }
  report.BeginRule();  // place.colocate
  for (OpId id : g.LiveOps()) {
    const Operation& op = g.op(id);
    if (op.colocate_with == kInvalidOp) continue;
    if (op.colocate_with < 0 || op.colocate_with >= g.num_slots()) continue;
    if (g.op(op.colocate_with).dead) continue;
    const size_t a = static_cast<size_t>(id);
    const size_t b = static_cast<size_t>(op.colocate_with);
    if (a >= placement.size() || b >= placement.size()) continue;
    if (placement[a] != kInvalidDevice && placement[b] != kInvalidDevice &&
        placement[a] != placement[b]) {
      report.Add(
          "place.colocate", VerifySeverity::kError, id, -1,
          StrFormat("op %s must colocate with %s but sits on gpu%d vs gpu%d",
                    op.name.c_str(), g.op(op.colocate_with).name.c_str(),
                    placement[a], placement[b]),
          "optimizer updates run where the parameters live; the placement "
          "pass must resolve colocate_with after placing the referent");
    }
  }
}

// Returns per-slot order positions (-1 = not scheduled); records
// order.complete findings. Position data is only meaningful when the rule
// passed (result flag).
bool CheckOrderComplete(const Graph& g, const Strategy& strategy,
                        Reporter& report, std::vector<int64_t>* position) {
  report.BeginRule();  // order.complete
  position->assign(static_cast<size_t>(g.num_slots()), -1);
  bool ok = true;
  for (size_t i = 0; i < strategy.execution_order.size(); ++i) {
    const OpId id = strategy.execution_order[i];
    if (id < 0 || id >= g.num_slots() || g.op(id).dead) {
      report.Add("order.complete", VerifySeverity::kError, id, -1,
                 StrFormat("order entry %zu references %s op id %d", i,
                           id >= 0 && id < g.num_slots() ? "a tombstoned"
                                                         : "an out-of-range",
                           id),
                 "the execution order must list live ops of THIS graph");
      ok = false;
      continue;
    }
    if ((*position)[static_cast<size_t>(id)] != -1) {
      report.Add("order.complete", VerifySeverity::kError, id, -1,
                 StrFormat("op %s appears twice in the execution order "
                           "(positions %lld and %zu)",
                           g.op(id).name.c_str(),
                           static_cast<long long>(
                               (*position)[static_cast<size_t>(id)]),
                           i),
                 "priorities come from order positions; duplicates make the "
                 "priority assignment ambiguous");
      ok = false;
      continue;
    }
    (*position)[static_cast<size_t>(id)] = static_cast<int64_t>(i);
  }
  for (OpId id : g.LiveOps()) {
    if ((*position)[static_cast<size_t>(id)] == -1) {
      report.Add("order.complete", VerifySeverity::kError, id, -1,
                 StrFormat("live op %s is missing from the execution order",
                           g.op(id).name.c_str()),
                 "unlisted ops get the lowest priority, which silently "
                 "serializes them last; the order must be total");
      ok = false;
    }
  }
  return ok;
}

void CheckOrderDeps(const Graph& g, const std::vector<int64_t>& position,
                    Reporter& report) {
  report.BeginRule();  // order.deps
  for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.dead || g.op(edge.src).dead || g.op(edge.dst).dead) continue;
    const int64_t src_pos = position[static_cast<size_t>(edge.src)];
    const int64_t dst_pos = position[static_cast<size_t>(edge.dst)];
    if (src_pos < 0 || dst_pos < 0) continue;  // order.complete already fired
    if (src_pos >= dst_pos) {
      report.Add(
          "order.deps", VerifySeverity::kError, edge.dst, e,
          StrFormat("%s is ordered at position %lld but consumes %s at "
                    "position %lld",
                    g.op(edge.dst).name.c_str(),
                    static_cast<long long>(dst_pos),
                    g.op(edge.src).name.c_str(),
                    static_cast<long long>(src_pos)),
          "a priority-enforcing executor can deadlock when the order "
          "contradicts data deps; the order must be a topological extension");
    }
  }
}

void CheckLoopStructure(const Graph& g, Reporter& report) {
  report.BeginRule();  // loop.iter
  for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.dead || g.op(edge.src).dead || g.op(edge.dst).dead) continue;
    const Operation& src = g.op(edge.src);
    const Operation& dst = g.op(edge.dst);
    // Gradient flow legitimately runs from later to earlier iterations.
    if (src.is_backward || dst.is_backward) continue;
    std::string src_prefix;
    std::string dst_prefix;
    int64_t src_iter = 0;
    int64_t dst_iter = 0;
    if (!LoopIteration(src.name, &src_prefix, &src_iter)) continue;
    if (!LoopIteration(dst.name, &dst_prefix, &dst_iter)) continue;
    if (src_prefix != dst_prefix) continue;
    if (dst_iter < src_iter) {
      report.Add(
          "loop.iter", VerifySeverity::kError, edge.dst, e,
          StrFormat("loop %s: forward edge from iteration %lld (%s) back to "
                    "iteration %lld (%s)",
                    src_prefix.c_str(), static_cast<long long>(src_iter),
                    src.name.c_str(), static_cast<long long>(dst_iter),
                    dst.name.c_str()),
          "UnrollLoop must thread carried values strictly forward; a "
          "backward edge means the unrolling re-introduced the cycle");
    }
  }
}

void CheckMemory(const Graph& g, const Strategy& strategy,
                 const Cluster& cluster, const std::vector<int64_t>& position,
                 double headroom, Reporter& report) {
  report.BeginRule();  // mem.capacity
  report.BeginRule();  // mem.headroom
  const std::vector<DeviceId>& placement = strategy.placement;
  const size_t devices = static_cast<size_t>(cluster.num_devices());

  // Static part: parameters live for the whole iteration.
  std::vector<int64_t> occupancy(devices, 0);
  for (OpId id : g.LiveOps()) {
    const DeviceId d = placement[static_cast<size_t>(id)];
    if (d >= 0 && static_cast<size_t>(d) < devices)
      occupancy[static_cast<size_t>(d)] += g.op(id).resident_bytes();
  }
  std::vector<int64_t> peak = occupancy;

  // Dynamic part: walk the declared order; an output occupies its producer's
  // device from execution until its last consumer has executed. (Remote
  // consumers additionally stage a copy; that is what the scheduler's
  // headroom is for, so it is deliberately not charged here.)
  std::vector<int64_t> last_use(static_cast<size_t>(g.num_slots()), -1);
  for (OpId id : g.LiveOps())
    for (OpId s : g.Succs(id))
      last_use[static_cast<size_t>(id)] = std::max(
          last_use[static_cast<size_t>(id)], position[static_cast<size_t>(s)]);
  // Producers to free after each position.
  std::vector<std::vector<OpId>> frees(strategy.execution_order.size());
  for (OpId id : g.LiveOps())
    if (last_use[static_cast<size_t>(id)] >= 0)
      frees[static_cast<size_t>(last_use[static_cast<size_t>(id)])].push_back(
          id);

  for (size_t p = 0; p < strategy.execution_order.size(); ++p) {
    const OpId id = strategy.execution_order[p];
    const Operation& op = g.op(id);
    const DeviceId d = placement[static_cast<size_t>(id)];
    if (d < 0 || static_cast<size_t>(d) >= devices) continue;
    const bool retained = last_use[static_cast<size_t>(id)] >= 0;
    const int64_t output = op.output_bytes();
    // While executing: workspace plus the output buffer being produced.
    occupancy[static_cast<size_t>(d)] += op.temp_bytes + output;
    peak[static_cast<size_t>(d)] = std::max(peak[static_cast<size_t>(d)],
                                            occupancy[static_cast<size_t>(d)]);
    occupancy[static_cast<size_t>(d)] -= op.temp_bytes;
    if (!retained) occupancy[static_cast<size_t>(d)] -= output;
    for (OpId producer : frees[p]) {
      const DeviceId pd = placement[static_cast<size_t>(producer)];
      if (pd >= 0 && static_cast<size_t>(pd) < devices)
        occupancy[static_cast<size_t>(pd)] -= g.op(producer).output_bytes();
    }
  }

  for (size_t d = 0; d < devices; ++d) {
    const int64_t usable = cluster.device(static_cast<DeviceId>(d))
                               .usable_bytes();
    if (peak[d] > usable) {
      report.Add(
          "mem.capacity", VerifySeverity::kError, kInvalidOp, -1,
          StrFormat("gpu%zu peaks at %s under the declared order but only %s "
                    "is usable",
                    d, HumanBytes(static_cast<double>(peak[d])).c_str(),
                    HumanBytes(static_cast<double>(usable)).c_str()),
          "this placement will OOM; rebalance the heaviest resident ops or "
          "split them");
    } else if (static_cast<double>(peak[d]) >
               headroom * static_cast<double>(usable)) {
      report.Add(
          "mem.headroom", VerifySeverity::kWarning, kInvalidOp, -1,
          StrFormat("gpu%zu peaks at %s, inside the %.0f%% scheduler "
                    "headroom of %s usable",
                    d, HumanBytes(static_cast<double>(peak[d])).c_str(),
                    100.0 * headroom,
                    HumanBytes(static_cast<double>(usable)).c_str()),
          "transfer staging and transient gradients are not in this "
          "estimate; a real run may still OOM");
    }
  }
}

void CheckCommModel(const Graph& g, const Strategy& strategy,
                    const CommCostModel* comm, Reporter& report) {
  if (comm == nullptr || comm->num_pairs() == 0) return;
  report.BeginRule();  // comm.model
  const std::vector<DeviceId>& placement = strategy.placement;
  for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
    const Edge& edge = g.edge(e);
    if (edge.dead || g.op(edge.src).dead || g.op(edge.dst).dead) continue;
    const DeviceId src = placement[static_cast<size_t>(edge.src)];
    const DeviceId dst = placement[static_cast<size_t>(edge.dst)];
    if (src == dst || src == kInvalidDevice || dst == kInvalidDevice) continue;
    if (!comm->KnowsPair(src, dst)) {
      report.Add(
          "comm.model", VerifySeverity::kWarning, edge.dst, e,
          StrFormat("transfer %s -> %s crosses gpu%d -> gpu%d, a pair the "
                    "communication model has never profiled",
                    g.op(edge.src).name.c_str(), g.op(edge.dst).name.c_str(),
                    src, dst),
          "the scheduler priced this transfer at 0 (explore); expect the "
          "first profiled round to correct the schedule");
    }
  }
}

}  // namespace

const char* VerifySeverityName(VerifySeverity severity) {
  return severity == VerifySeverity::kError ? "error" : "warning";
}

std::string VerifyResult::first_error_rule() const {
  for (const Diagnostic& diag : diagnostics)
    if (diag.severity == VerifySeverity::kError) return diag.rule_id;
  return "";
}

VerifyResult VerifyStrategy(const Graph& graph, const Strategy& strategy,
                            const Cluster& cluster, const CommCostModel* comm,
                            const VerifierOptions& options) {
  VerifyResult result;
  Reporter report(&result, options.max_per_rule);

  CheckAcyclic(graph, report);
  CheckGlueNodes(graph, report);
  CheckSplitDecisions(graph, strategy, report);
  CheckPlacement(graph, strategy, cluster, report);
  std::vector<int64_t> position;
  const bool order_ok = CheckOrderComplete(graph, strategy, report, &position);
  if (order_ok) CheckOrderDeps(graph, position, report);
  CheckLoopStructure(graph, report);

  if (!options.cheap_only) {
    // The memory walk needs a valid total order and a full-size placement.
    if (order_ok &&
        strategy.placement.size() == static_cast<size_t>(graph.num_slots())) {
      CheckMemory(graph, strategy, cluster, position, options.memory_headroom,
                  report);
    }
    if (strategy.placement.size() == static_cast<size_t>(graph.num_slots()))
      CheckCommModel(graph, strategy, comm, report);
  }

  report.Flush();
  return result;
}

std::string RenderDiagnostics(const Graph& graph, const VerifyResult& result) {
  std::string out;
  for (const Diagnostic& diag : result.diagnostics) {
    out += StrFormat("%-7s %-20s %s\n", VerifySeverityName(diag.severity),
                     diag.rule_id.c_str(), diag.message.c_str());
    if (!diag.fix_hint.empty())
      out += StrFormat("        %-20s hint: %s\n", "", diag.fix_hint.c_str());
  }
  out += StrFormat(
      "verification: %s — %d error(s), %d warning(s) over %d rule(s) on %s "
      "(%d live ops)\n",
      result.ok() ? "PASS" : "FAIL", result.errors, result.warnings,
      result.rules_checked, graph.name().c_str(), graph.num_live_ops());
  return out;
}

std::string DiagnosticsToJson(const Graph& graph, const VerifyResult& result) {
  JsonWriter w;
  w.BeginObject();
  w.Key("fastt_verify").Int(1);
  w.Key("graph").String(graph.name());
  w.Key("live_ops").Int(graph.num_live_ops());
  w.Key("errors").Int(result.errors);
  w.Key("warnings").Int(result.warnings);
  w.Key("rules_checked").Int(result.rules_checked);
  w.Key("ok").Bool(result.ok());
  w.Key("diagnostics").BeginArray();
  for (const Diagnostic& diag : result.diagnostics) {
    w.BeginObject();
    w.Key("rule_id").String(diag.rule_id);
    w.Key("severity").String(VerifySeverityName(diag.severity));
    w.Key("op").Int(diag.op);
    if (diag.op != kInvalidOp && diag.op < graph.num_slots())
      w.Key("op_name").String(graph.op(diag.op).name);
    w.Key("edge").Int(diag.edge);
    w.Key("message").String(diag.message);
    w.Key("fix_hint").String(diag.fix_hint);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace fastt
