// Rule implementations for fastt-lint. Each check is a structural pattern
// matcher over the token stream (see lexer.h for why there is no AST);
// tests/lint_test.cc pins every rule's firing and every rule's clean case.
#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/lint.h"

namespace fastt {
namespace lint {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool InScope(const std::string& path,
             const std::vector<std::string>& prefixes) {
  for (const auto& p : prefixes)
    if (StartsWith(path, p)) return true;
  return false;
}

bool IsAllowed(const LintConfig& cfg, const std::string& rule,
               const std::string& path, const std::string& fn) {
  for (const auto& a : cfg.allows) {
    if (a.rule != rule) continue;
    if (path.find(a.file_substr) == std::string::npos) continue;
    if (a.function == "*" || a.function == fn) return true;
  }
  return false;
}

Severity RuleSeverity(const std::string& rule_id) {
  for (const auto& r : RuleCatalog())
    if (r.id == rule_id) return r.severity;
  return Severity::kError;
}

void Emit(std::vector<Finding>* out, const std::string& rule,
          const std::string& file, int line, const std::string& message,
          const std::string& fix_hint) {
  Finding f;
  f.rule_id = rule;
  f.severity = RuleSeverity(rule);
  f.file = file;
  f.line = line;
  f.message = message;
  f.fix_hint = fix_hint;
  out->push_back(std::move(f));
}

const std::set<std::string>& UnorderedContainerNames() {
  static const std::set<std::string> kNames = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kNames;
}

// ---- D1: unordered-container iteration ------------------------------------

// Collects names declared with an unordered container type anywhere in the
// file set (members declared in a header are iterated in the matching
// .cc, so the name table must be global).
void CollectUnorderedNames(const LexedFile& lex,
                           std::set<std::string>* names) {
  const auto& toks = lex.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        UnorderedContainerNames().count(toks[i].text) == 0)
      continue;
    size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<")
      j = SkipTemplateArgs(toks, j, toks.size());
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const"))
      ++j;
    if (j + 1 >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
    const std::string& follower = toks[j + 1].text;
    if (follower == ";" || follower == "=" || follower == "(" ||
        follower == "{" || follower == "," || follower == ")")
      names->insert(toks[j].text);
  }
}

void CheckD1(const SourceFile& src, const LexedFile& lex,
             const std::vector<std::string>& fns,
             const std::set<std::string>& unordered_names,
             const LintConfig& cfg, std::vector<Finding>* out) {
  if (!InScope(src.path, cfg.result_paths)) return;
  const auto& toks = lex.tokens;
  const char* kHint =
      "iterate an ordered container (std::map/std::set) or a sorted "
      "snapshot (copy keys, std::sort) so the visit order is part of the "
      "contract";
  for (size_t i = 0; i < toks.size(); ++i) {
    // Range-for over an unordered container: `for (... : expr)` where the
    // range expression's final identifier names an unordered container
    // (member chains like `per.by_device` resolve to the last link).
    if (toks[i].text == "for" && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      const size_t close = SkipBalanced(toks, i + 1, toks.size());
      int depth = 0;
      size_t colon = 0;
      for (size_t k = i + 1; k < close; ++k) {
        if (toks[k].text == "(" || toks[k].text == "[") ++depth;
        else if (toks[k].text == ")" || toks[k].text == "]") --depth;
        else if (toks[k].text == ":" && depth == 1) {
          colon = k;
          break;
        }
      }
      if (colon != 0 && close >= 2) {
        const Token& last = toks[close - 2];  // token before ')'
        if (last.kind == TokKind::kIdent &&
            unordered_names.count(last.text) > 0 &&
            !IsAllowed(cfg, "fastt-D1", src.path, fns[i])) {
          Emit(out, "fastt-D1", src.path, toks[i].line,
               "range-for over unordered container '" + last.text +
                   "' — hash iteration order is not deterministic across "
                   "libraries or insertion histories",
               kHint);
        }
      }
    }
    // Iterator-based traversal: `name.begin()` / cbegin / rbegin.
    if (toks[i].kind == TokKind::kIdent &&
        unordered_names.count(toks[i].text) > 0 && i + 3 < toks.size() &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin" ||
         toks[i + 2].text == "rbegin") &&
        toks[i + 3].text == "(") {
      if (!IsAllowed(cfg, "fastt-D1", src.path, fns[i]))
        Emit(out, "fastt-D1", src.path, toks[i].line,
             "iterator traversal of unordered container '" + toks[i].text +
                 "' via ." + toks[i + 2].text +
                 "() — hash iteration order is not deterministic",
             kHint);
    }
  }
}

// ---- D2: wall clocks & libc randomness in result paths ---------------------

void CheckD2(const SourceFile& src, const LexedFile& lex,
             const std::vector<std::string>& fns, const LintConfig& cfg,
             std::vector<Finding>* out) {
  if (!InScope(src.path, cfg.result_paths)) return;
  const auto& toks = lex.tokens;
  const char* kHint =
      "result paths must be a pure function of their inputs: use util/rng "
      "(seeded, deterministic) for randomness; wall-clock telemetry "
      "belongs in allowlisted timer sites (see fastt-lint.conf)";
  // Clock types, plus aliases like `using Clock = std::chrono::steady_clock`.
  std::set<std::string> clocks = {"steady_clock", "system_clock",
                                  "high_resolution_clock"};
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].text == "using" && toks[i + 1].kind == TokKind::kIdent &&
        toks[i + 2].text == "=") {
      for (size_t k = i + 3; k < toks.size() && toks[k].text != ";"; ++k)
        if (clocks.count(toks[k].text) > 0) {
          clocks.insert(toks[i + 1].text);
          break;
        }
    }
  }
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const bool member_access =
        i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
    const std::string& t = toks[i].text;
    const bool call = i + 1 < toks.size() && toks[i + 1].text == "(";
    std::string what;
    if ((t == "rand" || t == "srand") && call && !member_access) {
      what = t + "() draws from hidden global state";
    } else if (t == "random_device") {
      what = "std::random_device is entropy-seeded";
    } else if (t == "time" && call && !member_access && i + 2 < toks.size() &&
               (toks[i + 2].text == ")" || toks[i + 2].text == "nullptr" ||
                toks[i + 2].text == "NULL" || toks[i + 2].text == "0")) {
      what = "time() reads the wall clock";
    } else if ((t == "clock_gettime" || t == "gettimeofday") && call &&
               !member_access) {
      what = t + "() reads the wall clock";
    } else if (clocks.count(t) > 0 && i + 2 < toks.size() &&
               toks[i + 1].text == "::" && toks[i + 2].text == "now") {
      what = t + "::now() reads the wall clock";
    }
    if (what.empty()) continue;
    if (lex.Suppressed(toks[i].line, "fastt-D2")) continue;
    if (IsAllowed(cfg, "fastt-D2", src.path, fns[i])) continue;
    Emit(out, "fastt-D2", src.path, toks[i].line,
         "nondeterministic source in result path: " + what +
             (fns[i].empty() ? "" : " (in " + fns[i] + ")"),
         kHint);
  }
}

// ---- D3: pointer-keyed ordered containers ----------------------------------

void CheckD3(const SourceFile& src, const LexedFile& lex,
             const std::vector<std::string>& fns, const LintConfig& cfg,
             std::vector<Finding>* out) {
  if (!InScope(src.path, cfg.result_paths)) return;
  const auto& toks = lex.tokens;
  static const std::set<std::string> kOrdered = {
      "map", "set", "multimap", "multiset", "priority_queue"};
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || kOrdered.count(toks[i].text) == 0)
      continue;
    if (toks[i + 1].text != "<") continue;
    // First template argument: tokens up to the first ',' or the matching
    // '>' at depth 1.
    const size_t close = SkipTemplateArgs(toks, i + 1, toks.size());
    if (close == i + 2) continue;  // comparison, not a template
    size_t arg_end = close - 1;
    int depth = 0;
    for (size_t k = i + 1; k < close; ++k) {
      if (toks[k].text == "<" || toks[k].text == "(" || toks[k].text == "[")
        ++depth;
      else if (toks[k].text == ">" || toks[k].text == ")" ||
               toks[k].text == "]")
        --depth;
      else if (toks[k].text == "," && depth == 1) {
        arg_end = k;
        break;
      }
    }
    if (arg_end == 0 || toks[arg_end - 1].text != "*") continue;
    if (lex.Suppressed(toks[i].line, "fastt-D3")) continue;
    if (IsAllowed(cfg, "fastt-D3", src.path, fns[i])) continue;
    Emit(out, "fastt-D3", src.path, toks[i].line,
         "ordered container '" + toks[i].text +
             "' keyed by a pointer — ordering by address varies run to run",
         "key by a stable id (OpId, DeviceId, interned index) instead of "
         "an object address");
  }
}

// ---- D4: shared accumulation inside ParallelFor lambdas --------------------

// Identifiers declared inside [begin, end): `<prev> name <follower>` where
// prev looks like the tail of a type and follower starts an initializer,
// a ctor call, or ends the declaration.
std::set<std::string> DeclaredIn(const std::vector<Token>& toks,
                                 size_t begin, size_t end) {
  std::set<std::string> declared;
  for (size_t i = begin; i + 1 < end; ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    if (i == 0) continue;
    const Token& prev = toks[i - 1];
    const std::string& next = toks[i + 1].text;
    const bool type_tail =
        (prev.kind == TokKind::kIdent && prev.text != "return") ||
        prev.text == ">" || prev.text == "*" || prev.text == "&";
    if (!type_tail) continue;
    if (next == "=" || next == ";" || next == "(" || next == "{")
      declared.insert(toks[i].text);
  }
  return declared;
}

// Resolves the base identifier of the lvalue ending at token `last`
// (walking back over `a.b[i]->c` chains). Returns "" when the base is not
// a plain identifier. Sets `indexed_by_param` when any subscript along the
// chain mentions `index_param`.
std::string LvalueBase(const std::vector<Token>& toks, size_t last,
                       size_t begin, const std::string& index_param,
                       bool* indexed_by_param) {
  size_t k = last;
  std::string base;
  while (true) {
    if (k < begin) return "";
    const Token& t = toks[k];
    if (t.text == "]") {
      // Walk back to the matching '[' and inspect the subscript.
      int depth = 0;
      size_t open = k + 1;
      while (open > begin) {
        --open;
        if (toks[open].text == "]") ++depth;
        else if (toks[open].text == "[" && --depth == 0) break;
      }
      for (size_t s = open + 1; s < k; ++s)
        if (toks[s].text == index_param) *indexed_by_param = true;
      if (open == begin) return "";
      k = open - 1;
      continue;
    }
    if (t.text == ")") return "";  // call result; not a shared variable
    if (t.kind == TokKind::kIdent) {
      base = t.text;
      if (k > begin &&
          (toks[k - 1].text == "." || toks[k - 1].text == "->")) {
        k -= 2;
        continue;
      }
      if (k > begin && toks[k - 1].text == "::") return "";  // qualified
      return base;
    }
    if (t.text == "*") {  // deref write through a captured pointer
      --k;
      continue;
    }
    return "";
  }
}

void CheckD4(const SourceFile& src, const LexedFile& lex,
             const std::vector<std::string>& fns, const LintConfig& cfg,
             std::vector<Finding>* out) {
  if (!InScope(src.path, cfg.result_paths)) return;
  const auto& toks = lex.tokens;
  static const std::set<std::string> kWriteOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--"};
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "insert",  "emplace",  "erase",
      "clear",     "resize",       "reserve", "pop_back", "push",
      "pop",       "store",        "fetch_add", "fetch_sub"};
  const char* kHint =
      "write each index's result into its own caller-owned slot "
      "(results[i] = ...) and reduce serially in index order after the "
      "ParallelFor returns";
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "ParallelFor" || toks[i + 1].text != "(") continue;
    const size_t call_end = SkipBalanced(toks, i + 1, toks.size());
    // Locate the lambda argument: a '[' directly after '(' or ','.
    size_t lb = 0;
    for (size_t k = i + 2; k < call_end; ++k) {
      if (toks[k].text == "[" &&
          (toks[k - 1].text == "(" || toks[k - 1].text == ",")) {
        lb = k;
        break;
      }
    }
    if (lb == 0) continue;  // named-function body; nothing lexical to check
    size_t after_capture = SkipBalanced(toks, lb, call_end);
    // Parameter list (optional) and the index parameter's name.
    std::string index_param;
    std::set<std::string> params;
    size_t body_open = after_capture;
    if (after_capture < call_end && toks[after_capture].text == "(") {
      const size_t pend = SkipBalanced(toks, after_capture, call_end);
      for (size_t k = after_capture + 1; k + 1 < pend; ++k) {
        if (toks[k].kind == TokKind::kIdent &&
            (toks[k + 1].text == "," || toks[k + 1].text == ")")) {
          params.insert(toks[k].text);
          if (index_param.empty()) index_param = toks[k].text;
        }
      }
      body_open = pend;
    }
    while (body_open < call_end && toks[body_open].text != "{") ++body_open;
    if (body_open >= call_end) continue;
    const size_t body_end = SkipBalanced(toks, body_open, call_end);
    std::set<std::string> declared =
        DeclaredIn(toks, body_open + 1, body_end - 1);
    declared.insert(params.begin(), params.end());

    for (size_t k = body_open + 1; k + 1 < body_end; ++k) {
      const std::string& t = toks[k].text;
      int line = toks[k].line;
      std::string base;
      bool indexed = false;
      std::string verb;
      if (kWriteOps.count(t) > 0 && toks[k].kind == TokKind::kPunct) {
        size_t last = k >= 1 ? k - 1 : 0;
        if ((t == "++" || t == "--") && toks[last].kind != TokKind::kIdent &&
            toks[last].text != "]") {
          // Prefix form: operand follows.
          if (toks[k + 1].kind == TokKind::kIdent) {
            base = LvalueBase(toks, k + 1, body_open, index_param, &indexed);
            line = toks[k + 1].line;
          }
        } else {
          base = LvalueBase(toks, last, body_open, index_param, &indexed);
        }
        verb = "writes ('" + t + "')";
      } else if (toks[k].kind == TokKind::kIdent && kMutators.count(t) > 0 &&
                 k + 1 < body_end && toks[k + 1].text == "(" && k >= 2 &&
                 (toks[k - 1].text == "." || toks[k - 1].text == "->")) {
        base = LvalueBase(toks, k - 2, body_open, index_param, &indexed);
        verb = "mutates (." + t + ")";
      }
      if (base.empty() || indexed) continue;
      if (declared.count(base) > 0) continue;
      if (lex.Suppressed(line, "fastt-D4")) continue;
      if (IsAllowed(cfg, "fastt-D4", src.path, fns[k])) continue;
      Emit(out, "fastt-D4", src.path, line,
           "ParallelFor lambda " + verb + " captured variable '" + base +
               "' not subscripted by the index parameter" +
               (index_param.empty() ? "" : " '" + index_param + "'") +
               " — cross-iteration accumulation is a data race and breaks "
               "--jobs invariance",
           kHint);
    }
  }
}

// ---- S1: signal-handler reachability ---------------------------------------

struct CallSite {
  std::string callee;
  std::string file;
  int line = 0;
  // Member-access calls (x.f(), p->f()) are checked against the banned
  // list but not traversed: name-level resolution cannot tell one class's
  // `size` from another's, and following them by name alone chains the
  // handler into unrelated classes (EventLog::size takes a lock; the
  // handler's ring.size() does not). Free-function helpers — the only way
  // handler code calls into the repo — resolve exactly.
  bool member = false;
};

struct FnDef {
  std::string file;
  std::vector<CallSite> calls;
};

const std::set<std::string>& SignalBanned() {
  static const std::set<std::string> kBanned = {
      // Allocation.
      "malloc", "calloc", "realloc", "free", "posix_memalign",
      "aligned_alloc", "strdup", "make_unique", "make_shared", "push_back",
      "emplace_back", "resize", "reserve",
      // Locks.
      "lock", "unlock", "try_lock", "pthread_mutex_lock",
      "pthread_mutex_unlock", "MutexLock", "lock_guard", "unique_lock",
      // stdio & friends.
      "printf", "fprintf", "sprintf", "snprintf", "vsnprintf", "vfprintf",
      "puts", "fputs", "putchar", "fwrite", "fread", "fopen", "fclose",
      "fflush", "perror", "syslog", "FASTT_LOG", "FASTT_CHECK",
      "FASTT_CHECK_MSG",
      // Dynamic loader (takes an internal lock, may allocate).
      "dlopen", "dlsym", "dladdr",
      // Pseudo-call recorded for the `new` keyword.
      "operator new"};
  return kBanned;
}

void CheckS1(const std::vector<SourceFile>& files,
             const std::vector<LexedFile>& lexed, const LintConfig& cfg,
             std::vector<Finding>* out) {
  if (cfg.handler_roots.empty()) return;
  static const std::set<std::string> kNotACall = {
      "if",       "for",     "while",       "switch",     "return",
      "sizeof",   "alignof", "decltype",    "catch",      "defined",
      "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
      "assert",   "noexcept"};
  // Name-level call graph over the whole file set.
  std::map<std::string, FnDef> defs;
  for (size_t f = 0; f < files.size(); ++f) {
    const auto& toks = lexed[f].tokens;
    const std::vector<std::string> fns = EnclosingFunctions(toks);
    for (size_t i = 0; i < toks.size(); ++i) {
      if (fns[i].empty()) continue;
      FnDef& def = defs[fns[i]];
      if (def.file.empty()) def.file = files[f].path;
      if (toks[i].text == "new" && toks[i].kind == TokKind::kIdent) {
        def.calls.push_back({"operator new", files[f].path, toks[i].line});
        continue;
      }
      if (toks[i].kind == TokKind::kIdent && i + 1 < toks.size() &&
          toks[i + 1].text == "(" && kNotACall.count(toks[i].text) == 0 &&
          toks[i].text != fns[i]) {
        const bool member =
            i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
        def.calls.push_back(
            {toks[i].text, files[f].path, toks[i].line, member});
      }
      // Ctor-style declaration `MutexLock hold(mu)`: the constructor runs,
      // so record a call to the type name — otherwise a RAII guard only
      // fires when the variable happens to be named `lock`.
      if (toks[i].kind == TokKind::kIdent && i + 2 < toks.size() &&
          toks[i + 1].kind == TokKind::kIdent && toks[i + 2].text == "(" &&
          kNotACall.count(toks[i].text) == 0 && toks[i].text != fns[i]) {
        def.calls.push_back(
            {toks[i].text, files[f].path, toks[i].line, false});
      }
    }
  }
  // BFS from the handler roots; remember the discovery edge so findings
  // can print the call chain.
  std::map<std::string, std::string> parent;  // fn -> caller
  std::vector<std::string> queue;
  std::set<std::string> visited;
  for (const auto& root : cfg.handler_roots) {
    if (defs.count(root) == 0) continue;
    queue.push_back(root);
    visited.insert(root);
  }
  // Map a function back to the LexedFile holding it, for suppressions.
  auto lex_for = [&](const std::string& path) -> const LexedFile* {
    for (size_t f = 0; f < files.size(); ++f)
      if (files[f].path == path) return &lexed[f];
    return nullptr;
  };
  while (!queue.empty()) {
    const std::string fn = queue.back();
    queue.pop_back();
    const FnDef& def = defs[fn];
    for (const CallSite& site : def.calls) {
      if (SignalBanned().count(site.callee) > 0) {
        const LexedFile* lf = lex_for(site.file);
        if (lf != nullptr && lf->Suppressed(site.line, "fastt-S1")) continue;
        if (IsAllowed(cfg, "fastt-S1", site.file, fn)) continue;
        // Render the chain root -> ... -> fn.
        std::vector<std::string> chain = {fn};
        auto it = parent.find(fn);
        while (it != parent.end()) {
          chain.push_back(it->second);
          it = parent.find(it->second);
        }
        std::string path_str;
        for (auto c = chain.rbegin(); c != chain.rend(); ++c)
          path_str += (path_str.empty() ? "" : " -> ") + *c;
        Emit(out, "fastt-S1", site.file, site.line,
             "'" + site.callee + "' is not async-signal-safe but is "
             "reachable from signal handler via " + path_str,
             "signal handlers may only write preallocated slots, walk "
             "their own stack, and read the clock; move this work to the "
             "post-hoc drain path");
      } else if (!site.member && defs.count(site.callee) > 0 &&
                 visited.insert(site.callee).second) {
        parent[site.callee] = fn;
        queue.push_back(site.callee);
      }
    }
  }
}

// ---- A1: untagged heap containers in memtrack-covered subsystems -----------

void CheckA1(const SourceFile& src, const LexedFile& lex,
             const std::vector<std::string>& fns, const LintConfig& cfg,
             std::vector<Finding>* out) {
  if (!InScope(src.path, cfg.tagged_paths)) return;
  const auto& toks = lex.tokens;
  static const std::set<std::string> kHeapContainers = {
      "vector", "deque",    "map",           "set",
      "list",   "multimap", "multiset",      "queue",
      "stack",  "priority_queue", "unordered_map", "unordered_set"};
  for (size_t i = 2; i + 1 < toks.size(); ++i) {
    // Only std::-qualified spellings: `std :: X <`; Tagged* aliases are
    // different identifiers and never match.
    if (toks[i].kind != TokKind::kIdent ||
        kHeapContainers.count(toks[i].text) == 0)
      continue;
    if (toks[i - 1].text != "::" || toks[i - 2].text != "std") continue;
    if (toks[i + 1].text != "<") continue;
    const size_t close = SkipTemplateArgs(toks, i + 1, toks.size());
    bool tagged = false;
    for (size_t k = i + 2; k < close; ++k)
      if (StartsWith(toks[k].text, "Tagged")) tagged = true;
    if (tagged) continue;
    if (lex.Suppressed(toks[i].line, "fastt-A1")) continue;
    if (IsAllowed(cfg, "fastt-A1", src.path, fns[i])) continue;
    Emit(out, "fastt-A1", src.path, toks[i].line,
         "untagged heap container std::" + toks[i].text +
             " in memtrack-covered subsystem — its bytes escape the "
             "tagged-heap accounting (DESIGN.md §13)",
         "use TaggedVector / a TaggedAlloc<T> allocator argument so "
         "allocations and frees land on the owning MemTag");
  }
}

uint64_t Fnv1a(const std::string& s, uint64_t h = 1469598103934665603ULL) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// Whitespace-collapsed source line `line` (1-based) of `content`.
std::string LineSnippet(const std::string& content, int line) {
  size_t start = 0;
  for (int l = 1; l < line && start != std::string::npos; ++l)
    start = content.find('\n', start) == std::string::npos
                ? std::string::npos
                : content.find('\n', start) + 1;
  if (start == std::string::npos) return "";
  size_t end = content.find('\n', start);
  if (end == std::string::npos) end = content.size();
  std::string snippet;
  bool in_space = true;
  for (size_t i = start; i < end; ++i) {
    const char c = content[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_space) snippet.push_back(' ');
      in_space = true;
    } else {
      snippet.push_back(c);
      in_space = false;
    }
  }
  while (!snippet.empty() && snippet.back() == ' ') snippet.pop_back();
  return snippet;
}

}  // namespace

std::vector<Finding> LintSources(const std::vector<SourceFile>& files,
                                 const LintConfig& cfg) {
  std::vector<Finding> findings;
  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  for (const auto& f : files) lexed.push_back(Lex(f.content));

  std::set<std::string> unordered_names;
  for (const auto& lf : lexed) CollectUnorderedNames(lf, &unordered_names);

  for (size_t i = 0; i < files.size(); ++i) {
    const std::vector<std::string> fns = EnclosingFunctions(lexed[i].tokens);
    CheckD1(files[i], lexed[i], fns, unordered_names, cfg, &findings);
    CheckD2(files[i], lexed[i], fns, cfg, &findings);
    CheckD3(files[i], lexed[i], fns, cfg, &findings);
    CheckD4(files[i], lexed[i], fns, cfg, &findings);
    CheckA1(files[i], lexed[i], fns, cfg, &findings);
  }
  CheckS1(files, lexed, cfg, &findings);

  // Line-level suppressions (D2/D4/S1 consult them inline because they
  // know better line anchors; this central pass covers the rest).
  std::map<std::string, const LexedFile*> lex_by_path;
  for (size_t i = 0; i < files.size(); ++i)
    lex_by_path[files[i].path] = &lexed[i];
  std::vector<Finding> kept;
  for (auto& f : findings) {
    auto it = lex_by_path.find(f.file);
    if (it != lex_by_path.end() && it->second->Suppressed(f.line, f.rule_id))
      continue;
    kept.push_back(std::move(f));
  }
  findings = std::move(kept);

  // Snippets + fingerprints (stable across unrelated edits: no line
  // numbers, just rule|file|normalized line text).
  std::map<std::string, const std::string*> content_by_path;
  for (const auto& f : files) content_by_path[f.path] = &f.content;
  for (auto& f : findings) {
    auto it = content_by_path.find(f.file);
    if (it != content_by_path.end())
      f.snippet = LineSnippet(*it->second, f.line);
    f.fingerprint = Fnv1a(f.rule_id + "|" + f.file + "|" + f.snippet);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule_id < b.rule_id;
            });
  return findings;
}

}  // namespace lint
}  // namespace fastt
