#include "lint/lexer.h"

#include <cctype>
#include <cstring>

namespace fastt {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuation, maximal munch. '>>' and '<<' are
// deliberately absent: template-argument scanning needs every '>' as its
// own token, and nothing the checks match cares about shifts.
const char* const kPunct3[] = {"<=>", "...", "->*"};
const char* const kPunct2[] = {"::", "->", "++", "--", "+=", "-=", "*=",
                               "/=", "%=", "&=", "|=", "^=", "==", "!=",
                               "<=", ">=", "&&", "||"};

// Records NOLINT / NOLINTNEXTLINE markers found in a comment.
void MineComment(const std::string& text, int line, LexedFile* out) {
  size_t pos = 0;
  while ((pos = text.find("NOLINT", pos)) != std::string::npos) {
    size_t after = pos + std::strlen("NOLINT");
    int target = line;
    if (text.compare(pos, std::strlen("NOLINTNEXTLINE"), "NOLINTNEXTLINE") ==
        0) {
      after = pos + std::strlen("NOLINTNEXTLINE");
      target = line + 1;
    }
    auto& rules = out->suppressions[target];
    if (after < text.size() && text[after] == '(') {
      const size_t close = text.find(')', after);
      std::string list = text.substr(
          after + 1, close == std::string::npos ? std::string::npos
                                                : close - after - 1);
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        std::string name = list.substr(start, comma - start);
        // Trim.
        while (!name.empty() && std::isspace(static_cast<unsigned char>(
                                    name.front())))
          name.erase(name.begin());
        while (!name.empty() &&
               std::isspace(static_cast<unsigned char>(name.back())))
          name.pop_back();
        // NOLINT(fastt-lint) suppresses the whole catalog, like bare
        // NOLINT; specific ids suppress just themselves.
        if (name == "fastt-lint") {
          rules.insert("*");
        } else if (!name.empty()) {
          rules.insert(name);
        }
        start = comma + 1;
      }
    } else {
      rules.insert("*");  // bare NOLINT: suppress everything
    }
    pos = after;
  }
}

}  // namespace

bool LexedFile::Suppressed(int line, const std::string& rule) const {
  auto it = suppressions.find(line);
  if (it == suppressions.end()) return false;
  return it->second.count("*") > 0 || it->second.count(rule) > 0;
}

LexedFile Lex(const std::string& content) {
  LexedFile out;
  const size_t n = content.size();
  size_t i = 0;
  int line = 1;
  auto peek = [&](size_t k) -> char {
    return i + k < n ? content[i + k] : '\0';
  };
  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments (mined for NOLINT, then dropped).
    if (c == '/' && peek(1) == '/') {
      size_t end = content.find('\n', i);
      if (end == std::string::npos) end = n;
      MineComment(content.substr(i, end - i), line, &out);
      i = end;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      size_t end = content.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      const std::string body = content.substr(i, end - i);
      MineComment(body, line, &out);
      for (char bc : body)
        if (bc == '\n') ++line;
      i = end == n ? n : end + 2;
      continue;
    }
    // Preprocessor directive: consume the (possibly continued) line,
    // harvesting quoted #include targets for the driver.
    if (c == '#') {
      size_t start = i;
      while (i < n) {
        if (content[i] == '\n') {
          if (i > start && content[i - 1] == '\\') {
            ++line;
            ++i;
            continue;
          }
          break;
        }
        ++i;
      }
      const std::string directive = content.substr(start, i - start);
      size_t inc = directive.find("include");
      if (inc != std::string::npos) {
        size_t q0 = directive.find('"', inc);
        if (q0 != std::string::npos) {
          size_t q1 = directive.find('"', q0 + 1);
          if (q1 != std::string::npos)
            out.quoted_includes.push_back(
                directive.substr(q0 + 1, q1 - q0 - 1));
        }
      }
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      size_t d0 = i + 2;
      size_t dend = d0;
      while (dend < n && content[dend] != '(') ++dend;
      const std::string closer =
          ")" + content.substr(d0, dend - d0) + "\"";
      size_t end = content.find(closer, dend);
      if (end == std::string::npos) end = n;
      else end += closer.size();
      for (size_t k = i; k < end && k < n; ++k)
        if (content[k] == '\n') ++line;
      out.tokens.push_back({TokKind::kString, "<raw-string>", line});
      i = end;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      ++i;
      while (i < n && content[i] != quote) {
        if (content[i] == '\\' && i + 1 < n) ++i;
        if (content[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;  // closing quote
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, "<literal>",
           start_line});
      continue;
    }
    if (IsIdentStart(c)) {
      size_t end = i;
      while (end < n && IsIdentChar(content[end])) ++end;
      out.tokens.push_back(
          {TokKind::kIdent, content.substr(i, end - i), line});
      i = end;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t end = i;
      while (end < n && (IsIdentChar(content[end]) || content[end] == '.' ||
                         content[end] == '\'' ||
                         ((content[end] == '+' || content[end] == '-') &&
                          end > i &&
                          (content[end - 1] == 'e' ||
                           content[end - 1] == 'E' ||
                           content[end - 1] == 'p' ||
                           content[end - 1] == 'P'))))
        ++end;
      out.tokens.push_back(
          {TokKind::kNumber, content.substr(i, end - i), line});
      i = end;
      continue;
    }
    // Punctuation, maximal munch over the fixed tables.
    bool matched = false;
    for (const char* p : kPunct3) {
      if (content.compare(i, 3, p) == 0) {
        out.tokens.push_back({TokKind::kPunct, p, line});
        i += 3;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* p : kPunct2) {
      if (content.compare(i, 2, p) == 0) {
        out.tokens.push_back({TokKind::kPunct, p, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

size_t SkipBalanced(const std::vector<Token>& toks, size_t open,
                    size_t end) {
  const std::string& o = toks[open].text;
  const std::string close = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (size_t i = open; i < end; ++i) {
    if (toks[i].text == o) ++depth;
    else if (toks[i].text == close && --depth == 0) return i + 1;
  }
  return end;
}

size_t SkipTemplateArgs(const std::vector<Token>& toks, size_t open,
                        size_t end) {
  int angle = 0;
  for (size_t i = open; i < end; ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") {
      ++angle;
    } else if (t == ">") {
      if (--angle == 0) return i + 1;
    } else if (t == "(" || t == "[" || t == "{") {
      i = SkipBalanced(toks, i, end) - 1;
    } else if (t == ";") {
      break;  // ran off the declaration: it was a comparison
    }
  }
  return open + 1;
}

std::vector<std::string> EnclosingFunctions(
    const std::vector<Token>& toks) {
  std::vector<std::string> result(toks.size());
  struct Scope {
    std::string fn;  // "" = non-function scope, inherits enclosing
  };
  std::vector<Scope> stack;
  auto innermost = [&]() -> std::string {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it)
      if (!it->fn.empty()) return it->fn;
    return "";
  };
  static const std::set<std::string> kControl = {
      "if",    "for",   "while", "switch", "catch",
      "return", "sizeof", "alignof", "decltype"};
  for (size_t i = 0; i < toks.size(); ++i) {
    result[i] = innermost();
    const std::string& t = toks[i].text;
    if (t == "}") {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (t != "{") continue;
    // Classify this '{'. Walk back over trailing qualifiers to find a
    // parameter list; its head names the function.
    std::string fn;
    size_t j = i;
    bool scanning = true;
    while (scanning && j > 0) {
      --j;
      const Token& b = toks[j];
      if (b.text == ")") {
        // Match back to the '('.
        int depth = 0;
        size_t k = j + 1;
        while (k > 0) {
          --k;
          if (toks[k].text == ")") ++depth;
          else if (toks[k].text == "(" && --depth == 0) break;
        }
        if (k > 0) {
          const Token& head = toks[k - 1];
          if (head.text == "]") {
            fn = "<lambda>";  // replaced by the enclosing name below
          } else if (head.text == "noexcept") {
            j = k;  // noexcept(...) qualifier: keep walking back
            continue;
          } else if (head.kind == TokKind::kIdent &&
                     kControl.count(head.text) == 0) {
            fn = head.text;
          }
        }
        scanning = false;
      } else if (b.text == "]") {
        fn = "<lambda>";  // capture-only lambda: [&]{ ... }
        scanning = false;
      } else if (b.kind == TokKind::kIdent &&
                 (b.text == "const" || b.text == "noexcept" ||
                  b.text == "override" || b.text == "final" ||
                  b.text == "mutable" || b.text == "try")) {
        continue;  // trailing qualifier, keep walking
      } else if (b.text == ">" || b.text == "<" || b.text == "," ||
                 b.text == "*" || b.text == "&" || b.text == "::" ||
                 b.text == "->" || b.kind == TokKind::kIdent) {
        continue;  // trailing return type tokens
      } else {
        scanning = false;  // init-list '{', control '{', plain block
      }
    }
    if (fn == "<lambda>") {
      // A lambda body belongs to the function it appears in.
      const std::string outer = innermost();
      if (!outer.empty()) fn = outer;
    }
    stack.push_back({fn});
  }
  return result;
}

}  // namespace lint
}  // namespace fastt
