// compile_commands.json driver for fastt-lint: resolves the translation
// units the build actually compiles, pulls in the project-local headers
// they include (headers carry contracts too — SearchDeadline lives in
// portfolio.h), and loads everything for LintSources.
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/lint.h"
#include "obs/json.h"

namespace fastt {
namespace lint {
namespace {

namespace fs = std::filesystem;

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool UnderAnyFilter(const std::string& rel,
                    const std::vector<std::string>& filters) {
  for (const auto& f : filters)
    if (rel.compare(0, f.size(), f) == 0) return true;
  return false;
}

// Repo-relative, '/'-separated, or "" when `p` is outside `root`.
std::string Relativize(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path canon = fs::weakly_canonical(p, ec);
  if (ec) return "";
  const std::string root_str = root.generic_string();
  const std::string path_str = canon.generic_string();
  if (path_str.size() <= root_str.size() ||
      path_str.compare(0, root_str.size(), root_str) != 0 ||
      path_str[root_str.size()] != '/')
    return "";
  return path_str.substr(root_str.size() + 1);
}

}  // namespace

bool CollectSources(const DriverOptions& options,
                    std::vector<SourceFile>* out, std::string* error) {
  std::string compdb_text;
  if (!ReadFile(options.compdb_path, &compdb_text)) {
    if (error != nullptr)
      *error = "cannot read compile_commands.json at " + options.compdb_path;
    return false;
  }
  JsonValue doc;
  std::string parse_error;
  if (!JsonParse(compdb_text, &doc, &parse_error) || !doc.is_array()) {
    if (error != nullptr)
      *error = options.compdb_path + " is not a compilation database: " +
               parse_error;
    return false;
  }
  std::error_code ec;
  const fs::path root = fs::weakly_canonical(
      options.root.empty() ? fs::current_path() : fs::path(options.root), ec);
  if (ec) {
    if (error != nullptr) *error = "cannot resolve root " + options.root;
    return false;
  }

  // Pass 1: translation units from the database, filtered to the repo.
  std::set<std::string> pending;  // repo-relative paths not yet loaded
  for (const JsonValue& entry : doc.items) {
    const JsonValue* file = entry.Find("file");
    if (file == nullptr) continue;
    const std::string rel = Relativize(file->StringOr(""), root);
    if (!rel.empty() && UnderAnyFilter(rel, options.path_filters))
      pending.insert(rel);
  }
  if (pending.empty()) {
    if (error != nullptr)
      *error = "no sources under the path filters in " + options.compdb_path;
    return false;
  }

  // Pass 2: fixed-point closure over quoted includes. Project convention:
  // quoted includes are relative to src/ (the single -I the build uses),
  // with the including file's directory as the fallback.
  std::set<std::string> loaded;
  while (!pending.empty()) {
    const std::string rel = *pending.begin();
    pending.erase(pending.begin());
    if (!loaded.insert(rel).second) continue;
    SourceFile src;
    src.path = rel;
    if (!ReadFile(root / rel, &src.content)) {
      if (error != nullptr) *error = "cannot read source file " + rel;
      return false;
    }
    const LexedFile lexed = Lex(src.content);
    for (const std::string& inc : lexed.quoted_includes) {
      const fs::path candidates[] = {root / "src" / inc,
                                     (root / rel).parent_path() / inc};
      for (const fs::path& cand : candidates) {
        const std::string inc_rel = Relativize(cand, root);
        if (inc_rel.empty() || loaded.count(inc_rel) > 0) continue;
        if (!UnderAnyFilter(inc_rel, options.path_filters)) continue;
        if (!fs::exists(cand, ec) || ec) continue;
        pending.insert(inc_rel);
        break;
      }
    }
    out->push_back(std::move(src));
  }
  return true;
}

}  // namespace lint
}  // namespace fastt
