// Internal tokenizer for the fastt-lint analyzer core. Not installed with
// the public lint.h API: checks.cc and the tests are the only consumers.
//
// This is a lexical model of C++, not a parser: it produces identifiers,
// literals, and punctuation with line numbers, strips comments (mining
// them for NOLINT markers first), skips preprocessor directives (mining
// quoted #include targets for the driver), and never allocates an AST.
// The checks built on top are structural pattern matchers; the fixture
// suite pins their behaviour on exactly the idioms the repo uses.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace fastt {
namespace lint {

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 1;
};

struct LexedFile {
  std::vector<Token> tokens;
  // line -> suppressed rule ids ("*" suppresses every fastt rule).
  std::map<int, std::set<std::string>> suppressions;
  // Targets of `#include "..."` directives, in order.
  std::vector<std::string> quoted_includes;

  bool Suppressed(int line, const std::string& rule) const;
};

LexedFile Lex(const std::string& content);

// Innermost enclosing function name for each token, "" at namespace /
// class scope. Lambdas inherit the enclosing function's name (a finding
// inside a lambda in PortfolioSearch is attributed to PortfolioSearch),
// with "<lambda>" only at file scope. Heuristic: a '{' preceded by a
// parenthesized parameter list whose head is a non-keyword identifier (or
// a lambda introducer) opens a function body.
std::vector<std::string> EnclosingFunctions(const std::vector<Token>& toks);

// Index just past the '>' matching the '<' at `open` (tokens[open] must be
// "<"). Tracks (), [], {} and nested <>; returns `open + 1` when no match
// is found before `end` (comparison expression, not a template).
size_t SkipTemplateArgs(const std::vector<Token>& toks, size_t open,
                        size_t end);

// Index just past the closer matching the opener at `open` ("(", "[" or
// "{"); `end` on imbalance.
size_t SkipBalanced(const std::vector<Token>& toks, size_t open, size_t end);

}  // namespace lint
}  // namespace fastt
