// Rule catalog, config/baseline parsing, and the three report surfaces
// (human text, fastt-lint/1 JSON, SARIF 2.1.0) for fastt-lint.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "obs/build_info.h"
#include "obs/json.h"

namespace fastt {
namespace lint {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "error";
}

const std::vector<RuleInfo>& RuleCatalog() {
  static const std::vector<RuleInfo>* catalog = new std::vector<RuleInfo>{
      {"fastt-D1", Severity::kError,
       "no iteration over unordered containers in result paths",
       "search results must be byte-identical at any --jobs count; hash "
       "iteration order is an implementation detail that silently changes "
       "tie-breaks (the PR 5 verifier caught exactly this class of bug in "
       "dpos.cc)"},
      {"fastt-D2", Severity::kError,
       "no wall clocks or libc randomness in result paths outside "
       "allowlisted telemetry timer sites",
       "a strategy must be a pure function of (graph, cluster, options, "
       "seed); wall-clock reads belong to wall_s telemetry and explicit "
       "wall-budget sites only"},
      {"fastt-D3", Severity::kError,
       "no pointer-keyed ordered containers in result paths",
       "ordering by address changes run to run under ASLR and allocator "
       "drift, so any decision derived from it is unreproducible"},
      {"fastt-D4", Severity::kError,
       "no shared-variable accumulation inside ParallelFor lambdas",
       "the deterministic-parallelism contract (DESIGN.md §9) is per-slot "
       "writes plus a serial index-order reduction; in-lambda += on a "
       "captured variable is a data race and reorders float reductions"},
      {"fastt-S1", Severity::kError,
       "nothing reachable from a signal handler may allocate, lock, or "
       "touch stdio",
       "the SIGPROF handler (DESIGN.md §16) may only write a preallocated "
       "ring slot, walk its own stack, and read the clock; one malloc in "
       "its closure deadlocks the profiled thread"},
      {"fastt-A1", Severity::kWarning,
       "heap containers in memtrack-covered subsystems must be tagged",
       "untagged allocations escape the per-tag live/peak accounting "
       "(DESIGN.md §13), so memstat under-reports and the bench-diff "
       "allocation gates lose coverage"},
  };
  return *catalog;
}

// ---- Config ----------------------------------------------------------------

bool LoadLintConfig(const std::string& text, LintConfig* cfg,
                    std::string* error) {
  bool reset_result_paths = false;
  bool reset_tagged_paths = false;
  bool reset_handlers = false;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;
    auto fail = [&](const std::string& why) {
      if (error != nullptr)
        *error = "fastt-lint.conf line " + std::to_string(lineno) + ": " + why;
      return false;
    };
    if (kind == "allow") {
      LintConfig::Allow a;
      if (!(ls >> a.rule >> a.file_substr >> a.function))
        return fail("allow needs <rule> <file-substring> <function|*>");
      cfg->allows.push_back(std::move(a));
    } else if (kind == "handler") {
      std::string fn;
      if (!(ls >> fn)) return fail("handler needs a function name");
      if (!reset_handlers) {
        cfg->handler_roots.clear();
        reset_handlers = true;
      }
      cfg->handler_roots.push_back(fn);
    } else if (kind == "result-path") {
      std::string p;
      if (!(ls >> p)) return fail("result-path needs a path prefix");
      if (!reset_result_paths) {
        cfg->result_paths.clear();
        reset_result_paths = true;
      }
      cfg->result_paths.push_back(p);
    } else if (kind == "tagged-path") {
      std::string p;
      if (!(ls >> p)) return fail("tagged-path needs a path prefix");
      if (!reset_tagged_paths) {
        cfg->tagged_paths.clear();
        reset_tagged_paths = true;
      }
      cfg->tagged_paths.push_back(p);
    } else {
      return fail("unknown directive '" + kind + "'");
    }
  }
  return true;
}

// ---- Baseline --------------------------------------------------------------

namespace {

std::string HexFingerprint(uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace

bool LoadBaseline(const std::string& json_text,
                  std::vector<BaselineEntry>* out, std::string* error) {
  JsonValue doc;
  if (!JsonParse(json_text, &doc, error)) return false;
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr ||
      schema->StringOr("") != "fastt-lint-baseline/1") {
    if (error != nullptr) *error = "not a fastt-lint-baseline/1 document";
    return false;
  }
  const JsonValue* entries = doc.Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    if (error != nullptr) *error = "missing entries array";
    return false;
  }
  for (const JsonValue& e : entries->items) {
    BaselineEntry b;
    b.rule = e.Find("rule") != nullptr ? e.Find("rule")->StringOr("") : "";
    b.file = e.Find("file") != nullptr ? e.Find("file")->StringOr("") : "";
    const JsonValue* fp = e.Find("fingerprint");
    if (fp != nullptr)
      b.fingerprint = std::strtoull(fp->StringOr("0").c_str(), nullptr, 16);
    out->push_back(std::move(b));
  }
  return true;
}

std::string BaselineToJson(const std::vector<Finding>& findings) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("fastt-lint-baseline/1");
  w.Key("entries").BeginArray();
  for (const Finding& f : findings) {
    if (f.baselined) continue;  // regenerating: already-matched stay out
    w.BeginObject();
    w.Key("rule").String(f.rule_id);
    w.Key("file").String(f.file);
    w.Key("fingerprint").String(HexFingerprint(f.fingerprint));
    w.Key("snippet").String(f.snippet);  // for humans reviewing the diff
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str() + "\n";
}

BaselineResult ApplyBaseline(std::vector<Finding>* findings,
                             const std::vector<BaselineEntry>& entries) {
  BaselineResult result;
  std::vector<bool> used(entries.size(), false);
  for (Finding& f : *findings) {
    for (size_t i = 0; i < entries.size(); ++i) {
      if (used[i]) continue;
      if (entries[i].rule == f.rule_id && entries[i].file == f.file &&
          entries[i].fingerprint == f.fingerprint) {
        f.baselined = true;
        used[i] = true;
        ++result.matched;
        break;
      }
    }
  }
  for (size_t i = 0; i < entries.size(); ++i)
    if (!used[i]) result.stale.push_back(entries[i]);
  return result;
}

// ---- Reports ---------------------------------------------------------------

std::string FindingsToText(const std::vector<Finding>& findings,
                           const BaselineResult* baseline) {
  std::ostringstream out;
  size_t errors = 0;
  size_t warnings = 0;
  size_t baselined = 0;
  for (const Finding& f : findings) {
    if (f.baselined) {
      ++baselined;
      continue;
    }
    if (f.severity == Severity::kError) ++errors;
    else ++warnings;
    out << f.file << ":" << f.line << ": " << SeverityName(f.severity)
        << " [" << f.rule_id << "] " << f.message << "\n";
    if (!f.fix_hint.empty()) out << "    fix: " << f.fix_hint << "\n";
    if (!f.snippet.empty()) out << "    > " << f.snippet << "\n";
  }
  if (baseline != nullptr) {
    for (const BaselineEntry& e : baseline->stale)
      out << "warning [fastt-baseline-stale] " << e.file << ": baseline "
          << "entry for " << e.rule
          << " no longer fires — regenerate the baseline "
          << "(fastt-lint --write-baseline)\n";
  }
  out << "fastt-lint: " << errors << " error(s), " << warnings
      << " warning(s), " << baselined << " baselined";
  if (baseline != nullptr && !baseline->stale.empty())
    out << ", " << baseline->stale.size() << " stale baseline entr"
        << (baseline->stale.size() == 1 ? "y" : "ies");
  out << "\n";
  return out.str();
}

std::string FindingsToJson(const std::vector<Finding>& findings,
                           const BaselineResult* baseline,
                           size_t files_scanned) {
  size_t errors = 0;
  size_t warnings = 0;
  size_t baselined = 0;
  for (const Finding& f : findings) {
    if (f.baselined) ++baselined;
    else if (f.severity == Severity::kError) ++errors;
    else ++warnings;
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("fastt-lint/1");
  w.Key("build");
  WriteBuildInfo(w);
  w.Key("summary").BeginObject();
  w.Key("files_scanned").Int(static_cast<int64_t>(files_scanned));
  w.Key("errors").Int(static_cast<int64_t>(errors));
  w.Key("warnings").Int(static_cast<int64_t>(warnings));
  w.Key("baselined").Int(static_cast<int64_t>(baselined));
  w.Key("stale_baseline")
      .Int(baseline != nullptr ? static_cast<int64_t>(baseline->stale.size())
                               : 0);
  w.EndObject();
  w.Key("rules").BeginArray();
  for (const RuleInfo& r : RuleCatalog()) {
    w.BeginObject();
    w.Key("id").String(r.id);
    w.Key("severity").String(SeverityName(r.severity));
    w.Key("summary").String(r.summary);
    w.EndObject();
  }
  w.EndArray();
  w.Key("findings").BeginArray();
  for (const Finding& f : findings) {
    w.BeginObject();
    w.Key("rule").String(f.rule_id);
    w.Key("severity").String(SeverityName(f.severity));
    w.Key("file").String(f.file);
    w.Key("line").Int(f.line);
    w.Key("message").String(f.message);
    w.Key("fix_hint").String(f.fix_hint);
    w.Key("snippet").String(f.snippet);
    w.Key("fingerprint").String(HexFingerprint(f.fingerprint));
    w.Key("baselined").Bool(f.baselined);
    w.EndObject();
  }
  w.EndArray();
  if (baseline != nullptr) {
    w.Key("stale_baseline").BeginArray();
    for (const BaselineEntry& e : baseline->stale) {
      w.BeginObject();
      w.Key("rule").String(e.rule);
      w.Key("file").String(e.file);
      w.Key("fingerprint").String(HexFingerprint(e.fingerprint));
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  return w.str() + "\n";
}

std::string FindingsToSarif(const std::vector<Finding>& findings) {
  JsonWriter w;
  w.BeginObject();
  w.Key("$schema")
      .String("https://json.schemastore.org/sarif-2.1.0.json");
  w.Key("version").String("2.1.0");
  w.Key("runs").BeginArray();
  w.BeginObject();
  w.Key("tool").BeginObject();
  w.Key("driver").BeginObject();
  w.Key("name").String("fastt-lint");
  w.Key("informationUri")
      .String("DESIGN.md §17 — project-specific static analysis");
  w.Key("version").String(BuildInfo().git_sha);
  w.Key("rules").BeginArray();
  for (const RuleInfo& r : RuleCatalog()) {
    w.BeginObject();
    w.Key("id").String(r.id);
    w.Key("shortDescription").BeginObject();
    w.Key("text").String(r.summary);
    w.EndObject();
    w.Key("fullDescription").BeginObject();
    w.Key("text").String(r.rationale);
    w.EndObject();
    w.Key("defaultConfiguration").BeginObject();
    w.Key("level").String(r.severity == Severity::kError ? "error"
                                                         : "warning");
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();  // driver
  w.EndObject();  // tool
  w.Key("results").BeginArray();
  for (const Finding& f : findings) {
    if (f.baselined) continue;  // suppressed findings stay out of SARIF
    w.BeginObject();
    w.Key("ruleId").String(f.rule_id);
    w.Key("level").String(f.severity == Severity::kError ? "error"
                                                         : "warning");
    w.Key("message").BeginObject();
    w.Key("text").String(f.message +
                         (f.fix_hint.empty() ? "" : " | fix: " + f.fix_hint));
    w.EndObject();
    w.Key("locations").BeginArray();
    w.BeginObject();
    w.Key("physicalLocation").BeginObject();
    w.Key("artifactLocation").BeginObject();
    w.Key("uri").String(f.file);
    w.EndObject();
    w.Key("region").BeginObject();
    w.Key("startLine").Int(f.line);
    w.EndObject();
    w.EndObject();  // physicalLocation
    w.EndObject();
    w.EndArray();  // locations
    w.Key("partialFingerprints").BeginObject();
    w.Key("fasttLint/v1").String(HexFingerprint(f.fingerprint));
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();  // results
  w.EndObject();  // run
  w.EndArray();   // runs
  w.EndObject();
  return w.str() + "\n";
}

int ExitCodeFor(const std::vector<Finding>& findings) {
  for (const Finding& f : findings)
    if (!f.baselined && f.severity == Severity::kError) return 1;
  return 0;
}

}  // namespace lint
}  // namespace fastt
