// fastt-lint: a project-specific static analyzer that proves the repo's
// determinism, signal-safety, and allocation-tagging contracts at the
// source level, before any test has to catch them at runtime.
//
// The repro's load-bearing guarantees are behavioural: byte-identical
// search results at any --jobs count, an async-signal-safe SIGPROF
// handler, complete tagged-heap accounting. Each is one careless edit away
// from a bug that only a lucky runtime test would catch (the verifier
// already caught a real tie-breaking bug in dpos.cc this way). This tool
// encodes each invariant as a lexical/structural check with a stable rule
// id, so the whole class of bug dies in CI instead of in a flaky repro.
//
// Primary analysis path: a self-contained C++ tokenizer plus small
// semantic passes (declaration tracking, enclosing-function attribution,
// an interprocedural name-level call graph), driven by the repo's
// compile_commands.json. The build image has no libclang dev headers and
// no clang++ binary, so an AST-based implementation would be dead code
// here; the token-level core runs everywhere the repo builds, and the
// fixture suite in tests/lint_test.cc pins each rule's exact behaviour.
//
// Rule catalog (stable ids; see RuleCatalog() and DESIGN.md §17):
//   fastt-D1  no result-affecting iteration over unordered containers in
//             result paths (hash order is not part of the contract)
//   fastt-D2  no wall-clock / libc-random calls in result paths outside
//             the allowlisted telemetry timer sites
//   fastt-D3  no pointer-keyed ordered containers in result paths
//             (address order varies run to run)
//   fastt-D4  no shared-variable accumulation inside ParallelFor lambdas
//             (per-slot writes + serial reduction is the contract)
//   fastt-S1  nothing reachable from a registered signal handler may
//             allocate, lock, or touch stdio
//   fastt-A1  heap containers in memtrack-covered subsystems must be
//             tagged (TaggedAlloc / Tagged* aliases)
//
// Suppression: `// NOLINT(fastt-D1)` on the offending line,
// `// NOLINTNEXTLINE(fastt-D1)` on the line above, or a committed
// baseline file for grandfathered findings (stale entries warn).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fastt {
namespace lint {

enum class Severity { kError, kWarning, kNote };

const char* SeverityName(Severity s);  // "error" / "warning" / "note"

// One catalog entry; the catalog is the single source of truth for rule
// metadata (text report, fastt-lint/1 JSON, SARIF rules array, docs).
struct RuleInfo {
  std::string id;         // stable, e.g. "fastt-D1"
  Severity severity = Severity::kError;
  std::string summary;    // one line, imperative
  std::string rationale;  // which runtime guarantee this protects
};

const std::vector<RuleInfo>& RuleCatalog();

struct Finding {
  std::string rule_id;
  Severity severity = Severity::kError;
  std::string file;      // repo-relative path
  int line = 0;
  std::string message;
  std::string fix_hint;
  std::string snippet;       // offending source line, whitespace-collapsed
  uint64_t fingerprint = 0;  // stable across unrelated edits (no line no.)
  bool baselined = false;    // matched a committed baseline entry
};

// Analyzer configuration. Path entries are repo-relative prefixes
// ("src/core/"); an empty list disables the corresponding scope.
struct LintConfig {
  // Directories whose code feeds search/sim results (D1–D4 scope).
  std::vector<std::string> result_paths = {"src/core/", "src/sim/",
                                           "src/baselines/", "src/cost/"};
  // Files whose heap containers must be tagged (A1 scope) — the
  // memtrack-covered subsystems from DESIGN.md §13.
  std::vector<std::string> tagged_paths = {
      "src/graph/graph.",       "src/sim/exec_sim.cc",
      "src/sim/incremental_sim.cc", "src/cost/cost_table.",
      "src/core/dpos.cc",       "src/core/os_dpos.cc"};
  // Signal-handler roots for the S1 reachability walk.
  std::vector<std::string> handler_roots = {"FasttProfSignalHandler"};
  // Allowlist: (rule, file substring, enclosing function) triples. A '*'
  // function matches any; the function matches any frame of the enclosing
  // function stack (so a lambda inside PortfolioSearch is covered by
  // "PortfolioSearch").
  struct Allow {
    std::string rule;
    std::string file_substr;
    std::string function;
  };
  std::vector<Allow> allows;
};

// Parses the committed fastt-lint.conf format: '#' comments, and lines
//   allow <rule-id> <file-substring> <function-name|*>
//   handler <function-name>
//   result-path <repo-relative-prefix>     (first use resets the default)
//   tagged-path <repo-relative-prefix>     (first use resets the default)
// Returns false with a reason on a malformed line.
bool LoadLintConfig(const std::string& text, LintConfig* cfg,
                    std::string* error);

struct SourceFile {
  std::string path;     // repo-relative
  std::string content;  // full text
};

// Runs every check over `files`. Per-file rules (D1–D4, A1) see one file
// at a time; S1 builds its call graph across the whole set, so handler
// helpers defined in other translation units resolve. Findings are sorted
// by (file, line, rule).
std::vector<Finding> LintSources(const std::vector<SourceFile>& files,
                                 const LintConfig& cfg);

// ---- Baseline ------------------------------------------------------------

struct BaselineEntry {
  std::string rule;
  std::string file;
  uint64_t fingerprint = 0;
};

// fastt-lint-baseline/1 JSON <-> entries.
bool LoadBaseline(const std::string& json_text,
                  std::vector<BaselineEntry>* out, std::string* error);
std::string BaselineToJson(const std::vector<Finding>& findings);

struct BaselineResult {
  size_t matched = 0;                  // findings flipped to baselined
  std::vector<BaselineEntry> stale;    // entries that matched nothing
};

// Marks findings matched by `entries` as baselined; returns the match
// count and the stale remainder (a stale entry means the grandfathered
// finding was fixed — the baseline should be regenerated, so it warns).
BaselineResult ApplyBaseline(std::vector<Finding>* findings,
                             const std::vector<BaselineEntry>& entries);

// ---- Reports -------------------------------------------------------------

// Human-readable report: one line per finding + summary tail.
std::string FindingsToText(const std::vector<Finding>& findings,
                           const BaselineResult* baseline);
// fastt-lint/1 JSON document.
std::string FindingsToJson(const std::vector<Finding>& findings,
                           const BaselineResult* baseline,
                           size_t files_scanned);
// SARIF 2.1.0 document (rule metadata from RuleCatalog()).
std::string FindingsToSarif(const std::vector<Finding>& findings);

// 1 when any unbaselined error-severity finding remains, else 0.
int ExitCodeFor(const std::vector<Finding>& findings);

// ---- Driver --------------------------------------------------------------

struct DriverOptions {
  std::string compdb_path;  // compile_commands.json
  std::string root;         // repo root; files are relativized against it
  // Only lint files whose repo-relative path starts with one of these
  // (default: "src/").
  std::vector<std::string> path_filters = {"src/"};
};

// Reads compile_commands.json, collects the translation units under the
// filters plus every project-local quoted include reachable from them
// (headers carry contracts too: SearchDeadline lives in portfolio.h), and
// loads their contents. Returns false with a reason on I/O or parse
// errors.
bool CollectSources(const DriverOptions& options,
                    std::vector<SourceFile>* out, std::string* error);

}  // namespace lint
}  // namespace fastt
