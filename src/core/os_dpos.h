// OS-DPOS — Operation Splitting + DPOS (paper Alg. 2).
//
// Starting from a DPOS schedule, walk the realized critical path in
// descending order of computation time and, for each op, probe splitting it
// along each parallelizable dimension with each candidate split count
// (rescheduling the rewritten graph with DPOS every time). Commit the best
// split only if it strictly improves FT(o_exit); stop at the first op whose
// best split does not improve (the paper's early exit).
#pragma once

#include "core/dpos.h"

namespace fastt {

struct OsDposOptions {
  DposOptions dpos;
  // Candidate split counts are 2, 4, ..., up to the device count (plus the
  // device count itself when it is not a power of two).
  // Safety valve on pathological graphs: maximum number of committed splits
  // (the paper's early exit usually stops far sooner; Table 6 reports only
  // one or two split op kinds per model).
  int max_splits = 8;
  // Maximum number of CP ops probed (the early exit usually fires first).
  int max_probed_ops = 32;
};

struct OsDposResult {
  Graph graph;         // input graph with all committed splits applied
  DposResult schedule; // final DPOS result on that graph
  std::vector<SplitDecision> splits;
  int probes = 0;      // DPOS invocations spent probing splits
  // Every (dim, count) trial probed, in probe order, with its predicted
  // makespan and whether it won; populated only when
  // OsDposOptions::dpos.record_provenance is set.
  std::vector<SplitTrialRecord> trials;
};

OsDposResult OsDpos(const Graph& g, const Cluster& cluster,
                    const CompCostModel& comp, const CommCostModel& comm,
                    const OsDposOptions& options = {});

}  // namespace fastt
