// Strategy (de)serialization — the artifact the checkpoint/restart cycle
// persists alongside the rewritten graph: a placement, an execution order,
// and the operation split list.
#pragma once

#include <iosfwd>
#include <string>

#include "core/strategy.h"

namespace fastt {

std::string SerializeStrategy(const Strategy& strategy);
void SerializeStrategy(const Strategy& strategy, std::ostream& out);

// Throws std::logic_error on malformed input or version mismatch.
Strategy DeserializeStrategy(const std::string& text);
Strategy DeserializeStrategy(std::istream& in);

}  // namespace fastt
