#include "core/model_parallel.h"

#include <algorithm>

#include "core/dpos.h"
#include "util/check.h"

namespace fastt {

bool FitsOnOneDevice(const Graph& g, const Cluster& cluster) {
  int64_t need = 0;
  for (OpId id : g.LiveOps()) need += MemNeed(g, id);
  int64_t smallest = cluster.device(0).usable_bytes();
  for (const Device& d : cluster.devices())
    smallest = std::min(smallest, d.usable_bytes());
  return need <= smallest;
}

std::vector<DeviceId> GreedyModelParallelPlacement(const Graph& g,
                                                   const Cluster& cluster) {
  const int32_t n_dev = cluster.num_devices();
  std::vector<DeviceId> placement(static_cast<size_t>(g.num_slots()),
                                  kInvalidDevice);

  // Memory attributed to each forward *layer* op: its own need plus the
  // need of everything colocated with it (optimizer state following a
  // variable) and of the variables/inputs it consumes — so the layer-wise
  // cut below balances the true per-layer footprint.
  std::vector<int64_t> attributed(static_cast<size_t>(g.num_slots()), 0);
  for (OpId id : g.LiveOps()) attributed[static_cast<size_t>(id)] =
      MemNeed(g, id);
  for (OpId id : g.LiveOps()) {
    const OpId target = g.op(id).colocate_with;
    if (target != kInvalidOp && target != id) {
      attributed[static_cast<size_t>(target)] +=
          attributed[static_cast<size_t>(id)];
      attributed[static_cast<size_t>(id)] = 0;
    }
  }
  auto is_source = [&](const Operation& op) {
    return op.type == OpType::kVariable || op.type == OpType::kInput;
  };
  for (OpId id : g.LiveOps()) {
    const Operation& op = g.op(id);
    if (!is_source(op)) continue;
    for (OpId consumer : g.Succs(id)) {
      attributed[static_cast<size_t>(consumer)] +=
          attributed[static_cast<size_t>(id)];
      attributed[static_cast<size_t>(id)] = 0;
      break;  // first consumer carries the weight
    }
  }

  int64_t total_need = 0;
  const std::vector<OpId> order = g.TopoOrder();
  for (OpId id : order)
    if (!g.op(id).is_backward) total_need += attributed[static_cast<size_t>(id)];
  const int64_t per_device_target = total_need / n_dev + 1;

  // Pass 1: forward layer ops in contiguous topological segments, balanced
  // by attributed memory. Variables and inputs are deferred — they follow
  // their first consumer, which keeps weights with the layer that uses them.
  DeviceId current = 0;
  int64_t used = 0;
  for (OpId id : order) {
    const Operation& op = g.op(id);
    if (op.is_backward || is_source(op)) continue;
    if (op.colocate_with != kInvalidOp &&
        placement[static_cast<size_t>(op.colocate_with)] != kInvalidDevice) {
      placement[static_cast<size_t>(id)] =
          placement[static_cast<size_t>(op.colocate_with)];
      continue;
    }
    const int64_t need = attributed[static_cast<size_t>(id)];
    if (current < n_dev - 1 &&
        (used + need > per_device_target ||
         used + need > cluster.device(current).usable_bytes())) {
      ++current;
      used = 0;
    }
    placement[static_cast<size_t>(id)] = current;
    used += need;
  }

  // Pass 1.5: variables and inputs live with their first placed consumer.
  for (OpId id : order) {
    const Operation& op = g.op(id);
    if (!is_source(op)) continue;
    DeviceId chosen = 0;
    for (OpId consumer : g.Succs(id)) {
      const DeviceId cd = placement[static_cast<size_t>(consumer)];
      if (cd != kInvalidDevice) {
        chosen = cd;
        break;
      }
    }
    placement[static_cast<size_t>(id)] = chosen;
  }

  // Pass 2: backward ops run where the forward activations they consume
  // live — gradients of layer k execute on layer k's device, so activations
  // never cross the cut. Topological order guarantees some predecessor is
  // already placed.
  for (OpId id : order) {
    const Operation& op = g.op(id);
    if (!op.is_backward) continue;
    if (op.colocate_with != kInvalidOp &&
        placement[static_cast<size_t>(op.colocate_with)] != kInvalidDevice) {
      placement[static_cast<size_t>(id)] =
          placement[static_cast<size_t>(op.colocate_with)];
      continue;
    }
    DeviceId chosen = kInvalidDevice;
    // A weight gradient feeds an optimizer update pinned to its variable:
    // run it there (the gradient tensor is usually far larger than the
    // activations it reads).
    for (OpId succ : g.Succs(id)) {
      const OpId anchor = g.op(succ).colocate_with;
      if (anchor == kInvalidOp) continue;
      const DeviceId ad = placement[static_cast<size_t>(anchor)];
      if (ad != kInvalidDevice) {
        chosen = ad;
        break;
      }
    }
    if (chosen == kInvalidDevice) {
      for (OpId pred : g.Preds(id)) {
        const DeviceId pd = placement[static_cast<size_t>(pred)];
        if (pd == kInvalidDevice) continue;
        // Prefer a forward predecessor (the activation's home).
        if (!g.op(pred).is_backward) {
          chosen = pd;
          break;
        }
        if (chosen == kInvalidDevice) chosen = pd;
      }
    }
    placement[static_cast<size_t>(id)] =
        chosen != kInvalidDevice ? chosen : 0;
  }
  return placement;
}

}  // namespace fastt
