// Operation prioritization (paper §5.1): the critical-path rank
//
//   rank_u(o_i) = w_i + max_{o_j in succ(o_i)} (c_{i,j} + rank_u(o_j))
//
// where w_i is the op's maximal execution time over devices and c_{i,j} the
// maximal tensor transmission time over device pairs — both read from the
// adaptive cost models (unknown costs price as 0, the exploration rule).
#pragma once

#include <vector>

#include "cost/comm_cost.h"
#include "cost/comp_cost.h"
#include "cost/cost_table.h"
#include "graph/graph.h"

namespace fastt {

// rank_u per OpId slot (0 for dead slots).
std::vector<double> ComputeRankU(const Graph& g, const CompCostModel& comp,
                                 const CommCostModel& comm,
                                 int32_t num_devices);

// Same, reading from dense cost-table snapshots (the search hot path).
std::vector<double> ComputeRankU(const Graph& g, const CompCostTable& comp,
                                 const CommCostTable& comm);

// The critical path: starting from the live op with the largest rank,
// repeatedly follow the successor with the largest rank.
std::vector<OpId> CriticalPathByRank(const Graph& g,
                                     const std::vector<double>& rank);

}  // namespace fastt
