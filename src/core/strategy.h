// Strategy types — the output of the paper's problem definition (§3): an
// operation partition list, a device placement for every (sub-)operation,
// and an execution order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "sim/device.h"

namespace fastt {

struct SplitDecision {
  std::string op_name;
  SplitDim dim = SplitDim::kNone;
  int num_splits = 0;
};

struct Strategy {
  // Device per OpId slot (kInvalidDevice for dead slots).
  std::vector<DeviceId> placement;
  // Ops sorted by scheduled start time — the execution order list A.
  std::vector<OpId> execution_order;
  // Split list SP (already applied to the strategy's graph).
  std::vector<SplitDecision> splits;
  // Scheduler's predicted finish time of the exit op, FT(o_exit).
  double predicted_makespan = 0.0;
};

// Order enforcement (paper §6.1): the index of each op in the execution
// order list becomes its executor priority; ops absent from the order get
// the lowest priority. Returns a vector indexed by OpId.
inline std::vector<int64_t> PrioritiesFromOrder(
    const std::vector<OpId>& order, int32_t num_slots) {
  std::vector<int64_t> priorities(static_cast<size_t>(num_slots),
                                  static_cast<int64_t>(order.size()));
  for (size_t i = 0; i < order.size(); ++i)
    priorities[static_cast<size_t>(order[i])] = static_cast<int64_t>(i);
  return priorities;
}

}  // namespace fastt
