// StrategyCalculator — the FastT workflow (paper §4).
//
// Pre-training stage: start from data parallelism (or greedy model
// parallelism if the model cannot fit one GPU), run a few profiled
// iterations, update the adaptive cost models, compute a new strategy with
// OS-DPOS, activate it (checkpoint + restart, accounted as overhead), and
// roll back if the measured per-iteration time regressed. Stop when the
// computation cost model is stable. Profiled execution comes from the
// simulated testbed; FastT's algorithms only ever see the profiles.
#pragma once

#include <cstdint>
#include <string>

#include "core/data_parallel.h"
#include "core/os_dpos.h"
#include "cost/stability.h"
#include "obs/calibration.h"
#include "obs/event_log.h"
#include "sim/exec_sim.h"

namespace fastt {

struct CalculatorOptions {
  // Profiled training steps per pre-training round.
  int profile_iterations = 3;
  // Upper bound on pre-training rounds (stability usually stops earlier).
  int max_rounds = 8;
  // Simulated execution-time noise the profiler observes.
  double noise_cv = 0.03;
  // Cost-model stability rule: max relative change / rounds below it.
  double stability_tolerance = 0.05;
  int stability_patience = 3;
  // Checkpoint + session-restart cost per strategy activation (seconds of
  // simulated wall time; contributes to Table 4's strategy time).
  double restart_overhead_s = 5.0;
  // Feature toggles (ablations & Fig. 2 / Table 6 experiments).
  bool enable_split = true;
  bool enable_order_enforcement = true;
  bool use_critical_path_device = true;
  OsDposOptions os_dpos;
  uint64_t seed = 7;
  // Measurement iterations for the final reported per-iteration time.
  int measure_iterations = 5;
  // Keep placement-decision provenance (candidate tables, split trials) of
  // the committed strategy — what `fastt explain` renders. Forwarded to
  // DposOptions::record_provenance for every search the workflow runs.
  bool record_provenance = false;
  // Verify every round's candidate strategy (analysis/verifier.h) before
  // spending an activation on it. The cheap O(V+E) structural rules always
  // run; a candidate with an error-severity finding is rejected outright —
  // a rollback named by its rule id, with no restart or profiling spent.
  bool verify_rounds = true;
  // Also run the [full] rules (per-device peak memory under the declared
  // order, comm-model coverage) each round. Off by default: the memory walk
  // is O(V + E) too but touches every edge twice more per round.
  bool verify_full = false;
};

// One pre-training round of the workflow: what the scheduler predicted, what
// the profiled steps measured, and what the calculator decided. The paper
// reports only the end of this trajectory; keeping every round makes the
// cost-model convergence (predicted-vs-measured error shrinking) and the
// rollback behaviour inspectable.
struct RoundSummary {
  int round = 0;              // 1-based
  double predicted_s = 0.0;   // DPOS FT(o_exit) of the candidate strategy
  double measured_s = 0.0;    // profiled mean iteration time of the candidate
  double best_before_s = 0.0; // incumbent's measured time entering the round
  double rel_error = 0.0;     // (predicted - measured) / measured
  bool committed = false;     // candidate became the incumbent
  bool oom = false;           // candidate ran out of memory (forced rollback)
  int ops_replaced = 0;       // placements changed vs. the incumbent
  int splits = 0;             // split decisions in the candidate
  double algorithm_s = 0.0;   // host CPU inside DPOS/OS-DPOS this round
  // Calibration digest of the round (full detail, including per-op residual
  // tables and rollback post-mortems, in CalculatorResult::calibration).
  double comp_err_p50 = 0.0;  // |rel err| percentiles of per-op comp costs
  double comp_err_p90 = 0.0;
  double comp_err_max = 0.0;
  double comm_err_p50 = 0.0;  // |rel err| percentiles of per-transfer costs
  double comm_err_p90 = 0.0;
  double stability_max_change = 0.0;  // StabilityDetector window statistics
  double stability_margin = 0.0;      // tolerance - max_change
  // Verifier verdict on the candidate (CalculatorOptions::verify_rounds).
  // A non-empty reject rule means the candidate never ran: measured_s,
  // rel_error and the calibration digest stay 0 for that round.
  int verify_errors = 0;
  int verify_warnings = 0;
  std::string verify_reject_rule;  // first error rule id, "" when clean
};

struct CalculatorResult {
  Graph graph;       // final training graph (with committed splits)
  Strategy strategy; // final placement / order / split list
  // Mean simulated per-iteration time of the final strategy.
  double iteration_s = 0.0;
  // Simulated wall-clock of the whole pre-training stage: profiling steps +
  // restarts (what the paper's Table 4 reports, since their strategy time is
  // dominated by profiled training and restarts).
  double strategy_time_s = 0.0;
  // Host CPU seconds actually spent inside DPOS/OS-DPOS.
  double algorithm_time_s = 0.0;
  int rounds = 0;
  int rollbacks = 0;
  int activations = 0;
  bool started_model_parallel = false;
  CompCostModel comp;
  CommCostModel comm;
  SimResult final_sim;  // one representative simulation of the final setup
  int64_t global_batch = 0;
  // Round-by-round trajectory of the pre-training loop (RunFastT only).
  std::vector<RoundSummary> round_history;
  // Per-round calibration audit: predicted-vs-realized residuals, error
  // histograms, comm-regression drift, rollback post-mortems (RunFastT only).
  std::vector<CalibrationRound> calibration;
  // Provenance of the committed strategy (CalculatorOptions::record_provenance
  // only): per-op candidate tables, OS-DPOS split trials, and the committed
  // schedule's predicted per-slot durations (predicted-vs-realized in
  // `fastt explain`; indexed by slot id of `graph`).
  std::vector<PlacementDecision> provenance;
  std::vector<SplitTrialRecord> split_trials;
  std::vector<double> predicted_op_s;
  // Structured JSONL narration of the whole workflow (probe, bootstrap,
  // rounds, rollbacks, stability stop, final measurement).
  EventLog events;
};

// Runs the complete FastT workflow for a model on a cluster.
// `batch` semantics follow `scaling` (global for strong, per-GPU for weak).
CalculatorResult RunFastT(const ModelBuildFn& build,
                          const std::string& model_name, int64_t batch,
                          Scaling scaling, const Cluster& cluster,
                          const CalculatorOptions& options = {});

// The data-parallel baseline measured the same way (FIFO executor, canonical
// placement); shares the result type for easy comparison.
CalculatorResult RunDataParallelBaseline(const ModelBuildFn& build,
                                         const std::string& model_name,
                                         int64_t batch, Scaling scaling,
                                         const Cluster& cluster,
                                         const CalculatorOptions& options = {});

// Fixed per-iteration overhead outside the executor (session dispatch, feed,
// summaries). Added when converting makespans to reported speeds.
inline constexpr double kSessionOverheadS = 0.004;

// samples/s given a result (applies the session overhead).
double SamplesPerSecond(const CalculatorResult& result);

// Renders every recorded placement decision whose op name contains `needle`
// (split sub-ops of `needle` included — they share the parent's name prefix),
// with predicted-vs-realized durations from the final simulation, followed by
// the matching OS-DPOS split trials. Requires a result produced with
// CalculatorOptions::record_provenance; empty needle matches everything.
std::string ExplainOps(const CalculatorResult& result,
                       const std::string& needle);

}  // namespace fastt
