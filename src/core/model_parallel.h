// Greedy model-parallel start placement.
//
// When a model cannot fit on one device, FastT bootstraps from model
// parallelism instead of data parallelism (paper §4): the graph is cut into
// contiguous topological segments balanced by memory demand, one segment per
// device. This is only the *starting* strategy used to obtain cost-model
// profiles; DPOS/OS-DPOS take over once costs are known.
#pragma once

#include <vector>

#include "graph/graph.h"
#include "sim/cluster.h"

namespace fastt {

// True if the whole graph fits on a single device under the pessimistic
// all-activations-live memory model (decides DP vs MP bootstrap).
bool FitsOnOneDevice(const Graph& g, const Cluster& cluster);

// Balanced topological segmentation over all devices. Colocation constraints
// are honored (colocated ops follow their target's segment).
std::vector<DeviceId> GreedyModelParallelPlacement(const Graph& g,
                                                   const Cluster& cluster);

}  // namespace fastt
