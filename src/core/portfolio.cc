#include "core/portfolio.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/exec_sim.h"
#include "util/thread_pool.h"

namespace fastt {

std::vector<OpId> ExecutionOrderOf(const SearchResult& result,
                                   const Cluster& cluster) {
  if (!result.execution_order.empty()) return result.execution_order;
  // Derive the order a FIFO dispatch actually runs: noise-free simulation,
  // ops sorted by start time. Ties (zero-duration ops, parallel branches
  // starting together) break by topological position so the derived order
  // always extends the dependency partial order — the verifier's order.deps
  // rule holds by construction.
  SimOptions so;
  so.track_memory = false;
  const SimResult sim = Simulate(result.graph, result.placement, cluster, so);
  const std::vector<OpId> topo = result.graph.TopoOrder();
  std::vector<int32_t> topo_pos(static_cast<size_t>(result.graph.num_slots()),
                                0);
  for (size_t i = 0; i < topo.size(); ++i)
    topo_pos[static_cast<size_t>(topo[i])] = static_cast<int32_t>(i);
  std::vector<OpId> order = result.graph.LiveOps();
  std::stable_sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    const double sa = sim.op_records[static_cast<size_t>(a)].start;
    const double sb = sim.op_records[static_cast<size_t>(b)].start;
    if (sa != sb) return sa < sb;
    return topo_pos[static_cast<size_t>(a)] < topo_pos[static_cast<size_t>(b)];
  });
  return order;
}

double ResimulateIteration(const SearchResult& result,
                           const Cluster& cluster) {
  SimOptions so;
  if (!result.execution_order.empty()) {
    so.dispatch = DispatchMode::kPriority;
    so.priorities = PrioritiesFromOrder(result.execution_order,
                                        result.graph.num_slots());
  }
  // Noise-free, memory-tracked — the searchers' own noise_cv=0 evaluation
  // options (including the OOM-is-infeasible convention), so reported
  // objectives must reproduce bit-exactly.
  const SimResult sim = Simulate(result.graph, result.placement, cluster, so);
  return sim.oom ? std::numeric_limits<double>::infinity() : sim.makespan;
}

Strategy StrategyFromSearchResult(const SearchResult& result,
                                  const Cluster& cluster) {
  Strategy strategy;
  strategy.placement = result.placement;
  strategy.execution_order = ExecutionOrderOf(result, cluster);
  strategy.splits = result.splits;
  strategy.predicted_makespan = ResimulateIteration(result, cluster);
  return strategy;
}

namespace {

// Per-racer slot written by ParallelFor; reduced serially in registry order.
struct RaceSlot {
  SearchResult result;
  Strategy strategy;
  VerifyResult verify;
};

}  // namespace

PortfolioResult PortfolioSearch(const std::vector<ArenaSearcher>& searchers,
                                const ModelBuildFn& build,
                                const std::string& model_name, int64_t batch,
                                const Cluster& cluster,
                                const PortfolioOptions& options) {
  FASTT_TRACE_SPAN("portfolio/search");
  PortfolioResult out;
  const size_t n = searchers.size();
  out.entries.resize(n);
  std::vector<RaceSlot> slots(n);

  ParallelFor(n, [&](size_t i) {
    FASTT_TRACE_SPAN("portfolio/racer");
    RaceSlot& slot = slots[i];
    SearchOptions search = options.search;
    if (options.budget_s > 0.0) search.wall_budget_s = options.budget_s;
    const auto t0 = std::chrono::steady_clock::now();
    slot.result = searchers[i].fn(build, model_name, batch, cluster, search);
    if (slot.result.wall_s <= 0.0)
      slot.result.wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    // A searcher whose every candidate was infeasible can return an empty
    // placement; don't hand that to the simulator — just disqualify it.
    if (slot.result.placement.size() !=
        static_cast<size_t>(slot.result.graph.num_slots())) {
      slot.strategy.predicted_makespan =
          std::numeric_limits<double>::infinity();
      slot.result.verified = false;
      return;
    }
    slot.strategy = StrategyFromSearchResult(slot.result, cluster);
    if (options.verify) {
      slot.verify = VerifyStrategy(slot.result.graph, slot.strategy, cluster,
                                   nullptr, options.verifier);
      slot.result.verified = slot.verify.ok();
    } else {
      slot.result.verified = true;
    }
  });

  // Serial registry-order reduction: provenance emission and the winner
  // pick are a pure function of the slot contents, so any --jobs width
  // produces the identical entry table, event log, and winner.
  MetricsRegistry& metrics = CurrentMetrics();
  for (size_t i = 0; i < n; ++i) {
    const RaceSlot& slot = slots[i];
    PortfolioEntry& e = out.entries[i];
    e.searcher = searchers[i].name;
    e.family = searchers[i].family;
    e.iteration_s = slot.result.iteration_s;
    e.resim_s = slot.strategy.predicted_makespan;
    e.evaluations = slot.result.evaluations;
    e.wall_s = slot.result.wall_s;
    e.global_batch = slot.result.global_batch;
    e.verified = slot.result.verified;
    e.verify_errors = slot.verify.errors;
    e.verify_warnings = slot.verify.warnings;
    e.stop_reason = slot.result.stop_reason;
    metrics.AddCounter("arena/" + e.searcher + "/runs");
    metrics.AddCounter("arena/" + e.searcher + "/evaluations", e.evaluations);
    metrics.RecordHistogram("arena/searcher_wall_s", e.wall_s);
    out.events.Emit("arena_searcher")
        .Str("searcher", e.searcher)
        .Str("family", e.family)
        .Number("iteration_s", e.iteration_s)
        .Number("resim_s", e.resim_s)
        .Int("evaluations", e.evaluations)
        .Number("wall_s", e.wall_s)
        .Bool("verified", e.verified)
        .Int("verify_errors", e.verify_errors)
        .Int("verify_warnings", e.verify_warnings)
        .Str("stop_reason", e.stop_reason);
    if (!e.verified) continue;
    if (out.winner < 0 ||
        e.resim_s < out.entries[static_cast<size_t>(out.winner)].resim_s)
      out.winner = static_cast<int>(i);
  }

  metrics.AddCounter("arena/portfolio_runs");
  if (out.winner >= 0) {
    RaceSlot& won = slots[static_cast<size_t>(out.winner)];
    PortfolioEntry& we = out.entries[static_cast<size_t>(out.winner)];
    we.winner = true;
    out.graph = std::move(won.result.graph);
    out.strategy = std::move(won.strategy);
    out.winner_verify = std::move(won.verify);
    out.iteration_s = we.resim_s;
    out.global_batch = we.global_batch;
    metrics.SetGauge("arena/winner_iteration_s", out.iteration_s);
    out.events.Emit("arena_winner")
        .Str("searcher", we.searcher)
        .Str("family", we.family)
        .Number("iteration_s", out.iteration_s)
        .Int("contenders", static_cast<int64_t>(n))
        .Bool("verified", true);
  } else {
    out.events.Emit("arena_winner")
        .Str("searcher", "")
        .Int("contenders", static_cast<int64_t>(n))
        .Bool("verified", false);
  }
  return out;
}

std::string PortfolioToJson(const std::string& model_name, int64_t batch,
                            const Cluster& cluster,
                            const PortfolioResult& result) {
  JsonWriter w;
  w.BeginObject();
  w.Key("fastt_arena").Int(1);
  w.Key("model").String(model_name);
  w.Key("global_batch").Int(batch);
  w.Key("devices").Int(static_cast<int64_t>(cluster.num_devices()));
  w.Key("searchers").BeginArray();
  for (const PortfolioEntry& e : result.entries) {
    w.BeginObject();
    w.Key("searcher").String(e.searcher);
    w.Key("family").String(e.family);
    w.Key("iteration_s").Number(e.iteration_s);
    w.Key("resim_s").Number(e.resim_s);
    w.Key("evaluations").Int(e.evaluations);
    w.Key("wall_s").Number(e.wall_s);
    w.Key("global_batch").Int(e.global_batch);
    w.Key("verified").Bool(e.verified);
    w.Key("verify_errors").Int(e.verify_errors);
    w.Key("verify_warnings").Int(e.verify_warnings);
    w.Key("stop_reason").String(e.stop_reason);
    w.Key("winner").Bool(e.winner);
    w.EndObject();
  }
  w.EndArray();
  w.Key("winner");
  if (result.winner >= 0)
    w.String(result.entries[static_cast<size_t>(result.winner)].searcher);
  else
    w.String("");
  w.Key("winner_iteration_s").Number(result.iteration_s);
  w.EndObject();
  return w.str();
}

}  // namespace fastt
