// DPOS — Device Placement and Operation Sequencing (paper Alg. 1).
//
// List scheduling in two phases:
//   1. operation prioritization by critical-path rank (rank_u), and
//   2. device selection: critical-path ops go to dedicated critical-path
//      device(s) chosen by smallest average compute time within memory
//      capacity; other ops take the device minimizing their earliest finish
//      time, with insertion-based scheduling into idle timeline gaps.
//
// The scheduler consumes only the adaptive cost models — never the
// simulator's ground truth — and prices unknown costs at 0 so that fresh
// placements get explored and profiled (paper §4).
#pragma once

#include "core/strategy.h"
#include "cost/comm_cost.h"
#include "cost/comp_cost.h"
#include "graph/graph.h"
#include "graph/memory.h"
#include "obs/provenance.h"
#include "sim/cluster.h"

namespace fastt {

struct DposOptions {
  // Disable the critical-path device policy (ablation hook): every op then
  // uses plain min-EFT selection.
  bool use_critical_path_device = true;
  // Communication-affinity weight in device selection. Plain min-EFT is
  // myopic: an op's heavy tensors (weight broadcasts in, gradients toward a
  // fixed aggregation site out) often overlap compute, so their cost only
  // surfaces after the op is already placed. Scoring each candidate device
  // with EFT + λ·(estimated remote traffic of the op's in-edges and of
  // out-edges whose consumer is pinned by colocation) reproduces the
  // placements the paper reports in §6.5 — replicas of large-parameter
  // operations gathered on one GPU to avoid weight/gradient traffic. λ = 0
  // recovers the plain min-EFT rule (ablation).
  double comm_affinity = 1.0;
  // Fraction of a device's usable memory the scheduler may plan to fill;
  // the rest is headroom for transfer staging and transient gradients the
  // MemNeed estimate does not capture.
  double memory_headroom = 0.92;
  // Record, per placed op, the full candidate table and the reason the
  // chosen device won (DposResult::provenance). Disabled cost: one branch
  // per placement decision, like the FASTT_TRACE_* gates.
  bool record_provenance = false;
};

struct DposResult {
  Strategy strategy;
  double ft_exit = 0.0;             // FT(o_exit), the objective
  std::vector<double> rank;         // rank_u per slot
  std::vector<OpId> critical_path;  // rank-based CP (placement phase)
  std::vector<double> start_time;   // ST per slot
  std::vector<double> finish_time;  // FT per slot
  // True when some op could not fit on any device (the simulator will OOM).
  bool memory_overflow = false;
  // One decision record per placed op, in placement order; populated only
  // when DposOptions::record_provenance is set.
  std::vector<PlacementDecision> provenance;
};

DposResult Dpos(const Graph& g, const Cluster& cluster,
                const CompCostModel& comp, const CommCostModel& comm,
                const DposOptions& options = {});

// The critical path realized by a concrete schedule: backtrack from the op
// with the largest finish time through the binding predecessor constraint.
std::vector<OpId> RealizedCriticalPath(const Graph& g,
                                       const DposResult& result,
                                       const CommCostModel& comm);

}  // namespace fastt
