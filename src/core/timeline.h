// Per-device schedule timeline with insertion-based slot search.
//
// DPOS's avail[j] is not simply "when the device finishes its last op": the
// paper allows inserting an operation into the earliest idle gap between two
// already-scheduled operations, provided the gap is long enough and
// precedence is preserved (§5.1). This structure maintains the committed
// intervals and answers that query.
#pragma once

#include <vector>

#include "graph/operation.h"

namespace fastt {

class DeviceTimeline {
 public:
  // Earliest start >= ready_time of a gap that fits `duration`.
  double EarliestSlot(double ready_time, double duration) const;

  // Commits an interval previously obtained from EarliestSlot.
  void Commit(double start, double duration, OpId op);

  // When the device last becomes free (end of the final interval).
  double LastEnd() const;

  // Sum of committed interval lengths.
  double BusyTime() const;

  size_t num_intervals() const { return intervals_.size(); }

 private:
  struct Interval {
    double start = 0.0;
    double end = 0.0;
    OpId op = kInvalidOp;
  };
  // Sorted by start, non-overlapping.
  std::vector<Interval> intervals_;
};

}  // namespace fastt
