#include "core/timeline.h"

#include <algorithm>

#include "util/check.h"

namespace fastt {
namespace {
// Tolerance for float comparisons when validating insertions.
constexpr double kEps = 1e-12;
}  // namespace

double DeviceTimeline::EarliestSlot(double ready_time,
                                    double duration) const {
  double cursor = ready_time;
  // First interval that could conflict: the one whose end > cursor.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), cursor,
      [](double t, const Interval& iv) { return t < iv.end; });
  for (; it != intervals_.end(); ++it) {
    if (it->start - cursor >= duration - kEps) return cursor;  // gap fits
    cursor = std::max(cursor, it->end);
  }
  return cursor;  // after the last interval
}

void DeviceTimeline::Commit(double start, double duration, OpId op) {
  FASTT_CHECK(duration >= 0.0);
  Interval iv{start, start + duration, op};
  // Lexicographic (start, end) order keeps ends sorted even when zero-width
  // intervals share a start with real ones — EarliestSlot's binary search
  // over interval ends depends on that.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv,
      [](const Interval& a, const Interval& b) {
        if (a.start != b.start) return a.start < b.start;
        return a.end < b.end;
      });
  // Overlap validation against the nearest positive-width neighbours.
  // Zero-width intervals (ops whose cost the model prices at 0 — the
  // exploration rule) occupy no time and may legitimately share timestamps
  // with real intervals, so they are skipped.
  if (duration > 0.0) {
    for (auto prev = it; prev != intervals_.begin();) {
      --prev;
      if (prev->end - prev->start <= 0.0) continue;
      FASTT_CHECK_MSG(prev->end <= iv.start + kEps,
                      "timeline overlap with previous interval");
      break;
    }
    for (auto next = it; next != intervals_.end(); ++next) {
      if (next->end - next->start <= 0.0) continue;
      FASTT_CHECK_MSG(iv.end <= next->start + kEps,
                      "timeline overlap with next interval");
      break;
    }
  }
  intervals_.insert(it, iv);
}

double DeviceTimeline::LastEnd() const {
  return intervals_.empty() ? 0.0 : intervals_.back().end;
}

double DeviceTimeline::BusyTime() const {
  double busy = 0.0;
  for (const Interval& iv : intervals_) busy += iv.end - iv.start;
  return busy;
}

}  // namespace fastt
