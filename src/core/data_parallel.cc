#include "core/data_parallel.h"

#include <map>

#include "graph/rewrite.h"
#include "util/check.h"
#include "util/strings.h"

namespace fastt {

DataParallelGraph BuildDataParallel(const ModelBuildFn& build,
                                    const std::string& model_name,
                                    int64_t batch, int replicas,
                                    Scaling scaling) {
  FASTT_CHECK(replicas >= 1);
  if (scaling == Scaling::kStrong)
    FASTT_CHECK_MSG(batch >= replicas,
                    "strong scaling needs batch >= replicas");

  DataParallelGraph dp;
  dp.replicas = replicas;
  dp.graph.set_name(StrFormat("%s_dp%d", model_name.c_str(), replicas));

  for (int r = 0; r < replicas; ++r) {
    int64_t replica_batch = batch;
    if (scaling == Scaling::kStrong) {
      replica_batch = batch / replicas + (r < batch % replicas ? 1 : 0);
    }
    dp.global_batch += replica_batch;
    const int32_t before = dp.graph.num_slots();
    build(dp.graph, replicas == 1 ? "" : StrFormat("rep%d", r),
          replica_batch);
    dp.replica_of.resize(static_cast<size_t>(dp.graph.num_slots()), r);
    FASTT_CHECK(dp.graph.num_slots() > before);
  }

  // ---- shared variables + gradient aggregation ------------------------------
  // TF-slim in-graph replication shares one variable per parameter across all
  // towers: each tower reads the weights over an edge from the shared
  // variable (the weight broadcast) and one optimizer update per parameter
  // consumes the aggregated gradient.
  if (replicas > 1) {
    // 1. Merge replica variables: keep replica 0's, rewire all consumers.
    std::map<std::string, std::vector<OpId>> var_groups;
    for (OpId id : dp.graph.LiveOps()) {
      const Operation& op = dp.graph.op(id);
      if (op.type == OpType::kVariable)
        var_groups[op.CostKey()].push_back(id);
    }
    std::map<OpId, OpId> merged_into;
    for (const auto& [key, vars] : var_groups) {
      if (vars.size() < 2) continue;
      const OpId canonical = vars.front();
      for (size_t i = 1; i < vars.size(); ++i) {
        const OpId victim = vars[i];
        for (EdgeId e : dp.graph.out_edges(victim)) {
          const Edge& edge = dp.graph.edge(e);
          if (edge.dead) continue;
          dp.graph.AddEdge(canonical, edge.dst, edge.bytes);
        }
        merged_into[victim] = canonical;
        dp.graph.RemoveOp(victim);
      }
    }
    // Colocation constraints that pointed at merged-away variables follow
    // the canonical variable.
    for (OpId id : dp.graph.LiveOps()) {
      const OpId target = dp.graph.op(id).colocate_with;
      auto it = merged_into.find(target);
      if (it != merged_into.end())
        dp.graph.mutable_op(id).colocate_with = it->second;
    }

    // 2. One optimizer update per parameter: keep replica 0's apply; feed it
    //    the aggregated gradient of all towers.
    std::map<std::string, std::vector<OpId>> apply_groups;
    for (OpId id : dp.graph.LiveOps()) {
      const Operation& op = dp.graph.op(id);
      if (op.type == OpType::kApplyGradient)
        apply_groups[op.CostKey()].push_back(id);
    }
    for (const auto& [key, applies] : apply_groups) {
      if (applies.size() < 2) continue;
      std::vector<OpId> wgrads;
      int64_t grad_bytes = 0;
      for (OpId apply : applies) {
        for (EdgeId e : dp.graph.in_edges(apply)) {
          const Edge& edge = dp.graph.edge(e);
          if (edge.dead) continue;
          wgrads.push_back(edge.src);
          grad_bytes = edge.bytes;
          dp.graph.RemoveEdge(e);
        }
      }
      const OpId kept_apply = applies.front();
      for (size_t i = 1; i < applies.size(); ++i)
        dp.graph.RemoveOp(applies[i]);

      Operation agg;
      agg.name = "agg/" + key;
      agg.type = OpType::kGradAggregate;
      agg.output_shape = TensorShape{grad_bytes / 4};
      agg.bytes_touched =
          static_cast<int64_t>(wgrads.size() + 1) * grad_bytes;
      agg.cost_key = GlueCostKey(OpType::kGradAggregate, grad_bytes);
      agg.is_backward = true;
      // The sum runs where the variable (and its update) live.
      agg.colocate_with = dp.graph.op(kept_apply).colocate_with;
      const OpId agg_id = dp.graph.AddOp(std::move(agg));
      dp.replica_of.resize(static_cast<size_t>(dp.graph.num_slots()), 0);
      for (OpId wg : wgrads) dp.graph.AddEdge(wg, agg_id, grad_bytes);
      dp.graph.AddEdge(agg_id, kept_apply, grad_bytes);
    }
  }

  dp.graph.Validate();
  return dp;
}

std::vector<DeviceId> CanonicalDataParallelPlacement(
    const DataParallelGraph& dp) {
  std::vector<DeviceId> placement(
      static_cast<size_t>(dp.graph.num_slots()), kInvalidDevice);
  for (OpId id : dp.graph.LiveOps())
    placement[static_cast<size_t>(id)] =
        static_cast<DeviceId>(dp.replica_of[static_cast<size_t>(id)]);
  return placement;
}

}  // namespace fastt
