// Searcher arena — the shared search interface and the portfolio racer.
//
// Every placement searcher in the repository (the Fig. 3 black-box stand-ins
// in src/baselines, the published-rival reimplementations, and FastT's own
// DPOS pipeline) speaks one interface: build a model at a batch size, search
// for a strategy on a cluster, return a SearchResult. PortfolioSearch races
// all registered searchers concurrently on the shared search pool under a
// wall-clock budget, gates every candidate through the strategy verifier,
// and keeps the best verified strategy — an algorithm-portfolio version of
// the paper's Fig. 3 comparison, with per-searcher provenance (evaluations,
// wall time, verifier verdict) emitted through the metrics/tracer/event-log
// stack.
//
// Determinism contract (same as the rest of the search stack): searcher
// results are a pure function of (model, batch, cluster, options); the
// portfolio races them into per-index slots and reduces serially in registry
// order, so with no wall-clock budget pressure the winner is byte-identical
// for any --jobs setting.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "core/data_parallel.h"
#include "core/strategy.h"
#include "graph/graph.h"
#include "obs/event_log.h"
#include "sim/cluster.h"

namespace fastt {

// The outcome of one searcher run. `iteration_s` is the searcher's reported
// objective: the simulated time of the best feasible candidate under the
// searcher's own evaluation options (bit-equal to an independent noise-free
// re-simulation when SearchOptions::noise_cv == 0).
struct SearchResult {
  Graph graph;
  std::vector<DeviceId> placement;
  // Execution order, when the searcher computes one (FastT's DPOS order
  // enforcement). Empty = FIFO dispatch; the arena then derives an order
  // from the simulated start times for verification.
  std::vector<OpId> execution_order;
  // Split list already applied to `graph` (FlexFlow-like annealing, OS-DPOS).
  std::vector<SplitDecision> splits;
  double iteration_s = 0.0;  // best feasible candidate's simulated time
  int evaluations = 0;       // simulator calls spent
  int64_t global_batch = 0;
  double wall_s = 0.0;       // host wall-clock the search itself consumed
  // Why the search stopped: "constructed" (one-shot builders), "budget"
  // (evaluation budget exhausted), "converged" (patience fired), "deadline"
  // (SearchOptions::wall_budget_s exceeded).
  std::string stop_reason;
  // Set by the portfolio gate: VerifyStrategy accepted the candidate with
  // zero errors. Searchers themselves leave it false.
  bool verified = false;
};

struct SearchOptions {
  int budget = 200;        // candidate evaluations
  uint64_t seed = 11;
  double noise_cv = 0.0;   // evaluation noise (0: deterministic objective)
  // Convergence early-exit: stop after this many consecutive evaluations
  // without improving the incumbent (0 = disabled; the search then runs its
  // full budget, the pre-arena behaviour).
  int patience = 0;
  // Wall-clock budget in seconds (0 = none). Iterative searchers check it
  // between evaluations and stop with stop_reason "deadline"; one-shot
  // constructions ignore it. Nonzero values trade determinism for latency —
  // the portfolio's differential tests run without it.
  double wall_budget_s = 0.0;
};

// Deadline helper shared by the iterative searchers. Cheap to poll.
class SearchDeadline {
 public:
  explicit SearchDeadline(double wall_budget_s)
      : enabled_(wall_budget_s > 0.0),
        end_(std::chrono::steady_clock::now() +
             std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(
                     wall_budget_s > 0.0 ? wall_budget_s : 0.0))) {}
  bool Exceeded() const {
    return enabled_ && std::chrono::steady_clock::now() >= end_;
  }

 private:
  bool enabled_ = false;
  std::chrono::steady_clock::time_point end_;
};

using SearchFn = std::function<SearchResult(
    const ModelBuildFn& build, const std::string& model_name, int64_t batch,
    const Cluster& cluster, const SearchOptions& options)>;

// One registered arena contender. `family` names the search style for tables
// and provenance ("black-box", "list-scheduler", "partitioner", "dpos").
struct ArenaSearcher {
  std::string name;
  std::string family;
  SearchFn fn;
};

// The execution order the result implies: the recorded order when the
// searcher computed one, otherwise the op sequence of a deterministic
// noise-free simulation sorted by start time (ties broken by topological
// position, so the derived order always extends the dependency order).
std::vector<OpId> ExecutionOrderOf(const SearchResult& result,
                                   const Cluster& cluster);

// Packages a SearchResult as a Strategy for VerifyStrategy / serialization:
// placement + ExecutionOrderOf + the split list, with predicted_makespan set
// to the noise-free re-simulated iteration time.
Strategy StrategyFromSearchResult(const SearchResult& result,
                                  const Cluster& cluster);

// Independent noise-free re-simulation of the result's strategy (priority
// dispatch when the result carries an execution order, FIFO otherwise).
// This is the arena's ranking objective and the differential tests' oracle:
// with noise_cv == 0 every searcher's reported iteration_s must equal it
// bit-exactly.
double ResimulateIteration(const SearchResult& result, const Cluster& cluster);

// One row of the portfolio outcome, in registry order.
struct PortfolioEntry {
  std::string searcher;
  std::string family;
  double iteration_s = 0.0;  // searcher-reported objective
  double resim_s = 0.0;      // independent re-simulation (the ranking key)
  int evaluations = 0;
  double wall_s = 0.0;
  int64_t global_batch = 0;
  bool verified = false;     // VerifyStrategy accepted with zero errors
  int verify_errors = 0;
  int verify_warnings = 0;
  std::string stop_reason;
  bool winner = false;
};

struct PortfolioOptions {
  // Base options handed to every searcher (seed, evaluation budget, noise).
  SearchOptions search;
  // Wall-clock budget granted to each racer (they run concurrently, so this
  // is also the approximate budget of the whole arena). 0 = none.
  double budget_s = 2.0;
  // Gate candidates through VerifyStrategy; unverified candidates can never
  // win. Off = rank by re-simulation alone.
  bool verify = true;
  VerifierOptions verifier;
};

struct PortfolioResult {
  std::vector<PortfolioEntry> entries;  // registry order
  int winner = -1;                      // index into entries, -1 = none
  // Winner's artifacts (valid when winner >= 0).
  Graph graph;
  Strategy strategy;
  VerifyResult winner_verify;
  double iteration_s = 0.0;  // winner's resim_s
  int64_t global_batch = 0;
  // Narrated provenance: one "arena_searcher" event per contender (in
  // registry order) plus a final "arena_winner" event.
  EventLog events;
};

// Races `searchers` concurrently via ParallelFor (per-index result slots,
// serial registry-order reduction — the PR-2 determinism idiom), verifies
// every candidate, and returns the best verified strategy by re-simulated
// iteration time (ties: lowest registry index).
PortfolioResult PortfolioSearch(const std::vector<ArenaSearcher>& searchers,
                                const ModelBuildFn& build,
                                const std::string& model_name, int64_t batch,
                                const Cluster& cluster,
                                const PortfolioOptions& options = {});

// {"fastt_arena":1, "model":..., "searchers":[...], "winner":...} — the
// machine-readable arena table (`fastt arena --json`, CI artifact).
std::string PortfolioToJson(const std::string& model_name, int64_t batch,
                            const Cluster& cluster,
                            const PortfolioResult& result);

}  // namespace fastt
