#include "core/os_dpos.h"

#include <algorithm>
#include <utility>

#include "graph/rewrite.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "util/memtrack.h"
#include "util/thread_pool.h"

namespace fastt {
namespace {

std::vector<int> CandidateSplitCounts(int num_devices) {
  std::vector<int> counts;
  for (int n = 2; n <= num_devices; n *= 2) counts.push_back(n);
  if (num_devices >= 2 &&
      (counts.empty() || counts.back() != num_devices))
    counts.push_back(num_devices);
  return counts;
}

}  // namespace

OsDposResult OsDpos(const Graph& g, const Cluster& cluster,
                    const CompCostModel& comp, const CommCostModel& comm,
                    const OsDposOptions& options) {
  FASTT_SCOPED_TIMER("os_dpos/total");
  FASTT_TRACE_SPAN("osdpos/total");
  // Resolve the ambient registry once and intern the per-trial histogram
  // name up front: the trial lambda below runs on pool workers at full
  // fan-out, and recording through the handle does no string construction
  // or allocation there (pinned by the memtrack obs-tag gate in
  // bench_search).
  MetricsRegistry& metrics = CurrentMetrics();
  const MetricsRegistry::HistogramHandle trial_latency =
      metrics.HistogramRef("osdpos/trial_latency_s");
  metrics.AddCounter("os_dpos/invocations");
  OsDposResult result;
  result.graph = g;
  result.schedule = Dpos(result.graph, cluster, comp, comm, options.dpos);
  double ft_old = result.schedule.ft_exit;

  // Critical path realized by the initial placement, by descending compute
  // time (the heaviest ops are the most promising split candidates).
  std::vector<OpId> cp =
      RealizedCriticalPath(result.graph, result.schedule, comm);
  std::sort(cp.begin(), cp.end(), [&](OpId a, OpId b) {
    const auto& fa = result.schedule;
    const double wa = fa.finish_time[static_cast<size_t>(a)] -
                      fa.start_time[static_cast<size_t>(a)];
    const double wb = fa.finish_time[static_cast<size_t>(b)] -
                      fa.start_time[static_cast<size_t>(b)];
    if (wa != wb) return wa > wb;
    return a < b;
  });

  const std::vector<int> counts = CandidateSplitCounts(cluster.num_devices());
  if (counts.empty()) return result;

  int probed = 0;
  for (OpId op : cp) {
    if (static_cast<int>(result.splits.size()) >= options.max_splits) break;
    if (probed >= options.max_probed_ops) break;
    if (result.graph.op(op).dead) continue;  // consumed by an earlier commit
    ++probed;
    FASTT_TRACE_SPAN("osdpos/probe_op");

    // Probe every (dimension, count) rewrite of this op. The trial list is
    // built serially (dims outer, counts inner — the serial probe order),
    // each trial evaluated independently into its own slot, and the winner
    // reduced serially in trial order with the same strict `<`, so the
    // committed split is identical for any --jobs value. Each trial is a
    // full graph copy + rewrite + Dpos, which is exactly the coarse-grained
    // work that amortizes thread hand-off.
    struct Trial {
      SplitDim dim = SplitDim::kNone;
      int n = 0;
      bool viable = false;
      Graph graph;
      DposResult sched;
    };
    std::vector<Trial> trials;
    for (SplitDim dim : ParallelizableDims(result.graph.op(op).type)) {
      for (int n : counts) {
        if (!CanSplit(result.graph, op, dim, n)) continue;
        Trial t;
        t.dim = dim;
        t.n = n;
        trials.push_back(std::move(t));
      }
    }
    ParallelFor(trials.size(), [&](size_t i) {
      FASTT_TRACE_SPAN("osdpos/trial");
      ScopedLatencyRef latency(metrics, trial_latency);
      Trial& t = trials[i];
      Graph trial = result.graph;
      SplitOperation(trial, op, t.dim, t.n);
      DposResult sched = Dpos(trial, cluster, comp, comm, options.dpos);
      if (sched.memory_overflow) return;
      t.viable = true;
      t.graph = std::move(trial);
      t.sched = std::move(sched);
    });
    result.probes += static_cast<int>(trials.size());
    // Trial copies peak here; sample the live-bytes tracks once per probe.
    EmitMemTraceCounters();

    // Snapshot the trial table before the winner loop below moves the
    // winning trial's graph/schedule out from under it; the winner's
    // `committed` bit is patched once it is known.
    size_t first_record = result.trials.size();
    if (options.dpos.record_provenance) {
      for (const Trial& t : trials) {
        SplitTrialRecord rec;
        rec.op_name = result.graph.op(op).name;
        rec.dim = SplitDimName(t.dim);
        rec.num_splits = t.n;
        rec.viable = t.viable;
        rec.predicted_s = t.viable ? t.sched.ft_exit : 0.0;
        rec.baseline_s = ft_old;
        result.trials.push_back(std::move(rec));
      }
    }

    double best_ft = ft_old;
    Graph best_graph;
    DposResult best_schedule;
    SplitDecision best_decision;
    bool improved = false;
    size_t best_index = trials.size();
    for (size_t ti = 0; ti < trials.size(); ++ti) {
      Trial& t = trials[ti];
      if (!t.viable) continue;
      if (t.sched.ft_exit < best_ft) {
        best_ft = t.sched.ft_exit;
        best_graph = std::move(t.graph);
        best_schedule = std::move(t.sched);
        best_decision = SplitDecision{result.graph.op(op).name, t.dim, t.n};
        improved = true;
        best_index = ti;
      }
    }
    if (options.dpos.record_provenance && improved)
      result.trials[first_record + best_index].committed = true;

    if (improved) {
      ft_old = best_ft;
      result.graph = std::move(best_graph);
      result.schedule = std::move(best_schedule);
      result.splits.push_back(std::move(best_decision));
    } else {
      break;  // paper's early exit: stop at the first non-improving CP op
    }
  }

  result.schedule.strategy.splits = result.splits;
  metrics.AddCounter("os_dpos/split_probes",
                     static_cast<int64_t>(result.probes));
  metrics.AddCounter("os_dpos/splits_committed",
                     static_cast<int64_t>(result.splits.size()));
  return result;
}

}  // namespace fastt
