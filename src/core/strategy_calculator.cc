#include "core/strategy_calculator.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "analysis/verifier.h"
#include "core/model_parallel.h"
#include "obs/metrics.h"
#include "sim/profiler.h"
#include "util/check.h"
#include "util/strings.h"

namespace fastt {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Runs `iters` profiled steps of (graph, placement, order) on the simulated
// testbed, feeding the cost models; returns the mean iteration time and adds
// the simulated wall time to *wall. `last` receives the final step's
// SimResult (the realized run the calibration audit joins against).
double ProfileSteps(const Graph& g, const std::vector<DeviceId>& placement,
                    const std::vector<int64_t>& priorities,
                    DispatchMode dispatch, const Cluster& cluster, int iters,
                    double noise_cv, uint64_t seed, CompCostModel& comp,
                    CommCostModel& comm, double* wall,
                    bool* oom = nullptr, SimResult* last = nullptr) {
  double total = 0.0;
  for (int i = 0; i < iters; ++i) {
    SimOptions options;
    options.dispatch = dispatch;
    options.priorities = priorities;
    options.noise_cv = noise_cv;
    options.seed = seed + static_cast<uint64_t>(i) * 7919;
    SimResult sim = Simulate(g, placement, cluster, options);
    const RunProfile profile = ExtractProfile(g, sim);
    comp.AddProfile(profile);
    comm.AddProfile(profile);
    total += sim.makespan;
    if (oom && sim.oom) *oom = true;
    if (last) *last = std::move(sim);
  }
  if (wall) *wall += total;
  return total / iters;
}

// Measurement-only runs (no cost-model updates).
double MeasureSteps(const Graph& g, const std::vector<DeviceId>& placement,
                    const std::vector<int64_t>& priorities,
                    DispatchMode dispatch, const Cluster& cluster, int iters,
                    double noise_cv, uint64_t seed, SimResult* last) {
  double total = 0.0;
  for (int i = 0; i < iters; ++i) {
    SimOptions options;
    options.dispatch = dispatch;
    options.priorities = priorities;
    options.noise_cv = noise_cv;
    options.seed = seed + 1000003 + static_cast<uint64_t>(i) * 104729;
    const SimResult sim = Simulate(g, placement, cluster, options);
    total += sim.makespan;
    if (last) *last = sim;
  }
  return total / iters;
}

// Communication probe: a throwaway graph whose edges exercise every ordered
// device pair at two tensor sizes, so each pair's linear regression can
// recover latency and bandwidth. This is the paper's "try out different
// placements" bootstrap, in the shape of the all-pairs bandwidth
// microbenchmark practitioners run before training.
void ProbeCommunication(const Cluster& cluster, double noise_cv,
                        uint64_t seed, CommCostModel& comm, double* wall) {
  const int32_t n = cluster.num_devices();
  if (n < 2) return;
  Graph g("comm_probe");
  std::vector<DeviceId> placement;
  auto add_op = [&](const std::string& name, int64_t bytes, DeviceId d) {
    Operation op;
    op.name = name;
    op.type = OpType::kIdentity;
    op.output_shape = TensorShape{bytes / 4};
    op.bytes_touched = bytes;
    const OpId id = g.AddOp(std::move(op));
    placement.push_back(d);
    return id;
  };
  const int64_t sizes[2] = {int64_t{1} << 20, int64_t{64} << 20};
  for (DeviceId i = 0; i < n; ++i) {
    for (DeviceId j = 0; j < n; ++j) {
      if (i == j) continue;
      for (int s = 0; s < 2; ++s) {
        const OpId a = add_op(StrFormat("probe/%d_%d_%d/src", i, j, s),
                              sizes[s], i);
        const OpId b = add_op(StrFormat("probe/%d_%d_%d/dst", i, j, s),
                              sizes[s], j);
        g.AddEdge(a, b, sizes[s]);
      }
    }
  }
  SimOptions options;
  options.noise_cv = noise_cv;
  options.seed = seed;
  options.track_memory = false;
  const SimResult sim = Simulate(g, placement, cluster, options);
  const RunProfile profile = ExtractProfile(g, sim);
  comm.AddProfile(profile);
  if (wall) *wall += sim.makespan;
}

std::vector<std::string> CostKeys(const Graph& g) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<size_t>(g.num_live_ops()));
  for (OpId id : g.LiveOps()) keys.push_back(g.op(id).CostKey());
  return keys;
}

// Ops whose device assignment differs between the incumbent and candidate
// strategies. Both graphs derive from the same base graph, so slot ids in
// the shared prefix refer to the same ops; ops live in only one of the two
// (split in the other) are not counted.
int CountReplacedOps(const Graph& a, const std::vector<DeviceId>& pa,
                     const Graph& b, const std::vector<DeviceId>& pb) {
  const int32_t n = std::min(a.num_slots(), b.num_slots());
  int replaced = 0;
  for (OpId id = 0; id < n; ++id) {
    if (a.op(id).dead || b.op(id).dead) continue;
    if (pa[static_cast<size_t>(id)] != pb[static_cast<size_t>(id)])
      ++replaced;
  }
  return replaced;
}

}  // namespace

double SamplesPerSecond(const CalculatorResult& result) {
  return static_cast<double>(result.global_batch) /
         (result.iteration_s + kSessionOverheadS);
}

std::string ExplainOps(const CalculatorResult& result,
                       const std::string& needle) {
  std::string out;
  int matched = 0;
  for (const PlacementDecision& dec : result.provenance) {
    if (dec.op_name.find(needle) == std::string::npos) continue;
    ++matched;
    const size_t slot = static_cast<size_t>(dec.op);
    const double predicted = slot < result.predicted_op_s.size()
                                 ? result.predicted_op_s[slot]
                                 : -1.0;
    double realized = -1.0;
    if (slot < result.final_sim.op_records.size() &&
        result.final_sim.op_records[slot].device != kInvalidDevice)
      realized = result.final_sim.op_records[slot].duration();
    out += RenderPlacementDecision(dec, predicted, realized);
  }
  const std::string trials = RenderSplitTrials(result.split_trials, needle);
  if (!trials.empty()) out += "split trials:\n" + trials;
  if (matched == 0 && trials.empty()) {
    out += result.provenance.empty()
               ? "no provenance recorded (run with record_provenance)\n"
               : StrFormat("no recorded op matches \"%s\"\n", needle.c_str());
  }
  return out;
}

CalculatorResult RunDataParallelBaseline(const ModelBuildFn& build,
                                         const std::string& model_name,
                                         int64_t batch, Scaling scaling,
                                         const Cluster& cluster,
                                         const CalculatorOptions& options) {
  CalculatorResult result;
  DataParallelGraph dp = BuildDataParallel(build, model_name, batch,
                                           cluster.num_devices(), scaling);
  result.global_batch = dp.global_batch;
  const std::vector<DeviceId> placement = CanonicalDataParallelPlacement(dp);
  // The TF default executor drains its ready queue in effectively arbitrary
  // order (inter-op thread pool) — DispatchMode::kRandom.
  result.iteration_s =
      MeasureSteps(dp.graph, placement, {}, DispatchMode::kRandom, cluster,
                   options.measure_iterations, options.noise_cv,
                   options.seed, &result.final_sim);
  result.strategy.placement = placement;
  result.strategy.execution_order = dp.graph.TopoOrder();
  result.graph = std::move(dp.graph);
  return result;
}

CalculatorResult RunFastT(const ModelBuildFn& build,
                          const std::string& model_name, int64_t batch,
                          Scaling scaling, const Cluster& cluster,
                          const CalculatorOptions& options) {
  FASTT_SCOPED_TIMER("calculator/run_fastt");
  const auto host_start = Clock::now();
  CalculatorResult result;

  // ---- choose the start strategy (paper §4 / §5.2) -------------------------
  // If one replica (at its per-replica batch) fits on one GPU, the input
  // graph is the data-parallel replication (FastT then searches for
  // something better than pure DP); otherwise the input is the bare model
  // with a model-parallel placement.
  const int64_t replica_batch =
      scaling == Scaling::kStrong
          ? std::max<int64_t>(1, batch / cluster.num_devices())
          : batch;
  Graph probe(model_name);
  build(probe, "", replica_batch);
  const bool fits = FitsOnOneDevice(probe, cluster);
  result.started_model_parallel = !fits;

  Graph base;
  std::vector<DeviceId> start_placement;
  if (fits && cluster.num_devices() > 1) {
    DataParallelGraph dp = BuildDataParallel(build, model_name, batch,
                                             cluster.num_devices(), scaling);
    result.global_batch = dp.global_batch;
    start_placement = CanonicalDataParallelPlacement(dp);
    base = std::move(dp.graph);
  } else {
    // Single device, or model too large to replicate: operate on the bare
    // model graph. (Weak scaling with an unreplicable model still trains the
    // per-GPU batch; the devices jointly hold one replica.)
    result.global_batch = batch;
    base = std::move(probe);
    start_placement = fits ? std::vector<DeviceId>(
                                 static_cast<size_t>(base.num_slots()), 0)
                           : GreedyModelParallelPlacement(base, cluster);
  }

  // ---- pre-training: profile, recompute, activate or roll back -------------
  StabilityDetector stability(options.stability_tolerance,
                              options.stability_patience);
  const double probe_before_s = result.strategy_time_s;
  ProbeCommunication(cluster, options.noise_cv, options.seed + 17,
                     result.comm, &result.strategy_time_s);
  result.events.Emit("comm_probe")
      .Int("devices", cluster.num_devices())
      .Number("simulated_s", result.strategy_time_s - probe_before_s);
  Graph current_graph = base;
  std::vector<DeviceId> current_placement = start_placement;
  std::vector<int64_t> current_priorities;
  DispatchMode current_dispatch = DispatchMode::kRandom;  // TF default
  double current_measured = ProfileSteps(
      current_graph, current_placement, current_priorities, current_dispatch,
      cluster, options.profile_iterations, options.noise_cv, options.seed,
      result.comp, result.comm, &result.strategy_time_s);
  Strategy current_strategy;
  current_strategy.placement = current_placement;
  current_strategy.execution_order = current_graph.TopoOrder();
  result.events.Emit("bootstrap")
      .Str("start_strategy",
           result.started_model_parallel ? "model_parallel" : "data_parallel")
      .Int("ops", current_graph.num_live_ops())
      .Int("profile_iterations", options.profile_iterations)
      .Number("measured_iteration_s", current_measured);

  for (int round = 0; round < options.max_rounds; ++round) {
    ++result.rounds;
    const double round_algo_before = result.algorithm_time_s;

    // Recompute the strategy from the updated cost models. OS-DPOS always
    // takes the *base* graph (DP replication or bare model) so split
    // decisions are revisited as costs sharpen, not stacked blindly.
    const auto algo_start = Clock::now();
    OsDposOptions os = options.os_dpos;
    os.dpos.use_critical_path_device = options.use_critical_path_device;
    os.dpos.record_provenance = options.record_provenance;
    OsDposResult candidate;
    if (options.enable_split) {
      candidate = OsDpos(base, cluster, result.comp, result.comm, os);
    } else {
      candidate.graph = base;
      candidate.schedule =
          Dpos(base, cluster, result.comp, result.comm, os.dpos);
    }
    result.algorithm_time_s += SecondsSince(algo_start);

    // Gatekeeper: verify the candidate before spending a restart on it. A
    // structurally invalid strategy (cyclic rewrite, unplaced op, order that
    // contradicts the deps, ...) would crash or deadlock a real session; the
    // verifier turns that into a named, zero-cost rejection.
    RoundSummary summary;
    summary.round = result.rounds;
    if (options.verify_rounds) {
      VerifierOptions verify_options;
      verify_options.cheap_only = !options.verify_full;
      verify_options.memory_headroom = os.dpos.memory_headroom;
      const VerifyResult verdict =
          VerifyStrategy(candidate.graph, candidate.schedule.strategy, cluster,
                         &result.comm, verify_options);
      summary.verify_errors = verdict.errors;
      summary.verify_warnings = verdict.warnings;
      CurrentMetrics().AddCounter("verifier/round_checks");
      result.events.Emit("verify")
          .Int("round", summary.round)
          .Bool("ok", verdict.ok())
          .Int("errors", verdict.errors)
          .Int("warnings", verdict.warnings)
          .Int("rules_checked", verdict.rules_checked)
          .Str("first_error_rule", verdict.first_error_rule());
      if (!verdict.ok()) {
        summary.verify_reject_rule = verdict.first_error_rule();
        summary.best_before_s = current_measured;
        summary.splits = static_cast<int>(candidate.splits.size());
        summary.algorithm_s = result.algorithm_time_s - round_algo_before;
        ++result.rollbacks;
        CurrentMetrics().AddCounter("verifier/round_rejects");
        result.events.Emit("verify_reject")
            .Int("round", summary.round)
            .Str("rule", summary.verify_reject_rule)
            .Str("message", verdict.diagnostics.empty()
                                ? ""
                                : verdict.diagnostics.front().message);
        result.round_history.push_back(summary);
        // The incumbent keeps training; the cost models saw no new profile,
        // so fold the round into the stability window and move on.
        stability.Observe(result.comp, cluster.num_devices(),
                          CostKeys(current_graph));
        if (stability.IsStable()) {
          result.events.Emit("stable").Int("round", result.rounds);
          break;
        }
        continue;
      }
    }

    const std::vector<int64_t> priorities =
        options.enable_order_enforcement
            ? PrioritiesFromOrder(candidate.schedule.strategy.execution_order,
                                  candidate.graph.num_slots())
            : std::vector<int64_t>{};
    const DispatchMode dispatch = options.enable_order_enforcement
                                      ? DispatchMode::kPriority
                                      : DispatchMode::kRandom;

    // Activate (checkpoint/restart) and measure via profiled steps. The comm
    // model is snapshotted first: the calibration audit must price this
    // round's transfers with the model the scheduler consulted, not the one
    // the profiled steps are about to update.
    result.strategy_time_s += options.restart_overhead_s;
    ++result.activations;
    bool candidate_oom = false;
    const CommCostModel comm_before = result.comm;
    SimResult round_sim;
    const double measured = ProfileSteps(
        candidate.graph, candidate.schedule.strategy.placement, priorities,
        dispatch, cluster, options.profile_iterations, options.noise_cv,
        options.seed + static_cast<uint64_t>(round + 1) * 31337, result.comp,
        result.comm, &result.strategy_time_s, &candidate_oom, &round_sim);

    // The candidate schedule's per-slot predicted durations — what the
    // calibration audit and `fastt explain` compare against realized times.
    std::vector<double> predicted_op(
        static_cast<size_t>(candidate.graph.num_slots()), 0.0);
    for (OpId id : candidate.graph.LiveOps())
      predicted_op[static_cast<size_t>(id)] =
          candidate.schedule.finish_time[static_cast<size_t>(id)] -
          candidate.schedule.start_time[static_cast<size_t>(id)];

    summary.predicted_s = candidate.schedule.ft_exit;
    summary.measured_s = measured;
    summary.best_before_s = current_measured;
    summary.rel_error =
        measured > 0.0 ? (summary.predicted_s - measured) / measured : 0.0;
    summary.oom = candidate_oom;
    summary.ops_replaced = CountReplacedOps(
        current_graph, current_placement, candidate.graph,
        candidate.schedule.strategy.placement);
    summary.splits = static_cast<int>(candidate.splits.size());
    summary.algorithm_s = result.algorithm_time_s - round_algo_before;

    // An out-of-memory run crashes a real session: always roll back.
    if (!candidate_oom && measured <= current_measured) {
      summary.committed = true;
      current_graph = candidate.graph;
      current_placement = candidate.schedule.strategy.placement;
      current_priorities = priorities;
      current_dispatch = dispatch;
      current_measured = measured;
      current_strategy = candidate.schedule.strategy;
      result.provenance = std::move(candidate.schedule.provenance);
      result.split_trials = std::move(candidate.trials);
      result.predicted_op_s = predicted_op;
    } else {
      // Slower than what we had: roll back (another restart).
      ++result.rollbacks;
      result.strategy_time_s += options.restart_overhead_s;
    }

    // Calibration audit: join the candidate's predictions against the last
    // profiled step, then fold the stability observation (paper's stopping
    // rule, unchanged) into the same record.
    CalibrationRound cal =
        ComputeCalibration(candidate.graph, predicted_op,
                           candidate.schedule.strategy.placement, comm_before,
                           round_sim);
    cal.round = summary.round;
    cal.committed = summary.committed;
    cal.oom = candidate_oom;
    cal.predicted_makespan_s = summary.predicted_s;
    cal.measured_makespan_s = summary.measured_s;
    cal.makespan_rel_err = summary.rel_error;
    cal.postmortem.rolled_back = !summary.committed;
    cal.postmortem.oom = candidate_oom;

    // Pre-training ends when the cost models are stable (paper's rule).
    stability.Observe(result.comp, cluster.num_devices(),
                      CostKeys(current_graph));
    const StabilityStats& stab = stability.last_stats();
    cal.stability = stab;
    summary.comp_err_p50 = cal.comp.p50;
    summary.comp_err_p90 = cal.comp.p90;
    summary.comp_err_max = cal.comp.max;
    summary.comm_err_p50 = cal.comm.p50;
    summary.comm_err_p90 = cal.comm.p90;
    summary.stability_max_change = stab.max_change;
    summary.stability_margin = stab.margin;

    result.events.Emit("round")
        .Int("round", summary.round)
        .Number("predicted_s", summary.predicted_s)
        .Number("measured_s", summary.measured_s)
        .Number("best_before_s", summary.best_before_s)
        .Number("cost_model_rel_error", summary.rel_error)
        .Int("ops_replaced", summary.ops_replaced)
        .Int("splits", summary.splits)
        .Number("algorithm_s", summary.algorithm_s)
        .Number("restart_overhead_s",
                options.restart_overhead_s *
                    (summary.committed ? 1.0 : 2.0))
        .Bool("committed", summary.committed)
        .Number("comp_err_p50", cal.comp.p50)
        .Number("comp_err_p90", cal.comp.p90)
        .Number("comm_err_p50", cal.comm.p50)
        .Number("comm_err_p90", cal.comm.p90)
        .Str("decision", summary.committed       ? "commit"
                         : summary.oom           ? "rollback_oom"
                                                 : "rollback_slower");
    result.events.Emit("stability")
        .Int("round", summary.round)
        .Int("entries", stab.entries)
        .Number("max_change", stab.max_change)
        .Number("mean_change", stab.mean_change)
        .Number("stddev_change", stab.stddev_change)
        .Number("tolerance", stab.tolerance)
        .Number("margin", stab.margin)
        .Bool("new_entries", stab.new_entries)
        .Int("stable_rounds", stab.stable_rounds);
    if (!summary.committed && !cal.postmortem.top_mispredicted.empty()) {
      const OpResidual& worst = cal.postmortem.top_mispredicted.front();
      result.events.Emit("rollback_postmortem")
          .Int("round", summary.round)
          .Str("cause", candidate_oom ? "oom" : "slower")
          .Str("worst_op", worst.name)
          .Number("worst_predicted_s", worst.predicted_s)
          .Number("worst_realized_s", worst.realized_s)
          .Number("worst_rel_err", worst.rel_err)
          .Int("mispredicted_ops_reported",
               static_cast<int64_t>(cal.postmortem.top_mispredicted.size()));
    }
    result.round_history.push_back(summary);
    result.calibration.push_back(std::move(cal));

    if (stability.IsStable()) {
      result.events.Emit("stable").Int("round", result.rounds);
      break;
    }
  }

  // ---- normal training: measure the final strategy --------------------------
  result.iteration_s = MeasureSteps(
      current_graph, current_placement, current_priorities, current_dispatch,
      cluster, options.measure_iterations, options.noise_cv,
      options.seed + 999331, &result.final_sim);
  result.graph = std::move(current_graph);
  result.strategy = std::move(current_strategy);
  result.strategy.predicted_makespan = current_measured;

  // Algorithm time is also part of the simulated strategy time.
  result.strategy_time_s += result.algorithm_time_s;
  result.events.Emit("final")
      .Str("model", model_name)
      .Number("iteration_s", result.iteration_s)
      .Int("rounds", result.rounds)
      .Int("rollbacks", result.rollbacks)
      .Int("activations", result.activations)
      .Int("splits", static_cast<int64_t>(result.strategy.splits.size()))
      .Number("strategy_time_s", result.strategy_time_s)
      .Number("algorithm_time_s", result.algorithm_time_s)
      .Bool("oom", result.final_sim.oom);

  MetricsRegistry& metrics = CurrentMetrics();
  metrics.AddCounter("calculator/runs");
  metrics.AddCounter("calculator/rounds", result.rounds);
  metrics.AddCounter("calculator/rollbacks", result.rollbacks);
  metrics.AddCounter("calculator/activations", result.activations);
  metrics.SetGauge("calculator/last_iteration_s", result.iteration_s);
  metrics.SetGauge("calculator/last_strategy_time_s", result.strategy_time_s);
  (void)host_start;
  return result;
}

}  // namespace fastt
