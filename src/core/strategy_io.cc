#include "core/strategy_io.h"

#include <sstream>

#include "util/check.h"

namespace fastt {
namespace {
constexpr int kFormatVersion = 1;
}  // namespace

void SerializeStrategy(const Strategy& strategy, std::ostream& out) {
  out << "fastt_strategy " << kFormatVersion << "\n";
  out << "makespan " << strategy.predicted_makespan << "\n";
  out << "placement";
  for (DeviceId d : strategy.placement) out << ' ' << d;
  out << "\norder";
  for (OpId id : strategy.execution_order) out << ' ' << id;
  out << "\n";
  for (const SplitDecision& s : strategy.splits) {
    out << "split " << static_cast<int>(s.dim) << ' ' << s.num_splits << ' '
        << s.op_name << "\n";
  }
}

std::string SerializeStrategy(const Strategy& strategy) {
  std::ostringstream out;
  SerializeStrategy(strategy, out);
  return out.str();
}

Strategy DeserializeStrategy(std::istream& in) {
  std::string keyword;
  int version = 0;
  in >> keyword >> version;
  FASTT_CHECK_MSG(keyword == "fastt_strategy", "not a fastt strategy file");
  FASTT_CHECK_MSG(version == kFormatVersion,
                  "unsupported strategy version");
  Strategy strategy;
  std::string line;
  std::getline(in, line);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "makespan") {
      ls >> strategy.predicted_makespan;
    } else if (kind == "placement") {
      DeviceId d;
      while (ls >> d) strategy.placement.push_back(d);
    } else if (kind == "order") {
      OpId id;
      while (ls >> id) strategy.execution_order.push_back(id);
    } else if (kind == "split") {
      SplitDecision s;
      int dim = 0;
      ls >> dim >> s.num_splits;
      s.dim = static_cast<SplitDim>(dim);
      std::getline(ls, s.op_name);
      if (!s.op_name.empty() && s.op_name.front() == ' ')
        s.op_name.erase(0, 1);
      strategy.splits.push_back(std::move(s));
    } else {
      FASTT_CHECK_MSG(false, "unknown strategy record: " + kind);
    }
  }
  return strategy;
}

Strategy DeserializeStrategy(const std::string& text) {
  std::istringstream in(text);
  return DeserializeStrategy(in);
}

}  // namespace fastt
