#include "core/dpos.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <queue>
#include <unordered_map>

#include "core/rank.h"
#include "core/timeline.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "util/check.h"
#include "util/memtrack.h"
#include "util/thread_pool.h"

namespace fastt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct ReadyOp {
  double rank = 0.0;
  OpId op = kInvalidOp;
  bool operator<(const ReadyOp& other) const {
    // max-heap by rank; ties resolved by smaller id for determinism.
    if (rank != other.rank) return rank < other.rank;
    return op > other.op;
  }
};

}  // namespace

DposResult Dpos(const Graph& g, const Cluster& cluster,
                const CompCostModel& comp, const CommCostModel& comm,
                const DposOptions& options) {
  // Resolve the ambient registry once; the latency histogram records
  // through an interned handle so the per-call instrumentation does no
  // string allocation (Dpos runs once per OS-DPOS trial on pool workers).
  MetricsRegistry& reg = CurrentMetrics();
  ScopedTimerRef total_timer(reg, reg.TimerRef("dpos/total"));
  FASTT_TRACE_SPAN("dpos/total");
  ScopedLatencyRef latency_hist(reg, reg.HistogramRef("dpos/latency_s"));
  // Everything Dpos allocates below — scratch vectors, the ready queue, the
  // timelines — inherits the dpos tag through the ambient scope.
  MemTagScope mem_scope(MemTag::kDpos);
  reg.AddCounter("dpos/invocations");
  const int32_t n_dev = cluster.num_devices();
  FASTT_CHECK(n_dev >= 1);
  const size_t slots = static_cast<size_t>(g.num_slots());

  // Read-mostly cost snapshots: one model lookup per (op, device) and per
  // device pair up front; every query below — including from worker threads —
  // is an unsynchronized array read.
  const CompCostTable comp_t(g, comp, n_dev);
  const CommCostTable comm_t(comm, n_dev);
  // Memoized per-slot placement memory demand (MemNeed walks successor
  // lists; the device-selection loops ask for it O(devices · CP) times).
  TaggedVector<int64_t> mem_need(slots, 0);
  for (OpId id : g.LiveOps())
    mem_need[static_cast<size_t>(id)] = MemNeed(g, id);

  // Candidate-device loops fan out across the search pool when wide enough;
  // each device writes its verdict into its own slot and the reduction runs
  // serially in ascending device order, so the chosen device is identical
  // for any thread count (--jobs 1 is the reference semantics).
  //
  // The two loops have very different grain. The CP prefix scan walks the
  // whole remaining critical path per device, so it pays off from a handful
  // of devices. Per-pop candidate scoring is O(fan-in) per device — a few
  // microseconds — and runs once per placed op (tens of thousands of times),
  // so below ~16 devices the pool hand-off costs more than the scan and the
  // loop must stay inline.
  constexpr size_t kMinParallelDevices = 4;
  constexpr size_t kMinParallelScoreDevices = 16;

  DposResult result;
  {
    FASTT_TRACE_SPAN("dpos/rank");
    result.rank = ComputeRankU(g, comp_t, comm_t);
    result.critical_path = CriticalPathByRank(g, result.rank);
  }
  EmitMemTraceCounters();
  result.start_time.assign(slots, 0.0);
  result.finish_time.assign(slots, 0.0);
  result.strategy.placement.assign(slots, kInvalidDevice);

  TaggedVector<int64_t> planned_mem(static_cast<size_t>(n_dev), 0);
  TaggedVector<int64_t> mem_budget(static_cast<size_t>(n_dev), 0);
  for (DeviceId d = 0; d < n_dev; ++d)
    mem_budget[static_cast<size_t>(d)] = static_cast<int64_t>(
        options.memory_headroom *
        static_cast<double>(cluster.device(d).usable_bytes()));
  std::vector<DeviceTimeline> timeline(static_cast<size_t>(n_dev));

  // ---- Critical-path device selection (Alg. 1 line 5) ---------------------
  // Walk the CP, and for the ops not yet assigned pick the device with the
  // smallest average compute time over the longest prefix it can host; when
  // its memory fills, pick the next CP device for the remainder.
  std::unordered_map<OpId, DeviceId> cp_device;
  if (options.use_critical_path_device) {
    FASTT_TRACE_SPAN("dpos/cp_device");
    struct CpCandidate {
      double avg = kInf;
      size_t count = 0;
    };
    std::vector<CpCandidate> cands(static_cast<size_t>(n_dev));
    size_t pos = 0;
    while (pos < result.critical_path.size()) {
      // Per-device prefix scan, parallel across devices.
      ParallelFor(
          static_cast<size_t>(n_dev),
          [&](size_t di) {
            const DeviceId d = static_cast<DeviceId>(di);
            int64_t free = mem_budget[di] - planned_mem[di];
            double total = 0.0;
            size_t count = 0;
            for (size_t i = pos; i < result.critical_path.size(); ++i) {
              const OpId cp_op = result.critical_path[i];
              if (mem_need[static_cast<size_t>(cp_op)] > free) break;
              free -= mem_need[static_cast<size_t>(cp_op)];
              total += comp_t.Time(cp_op, d);
              ++count;
            }
            cands[di].count = count;
            cands[di].avg =
                count == 0 ? kInf : total / static_cast<double>(count);
          },
          kMinParallelDevices);
      DeviceId best = kInvalidDevice;
      double best_avg = kInf;
      size_t best_count = 0;
      for (DeviceId d = 0; d < n_dev; ++d) {
        const CpCandidate& c = cands[static_cast<size_t>(d)];
        if (c.count == 0) continue;
        if (c.avg < best_avg - 1e-15 ||
            (c.avg <= best_avg + 1e-15 && c.count > best_count)) {
          best_avg = c.avg;
          best = d;
          best_count = c.count;
        }
      }
      if (best == kInvalidDevice) {
        // No device can host even one more CP op: stop reserving; the
        // min-EFT fallback below will place the remainder.
        result.memory_overflow = true;
        break;
      }
      for (size_t i = pos; i < pos + best_count; ++i) {
        const OpId id = result.critical_path[i];
        cp_device[id] = best;
        planned_mem[static_cast<size_t>(best)] +=
            mem_need[static_cast<size_t>(id)];
      }
      pos += best_count;
    }
  }

  // ---- List scheduling ------------------------------------------------------
  // Rank-ordered priority queue, gated by precedence (an op becomes eligible
  // once all predecessors are placed) so ready times are always computable.
  std::vector<int32_t> unplaced_preds(slots, 0);
  for (OpId id : g.LiveOps()) {
    for (EdgeId e : g.in_edges(id)) {
      const Edge& edge = g.edge(e);
      if (!edge.dead && !g.op(edge.src).dead)
        ++unplaced_preds[static_cast<size_t>(id)];
    }
  }
  std::priority_queue<ReadyOp, TaggedVector<ReadyOp>> queue;
  for (OpId id : g.LiveOps())
    if (unplaced_preds[static_cast<size_t>(id)] == 0)
      queue.push(ReadyOp{result.rank[static_cast<size_t>(id)], id});

  // Channel model mirroring the executor: one egress and one ingress copy
  // engine per device, and TF rendezvous dedup (a tensor is sent once per
  // destination device). Without this, DPOS systematically under-prices
  // placements that funnel many large tensors into one device — the exact
  // error that made gradient-aggregation traffic look free.
  std::vector<double> egress_free(static_cast<size_t>(n_dev), 0.0);
  std::vector<double> ingress_free(static_cast<size_t>(n_dev), 0.0);
  std::map<std::pair<OpId, DeviceId>, double> sent_arrival;

  // Earliest data-ready time of `op` on device `d` given placed preds.
  // Evaluation-only: consults but does not advance the channel state, so
  // concurrent evaluations for different candidate devices are safe.
  auto ready_time = [&](OpId op, DeviceId d) {
    double t = 0.0;
    for (EdgeId e : g.in_edges(op)) {
      const Edge& edge = g.edge(e);
      if (edge.dead || g.op(edge.src).dead) continue;
      const DeviceId pd =
          result.strategy.placement[static_cast<size_t>(edge.src)];
      const double ft = result.finish_time[static_cast<size_t>(edge.src)];
      double arrival = ft;
      if (pd != d) {
        auto it = sent_arrival.find({edge.src, d});
        if (it != sent_arrival.end()) {
          arrival = it->second;
        } else {
          const double start =
              std::max({ft, egress_free[static_cast<size_t>(pd)],
                        ingress_free[static_cast<size_t>(d)]});
          arrival = start + comm_t.Estimate(pd, d, edge.bytes);
        }
      }
      t = std::max(t, arrival);
    }
    return t;
  };

  auto schedule_on = [&](OpId op, DeviceId d) {
    // Commit incoming transfers to the copy engines (dedup'd per tensor).
    for (EdgeId e : g.in_edges(op)) {
      const Edge& edge = g.edge(e);
      if (edge.dead || g.op(edge.src).dead) continue;
      const DeviceId pd =
          result.strategy.placement[static_cast<size_t>(edge.src)];
      if (pd == d) continue;
      if (sent_arrival.count({edge.src, d}) > 0) continue;
      const double ft = result.finish_time[static_cast<size_t>(edge.src)];
      const double start =
          std::max({ft, egress_free[static_cast<size_t>(pd)],
                    ingress_free[static_cast<size_t>(d)]});
      const double dur = comm_t.Estimate(pd, d, edge.bytes);
      egress_free[static_cast<size_t>(pd)] = start + dur;
      ingress_free[static_cast<size_t>(d)] = start + dur;
      sent_arrival[{edge.src, d}] = start + dur;
    }
    const double w = comp_t.Time(op, d);
    const double ready = ready_time(op, d);
    const double start = timeline[static_cast<size_t>(d)].EarliestSlot(ready, w);
    timeline[static_cast<size_t>(d)].Commit(start, w, op);
    result.strategy.placement[static_cast<size_t>(op)] = d;
    result.start_time[static_cast<size_t>(op)] = start;
    result.finish_time[static_cast<size_t>(op)] = start + w;
  };

  // Candidate score of placing `op` on `d`: EFT plus the communication
  // affinity term. Returns +inf when the device lacks memory.
  auto device_score = [&](OpId op, DeviceId d) {
    if (planned_mem[static_cast<size_t>(d)] +
            mem_need[static_cast<size_t>(op)] >
        mem_budget[static_cast<size_t>(d)])
      return kInf;
    const double w = comp_t.Time(op, d);
    const double ready = ready_time(op, d);
    const double eft =
        timeline[static_cast<size_t>(d)].EarliestSlot(ready, w) + w;
    double score = eft;
    if (options.comm_affinity > 0.0) {
      double traffic = 0.0;
      for (EdgeId e : g.in_edges(op)) {
        const Edge& edge = g.edge(e);
        if (edge.dead || g.op(edge.src).dead) continue;
        const DeviceId pd =
            result.strategy.placement[static_cast<size_t>(edge.src)];
        traffic += comm_t.Estimate(pd, d, edge.bytes);
      }
      for (EdgeId e : g.out_edges(op)) {
        const Edge& edge = g.edge(e);
        if (edge.dead || g.op(edge.dst).dead) continue;
        // Consumers are unplaced, but colocation can already pin them
        // (gradients flowing toward a parameter's aggregation/update
        // site) — exactly the traffic §6.5's placements avoid.
        const OpId anchor = g.op(edge.dst).colocate_with;
        if (anchor == kInvalidOp) continue;
        const DeviceId ad =
            result.strategy.placement[static_cast<size_t>(anchor)];
        if (ad != kInvalidDevice)
          traffic += comm_t.Estimate(d, ad, edge.bytes);
      }
      score += options.comm_affinity * traffic;
    }
    return score;
  };

  const char* trace = std::getenv("FASTT_DPOS_TRACE");
  // Setting FASTT_DPOS_TRACE alone is enough to see the per-device score
  // lines: opt-in diagnostics imply debug verbosity for their own output.
  if (trace != nullptr) EnsureLogThresholdAtLeast(LogLevel::kDebug);
  TaggedVector<double> scores(static_cast<size_t>(n_dev), kInf);

  // Full candidate table for one op, as the scheduler would have seen it at
  // decision time. Evaluation-only (ready_time / EarliestSlot / device_score
  // never mutate the channel or timeline state), so recording after the
  // decision but before schedule_on reproduces the decision's inputs exactly.
  auto record_decision = [&](OpId op, DeviceId chosen, PlacementReason reason) {
    PlacementDecision dec;
    dec.op = op;
    dec.op_name = g.op(op).name;
    dec.chosen = chosen;
    dec.reason = reason;
    dec.candidates.reserve(static_cast<size_t>(n_dev));
    for (DeviceId d = 0; d < n_dev; ++d) {
      CandidateScore c;
      c.device = d;
      const double w = comp_t.Time(op, d);
      c.est_s = ready_time(op, d);
      c.eft_s = timeline[static_cast<size_t>(d)].EarliestSlot(c.est_s, w) + w;
      c.score_s = device_score(op, d);
      c.memory_rejected = planned_mem[static_cast<size_t>(d)] +
                              mem_need[static_cast<size_t>(op)] >
                          mem_budget[static_cast<size_t>(d)];
      if (d == chosen) dec.chosen_eft_s = c.eft_s;
      dec.candidates.push_back(c);
    }
    result.provenance.push_back(std::move(dec));
  };

  FASTT_TRACE_SPAN("dpos/list_schedule");
  size_t placed = 0;
  while (!queue.empty()) {
    const OpId op = queue.top().op;
    queue.pop();
    FASTT_TRACE_COUNTER("dpos/ready_queue", queue.size());
    const Operation& o = g.op(op);

    DeviceId chosen = kInvalidDevice;
    PlacementReason reason = PlacementReason::kBestEft;
    bool charge_mem = true;
    const auto colocate = o.colocate_with;
    auto cp_it = cp_device.find(op);
    if (colocate != kInvalidOp &&
        result.strategy.placement[static_cast<size_t>(colocate)] !=
            kInvalidDevice) {
      chosen = result.strategy.placement[static_cast<size_t>(colocate)];
      reason = PlacementReason::kColocated;
    } else if (cp_it != cp_device.end()) {
      chosen = cp_it->second;  // memory already reserved in phase 1
      reason = PlacementReason::kCriticalPathDevice;
      charge_mem = false;
    } else {
      // Min-(EFT + communication affinity) over memory-feasible devices:
      // score every candidate (in parallel when wide enough), then reduce
      // serially in device order — first strict improvement wins, matching
      // the serial loop's tie-break exactly.
      const bool tracing =
          trace != nullptr && o.name.find(trace) != std::string::npos;
      ParallelFor(
          static_cast<size_t>(n_dev),
          [&](size_t di) {
            scores[di] = device_score(op, static_cast<DeviceId>(di));
          },
          tracing ? static_cast<size_t>(n_dev) + 1 : kMinParallelScoreDevices);
      if (tracing) {
        for (DeviceId d = 0; d < n_dev; ++d)
          FASTT_LOG(Debug, "dpos %-28s d%d: score=%.4f", o.name.c_str(), d,
                    scores[static_cast<size_t>(d)]);
      }
      double best_score = kInf;
      for (DeviceId d = 0; d < n_dev; ++d) {
        const double score = scores[static_cast<size_t>(d)];
        if (score < best_score) {
          best_score = score;
          chosen = d;
        }
      }
      if (chosen == kInvalidDevice) {
        // Nothing fits: overflow onto the device with the most headroom so a
        // complete (if infeasible) schedule is still produced for diagnosis.
        result.memory_overflow = true;
        reason = PlacementReason::kMemoryOverflow;
        int64_t best_free = std::numeric_limits<int64_t>::min();
        for (DeviceId d = 0; d < n_dev; ++d) {
          const int64_t free = mem_budget[static_cast<size_t>(d)] -
                               planned_mem[static_cast<size_t>(d)];
          if (free > best_free) {
            best_free = free;
            chosen = d;
          }
        }
      }
    }

    if (options.record_provenance) record_decision(op, chosen, reason);
    if (charge_mem)
      planned_mem[static_cast<size_t>(chosen)] +=
          mem_need[static_cast<size_t>(op)];

    schedule_on(op, chosen);
    ++placed;

    for (OpId succ : g.Succs(op)) {
      // Succs deduplicates; count down per-edge.
      int32_t dec = 0;
      for (EdgeId e : g.out_edges(op)) {
        const Edge& edge = g.edge(e);
        if (!edge.dead && edge.dst == succ) ++dec;
      }
      auto& left = unplaced_preds[static_cast<size_t>(succ)];
      left -= dec;
      if (left == 0)
        queue.push(ReadyOp{result.rank[static_cast<size_t>(succ)], succ});
    }
  }
  FASTT_CHECK_MSG(placed == static_cast<size_t>(g.num_live_ops()),
                  "DPOS failed to place every op (cycle?)");
  CurrentMetrics().AddCounter("dpos/ops_placed",
                                       static_cast<int64_t>(placed));
  if (result.memory_overflow)
    CurrentMetrics().AddCounter("dpos/memory_overflows");

  // ---- Execution order & objective ------------------------------------------
  // Sort by scheduled start time, ties broken topologically. Unknown costs
  // are priced 0, so whole chains can share one start time; a raw-id
  // tie-break then lets a consumer precede its producer (rewrites append
  // split/concat nodes at high slot ids), and the resulting priorities would
  // contradict the data deps (verifier rule order.deps).
  std::vector<int64_t> topo_pos(static_cast<size_t>(g.num_slots()), 0);
  {
    const std::vector<OpId> topo = g.TopoOrder();
    for (size_t i = 0; i < topo.size(); ++i)
      topo_pos[static_cast<size_t>(topo[i])] = static_cast<int64_t>(i);
  }
  std::vector<OpId> order = g.LiveOps();
  std::sort(order.begin(), order.end(), [&](OpId a, OpId b) {
    const double sa = result.start_time[static_cast<size_t>(a)];
    const double sb = result.start_time[static_cast<size_t>(b)];
    if (sa != sb) return sa < sb;
    return topo_pos[static_cast<size_t>(a)] < topo_pos[static_cast<size_t>(b)];
  });
  result.strategy.execution_order = std::move(order);
  for (OpId id : g.LiveOps())
    result.ft_exit =
        std::max(result.ft_exit, result.finish_time[static_cast<size_t>(id)]);
  result.strategy.predicted_makespan = result.ft_exit;
  EmitMemTraceCounters();
  return result;
}

std::vector<OpId> RealizedCriticalPath(const Graph& g,
                                       const DposResult& result,
                                       const CommCostModel& comm) {
  // Start from the op that finishes last, then repeatedly follow the
  // predecessor whose arrival bound the op's start (largest arrival time).
  OpId cur = kInvalidOp;
  for (OpId id : g.LiveOps()) {
    if (cur == kInvalidOp || result.finish_time[static_cast<size_t>(id)] >
                                 result.finish_time[static_cast<size_t>(cur)])
      cur = id;
  }
  std::vector<OpId> path;
  while (cur != kInvalidOp) {
    path.push_back(cur);
    OpId binding = kInvalidOp;
    double best_arrival = -1.0;
    const DeviceId d = result.strategy.placement[static_cast<size_t>(cur)];
    for (EdgeId e : g.in_edges(cur)) {
      const Edge& edge = g.edge(e);
      if (edge.dead || g.op(edge.src).dead) continue;
      const DeviceId pd =
          result.strategy.placement[static_cast<size_t>(edge.src)];
      const double arrival =
          result.finish_time[static_cast<size_t>(edge.src)] +
          (pd == d ? 0.0 : comm.Estimate(pd, d, edge.bytes));
      if (arrival > best_arrival) {
        best_arrival = arrival;
        binding = edge.src;
      }
    }
    cur = binding;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace fastt
