// Micro-batch pipeline parallelism — the paper's §7/§8 extension.
//
// "After FastT obtains operation placement and execution order, it can
// further split a mini-batch into micro-batches and allow pipelined
// training in the similar fashion as proposed in GPipe."
//
// Construction: the mini-batch is split into M micro-batches, each built as
// a replica sharing the model's variables (exactly the shared-variable
// machinery of the data-parallel constructor); a layer-wise model-parallel
// cut assigns each *stage* to a device, and every micro-batch follows the
// same stage → device map. Because micro-batches are independent until
// gradient aggregation, the executor naturally overlaps micro-batch m's
// stage s with micro-batch m+1's stage s-1 — the GPipe schedule emerges
// from the dataflow. Synchronous semantics are preserved: all micro-batch
// gradients are aggregated before the single optimizer update.
#pragma once

#include "core/data_parallel.h"
#include "sim/cluster.h"

namespace fastt {

struct PipelineGraph {
  Graph graph;
  int micro_batches = 0;
  int64_t global_batch = 0;
  std::vector<DeviceId> placement;  // stage-mapped placement per OpId
  // Depth-first (micro-batch-major) execution priorities. Without order
  // enforcement the default executor advances all micro-batches in
  // lockstep — every micro-batch reaches the stage boundary simultaneously
  // and the pipeline degenerates to serial execution. Running each
  // micro-batch through its stage before admitting the next (exactly the
  // ordering FastT's priority enforcement expresses) produces the GPipe
  // schedule. Use with DispatchMode::kPriority.
  std::vector<int64_t> priorities;
};

// Builds the pipelined training graph for `micro_batches` micro-batches of
// `batch / micro_batches` samples each (batch must be >= micro_batches) and
// assigns stages over the cluster's devices.
PipelineGraph BuildPipeline(const ModelBuildFn& build,
                            const std::string& model_name, int64_t batch,
                            int micro_batches, const Cluster& cluster);

}  // namespace fastt
