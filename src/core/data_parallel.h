// Data-parallel training-graph construction.
//
// Replicates the model once per device and inserts a GradAggregate op per
// parameter, summing the replicas' weight gradients before each replica's
// optimizer update — the explicit form of the gradient synchronization that
// TF-slim replicated training performs. This graph is both the DP baseline
// (with the canonical one-replica-per-GPU placement) and FastT's start /
// input graph when the model fits on a single device (paper §5.2).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "graph/graph.h"
#include "sim/cluster.h"

namespace fastt {

using ModelBuildFn =
    std::function<void(Graph&, const std::string& prefix, int64_t batch)>;

enum class Scaling {
  kStrong,  // global batch fixed; each replica gets batch/replicas
  kWeak,    // per-replica batch fixed; global batch grows with replicas
};

struct DataParallelGraph {
  Graph graph;
  int replicas = 0;
  int64_t global_batch = 0;
  // Replica index per OpId (aggregation ops belong to replica 0).
  std::vector<int> replica_of;
};

// Builds `replicas` copies of the model and wires gradient aggregation.
// Strong scaling requires batch >= replicas.
DataParallelGraph BuildDataParallel(const ModelBuildFn& build,
                                    const std::string& model_name,
                                    int64_t batch, int replicas,
                                    Scaling scaling);

// The canonical DP placement: replica r on device r, aggregation ops on the
// device hosting replica 0 (TF's default single-aggregator layout).
std::vector<DeviceId> CanonicalDataParallelPlacement(
    const DataParallelGraph& dp);

}  // namespace fastt
