#include "core/pipeline.h"

#include <map>

#include "core/model_parallel.h"
#include "util/check.h"

namespace fastt {

PipelineGraph BuildPipeline(const ModelBuildFn& build,
                            const std::string& model_name, int64_t batch,
                            int micro_batches, const Cluster& cluster) {
  FASTT_CHECK(micro_batches >= 1);
  FASTT_CHECK_MSG(batch >= micro_batches,
                  "batch must cover every micro-batch");

  PipelineGraph pipeline;
  pipeline.micro_batches = micro_batches;

  // Micro-batches are replicas with shared variables and one optimizer
  // update fed by the aggregated micro-batch gradients — exactly the
  // shared-variable data-parallel construction, re-placed stage-wise below.
  DataParallelGraph dp = BuildDataParallel(build, model_name, batch,
                                           micro_batches, Scaling::kStrong);
  pipeline.global_batch = dp.global_batch;

  // Stage map from micro-batch 0's layer-wise cut: cost key → device. The
  // cut also pins the shared variables (which live in replica 0's slice).
  const auto reference =
      GreedyModelParallelPlacement(dp.graph, cluster);
  std::map<std::string, DeviceId> stage_of;
  for (OpId id : dp.graph.LiveOps())
    stage_of.emplace(dp.graph.op(id).CostKey(),
                     reference[static_cast<size_t>(id)]);

  pipeline.placement.assign(static_cast<size_t>(dp.graph.num_slots()), 0);
  for (OpId id : dp.graph.LiveOps()) {
    auto it = stage_of.find(dp.graph.op(id).CostKey());
    pipeline.placement[static_cast<size_t>(id)] =
        it != stage_of.end() ? it->second
                             : reference[static_cast<size_t>(id)];
  }
  // Colocation constraints win over the stage map.
  for (OpId id : dp.graph.TopoOrder()) {
    const OpId target = dp.graph.op(id).colocate_with;
    if (target != kInvalidOp && !dp.graph.op(target).dead)
      pipeline.placement[static_cast<size_t>(id)] =
          pipeline.placement[static_cast<size_t>(target)];
  }

  // Depth-first priorities: creation order is micro-batch-major, so OpId
  // order already expresses "finish micro-batch m's stage before starting
  // micro-batch m+1's".
  pipeline.priorities.resize(static_cast<size_t>(dp.graph.num_slots()));
  for (size_t i = 0; i < pipeline.priorities.size(); ++i)
    pipeline.priorities[i] = static_cast<int64_t>(i);

  pipeline.graph = std::move(dp.graph);
  return pipeline;
}

}  // namespace fastt
