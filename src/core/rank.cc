#include "core/rank.h"

#include <algorithm>

namespace fastt {

std::vector<double> ComputeRankU(const Graph& g, const CompCostModel& comp,
                                 const CommCostModel& comm,
                                 int32_t num_devices) {
  return g.LongestPathFromExit(
      [&](const Operation& op) {
        return comp.MaxTimeOverDevices(op, num_devices);
      },
      [&](const Edge& e) { return comm.MaxOverPairs(e.bytes); });
}

std::vector<double> ComputeRankU(const Graph& g, const CompCostTable& comp,
                                 const CommCostTable& comm) {
  return g.LongestPathFromExit(
      [&](const Operation& op) { return comp.MaxOverDevices(op.id); },
      [&](const Edge& e) { return comm.MaxOverPairs(e.bytes); });
}

std::vector<OpId> CriticalPathByRank(const Graph& g,
                                     const std::vector<double>& rank) {
  OpId best = kInvalidOp;
  for (OpId id : g.LiveOps()) {
    if (best == kInvalidOp ||
        rank[static_cast<size_t>(id)] > rank[static_cast<size_t>(best)])
      best = id;
  }
  std::vector<OpId> path;
  while (best != kInvalidOp) {
    path.push_back(best);
    OpId next = kInvalidOp;
    for (OpId s : g.Succs(best)) {
      if (next == kInvalidOp ||
          rank[static_cast<size_t>(s)] > rank[static_cast<size_t>(next)])
        next = s;
    }
    best = next;
  }
  return path;
}

}  // namespace fastt
