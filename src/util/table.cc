#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace fastt {
namespace {

// A cell counts as numeric if it reads as a number possibly wrapped in sign,
// percent, and unit decorations: "41.038 ms", "+3.1%", "8.90 GB/s", "264".
// Placeholder cells ("-", "") stay neutral so a column of timings with a few
// dashes still right-aligns.
bool IsNumericCell(const std::string& cell) {
  size_t i = 0;
  const size_t n = cell.size();
  if (i < n && (cell[i] == '+' || cell[i] == '-')) ++i;
  size_t digits = 0;
  while (i < n && (std::isdigit(static_cast<unsigned char>(cell[i])) ||
                   cell[i] == '.' || cell[i] == ',')) {
    if (std::isdigit(static_cast<unsigned char>(cell[i]))) ++digits;
    ++i;
  }
  if (digits == 0) return false;
  // Optional unit suffix: letters, '%', '/', e.g. " ms", "%", " GB/s", "x".
  if (i < n && cell[i] == ' ') ++i;
  for (; i < n; ++i) {
    const char c = cell[i];
    if (!std::isalpha(static_cast<unsigned char>(c)) && c != '%' && c != '/')
      return false;
  }
  return true;
}

bool IsPlaceholderCell(const std::string& cell) {
  return cell.empty() || cell == "-";
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  // Right-align a column iff it has at least one numeric body cell and no
  // non-numeric ones (placeholders aside). All-text columns keep the familiar
  // left alignment, so mixed tables stay stable.
  std::vector<bool> right(headers_.size(), false);
  for (size_t c = 0; c < headers_.size(); ++c) {
    bool any_numeric = false;
    bool all_ok = true;
    for (const auto& row : rows_) {
      const std::string& cell = c < row.size() ? row[c] : "";
      if (IsPlaceholderCell(cell)) continue;
      if (IsNumericCell(cell))
        any_numeric = true;
      else
        all_ok = false;
    }
    right[c] = any_numeric && all_ok;
  }

  auto render_row = [&](const std::vector<std::string>& row, bool is_header) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      const std::string pad(widths[c] - cell.size(), ' ');
      if (right[c] && !is_header)
        line += " " + pad + cell + " |";
      else
        line += " " + cell + pad + " |";
    }
    return line + "\n";
  };

  std::string sep = "|";
  for (size_t c = 0; c < headers_.size(); ++c)
    sep += std::string(widths[c] + 2, '-') + "|";
  sep += "\n";

  std::string out = render_row(headers_, /*is_header=*/true) + sep;
  for (const auto& row : rows_) out += render_row(row, /*is_header=*/false);
  return out;
}

void TablePrinter::Print() const {
  const std::string s = Render();
  std::fwrite(s.data(), 1, s.size(), stdout);
}

}  // namespace fastt
