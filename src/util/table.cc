#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace fastt {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string sep = "|";
  for (size_t c = 0; c < headers_.size(); ++c)
    sep += std::string(widths[c] + 2, '-') + "|";
  sep += "\n";

  std::string out = render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const {
  const std::string s = Render();
  std::fwrite(s.data(), 1, s.size(), stdout);
}

}  // namespace fastt
