// Tagged host-heap accounting: where the process's own bytes and
// allocations go, broken down by subsystem.
//
// The simulator accounts *simulated device* memory; nothing accounted the
// *host* heap the search itself burns — the Graph's pointer-heavy storage,
// the simulator's event churn, OS-DPOS trial copies, cost-table snapshots.
// This facility is the yardstick for the planned data-layout refactor
// (ROADMAP: SoA/CSR graphs, pooled events): it must show the rewrite wins
// and then gate regressions in `fastt bench-diff`.
//
// Three pieces:
//   * MemTracker — per-tag atomic counters (live/peak bytes, alloc/free
//     counts, log2 size-class histogram). Disabled by default; when
//     disabled every record call is one relaxed load and a branch.
//   * TaggedAlloc<T> — an STL allocator adaptor that charges a MemTag.
//     The tag is fixed at allocator construction (explicitly, or from the
//     ambient MemTagScope) and travels with the container's memory — all
//     propagate_on_container_* traits are true — so every deallocation is
//     charged to the tag that allocated it and per-tag live bytes are
//     exact.
//   * MemTagScope — RAII ambient tag for the current thread. A tagged
//     container default-constructed inside a scope inherits the scope's
//     tag; subsystem entry points (Dpos, Simulate) open a scope so their
//     scratch containers attribute without per-declaration ceremony.
//
// Typical use:
//   MemTracker::Global().Enable();
//   { MemTagScope scope(MemTag::kDpos);
//     TaggedVector<double> scratch;   // charged to dpos
//     ... }
//   const MemTagStats dpos = MemTracker::Global().stats(MemTag::kDpos);
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

namespace fastt {

// Subsystem tags. Order is the report order; kCount is a sentinel.
enum class MemTag : uint8_t {
  kUntagged = 0,  // tagged allocation outside any scope
  kGraph,         // Graph storage: ops, edges, adjacency, name index
  kSimEvents,     // ExecSim / IncrementalSim event + ready queues
  kCost,          // cost-table snapshots
  kDpos,          // DPOS / OS-DPOS scratch (queues, score tables)
  kObs,           // observability: event log lines, provenance
  kCount,
};

inline constexpr size_t kNumMemTags = static_cast<size_t>(MemTag::kCount);

// Stable human-readable name ("graph", "sim/events", ...).
const char* MemTagName(MemTag tag);

// Allocation sizes are binned by log2: class k counts allocations of
// (2^(k-1), 2^k] bytes (class 0: exactly 0..1 bytes). 48 classes cover
// every size up to 128 TiB; larger allocations land in the last class.
inline constexpr size_t kMemSizeClasses = 48;

struct MemTagStats {
  int64_t live_bytes = 0;   // currently allocated and not yet freed
  int64_t peak_bytes = 0;   // high-water mark of live_bytes
  int64_t allocs = 0;       // allocation calls
  int64_t frees = 0;        // deallocation calls
  int64_t alloc_bytes = 0;  // total bytes ever allocated
  int64_t size_class_allocs[kMemSizeClasses] = {0};
};

class MemTracker {
 public:
  // Process-wide instance used by TaggedAlloc and the instrumented code.
  static MemTracker& Global();

  MemTracker() = default;
  MemTracker(const MemTracker&) = delete;
  MemTracker& operator=(const MemTracker&) = delete;

  // Zeroes every counter and starts recording. Live/peak figures are exact
  // for memory whose whole lifetime falls inside the enabled window; frees
  // of pre-enable memory show up as negative live drift (documented, not
  // clamped — the alloc/free counts stay exact either way).
  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Zeroes everything without changing the enabled flag.
  void Reset();
  // Collapses every tag's peak to its current live value — memstat uses
  // this to measure per-phase high-water marks.
  void ResetPeaks();

  // Hot path. No-ops when disabled.
  void RecordAlloc(MemTag tag, size_t bytes) {
    if (!enabled()) return;
    RecordAllocSlow(tag, bytes);
  }
  void RecordFree(MemTag tag, size_t bytes) {
    if (!enabled()) return;
    RecordFreeSlow(tag, bytes);
  }

  // Point-in-time copy of one tag / all tags (relaxed reads; exact once
  // the instrumented code is quiescent).
  MemTagStats stats(MemTag tag) const;
  std::vector<MemTagStats> Snapshot() const;  // indexed by MemTag value

  // Aggregates over all tags. total_peak_bytes is the high-water mark of
  // the *sum* of live bytes (not the sum of per-tag peaks).
  int64_t total_live_bytes() const;
  int64_t total_peak_bytes() const;
  int64_t total_allocs() const;

 private:
  // One cache line per tag so concurrent subsystems don't false-share.
  struct alignas(64) TagCell {
    std::atomic<int64_t> live{0};
    std::atomic<int64_t> peak{0};
    std::atomic<int64_t> allocs{0};
    std::atomic<int64_t> frees{0};
    std::atomic<int64_t> alloc_bytes{0};
    std::atomic<int64_t> size_class[kMemSizeClasses] = {};
  };

  void RecordAllocSlow(MemTag tag, size_t bytes);
  void RecordFreeSlow(MemTag tag, size_t bytes);

  std::atomic<bool> enabled_{false};
  TagCell cells_[kNumMemTags];
  std::atomic<int64_t> total_live_{0};
  std::atomic<int64_t> total_peak_{0};
};

// ---- Ambient tag (thread-local) -------------------------------------------

// The calling thread's current tag; kUntagged outside any scope.
MemTag CurrentMemTag();

// RAII: sets the thread's ambient tag for the scope's lifetime.
class MemTagScope {
 public:
  explicit MemTagScope(MemTag tag);
  ~MemTagScope();
  MemTagScope(const MemTagScope&) = delete;
  MemTagScope& operator=(const MemTagScope&) = delete;

 private:
  MemTag prev_;
};

// ---- STL allocator adaptor ------------------------------------------------

// Charges the global MemTracker under a tag fixed at construction. All
// propagate traits are true, so the allocator (and its tag) follows the
// memory through container copy/move/swap: a buffer is always freed under
// the tag that allocated it.
template <typename T>
class TaggedAlloc {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  TaggedAlloc() : tag_(CurrentMemTag()) {}
  explicit TaggedAlloc(MemTag tag) : tag_(tag) {}
  template <typename U>
  TaggedAlloc(const TaggedAlloc<U>& other) : tag_(other.tag()) {}  // NOLINT

  T* allocate(size_t n) {
    const size_t bytes = n * sizeof(T);
    MemTracker::Global().RecordAlloc(tag_, bytes);
    return static_cast<T*>(::operator new(bytes));
  }
  void deallocate(T* p, size_t n) noexcept {
    MemTracker::Global().RecordFree(tag_, n * sizeof(T));
    ::operator delete(p);
  }

  MemTag tag() const { return tag_; }

 private:
  MemTag tag_;
};

template <typename T, typename U>
bool operator==(const TaggedAlloc<T>& a, const TaggedAlloc<U>& b) {
  return a.tag() == b.tag();
}
template <typename T, typename U>
bool operator!=(const TaggedAlloc<T>& a, const TaggedAlloc<U>& b) {
  return !(a == b);
}

// Shorthand for the common case.
template <typename T>
using TaggedVector = std::vector<T, TaggedAlloc<T>>;

// ---- Trace integration ----------------------------------------------------

// Emits one live-bytes counter sample per active tag (plus the total) into
// the search flight recorder, as "mem/<tag>/live_bytes" tracks. No-op
// unless both the tracker and the tracer are enabled; subsystem entry/exit
// points call this so `fastt search-profile` shows memory next to time.
void EmitMemTraceCounters();

}  // namespace fastt
