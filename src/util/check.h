// Lightweight invariant-checking macros.
//
// FASTT_CHECK fires in all build types: these guard algorithmic invariants
// (schedule validity, graph well-formedness) whose violation means a logic
// bug, not a recoverable condition, so we fail fast with a message.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fastt {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace fastt

#define FASTT_CHECK(expr)                                   \
  do {                                                      \
    if (!(expr)) [[unlikely]]                               \
      ::fastt::CheckFailed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define FASTT_CHECK_MSG(expr, msg)                             \
  do {                                                         \
    if (!(expr)) [[unlikely]]                                  \
      ::fastt::CheckFailed(__FILE__, __LINE__, #expr, (msg)); \
  } while (0)
