// Deterministic, seedable random number generator.
//
// All stochastic behaviour in the repository (simulator noise, black-box
// searchers, synthetic DAG generation in tests) flows through this type so
// every experiment is reproducible from a seed printed in its output.
#pragma once

#include <cstdint>

namespace fastt {

// xoshiro256** — small, fast, good statistical quality; seeded via SplitMix64
// so that nearby seeds give independent streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform over the full 64-bit range.
  uint64_t NextU64();

  // Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal via Box-Muller (cached pair).
  double NextGaussian();

  // Gaussian with the given mean/stddev.
  double NextGaussian(double mean, double stddev);

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace fastt
