#include "util/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <memory>

#include "obs/ambient.h"
#include "obs/profiler.h"
#include "obs/tracer.h"
#include "util/strings.h"

namespace fastt {
namespace {

thread_local bool t_in_worker = false;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : worker_tasks_(static_cast<size_t>(num_threads > 0 ? num_threads : 0)) {
  workers_.reserve(worker_tasks_.size());
  for (int i = 0; i < num_threads; ++i)
    workers_.emplace_back([this, i] { WorkerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop(int worker_index) {
  t_in_worker = true;
  const std::string thread_name = StrFormat("search worker %d", worker_index);
  Tracer::Global().SetCurrentThreadName(thread_name);
  // Workers opt into CPU sampling for their whole lifetime: if a profile is
  // running their timers arm immediately, otherwise the slot sits idle
  // until a Start() arms it.
  RegisterProfiledThread(thread_name.c_str());
  for (;;) {
    Task task;
    {
      MutexLock lock(mu_);
      cv_.Wait(mu_, [this]() FASTT_REQUIRES(mu_) {
        return stop_ || !tasks_.empty();
      });
      if (stop_ && tasks_.empty()) {
        UnregisterProfiledThread();
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    const int64_t waited = NowNs() - task.enqueue_ns;
    queue_wait_ns_.fetch_add(static_cast<uint64_t>(waited > 0 ? waited : 0),
                             std::memory_order_relaxed);
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    worker_tasks_[static_cast<size_t>(worker_index)].fetch_add(
        1, std::memory_order_relaxed);
    {
      FASTT_TRACE_SPAN("pool/task");
      task.fn();
    }
  }
}

bool ThreadPool::InWorker() { return t_in_worker; }

PoolStats ThreadPool::Stats() const {
  PoolStats stats;
  stats.jobs = num_threads() + 1;
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.tasks = tasks_run_.load(std::memory_order_relaxed);
  stats.queue_wait_ns = queue_wait_ns_.load(std::memory_order_relaxed);
  stats.worker_tasks.reserve(worker_tasks_.size());
  for (const auto& w : worker_tasks_)
    stats.worker_tasks.push_back(w.load(std::memory_order_relaxed));
  return stats;
}

void ThreadPool::Run(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t threads = workers_.size();
  if (threads == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  FASTT_TRACE_SPAN("pool/run");
  batches_.fetch_add(1, std::memory_order_relaxed);
  // Static contiguous partition: chunk c covers [c*n/k, (c+1)*n/k). The
  // partition depends only on (n, chunks), never on thread timing, so every
  // index runs exactly once for any worker count.
  struct Batch {
    size_t n = 0;
    size_t chunks = 0;
    const std::function<void(size_t)>* fn = nullptr;
    // The submitting thread's telemetry bindings, installed around every
    // chunk a worker claims so request-scoped metrics/traces/events land in
    // the submitter's TelemetryContext — the same propagation discipline as
    // the ambient MemTag. Pointers stay valid because Run() doesn't return
    // until every chunk is done and the installing scope outlives Run.
    AmbientTelemetry ambient;
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> done{0};
    Mutex mu;
    CondVar cv;
  };
  // Shared ownership: a worker that loses the claim race may still touch the
  // batch counters after Run has returned.
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->chunks = std::min(n, threads + 1);  // +1: the caller participates
  batch->fn = &fn;  // outlives every claimed chunk (Run waits for them)
  batch->ambient = CurrentAmbientTelemetry();
  auto run_chunks = [](const std::shared_ptr<Batch>& b) {
    const AmbientTelemetry prev = ExchangeAmbientTelemetry(b->ambient);
    for (;;) {
      const size_t c = b->next_chunk.fetch_add(1);
      if (c >= b->chunks) break;
      const size_t begin = c * b->n / b->chunks;
      const size_t end = (c + 1) * b->n / b->chunks;
      for (size_t i = begin; i < end; ++i) (*b->fn)(i);
      if (b->done.fetch_add(1) + 1 == b->chunks) {
        MutexLock lock(b->mu);
        b->cv.NotifyAll();
      }
    }
    ExchangeAmbientTelemetry(prev);
  };
  {
    const int64_t enqueue_ns = NowNs();
    MutexLock lock(mu_);
    for (size_t t = 0; t < std::min(threads, batch->chunks); ++t)
      tasks_.push({[batch, run_chunks] { run_chunks(batch); }, enqueue_ns});
  }
  cv_.NotifyAll();
  run_chunks(batch);  // the calling thread helps
  MutexLock lock(batch->mu);
  batch->cv.Wait(batch->mu,
                 [&] { return batch->done.load() == batch->chunks; });
}

namespace {

struct SearchPoolState {
  Mutex mu;
  int jobs FASTT_GUARDED_BY(mu) = 0;  // 0 = uninitialized
  std::unique_ptr<ThreadPool> pool FASTT_GUARDED_BY(mu);
  // Counters from pools replaced by SetSearchJobs.
  PoolStats retired FASTT_GUARDED_BY(mu);
};

SearchPoolState& PoolState() {
  static SearchPoolState* state = new SearchPoolState();
  return *state;
}

int InitialJobs() {
  if (const char* env = std::getenv("FASTT_JOBS"); env != nullptr) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  return 1;
}

void MergeStats(const PoolStats& from, PoolStats* into) {
  into->batches += from.batches;
  into->tasks += from.tasks;
  into->queue_wait_ns += from.queue_wait_ns;
  if (into->worker_tasks.size() < from.worker_tasks.size())
    into->worker_tasks.resize(from.worker_tasks.size(), 0);
  for (size_t i = 0; i < from.worker_tasks.size(); ++i)
    into->worker_tasks[i] += from.worker_tasks[i];
}

}  // namespace

void SetSearchJobs(int jobs) {
  if (jobs < 1) jobs = 1;
  SearchPoolState& state = PoolState();
  MutexLock lock(state.mu);
  if (state.jobs == jobs) return;
  state.jobs = jobs;
  if (state.pool) MergeStats(state.pool->Stats(), &state.retired);
  state.pool.reset();  // join old workers before spawning new ones
  if (jobs > 1) state.pool = std::make_unique<ThreadPool>(jobs - 1);
}

int SearchJobs() {
  SearchPoolState& state = PoolState();
  MutexLock lock(state.mu);
  if (state.jobs == 0) {
    state.jobs = InitialJobs();
    if (state.jobs > 1)
      state.pool = std::make_unique<ThreadPool>(state.jobs - 1);
  }
  return state.jobs;
}

PoolStats SearchPoolStats() {
  SearchPoolState& state = PoolState();
  MutexLock lock(state.mu);
  PoolStats stats = state.retired;
  if (state.pool) MergeStats(state.pool->Stats(), &stats);
  stats.jobs = state.jobs == 0 ? 1 : state.jobs;
  return stats;
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t min_parallel) {
  if (n == 0) return;
  ThreadPool* pool = nullptr;
  if (n >= min_parallel && !ThreadPool::InWorker()) {
    SearchPoolState& state = PoolState();
    MutexLock lock(state.mu);
    if (state.jobs == 0) {
      state.jobs = InitialJobs();
      if (state.jobs > 1)
        state.pool = std::make_unique<ThreadPool>(state.jobs - 1);
    }
    pool = state.pool.get();
  }
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->Run(n, fn);
}

}  // namespace fastt
