#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>

namespace fastt {
namespace {

thread_local bool t_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  workers_.reserve(static_cast<size_t>(num_threads > 0 ? num_threads : 0));
  for (int i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

bool ThreadPool::InWorker() { return t_in_worker; }

void ThreadPool::Run(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t threads = workers_.size();
  if (threads == 0 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Static contiguous partition: chunk c covers [c*n/k, (c+1)*n/k). The
  // partition depends only on (n, chunks), never on thread timing, so every
  // index runs exactly once for any worker count.
  struct Batch {
    size_t n = 0;
    size_t chunks = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  // Shared ownership: a worker that loses the claim race may still touch the
  // batch counters after Run has returned.
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->chunks = std::min(n, threads + 1);  // +1: the caller participates
  batch->fn = &fn;  // outlives every claimed chunk (Run waits for them)
  auto run_chunks = [](const std::shared_ptr<Batch>& b) {
    for (;;) {
      const size_t c = b->next_chunk.fetch_add(1);
      if (c >= b->chunks) return;
      const size_t begin = c * b->n / b->chunks;
      const size_t end = (c + 1) * b->n / b->chunks;
      for (size_t i = begin; i < end; ++i) (*b->fn)(i);
      if (b->done.fetch_add(1) + 1 == b->chunks) {
        std::lock_guard<std::mutex> lock(b->mu);
        b->cv.notify_all();
      }
    }
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t t = 0; t < std::min(threads, batch->chunks); ++t)
      tasks_.push([batch, run_chunks] { run_chunks(batch); });
  }
  cv_.notify_all();
  run_chunks(batch);  // the calling thread helps
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&] { return batch->done.load() == batch->chunks; });
}

namespace {

struct SearchPoolState {
  std::mutex mu;
  int jobs = 0;  // 0 = uninitialized
  std::unique_ptr<ThreadPool> pool;
};

SearchPoolState& PoolState() {
  static SearchPoolState* state = new SearchPoolState();
  return *state;
}

int InitialJobs() {
  if (const char* env = std::getenv("FASTT_JOBS"); env != nullptr) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  return 1;
}

}  // namespace

void SetSearchJobs(int jobs) {
  if (jobs < 1) jobs = 1;
  SearchPoolState& state = PoolState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.jobs == jobs) return;
  state.jobs = jobs;
  state.pool.reset();  // join old workers before spawning new ones
  if (jobs > 1) state.pool = std::make_unique<ThreadPool>(jobs - 1);
}

int SearchJobs() {
  SearchPoolState& state = PoolState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.jobs == 0) {
    state.jobs = InitialJobs();
    if (state.jobs > 1)
      state.pool = std::make_unique<ThreadPool>(state.jobs - 1);
  }
  return state.jobs;
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t min_parallel) {
  if (n == 0) return;
  ThreadPool* pool = nullptr;
  if (n >= min_parallel && !ThreadPool::InWorker()) {
    SearchPoolState& state = PoolState();
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.jobs == 0) {
      state.jobs = InitialJobs();
      if (state.jobs > 1)
        state.pool = std::make_unique<ThreadPool>(state.jobs - 1);
    }
    pool = state.pool.get();
  }
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->Run(n, fn);
}

}  // namespace fastt
