// ASCII table printer used by the per-table/per-figure benchmark harnesses so
// their output mirrors the paper's presentation (one row per model, one column
// per configuration).
#pragma once

#include <string>
#include <vector>

namespace fastt {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Renders with column alignment and a header separator. Columns whose body
  // cells are all numeric (dashes allowed) are right-aligned; text columns
  // stay left-aligned.
  std::string Render() const;

  // Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fastt
