// Fixed-size thread pool and a deterministic ParallelFor on top of it.
//
// The strategy search is the product's "in minutes" promise, and its hot
// loops — candidate-device scoring in DPOS, split-factor trials in OS-DPOS —
// are embarrassingly parallel. The pool here is deliberately minimal: a
// shared queue, no work stealing, no futures. Determinism is the design
// constraint, not throughput: ParallelFor writes each index's result into a
// caller-owned slot and callers reduce serially in index order afterwards,
// so the outcome is bit-identical for any worker count (including zero).
//
// Nested ParallelFor calls (e.g. a parallel OS-DPOS trial invoking DPOS,
// which itself calls ParallelFor) run the inner loop serially on the worker
// thread — same results, no pool deadlock.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace fastt {

// Occupancy counters kept by the pool itself (the pool lives below the
// observability layer, so fastt_obs copies these into the metrics registry
// rather than the pool pushing them).
struct PoolStats {
  int jobs = 1;                 // search width (workers + caller)
  uint64_t batches = 0;         // Run() calls that dispatched to workers
  uint64_t tasks = 0;           // tasks executed on worker threads
  uint64_t queue_wait_ns = 0;   // total enqueue -> dequeue latency
  std::vector<uint64_t> worker_tasks;  // tasks per worker
};

class ThreadPool {
 public:
  // Spawns `num_threads` workers (0 = no workers; Run executes inline).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Runs fn(i) for i in [0, n), partitioned into contiguous chunks executed
  // by the workers (and the calling thread). Blocks until every index has
  // run. fn must not throw; calls for distinct i must be data-independent.
  void Run(size_t n, const std::function<void(size_t)>& fn);

  // True while the current thread is a pool worker executing a task; used to
  // serialize nested parallelism.
  static bool InWorker();

  // Snapshot of the occupancy counters (jobs is filled by the caller that
  // owns the pool). Safe to call while Run is active; counts are relaxed.
  PoolStats Stats() const;

 private:
  struct Task {
    std::function<void()> fn;
    int64_t enqueue_ns = 0;
  };

  void WorkerLoop(int worker_index);

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::queue<Task> tasks_ FASTT_GUARDED_BY(mu_);
  bool stop_ FASTT_GUARDED_BY(mu_) = false;

  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> queue_wait_ns_{0};
  std::vector<std::atomic<uint64_t>> worker_tasks_;  // sized at construction
};

// ---- Process-wide search concurrency ---------------------------------------
//
// The `--jobs N` knob (and the FASTT_JOBS environment variable) select how
// many threads the strategy search may use. 1 = fully serial (the default,
// and the reference behaviour every parallel path must reproduce exactly).

// Set the search concurrency; clamps to >= 1. Creates/resizes the shared
// pool lazily. Not safe to call concurrently with a running ParallelFor.
void SetSearchJobs(int jobs);

// Current search concurrency (reads FASTT_JOBS on first use; defaults to 1).
int SearchJobs();

// Deterministic parallel loop over [0, n) using the shared search pool.
// Runs serially when jobs == 1, when n < min_parallel, or when called from
// inside a pool worker (nested parallelism). Results must be written to
// per-index slots; reduce serially afterwards for determinism.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 size_t min_parallel = 2);

// Cumulative occupancy of the shared search pool: the live pool's counters
// plus those of pools retired by SetSearchJobs. jobs reflects the current
// setting. Exposed via --metrics by obs::PublishSearchPoolMetrics.
PoolStats SearchPoolStats();

}  // namespace fastt
