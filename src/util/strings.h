// printf-style string formatting (libstdc++ 12 lacks std::format) plus small
// helpers used when naming operations and printing experiment output.
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace fastt {

// printf into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Join with a separator.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// "1.23 GB", "456.0 MB", ... for human-readable sizes.
std::string HumanBytes(double bytes);

// "12.3 ms", "1.2 s", "45 us" for human-readable durations (input seconds).
std::string HumanSeconds(double seconds);

bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);
bool Contains(const std::string& s, const std::string& needle);

}  // namespace fastt
