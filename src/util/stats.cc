#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace fastt {

void OnlineMean::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineMean::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double OnlineMean::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double Min(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double Percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return PercentileSorted(xs, p);
}

double Lerp(double lo, double hi, double frac) {
  frac = std::clamp(frac, 0.0, 1.0);
  return lo + frac * (hi - lo);
}

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  return Lerp(sorted[lo], sorted[hi], idx - static_cast<double>(lo));
}

SampleStats ComputeSampleStats(std::vector<double> xs) {
  SampleStats s;
  if (xs.empty()) return s;
  s.n = xs.size();
  s.mean = Mean(xs);
  s.stddev = Stddev(xs);
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.p50 = PercentileSorted(xs, 50.0);
  s.p90 = PercentileSorted(xs, 90.0);
  s.p99 = PercentileSorted(xs, 99.0);
  return s;
}

}  // namespace fastt
