// Small statistics helpers shared by the cost models, the simulator profiler
// and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace fastt {

// Incrementally maintained mean/variance (Welford). Used by the computation
// cost model, which records one sample per profiled execution of an
// (operation, device) pair.
class OnlineMean {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Batch statistics over a sample vector.
double Mean(const std::vector<double>& xs);
double Stddev(const std::vector<double>& xs);
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);
// Linear-interpolated percentile, p in [0, 100]. Empty input returns 0.
double Percentile(std::vector<double> xs, double p);

}  // namespace fastt
