// Small statistics helpers shared by the cost models, the simulator profiler
// and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace fastt {

// Incrementally maintained mean/variance (Welford). Used by the computation
// cost model, which records one sample per profiled execution of an
// (operation, device) pair.
class OnlineMean {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Batch statistics over a sample vector.
double Mean(const std::vector<double>& xs);
double Stddev(const std::vector<double>& xs);
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);
// Linear-interpolated percentile, p in [0, 100]. Empty input returns 0.
double Percentile(std::vector<double> xs, double p);

// Linear interpolation between lo and hi; frac outside [0, 1] is clamped.
// The one interpolation formula shared by Percentile, the histogram
// quantile estimator (obs/metrics) and the profiler table.
double Lerp(double lo, double hi, double frac);

// Percentile over an ALREADY ascending-sorted vector — what every
// multi-percentile consumer should call so the input is sorted once, not
// once per percentile. Same contract as Percentile otherwise.
double PercentileSorted(const std::vector<double>& sorted, double p);

// One-pass summary of a sample vector: sorts once, then derives every
// order statistic from the sorted data. Empty input yields all zeros.
struct SampleStats {
  size_t n = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};
SampleStats ComputeSampleStats(std::vector<double> xs);

}  // namespace fastt
