#include "util/memtrack.h"

#include <bit>

#include "obs/tracer.h"

namespace fastt {
namespace {

thread_local MemTag t_current_tag = MemTag::kUntagged;

// Size-class index: k such that 2^(k-1) < bytes <= 2^k, clamped.
size_t SizeClass(size_t bytes) {
  if (bytes <= 1) return 0;
  const size_t k = static_cast<size_t>(std::bit_width(bytes - 1));
  return k < kMemSizeClasses ? k : kMemSizeClasses - 1;
}

// fetch_max, for peak tracking.
void AtomicMax(std::atomic<int64_t>& target, int64_t value) {
  int64_t cur = target.load(std::memory_order_relaxed);
  while (cur < value &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

const char* MemTagName(MemTag tag) {
  switch (tag) {
    case MemTag::kUntagged: return "untagged";
    case MemTag::kGraph: return "graph";
    case MemTag::kSimEvents: return "sim/events";
    case MemTag::kCost: return "cost";
    case MemTag::kDpos: return "dpos";
    case MemTag::kObs: return "obs";
    case MemTag::kCount: break;
  }
  return "?";
}

MemTracker& MemTracker::Global() {
  static MemTracker* tracker = new MemTracker();
  return *tracker;
}

void MemTracker::Enable() {
  Reset();
  enabled_.store(true, std::memory_order_release);
}

void MemTracker::Disable() {
  enabled_.store(false, std::memory_order_release);
}

void MemTracker::Reset() {
  for (TagCell& c : cells_) {
    c.live.store(0, std::memory_order_relaxed);
    c.peak.store(0, std::memory_order_relaxed);
    c.allocs.store(0, std::memory_order_relaxed);
    c.frees.store(0, std::memory_order_relaxed);
    c.alloc_bytes.store(0, std::memory_order_relaxed);
    for (std::atomic<int64_t>& s : c.size_class)
      s.store(0, std::memory_order_relaxed);
  }
  total_live_.store(0, std::memory_order_relaxed);
  total_peak_.store(0, std::memory_order_relaxed);
}

void MemTracker::ResetPeaks() {
  for (TagCell& c : cells_)
    c.peak.store(c.live.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  total_peak_.store(total_live_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

void MemTracker::RecordAllocSlow(MemTag tag, size_t bytes) {
  TagCell& c = cells_[static_cast<size_t>(tag)];
  const int64_t b = static_cast<int64_t>(bytes);
  const int64_t live = c.live.fetch_add(b, std::memory_order_relaxed) + b;
  AtomicMax(c.peak, live);
  c.allocs.fetch_add(1, std::memory_order_relaxed);
  c.alloc_bytes.fetch_add(b, std::memory_order_relaxed);
  c.size_class[SizeClass(bytes)].fetch_add(1, std::memory_order_relaxed);
  const int64_t total = total_live_.fetch_add(b, std::memory_order_relaxed) + b;
  AtomicMax(total_peak_, total);
}

void MemTracker::RecordFreeSlow(MemTag tag, size_t bytes) {
  TagCell& c = cells_[static_cast<size_t>(tag)];
  const int64_t b = static_cast<int64_t>(bytes);
  c.live.fetch_sub(b, std::memory_order_relaxed);
  c.frees.fetch_add(1, std::memory_order_relaxed);
  total_live_.fetch_sub(b, std::memory_order_relaxed);
}

MemTagStats MemTracker::stats(MemTag tag) const {
  const TagCell& c = cells_[static_cast<size_t>(tag)];
  MemTagStats out;
  out.live_bytes = c.live.load(std::memory_order_relaxed);
  out.peak_bytes = c.peak.load(std::memory_order_relaxed);
  out.allocs = c.allocs.load(std::memory_order_relaxed);
  out.frees = c.frees.load(std::memory_order_relaxed);
  out.alloc_bytes = c.alloc_bytes.load(std::memory_order_relaxed);
  for (size_t k = 0; k < kMemSizeClasses; ++k)
    out.size_class_allocs[k] = c.size_class[k].load(std::memory_order_relaxed);
  return out;
}

std::vector<MemTagStats> MemTracker::Snapshot() const {
  std::vector<MemTagStats> out;
  out.reserve(kNumMemTags);
  for (size_t t = 0; t < kNumMemTags; ++t)
    out.push_back(stats(static_cast<MemTag>(t)));
  return out;
}

int64_t MemTracker::total_live_bytes() const {
  return total_live_.load(std::memory_order_relaxed);
}

int64_t MemTracker::total_peak_bytes() const {
  return total_peak_.load(std::memory_order_relaxed);
}

int64_t MemTracker::total_allocs() const {
  int64_t n = 0;
  for (const TagCell& c : cells_)
    n += c.allocs.load(std::memory_order_relaxed);
  return n;
}

MemTag CurrentMemTag() { return t_current_tag; }

MemTagScope::MemTagScope(MemTag tag) : prev_(t_current_tag) {
  t_current_tag = tag;
}

MemTagScope::~MemTagScope() { t_current_tag = prev_; }

void EmitMemTraceCounters() {
  MemTracker& mt = MemTracker::Global();
  if (!mt.enabled() || !TracingActive()) return;
  // The ambient context's tracer, so a request-scoped trace carries its own
  // memory tracks.
  Tracer& tracer = CurrentTracer();
  if (!tracer.enabled()) return;
  // Counter names must be string literals (the tracer stores the pointer);
  // the tag set is fixed, so spell them out in MemTag order.
  static constexpr const char* kLiveNames[kNumMemTags] = {
      "mem/untagged/live_bytes", "mem/graph/live_bytes",
      "mem/sim_events/live_bytes", "mem/cost/live_bytes",
      "mem/dpos/live_bytes", "mem/obs/live_bytes",
  };
  for (size_t t = 0; t < kNumMemTags; ++t) {
    const MemTagStats s = mt.stats(static_cast<MemTag>(t));
    if (s.allocs == 0 && s.frees == 0) continue;  // dormant tag: no track
    tracer.Counter(kLiveNames[t], static_cast<double>(s.live_bytes));
  }
  tracer.Counter("mem/total/live_bytes",
                 static_cast<double>(mt.total_live_bytes()));
}

}  // namespace fastt
