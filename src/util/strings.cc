#include "util/strings.h"

#include <cmath>
#include <cstdio>

namespace fastt {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string HumanBytes(double bytes) {
  // Binary units with the IEC suffixes — the divisor is 1024, so the label
  // says KiB, not KB.
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (std::fabs(bytes) >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return StrFormat("%.2f %s", bytes, units[u]);
}

std::string HumanSeconds(double seconds) {
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) return StrFormat("%.3f s", seconds);
  if (abs >= 1e-3) return StrFormat("%.3f ms", seconds * 1e3);
  return StrFormat("%.1f us", seconds * 1e6);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool Contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

}  // namespace fastt
