// Annotated synchronization primitives: std::mutex/std::condition_variable
// wrappers carrying Clang thread-safety capability attributes, so the lock
// discipline of the concurrent pieces (thread pool, metrics registry, event
// log, tracer registry) is checked at COMPILE time by -Wthread-safety instead
// of waiting for TSan to catch a lucky interleaving at runtime.
//
// Under GCC (the local toolchain) every annotation expands to nothing and the
// wrappers are zero-cost aliases of the std types; the CI `static-analysis`
// job builds with Clang and -Werror=thread-safety, where
//
//   Mutex mu;
//   int value FASTT_GUARDED_BY(mu);
//
// makes any unlocked access to `value`, any double-lock, and any forgotten
// unlock a hard build error. Annotate new shared state the same way; helper
// functions that expect the caller to hold a lock take FASTT_REQUIRES(mu).
//
// Header-only and dependency-free on purpose: fastt_tracer (which must not
// depend on fastt_util) can include it too.
#pragma once

#include <condition_variable>
#include <mutex>

// ---- Attribute macros (Clang thread-safety analysis) -----------------------
#if defined(__clang__) && (!defined(SWIG))
#define FASTT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FASTT_THREAD_ANNOTATION(x)  // no-op under GCC/MSVC
#endif

// A type that acts as a lock ("capability" in clang's terminology).
#define FASTT_CAPABILITY(x) FASTT_THREAD_ANNOTATION(capability(x))
// RAII type whose lifetime equals a critical section.
#define FASTT_SCOPED_CAPABILITY FASTT_THREAD_ANNOTATION(scoped_lockable)
// Data member readable/writable only while `x` is held.
#define FASTT_GUARDED_BY(x) FASTT_THREAD_ANNOTATION(guarded_by(x))
// Pointer member whose pointee is guarded by `x`.
#define FASTT_PT_GUARDED_BY(x) FASTT_THREAD_ANNOTATION(pt_guarded_by(x))
// Function acquires/releases the capability (lock/unlock implementations).
#define FASTT_ACQUIRE(...) \
  FASTT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FASTT_RELEASE(...) \
  FASTT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FASTT_TRY_ACQUIRE(...) \
  FASTT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Caller must already hold the capability.
#define FASTT_REQUIRES(...) \
  FASTT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// Caller must NOT hold it (deadlock prevention on re-entrant paths).
#define FASTT_EXCLUDES(...) FASTT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Returns a reference to the guarding capability.
#define FASTT_RETURN_CAPABILITY(x) FASTT_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch for code the analysis cannot model (e.g. std::scoped_lock over
// two mutexes in a move-assignment); use sparingly and say why.
#define FASTT_NO_THREAD_SAFETY_ANALYSIS \
  FASTT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace fastt {

// Annotated std::mutex. Lowercase lock/unlock/try_lock keep it a drop-in
// BasicLockable, so std::lock_guard<Mutex> etc. still compile — though
// MutexLock below is what annotated code should use (lock_guard in a system
// header hides the acquire from the analysis).
class FASTT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FASTT_ACQUIRE() { mu_.lock(); }
  void unlock() FASTT_RELEASE() { mu_.unlock(); }
  bool try_lock() FASTT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII critical section over a Mutex (annotated std::lock_guard).
class FASTT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FASTT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FASTT_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to Mutex. Wait() requires the lock to be held and
// holds it again when the predicate turns true — expressed to the analysis by
// FASTT_REQUIRES, so waiting without the lock is a compile error. Internally
// the held native mutex is adopted into a unique_lock and released again, so
// ownership never actually changes hands from the caller's point of view.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) FASTT_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native, std::move(pred));
    native.release();  // the caller's MutexLock still owns the mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fastt
