#!/usr/bin/env python3
"""Validate a SARIF 2.1.0 report emitted by fastt-lint (stdlib only).

Usage: check_sarif.py <file.sarif> [--require-rule ID ...]

Checks the contract FindingsToSarif promises (the subset GitHub code
scanning and the SARIF viewers consume):

  * the document is valid JSON with version "2.1.0" and a $schema URI;
  * runs is a non-empty array; each run carries tool.driver.name and a
    rules array whose entries have unique non-empty ids and a
    shortDescription.text;
  * every result names a ruleId declared in the driver's rules, a level
    in {error, warning, note}, and a non-empty message.text;
  * every result has at least one location with a physicalLocation whose
    artifactLocation.uri is non-empty and whose region.startLine >= 1;
  * each `--require-rule ID` appears among the declared rule ids (used
    by CI to pin that the catalog made it into the report).

Exits 0 and prints a one-line summary on success; prints every violation
and exits 1 otherwise.
"""

import argparse
import json
import sys

LEVELS = {"error", "warning", "note"}


def check(path: str, required: list) -> list:
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"cannot parse: {e}"]

    if doc.get("version") != "2.1.0":
        errors.append(f"version must be '2.1.0', got {doc.get('version')!r}")
    if not str(doc.get("$schema", "")).startswith("http"):
        errors.append("$schema missing or not a URI")

    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append("runs must be a non-empty array")
        return errors

    declared = set()
    n_results = 0
    for ri, run in enumerate(runs):
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            errors.append(f"runs[{ri}]: tool.driver.name missing")
        rules = driver.get("rules")
        if not isinstance(rules, list) or not rules:
            errors.append(f"runs[{ri}]: tool.driver.rules must be a "
                          "non-empty array")
            rules = []
        for ki, rule in enumerate(rules):
            rid = rule.get("id")
            if not rid:
                errors.append(f"runs[{ri}].rules[{ki}]: id missing")
                continue
            if rid in declared:
                errors.append(f"runs[{ri}].rules[{ki}]: duplicate id "
                              f"{rid!r}")
            declared.add(rid)
            if not rule.get("shortDescription", {}).get("text"):
                errors.append(f"runs[{ri}].rules[{ki}] ({rid}): "
                              "shortDescription.text missing")

        for si, res in enumerate(run.get("results", [])):
            where = f"runs[{ri}].results[{si}]"
            n_results += 1
            rid = res.get("ruleId")
            if not rid:
                errors.append(f"{where}: ruleId missing")
            elif rid not in declared:
                errors.append(f"{where}: ruleId {rid!r} not declared in "
                              "tool.driver.rules")
            if res.get("level") not in LEVELS:
                errors.append(f"{where}: level {res.get('level')!r} not in "
                              f"{sorted(LEVELS)}")
            if not res.get("message", {}).get("text"):
                errors.append(f"{where}: message.text missing or empty")
            locs = res.get("locations")
            if not isinstance(locs, list) or not locs:
                errors.append(f"{where}: locations must be a non-empty "
                              "array")
                continue
            for li, loc in enumerate(locs):
                phys = loc.get("physicalLocation", {})
                uri = phys.get("artifactLocation", {}).get("uri")
                if not uri:
                    errors.append(f"{where}.locations[{li}]: "
                                  "artifactLocation.uri missing")
                start = phys.get("region", {}).get("startLine")
                if not isinstance(start, int) or start < 1:
                    errors.append(f"{where}.locations[{li}]: "
                                  f"region.startLine must be >= 1, got "
                                  f"{start!r}")

    for rid in required:
        if rid not in declared:
            errors.append(f"required rule {rid!r} not declared")

    if not errors:
        print(f"{path}: OK — {len(runs)} run(s), {len(declared)} rule(s), "
              f"{n_results} result(s)")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Validate SARIF 2.1.0 output from fastt-lint.")
    parser.add_argument("file")
    parser.add_argument("--require-rule", action="append", default=[],
                        metavar="ID",
                        help="fail unless ID is among the declared rule "
                             "ids (repeatable)")
    args = parser.parse_args()
    errors = check(args.file, args.require_rule)
    for error in errors:
        print(f"{args.file}: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
