#!/usr/bin/env python3
"""Validate an OpenMetrics text exposition (promtool-lite, stdlib only).

Usage: check_openmetrics.py <file> [--require-metric NAME ...]

Checks the subset of the OpenMetrics 1.0 spec that WriteOpenMetrics
promises to produce:

  * the exposition ends with exactly one `# EOF\n` terminator;
  * every sample line parses as `name[{labels}] value` with a valid
    metric name ([a-zA-Z_:][a-zA-Z0-9_:]*) and a finite decimal value;
  * every metric family has a `# TYPE` line *before* its first sample,
    with a known type (counter, gauge, summary, histogram);
  * counter samples end in `_total`; summaries expose only `_count` and
    `_sum`; histogram `le` buckets are cumulative, finite-ascending, and
    end with a `+Inf` bucket equal to `_count`;
  * family blocks are contiguous (no interleaving) and no family or
    sample-with-identical-labels repeats.

Exits 0 and prints a one-line summary on success; prints every violation
with its line number and exits 1 otherwise.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# `name{labels} value` or `name value` — labels are parsed separately.
SAMPLE_RE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
                       r"(?:\{(?P<labels>[^}]*)\})?"
                       r" (?P<value>\S+)$")
LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')
KNOWN_TYPES = {"counter", "gauge", "summary", "histogram"}
# Suffixes that belong to the family rather than naming a new metric.
FAMILY_SUFFIXES = ("_total", "_count", "_sum", "_bucket")


def family_of(sample_name: str) -> str:
    for suffix in FAMILY_SUFFIXES:
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def parse_value(text: str):
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    try:
        return float(text)
    except ValueError:
        return None


def check(path: str, required: list) -> list:
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    errors = []

    def err(lineno, message):
        errors.append(f"{path}:{lineno}: {message}")

    if not text.endswith("# EOF\n"):
        err(text.count("\n") + 1, "exposition must end with '# EOF\\n'")
    if text.count("# EOF") != 1:
        err(0, "exactly one '# EOF' terminator expected")

    types = {}           # family -> declared type
    samples = {}         # family -> list of (lineno, name, labels, value)
    family_order = []    # families in first-seen order, for contiguity
    seen_series = set()  # (name, labels) pairs, for duplicate detection
    current_family = None

    for lineno, line in enumerate(text.splitlines(), start=1):
        if line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                err(lineno, f"malformed TYPE line: {line!r}")
                continue
            _, _, family, mtype = parts
            if not NAME_RE.match(family):
                err(lineno, f"bad metric family name {family!r}")
            if mtype not in KNOWN_TYPES:
                err(lineno, f"unknown metric type {mtype!r}")
            if family in types:
                err(lineno, f"duplicate TYPE for family {family!r}")
            types[family] = mtype
            current_family = family
            family_order.append(family)
            continue
        if line.startswith("# HELP ") or line.startswith("# UNIT "):
            continue
        if line.startswith("#"):
            err(lineno, f"unrecognized comment line: {line!r}")
            continue
        if not line.strip():
            err(lineno, "blank lines are not allowed in OpenMetrics")
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            err(lineno, f"unparsable sample line: {line!r}")
            continue
        name = m.group("name")
        labels = {}
        raw_labels = m.group("labels")
        if raw_labels:
            for pair in raw_labels.split(","):
                lm = LABEL_RE.match(pair)
                if not lm:
                    err(lineno, f"bad label pair {pair!r} in {line!r}")
                    continue
                labels[lm.group("key")] = lm.group("val")
        value = parse_value(m.group("value"))
        if value is None or math.isnan(value):
            err(lineno, f"bad sample value {m.group('value')!r}")
            continue

        family = family_of(name)
        if family not in types:
            err(lineno, f"sample {name!r} has no preceding TYPE line")
            continue
        if family != current_family:
            err(lineno,
                f"sample {name!r} interleaves into family "
                f"{current_family!r}; families must be contiguous")
        series_key = (name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            err(lineno, f"duplicate series {name!r} {labels}")
        seen_series.add(series_key)
        samples.setdefault(family, []).append((lineno, name, labels, value))

    # Per-family shape checks.
    for family, mtype in types.items():
        rows = samples.get(family, [])
        if not rows:
            err(0, f"family {family!r} declared but has no samples")
            continue
        first_line = rows[0][0]
        names = [n for _, n, _, _ in rows]
        if mtype == "counter":
            for lineno, name, _, value in rows:
                if not name.endswith("_total"):
                    err(lineno, f"counter sample {name!r} must end _total")
                if value < 0:
                    err(lineno, f"counter {name!r} is negative ({value})")
        elif mtype == "summary":
            expected = {family + "_count", family + "_sum"}
            if set(names) != expected:
                err(first_line,
                    f"summary {family!r} exposes {sorted(set(names))}, "
                    f"expected exactly {sorted(expected)}")
        elif mtype == "histogram":
            buckets = [(ln, lb, v) for ln, n, lb, v in rows
                       if n == family + "_bucket"]
            count = next((v for _, n, _, v in rows
                          if n == family + "_count"), None)
            has_sum = any(n == family + "_sum" for _, n, _, _ in rows)
            if count is None or not has_sum:
                err(first_line,
                    f"histogram {family!r} must expose _count and _sum")
            if not buckets or buckets[-1][1].get("le") != "+Inf":
                err(first_line,
                    f"histogram {family!r} must end with a +Inf bucket")
            prev_le, prev_count = -math.inf, 0.0
            for lineno, labels, value in buckets:
                le = parse_value(labels.get("le", ""))
                if le is None:
                    err(lineno, f"histogram bucket has bad le= {labels}")
                    continue
                if le <= prev_le:
                    err(lineno,
                        f"histogram {family!r} buckets not ascending "
                        f"(le={labels.get('le')})")
                if value < prev_count:
                    err(lineno,
                        f"histogram {family!r} buckets not cumulative")
                prev_le, prev_count = le, value
            if buckets and count is not None and buckets[-1][2] != count:
                err(buckets[-1][0],
                    f"histogram {family!r} +Inf bucket ({buckets[-1][2]}) "
                    f"!= _count ({count})")

    for name in required:
        if not any(n == name for keys in samples.values()
                   for _, n, _, _ in keys):
            err(0, f"required metric {name!r} not found")

    if not errors:
        nseries = sum(len(v) for v in samples.values())
        print(f"{path}: OK — {len(types)} families, {nseries} series")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--require-metric", action="append", default=[],
                        help="fail unless this exact sample name is present")
    args = parser.parse_args()
    errors = check(args.file, args.require_metric)
    for e in errors:
        print(e, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
