#!/usr/bin/env python3
"""Validate collapsed-stack flamegraph output (stdlib only).

Usage: check_folded.py <file.folded> [--require-frame NAME ...]

Checks the contract ProfileToFolded promises (the format flamegraph.pl
and speedscope consume):

  * every line is `frame;frame;...;frame count` — stack left of the last
    space, sample count right of it;
  * the count is a positive decimal integer;
  * the stack is non-empty and no frame is empty (no leading, trailing
    or doubled `;`);
  * frames contain no `;`, tabs, newlines or other control characters
    and no leading/trailing whitespace;
  * the file carries at least one sample in total;
  * each `--require-frame NAME` appears as a substring of at least one
    frame (used by CI to pin the known hot functions).

Exits 0 and prints a one-line summary on success; prints every violation
with its line number and exits 1 otherwise.
"""

import argparse
import sys


def check(path: str, required: list) -> list:
    with open(path, "r", encoding="utf-8") as f:
        lines = f.read().splitlines()
    errors = []
    total_samples = 0
    stacks = 0
    seen_frames = set()

    for i, line in enumerate(lines, start=1):
        if not line:
            errors.append(f"line {i}: empty line")
            continue
        if line != line.strip():
            errors.append(f"line {i}: leading/trailing whitespace")
            line = line.strip()
        stack_part, sep, count_part = line.rpartition(" ")
        if not sep or not stack_part:
            errors.append(f"line {i}: expected 'frame;...;frame count'")
            continue
        if not count_part.isdigit():
            errors.append(f"line {i}: count {count_part!r} is not a "
                          "decimal integer")
            continue
        count = int(count_part)
        if count <= 0:
            errors.append(f"line {i}: count must be positive, got {count}")
            continue
        frames = stack_part.split(";")
        bad = False
        for frame in frames:
            if not frame:
                errors.append(f"line {i}: empty frame (doubled, leading or "
                              "trailing ';')")
                bad = True
                break
            if frame != frame.strip():
                errors.append(f"line {i}: frame {frame!r} has surrounding "
                              "whitespace")
                bad = True
                break
            if any(ord(c) < 0x20 for c in frame):
                errors.append(f"line {i}: frame {frame!r} contains a "
                              "control character")
                bad = True
                break
        if bad:
            continue
        total_samples += count
        stacks += 1
        seen_frames.update(frames)

    if total_samples == 0:
        errors.append("no samples: every profile must fold at least one "
                      "stack")
    for name in required:
        if not any(name in frame for frame in seen_frames):
            errors.append(f"required frame {name!r} not found in any stack")

    if not errors:
        print(f"{path}: OK — {stacks} unique stacks, {total_samples} "
              f"samples, {len(seen_frames)} distinct frames")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Validate collapsed-stack flamegraph output.")
    parser.add_argument("file")
    parser.add_argument("--require-frame", action="append", default=[],
                        metavar="NAME",
                        help="fail unless NAME appears as a substring of "
                             "some frame (repeatable)")
    args = parser.parse_args()
    errors = check(args.file, args.require_frame)
    for error in errors:
        print(f"{args.file}: {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
