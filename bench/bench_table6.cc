// Table 6: per-iteration training time with and without operation
// splitting, per model, plus the key op kinds that were split. Settings
// follow Table 1's best-speedup configurations (4 GPUs here).
#include <set>

#include "harness.h"

using namespace fastt;
using namespace fastt::bench;

int main() {
  std::printf(
      "Table 6 — per-iteration time (s) with/without operation split "
      "(4 GPUs, strong scaling)\n\n");
  const Cluster cluster = Cluster::SingleServer(4);
  TablePrinter table(
      {"Model", "No split", "Split", "Speedup", "Key split op"});
  for (const ModelSpec& spec : ModelZoo()) {
    CalculatorOptions with_split;
    with_split.measure_iterations = 15;  // averages down strategy noise
    CalculatorOptions no_split;
    no_split.enable_split = false;
    no_split.measure_iterations = 15;
    const auto off = RunFastT(spec.build, spec.name, spec.strong_batch,
                              Scaling::kStrong, cluster, no_split);
    const auto on = RunFastT(spec.build, spec.name, spec.strong_batch,
                             Scaling::kStrong, cluster, with_split);
    std::set<std::string> kinds;
    for (const SplitDecision& s : on.strategy.splits) {
      const OpId id = on.graph.FindOp(s.op_name);
      if (id != kInvalidOp) {
        kinds.insert(OpTypeName(on.graph.op(id).type));
      } else {
        // Tombstoned original: recover the kind from a partition.
        const OpId part = on.graph.FindOp(s.op_name + "/part0");
        if (part != kInvalidOp)
          kinds.insert(OpTypeName(on.graph.op(part).type));
      }
    }
    std::string key = kinds.empty() ? "None" : "";
    for (const std::string& k : kinds) key += (key.empty() ? "" : ",") + k;
    const double speedup =
        off.iteration_s > 0 ? (off.iteration_s / on.iteration_s - 1.0) : 0.0;
    table.AddRow({spec.name, StrFormat("%.3f", off.iteration_s),
                  StrFormat("%.3f", on.iteration_s),
                  StrFormat("%.2f %%", 100.0 * speedup), key});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nShape checks vs. paper: splits help the conv-heavy CNNs\n"
      "(Conv2D/Conv2DBackprop* split) and the attention models (MatMul\n"
      "split); LeNet/AlexNet (small conv inputs) and the LSTM models (no\n"
      "compute-dominant single op) see no split.\n");
  return 0;
}
