// Micro-benchmarks (google-benchmark) for the algorithmic building blocks:
// DPOS scheduling throughput vs. graph size and device count, OS-DPOS split
// probing, the graph rewrite, the discrete-event executor, and rank
// computation. These back DESIGN.md's claim that FastT's complexity is
// linear in ops x devices.
#include <benchmark/benchmark.h>

#include "core/data_parallel.h"
#include "core/os_dpos.h"
#include "core/rank.h"
#include "graph/rewrite.h"
#include "models/model_zoo.h"
#include "sim/profiler.h"

namespace fastt {
namespace {

struct Prepared {
  Graph graph;
  Cluster cluster;
  CompCostModel comp;
  CommCostModel comm;
  std::vector<DeviceId> placement;
};

Prepared PrepareModel(const std::string& name, int gpus) {
  const ModelSpec& spec = FindModel(name);
  Prepared p{Graph{}, Cluster::SingleServer(gpus), {}, {}, {}};
  auto dp = BuildDataParallel(spec.build, spec.name, spec.strong_batch,
                              gpus, Scaling::kStrong);
  p.graph = std::move(dp.graph);
  p.placement = CanonicalDataParallelPlacement(dp);
  for (int i = 0; i < 2; ++i) {
    SimOptions so;
    so.seed = 50 + static_cast<uint64_t>(i);
    const RunProfile profile =
        ExtractProfile(p.graph, Simulate(p.graph, p.placement, p.cluster, so));
    p.comp.AddProfile(profile);
    p.comm.AddProfile(profile);
  }
  return p;
}

void BM_Dpos(benchmark::State& state, const std::string& model) {
  const int gpus = static_cast<int>(state.range(0));
  Prepared p = PrepareModel(model, gpus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dpos(p.graph, p.cluster, p.comp, p.comm));
  }
  state.counters["ops"] = p.graph.num_live_ops();
}

void BM_OsDpos(benchmark::State& state) {
  Prepared p = PrepareModel("alexnet", static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(OsDpos(p.graph, p.cluster, p.comp, p.comm));
  }
}

void BM_Simulate(benchmark::State& state, const std::string& model) {
  Prepared p = PrepareModel(model, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Simulate(p.graph, p.placement, p.cluster));
  }
  state.counters["ops"] = p.graph.num_live_ops();
}

void BM_SplitOperation(benchmark::State& state) {
  const ModelSpec& spec = FindModel("vgg19");
  const Graph base = BuildSingle(spec, 64);
  const OpId conv = base.FindOp("conv3_1");
  for (auto _ : state) {
    Graph g = base;
    benchmark::DoNotOptimize(
        SplitOperation(g, conv, SplitDim::kBatch,
                       static_cast<int>(state.range(0))));
  }
}

void BM_RankU(benchmark::State& state) {
  Prepared p = PrepareModel("resnet200", 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeRankU(p.graph, p.comp, p.comm, 4));
  }
}

BENCHMARK_CAPTURE(BM_Dpos, vgg19, "vgg19")->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_Dpos, resnet200, "resnet200")->Arg(2)->Arg(4);
BENCHMARK(BM_OsDpos)->Arg(2)->Arg(4);
BENCHMARK_CAPTURE(BM_Simulate, vgg19, "vgg19")->Arg(2)->Arg(4);
BENCHMARK_CAPTURE(BM_Simulate, bert, "bert_large")->Arg(2);
BENCHMARK(BM_SplitOperation)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_RankU);

}  // namespace
}  // namespace fastt

BENCHMARK_MAIN();
