// Micro-benchmarks (google-benchmark) for the algorithmic building blocks:
// DPOS scheduling throughput vs. graph size and device count, OS-DPOS split
// probing, the graph rewrite, the discrete-event executor, and rank
// computation. These back DESIGN.md's claim that FastT's complexity is
// linear in ops x devices.
//
// When FASTT_BENCH_JSON names a path, per-iteration real times are also
// written there as a fastt-bench/1 document (one report per benchmark, one
// sample per repetition — run with --benchmark_repetitions=N to give
// `fastt bench-diff` enough samples to hard-fail).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "core/data_parallel.h"
#include "core/os_dpos.h"
#include "core/rank.h"
#include "graph/rewrite.h"
#include "models/model_zoo.h"
#include "obs/bench_history.h"
#include "sim/profiler.h"

namespace fastt {
namespace {

struct Prepared {
  Graph graph;
  Cluster cluster;
  CompCostModel comp;
  CommCostModel comm;
  std::vector<DeviceId> placement;
};

Prepared PrepareModel(const std::string& name, int gpus) {
  const ModelSpec& spec = FindModel(name);
  Prepared p{Graph{}, Cluster::SingleServer(gpus), {}, {}, {}};
  auto dp = BuildDataParallel(spec.build, spec.name, spec.strong_batch,
                              gpus, Scaling::kStrong);
  // Placement must be derived before the graph is moved out of `dp`.
  p.placement = CanonicalDataParallelPlacement(dp);
  p.graph = std::move(dp.graph);
  for (int i = 0; i < 2; ++i) {
    SimOptions so;
    so.seed = 50 + static_cast<uint64_t>(i);
    const RunProfile profile =
        ExtractProfile(p.graph, Simulate(p.graph, p.placement, p.cluster, so));
    p.comp.AddProfile(profile);
    p.comm.AddProfile(profile);
  }
  return p;
}

void BM_Dpos(benchmark::State& state, const std::string& model) {
  const int gpus = static_cast<int>(state.range(0));
  Prepared p = PrepareModel(model, gpus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dpos(p.graph, p.cluster, p.comp, p.comm));
  }
  state.counters["ops"] = p.graph.num_live_ops();
}

void BM_OsDpos(benchmark::State& state) {
  Prepared p = PrepareModel("alexnet", static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(OsDpos(p.graph, p.cluster, p.comp, p.comm));
  }
}

void BM_Simulate(benchmark::State& state, const std::string& model) {
  Prepared p = PrepareModel(model, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Simulate(p.graph, p.placement, p.cluster));
  }
  state.counters["ops"] = p.graph.num_live_ops();
}

void BM_SplitOperation(benchmark::State& state) {
  const ModelSpec& spec = FindModel("vgg19");
  const Graph base = BuildSingle(spec, 64);
  const OpId conv = base.FindOp("conv3_1");
  for (auto _ : state) {
    Graph g = base;
    benchmark::DoNotOptimize(
        SplitOperation(g, conv, SplitDim::kBatch,
                       static_cast<int>(state.range(0))));
  }
}

void BM_RankU(benchmark::State& state) {
  Prepared p = PrepareModel("resnet200", 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeRankU(p.graph, p.comp, p.comm, 4));
  }
}

BENCHMARK_CAPTURE(BM_Dpos, vgg19, "vgg19")->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_Dpos, resnet200, "resnet200")->Arg(2)->Arg(4);
BENCHMARK(BM_OsDpos)->Arg(2)->Arg(4);
BENCHMARK_CAPTURE(BM_Simulate, vgg19, "vgg19")->Arg(2)->Arg(4);
BENCHMARK_CAPTURE(BM_Simulate, bert, "bert_large")->Arg(2);
BENCHMARK(BM_SplitOperation)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_RankU);

// Console output as usual, plus per-iteration real times captured for the
// optional FASTT_BENCH_JSON report. Aggregate rows (mean/median/stddev) are
// skipped — bench-diff recomputes its own stats from the samples.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      samples_[run.benchmark_name()].push_back(run.GetAdjustedRealTime());
    }
  }

  const std::map<std::string, std::vector<double>>& samples() const {
    return samples_;
  }

 private:
  std::map<std::string, std::vector<double>> samples_;
};

void MaybeWriteBenchJson(const CapturingReporter& reporter) {
  const char* path = std::getenv("FASTT_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  BenchHistoryDoc doc;
  doc.run["benchmark"] = "bench_micro";
  for (const auto& [name, samples] : reporter.samples()) {
    BenchReport report;
    report.benchmark = "bench_micro";
    report.params = {{"name", name}};
    BenchMetricSeries series;
    series.name = "real_time_ns";
    series.unit = "ns";
    series.lower_is_better = true;
    series.samples = samples;
    report.metrics.push_back(std::move(series));
    doc.reports.push_back(std::move(report));
  }
  WriteBenchHistoryDoc(doc, path);
  std::printf("wrote benchmark JSON to %s\n", path);
}

}  // namespace
}  // namespace fastt

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  fastt::CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  fastt::MaybeWriteBenchJson(reporter);
  return 0;
}
