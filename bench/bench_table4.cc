// Table 4: time to compute the FastT strategy (Alg. 2) per model on 2/4/8
// GPUs. The paper's numbers are dominated by profiled training steps and
// session restarts, so we report the simulated pre-training wall-clock
// (profiling + restarts + algorithm) alongside the pure host CPU time spent
// inside DPOS/OS-DPOS.
#include "harness.h"

using namespace fastt;
using namespace fastt::bench;

int main() {
  std::printf(
      "Table 4 — strategy computation time (seconds).\n"
      "  'strategy' = simulated pre-training wall-clock "
      "(profiling + restarts + algorithm), the paper's metric;\n"
      "  'algo' = host CPU seconds inside DPOS/OS-DPOS alone.\n\n");
  TablePrinter table({"Model(batch)", "2GPUs strategy", "2GPUs algo",
                      "4GPUs strategy", "4GPUs algo", "8GPUs strategy",
                      "8GPUs algo"});
  for (const ModelSpec& spec : ModelZoo()) {
    std::vector<std::string> row{StrFormat("%s(%lld)", spec.name.c_str(),
                                           (long long)spec.strong_batch)};
    for (int gpus : {2, 4, 8}) {
      const Cluster cluster = Cluster::SingleServer(gpus);
      CalculatorOptions options;
      const auto ft = RunFastT(spec.build, spec.name, spec.strong_batch,
                               Scaling::kStrong, cluster, options);
      row.push_back(StrFormat("%.1f", ft.strategy_time_s));
      row.push_back(StrFormat("%.3f", ft.algorithm_time_s));
    }
    table.AddRow(std::move(row));
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nShape checks vs. paper: strategy time grows with device count and\n"
      "with graph size (Transformer/ResNet-200/BERT are the slowest); it\n"
      "stays minutes, not the hours learning-based approaches need.\n");
  return 0;
}
