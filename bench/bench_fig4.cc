// Figure 4: number of operations assigned to each GPU by FastT for
// AlexNet, VGG-19 and LeNet on 2 and 4 GPUs — showing the deliberately
// uneven placement (replicas of large-parameter ops gathered on one GPU).
#include <map>

#include "harness.h"

using namespace fastt;
using namespace fastt::bench;

int main() {
  std::printf("Figure 4 — ops per GPU under FastT\n\n");
  for (int gpus : {2, 4}) {
    std::printf("%d GPUs:\n", gpus);
    const Cluster cluster = Cluster::SingleServer(gpus);
    TablePrinter table([&] {
      std::vector<std::string> headers{"Model"};
      for (int d = 0; d < gpus; ++d)
        headers.push_back(StrFormat("GPU %d", d));
      return headers;
    }());
    for (const char* name : {"alexnet", "vgg19", "lenet"}) {
      const ModelSpec& spec = FindModel(name);
      CalculatorOptions options;
      const auto ft = RunFastT(spec.build, spec.name, spec.strong_batch,
                               Scaling::kStrong, cluster, options);
      std::map<DeviceId, int> counts;
      for (OpId id : ft.graph.LiveOps())
        ++counts[ft.strategy.placement[static_cast<size_t>(id)]];
      std::vector<std::string> row{name};
      for (int d = 0; d < gpus; ++d)
        row.push_back(StrFormat("%d", counts[d]));
      table.AddRow(std::move(row));
      std::fflush(stdout);
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Shape checks vs. paper: op counts are NOT balanced — one GPU hosts\n"
      "noticeably more ops because all replicas of the large-parameter\n"
      "(fully-connected) operations and their gradient aggregation live\n"
      "there, while compute-heavy convolutions spread across devices.\n");
  return 0;
}
