// bench_search — wall-clock of the strategy search engine itself (not the
// simulated training it optimizes): OS-DPOS end-to-end at --jobs 1 vs
// --jobs N on one model, verifying the parallel run produces a byte-identical
// strategy, plus the incremental-resimulation speedup over full re-simulation
// for single-op re-placements. These back the PR's "search acceleration"
// claims; the paper's own tables time the simulated cluster, this times the
// host-side algorithms.
//
// Usage: bench_search [--model NAME] [--gpus N] [--batch N] [--jobs N]
//                     [--repeat N] [--edits N]
// Defaults exercise the headline configuration (largest zoo model, 8 GPUs,
// jobs 8); CI smoke runs pass e.g. `--model lenet --gpus 2 --repeat 1`.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "baselines/searcher_registry.h"
#include "core/data_parallel.h"
#include "core/os_dpos.h"
#include "core/portfolio.h"
#include "core/strategy_io.h"
#include "obs/bench_history.h"
#include "obs/prof_export.h"
#include "obs/profiler.h"
#include "obs/tracer.h"
#include "sim/exec_sim.h"
#include "sim/incremental_sim.h"
#include "sim/profiler.h"
#include "util/memtrack.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fastt {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SearchInput {
  Graph graph;
  Cluster cluster;
  CompCostModel comp;
  CommCostModel comm;
  std::vector<DeviceId> placement;
};

SearchInput Prepare(const std::string& model, int gpus, int64_t batch) {
  const ModelSpec& spec = FindModel(model);
  SearchInput in{Graph{}, Cluster::SingleServer(gpus), {}, {}, {}};
  auto dp = BuildDataParallel(spec.build, spec.name,
                              batch > 0 ? batch : spec.strong_batch, gpus,
                              Scaling::kStrong);
  in.placement = CanonicalDataParallelPlacement(dp);
  in.graph = std::move(dp.graph);
  SimOptions so;
  so.noise_cv = 0.03;
  so.seed = 11;
  const RunProfile profile = ExtractProfile(
      in.graph, Simulate(in.graph, in.placement, in.cluster, so));
  in.comp.AddProfile(profile);
  in.comm.AddProfile(profile);
  return in;
}

struct SearchTiming {
  double best_s = 0.0;
  std::vector<double> samples;  // one wall-clock per repeat
  int probes = 0;
  std::string strategy;  // serialized, for the byte-identity check
};

SearchTiming TimeSearch(const SearchInput& in, int jobs, int repeat) {
  SetSearchJobs(jobs);
  SearchTiming t;
  for (int r = 0; r < repeat; ++r) {
    const double t0 = Now();
    const OsDposResult os = OsDpos(in.graph, in.cluster, in.comp, in.comm);
    const double elapsed = Now() - t0;
    t.samples.push_back(elapsed);
    if (r == 0 || elapsed < t.best_s) t.best_s = elapsed;
    t.probes = os.probes;
    t.strategy = SerializeStrategy(os.schedule.strategy);
  }
  SetSearchJobs(1);
  return t;
}

struct SearchAllocStats {
  std::vector<double> allocs;      // heap allocations per search run
  std::vector<double> peak_bytes;  // high-water tagged live bytes per run
  std::vector<double> obs_allocs;  // kObs-tagged allocations per run
};

// Allocation telemetry for the search, measured on separate untracked-time
// repeats so the timed samples above never pay the tracker. The counts are
// deterministic for a fixed input, so these samples double as a regression
// tripwire in bench-diff (an accidental copy shows up as an alloc-count
// jump long before it shows up in noisy wall-clock).
SearchAllocStats MeasureSearchAllocs(const SearchInput& in, int jobs,
                                     int repeat) {
  SetSearchJobs(jobs);
  MemTracker& mem = MemTracker::Global();
  SearchAllocStats s;
  for (int r = 0; r < repeat; ++r) {
    mem.Enable();  // Enable() zeroes, so each run measures from scratch
    const OsDposResult os = OsDpos(in.graph, in.cluster, in.comp, in.comm);
    mem.Disable();
    (void)os;
    s.allocs.push_back(static_cast<double>(mem.total_allocs()));
    s.peak_bytes.push_back(static_cast<double>(mem.total_peak_bytes()));
    // The interned-handle contract: the search hot path records metrics
    // through pre-resolved handles and never allocates obs-tagged memory,
    // so this series pins at the fixed per-search setup count (event-log
    // lines from the committed rounds). A jump here means someone put a
    // string-keyed metric lookup back inside the probe loop.
    s.obs_allocs.push_back(static_cast<double>(mem.stats(MemTag::kObs).allocs));
  }
  SetSearchJobs(1);
  return s;
}

struct SearchProfileStats {
  std::vector<double> span_attrib_pct;  // % of samples landing inside a span
  std::vector<double> hot_frame_pct;    // % with a known search hot frame
  SymbolizedProfile last;               // last repeat, for --profile output
};

// CPU-sampling coverage of the search, measured on separate untimed repeats
// (like MeasureSearchAllocs, so the timed samples never pay the sampler).
// The raw sample counts vary run to run, but the two *percentages* are
// near-constant for a fixed input — the search spends all of its time under
// spans and inside the known hot functions — so bench-diff can gate them:
// a drop means profiler attribution broke or the search grew an untraced
// phase, both worth failing loudly.
SearchProfileStats MeasureSearchProfile(const SearchInput& in, int jobs,
                                        int repeat) {
  SetSearchJobs(jobs);
  Tracer& tracer = Tracer::Global();
  tracer.SetCurrentThreadName("bench main");
  RegisterProfiledThread("bench main");
  SearchProfileStats s;
  for (int r = 0; r < repeat; ++r) {
    tracer.Enable();
    CpuProfilerOptions popts;
    popts.hz = 997;
    popts.epoch_ns = tracer.epoch_ns();
    if (!CpuProfiler::Global().Start(popts)) break;
    // Loop the search until the sampler has seen a statistically useful
    // window; one small-model search alone is shorter than a timer period.
    const double t0 = Now();
    do {
      FASTT_TRACE_SPAN("bench/search");
      const OsDposResult os = OsDpos(in.graph, in.cluster, in.comp, in.comm);
      (void)os;
    } while (Now() - t0 < 0.25);
    CpuProfiler::Global().Stop();
    tracer.Disable();
    tracer.Drain();  // spans only feed sample attribution here
    const SymbolizedProfile prof =
        SymbolizeProfile(CpuProfiler::Global().Drain());
    if (prof.samples_total == 0) {
      s.span_attrib_pct.push_back(0.0);
      s.hot_frame_pct.push_back(0.0);
      continue;
    }
    uint64_t hot = 0;
    for (const ProfStackRow& row : prof.stacks) {
      for (const std::string& frame : row.frames) {
        if (frame.find("Dpos") != std::string::npos ||
            frame.find("Simulate") != std::string::npos ||
            frame.find("ParallelFor") != std::string::npos) {
          hot += row.count;
          break;
        }
      }
    }
    s.span_attrib_pct.push_back(100.0 *
                                static_cast<double>(prof.span_attributed) /
                                static_cast<double>(prof.samples_total));
    s.hot_frame_pct.push_back(100.0 * static_cast<double>(hot) /
                              static_cast<double>(prof.samples_total));
    s.last = prof;
  }
  SetSearchJobs(1);
  return s;
}

struct ResimTiming {
  double incremental_s = 0.0;  // best over repeats
  double full_s = 0.0;
  std::vector<double> incremental_samples;
  std::vector<double> full_samples;
  int edits = 0;
};

// Which ops a resim benchmark edits. The dirty cone of an exact incremental
// replay spans the timeline from the edited op's earliest possible effect —
// its *data-readiness* on the new device — so the three modes probe the
// spectrum: kRandom edits dirty most of the timeline on a data-parallel
// graph (ops are data-ready long before their device frees up, so a move
// can legitimately reshuffle the target device's whole schedule); kTail
// restricts edits to the last decile by cached start, which helps only when
// readiness is also late; kLatest re-places the latest-starting op — the
// critical-path refinement move of a local search — whose cone is tiny.
enum class EditMode { kRandom, kTail, kLatest };

// Single-op re-placements, re-simulated both ways, `repeat` times each (a
// fresh IncrementalSim per repeat; the baseline re-simulates from scratch
// per edit by construction).
ResimTiming TimeResim(const SearchInput& in, int edits, EditMode mode,
                      int repeat) {
  SimOptions so;
  so.track_memory = false;
  ResimTiming t;
  t.edits = edits;
  Rng rng(23);
  auto live = in.graph.LiveOps();

  std::vector<DeviceId> placement = in.placement;
  IncrementalSim inc(in.graph, placement, in.cluster, so);
  const auto& recs = inc.result().op_records;
  if (mode == EditMode::kTail) {
    std::vector<double> starts;
    starts.reserve(live.size());
    for (OpId id : live)
      starts.push_back(recs[static_cast<size_t>(id)].start);
    std::nth_element(starts.begin(), starts.begin() + starts.size() * 9 / 10,
                     starts.end());
    const double cutoff = starts[starts.size() * 9 / 10];
    live.erase(std::remove_if(live.begin(), live.end(),
                              [&](OpId id) {
                                return recs[static_cast<size_t>(id)].start <
                                       cutoff;
                              }),
               live.end());
  } else if (mode == EditMode::kLatest) {
    OpId latest = live.front();
    for (OpId id : live)
      if (recs[static_cast<size_t>(id)].start >
          recs[static_cast<size_t>(latest)].start)
        latest = id;
    live.assign(1, latest);
  }
  // Draw (op, device) moves that actually change the placement: a no-op
  // move is free for the incremental side but a full re-simulation for the
  // baseline, which would flatter the speedup.
  std::vector<std::pair<OpId, DeviceId>> moves;
  std::vector<DeviceId> scratch = placement;
  while (static_cast<int>(moves.size()) < edits) {
    const OpId op = live[rng.NextBelow(live.size())];
    const DeviceId dev = static_cast<DeviceId>(rng.NextBelow(
        static_cast<uint64_t>(in.cluster.num_devices())));
    if (scratch[static_cast<size_t>(op)] == dev) continue;
    scratch[static_cast<size_t>(op)] = dev;
    moves.push_back({op, dev});
  }

  double final_inc_makespan = 0.0;
  for (int r = 0; r < repeat; ++r) {
    // Repeats after the first pay the IncrementalSim seed again, outside
    // the timed region, so every repeat measures the same edit sequence.
    IncrementalSim fresh(in.graph, in.placement, in.cluster, so);
    IncrementalSim& sim = r == 0 ? inc : fresh;
    const double t0 = Now();
    for (const auto& [op, dev] : moves) sim.Replace(op, dev);
    const double elapsed = Now() - t0;
    t.incremental_samples.push_back(elapsed);
    if (r == 0 || elapsed < t.incremental_s) t.incremental_s = elapsed;
    final_inc_makespan = sim.result().makespan;
  }

  double checksum = 0.0;
  for (int r = 0; r < repeat; ++r) {
    std::vector<DeviceId> scratch_placement = in.placement;
    checksum = 0.0;
    const double t0 = Now();
    for (const auto& [op, dev] : moves) {
      scratch_placement[static_cast<size_t>(op)] = dev;
      checksum +=
          Simulate(in.graph, scratch_placement, in.cluster, so).makespan;
    }
    const double elapsed = Now() - t0;
    t.full_samples.push_back(elapsed);
    if (r == 0 || elapsed < t.full_s) t.full_s = elapsed;
    placement = std::move(scratch_placement);
  }

  // The two paths must agree on the final timeline (the property tests do
  // the exhaustive version of this; here it guards the numbers we report).
  const SimResult full = Simulate(in.graph, placement, in.cluster, so);
  if (final_inc_makespan != full.makespan || checksum <= 0.0) {
    std::fprintf(stderr, "incremental/full divergence: %.17g vs %.17g\n",
                 final_inc_makespan, full.makespan);
    std::exit(1);
  }
  return t;
}

// Arena: race the registered searcher roster with an uncapped wall budget so
// each quality column (the noise-free resimulated iteration time) is a
// deterministic function of (model, gpus, batch) — machine-independent, hence
// regression-gateable by bench-diff — while the wall-clock column stays
// informational. Every repeat runs the same race, so the quality series has
// enough identical samples to clear the hard-gate min_repeats bar.
struct ArenaStats {
  std::vector<std::string> names;
  std::vector<std::vector<double>> resim_s;  // [searcher][repeat]
  std::vector<std::vector<double>> wall_s;
  std::string winner;
  double winner_s = 0.0;
};

ArenaStats RunArena(const std::string& model, int gpus, int64_t batch,
                    int jobs, int repeat) {
  const ModelSpec& spec = FindModel(model);
  const Cluster cluster = Cluster::SingleServer(gpus);
  const std::vector<ArenaSearcher>& roster = RegisteredSearchers();
  SetSearchJobs(jobs);
  ArenaStats s;
  s.names.reserve(roster.size());
  for (const ArenaSearcher& r : roster) s.names.push_back(r.name);
  s.resim_s.resize(roster.size());
  s.wall_s.resize(roster.size());
  PortfolioOptions po;
  po.budget_s = 0.0;  // uncapped: quality depends only on the evaluation budget
  for (int r = 0; r < repeat; ++r) {
    const PortfolioResult res =
        PortfolioSearch(roster, spec.build, spec.name,
                        batch > 0 ? batch : spec.strong_batch, cluster, po);
    for (size_t i = 0; i < roster.size(); ++i) {
      s.resim_s[i].push_back(res.entries[i].resim_s);
      s.wall_s[i].push_back(res.entries[i].wall_s);
    }
    if (r == 0 && res.winner >= 0) {
      s.winner = res.entries[static_cast<size_t>(res.winner)].searcher;
      s.winner_s = res.iteration_s;
    }
  }
  SetSearchJobs(1);
  return s;
}

int Run(int argc, char** argv) {
  std::string model = "bert_large";
  int gpus = 8;
  int64_t batch = 0;
  int jobs = 8;
  int repeat = 3;
  int edits = 200;
  std::string profile_path;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--model")) {
      model = next();
    } else if (!std::strcmp(argv[i], "--gpus")) {
      gpus = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--batch")) {
      batch = std::atoll(next());
    } else if (!std::strcmp(argv[i], "--jobs")) {
      jobs = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--repeat")) {
      repeat = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--edits")) {
      edits = std::atoi(next());
    } else if (!std::strcmp(argv[i], "--profile")) {
      profile_path = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const SearchInput in = Prepare(model, gpus, batch);
  const int host_cores =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  // Timing more threads than the host has cores only measures scheduler
  // churn, so the timed parallel run is clamped to the core count; the
  // byte-identity check still runs at the requested width (determinism must
  // hold regardless of how much the threads actually overlap).
  const int jobs_eff = std::min(jobs, host_cores);
  std::printf("bench_search: %s, %d GPUs, %d live ops, %d host cores\n",
              model.c_str(), gpus, in.graph.num_live_ops(), host_cores);

  const SearchTiming serial = TimeSearch(in, 1, repeat);
  const SearchTiming parallel = TimeSearch(in, jobs_eff, repeat);
  const SearchTiming identity =
      jobs_eff == jobs ? parallel : TimeSearch(in, jobs, 1);
  const bool identical = identity.strategy == serial.strategy &&
                         parallel.strategy == serial.strategy;
  const double search_speedup =
      parallel.best_s > 0.0 ? serial.best_s / parallel.best_s : 0.0;

  const SearchAllocStats allocs = MeasureSearchAllocs(in, jobs_eff, repeat);

  const ResimTiming resim = TimeResim(in, edits, EditMode::kRandom, repeat);
  const double resim_speedup =
      resim.incremental_s > 0.0 ? resim.full_s / resim.incremental_s : 0.0;
  const ResimTiming tail = TimeResim(in, edits, EditMode::kTail, repeat);
  const double tail_speedup =
      tail.incremental_s > 0.0 ? tail.full_s / tail.incremental_s : 0.0;
  const ResimTiming latest = TimeResim(in, edits, EditMode::kLatest, repeat);
  const double latest_speedup =
      latest.incremental_s > 0.0 ? latest.full_s / latest.incremental_s : 0.0;

  const ArenaStats arena = RunArena(model, gpus, batch, jobs_eff, repeat);

  const SearchProfileStats profcov =
      MeasureSearchProfile(in, jobs_eff, repeat);

  TablePrinter table({"measurement", "serial", "parallel", "speedup"});
  table.AddRow({StrFormat("OS-DPOS (%d probes), jobs %d of %d", serial.probes,
                          jobs_eff, jobs),
                StrFormat("%.3fs", serial.best_s),
                StrFormat("%.3fs", parallel.best_s),
                StrFormat("%.2fx", search_speedup)});
  table.AddRow({StrFormat("re-sim x%d random edits", resim.edits),
                StrFormat("%.3fs", resim.full_s),
                StrFormat("%.3fs", resim.incremental_s),
                StrFormat("%.2fx", resim_speedup)});
  table.AddRow({StrFormat("re-sim x%d tail edits", tail.edits),
                StrFormat("%.3fs", tail.full_s),
                StrFormat("%.3fs", tail.incremental_s),
                StrFormat("%.2fx", tail_speedup)});
  table.AddRow({StrFormat("re-sim x%d latest-op edits", latest.edits),
                StrFormat("%.3fs", latest.full_s),
                StrFormat("%.3fs", latest.incremental_s),
                StrFormat("%.2fx", latest_speedup)});
  std::printf("%s", table.Render().c_str());
  std::printf("strategies byte-identical across jobs: %s\n",
              identical ? "yes" : "NO");
  if (!allocs.allocs.empty()) {
    std::printf(
        "search heap: %.0f tagged allocs (%.0f obs), %s peak per run\n",
        allocs.allocs.front(), allocs.obs_allocs.front(),
        HumanBytes(allocs.peak_bytes.front()).c_str());
  }

  TablePrinter arena_table({"arena searcher", "iteration", "wall", ""});
  for (size_t i = 0; i < arena.names.size(); ++i) {
    const double q = arena.resim_s[i].front();
    arena_table.AddRow(
        {arena.names[i],
         std::isfinite(q) ? StrFormat("%.3fms", q * 1e3) : std::string("OOM"),
         StrFormat("%.3fs", arena.wall_s[i].front()),
         arena.names[i] == arena.winner ? "<- winner" : ""});
  }
  std::printf("%s", arena_table.Render().c_str());
  std::printf("arena winner: %s (%.3fms/iter over %zu searchers)\n",
              arena.winner.c_str(), arena.winner_s * 1e3, arena.names.size());

  if (!profcov.span_attrib_pct.empty()) {
    std::printf("cpu sampler: %llu samples, %.1f%% span-attributed, %.1f%% "
                "in search hot frames\n",
                (unsigned long long)profcov.last.samples_total,
                profcov.span_attrib_pct.back(), profcov.hot_frame_pct.back());
  }
  if (!profile_path.empty() && profcov.last.samples_total > 0) {
    std::ofstream out(profile_path);
    if (out) {
      out << ProfileToJson(profcov.last, {{"benchmark", "bench_search"},
                                          {"model", model},
                                          {"gpus", StrFormat("%d", gpus)},
                                          {"jobs", StrFormat("%d", jobs_eff)}})
          << "\n";
      std::printf("wrote cpu profile to %s\n", profile_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", profile_path.c_str());
    }
  }

  if (const char* path = std::getenv("FASTT_BENCH_JSON");
      path != nullptr && *path != '\0') {
    BenchHistoryDoc doc;
    // Machine- and run-dependent facts go in the run metadata; params hold
    // only the configuration cell, so reports from different machines still
    // match up under bench-diff.
    doc.run = {
        {"benchmark", "bench_search"},
        {"host_cores", StrFormat("%d", host_cores)},
        {"jobs_effective", StrFormat("%d", jobs_eff)},
        {"live_ops", StrFormat("%d", in.graph.num_live_ops())},
        {"osdpos_probes", StrFormat("%d", serial.probes)},
        {"strategies_identical", identical ? "yes" : "no"},
        {"arena_winner", arena.winner},
    };
    BenchReport report;
    report.benchmark = "bench_search";
    report.params = {
        {"model", model},
        {"gpus", StrFormat("%d", gpus)},
        {"jobs", StrFormat("%d", jobs)},
        {"edits", StrFormat("%d", edits)},
    };
    auto seconds = [](const std::string& name,
                      const std::vector<double>& samples) {
      BenchMetricSeries series;
      series.name = name;
      series.unit = "s";
      series.lower_is_better = true;
      series.samples = samples;
      return series;
    };
    auto counted = [](const std::string& name, const std::string& unit,
                      const std::vector<double>& samples) {
      BenchMetricSeries series;
      series.name = name;
      series.unit = unit;
      series.lower_is_better = true;
      series.samples = samples;
      return series;
    };
    report.metrics = {
        seconds("osdpos_serial_s", serial.samples),
        seconds("osdpos_parallel_s", parallel.samples),
        counted("osdpos_allocs", "count", allocs.allocs),
        counted("osdpos_peak_bytes", "bytes", allocs.peak_bytes),
        counted("osdpos_obs_allocs", "count", allocs.obs_allocs),
        seconds("resim_full_s", resim.full_samples),
        seconds("resim_incremental_s", resim.incremental_samples),
        seconds("resim_tail_full_s", tail.full_samples),
        seconds("resim_tail_incremental_s", tail.incremental_samples),
        seconds("resim_latest_full_s", latest.full_samples),
        seconds("resim_latest_incremental_s", latest.incremental_samples),
    };
    // Profiler coverage rows: percentages, higher is better (a drop means
    // span attribution or stack capture regressed).
    auto coverage = [](const std::string& name,
                       const std::vector<double>& samples) {
      BenchMetricSeries series;
      series.name = name;
      series.unit = "%";
      series.lower_is_better = false;
      series.samples = samples;
      return series;
    };
    if (!profcov.span_attrib_pct.empty()) {
      report.metrics.push_back(
          coverage("profile_span_attrib_pct", profcov.span_attrib_pct));
      report.metrics.push_back(
          coverage("profile_hot_frame_pct", profcov.hot_frame_pct));
    }
    // Arena rows: the iteration series is deterministic (every repeat finds
    // the same strategy under an uncapped wall budget), so bench-diff gates
    // searcher quality; the wall series rides along as context.
    for (size_t i = 0; i < arena.names.size(); ++i) {
      report.metrics.push_back(
          seconds("arena_" + arena.names[i] + "_iteration_s",
                  arena.resim_s[i]));
      report.metrics.push_back(
          seconds("arena_" + arena.names[i] + "_wall_s", arena.wall_s[i]));
    }
    doc.reports.push_back(std::move(report));
    doc.process_metrics_json = MetricsRegistry::Global().ToJson();
    WriteBenchHistoryDoc(doc, path);
    std::printf("wrote benchmark JSON to %s\n", path);
  }

  return identical ? 0 : 1;
}

}  // namespace
}  // namespace fastt

int main(int argc, char** argv) { return fastt::Run(argc, argv); }
