// Figure 3: normalized training speed (relative to strong-scaling data
// parallelism) of FastT vs. the comparator stand-ins — REINFORCE-like
// random search, GDP-like greedy rank placement, Post-like local search
// (all restricted to model-parallel placements of the bare graph, like the
// originals), and FlexFlow-like simulated annealing over placement+splits.
// Models and device counts follow the paper's four panels.
#include "baselines/searchers.h"
#include "harness.h"

using namespace fastt;
using namespace fastt::bench;

int main() {
  std::printf(
      "Figure 3 — normalized speed vs. data parallelism (DP = 1.00)\n\n");
  TablePrinter table({"Model", "GPUs", "REINFORCE~", "GDP~", "Post~",
                      "FlexFlow~", "FastT"});
  for (const char* name :
       {"inception_v3", "resnet200", "gnmt", "rnnlm"}) {
    const ModelSpec& spec = FindModel(name);
    for (int gpus : {2, 4, 8}) {
      const Cluster cluster = Cluster::SingleServer(gpus);
      CalculatorOptions copt;
      const auto dp = RunDataParallelBaseline(
          spec.build, spec.name, spec.strong_batch, Scaling::kStrong,
          cluster, copt);
      const double dp_speed = SamplesPerSecond(dp);
      const auto ft = RunFastT(spec.build, spec.name, spec.strong_batch,
                               Scaling::kStrong, cluster, copt);

      SearchOptions so;
      so.budget = 80;
      const auto rs = RandomSearchPlacement(spec.build, spec.name,
                                            spec.strong_batch, cluster, so);
      const auto gr = GreedyRankPlacement(spec.build, spec.name,
                                          spec.strong_batch, cluster, so);
      const auto ls = CrossEntropyPlacement(spec.build, spec.name,
                                            spec.strong_batch, cluster, so);
      SearchOptions sa_opt;
      sa_opt.budget = 160;  // FlexFlow's search budget dwarfs the others
      const auto sa = AnnealingSearch(spec.build, spec.name,
                                      spec.strong_batch, cluster, sa_opt);

      auto normalized = [&](double batch, double iteration_s) {
        return (batch / (iteration_s + kSessionOverheadS)) / dp_speed;
      };
      table.AddRow(
          {name, StrFormat("%d", gpus),
           StrFormat("%.2f", normalized(
                                 static_cast<double>(spec.strong_batch),
                                 rs.iteration_s)),
           StrFormat("%.2f", normalized(
                                 static_cast<double>(spec.strong_batch),
                                 gr.iteration_s)),
           StrFormat("%.2f", normalized(
                                 static_cast<double>(spec.strong_batch),
                                 ls.iteration_s)),
           StrFormat("%.2f",
                     normalized(static_cast<double>(sa.global_batch),
                                sa.iteration_s)),
           StrFormat("%.2f", SamplesPerSecond(ft) / dp_speed)});
      std::fflush(stdout);
    }
  }
  table.Print();
  std::printf(
      "\nShape checks vs. paper: FastT beats every model-parallel-only\n"
      "searcher (their solution space lacks data parallelism and splits);\n"
      "the FlexFlow-like annealer — searching the same larger space with a\n"
      "far bigger budget — is the only one that can approach or edge out\n"
      "FastT. Absolute normalized values for the MP-only searchers are\n"
      "lower than the published ones because our DP baseline is healthier\n"
      "on CNNs (see EXPERIMENTS.md).\n");
  return 0;
}
