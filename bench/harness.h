// Shared helpers for the per-table / per-figure benchmark binaries. Each
// binary regenerates one table or figure of the paper's evaluation section
// and prints rows in the paper's format (see EXPERIMENTS.md for the
// paper-vs-measured comparison).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/strategy_calculator.h"
#include "models/model_zoo.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/strings.h"
#include "util/table.h"

namespace fastt::bench {

struct Config {
  std::string label;  // "4GPUs", "8GPUs (2servers)", ...
  Cluster cluster;
};

inline std::vector<Config> Table1Configs() {
  return {
      {"1 GPU", Cluster::SingleServer(1)},
      {"2GPUs", Cluster::SingleServer(2)},
      {"4GPUs", Cluster::SingleServer(4)},
      {"8GPUs", Cluster::SingleServer(8)},
      {"8GPUs (2servers)", Cluster::MultiServer(2, 4)},
  };
}

inline std::vector<Config> Table2Configs() {
  return {
      {"1 GPU", Cluster::SingleServer(1)},
      {"2GPUs", Cluster::SingleServer(2)},
      {"4GPUs", Cluster::SingleServer(4)},
      {"8GPUs", Cluster::SingleServer(8)},
      {"16GPUs (2servers)", Cluster::MultiServer(2, 8)},
  };
}

struct Cell {
  double dp = 0.0;     // samples/s
  double fastt = 0.0;  // samples/s
};

// Every measured cell, in measurement order, for the optional JSON report.
struct CellRecord {
  std::string model;
  std::string cluster;
  int64_t batch = 0;
  Scaling scaling = Scaling::kStrong;
  Cell cell;
};

inline std::vector<CellRecord>& CellRecords() {
  static std::vector<CellRecord> records;
  return records;
}

inline Cell MeasureCell(const ModelSpec& spec, const Cluster& cluster,
                        int64_t batch, Scaling scaling,
                        const CalculatorOptions& base = {}) {
  CalculatorOptions options = base;
  Cell cell;
  const auto dp = RunDataParallelBaseline(spec.build, spec.name, batch,
                                          scaling, cluster, options);
  cell.dp = SamplesPerSecond(dp);
  const auto ft =
      RunFastT(spec.build, spec.name, batch, scaling, cluster, options);
  cell.fastt = ft.final_sim.oom ? 0.0 : SamplesPerSecond(ft);
  CellRecords().push_back(
      {spec.name, cluster.ToString(), batch, scaling, cell});
  return cell;
}

// If FASTT_BENCH_JSON names a path, writes every measured cell plus the
// process metrics registry there as one JSON document. Call at the end of a
// benchmark's main().
inline void MaybeWriteBenchJson(const std::string& bench_name) {
  const char* path = std::getenv("FASTT_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  JsonWriter w;
  w.BeginObject();
  w.Key("benchmark");
  w.String(bench_name);
  w.Key("cells");
  w.BeginArray();
  for (const CellRecord& r : CellRecords()) {
    w.BeginObject();
    w.Key("model");
    w.String(r.model);
    w.Key("cluster");
    w.String(r.cluster);
    w.Key("batch");
    w.Int(r.batch);
    w.Key("scaling");
    w.String(r.scaling == Scaling::kStrong ? "strong" : "weak");
    w.Key("dp_samples_per_s");
    w.Number(r.cell.dp);
    w.Key("fastt_samples_per_s");
    w.Number(r.cell.fastt);
    w.EndObject();
  }
  w.EndArray();
  w.Key("metrics");
  w.Raw(MetricsRegistry::Global().ToJson());
  w.EndObject();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  out << w.str() << "\n";
  std::printf("wrote benchmark JSON to %s\n", path);
}

inline std::string Speed(double samples_per_s) {
  return StrFormat("%.1f", samples_per_s);
}

inline std::string Pct(double ratio) {
  return StrFormat("%.1f%%", 100.0 * (ratio - 1.0));
}

}  // namespace fastt::bench
