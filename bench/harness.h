// Shared helpers for the per-table / per-figure benchmark binaries. Each
// binary regenerates one table or figure of the paper's evaluation section
// and prints rows in the paper's format (see EXPERIMENTS.md for the
// paper-vs-measured comparison).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/strategy_calculator.h"
#include "models/model_zoo.h"
#include "util/strings.h"
#include "util/table.h"

namespace fastt::bench {

struct Config {
  std::string label;  // "4GPUs", "8GPUs (2servers)", ...
  Cluster cluster;
};

inline std::vector<Config> Table1Configs() {
  return {
      {"1 GPU", Cluster::SingleServer(1)},
      {"2GPUs", Cluster::SingleServer(2)},
      {"4GPUs", Cluster::SingleServer(4)},
      {"8GPUs", Cluster::SingleServer(8)},
      {"8GPUs (2servers)", Cluster::MultiServer(2, 4)},
  };
}

inline std::vector<Config> Table2Configs() {
  return {
      {"1 GPU", Cluster::SingleServer(1)},
      {"2GPUs", Cluster::SingleServer(2)},
      {"4GPUs", Cluster::SingleServer(4)},
      {"8GPUs", Cluster::SingleServer(8)},
      {"16GPUs (2servers)", Cluster::MultiServer(2, 8)},
  };
}

struct Cell {
  double dp = 0.0;     // samples/s
  double fastt = 0.0;  // samples/s
};

inline Cell MeasureCell(const ModelSpec& spec, const Cluster& cluster,
                        int64_t batch, Scaling scaling,
                        const CalculatorOptions& base = {}) {
  CalculatorOptions options = base;
  Cell cell;
  const auto dp = RunDataParallelBaseline(spec.build, spec.name, batch,
                                          scaling, cluster, options);
  cell.dp = SamplesPerSecond(dp);
  const auto ft =
      RunFastT(spec.build, spec.name, batch, scaling, cluster, options);
  cell.fastt = ft.final_sim.oom ? 0.0 : SamplesPerSecond(ft);
  return cell;
}

inline std::string Speed(double samples_per_s) {
  return StrFormat("%.1f", samples_per_s);
}

inline std::string Pct(double ratio) {
  return StrFormat("%.1f%%", 100.0 * (ratio - 1.0));
}

}  // namespace fastt::bench
