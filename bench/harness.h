// Shared helpers for the per-table / per-figure benchmark binaries. Each
// binary regenerates one table or figure of the paper's evaluation section
// and prints rows in the paper's format (see EXPERIMENTS.md for the
// paper-vs-measured comparison).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/strategy_calculator.h"
#include "models/model_zoo.h"
#include "obs/bench_history.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/strings.h"
#include "util/table.h"

namespace fastt::bench {

struct Config {
  std::string label;  // "4GPUs", "8GPUs (2servers)", ...
  Cluster cluster;
};

inline std::vector<Config> Table1Configs() {
  return {
      {"1 GPU", Cluster::SingleServer(1)},
      {"2GPUs", Cluster::SingleServer(2)},
      {"4GPUs", Cluster::SingleServer(4)},
      {"8GPUs", Cluster::SingleServer(8)},
      {"8GPUs (2servers)", Cluster::MultiServer(2, 4)},
  };
}

inline std::vector<Config> Table2Configs() {
  return {
      {"1 GPU", Cluster::SingleServer(1)},
      {"2GPUs", Cluster::SingleServer(2)},
      {"4GPUs", Cluster::SingleServer(4)},
      {"8GPUs", Cluster::SingleServer(8)},
      {"16GPUs (2servers)", Cluster::MultiServer(2, 8)},
  };
}

struct Cell {
  double dp = 0.0;     // samples/s
  double fastt = 0.0;  // samples/s
};

// Every measured cell, in measurement order, for the optional JSON report.
struct CellRecord {
  std::string model;
  std::string cluster;
  int64_t batch = 0;
  Scaling scaling = Scaling::kStrong;
  Cell cell;
};

inline std::vector<CellRecord>& CellRecords() {
  static std::vector<CellRecord> records;
  return records;
}

inline Cell MeasureCell(const ModelSpec& spec, const Cluster& cluster,
                        int64_t batch, Scaling scaling,
                        const CalculatorOptions& base = {}) {
  CalculatorOptions options = base;
  Cell cell;
  const auto dp = RunDataParallelBaseline(spec.build, spec.name, batch,
                                          scaling, cluster, options);
  cell.dp = SamplesPerSecond(dp);
  const auto ft =
      RunFastT(spec.build, spec.name, batch, scaling, cluster, options);
  cell.fastt = ft.final_sim.oom ? 0.0 : SamplesPerSecond(ft);
  CellRecords().push_back(
      {spec.name, cluster.ToString(), batch, scaling, cell});
  return cell;
}

// If FASTT_BENCH_JSON names a path, writes every measured cell plus the
// process metrics registry there as one fastt-bench/1 document (see
// obs/bench_history.h) — diffable with `fastt bench-diff`. Call at the end
// of a benchmark's main().
inline void MaybeWriteBenchJson(const std::string& bench_name) {
  const char* path = std::getenv("FASTT_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  BenchHistoryDoc doc;
  doc.run["benchmark"] = bench_name;
  for (const CellRecord& r : CellRecords()) {
    BenchReport report;
    report.benchmark = bench_name;
    report.params = {
        {"model", r.model},
        {"cluster", r.cluster},
        {"batch", StrFormat("%lld", (long long)r.batch)},
        {"scaling", r.scaling == Scaling::kStrong ? "strong" : "weak"},
    };
    BenchMetricSeries dp;
    dp.name = "dp_samples_per_s";
    dp.unit = "samples/s";
    dp.lower_is_better = false;
    dp.samples = {r.cell.dp};
    BenchMetricSeries ft;
    ft.name = "fastt_samples_per_s";
    ft.unit = "samples/s";
    ft.lower_is_better = false;
    ft.samples = {r.cell.fastt};
    report.metrics = {std::move(dp), std::move(ft)};
    doc.reports.push_back(std::move(report));
  }
  doc.process_metrics_json = MetricsRegistry::Global().ToJson();
  WriteBenchHistoryDoc(doc, path);
  std::printf("wrote benchmark JSON to %s\n", path);
}

inline std::string Speed(double samples_per_s) {
  return StrFormat("%.1f", samples_per_s);
}

inline std::string Pct(double ratio) {
  return StrFormat("%.1f%%", 100.0 * (ratio - 1.0));
}

}  // namespace fastt::bench
