// Ablations of the design choices DESIGN.md §5 documents, on the headline
// workload (VGG-19, 4 GPUs, strong scaling):
//   * communication-affinity weight λ in device selection (0 = plain
//     min-EFT, the literal Alg. 1 reading),
//   * the critical-path device policy,
//   * order enforcement,
//   * operation splitting.
// Each row reports FastT throughput with one knob changed.
#include "harness.h"

using namespace fastt;
using namespace fastt::bench;

int main() {
  std::printf(
      "Ablation — FastT on VGG-19, 4 GPUs, strong scaling (DP baseline "
      "shown first)\n\n");
  const ModelSpec& spec = FindModel("vgg19");
  const Cluster cluster = Cluster::SingleServer(4);

  TablePrinter table({"Variant", "samples/s", "vs full FastT"});

  CalculatorOptions full;
  const auto dp = RunDataParallelBaseline(spec.build, spec.name,
                                          spec.strong_batch, Scaling::kStrong,
                                          cluster, full);
  const auto fastt = RunFastT(spec.build, spec.name, spec.strong_batch,
                              Scaling::kStrong, cluster, full);
  const double reference = SamplesPerSecond(fastt);

  auto add = [&](const std::string& label, double speed) {
    table.AddRow({label, Speed(speed),
                  StrFormat("%+.1f%%", 100.0 * (speed / reference - 1.0))});
  };
  add("data parallel (baseline)", SamplesPerSecond(dp));
  add("FastT (full)", reference);

  struct Variant {
    std::string label;
    CalculatorOptions options;
  };
  std::vector<Variant> variants;
  {
    Variant v{"no comm affinity (plain min-EFT)", full};
    v.options.os_dpos.dpos.comm_affinity = 0.0;
    variants.push_back(v);
  }
  {
    Variant v{"comm affinity x4", full};
    v.options.os_dpos.dpos.comm_affinity = 4.0;
    variants.push_back(v);
  }
  {
    Variant v{"no critical-path device", full};
    v.options.use_critical_path_device = false;
    variants.push_back(v);
  }
  {
    Variant v{"no order enforcement", full};
    v.options.enable_order_enforcement = false;
    variants.push_back(v);
  }
  {
    Variant v{"no operation splitting", full};
    v.options.enable_split = false;
    variants.push_back(v);
  }
  for (const Variant& v : variants) {
    const auto result = RunFastT(spec.build, spec.name, spec.strong_batch,
                                 Scaling::kStrong, cluster, v.options);
    add(v.label, SamplesPerSecond(result));
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nReading: the rollback safety net means ablated variants never fall\n"
      "below the data-parallel start strategy, but disabling the\n"
      "communication-affinity term forfeits most of the placement win —\n"
      "plain min-EFT cannot see weight-broadcast/gradient traffic whose\n"
      "cost lands on later ops.\n");
  return 0;
}
