// Figure 5: average computation time and memcpy (tensor transfer) time per
// iteration for data parallelism vs. FastT on 2 GPUs, for VGG-19,
// ResNet-200, AlexNet and LeNet. Computation and communication overlap, so
// per-iteration time is not their sum.
#include "harness.h"

using namespace fastt;
using namespace fastt::bench;

int main() {
  std::printf(
      "Figure 5 — average computation / memcpy / per-iteration time (ms), "
      "2 GPUs\n\n");
  const Cluster cluster = Cluster::SingleServer(2);
  TablePrinter table({"Model", "Strategy", "Computation", "Memcpy",
                      "Per-iteration"});
  for (const char* name : {"vgg19", "resnet200", "alexnet", "lenet"}) {
    const ModelSpec& spec = FindModel(name);
    CalculatorOptions options;
    const auto dp = RunDataParallelBaseline(
        spec.build, spec.name, spec.strong_batch, Scaling::kStrong, cluster,
        options);
    const auto ft = RunFastT(spec.build, spec.name, spec.strong_batch,
                             Scaling::kStrong, cluster, options);
    auto add = [&](const char* strategy, const SimResult& sim,
                   double iteration_s) {
      table.AddRow({name, strategy,
                    StrFormat("%.2f", sim.total_compute_s * 1e3),
                    StrFormat("%.2f", sim.total_memcpy_s * 1e3),
                    StrFormat("%.2f", iteration_s * 1e3)});
    };
    add("Data parallel", dp.final_sim, dp.iteration_s);
    add("FastT", ft.final_sim, ft.iteration_s);
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nShape checks vs. paper: FastT's memcpy time drops sharply vs. data\n"
      "parallelism (no gradient/weight traffic for colocated replicas),\n"
      "with computation time equal or slightly higher on the gathered\n"
      "device; per-iteration time falls with memcpy.\n");
  return 0;
}
