// Figure 2: performance gain of order enforcement — per-iteration time of
// the default executor order vs. FastT's enforced priorities, on the same
// FastT placement, 2 GPUs, for the four CNNs the paper plots.
#include "harness.h"

using namespace fastt;
using namespace fastt::bench;

int main() {
  std::printf(
      "Figure 2 — per-iteration time: default executor order vs. FastT "
      "order enforcement (2 GPUs)\n\n");
  const Cluster cluster = Cluster::SingleServer(2);
  TablePrinter table({"Model", "Default order", "Order enforced", "Gain"});
  for (const char* name : {"alexnet", "vgg19", "lenet", "resnet200"}) {
    const ModelSpec& spec = FindModel(name);
    CalculatorOptions options;
    const auto ft = RunFastT(spec.build, spec.name, spec.strong_batch,
                             Scaling::kStrong, cluster, options);
    const auto priorities = PrioritiesFromOrder(
        ft.strategy.execution_order, ft.graph.num_slots());
    auto measure = [&](DispatchMode mode) {
      double total = 0.0;
      const int iters = 5;
      for (int i = 0; i < iters; ++i) {
        SimOptions so;
        so.dispatch = mode;
        so.priorities = priorities;
        so.noise_cv = 0.03;
        so.seed = 900 + static_cast<uint64_t>(i);
        total += Simulate(ft.graph, ft.strategy.placement, cluster, so)
                     .makespan;
      }
      return total / iters;
    };
    // The TF default executor drains its ready queue in effectively
    // arbitrary order (inter-op thread pool) — modeled as kRandom.
    const double fifo = measure(DispatchMode::kRandom);
    const double enforced = measure(DispatchMode::kPriority);
    table.AddRow({name, StrFormat("%.2f ms", fifo * 1e3),
                  StrFormat("%.2f ms", enforced * 1e3),
                  StrFormat("%.1f %%", 100.0 * (fifo / enforced - 1.0))});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nShape checks vs. paper: enforcing the computed execution order\n"
      "reduces per-iteration time (paper: up to 26.9%% on 2 GPUs), because\n"
      "the default order can schedule bulk tensor sends ahead of critical\n"
      "ones.\n");
  return 0;
}
