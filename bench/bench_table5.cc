// Table 5: split decisions for representative VGG-19 operations — profiled
// execution time, weight size, and whether OS-DPOS chose to split them.
// The paper's pattern: long-running convolutions with small weights are
// split; cheap elementwise/pooling ops and the huge fully-connected layers
// are not (splitting fc would broadcast its 100+ MB of weights).
#include "harness.h"

using namespace fastt;
using namespace fastt::bench;

int main() {
  std::printf("Table 5 — split decisions for representative VGG-19 ops "
              "(4 GPUs)\n\n");
  const ModelSpec& spec = FindModel("vgg19");
  const Cluster cluster = Cluster::SingleServer(4);
  CalculatorOptions options;
  const auto ft = RunFastT(spec.build, spec.name, spec.strong_batch,
                           Scaling::kStrong, cluster, options);

  // Representative rows in the paper's order (the /wgrad suffix is our name
  // for the paper's "bp" backprop ops). Replica 0 stands for all replicas.
  const std::vector<std::pair<std::string, std::string>> rows = {
      {"Conv1_1", "rep0/conv1_1"},
      {"Conv1_2", "rep0/conv1_2"},
      {"Conv1_2bp", "rep0/conv1_2/wgrad"},
      {"Relu1_2", "rep0/relu1_2"},
      {"Pool1", "rep0/pool1"},
      {"Conv5_4", "rep0/conv5_4"},
      {"Fc6", "rep0/fc6"},
  };

  TablePrinter table({"Operation", "Time(ms)", "Weight(KB)", "Split"});
  for (const auto& [label, name] : rows) {
    // Split ops are tombstoned in the final graph and listed in SP.
    bool split = false;
    for (const SplitDecision& s : ft.strategy.splits)
      if (s.op_name == name) split = true;
    const OpId id = ft.graph.FindOp(name);
    // Profiled mean time over the devices the op (or its parent) ran on.
    double time_ms = 0.0;
    int64_t weight_bytes = 0;
    const std::string cost_key =
        name.substr(name.find('/') + 1);  // strip "rep0/"
    for (DeviceId d = 0; d < cluster.num_devices(); ++d) {
      if (auto t = ft.comp.Lookup(cost_key, d))
        time_ms = std::max(time_ms, *t * 1e3);
    }
    // Weight size: the op's variable — backprop rows report their parent
    // conv's weights, like the paper's Conv1_2bp row.
    std::string var_name = name + "/weights";
    if (const auto pos = name.rfind("/wgrad"); pos != std::string::npos)
      var_name = name.substr(0, pos) + "/weights";
    const OpId var = ft.graph.FindOp(var_name);
    if (var != kInvalidOp) weight_bytes = ft.graph.op(var).output_bytes();
    if (id == kInvalidOp && !split) {
      // The op itself may have been consumed by a split of its replica.
      split = true;
    }
    table.AddRow({label, StrFormat("%.3f", time_ms),
                  StrFormat("%.3f", weight_bytes / 1024.0),
                  split ? "True" : "False"});
  }
  table.Print();
  std::printf("\nSplit list chosen by OS-DPOS (%zu total):\n",
              ft.strategy.splits.size());
  for (const SplitDecision& s : ft.strategy.splits)
    std::printf("  %s  dim=%s  n=%d\n", s.op_name.c_str(),
                SplitDimName(s.dim), s.num_splits);
  std::printf(
      "\nShape checks vs. paper: split ops have long compute and small\n"
      "weights (conv + conv-backprop); Relu/Pool (cheap) and Fc6 (huge\n"
      "weights) are never split.\n");
  return 0;
}
