// Table 3: per-iteration training time (seconds) of BERT-large at global
// batch sizes 16..48: one GPU, 2-GPU data parallelism, and 2-GPU FastT.
// Reproduces the feasibility matrix — DP cannot exceed global batch 32 on
// two 16 GB GPUs while FastT trains batch 40 and 48.
#include "harness.h"

using namespace fastt;
using namespace fastt::bench;

int main() {
  std::printf(
      "Table 3 — BERT-large per-iteration time (s); OOM = out of memory\n\n");
  const ModelSpec& spec = FindModel("bert_large");
  const Cluster c1 = Cluster::SingleServer(1);
  const Cluster c2 = Cluster::SingleServer(2);
  TablePrinter table(
      {"Model (global batch)", "Single GPU", "2GPUs DP", "2GPUs FastT"});
  for (int64_t batch : {int64_t{16}, int64_t{32}, int64_t{40}, int64_t{48}}) {
    CalculatorOptions options;
    const auto single = RunDataParallelBaseline(spec.build, spec.name, batch,
                                                Scaling::kStrong, c1, options);
    const auto dp = RunDataParallelBaseline(spec.build, spec.name, batch,
                                            Scaling::kStrong, c2, options);
    const auto ft =
        RunFastT(spec.build, spec.name, batch, Scaling::kStrong, c2, options);
    auto cell = [](bool oom, double iteration_s) {
      return oom ? std::string("OOM") : StrFormat("%.3f", iteration_s);
    };
    table.AddRow({StrFormat("Bert-large(%lld)", (long long)batch),
                  cell(single.final_sim.oom, single.iteration_s),
                  cell(dp.final_sim.oom, dp.iteration_s),
                  cell(ft.final_sim.oom, ft.iteration_s)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nShape checks vs. paper: single GPU OOMs beyond batch 16; 2-GPU DP\n"
      "OOMs beyond batch 32; FastT trains batch 40 and 48 by splitting the\n"
      "model across both GPUs (paper Table 3).\n");
  return 0;
}
