// Table 2: training speed (samples/s) under WEAK scaling — per-GPU batch
// fixed, global batch grows with the device count — for all nine models on
// 1/2/4/8 GPUs and 16 GPUs across 2 servers.
#include <algorithm>

#include "harness.h"

using namespace fastt;
using namespace fastt::bench;

int main() {
  std::printf(
      "Table 2 — training speed (samples/s), weak scaling (fixed per-GPU "
      "batch)\n\n");
  TablePrinter table({"Model(batch/GPU)", "1 GPU", "2 DP", "2 FastT", "4 DP",
                      "4 FastT", "8 DP", "8 FastT", "2x8 DP", "2x8 FastT",
                      "Speedup"});
  for (const ModelSpec& spec : ModelZoo()) {
    std::vector<std::string> row;
    row.push_back(
        StrFormat("%s(%lld)", spec.name.c_str(), (long long)spec.weak_batch));
    double best_dp = 0.0, best_fastt = 0.0;
    bool first = true;
    for (const Config& config : Table2Configs()) {
      const Cell cell = MeasureCell(spec, config.cluster, spec.weak_batch,
                                    Scaling::kWeak);
      if (first) {
        row.push_back(Speed(cell.dp));
        first = false;
      } else {
        row.push_back(Speed(cell.dp));
        row.push_back(Speed(cell.fastt));
      }
      best_dp = std::max(best_dp, cell.dp);
      best_fastt = std::max(best_fastt, cell.fastt);
    }
    row.push_back(Pct(best_fastt / std::max(best_dp, 1e-9)));
    table.AddRow(std::move(row));
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nShape checks vs. paper: FastT still >= DP, but the improvements\n"
      "are smaller than in Table 1 — per-GPU utilization under weak\n"
      "scaling is already high, leaving less room to move operations\n"
      "around (paper Sec. 6.3).\n");
  MaybeWriteBenchJson("table2");
  return 0;
}
