// Table 1: training speed (samples/s) under STRONG scaling — global batch
// fixed — for all nine models on 1/2/4/8 GPUs and 8 GPUs across 2 servers,
// data parallelism vs. FastT, plus the speed-up of FastT over the best
// data-parallel configuration.
#include <algorithm>

#include "harness.h"

using namespace fastt;
using namespace fastt::bench;

int main() {
  std::printf(
      "Table 1 — training speed (samples/s), strong scaling (fixed global "
      "batch)\n\n");
  TablePrinter table({"Model(batch)", "1 GPU", "2 DP", "2 FastT", "4 DP",
                      "4 FastT", "8 DP", "8 FastT", "2x4 DP", "2x4 FastT",
                      "Speedup"});
  for (const ModelSpec& spec : ModelZoo()) {
    std::vector<std::string> row;
    row.push_back(
        StrFormat("%s(%lld)", spec.name.c_str(), (long long)spec.strong_batch));
    double best_dp = 0.0, best_fastt = 0.0;
    bool first = true;
    for (const Config& config : Table1Configs()) {
      const Cell cell = MeasureCell(spec, config.cluster, spec.strong_batch,
                                    Scaling::kStrong);
      if (first) {
        row.push_back(Speed(cell.dp));  // single GPU: one column
        first = false;
      } else {
        row.push_back(Speed(cell.dp));
        row.push_back(Speed(cell.fastt));
      }
      best_dp = std::max(best_dp, cell.dp);
      best_fastt = std::max(best_fastt, cell.fastt);
    }
    // Paper's last column: best FastT configuration vs. best data-parallel
    // configuration.
    row.push_back(Pct(best_fastt / std::max(best_dp, 1e-9)));
    table.AddRow(std::move(row));
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nShape checks vs. paper: FastT >= DP in every multi-GPU cell; the\n"
      "largest strong-scaling win is on VGG-19; Inception-v3 gains are\n"
      "small; DP throughput degrades at 8 GPUs and in the 2-server setup\n"
      "while FastT holds up.\n");
  MaybeWriteBenchJson("table1");
  return 0;
}
