#include <gtest/gtest.h>

#include "models/builder.h"
#include "util/strings.h"

namespace fastt {
namespace {

TEST(Builder, ConvShapesSamePadding) {
  Graph g;
  ModelBuilder mb(g, "", 4);
  const OpId x = mb.Input("x", TensorShape{4, 32, 32, 3});
  const OpId conv = mb.Conv2D("conv", x, 3, 16, 1, /*same=*/true);
  EXPECT_EQ(mb.shape_of(conv), TensorShape({4, 32, 32, 16}));
  const OpId strided = mb.Conv2D("conv_s2", conv, 3, 32, 2, /*same=*/true);
  EXPECT_EQ(mb.shape_of(strided), TensorShape({4, 16, 16, 32}));
}

TEST(Builder, ConvShapesValidPadding) {
  Graph g;
  ModelBuilder mb(g, "", 2);
  const OpId x = mb.Input("x", TensorShape{2, 28, 28, 1});
  const OpId conv = mb.Conv2D("conv", x, 5, 20, 1, /*same=*/false);
  EXPECT_EQ(mb.shape_of(conv), TensorShape({2, 24, 24, 20}));
}

TEST(Builder, RectKernelFlops) {
  Graph g;
  ModelBuilder mb(g, "", 1);
  const OpId x = mb.Input("x", TensorShape{1, 8, 8, 4});
  const OpId c17 = mb.Conv2DRect("c17", x, 1, 7, 8, 1, true);
  const OpId c77 = mb.Conv2DRect("c77", x, 7, 7, 8, 1, true);
  EXPECT_NEAR(g.op(c77).flops / g.op(c17).flops, 7.0, 1e-9);
}

TEST(Builder, ConvEmitsVariableWithWeights) {
  Graph g;
  ModelBuilder mb(g, "", 2);
  const OpId x = mb.Input("x", TensorShape{2, 8, 8, 3});
  const OpId conv = mb.Conv2D("conv", x, 3, 16, 1, true);
  const OpId var = g.FindOp("conv/weights");
  ASSERT_NE(var, kInvalidOp);
  EXPECT_EQ(g.op(var).type, OpType::kVariable);
  EXPECT_EQ(g.op(var).output_bytes(), (3 * 3 * 3 * 16 + 16) * 4);
  // Weight tensor flows from the variable to the conv.
  auto preds = g.Preds(conv);
  EXPECT_NE(std::find(preds.begin(), preds.end(), var), preds.end());
}

TEST(Builder, PoolingShapes) {
  Graph g;
  ModelBuilder mb(g, "", 2);
  const OpId x = mb.Input("x", TensorShape{2, 8, 8, 4});
  EXPECT_EQ(mb.shape_of(mb.MaxPool("mp", x, 2, 2)),
            TensorShape({2, 4, 4, 4}));
  EXPECT_EQ(mb.shape_of(mb.GlobalAvgPool("gap", x)), TensorShape({2, 4}));
}

TEST(Builder, DenseFlattensInput) {
  Graph g;
  ModelBuilder mb(g, "", 8);
  const OpId x = mb.Input("x", TensorShape{8, 4, 4, 16});
  const OpId fc = mb.Dense("fc", x, 100);
  EXPECT_EQ(mb.shape_of(fc), TensorShape({8, 100}));  // bias-add output
  const OpId mm = g.FindOp("fc");
  EXPECT_NEAR(g.op(mm).flops, 2.0 * 8 * 256 * 100, 1);
  EXPECT_EQ(g.op(g.FindOp("fc/weights")).output_bytes(), 256 * 100 * 4);
}

TEST(Builder, ReshapePreservesElements) {
  Graph g;
  ModelBuilder mb(g, "", 2);
  const OpId x = mb.Input("x", TensorShape{2, 6});
  EXPECT_NO_THROW(mb.Reshape("ok", x, TensorShape{12}));
  EXPECT_THROW(mb.Reshape("bad", x, TensorShape{13}), std::logic_error);
}

TEST(Builder, LstmLayerStructure) {
  Graph g;
  ModelBuilder mb(g, "", 4);
  const OpId ids = mb.Input("ids", TensorShape{4, 6}, DType::kI32);
  const OpId emb = mb.Embedding("emb", ids, 100, 32, 6);
  const auto steps = mb.LSTMLayer("lstm", emb, 6, 32, 32);
  ASSERT_EQ(steps.size(), 6u);
  // The recurrent chain: cell t has cell t-1 as a predecessor.
  auto preds = g.Preds(steps[3]);
  EXPECT_NE(std::find(preds.begin(), preds.end(), steps[2]), preds.end());
  // Shared weights live on one variable feeding every cell.
  const OpId var = g.FindOp("lstm/weights");
  ASSERT_NE(var, kInvalidOp);
  for (OpId cell : steps) {
    auto cp = g.Preds(cell);
    EXPECT_NE(std::find(cp.begin(), cp.end(), var), cp.end());
  }
}

TEST(Builder, FinishRequiresLoss) {
  Graph g;
  ModelBuilder mb(g, "", 2);
  mb.Input("x", TensorShape{2, 4});
  EXPECT_THROW(mb.Finish(), std::logic_error);
}

TEST(Builder, FinishTwiceThrows) {
  Graph g;
  ModelBuilder mb(g, "", 2);
  const OpId x = mb.Input("x", TensorShape{2, 8, 8, 3});
  const OpId fc = mb.Dense("fc", x, 10);
  mb.SoftmaxCrossEntropy("loss", fc, 10);
  mb.Finish();
  EXPECT_THROW(mb.Finish(), std::logic_error);
}

TEST(Builder, SecondLossRejected) {
  Graph g;
  ModelBuilder mb(g, "", 2);
  const OpId x = mb.Input("x", TensorShape{2, 8});
  const OpId fc = mb.Dense("fc", x, 4);
  mb.SoftmaxCrossEntropy("loss", fc, 4);
  EXPECT_THROW(mb.SoftmaxCrossEntropy("loss2", fc, 4), std::logic_error);
}

// A small conv net exercising the generic backward generation.
struct TrainedNet {
  Graph g;
  TrainedNet() {
    ModelBuilder mb(g, "", 4);
    const OpId x = mb.Input("x", TensorShape{4, 16, 16, 3});
    OpId h = mb.Conv2D("conv1", x, 3, 8, 1, true);
    h = mb.Relu("relu1", h);
    h = mb.Conv2D("conv2", h, 3, 8, 1, true);
    h = mb.MaxPool("pool1", h, 2, 2);
    h = mb.Dense("fc", h, 10);
    mb.SoftmaxCrossEntropy("loss", h, 10);
    mb.Finish();
    g.Validate();
  }
};

TEST(Backward, EveryParameterGetsWgradAndApply) {
  TrainedNet net;
  for (const char* base : {"conv1", "conv2", "fc", "fc_bias"}) {
    EXPECT_NE(net.g.FindOp(std::string(base) + "/wgrad"), kInvalidOp)
        << base;
    const OpId apply = net.g.FindOp(std::string(base) + "/apply");
    ASSERT_NE(apply, kInvalidOp) << base;
    // Optimizer update colocated with the variable, holding Adam slots.
    const OpId var = net.g.FindOp(std::string(base) + "/weights");
    EXPECT_EQ(net.g.op(apply).colocate_with, var);
    EXPECT_EQ(net.g.op(apply).param_bytes,
              2 * net.g.op(var).output_bytes());
    EXPECT_TRUE(net.g.op(apply).is_backward);
  }
}

TEST(Backward, ReluGradConsumesOwnOutput) {
  TrainedNet net;
  const OpId relu = net.g.FindOp("relu1");
  bool feeds_grad = false;
  for (OpId s : net.g.Succs(relu)) {
    if (net.g.op(s).type == OpType::kReluGrad) feeds_grad = true;
  }
  EXPECT_TRUE(feeds_grad);
}

TEST(Backward, ConvDxReadsWeightsNotActivation) {
  TrainedNet net;
  // Find the Conv2DBackpropInput op; its preds must include the variable.
  OpId dx = kInvalidOp;
  for (OpId id : net.g.LiveOps())
    if (net.g.op(id).type == OpType::kConv2DBackpropInput) dx = id;
  ASSERT_NE(dx, kInvalidOp);
  const OpId var = net.g.FindOp("conv2/weights");
  auto preds = net.g.Preds(dx);
  EXPECT_NE(std::find(preds.begin(), preds.end(), var), preds.end());
}

TEST(Backward, NoGradientTowardInputs) {
  TrainedNet net;
  const OpId x = net.g.FindOp("x");
  // conv1 consumes x; no dX op should produce a gradient *into* the input.
  for (OpId id : net.g.LiveOps()) {
    for (OpId s : net.g.Succs(id)) (void)s;
    if (net.g.op(id).is_backward) {
      for (OpId s : net.g.Succs(id)) EXPECT_NE(s, x);
    }
  }
}

TEST(Backward, FanOutGradientsAreSummed) {
  Graph g;
  ModelBuilder mb(g, "", 2);
  const OpId x = mb.Input("x", TensorShape{2, 8, 8, 4});
  const OpId c = mb.Conv2D("c", x, 1, 4, 1, true);
  const OpId b1 = mb.Relu("b1", c);
  const OpId b2 = mb.Relu("b2", c);
  const OpId add = mb.Add("add", b1, b2);
  const OpId fc = mb.Dense("fc", add, 4);
  mb.SoftmaxCrossEntropy("loss", fc, 4);
  mb.Finish();
  // c has two consumers; its upstream gradient must flow through a grad_sum.
  EXPECT_NE(g.FindOp("c/grad_sum"), kInvalidOp);
}

TEST(Backward, GeluExpandsToFiveStages) {
  Graph g;
  ModelBuilder mb(g, "", 2);
  const OpId x = mb.Input("x", TensorShape{2, 16});
  mb.Gelu("gelu", mb.Dense("fc", x, 16));
  int stages = 0;
  for (OpId id : g.LiveOps())
    if (g.op(id).type == OpType::kGelu) ++stages;
  EXPECT_EQ(stages, 5);
}

TEST(Backward, PrefixIsolatesReplicaNamesButSharesCostKeys) {
  Graph g;
  for (int r = 0; r < 2; ++r) {
    ModelBuilder mb(g, StrFormat("rep%d", r), 2);
    const OpId x = mb.Input("x", TensorShape{2, 8});
    const OpId fc = mb.Dense("fc", x, 4);
    mb.SoftmaxCrossEntropy("loss", fc, 4);
    mb.Finish();
  }
  const OpId a = g.FindOp("rep0/fc");
  const OpId b = g.FindOp("rep1/fc");
  ASSERT_NE(a, kInvalidOp);
  ASSERT_NE(b, kInvalidOp);
  EXPECT_EQ(g.op(a).CostKey(), g.op(b).CostKey());
}

}  // namespace
}  // namespace fastt
