// Semantic-preservation tests: execute training graphs with real numbers
// and verify that the structural transforms FastT applies (operation
// splitting, data-parallel replication with gradient aggregation) leave the
// training step's mathematics intact — the paper's §5.2 claim.
#include <gtest/gtest.h>

#include <cmath>

#include "core/data_parallel.h"
#include "exec/numeric_executor.h"
#include "graph/rewrite.h"
#include "models/builder.h"
#include "util/strings.h"

namespace fastt {
namespace {

// Small MLP: 16 -> 12 (relu) -> 6 -> softmax-xent, batch 8.
void BuildMlp(Graph& g, const std::string& prefix, int64_t batch) {
  ModelBuilder mb(g, prefix, batch);
  const OpId x = mb.Input("x", TensorShape{batch, 16});
  OpId h = mb.Dense("fc1", x, 12, /*relu=*/true);
  h = mb.Dense("fc2", h, 6);
  mb.SoftmaxCrossEntropy("loss", h, 6);
  mb.Finish();
}

Graph Mlp(int64_t batch = 8) {
  Graph g("mlp");
  BuildMlp(g, "", batch);
  g.Validate();
  return g;
}

TEST(Numeric, TrainingStepProducesFiniteLossAndUpdates) {
  const Graph g = Mlp();
  const NumericResult r = ExecuteNumerically(g);
  EXPECT_GT(r.loss, 0.0);
  EXPECT_LT(r.loss, 50.0);
  // Every parameterized layer got an update.
  for (const char* var :
       {"fc1/weights", "fc1_bias/weights", "fc2/weights"}) {
    EXPECT_TRUE(r.parameters.count(var)) << var;
  }
}

TEST(Numeric, GradientStepReducesLoss) {
  // Apply the computed update by hand and re-run the forward pass: with a
  // small learning rate the loss must decrease (the generated backward pass
  // really is the gradient).
  Graph g = Mlp();
  NumericOptions options;
  options.learning_rate = 0.05f;
  const NumericResult before = ExecuteNumerically(g, options);

  // Second run where Variables start from the updated values: emulate by
  // checking the directional derivative instead — a tiny step along the
  // negative gradient lowers the loss linearly, so compare against a run
  // with a *negative* learning rate (a step uphill).
  // (Executor re-seeds Variables identically, so the loss is identical
  // across runs; the parameters differ only in the recorded updates.)
  const NumericResult again = ExecuteNumerically(g, options);
  EXPECT_DOUBLE_EQ(before.loss, again.loss);  // determinism

  // Finite-difference check on one weight of fc2: d(loss)/dw from the
  // recorded update should match a numeric perturbation.
  // Recover gradient from the SGD update: g = (W - W') / lr.
  const Tensor& updated = before.parameters.at("fc2/weights");
  Graph g2 = Mlp();
  // Perturbation run: scale the learning rate down; the update direction
  // must be identical (pure SGD).
  NumericOptions tiny = options;
  tiny.learning_rate = 0.0005f;
  const NumericResult small_step = ExecuteNumerically(g2, tiny);
  const Tensor& updated_small = small_step.parameters.at("fc2/weights");
  // (W - W_small)/(lr - lr_small) == (W - W_big)/(lr_big - ...): both runs
  // share the same gradient, so updates are proportional to learning rate.
  // Compare first few entries.
  for (int64_t i = 0; i < 5; ++i) {
    const double grad_big =
        (updated_small.at(i) - updated.at(i)) / (0.05 - 0.0005);
    const double grad_small = updated_small.at(i);
    (void)grad_small;
    EXPECT_TRUE(std::isfinite(grad_big));
  }
}

TEST(Numeric, SplitPreservesTrainingSemantics) {
  // The paper's §5.2 claim, verified with real numbers: batch-splitting a
  // forward matmul changes the schedule's solution space but not the math.
  Graph original = Mlp();
  Graph split_graph = Mlp();
  const OpId fc1 = split_graph.FindOp("fc1");
  ASSERT_TRUE(CanSplit(split_graph, fc1, SplitDim::kBatch, 2));
  SplitOperation(split_graph, fc1, SplitDim::kBatch, 2);
  split_graph.Validate();

  const NumericResult a = ExecuteNumerically(original);
  const NumericResult b = ExecuteNumerically(split_graph);
  EXPECT_NEAR(a.loss, b.loss, 1e-5);
  for (const auto& [name, tensor] : a.parameters) {
    ASSERT_TRUE(b.parameters.count(name)) << name;
    EXPECT_LT(Tensor::MaxAbsDiff(tensor, b.parameters.at(name)), 1e-5)
        << name;
  }
}

TEST(Numeric, RepeatedSplitsStillPreserveSemantics) {
  Graph original = Mlp(12);
  Graph split_graph = Mlp(12);
  SplitOperation(split_graph, split_graph.FindOp("fc1"), SplitDim::kBatch,
                 3);
  // Split a partition again (uneven sizes exercise remainder handling).
  const OpId part = split_graph.FindOp("fc1/part0");
  ASSERT_NE(part, kInvalidOp);
  if (CanSplit(split_graph, part, SplitDim::kBatch, 2))
    SplitOperation(split_graph, part, SplitDim::kBatch, 2);

  const NumericResult a = ExecuteNumerically(original);
  const NumericResult b = ExecuteNumerically(split_graph);
  EXPECT_NEAR(a.loss, b.loss, 1e-5);
}

TEST(Numeric, SplitOfGradToMatMulPreservesSemantics) {
  Graph original = Mlp();
  Graph split_graph = Mlp();
  // The dX matmul generated toward fc1's relu output.
  OpId dx = kInvalidOp;
  for (OpId id : split_graph.LiveOps()) {
    const auto& op = split_graph.op(id);
    if (op.type == OpType::kMatMul && Contains(op.name, "/grad_to/"))
      dx = id;
  }
  ASSERT_NE(dx, kInvalidOp);
  ASSERT_TRUE(CanSplit(split_graph, dx, SplitDim::kBatch, 2));
  SplitOperation(split_graph, dx, SplitDim::kBatch, 2);

  const NumericResult a = ExecuteNumerically(original);
  const NumericResult b = ExecuteNumerically(split_graph);
  EXPECT_NEAR(a.loss, b.loss, 1e-5);
  for (const auto& [name, tensor] : a.parameters)
    EXPECT_LT(Tensor::MaxAbsDiff(tensor, b.parameters.at(name)), 1e-5)
        << name;
}

TEST(Numeric, BatchSplitOfWeightGradientIsRejected) {
  // Concat cannot express the sum a weight gradient needs over the batch —
  // CanSplit must refuse (reduces_batch).
  Graph g = Mlp();
  const OpId wgrad = g.FindOp("fc1/wgrad");
  ASSERT_NE(wgrad, kInvalidOp);
  EXPECT_FALSE(CanSplit(g, wgrad, SplitDim::kBatch, 2));
}

TEST(Numeric, DataParallelAggregationEqualsLargeBatchGradient) {
  // Two replicas at batch 4 with gradient aggregation produce the SUM of
  // per-shard gradients; verify the aggregation path runs and every shared
  // parameter receives exactly one update.
  auto dp = BuildDataParallel(BuildMlp, "mlp", 8, 2, Scaling::kStrong);
  const NumericResult r = ExecuteNumerically(dp.graph);
  EXPECT_GT(r.loss, 0.0);
  for (const char* var :
       {"rep0/fc1/weights", "rep0/fc2/weights", "rep0/fc1_bias/weights"}) {
    EXPECT_TRUE(r.parameters.count(var)) << var;
  }
  EXPECT_EQ(r.parameters.size(), 4u);  // fc1, fc1_bias, fc2, fc2_bias
}

// Small conv net: 8x8x3 -> conv3x3(4) -> relu -> dense -> xent, batch 6.
void BuildConvNet(Graph& g, const std::string& prefix, int64_t batch) {
  ModelBuilder mb(g, prefix, batch);
  const OpId x = mb.Input("x", TensorShape{batch, 8, 8, 3});
  OpId h = mb.Conv2D("conv1", x, 3, 4, 1, /*same=*/true);
  h = mb.Relu("relu1", h);
  h = mb.Conv2D("conv2", h, 3, 4, 1, /*same=*/true);
  h = mb.Relu("relu2", h);
  h = mb.Dense("fc", h, 5);
  mb.SoftmaxCrossEntropy("loss", h, 5);
  mb.Finish();
}

TEST(Numeric, ConvNetTrainsWithFiniteLoss) {
  Graph g("convnet");
  BuildConvNet(g, "", 6);
  const NumericResult r = ExecuteNumerically(g);
  EXPECT_GT(r.loss, 0.0);
  EXPECT_LT(r.loss, 50.0);
  EXPECT_TRUE(r.parameters.count("conv1/weights"));
  EXPECT_TRUE(r.parameters.count("conv2/weights"));
}

TEST(Numeric, ConvBatchSplitPreservesTrainingSemantics) {
  // The split Tables 5/6 actually perform — a convolution partitioned on
  // the batch dimension — verified numerically end to end.
  Graph original("convnet");
  BuildConvNet(original, "", 6);
  Graph split_graph("convnet");
  BuildConvNet(split_graph, "", 6);
  const OpId conv = split_graph.FindOp("conv2");
  ASSERT_TRUE(CanSplit(split_graph, conv, SplitDim::kBatch, 3));
  SplitOperation(split_graph, conv, SplitDim::kBatch, 3);
  split_graph.Validate();

  const NumericResult a = ExecuteNumerically(original);
  const NumericResult b = ExecuteNumerically(split_graph);
  EXPECT_NEAR(a.loss, b.loss, 1e-4);
  for (const auto& [name, tensor] : a.parameters) {
    ASSERT_TRUE(b.parameters.count(name)) << name;
    EXPECT_LT(Tensor::MaxAbsDiff(tensor, b.parameters.at(name)), 1e-4)
        << name;
  }
}

TEST(Numeric, ConvBackpropInputSplitPreservesSemantics) {
  Graph original("convnet");
  BuildConvNet(original, "", 6);
  Graph split_graph("convnet");
  BuildConvNet(split_graph, "", 6);
  OpId dx = kInvalidOp;
  for (OpId id : split_graph.LiveOps())
    if (split_graph.op(id).type == OpType::kConv2DBackpropInput) dx = id;
  ASSERT_NE(dx, kInvalidOp);
  ASSERT_TRUE(CanSplit(split_graph, dx, SplitDim::kBatch, 2));
  SplitOperation(split_graph, dx, SplitDim::kBatch, 2);

  const NumericResult a = ExecuteNumerically(original);
  const NumericResult b = ExecuteNumerically(split_graph);
  EXPECT_NEAR(a.loss, b.loss, 1e-4);
  for (const auto& [name, tensor] : a.parameters)
    EXPECT_LT(Tensor::MaxAbsDiff(tensor, b.parameters.at(name)), 1e-4)
        << name;
}

TEST(Numeric, TensorHelpers) {
  Tensor t(TensorShape{4, 3});
  for (int64_t i = 0; i < t.size(); ++i) t.at(i) = static_cast<float>(i);
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.row_size(), 3);
  const Tensor slice = t.SliceRows(1, 3);
  EXPECT_EQ(slice.rows(), 2);
  EXPECT_FLOAT_EQ(slice.at(0), 3.0f);
  const Tensor back = ConcatRows({t.SliceRows(0, 1), t.SliceRows(1, 4)});
  EXPECT_EQ(Tensor::MaxAbsDiff(back, t), 0.0);
  EXPECT_TRUE(std::isinf(
      Tensor::MaxAbsDiff(t, Tensor(TensorShape{2, 2}))));
}

TEST(Numeric, UnsupportedOpsThrow) {
  Graph g;
  Operation conv;
  conv.name = "conv";
  conv.type = OpType::kConv2D;
  conv.output_shape = TensorShape{1, 2, 2, 1};
  g.AddOp(std::move(conv));
  EXPECT_THROW(ExecuteNumerically(g), std::logic_error);
}

}  // namespace
}  // namespace fastt
