// Placement-decision provenance and cost-model calibration: the records
// behind `fastt explain` / `fastt calibrate`.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/strategy_calculator.h"
#include "models/model_zoo.h"
#include "obs/calibration.h"
#include "obs/json.h"
#include "obs/provenance.h"
#include "sim/exec_sim.h"

namespace fastt {
namespace {

// One provenance-recording FastT run shared by the tests below (the workflow
// is deterministic for a fixed seed, and re-running it per test is the
// expensive part).
const CalculatorResult& LenetWithProvenance() {
  static const CalculatorResult* ft = [] {
    const ModelSpec& spec = FindModel("lenet");
    CalculatorOptions options;
    options.record_provenance = true;
    return new CalculatorResult(RunFastT(spec.build, spec.name,
                                         spec.strong_batch, Scaling::kStrong,
                                         Cluster::SingleServer(2), options));
  }();
  return *ft;
}

TEST(Provenance, RecordsEveryLiveOpWithFullCandidateTable) {
  const CalculatorResult& ft = LenetWithProvenance();
  ASSERT_FALSE(ft.provenance.empty());
  EXPECT_EQ(ft.provenance.size(),
            static_cast<size_t>(ft.graph.num_live_ops()));
  for (const PlacementDecision& dec : ft.provenance) {
    ASSERT_EQ(dec.candidates.size(), 2u) << dec.op_name;
    EXPECT_GE(dec.chosen, 0);
    EXPECT_LT(dec.chosen, 2);
    // The chosen device matches the committed strategy's placement.
    EXPECT_EQ(dec.chosen, ft.strategy.placement[static_cast<size_t>(dec.op)]);
    bool chosen_listed = false;
    for (const CandidateScore& c : dec.candidates) {
      if (c.device == dec.chosen) {
        chosen_listed = true;
        EXPECT_FALSE(c.memory_rejected) << dec.op_name;
      }
      if (!c.memory_rejected) EXPECT_TRUE(std::isfinite(c.score_s));
      EXPECT_LE(c.est_s, c.eft_s + 1e-12) << dec.op_name;
    }
    EXPECT_TRUE(chosen_listed) << dec.op_name;
  }
}

TEST(Provenance, ExplainRendersChosenRejectedAndRealized) {
  const CalculatorResult& ft = LenetWithProvenance();
  // Empty needle matches every decision — the full report must show the
  // chosen device, the reason code, at least one rejected candidate with its
  // EFT delta, and predicted-vs-realized durations.
  const std::string out = ExplainOps(ft, "");
  EXPECT_NE(out.find("chosen: gpu"), std::string::npos);
  EXPECT_NE(out.find("reason="), std::string::npos);
  EXPECT_NE(out.find("<- chosen"), std::string::npos);
  EXPECT_NE(out.find("eft delta"), std::string::npos);
  EXPECT_NE(out.find("predicted"), std::string::npos);
  EXPECT_NE(out.find("realized"), std::string::npos);
  // A needle that matches nothing says so instead of printing nothing.
  const std::string miss = ExplainOps(ft, "no_such_op_name");
  EXPECT_NE(miss.find("no recorded op matches"), std::string::npos);
}

TEST(Provenance, RecordingDoesNotChangeTheStrategy) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster c = Cluster::SingleServer(2);
  CalculatorOptions off;
  const auto plain = RunFastT(spec.build, spec.name, spec.strong_batch,
                              Scaling::kStrong, c, off);
  EXPECT_TRUE(plain.provenance.empty());
  EXPECT_TRUE(plain.split_trials.empty());
  const CalculatorResult& recorded = LenetWithProvenance();
  // Recording is observation only: same search, same strategy, same speed.
  EXPECT_EQ(plain.strategy.placement, recorded.strategy.placement);
  EXPECT_EQ(plain.iteration_s, recorded.iteration_s);
  EXPECT_EQ(plain.rounds, recorded.rounds);
}

TEST(Provenance, JsonExportValidates) {
  const CalculatorResult& ft = LenetWithProvenance();
  const std::string json = ProvenanceToJson(ft.provenance, ft.split_trials);
  std::string error;
  EXPECT_TRUE(JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find("\"decisions\""), std::string::npos);
  EXPECT_NE(json.find("\"split_trials\""), std::string::npos);
}

// ---- calibration ----------------------------------------------------------

TEST(Calibration, JoinComputesResidualsAndPairDiagnostics) {
  Graph g("toy");
  Operation a;
  a.name = "a";
  a.type = OpType::kMatMul;
  a.output_shape = TensorShape{250};
  const OpId ida = g.AddOp(std::move(a));
  Operation b;
  b.name = "b";
  b.type = OpType::kMatMul;
  b.output_shape = TensorShape{250};
  const OpId idb = g.AddOp(std::move(b));
  g.AddEdge(ida, idb, 1000);

  const std::vector<double> predicted = {0.010, 0.020};
  const std::vector<DeviceId> placement = {0, 1};

  // The model the scheduler consulted: a perfect 1 us/KB line through 0.
  CommCostModel comm_before;
  comm_before.AddSample(0, 1, 1000, 0.001);
  comm_before.AddSample(0, 1, 2000, 0.002);

  // Realized run: op a exactly as predicted, op b 25% slower, the transfer
  // twice as slow as the model priced it.
  SimResult realized;
  realized.op_records.assign(2, OpRecord{});
  realized.op_records[0] = {ida, 0, 0.0, 0.010};
  realized.op_records[1] = {idb, 1, 0.020, 0.045};
  TransferRecord t;
  t.src_op = ida;
  t.dst_op = idb;
  t.src = 0;
  t.dst = 1;
  t.bytes = 1000;
  t.start = 0.010;
  t.arrival = 0.012;
  realized.transfers.push_back(t);

  const CalibrationRound cal =
      ComputeCalibration(g, predicted, placement, comm_before, realized);

  ASSERT_EQ(cal.residuals.size(), 2u);
  EXPECT_EQ(cal.residuals[0].name, "a");
  EXPECT_NEAR(cal.residuals[0].rel_err, 0.0, 1e-12);
  EXPECT_EQ(cal.residuals[1].name, "b");
  EXPECT_NEAR(cal.residuals[1].realized_s, 0.025, 1e-12);
  EXPECT_NEAR(cal.residuals[1].rel_err, -0.2, 1e-12);
  EXPECT_EQ(cal.comp.n, 2);
  EXPECT_NEAR(cal.comp.max, 0.2, 1e-12);

  ASSERT_EQ(cal.comm_residuals.size(), 1u);
  EXPECT_NEAR(cal.comm_residuals[0].predicted_s, 0.001, 1e-9);
  EXPECT_NEAR(cal.comm_residuals[0].realized_s, 0.002, 1e-12);
  EXPECT_NEAR(cal.comm_residuals[0].rel_err, -0.5, 1e-6);

  ASSERT_EQ(cal.pairs.size(), 1u);
  EXPECT_EQ(cal.pairs[0].src, 0);
  EXPECT_EQ(cal.pairs[0].dst, 1);
  EXPECT_NEAR(cal.pairs[0].slope_s_per_byte, 1e-6, 1e-12);
  EXPECT_EQ(cal.pairs[0].round_transfers, 1);
  EXPECT_NEAR(cal.pairs[0].mean_rel_err, 0.5, 1e-6);

  // Post-mortem candidates are sorted by absolute error: b (5 ms off) first.
  ASSERT_FALSE(cal.postmortem.top_mispredicted.empty());
  EXPECT_EQ(cal.postmortem.top_mispredicted.front().name, "b");
}

TEST(Calibration, ReportNamesRolledBackRounds) {
  CalibrationRound cal;
  cal.round = 1;
  cal.committed = false;
  cal.oom = false;
  cal.postmortem.rolled_back = true;
  OpResidual r;
  r.name = "conv1";
  r.device = 0;
  r.predicted_s = 0.001;
  r.realized_s = 0.003;
  r.abs_err_s = 0.002;
  r.rel_err = -2.0 / 3.0;
  cal.postmortem.top_mispredicted.push_back(r);
  const std::string report = RenderCalibrationReport({cal});
  EXPECT_NE(report.find("rollback post-mortem, round 1"), std::string::npos);
  EXPECT_NE(report.find("slower than incumbent"), std::string::npos);
  EXPECT_NE(report.find("conv1"), std::string::npos);
}

TEST(Calibration, EndToEndOneRoundPerHistoryEntry) {
  const CalculatorResult& ft = LenetWithProvenance();
  ASSERT_EQ(ft.calibration.size(), ft.round_history.size());
  for (size_t i = 0; i < ft.calibration.size(); ++i) {
    const CalibrationRound& cal = ft.calibration[i];
    const RoundSummary& r = ft.round_history[i];
    EXPECT_EQ(cal.round, r.round);
    EXPECT_EQ(cal.committed, r.committed);
    EXPECT_EQ(cal.oom, r.oom);
    EXPECT_EQ(cal.postmortem.rolled_back, !r.committed);
    // The round summary's digest mirrors the full audit.
    EXPECT_EQ(r.comp_err_p50, cal.comp.p50);
    EXPECT_EQ(r.comp_err_p90, cal.comp.p90);
    EXPECT_EQ(r.comp_err_max, cal.comp.max);
    EXPECT_FALSE(cal.residuals.empty());
  }
  std::string error;
  const std::string json = CalibrationToJson("lenet", ft.calibration);
  EXPECT_TRUE(JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find("\"fastt_calibration\""), std::string::npos);
}

}  // namespace
}  // namespace fastt
