#include <gtest/gtest.h>

#include <cmath>

#include "cost/comm_cost.h"
#include "cost/comp_cost.h"
#include "cost/cost_table.h"
#include "cost/linreg.h"
#include "cost/stability.h"
#include "graph/graph.h"

namespace fastt {
namespace {

TEST(LinearRegression, RecoversExactLine) {
  LinearRegression lr;
  for (double x : {1.0, 2.0, 5.0, 9.0}) lr.Add(x, 3.0 + 2.0 * x);
  EXPECT_NEAR(lr.intercept(), 3.0, 1e-9);
  EXPECT_NEAR(lr.slope(), 2.0, 1e-9);
  EXPECT_NEAR(lr.Predict(10.0), 23.0, 1e-9);
}

TEST(LinearRegression, SinglePointIsConstant) {
  LinearRegression lr;
  lr.Add(4.0, 7.0);
  EXPECT_DOUBLE_EQ(lr.slope(), 0.0);
  EXPECT_DOUBLE_EQ(lr.Predict(100.0), 7.0);
}

TEST(LinearRegression, IdenticalXFallsBackToMean) {
  LinearRegression lr;
  lr.Add(5.0, 10.0);
  lr.Add(5.0, 20.0);
  EXPECT_DOUBLE_EQ(lr.slope(), 0.0);
  EXPECT_NEAR(lr.Predict(5.0), 15.0, 1e-9);
}

TEST(LinearRegression, EmptyPredictsZero) {
  LinearRegression lr;
  EXPECT_DOUBLE_EQ(lr.Predict(42.0), 0.0);
}

TEST(CompCost, LookupAveragesSamples) {
  CompCostModel m;
  m.AddSample("conv1", 0, 0.010);
  m.AddSample("conv1", 0, 0.020);
  ASSERT_TRUE(m.Lookup("conv1", 0).has_value());
  EXPECT_NEAR(*m.Lookup("conv1", 0), 0.015, 1e-12);
  EXPECT_FALSE(m.Lookup("conv1", 1).has_value());
  EXPECT_FALSE(m.Lookup("conv2", 0).has_value());
}

TEST(CompCost, ExplorationPricesUnknownAtZero) {
  CompCostModel m;
  Operation op;
  op.name = "mystery";
  EXPECT_DOUBLE_EQ(m.EstimateOrExplore(op, 0), 0.0);
}

TEST(CompCost, BasisFallbackScales) {
  CompCostModel m;
  m.AddSample("conv1", 2, 0.010);
  Operation sub;
  sub.name = "conv1/part0";
  sub.cost_key = "conv1#batch/2";
  sub.cost_basis_key = "conv1";
  sub.cost_scale = 0.5;
  EXPECT_NEAR(m.EstimateOrExplore(sub, 2), 0.005, 1e-12);
  // Exact profile takes precedence over the basis once it exists.
  m.AddSample("conv1#batch/2", 2, 0.008);
  EXPECT_NEAR(m.EstimateOrExplore(sub, 2), 0.008, 1e-12);
}

TEST(CompCost, MaxTimeOverDevices) {
  CompCostModel m;
  m.AddSample("op", 0, 0.003);
  m.AddSample("op", 2, 0.007);
  Operation op;
  op.name = "op";
  EXPECT_NEAR(m.MaxTimeOverDevices(op, 4), 0.007, 1e-12);
}

TEST(CompCost, SerializeRoundTrip) {
  CompCostModel m;
  m.AddSample("a", 0, 0.001);
  m.AddSample("a", 0, 0.003);
  m.AddSample("b", 1, 0.5);
  const CompCostModel copy = CompCostModel::Deserialize(m.Serialize());
  EXPECT_NEAR(*copy.Lookup("a", 0), 0.002, 1e-9);
  EXPECT_NEAR(*copy.Lookup("b", 1), 0.5, 1e-9);
  EXPECT_EQ(copy.num_entries(), 2u);
}

TEST(CompCost, KnowsAndClear) {
  CompCostModel m;
  EXPECT_FALSE(m.Knows("x"));
  m.AddSample("x", 0, 1.0);
  EXPECT_TRUE(m.Knows("x"));
  m.Clear();
  EXPECT_FALSE(m.Knows("x"));
}

TEST(CommCost, SameDeviceIsFree) {
  CommCostModel m;
  EXPECT_DOUBLE_EQ(m.Estimate(1, 1, 1 << 20), 0.0);
}

TEST(CommCost, UnknownPairExplores) {
  CommCostModel m;
  EXPECT_DOUBLE_EQ(m.Estimate(0, 1, 1 << 20), 0.0);
  EXPECT_FALSE(m.KnowsPair(0, 1));
}

TEST(CommCost, RecoversLatencyAndBandwidth) {
  CommCostModel m;
  // Ground truth: 10 us latency + bytes / 10 GB/s.
  auto truth = [](int64_t bytes) { return 1e-5 + bytes / 10e9; };
  for (int64_t bytes : {int64_t{1} << 20, int64_t{1} << 26})
    m.AddSample(0, 1, bytes, truth(bytes));
  ASSERT_TRUE(m.KnowsPair(0, 1));
  const auto [intercept, slope] = *m.InterceptSlope(0, 1);
  EXPECT_NEAR(intercept, 1e-5, 1e-7);
  EXPECT_NEAR(1.0 / slope, 10e9, 1e7);
  EXPECT_NEAR(m.Estimate(0, 1, 100 << 20), truth(100 << 20), 1e-4);
}

TEST(CommCost, PairsAreIndependentAndDirectional) {
  CommCostModel m;
  m.AddSample(0, 1, 1000, 1.0);
  EXPECT_GT(m.Estimate(0, 1, 1000), 0.0);
  EXPECT_DOUBLE_EQ(m.Estimate(1, 0, 1000), 0.0);
}

TEST(CommCost, MaxOverPairs) {
  CommCostModel m;
  m.AddSample(0, 1, 1 << 20, 0.001);
  m.AddSample(0, 1, 1 << 22, 0.004);
  m.AddSample(2, 3, 1 << 20, 0.010);
  m.AddSample(2, 3, 1 << 22, 0.040);
  EXPECT_NEAR(m.MaxOverPairs(1 << 22), 0.040, 1e-6);
}

TEST(CommCost, NegativePredictionsClampToZero) {
  CommCostModel m;
  // Descending samples produce a negative slope; estimates must stay >= 0.
  m.AddSample(0, 1, 100, 1.0);
  m.AddSample(0, 1, 200, 0.1);
  EXPECT_GE(m.Estimate(0, 1, 100000), 0.0);
}

TEST(CommCost, SerializeRoundTrip) {
  CommCostModel m;
  m.AddSample(0, 1, 1 << 20, 1e-5 + (1 << 20) / 9e9);
  m.AddSample(0, 1, 1 << 26, 1e-5 + (1 << 26) / 9e9);
  m.AddSample(2, 0, 1 << 20, 5e-5 + (1 << 20) / 3e9);
  m.AddSample(2, 0, 1 << 24, 5e-5 + (1 << 24) / 3e9);
  const CommCostModel copy = CommCostModel::Deserialize(m.Serialize());
  EXPECT_EQ(copy.num_pairs(), 2u);
  for (int64_t bytes : {int64_t{1} << 21, int64_t{1} << 25}) {
    EXPECT_NEAR(copy.Estimate(0, 1, bytes), m.Estimate(0, 1, bytes), 1e-9);
    EXPECT_NEAR(copy.Estimate(2, 0, bytes), m.Estimate(2, 0, bytes), 1e-9);
  }
  EXPECT_FALSE(copy.KnowsPair(1, 0));
}

TEST(Stability, StableAfterRepeatedObservations) {
  CompCostModel m;
  m.AddSample("op", 0, 0.010);
  StabilityDetector detector(0.05, 2);
  EXPECT_FALSE(detector.IsStable());
  detector.Observe(m, 1, {"op"});  // first observation: new entries
  EXPECT_FALSE(detector.IsStable());
  m.AddSample("op", 0, 0.0101);
  detector.Observe(m, 1, {"op"});
  m.AddSample("op", 0, 0.0099);
  detector.Observe(m, 1, {"op"});
  EXPECT_TRUE(detector.IsStable());
}

TEST(Stability, NewKeyResetsStability) {
  CompCostModel m;
  m.AddSample("op", 0, 0.010);
  StabilityDetector detector(0.05, 1);
  detector.Observe(m, 1, {"op"});
  detector.Observe(m, 1, {"op"});
  EXPECT_TRUE(detector.IsStable());
  m.AddSample("new_op", 0, 1.0);
  detector.Observe(m, 1, {"op", "new_op"});
  EXPECT_FALSE(detector.IsStable());
}

TEST(Stability, LargeChangeResetsCounter) {
  CompCostModel m;
  m.AddSample("op", 0, 0.010);
  StabilityDetector detector(0.05, 1);
  detector.Observe(m, 1, {"op"});
  // Shift the mean by >5%.
  for (int i = 0; i < 10; ++i) m.AddSample("op", 0, 0.030);
  const double change = detector.Observe(m, 1, {"op"});
  EXPECT_GT(change, 0.05);
  EXPECT_FALSE(detector.IsStable());
}

TEST(Stability, WindowStatisticsExposed) {
  CompCostModel m;
  m.AddSample("a", 0, 0.010);
  m.AddSample("b", 0, 0.020);
  StabilityDetector detector(0.05, 2);
  EXPECT_DOUBLE_EQ(detector.tolerance(), 0.05);
  EXPECT_EQ(detector.patience(), 2);

  // Before any observation the stats are the defaults.
  EXPECT_TRUE(detector.last_stats().new_entries);
  EXPECT_TRUE(std::isinf(detector.last_stats().max_change));

  // First observation: everything is new, the clock is reset.
  detector.Observe(m, 1, {"a", "b"});
  const StabilityStats first = detector.last_stats();
  EXPECT_TRUE(first.new_entries);
  EXPECT_EQ(first.entries, 0);
  EXPECT_TRUE(std::isinf(first.max_change));
  EXPECT_TRUE(std::isinf(first.margin));
  EXPECT_LT(first.margin, 0.0);
  EXPECT_EQ(first.stable_rounds, 0);

  // "a" mean moves 0.010 -> 0.0105 (+5%), "b" stays: max 0.05, mean 0.025.
  m.AddSample("a", 0, 0.011);
  detector.Observe(m, 1, {"a", "b"});
  const StabilityStats second = detector.last_stats();
  EXPECT_FALSE(second.new_entries);
  EXPECT_EQ(second.entries, 2);
  EXPECT_NEAR(second.max_change, 0.05, 1e-12);
  EXPECT_NEAR(second.mean_change, 0.025, 1e-12);
  EXPECT_NEAR(second.stddev_change, 0.05 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(second.margin, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(second.tolerance, 0.05);
  EXPECT_EQ(second.stable_rounds, 1);
  EXPECT_FALSE(detector.IsStable());

  // No further movement: stable after `patience` quiet rounds.
  detector.Observe(m, 1, {"a", "b"});
  const StabilityStats third = detector.last_stats();
  EXPECT_DOUBLE_EQ(third.max_change, 0.0);
  EXPECT_NEAR(third.margin, 0.05, 1e-12);
  EXPECT_EQ(third.stable_rounds, 2);
  EXPECT_TRUE(detector.IsStable());
}

TEST(LinearRegression, RSquaredPerfectAndNoisy) {
  LinearRegression exact;
  for (double x : {1.0, 2.0, 5.0, 9.0}) exact.Add(x, 3.0 + 2.0 * x);
  EXPECT_NEAR(exact.r_squared(), 1.0, 1e-12);

  LinearRegression noisy;
  noisy.Add(1.0, 5.1);
  noisy.Add(2.0, 6.8);
  noisy.Add(3.0, 9.3);
  noisy.Add(4.0, 10.6);
  EXPECT_GT(noisy.r_squared(), 0.9);
  EXPECT_LT(noisy.r_squared(), 1.0);

  // Degenerate cases: <2 points and constant y are "perfectly explained";
  // constant x with varying y explains nothing.
  LinearRegression empty;
  EXPECT_DOUBLE_EQ(empty.r_squared(), 1.0);
  LinearRegression constant_y;
  constant_y.Add(1.0, 4.0);
  constant_y.Add(2.0, 4.0);
  EXPECT_DOUBLE_EQ(constant_y.r_squared(), 1.0);
  LinearRegression constant_x;
  constant_x.Add(5.0, 1.0);
  constant_x.Add(5.0, 9.0);
  EXPECT_DOUBLE_EQ(constant_x.r_squared(), 0.0);
}

TEST(CommCost, FitExposesRegressionDiagnostics) {
  CommCostModel m;
  EXPECT_FALSE(m.Fit(0, 1).has_value());
  EXPECT_TRUE(m.KnownPairs().empty());
  // Exact line: 10 us latency + 1 GB/s.
  for (int64_t bytes : {int64_t{1} << 20, int64_t{1} << 24, int64_t{1} << 26})
    m.AddSample(0, 1, bytes, 1e-5 + static_cast<double>(bytes) / 1e9);
  const auto fit = m.Fit(0, 1);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->intercept, 1e-5, 1e-9);
  EXPECT_NEAR(fit->slope, 1e-9, 1e-15);
  EXPECT_NEAR(fit->r2, 1.0, 1e-9);
  EXPECT_EQ(fit->samples, 3u);
  const auto pairs = m.KnownPairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, 0);
  EXPECT_EQ(pairs[0].second, 1);
}

// A tiny graph whose ops have distinct cost keys.
Graph CostTableGraph() {
  Graph g;
  for (int i = 0; i < 3; ++i) {
    Operation op;
    op.name = "t" + std::to_string(i);
    op.type = i == 0 ? OpType::kMatMul : OpType::kRelu;
    op.output_shape = TensorShape{8 << i};
    op.flops = 1e6 * (i + 1);
    g.AddOp(std::move(op));
  }
  return g;
}

TEST(CompCostTable, MatchesTheModelItSnapshotted) {
  const Graph g = CostTableGraph();
  CompCostModel comp;
  comp.AddSample(g.op(0).CostKey(), 0, 0.002);
  comp.AddSample(g.op(0).CostKey(), 1, 0.004);
  comp.AddSample(g.op(1).CostKey(), 1, 0.001);
  const CompCostTable table(g, comp, 2);
  for (OpId id : g.LiveOps()) {
    for (DeviceId d = 0; d < 2; ++d)
      EXPECT_EQ(table.Time(id, d), comp.EstimateOrExplore(g.op(id), d))
          << "op " << id << " dev " << d;
    EXPECT_EQ(table.MaxOverDevices(id),
              comp.MaxTimeOverDevices(g.op(id), 2));
  }
  EXPECT_TRUE(table.Fresh(g, comp));
}

TEST(CompCostTable, GoesStaleWhenTheModelLearns) {
  const Graph g = CostTableGraph();
  CompCostModel comp;
  const CompCostTable table(g, comp, 2);
  EXPECT_TRUE(table.Fresh(g, comp));
  comp.AddSample(g.op(0).CostKey(), 0, 0.003);
  EXPECT_FALSE(table.Fresh(g, comp));
  // A rebuilt snapshot is fresh again and reflects the new sample.
  const CompCostTable rebuilt(g, comp, 2);
  EXPECT_TRUE(rebuilt.Fresh(g, comp));
  EXPECT_EQ(rebuilt.Time(0, 0), comp.EstimateOrExplore(g.op(0), 0));
}

TEST(CompCostTable, GoesStaleWhenTheGraphGrows) {
  Graph g = CostTableGraph();
  CompCostModel comp;
  const CompCostTable table(g, comp, 2);
  Operation op;
  op.name = "extra";
  op.type = OpType::kRelu;
  op.output_shape = TensorShape{4};
  g.AddOp(std::move(op));
  EXPECT_FALSE(table.Fresh(g, comp));
}

TEST(CommCostTable, MatchesTheModelItSnapshotted) {
  CommCostModel comm;
  for (int64_t bytes : {1 << 10, 1 << 16, 1 << 20})
    comm.AddSample(0, 1, bytes, 1e-5 + 1e-9 * static_cast<double>(bytes));
  comm.AddSample(1, 0, 1 << 16, 3e-4);
  const CommCostTable table(comm, 2);
  for (int64_t bytes : {0L, 1L << 12, 1L << 20}) {
    for (DeviceId s = 0; s < 2; ++s)
      for (DeviceId d = 0; d < 2; ++d)
        EXPECT_EQ(table.Estimate(s, d, bytes), comm.Estimate(s, d, bytes));
    EXPECT_EQ(table.MaxOverPairs(bytes), comm.MaxOverPairs(bytes));
  }
  EXPECT_TRUE(table.Fresh(comm));
  comm.AddSample(0, 1, 1 << 8, 2e-5);
  EXPECT_FALSE(table.Fresh(comm));
}

TEST(CommCostTable, UnknownPairsExplore) {
  CommCostModel comm;
  const CommCostTable table(comm, 3);
  EXPECT_EQ(table.Estimate(0, 2, 1 << 20), 0.0);
  EXPECT_EQ(table.Estimate(1, 1, 1 << 20), 0.0);
}

}  // namespace
}  // namespace fastt
