// TelemetryContext: request-scoped telemetry isolation. The contract under
// test is the tentpole of the observability layer — two contexts running
// interleaved searches on different threads must each collect exactly the
// telemetry a serial run would, the thread pool must propagate the
// submitter's ambient bindings to its workers, nested scopes must restore,
// and an aborted process must leave a readable fastt-blackbox/1 dump.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "core/os_dpos.h"
#include "core/strategy_io.h"
#include "models/model_zoo.h"
#include "obs/blackbox.h"
#include "obs/context.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/exec_sim.h"
#include "sim/profiler.h"
#include "util/thread_pool.h"

namespace fastt {
namespace {

// Restores jobs = 1 (the suite-wide default) even when a test fails.
class JobsGuard {
 public:
  ~JobsGuard() { SetSearchJobs(1); }
};

TEST(TelemetryContextTest, ScopeRoutesMetricsEventsAndRestores) {
  MetricsRegistry& process = MetricsRegistry::Global();
  const auto process_before = process.TakeSnapshot().counters;

  TelemetryContext context;
  {
    TelemetryScope scope(context);
    ASSERT_EQ(&CurrentTelemetry(), &context);
    CurrentMetrics().AddCounter("ctx/hits", 2);
    CurrentEventLog().Emit("ping").Int("n", 1);
  }
  // Scope exited: ambient resolution is back to the process context.
  EXPECT_TRUE(CurrentTelemetry().is_process());
  EXPECT_EQ(&CurrentMetrics(), &process);

  const auto counters = context.metrics().TakeSnapshot().counters;
  EXPECT_EQ(counters.at("ctx/hits"), 2);
  EXPECT_EQ(context.events().size(), 1u);
  // Nothing leaked into the process registry.
  EXPECT_EQ(process.TakeSnapshot().counters, process_before);
}

TEST(TelemetryContextTest, NestedScopesNeverCrossContaminate) {
  TelemetryContext outer;
  TelemetryContext inner;
  {
    TelemetryScope outer_scope(outer);
    CurrentMetrics().AddCounter("depth/outer");
    {
      TelemetryScope inner_scope(inner);
      ASSERT_EQ(&CurrentTelemetry(), &inner);
      CurrentMetrics().AddCounter("depth/inner");
      CurrentEventLog().Emit("inner");
    }
    // Innermost scope gone: back to the outer context, not the process.
    ASSERT_EQ(&CurrentTelemetry(), &outer);
    CurrentMetrics().AddCounter("depth/outer");
    CurrentEventLog().Emit("outer");
  }
  const auto outer_counters = outer.metrics().TakeSnapshot().counters;
  const auto inner_counters = inner.metrics().TakeSnapshot().counters;
  EXPECT_EQ(outer_counters.at("depth/outer"), 2);
  EXPECT_EQ(outer_counters.count("depth/inner"), 0u);
  EXPECT_EQ(inner_counters.at("depth/inner"), 1);
  EXPECT_EQ(inner_counters.count("depth/outer"), 0u);
  EXPECT_EQ(outer.events().size(), 1u);
  EXPECT_EQ(inner.events().size(), 1u);
}

TEST(TelemetryContextTest, ParallelForPropagatesAmbientBindings) {
  JobsGuard guard;
  SetSearchJobs(4);
  const auto process_before =
      MetricsRegistry::Global().TakeSnapshot().counters;

  TelemetryContext context;
  {
    TelemetryScope scope(context);
    ParallelFor(64, [&](size_t) {
      // Workers resolve the submitter's context, not the process one.
      CurrentMetrics().AddCounter("pool/chunk");
    });
  }
  EXPECT_EQ(context.metrics().TakeSnapshot().counters.at("pool/chunk"), 64);
  EXPECT_EQ(MetricsRegistry::Global().TakeSnapshot().counters,
            process_before);

  // Outside any scope the same fan-out lands in the process registry.
  ParallelFor(8, [&](size_t) { CurrentMetrics().AddCounter("pool/global"); });
  EXPECT_EQ(MetricsRegistry::Global().TakeSnapshot().counters.at(
                "pool/global"),
            8);
  MetricsRegistry::Global().Reset();
}

TEST(TelemetryContextTest, ContextTracerIsIsolatedFromGlobal) {
  TelemetryContext context;
  context.tracer().Enable();
  {
    TelemetryScope scope(context);
    FASTT_TRACE_SPAN("ctx/span");
  }
  context.tracer().Disable();
  const TraceDump dump = context.tracer().Drain();
  ASSERT_EQ(dump.spans.size(), 1u);
  EXPECT_STREQ(dump.spans[0].name, "ctx/span");
  // The process tracer saw nothing (it was never enabled; draining it
  // would also steal other tests' state, so just check the fast flag).
  EXPECT_FALSE(Tracer::Global().enabled());
}

// The per-context outcome of one instrumented OS-DPOS search: counters,
// the full JSONL event stream, and the committed strategy.
struct SearchOutcome {
  std::map<std::string, int64_t> counters;
  std::string events;
  std::string strategy;
};

SearchOutcome RunInstrumentedSearch(const Graph& g, const Cluster& cluster,
                                    const CompCostModel& comp,
                                    const CommCostModel& comm, int tag) {
  TelemetryContext context;
  SearchOutcome out;
  {
    TelemetryScope scope(context);
    CurrentEventLog().Emit("search_begin").Int("tag", tag);
    OsDposOptions options;
    options.max_probed_ops = 3;
    options.max_splits = 2;
    const OsDposResult result = OsDpos(g, cluster, comp, comm, options);
    CurrentEventLog()
        .Emit("search_end")
        .Int("tag", tag)
        .Int("probes", result.probes);
    out.strategy = SerializeStrategy(result.schedule.strategy);
  }
  out.counters = context.metrics().TakeSnapshot().counters;
  out.events = context.events().ToJsonl();
  return out;
}

// Cost models fed from one noisy profiled simulation (same recipe as the
// parallel-search differential tests).
void SeedCostModels(const Graph& g, const Cluster& cluster, uint64_t seed,
                    CompCostModel* comp, CommCostModel* comm) {
  std::vector<DeviceId> placement(static_cast<size_t>(g.num_slots()), 0);
  for (OpId id : g.LiveOps())
    placement[static_cast<size_t>(id)] =
        static_cast<DeviceId>(id % cluster.num_devices());
  SimOptions so;
  so.noise_cv = 0.05;
  so.seed = seed;
  const SimResult sim = Simulate(g, placement, cluster, so);
  const RunProfile profile = ExtractProfile(g, sim);
  comp->AddProfile(profile);
  comm->AddProfile(profile);
}

// The acceptance-critical property: two contexts running interleaved
// searches on different threads — sharing the process-wide search pool —
// collect byte-identical counters and event streams to the same searches
// run serially. Timers and histograms carry wall-clock and are excluded;
// everything deterministic must match exactly.
TEST(TelemetryContextTest, InterleavedSearchesMatchSerialByteForByte) {
  JobsGuard guard;
  const Cluster cluster = Cluster::SingleServer(4);
  const Graph g1 = BuildSingle(FindModel("lenet"), 16);
  const Graph g2 = BuildSingle(FindModel("alexnet"), 16);
  CompCostModel comp1, comp2;
  CommCostModel comm1, comm2;
  SeedCostModels(g1, cluster, 1, &comp1, &comm1);
  SeedCostModels(g2, cluster, 2, &comp2, &comm2);

  SetSearchJobs(2);  // both searches fan out onto the shared pool
  const SearchOutcome serial1 =
      RunInstrumentedSearch(g1, cluster, comp1, comm1, 1);
  const SearchOutcome serial2 =
      RunInstrumentedSearch(g2, cluster, comp2, comm2, 2);
  ASSERT_FALSE(serial1.counters.empty());
  ASSERT_FALSE(serial2.counters.empty());

  SearchOutcome racing1, racing2;
  std::thread t1([&] {
    racing1 = RunInstrumentedSearch(g1, cluster, comp1, comm1, 1);
  });
  std::thread t2([&] {
    racing2 = RunInstrumentedSearch(g2, cluster, comp2, comm2, 2);
  });
  t1.join();
  t2.join();

  EXPECT_EQ(racing1.counters, serial1.counters);
  EXPECT_EQ(racing2.counters, serial2.counters);
  EXPECT_EQ(racing1.events, serial1.events);
  EXPECT_EQ(racing2.events, serial2.events);
  EXPECT_EQ(racing1.strategy, serial1.strategy);
  EXPECT_EQ(racing2.strategy, serial2.strategy);
  // And the two contexts saw different work, so identical outcomes are not
  // vacuous.
  EXPECT_NE(serial1.counters, serial2.counters);
}

// A deliberately aborted process leaves a fastt-blackbox/1 dump carrying
// the final trace spans, events and metrics of its ambient context. The
// abort happens in a forked child so the dump and the death are both
// observable from the test.
TEST(BlackboxTest, AbortedProcessLeavesReadableDump) {
  const std::string path = ::testing::TempDir() + "fastt_blackbox_test.json";
  std::remove(path.c_str());

  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: arm the black-box inside a fresh context, record telemetry,
    // then die the way a CHECK failure does. No threads are created here,
    // so forking from the (single-threaded at ctest granularity) parent is
    // safe under every sanitizer.
    TelemetryContext context;
    TelemetryScope scope(context);
    InstallBlackbox(path);
    context.tracer().SetCurrentThreadName("doomed");
    context.tracer().Enable();
    {
      FASTT_TRACE_SPAN("search/total");
      FASTT_TRACE_SPAN("osdpos/probe_op");
      CurrentEventLog().Emit("probe").Int("op", 7);
    }
    CurrentMetrics().AddCounter("dpos/invocations", 3);
    std::abort();
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no black-box dump at " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonParse(buffer.str(), &doc, &error)) << error;

  const JsonValue* schema = doc.Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->StringOr(""), "fastt-blackbox/1");
  const JsonValue* reason = doc.Find("reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_EQ(reason->StringOr(""), "SIGABRT");

  const JsonValue* trace = doc.Find("trace");
  ASSERT_NE(trace, nullptr);
  const JsonValue* spans = trace->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  EXPECT_EQ(spans->items.size(), 2u);
  bool saw_total = false;
  for (const JsonValue& span : spans->items) {
    const JsonValue* name = span.Find("name");
    ASSERT_NE(name, nullptr);
    if (name->StringOr("") == "search/total") saw_total = true;
  }
  EXPECT_TRUE(saw_total);

  const JsonValue* events = doc.Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(events->items.size(), 1u);

  const JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* invocations = counters->Find("dpos/invocations");
  ASSERT_NE(invocations, nullptr);
  EXPECT_EQ(invocations->IntOr(0), 3);
}

}  // namespace
}  // namespace fastt
