// Tests for the extension modules: Chrome trace export and loop unrolling
// (the paper's §8 future work).
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/searchers.h"
#include "core/dpos.h"
#include "graph/loops.h"
#include "models/model_zoo.h"
#include "sim/profiler.h"
#include "sim/trace.h"

namespace fastt {
namespace {

TEST(ChromeTrace, EmitsValidLookingJson) {
  const Graph g = BuildSingle(FindModel("lenet"), 16);
  const Cluster c = Cluster::SingleServer(2);
  std::vector<DeviceId> placement(static_cast<size_t>(g.num_slots()), 0);
  // Put the classifier on the second device so transfers appear.
  for (OpId id : g.LiveOps())
    if (g.op(id).name.find("fc") != std::string::npos)
      placement[static_cast<size_t>(id)] = 1;
  const SimResult r = Simulate(g, placement, c);
  const std::string json = ExportChromeTrace(g, r);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("GPU 0 compute"), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"memcpy\""), std::string::npos);
  EXPECT_NE(json.find("conv1"), std::string::npos);
  // Balanced braces (cheap structural sanity).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ChromeTrace, EventCountMatchesRun) {
  const Graph g = BuildSingle(FindModel("lenet"), 16);
  const Cluster c = Cluster::SingleServer(1);
  const SimResult r =
      Simulate(g, std::vector<DeviceId>(g.num_slots(), 0), c);
  const std::string json = ExportChromeTrace(g, r);
  // One "X" event per executed op (no transfers on one device).
  size_t events = 0, pos = 0;
  while ((pos = json.find("\"ph\": \"X\"", pos)) != std::string::npos) {
    ++events;
    pos += 1;
  }
  EXPECT_EQ(events, static_cast<size_t>(g.num_live_ops()));
}

// ---- loop unrolling -------------------------------------------------------

Operation SmallOp(const std::string& name) {
  Operation op;
  op.name = name;
  op.type = OpType::kMatMul;
  op.output_shape = TensorShape{8, 8};
  op.flops = 1e6;
  op.batch = 8;
  op.channels = 8;
  return op;
}

TEST(UnrollLoop, ChainsCarriedValues) {
  Graph g;
  const OpId h0 = g.AddOp(SmallOp("h0"));
  LoopSpec loop;
  loop.body = [](Graph& graph, const std::string& prefix,
                 const std::vector<OpId>& carried) {
    const OpId cell = graph.AddOp(SmallOp(prefix + "/cell"));
    graph.AddEdge(carried[0], cell);
    return std::vector<OpId>{cell};
  };
  const UnrolledLoop unrolled = UnrollLoop(g, loop, "while0", 5, {h0});
  ASSERT_EQ(unrolled.carried.size(), 1u);
  ASSERT_EQ(unrolled.per_iteration_ops.size(), 5u);
  EXPECT_EQ(g.num_live_ops(), 6);
  // iter4's cell consumes iter3's.
  const OpId last = g.FindOp("while0/iter4/cell");
  const OpId prev = g.FindOp("while0/iter3/cell");
  ASSERT_NE(last, kInvalidOp);
  EXPECT_EQ(g.Preds(last), std::vector<OpId>{prev});
  EXPECT_EQ(unrolled.carried[0], last);
  EXPECT_TRUE(g.IsAcyclic());
}

TEST(UnrollLoop, MultipleCarriedValues) {
  Graph g;
  const OpId h = g.AddOp(SmallOp("h"));
  const OpId c = g.AddOp(SmallOp("c"));
  LoopSpec loop;
  loop.body = [](Graph& graph, const std::string& prefix,
                 const std::vector<OpId>& carried) {
    const OpId nh = graph.AddOp(SmallOp(prefix + "/h"));
    const OpId nc = graph.AddOp(SmallOp(prefix + "/c"));
    graph.AddEdge(carried[0], nh);
    graph.AddEdge(carried[1], nh);
    graph.AddEdge(carried[1], nc);
    return std::vector<OpId>{nh, nc};
  };
  const UnrolledLoop unrolled = UnrollLoop(g, loop, "rnn", 3, {h, c});
  EXPECT_EQ(unrolled.carried.size(), 2u);
  EXPECT_EQ(g.num_live_ops(), 2 + 3 * 2);
}

TEST(UnrollLoop, UnrolledLoopIsSchedulable) {
  // The future-work path end to end: unroll a recurrent body, then let DPOS
  // schedule the resulting DAG across devices.
  Graph g;
  const OpId x = g.AddOp(SmallOp("x"));
  LoopSpec loop;
  loop.body = [](Graph& graph, const std::string& prefix,
                 const std::vector<OpId>& carried) {
    const OpId cell = graph.AddOp(SmallOp(prefix + "/cell"));
    graph.AddEdge(carried[0], cell);
    const OpId proj = graph.AddOp(SmallOp(prefix + "/proj"));
    graph.AddEdge(cell, proj);
    return std::vector<OpId>{proj};
  };
  UnrollLoop(g, loop, "dyn", 8, {x});
  const Cluster cluster = Cluster::SingleServer(2);
  CompCostModel comp;
  CommCostModel comm;
  // Profile both devices so the cost model prices every placement.
  for (DeviceId d = 0; d < 2; ++d) {
    const SimResult sim = Simulate(
        g, std::vector<DeviceId>(g.num_slots(), d), cluster);
    const RunProfile profile = ExtractProfile(g, sim);
    comp.AddProfile(profile);
    comm.AddProfile(profile);
  }
  const DposResult r = Dpos(g, cluster, comp, comm);
  EXPECT_GT(r.ft_exit, 0.0);
  EXPECT_EQ(r.strategy.execution_order.size(),
            static_cast<size_t>(g.num_live_ops()));
}

TEST(UnrollLoop, RejectsArityChange) {
  Graph g;
  const OpId x = g.AddOp(SmallOp("x"));
  LoopSpec loop;
  loop.body = [](Graph& graph, const std::string& prefix,
                 const std::vector<OpId>& carried) {
    (void)carried;
    const OpId cell = graph.AddOp(SmallOp(prefix + "/cell"));
    return std::vector<OpId>{cell, cell};  // arity 1 -> 2
  };
  EXPECT_THROW(UnrollLoop(g, loop, "bad", 2, {x}), std::logic_error);
}

TEST(UnrollLoop, RejectsZeroIterationsAndMissingBody) {
  Graph g;
  const OpId x = g.AddOp(SmallOp("x"));
  LoopSpec empty;
  EXPECT_THROW(UnrollLoop(g, empty, "none", 1, {x}), std::logic_error);
  LoopSpec ok;
  ok.body = [](Graph& graph, const std::string& prefix,
               const std::vector<OpId>& carried) { return carried; };
  EXPECT_THROW(UnrollLoop(g, ok, "zero", 0, {x}), std::logic_error);
}

TEST(CrossEntropySearcher, ConvergesTowardGoodPlacements) {
  // CEM with a real budget should at least match pure random search.
  const ModelSpec& spec = FindModel("lenet");
  const Cluster cluster = Cluster::SingleServer(2);
  SearchOptions cem_options;
  cem_options.budget = 100;
  const auto cem = CrossEntropyPlacement(spec.build, spec.name, 64, cluster,
                                         cem_options);
  SearchOptions rs_options;
  rs_options.budget = 100;
  const auto rs = RandomSearchPlacement(spec.build, spec.name, 64, cluster,
                                        rs_options);
  EXPECT_LE(cem.iteration_s, rs.iteration_s * 1.25);
  EXPECT_LE(cem.evaluations, cem_options.budget + 1);
}

}  // namespace
}  // namespace fastt
