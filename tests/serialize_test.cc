#include <gtest/gtest.h>

#include <algorithm>

#include "core/dpos.h"
#include "core/strategy_io.h"
#include "graph/rewrite.h"
#include "graph/serialize.h"
#include "models/model_zoo.h"
#include "sim/cluster.h"

namespace fastt {
namespace {

TEST(GraphSerialize, RoundTripsSmallGraph) {
  Graph g("tiny");
  Operation a;
  a.name = "a";
  a.type = OpType::kConv2D;
  a.output_shape = TensorShape{2, 4, 4, 8};
  a.flops = 123.5;
  a.bytes_touched = 456;
  a.param_bytes = 789;
  a.batch = 2;
  a.channels = 8;
  a.efficiency_override = 0.82;
  a.cost_key = "a_key";
  const OpId ia = g.AddOp(std::move(a));
  Operation b;
  b.name = "b";
  b.type = OpType::kApplyGradient;
  b.output_shape = TensorShape{0};
  b.is_backward = true;
  b.colocate_with = ia;
  const OpId ib = g.AddOp(std::move(b));
  g.AddEdge(ia, ib, 4096);

  const Graph copy = DeserializeGraph(SerializeGraph(g));
  EXPECT_EQ(copy.name(), "tiny");
  EXPECT_EQ(copy.num_live_ops(), 2);
  const Operation& ca = copy.op(ia);
  EXPECT_EQ(ca.name, "a");
  EXPECT_EQ(ca.type, OpType::kConv2D);
  EXPECT_EQ(ca.output_shape, TensorShape({2, 4, 4, 8}));
  EXPECT_DOUBLE_EQ(ca.flops, 123.5);
  EXPECT_EQ(ca.param_bytes, 789);
  EXPECT_DOUBLE_EQ(ca.efficiency_override, 0.82);
  EXPECT_EQ(ca.cost_key, "a_key");
  const Operation& cb = copy.op(ib);
  EXPECT_TRUE(cb.is_backward);
  EXPECT_EQ(cb.colocate_with, ia);
  ASSERT_EQ(copy.Succs(ia), std::vector<OpId>{ib});
  for (EdgeId e : copy.out_edges(ia)) EXPECT_EQ(copy.edge(e).bytes, 4096);
}

TEST(GraphSerialize, PreservesDeadSlotsAndIds) {
  // Split rewrites tombstone ops; OpIds (and OpId-indexed vectors like a
  // placement) must survive the round trip.
  Graph g = BuildSingle(FindModel("lenet"), 16);
  const OpId conv = g.FindOp("conv2");
  SplitOperation(g, conv, SplitDim::kBatch, 2);
  const int32_t slots = g.num_slots();
  const int32_t live = g.num_live_ops();

  const Graph copy = DeserializeGraph(SerializeGraph(g));
  EXPECT_EQ(copy.num_slots(), slots);
  EXPECT_EQ(copy.num_live_ops(), live);
  EXPECT_TRUE(copy.op(conv).dead);
  EXPECT_NE(copy.FindOp("conv2/part0"), kInvalidOp);
  EXPECT_NO_THROW(copy.Validate());
}

TEST(GraphSerialize, RoundTripsWholeModel) {
  const Graph g = BuildSingle(FindModel("alexnet"), 32);
  const Graph copy = DeserializeGraph(SerializeGraph(g));
  EXPECT_EQ(copy.num_live_ops(), g.num_live_ops());
  EXPECT_EQ(copy.num_live_edges(), g.num_live_edges());
  EXPECT_NEAR(copy.TotalFlops(), g.TotalFlops(), 1.0);
  EXPECT_EQ(copy.TotalParamBytes(), g.TotalParamBytes());
  // Spot-check a deep op survives intact.
  const OpId fc = copy.FindOp("fc6");
  ASSERT_NE(fc, kInvalidOp);
  EXPECT_EQ(copy.op(fc).type, OpType::kMatMul);
}

TEST(GraphSerialize, RejectsGarbage) {
  EXPECT_THROW(DeserializeGraph("not a graph"), std::logic_error);
  EXPECT_THROW(DeserializeGraph("fastt_graph 99\n"), std::logic_error);
}

TEST(StrategySerialize, RoundTrips) {
  Strategy s;
  s.placement = {0, 1, 1, kInvalidDevice, 2};
  s.execution_order = {0, 2, 1, 4};
  s.predicted_makespan = 0.125;
  s.splits.push_back({"rep0/conv1_2", SplitDim::kChannel, 4});
  s.splits.push_back({"rep1/fc6", SplitDim::kBatch, 2});

  const Strategy copy = DeserializeStrategy(SerializeStrategy(s));
  EXPECT_EQ(copy.placement, s.placement);
  EXPECT_EQ(copy.execution_order, s.execution_order);
  EXPECT_DOUBLE_EQ(copy.predicted_makespan, 0.125);
  ASSERT_EQ(copy.splits.size(), 2u);
  EXPECT_EQ(copy.splits[0].op_name, "rep0/conv1_2");
  EXPECT_EQ(copy.splits[0].dim, SplitDim::kChannel);
  EXPECT_EQ(copy.splits[0].num_splits, 4);
  EXPECT_EQ(copy.splits[1].op_name, "rep1/fc6");
}

TEST(StrategySerialize, RoundTripsScheduledStrategyWithGlueOps) {
  // A strategy as OS-DPOS emits it: the graph rewritten with a committed
  // split, so the placement and execution order cover the split/concat glue
  // ops, and the split list records the decision.
  Graph g = BuildSingle(FindModel("alexnet"), 32);
  const OpId conv = g.FindOp("conv3");
  ASSERT_NE(conv, kInvalidOp);
  SplitOperation(g, conv, SplitDim::kBatch, 4);

  const Cluster cluster = Cluster::SingleServer(4);
  CompCostModel comp;
  CommCostModel comm;
  const DposResult sched = Dpos(g, cluster, comp, comm);
  Strategy s = sched.strategy;
  s.splits.push_back({"conv3", SplitDim::kBatch, 4});

  // The glue ops really are part of the serialized artifact.
  for (const char* name : {"conv3/split0", "conv3/part0", "conv3/part3",
                           "conv3/concat"}) {
    const OpId id = g.FindOp(name);
    ASSERT_NE(id, kInvalidOp) << name;
    EXPECT_NE(s.placement[static_cast<size_t>(id)], kInvalidDevice) << name;
    EXPECT_NE(std::find(s.execution_order.begin(), s.execution_order.end(),
                        id),
              s.execution_order.end())
        << name;
  }
  // The tombstoned original is excluded from the order.
  EXPECT_EQ(std::find(s.execution_order.begin(), s.execution_order.end(),
                      conv),
            s.execution_order.end());

  const Strategy copy = DeserializeStrategy(SerializeStrategy(s));
  EXPECT_EQ(copy.placement, s.placement);
  EXPECT_EQ(copy.execution_order, s.execution_order);
  EXPECT_DOUBLE_EQ(copy.predicted_makespan, s.predicted_makespan);
  ASSERT_EQ(copy.splits.size(), 1u);
  EXPECT_EQ(copy.splits[0].op_name, "conv3");
  EXPECT_EQ(copy.splits[0].dim, SplitDim::kBatch);
  EXPECT_EQ(copy.splits[0].num_splits, 4);
  // Serialization is canonical: a round-trip re-serializes byte-identically
  // (what the jobs=N differential tests rely on for strategy comparison).
  EXPECT_EQ(SerializeStrategy(copy), SerializeStrategy(s));
}

TEST(StrategySerialize, EmptyStrategy) {
  const Strategy copy = DeserializeStrategy(SerializeStrategy(Strategy{}));
  EXPECT_TRUE(copy.placement.empty());
  EXPECT_TRUE(copy.execution_order.empty());
  EXPECT_TRUE(copy.splits.empty());
}

TEST(StrategySerialize, RejectsGarbage) {
  EXPECT_THROW(DeserializeStrategy("junk"), std::logic_error);
}

}  // namespace
}  // namespace fastt
