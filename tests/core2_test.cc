#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/data_parallel.h"
#include "core/model_parallel.h"
#include "core/os_dpos.h"
#include "core/strategy_calculator.h"
#include "models/model_zoo.h"
#include "sim/profiler.h"
#include "util/strings.h"

namespace fastt {
namespace {

// Bootstraps cost models by profiling a canonical run (shared by tests).
void Bootstrap(const Graph& g, const std::vector<DeviceId>& placement,
               const Cluster& c, CompCostModel& comp, CommCostModel& comm) {
  for (int i = 0; i < 2; ++i) {
    SimOptions so;
    so.seed = 100 + static_cast<uint64_t>(i);
    const RunProfile p = ExtractProfile(g, Simulate(g, placement, c, so));
    comp.AddProfile(p);
    comm.AddProfile(p);
  }
}

// ---- OS-DPOS ------------------------------------------------------------------

TEST(OsDpos, NeverWorseThanPlainDpos) {
  const ModelSpec& spec = FindModel("vgg19");
  const Cluster c = Cluster::SingleServer(2);
  auto dp = BuildDataParallel(spec.build, spec.name, 16, 2, Scaling::kStrong);
  CompCostModel comp;
  CommCostModel comm;
  Bootstrap(dp.graph, CanonicalDataParallelPlacement(dp), c, comp, comm);

  const DposResult plain = Dpos(dp.graph, c, comp, comm);
  const OsDposResult os = OsDpos(dp.graph, c, comp, comm);
  EXPECT_LE(os.schedule.ft_exit, plain.ft_exit + 1e-12);
}

TEST(OsDpos, SplitsOnlyParallelizableOps) {
  const ModelSpec& spec = FindModel("vgg19");
  const Cluster c = Cluster::SingleServer(4);
  auto dp = BuildDataParallel(spec.build, spec.name, 64, 4, Scaling::kStrong);
  CompCostModel comp;
  CommCostModel comm;
  Bootstrap(dp.graph, CanonicalDataParallelPlacement(dp), c, comp, comm);
  const OsDposResult os = OsDpos(dp.graph, c, comp, comm);
  for (const SplitDecision& s : os.splits) {
    const OpId original = dp.graph.FindOp(s.op_name);
    ASSERT_NE(original, kInvalidOp) << s.op_name;
    const auto dims = ParallelizableDims(dp.graph.op(original).type);
    EXPECT_NE(std::find(dims.begin(), dims.end(), s.dim), dims.end());
    EXPECT_GE(s.num_splits, 2);
    // The strategy's graph has the original tombstoned.
    EXPECT_TRUE(os.graph.op(original).dead);
  }
  EXPECT_NO_THROW(os.graph.Validate());
}

TEST(OsDpos, SingleDeviceMakesNoSplits) {
  const ModelSpec& spec = FindModel("lenet");
  const Graph g = BuildSingle(spec, 64);
  const Cluster c = Cluster::SingleServer(1);
  CompCostModel comp;
  CommCostModel comm;
  Bootstrap(g, std::vector<DeviceId>(g.num_slots(), 0), c, comp, comm);
  const OsDposResult os = OsDpos(g, c, comp, comm);
  EXPECT_TRUE(os.splits.empty());
}

TEST(OsDpos, ProbeBudgetRespected) {
  const ModelSpec& spec = FindModel("alexnet");
  const Cluster c = Cluster::SingleServer(2);
  auto dp = BuildDataParallel(spec.build, spec.name, 32, 2, Scaling::kStrong);
  CompCostModel comp;
  CommCostModel comm;
  Bootstrap(dp.graph, CanonicalDataParallelPlacement(dp), c, comp, comm);
  OsDposOptions options;
  options.max_probed_ops = 3;
  const OsDposResult os = OsDpos(dp.graph, c, comp, comm, options);
  // <= probed ops x dims x split counts.
  EXPECT_LE(os.probes, 3 * 2 * 2);
}

// ---- data parallel --------------------------------------------------------------

TEST(DataParallel, StrongScalingDividesBatch) {
  const ModelSpec& spec = FindModel("lenet");
  auto dp = BuildDataParallel(spec.build, spec.name, 64, 4, Scaling::kStrong);
  EXPECT_EQ(dp.replicas, 4);
  EXPECT_EQ(dp.global_batch, 64);
  // Each replica processes 16 samples: check an input op's batch dim.
  const OpId in = dp.graph.FindOp("rep0/images");
  ASSERT_NE(in, kInvalidOp);
  EXPECT_EQ(dp.graph.op(in).output_shape.dim(0), 16);
}

TEST(DataParallel, WeakScalingGrowsGlobalBatch) {
  const ModelSpec& spec = FindModel("lenet");
  auto dp = BuildDataParallel(spec.build, spec.name, 64, 4, Scaling::kWeak);
  EXPECT_EQ(dp.global_batch, 256);
  const OpId in = dp.graph.FindOp("rep0/images");
  EXPECT_EQ(dp.graph.op(in).output_shape.dim(0), 64);
}

TEST(DataParallel, UnevenStrongSplitKeepsAllSamples) {
  const ModelSpec& spec = FindModel("lenet");
  auto dp = BuildDataParallel(spec.build, spec.name, 10, 3, Scaling::kStrong);
  EXPECT_EQ(dp.global_batch, 10);
}

TEST(DataParallel, VariablesAreShared) {
  const ModelSpec& spec = FindModel("lenet");
  auto dp = BuildDataParallel(spec.build, spec.name, 32, 4, Scaling::kStrong);
  // Exactly one live variable per logical parameter.
  std::set<std::string> keys;
  int live_vars = 0;
  for (OpId id : dp.graph.LiveOps()) {
    if (dp.graph.op(id).type != OpType::kVariable) continue;
    ++live_vars;
    EXPECT_TRUE(keys.insert(dp.graph.op(id).CostKey()).second)
        << "duplicate variable " << dp.graph.op(id).name;
  }
  const Graph single = BuildSingle(spec, 32);
  int single_vars = 0;
  for (OpId id : single.LiveOps())
    if (single.op(id).type == OpType::kVariable) ++single_vars;
  EXPECT_EQ(live_vars, single_vars);
}

TEST(DataParallel, OneApplyAndOneAggPerParameter) {
  const ModelSpec& spec = FindModel("lenet");
  auto dp = BuildDataParallel(spec.build, spec.name, 32, 4, Scaling::kStrong);
  int applies = 0, aggs = 0, vars = 0;
  for (OpId id : dp.graph.LiveOps()) {
    const auto& op = dp.graph.op(id);
    if (op.type == OpType::kApplyGradient) ++applies;
    if (op.type == OpType::kGradAggregate) ++aggs;
    if (op.type == OpType::kVariable) ++vars;
  }
  EXPECT_EQ(applies, vars);
  EXPECT_EQ(aggs, vars);
  // Every aggregation sums one wgrad per replica.
  for (OpId id : dp.graph.LiveOps()) {
    if (dp.graph.op(id).type != OpType::kGradAggregate) continue;
    EXPECT_EQ(dp.graph.Preds(id).size(), 4u);
    EXPECT_EQ(dp.graph.Succs(id).size(), 1u);
  }
}

TEST(DataParallel, CanonicalPlacementPutsReplicaOnOwnDevice) {
  const ModelSpec& spec = FindModel("lenet");
  auto dp = BuildDataParallel(spec.build, spec.name, 32, 2, Scaling::kStrong);
  const auto placement = CanonicalDataParallelPlacement(dp);
  EXPECT_EQ(placement[static_cast<size_t>(dp.graph.FindOp("rep0/conv1"))], 0);
  EXPECT_EQ(placement[static_cast<size_t>(dp.graph.FindOp("rep1/conv1"))], 1);
  // Shared variables and aggregation live with replica 0.
  EXPECT_EQ(
      placement[static_cast<size_t>(dp.graph.FindOp("rep0/conv1/weights"))],
      0);
}

TEST(DataParallel, SimulatesWithoutDeadlock) {
  const ModelSpec& spec = FindModel("lenet");
  auto dp = BuildDataParallel(spec.build, spec.name, 32, 2, Scaling::kStrong);
  const SimResult r = Simulate(dp.graph, CanonicalDataParallelPlacement(dp),
                               Cluster::SingleServer(2));
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_FALSE(r.transfers.empty());  // weight broadcast + gradient return
}

TEST(DataParallel, SingleReplicaHasNoAggregation) {
  const ModelSpec& spec = FindModel("lenet");
  auto dp = BuildDataParallel(spec.build, spec.name, 32, 1, Scaling::kStrong);
  for (OpId id : dp.graph.LiveOps())
    EXPECT_NE(dp.graph.op(id).type, OpType::kGradAggregate);
}

// ---- model parallel ---------------------------------------------------------------

TEST(ModelParallel, FitDetection) {
  const Cluster c = Cluster::SingleServer(2);
  const Graph small = BuildSingle(FindModel("lenet"), 64);
  EXPECT_TRUE(FitsOnOneDevice(small, c));
  const Graph large = BuildSingle(FindModel("bert_large"), 48);
  EXPECT_FALSE(FitsOnOneDevice(large, c));
}

TEST(ModelParallel, CoversAllOpsAndBalances) {
  const Graph g = BuildSingle(FindModel("bert_large"), 32);
  const Cluster c = Cluster::SingleServer(2);
  const auto placement = GreedyModelParallelPlacement(g, c);
  int64_t need[2] = {0, 0};
  for (OpId id : g.LiveOps()) {
    const DeviceId d = placement[static_cast<size_t>(id)];
    ASSERT_TRUE(d == 0 || d == 1);
    need[d] += MemNeed(g, id);
  }
  EXPECT_GT(need[0], 0);
  EXPECT_GT(need[1], 0);
  // Balanced within 2x either way.
  EXPECT_LT(static_cast<double>(std::max(need[0], need[1])) /
                static_cast<double>(std::min(need[0], need[1])),
            2.0);
}

TEST(ModelParallel, BackwardFollowsForwardDevice) {
  const Graph g = BuildSingle(FindModel("vgg19"), 16);
  const Cluster c = Cluster::SingleServer(2);
  const auto placement = GreedyModelParallelPlacement(g, c);
  // conv ops and their weight gradients must share a device.
  for (const char* name : {"conv1_1", "conv5_4", "fc6"}) {
    const OpId fwd = g.FindOp(name);
    const OpId dw = g.FindOp(std::string(name) + "/wgrad");
    ASSERT_NE(fwd, kInvalidOp);
    ASSERT_NE(dw, kInvalidOp);
    EXPECT_EQ(placement[static_cast<size_t>(fwd)],
              placement[static_cast<size_t>(dw)])
        << name;
  }
}

TEST(ModelParallel, MakesLargeModelFeasible) {
  const Graph g = BuildSingle(FindModel("bert_large"), 40);
  const Cluster c = Cluster::SingleServer(2);
  const SimResult r = Simulate(g, GreedyModelParallelPlacement(g, c), c);
  EXPECT_FALSE(r.oom);  // Table 3: FastT trains batch 40 on 2 GPUs
}

// ---- strategy calculator -------------------------------------------------------

TEST(StrategyCalculator, FastTNotWorseThanDataParallel) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster c = Cluster::SingleServer(2);
  CalculatorOptions options;
  const auto dp = RunDataParallelBaseline(spec.build, spec.name, 256,
                                          Scaling::kStrong, c, options);
  const auto ft =
      RunFastT(spec.build, spec.name, 256, Scaling::kStrong, c, options);
  EXPECT_GE(SamplesPerSecond(ft), 0.95 * SamplesPerSecond(dp));
  EXPECT_FALSE(ft.final_sim.oom);
  EXPECT_EQ(ft.global_batch, 256);
  EXPECT_GT(ft.rounds, 0);
  EXPECT_GT(ft.strategy_time_s, 0.0);
}

TEST(StrategyCalculator, FindsVggPlacementWin) {
  // The headline reproduction: FastT beats data parallelism on VGG at 4
  // GPUs by gathering the classifier replicas (paper Table 1 / §6.5).
  const ModelSpec& spec = FindModel("vgg19");
  const Cluster c = Cluster::SingleServer(4);
  CalculatorOptions options;
  const auto dp = RunDataParallelBaseline(spec.build, spec.name, 64,
                                          Scaling::kStrong, c, options);
  const auto ft =
      RunFastT(spec.build, spec.name, 64, Scaling::kStrong, c, options);
  EXPECT_GT(SamplesPerSecond(ft), 1.15 * SamplesPerSecond(dp));
}

TEST(StrategyCalculator, OomCandidatesNeverKept) {
  // BERT-large batch 40 on 2 GPUs: DP is infeasible; FastT must deliver a
  // feasible strategy (Table 3).
  const ModelSpec& spec = FindModel("bert_large");
  const Cluster c = Cluster::SingleServer(2);
  CalculatorOptions options;
  options.max_rounds = 4;
  const auto ft =
      RunFastT(spec.build, spec.name, 40, Scaling::kStrong, c, options);
  EXPECT_TRUE(ft.started_model_parallel);
  EXPECT_FALSE(ft.final_sim.oom);
}

TEST(StrategyCalculator, SingleGpuDegeneratesGracefully) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster c = Cluster::SingleServer(1);
  CalculatorOptions options;
  const auto ft =
      RunFastT(spec.build, spec.name, 64, Scaling::kStrong, c, options);
  EXPECT_FALSE(ft.started_model_parallel);
  for (OpId id : ft.graph.LiveOps())
    EXPECT_EQ(ft.strategy.placement[static_cast<size_t>(id)], 0);
}

TEST(StrategyCalculator, WeakScalingReportsGrownBatch) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster c = Cluster::SingleServer(4);
  CalculatorOptions options;
  const auto dp = RunDataParallelBaseline(spec.build, spec.name, 64,
                                          Scaling::kWeak, c, options);
  EXPECT_EQ(dp.global_batch, 256);
  const auto ft =
      RunFastT(spec.build, spec.name, 64, Scaling::kWeak, c, options);
  EXPECT_EQ(ft.global_batch, 256);
}

TEST(StrategyCalculator, OrderEnforcementCanBeDisabled) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster c = Cluster::SingleServer(2);
  CalculatorOptions options;
  options.enable_order_enforcement = false;
  options.enable_split = false;
  EXPECT_NO_THROW(
      RunFastT(spec.build, spec.name, 64, Scaling::kStrong, c, options));
}

TEST(StrategyCalculator, PrioritiesCoverAllLiveOps) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster c = Cluster::SingleServer(2);
  const auto ft = RunFastT(spec.build, spec.name, 64, Scaling::kStrong, c,
                           CalculatorOptions{});
  const auto priorities = PrioritiesFromOrder(
      ft.strategy.execution_order, ft.graph.num_slots());
  std::set<int64_t> seen;
  for (OpId id : ft.graph.LiveOps())
    seen.insert(priorities[static_cast<size_t>(id)]);
  EXPECT_EQ(seen.size(), static_cast<size_t>(ft.graph.num_live_ops()));
}

// A chain model whose parameters exceed one device's usable memory (~9 GB on
// a 16 GB V100) but fit split across two: four 4 GB weight variables feeding
// matmuls. Used to force a candidate OOM deterministically.
void BuildHeavyChain(Graph& g, const std::string& prefix, int64_t batch) {
  const int64_t gb = int64_t{1} << 30;
  OpId prev = kInvalidOp;
  for (int i = 0; i < 4; ++i) {
    Operation w;
    w.name = prefix + StrFormat("w%d", i);
    w.type = OpType::kVariable;
    w.param_bytes = 4 * gb;
    w.output_shape = TensorShape{1024};
    const OpId wid = g.AddOp(std::move(w));
    Operation m;
    m.name = prefix + StrFormat("mm%d", i);
    m.type = OpType::kMatMul;
    m.flops = 1e9;
    m.batch = batch;
    m.output_shape = TensorShape{batch * 256};
    const OpId mid = g.AddOp(std::move(m));
    g.AddEdge(wid, mid);
    if (prev != kInvalidOp) g.AddEdge(prev, mid, batch * 1024);
    prev = mid;
  }
}

TEST(StrategyCalculator, OomCandidateRollsBackAndRecordsReason) {
  const Cluster c = Cluster::SingleServer(2);
  CalculatorOptions options;
  // Let the scheduler believe every device has unbounded memory: DPOS then
  // piles the whole 24 GB chain onto one 16 GB GPU, and the profiled run of
  // that candidate OOMs — which the workflow must always roll back.
  options.os_dpos.dpos.memory_headroom = 1000.0;
  options.enable_split = false;
  options.noise_cv = 0.0;
  options.max_rounds = 2;
  options.profile_iterations = 2;
  options.measure_iterations = 2;
  const auto ft = RunFastT(BuildHeavyChain, "heavy_chain", 32,
                           Scaling::kStrong, c, options);
  EXPECT_TRUE(ft.started_model_parallel);
  EXPECT_GE(ft.rollbacks, 1);
  ASSERT_EQ(ft.calibration.size(), ft.round_history.size());
  // With memory feasibility disabled the search eventually produces a
  // packing that runs out of memory; the workflow must roll it back and the
  // round history + calibration audit must say why.
  size_t oom_round = ft.round_history.size();
  for (size_t i = 0; i < ft.round_history.size(); ++i)
    if (ft.round_history[i].oom) { oom_round = i; break; }
  ASSERT_LT(oom_round, ft.round_history.size()) << "no candidate ever OOMed";
  EXPECT_FALSE(ft.round_history[oom_round].committed);
  EXPECT_TRUE(ft.calibration[oom_round].postmortem.rolled_back);
  EXPECT_TRUE(ft.calibration[oom_round].postmortem.oom);
  // The final strategy is a feasible incumbent, not the OOM candidate.
  EXPECT_FALSE(ft.final_sim.oom);
  const std::string events = ft.events.ToJsonl();
  EXPECT_NE(events.find("rollback_oom"), std::string::npos);
  EXPECT_NE(events.find("rollback_postmortem"), std::string::npos);
  EXPECT_NE(events.find("\"cause\":\"oom\""), std::string::npos);
}

TEST(StrategyCalculator, SlowerCandidateRollbackRecordsReason) {
  const ModelSpec& spec = FindModel("lenet");
  const Cluster c = Cluster::SingleServer(2);
  // Profiling noise makes some rounds measure slower than the incumbent;
  // scan a few seeds so the test does not depend on one noise draw.
  bool found = false;
  for (uint64_t seed = 7; seed < 17 && !found; ++seed) {
    CalculatorOptions options;
    options.seed = seed;
    options.max_rounds = 4;
    const auto ft = RunFastT(spec.build, spec.name, spec.strong_batch,
                             Scaling::kStrong, c, options);
    ASSERT_EQ(ft.calibration.size(), ft.round_history.size());
    for (size_t i = 0; i < ft.round_history.size(); ++i) {
      const RoundSummary& r = ft.round_history[i];
      if (r.committed || r.oom) continue;
      found = true;
      // Rolled back because the candidate measured slower, and the history
      // says so.
      EXPECT_GT(r.measured_s, r.best_before_s);
      const CalibrationRound& cal = ft.calibration[i];
      EXPECT_TRUE(cal.postmortem.rolled_back);
      EXPECT_FALSE(cal.postmortem.oom);
      EXPECT_FALSE(cal.postmortem.top_mispredicted.empty());
      const std::string events = ft.events.ToJsonl();
      EXPECT_NE(events.find("rollback_slower"), std::string::npos);
      EXPECT_NE(events.find("\"cause\":\"slower\""), std::string::npos);
      break;
    }
  }
  EXPECT_TRUE(found) << "no slower-candidate rollback in 10 seeds";
}

}  // namespace
}  // namespace fastt
