// Flight-recorder tests: span pairing, the disabled fast path, ring
// wraparound (oldest events dropped, drains stay well-formed), concurrent
// emitters, the self-time summary, and the acceptance property that a traced
// OS-DPOS run yields a valid Chrome trace whose root span accounts for
// nearly all of the measured search wall-clock.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/data_parallel.h"
#include "core/os_dpos.h"
#include "models/model_zoo.h"
#include "obs/json.h"
#include "obs/trace_export.h"
#include "obs/tracer.h"
#include "sim/exec_sim.h"
#include "sim/profiler.h"
#include "util/memtrack.h"

namespace fastt {
namespace {

// The tracer is process-global; every test re-Enables (which resets the ring
// buffers and the epoch) and leaves it disabled and drained behind.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().SetRingCapacity(1 << 16);
    Tracer::Global().Enable();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Drain();
  }
};

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TEST_F(TracerTest, PairsNestedSpansAndKeepsPoints) {
  {
    FASTT_TRACE_SPAN("outer");
    {
      FASTT_TRACE_SPAN("inner");
      FASTT_TRACE_INSTANT("mark", 7.0);
    }
    FASTT_TRACE_COUNTER("queue", 3.0);
  }
  Tracer::Global().Disable();
  const TraceDump dump = Tracer::Global().Drain();

  ASSERT_EQ(dump.spans.size(), 2u);
  EXPECT_EQ(dump.dropped_events, 0u);
  EXPECT_EQ(dump.dropped_spans, 0u);
  // Sorted parent-before-child: outer starts first (or ties with a longer
  // duration), and inner nests inside it.
  const TraceSpan& outer = dump.spans[0];
  const TraceSpan& inner = dump.spans[1];
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_LE(outer.start_s, inner.start_s);
  EXPECT_GE(outer.end_s(), inner.end_s());

  ASSERT_EQ(dump.points.size(), 2u);
  EXPECT_STREQ(dump.points[0].name, "mark");
  EXPECT_FALSE(dump.points[0].is_counter);
  EXPECT_EQ(dump.points[0].value, 7.0);
  EXPECT_STREQ(dump.points[1].name, "queue");
  EXPECT_TRUE(dump.points[1].is_counter);

  // A second drain starts empty.
  EXPECT_TRUE(Tracer::Global().Drain().spans.empty());
}

TEST_F(TracerTest, DisabledRecordsNothing) {
  Tracer::Global().Disable();
  {
    FASTT_TRACE_SPAN("ghost");
    FASTT_TRACE_INSTANT("ghost_mark", 1.0);
  }
  const TraceDump dump = Tracer::Global().Drain();
  EXPECT_TRUE(dump.spans.empty());
  EXPECT_TRUE(dump.points.empty());
  EXPECT_EQ(dump.dropped_events, 0u);
}

TEST_F(TracerTest, RingWraparoundDropsOldestAndStaysWellFormed) {
  Tracer::Global().SetRingCapacity(8);
  Tracer::Global().Enable();
  // The begin below is overwritten by the instants before its end arrives.
  Tracer::Global().BeginSpan("victim");
  for (int i = 0; i < 20; ++i) FASTT_TRACE_INSTANT("spam", i);
  Tracer::Global().EndSpan("victim");
  Tracer::Global().Disable();
  const TraceDump dump = Tracer::Global().Drain();

  // 22 events through a ring of 8: 14 overwritten, and the orphaned end
  // becomes a dropped span instead of a bogus emitted one.
  EXPECT_EQ(dump.dropped_events, 14u);
  EXPECT_GE(dump.dropped_spans, 1u);
  EXPECT_TRUE(dump.spans.empty());
  EXPECT_LE(dump.points.size(), 8u);
  for (const TracePoint& p : dump.points) EXPECT_STREQ(p.name, "spam");

  // Loss is advertised, not silent: the Chrome export's metadata block
  // carries the drop counters for anyone loading the trace.
  const std::string json = TraceToChromeJson(dump);
  EXPECT_TRUE(JsonValidate(json)) << json;
  JsonValue doc;
  ASSERT_TRUE(JsonParse(json, &doc));
  const JsonValue* metadata = doc.Find("metadata");
  ASSERT_NE(metadata, nullptr);
  EXPECT_EQ(metadata->Find("dropped_events")->IntOr(0), 14);
  EXPECT_GE(metadata->Find("dropped_spans")->IntOr(0), 1);

  // And the summary feeding `fastt report` carries them too.
  const TraceSummary summary = SummarizeTrace(dump);
  EXPECT_EQ(summary.dropped_events, 14u);
  EXPECT_GE(summary.dropped_spans, 1u);
  EXPECT_NE(RenderTraceSummary(summary).find("dropped 14 events"),
            std::string::npos);
}

TEST_F(TracerTest, WraparoundOverManySpansKeepsDrainSorted) {
  Tracer::Global().SetRingCapacity(16);
  Tracer::Global().Enable();
  for (int i = 0; i < 100; ++i) {
    FASTT_TRACE_SPAN("unit");
  }
  Tracer::Global().Disable();
  const TraceDump dump = Tracer::Global().Drain();
  EXPECT_EQ(dump.dropped_events, 2u * 100u - 16u);
  EXPECT_GE(dump.spans.size(), 7u);  // 16 slots = 8 pairs, minus a torn pair
  for (size_t i = 1; i < dump.spans.size(); ++i) {
    EXPECT_LE(dump.spans[i - 1].start_s, dump.spans[i].start_s);
  }
  for (const TraceSpan& s : dump.spans) EXPECT_GE(s.dur_s, 0.0);
  EXPECT_TRUE(JsonValidate(TraceToChromeJson(dump)));
}

TEST_F(TracerTest, ConcurrentEmittersGetTheirOwnThreadRows) {
  constexpr int kThreads = 4;
  constexpr int kSpans = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      Tracer::Global().SetCurrentThreadName("emitter " + std::to_string(t));
      for (int i = 0; i < kSpans; ++i) {
        FASTT_TRACE_SPAN("work");
        FASTT_TRACE_COUNTER("i", i);
      }
    });
  }
  for (auto& th : threads) th.join();
  Tracer::Global().Disable();
  const TraceDump dump = Tracer::Global().Drain();

  EXPECT_EQ(dump.dropped_events, 0u);
  EXPECT_EQ(dump.dropped_spans, 0u);
  EXPECT_EQ(dump.spans.size(), static_cast<size_t>(kThreads * kSpans));
  // Spans are grouped by tid and time-ordered within each.
  for (size_t i = 1; i < dump.spans.size(); ++i) {
    const TraceSpan& a = dump.spans[i - 1];
    const TraceSpan& b = dump.spans[i];
    EXPECT_TRUE(a.tid < b.tid || (a.tid == b.tid && a.start_s <= b.start_s));
  }
  int named = 0;
  for (const TraceThreadInfo& info : dump.threads) {
    if (info.name.rfind("emitter ", 0) == 0) ++named;
  }
  EXPECT_EQ(named, kThreads);
  EXPECT_TRUE(JsonValidate(TraceToChromeJson(dump)));
}

TEST(TraceSummary, SelfTimeSubtractsChildren) {
  // Hand-built: parent [0,10] with children [2,5] and [6,8] on tid 0, plus
  // a second thread with one span [1,4].
  TraceDump dump;
  dump.threads = {{0, "main"}, {1, "worker"}};
  dump.spans = {
      {"parent", 0, 0.0, 10.0},
      {"child", 0, 2.0, 3.0},
      {"child", 0, 6.0, 2.0},
      {"other", 1, 1.0, 3.0},
  };
  const TraceSummary summary = SummarizeTrace(dump);

  ASSERT_EQ(summary.phases.size(), 3u);
  EXPECT_EQ(summary.phases[0].name, "parent");  // sorted by total_s desc
  EXPECT_NEAR(summary.phases[0].total_s, 10.0, 1e-12);
  EXPECT_NEAR(summary.phases[0].self_s, 5.0, 1e-12);  // 10 - 3 - 2
  const TracePhase& child =
      summary.phases[1].name == "child" ? summary.phases[1]
                                        : summary.phases[2];
  EXPECT_EQ(child.count, 2);
  EXPECT_NEAR(child.total_s, 5.0, 1e-12);
  EXPECT_NEAR(child.self_s, 5.0, 1e-12);  // leaves keep their full time

  ASSERT_EQ(summary.threads.size(), 2u);
  EXPECT_NEAR(summary.threads[0].busy_s, 10.0, 1e-12);
  EXPECT_NEAR(summary.threads[1].busy_s, 3.0, 1e-12);
  EXPECT_NEAR(summary.wall_s, 10.0, 1e-12);
  EXPECT_NEAR(summary.root_span_s, 13.0, 1e-12);  // parent + other
  EXPECT_EQ(summary.span_count, 4u);

  const std::string rendered = RenderTraceSummary(summary);
  EXPECT_NE(rendered.find("parent"), std::string::npos);
  EXPECT_NE(rendered.find("worker"), std::string::npos);
}

// Acceptance: tracing a real search produces a valid Chrome trace whose
// root span covers (well over) 90% of the measured wall-clock.
TEST_F(TracerTest, TracedSearchCoversMeasuredWallClock) {
  const ModelSpec& spec = FindModel("lenet");
  auto dp = BuildDataParallel(spec.build, spec.name, spec.strong_batch, 2,
                              Scaling::kStrong);
  const std::vector<DeviceId> placement = CanonicalDataParallelPlacement(dp);
  const Graph graph = std::move(dp.graph);
  const Cluster cluster = Cluster::SingleServer(2);
  SimOptions so;
  so.noise_cv = 0.03;
  so.seed = 11;
  CompCostModel comp;
  CommCostModel comm;
  const RunProfile profile =
      ExtractProfile(graph, Simulate(graph, placement, cluster, so));
  comp.AddProfile(profile);
  comm.AddProfile(profile);

  Tracer::Global().Enable();
  {
    // First emit on a thread allocates its ring buffer; keep that out of
    // the measured window.
    FASTT_TRACE_SPAN("warmup");
  }
  const double t0 = NowS();
  {
    FASTT_TRACE_SPAN("search/total");
    const OsDposResult os = OsDpos(graph, cluster, comp, comm);
    EXPECT_GT(os.schedule.ft_exit, 0.0);
  }
  const double wall_s = NowS() - t0;
  Tracer::Global().Disable();
  const TraceDump dump = Tracer::Global().Drain();

  // The instrumented internals showed up under the wrapper span.
  ASSERT_FALSE(dump.spans.empty());
  const TraceSummary summary = SummarizeTrace(dump);
  double total_s = 0.0;
  bool saw_dpos = false;
  for (const TracePhase& phase : summary.phases) {
    if (phase.name == "search/total") total_s = phase.total_s;
    if (phase.name == "dpos/total") saw_dpos = true;
  }
  EXPECT_TRUE(saw_dpos);
  ASSERT_GT(total_s, 0.0);
  EXPECT_GE(total_s, 0.9 * wall_s)
      << "span tree covers " << total_s << "s of " << wall_s << "s measured";
  EXPECT_EQ(dump.dropped_spans, 0u);

  // And the exported timeline is a valid JSON document.
  const std::string json = TraceToChromeJson(dump);
  EXPECT_TRUE(JsonValidate(json));
  JsonValue root;
  ASSERT_TRUE(JsonParse(json, &root));
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  EXPECT_GE(events->items.size(), dump.spans.size());
}

// With the heap tracker enabled alongside the tracer, the instrumented
// subsystems emit mem/<tag>/live_bytes counter samples, which the Chrome
// export turns into "C"-phase counter tracks — memory next to time.
TEST_F(TracerTest, SearchWithMemTrackerEmitsLiveBytesCounterTracks) {
  const ModelSpec& spec = FindModel("lenet");
  auto dp = BuildDataParallel(spec.build, spec.name, spec.strong_batch, 2,
                              Scaling::kStrong);
  const std::vector<DeviceId> placement = CanonicalDataParallelPlacement(dp);
  const Graph graph = std::move(dp.graph);
  const Cluster cluster = Cluster::SingleServer(2);
  CompCostModel comp;
  CommCostModel comm;
  const RunProfile profile = ExtractProfile(
      graph, Simulate(graph, placement, cluster, SimOptions{}));
  comp.AddProfile(profile);
  comm.AddProfile(profile);

  MemTracker::Global().Enable();
  Tracer::Global().Enable();
  const OsDposResult os = OsDpos(graph, cluster, comp, comm);
  EXPECT_GT(os.schedule.ft_exit, 0.0);
  Tracer::Global().Disable();
  MemTracker::Global().Disable();
  const TraceDump dump = Tracer::Global().Drain();

  size_t mem_counters = 0;
  bool saw_total = false;
  for (const TracePoint& p : dump.points) {
    if (!p.is_counter) continue;
    const std::string name = p.name;
    if (name.rfind("mem/", 0) == 0) {
      ++mem_counters;
      if (name == "mem/total/live_bytes") saw_total = true;
      EXPECT_GE(p.value, 0.0);
    }
  }
  EXPECT_GE(mem_counters, 1u);
  EXPECT_TRUE(saw_total);

  // The exported trace carries them as counter ("C") events.
  const std::string json = TraceToChromeJson(dump);
  EXPECT_TRUE(JsonValidate(json));
  EXPECT_NE(json.find("mem/total/live_bytes"), std::string::npos);
}

}  // namespace
}  // namespace fastt
