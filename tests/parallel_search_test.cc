// Differential tests for the parallel strategy search: with any --jobs
// setting, DPOS/OS-DPOS must produce strategies byte-identical (via the
// strategy_io serialization) to the serial jobs=1 reference. The search's
// parallelism is determinism-by-design — per-index result slots plus a
// serial reduction in a fixed order — and these sweeps are the proof.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/os_dpos.h"
#include "core/strategy_calculator.h"
#include "core/strategy_io.h"
#include "models/model_zoo.h"
#include "sim/exec_sim.h"
#include "sim/profiler.h"
#include "util/thread_pool.h"

namespace fastt {
namespace {

// Restores jobs = 1 (the suite-wide default) even when a test fails.
class JobsGuard {
 public:
  ~JobsGuard() { SetSearchJobs(1); }
};

// Cost models fed from one noisy profiled simulation; the seed varies the
// profile, so each seed exercises the search on a different cost surface.
void SeedCostModels(const Graph& g, const Cluster& cluster, uint64_t seed,
                    CompCostModel* comp, CommCostModel* comm) {
  std::vector<DeviceId> placement(static_cast<size_t>(g.num_slots()), 0);
  for (OpId id : g.LiveOps())
    placement[static_cast<size_t>(id)] =
        static_cast<DeviceId>(id % cluster.num_devices());
  SimOptions so;
  so.noise_cv = 0.05;
  so.seed = seed;
  const SimResult sim = Simulate(g, placement, cluster, so);
  const RunProfile profile = ExtractProfile(g, sim);
  comp->AddProfile(profile);
  comm->AddProfile(profile);
}

class ParallelSearchModelSweep : public ::testing::TestWithParam<const char*> {
};

TEST_P(ParallelSearchModelSweep, OsDposIsByteIdenticalAcrossJobs) {
  JobsGuard guard;
  const ModelSpec& spec = FindModel(GetParam());
  const Cluster cluster = Cluster::SingleServer(4);
  const Graph g = BuildSingle(spec, std::min<int64_t>(spec.strong_batch, 16));
  OsDposOptions options;
  options.max_probed_ops = 4;  // differential property is option-independent
  options.max_splits = 2;

  for (uint64_t seed = 1; seed <= 3; ++seed) {
    CompCostModel comp;
    CommCostModel comm;
    SeedCostModels(g, cluster, seed, &comp, &comm);

    SetSearchJobs(1);
    const OsDposResult serial = OsDpos(g, cluster, comp, comm, options);
    const std::string reference =
        SerializeStrategy(serial.schedule.strategy);

    for (int jobs : {2, 8}) {
      SetSearchJobs(jobs);
      const OsDposResult parallel = OsDpos(g, cluster, comp, comm, options);
      EXPECT_EQ(SerializeStrategy(parallel.schedule.strategy), reference)
          << spec.name << " seed " << seed << " jobs " << jobs;
      EXPECT_EQ(parallel.probes, serial.probes)
          << spec.name << " seed " << seed << " jobs " << jobs;
      EXPECT_EQ(parallel.schedule.ft_exit, serial.schedule.ft_exit)
          << spec.name << " seed " << seed << " jobs " << jobs;
    }
    SetSearchJobs(1);
  }
}

INSTANTIATE_TEST_SUITE_P(ModelZoo, ParallelSearchModelSweep,
                         ::testing::Values("lenet", "alexnet", "vgg19",
                                           "inception_v3", "resnet200",
                                           "gnmt", "rnnlm", "transformer",
                                           "bert_large"));

TEST(ParallelSearch, WideClusterIsByteIdenticalAcrossJobs) {
  // 16 devices crosses the per-pop device-scoring parallelism threshold
  // (kMinParallelScoreDevices) that the 4-device sweeps above never reach,
  // so this is the differential coverage for that inner ParallelFor.
  JobsGuard guard;
  const ModelSpec& spec = FindModel("alexnet");
  const Cluster cluster = Cluster::SingleServer(16);
  const Graph g = BuildSingle(spec, 16);
  OsDposOptions options;
  options.max_probed_ops = 4;
  options.max_splits = 2;

  CompCostModel comp;
  CommCostModel comm;
  SeedCostModels(g, cluster, 7, &comp, &comm);

  SetSearchJobs(1);
  const OsDposResult serial = OsDpos(g, cluster, comp, comm, options);
  const std::string reference = SerializeStrategy(serial.schedule.strategy);

  for (int jobs : {2, 8}) {
    SetSearchJobs(jobs);
    const OsDposResult parallel = OsDpos(g, cluster, comp, comm, options);
    EXPECT_EQ(SerializeStrategy(parallel.schedule.strategy), reference)
        << "jobs " << jobs;
    EXPECT_EQ(parallel.schedule.ft_exit, serial.schedule.ft_exit)
        << "jobs " << jobs;
  }
}

TEST(ParallelSearch, FullWorkflowIsByteIdenticalAcrossJobs) {
  // End-to-end: the whole pre-training workflow (profiling rounds, OS-DPOS,
  // commit/rollback decisions) lands on the same strategy and the same
  // measured iteration time regardless of the jobs setting.
  JobsGuard guard;
  const ModelSpec& spec = FindModel("alexnet");
  const Cluster cluster = Cluster::SingleServer(4);
  CalculatorOptions options;
  options.max_rounds = 3;

  SetSearchJobs(1);
  const CalculatorResult serial = RunFastT(
      spec.build, spec.name, 32, Scaling::kStrong, cluster, options);
  SetSearchJobs(8);
  const CalculatorResult parallel = RunFastT(
      spec.build, spec.name, 32, Scaling::kStrong, cluster, options);

  EXPECT_EQ(SerializeStrategy(parallel.strategy),
            SerializeStrategy(serial.strategy));
  EXPECT_EQ(parallel.iteration_s, serial.iteration_s);
  EXPECT_EQ(parallel.rounds, serial.rounds);
  EXPECT_EQ(parallel.activations, serial.activations);
}

}  // namespace
}  // namespace fastt
