// Strategy-verifier tests: every corrupted-strategy fixture must trip its
// named rule (and only error rules flip ok()), and — the property the
// verifier exists to defend — every strategy the real search emits across
// the model zoo must verify clean under the full rule set.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/verifier.h"
#include "core/data_parallel.h"
#include "core/os_dpos.h"
#include "graph/rewrite.h"
#include "models/model_zoo.h"
#include "obs/json.h"
#include "sim/cluster.h"
#include "sim/exec_sim.h"
#include "sim/profiler.h"

namespace fastt {
namespace {

Operation MathOp(const std::string& name, int64_t batch = 32) {
  Operation op;
  op.name = name;
  op.type = OpType::kMatMul;
  op.output_shape = TensorShape{batch, 64};
  op.flops = 1e6;
  op.batch = batch;
  op.channels = 64;
  return op;
}

// input -> w -> matmul -> loss on one chain; placement/order trivially valid.
struct Fixture {
  Graph graph{"fixture"};
  Strategy strategy;
  Cluster cluster = Cluster::SingleServer(2);
  OpId input, weights, matmul, loss;

  Fixture() {
    Operation in;
    in.name = "input";
    in.type = OpType::kInput;
    in.output_shape = TensorShape{32, 64};
    in.batch = 32;
    input = graph.AddOp(in);

    Operation w;
    w.name = "w";
    w.type = OpType::kVariable;
    w.output_shape = TensorShape{64, 64};
    w.param_bytes = 64 * 64 * 4;
    weights = graph.AddOp(w);

    matmul = graph.AddOp(MathOp("matmul"));
    loss = graph.AddOp(MathOp("loss"));
    graph.AddEdge(input, matmul);
    graph.AddEdge(weights, matmul);
    graph.AddEdge(matmul, loss);

    strategy.placement.assign(static_cast<size_t>(graph.num_slots()), 0);
    strategy.execution_order = graph.TopoOrder();
  }

  VerifyResult Verify(const VerifierOptions& options = {}) const {
    return VerifyStrategy(graph, strategy, cluster, nullptr, options);
  }
};

bool HasRule(const VerifyResult& result, const std::string& rule) {
  return std::any_of(result.diagnostics.begin(), result.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule_id == rule; });
}

TEST(Verifier, CleanFixtureVerifies) {
  Fixture f;
  const VerifyResult result = f.Verify();
  EXPECT_TRUE(result.ok()) << RenderDiagnostics(f.graph, result);
  EXPECT_EQ(result.errors, 0);
  EXPECT_EQ(result.warnings, 0);
  // 14, not 15: comm.model is skipped when no comm model is supplied.
  EXPECT_EQ(result.rules_checked, 14);
  EXPECT_EQ(result.first_error_rule(), "");
}

TEST(Verifier, CheapOnlySkipsFullRules) {
  Fixture f;
  VerifierOptions options;
  options.cheap_only = true;
  const VerifyResult result = f.Verify(options);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.rules_checked, 12);
}

// Fixture 1: cycle via an inverted glue edge — concat wired back into the
// split node, exactly the failure a buggy SplitOperation rewrite produces.
TEST(Verifier, CycleViaInvertedGlueEdgeIsNamed) {
  Fixture f;
  const SplitResult split = SplitOperation(f.graph, f.matmul,
                                           SplitDim::kBatch, 2);
  f.graph.AddEdge(split.concat_node, split.split_nodes.front());
  f.strategy.placement.assign(static_cast<size_t>(f.graph.num_slots()), 0);
  // Order cannot be topological on a cyclic graph; keep the old one and
  // assert the acyclicity rule specifically.
  const VerifyResult result = f.Verify();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasRule(result, "graph.acyclic"))
      << RenderDiagnostics(f.graph, result);
}

// Fixture 2: a live op with no device.
TEST(Verifier, MissingPlacementIsNamed) {
  Fixture f;
  f.strategy.placement[static_cast<size_t>(f.matmul)] = kInvalidDevice;
  const VerifyResult result = f.Verify();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.first_error_rule(), "place.total");
}

// Fixture 2b: a placement naming a device the cluster does not have.
TEST(Verifier, InvalidDeviceIdIsNamed) {
  Fixture f;
  f.strategy.placement[static_cast<size_t>(f.loss)] = 7;
  const VerifyResult result = f.Verify();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.first_error_rule(), "place.device");
}

// Fixture 3: priority inversion — consumer ordered before its producer, the
// executor-deadlock precondition.
TEST(Verifier, PriorityInversionIsNamed) {
  Fixture f;
  std::vector<OpId>& order = f.strategy.execution_order;
  const auto producer = std::find(order.begin(), order.end(), f.matmul);
  const auto consumer = std::find(order.begin(), order.end(), f.loss);
  std::iter_swap(producer, consumer);
  const VerifyResult result = f.Verify();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasRule(result, "order.deps"))
      << RenderDiagnostics(f.graph, result);
}

TEST(Verifier, IncompleteOrderIsNamed) {
  Fixture f;
  f.strategy.execution_order.pop_back();
  const VerifyResult result = f.Verify();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasRule(result, "order.complete"));
}

TEST(Verifier, DuplicateOrderEntryIsNamed) {
  Fixture f;
  f.strategy.execution_order.push_back(f.strategy.execution_order.front());
  const VerifyResult result = f.Verify();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasRule(result, "order.complete"));
}

// Fixture 4: a placement whose static parameters alone exceed the device.
TEST(Verifier, OverMemoryPlacementIsNamed) {
  Fixture f;
  const int64_t usable = f.cluster.device(0).usable_bytes();
  f.graph.mutable_op(f.weights).param_bytes = usable + (int64_t{1} << 30);
  const VerifyResult result = f.Verify();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasRule(result, "mem.capacity"))
      << RenderDiagnostics(f.graph, result);
  // The cheap pass must NOT pay for the memory walk.
  VerifierOptions cheap;
  cheap.cheap_only = true;
  EXPECT_TRUE(f.Verify(cheap).ok());
}

TEST(Verifier, NearCapacityPlacementWarnsButPasses) {
  Fixture f;
  const int64_t usable = f.cluster.device(0).usable_bytes();
  f.graph.mutable_op(f.weights).param_bytes =
      static_cast<int64_t>(0.95 * static_cast<double>(usable));
  const VerifyResult result = f.Verify();
  EXPECT_TRUE(result.ok());
  EXPECT_GE(result.warnings, 1);
  EXPECT_TRUE(HasRule(result, "mem.headroom"));
}

// Fixture 5: dangling split node — the rewrite's fan-out edge got lost.
TEST(Verifier, DanglingSplitNodeIsNamed) {
  Fixture f;
  const SplitResult split = SplitOperation(f.graph, f.matmul,
                                           SplitDim::kBatch, 2);
  // Tombstone the split node's single producing edge.
  for (EdgeId e : f.graph.in_edges(split.split_nodes.front()))
    f.graph.RemoveEdge(e);
  f.strategy.placement.assign(static_cast<size_t>(f.graph.num_slots()), 0);
  f.strategy.execution_order = f.graph.TopoOrder();
  const VerifyResult result = f.Verify();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasRule(result, "graph.glue.split"))
      << RenderDiagnostics(f.graph, result);
}

TEST(Verifier, SplitDecisionNamingUnknownOpIsNamed) {
  Fixture f;
  SplitDecision decision;
  decision.op_name = "no_such_op";
  decision.dim = SplitDim::kBatch;
  decision.num_splits = 2;
  f.strategy.splits.push_back(decision);
  const VerifyResult result = f.Verify();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasRule(result, "strategy.split.op"));
}

TEST(Verifier, SubOpExtentMismatchIsNamed) {
  Fixture f;
  SplitOperation(f.graph, f.matmul, SplitDim::kBatch, 2);
  SplitDecision decision;
  decision.op_name = "matmul";
  decision.dim = SplitDim::kBatch;
  decision.num_splits = 2;
  f.strategy.splits.push_back(decision);
  f.strategy.placement.assign(static_cast<size_t>(f.graph.num_slots()), 0);
  f.strategy.execution_order = f.graph.TopoOrder();
  EXPECT_TRUE(f.Verify().ok());  // intact split verifies
  // Corrupt one sub-op's extent: parts no longer tile the parent batch.
  const OpId part = f.graph.FindOp("matmul/part0");
  ASSERT_NE(part, kInvalidOp);
  f.graph.mutable_op(part).batch += 5;
  const VerifyResult result = f.Verify();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(HasRule(result, "strategy.split.shape"))
      << RenderDiagnostics(f.graph, result);
}

TEST(Verifier, ColocationViolationIsNamed) {
  Fixture f;
  f.graph.mutable_op(f.matmul).colocate_with = f.weights;
  f.strategy.placement[static_cast<size_t>(f.matmul)] = 1;
  const VerifyResult result = f.Verify();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.first_error_rule(), "place.colocate");
}

TEST(Verifier, UnknownCommPairWarnsOnly) {
  Fixture f;
  f.strategy.placement[static_cast<size_t>(f.loss)] = 1;  // cross-device edge
  CommCostModel comm;
  comm.AddSample(1, 0, 1 << 20, 1e-4);  // knows (1,0) but not (0,1)
  comm.AddSample(1, 0, 64 << 20, 2e-3);
  const VerifyResult result =
      VerifyStrategy(f.graph, f.strategy, f.cluster, &comm, {});
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(HasRule(result, "comm.model"))
      << RenderDiagnostics(f.graph, result);
}

TEST(Verifier, PerRuleCapSummarizesSuppressedFindings) {
  Fixture f;
  VerifierOptions options;
  options.max_per_rule = 1;
  f.strategy.placement.assign(static_cast<size_t>(f.graph.num_slots()),
                              kInvalidDevice);
  const VerifyResult result = f.Verify(options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.errors, f.graph.num_live_ops());  // one per unplaced op
  int place_total_diags = 0;
  for (const Diagnostic& d : result.diagnostics)
    if (d.rule_id == "place.total") ++place_total_diags;
  EXPECT_EQ(place_total_diags, 2);  // 1 verbatim + 1 suppression summary
}

TEST(Verifier, RenderAndJsonAgreeOnCounts) {
  Fixture f;
  f.strategy.placement[static_cast<size_t>(f.matmul)] = kInvalidDevice;
  const VerifyResult result = f.Verify();
  const std::string text = RenderDiagnostics(f.graph, result);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("place.total"), std::string::npos);

  const std::string json = DiagnosticsToJson(f.graph, result);
  std::string error;
  ASSERT_TRUE(JsonValidate(json, &error)) << error;
  JsonValue doc;
  ASSERT_TRUE(JsonParse(json, &doc, &error)) << error;
  EXPECT_EQ(doc.Find("fastt_verify")->IntOr(0), 1);
  EXPECT_EQ(doc.Find("graph")->StringOr(""), "fixture");
  EXPECT_EQ(doc.Find("errors")->IntOr(-1), result.errors);
  EXPECT_EQ(doc.Find("ok")->kind, JsonValue::Kind::kBool);
  EXPECT_FALSE(doc.Find("ok")->bool_v);
  const JsonValue* diags = doc.Find("diagnostics");
  ASSERT_NE(diags, nullptr);
  ASSERT_TRUE(diags->is_array());
  ASSERT_FALSE(diags->items.empty());
  const JsonValue& first = diags->items.front();
  EXPECT_EQ(first.Find("rule_id")->StringOr(""), "place.total");
  EXPECT_EQ(first.Find("severity")->StringOr(""), "error");
  EXPECT_EQ(first.Find("op_name")->StringOr(""), "matmul");
  EXPECT_FALSE(first.Find("fix_hint")->StringOr("").empty());
}

// The property the verifier defends: every strategy the real search emits —
// bootstrap profile, then OS-DPOS with its split rewrites — must verify
// clean under the FULL rule set, for every model in the zoo, on both a
// single-server and a two-server cluster.
TEST(VerifierProperty, EveryZooOsDposStrategyVerifiesClean) {
  const Cluster clusters[] = {Cluster::SingleServer(2),
                              Cluster::MultiServer(2, 2)};
  for (const Cluster& cluster : clusters) {
    for (const ModelSpec& spec : ModelZoo()) {
      DataParallelGraph dp =
          BuildDataParallel(spec.build, spec.name, spec.strong_batch,
                            cluster.num_devices(), Scaling::kStrong);
      const std::vector<DeviceId> placement =
          CanonicalDataParallelPlacement(dp);
      SimOptions so;
      so.noise_cv = 0.03;
      so.seed = 13;
      const RunProfile profile = ExtractProfile(
          dp.graph, Simulate(dp.graph, placement, cluster, so));
      CompCostModel comp;
      CommCostModel comm;
      comp.AddProfile(profile);
      comm.AddProfile(profile);

      OsDposResult os = OsDpos(dp.graph, cluster, comp, comm);
      Strategy strategy = os.schedule.strategy;
      strategy.splits = os.splits;
      const VerifyResult result =
          VerifyStrategy(os.graph, strategy, cluster, &comm, {});
      EXPECT_EQ(result.errors, 0)
          << spec.name << " on " << cluster.ToString() << ":\n"
          << RenderDiagnostics(os.graph, result);
    }
  }
}

}  // namespace
}  // namespace fastt
