#include <gtest/gtest.h>

#include <algorithm>

#include "core/dpos.h"
#include "core/rank.h"
#include "core/timeline.h"
#include "util/rng.h"
#include "util/strings.h"

namespace fastt {
namespace {

TEST(Timeline, AppendsAfterLastInterval) {
  DeviceTimeline t;
  EXPECT_DOUBLE_EQ(t.EarliestSlot(0.0, 1.0), 0.0);
  t.Commit(0.0, 1.0, 0);
  EXPECT_DOUBLE_EQ(t.EarliestSlot(0.0, 1.0), 1.0);
  t.Commit(1.0, 1.0, 1);
  EXPECT_DOUBLE_EQ(t.LastEnd(), 2.0);
  EXPECT_DOUBLE_EQ(t.BusyTime(), 2.0);
}

TEST(Timeline, InsertsIntoGap) {
  DeviceTimeline t;
  t.Commit(0.0, 1.0, 0);
  t.Commit(5.0, 1.0, 1);
  // A 2s op fits in the [1, 5] gap.
  EXPECT_DOUBLE_EQ(t.EarliestSlot(0.5, 2.0), 1.0);
  t.Commit(1.0, 2.0, 2);
  // The remaining gap is [3, 5]; a 3s op must go after everything.
  EXPECT_DOUBLE_EQ(t.EarliestSlot(0.0, 3.0), 6.0);
}

TEST(Timeline, RespectsReadyTime) {
  DeviceTimeline t;
  t.Commit(0.0, 1.0, 0);
  EXPECT_DOUBLE_EQ(t.EarliestSlot(10.0, 1.0), 10.0);
}

TEST(Timeline, ZeroDurationOpsShareTimestamps) {
  DeviceTimeline t;
  t.Commit(0.0, 1.0, 0);
  const double slot = t.EarliestSlot(0.5, 0.0);
  EXPECT_DOUBLE_EQ(slot, 1.0);
  EXPECT_NO_THROW(t.Commit(slot, 0.0, 1));
  EXPECT_NO_THROW(t.Commit(slot, 0.0, 2));  // stacking zero-width is fine
  EXPECT_NO_THROW(t.Commit(1.0, 2.0, 3));   // real op at the same start
}

TEST(Timeline, OverlapRejected) {
  DeviceTimeline t;
  t.Commit(0.0, 2.0, 0);
  EXPECT_THROW(t.Commit(1.0, 1.0, 1), std::logic_error);
  EXPECT_THROW(t.Commit(-0.5, 1.0, 2), std::logic_error);
}

TEST(Timeline, PropertyRandomCommitsNeverOverlap) {
  Rng rng(99);
  DeviceTimeline t;
  struct Iv {
    double s, e;
  };
  std::vector<Iv> committed;
  for (int i = 0; i < 200; ++i) {
    const double ready = rng.NextDouble(0.0, 50.0);
    const double dur = rng.NextDouble(0.0, 3.0);
    const double start = t.EarliestSlot(ready, dur);
    EXPECT_GE(start, ready);
    ASSERT_NO_THROW(t.Commit(start, dur, i));
    for (const Iv& iv : committed) {
      const bool overlap = start < iv.e - 1e-9 && iv.s < start + dur - 1e-9;
      EXPECT_FALSE(overlap) << "interval " << i;
    }
    if (dur > 0) committed.push_back({start, start + dur});
  }
}

// ---- rank_u -----------------------------------------------------------------

Operation NamedOp(const std::string& name, TensorShape shape = TensorShape{4}) {
  Operation op;
  op.name = name;
  op.cost_key = name;
  op.type = OpType::kMatMul;
  op.output_shape = std::move(shape);
  return op;
}

TEST(Rank, MatchesHandComputation) {
  // a -> b -> c, w = {3, 2, 1} on one device, edge cost 10 per hop.
  Graph g;
  const OpId a = g.AddOp(NamedOp("a"));
  const OpId b = g.AddOp(NamedOp("b"));
  const OpId c = g.AddOp(NamedOp("c"));
  g.AddEdge(a, b, 100);
  g.AddEdge(b, c, 100);
  CompCostModel comp;
  comp.AddSample("a", 0, 3.0);
  comp.AddSample("b", 0, 2.0);
  comp.AddSample("c", 0, 1.0);
  CommCostModel comm;
  comm.AddSample(0, 1, 0, 10.0);
  comm.AddSample(0, 1, 100, 10.0);  // constant 10 regardless of size

  const auto rank = ComputeRankU(g, comp, comm, 2);
  EXPECT_DOUBLE_EQ(rank[static_cast<size_t>(c)], 1.0);
  EXPECT_DOUBLE_EQ(rank[static_cast<size_t>(b)], 2.0 + 10.0 + 1.0);
  EXPECT_DOUBLE_EQ(rank[static_cast<size_t>(a)], 3.0 + 10.0 + 13.0);
}

TEST(Rank, UsesMaxOverDevices) {
  Graph g;
  const OpId a = g.AddOp(NamedOp("a"));
  CompCostModel comp;
  comp.AddSample("a", 0, 1.0);
  comp.AddSample("a", 1, 9.0);  // slower device dominates w_i
  CommCostModel comm;
  const auto rank = ComputeRankU(g, comp, comm, 2);
  EXPECT_DOUBLE_EQ(rank[static_cast<size_t>(a)], 9.0);
}

TEST(Rank, CriticalPathFollowsLargestRank) {
  // diamond: a -> {heavy, light} -> exit; CP must route through heavy.
  Graph g;
  const OpId a = g.AddOp(NamedOp("a"));
  const OpId heavy = g.AddOp(NamedOp("heavy"));
  const OpId light = g.AddOp(NamedOp("light"));
  const OpId exit_op = g.AddOp(NamedOp("exit"));
  g.AddEdge(a, heavy, 0);
  g.AddEdge(a, light, 0);
  g.AddEdge(heavy, exit_op, 0);
  g.AddEdge(light, exit_op, 0);
  CompCostModel comp;
  comp.AddSample("a", 0, 1.0);
  comp.AddSample("heavy", 0, 50.0);
  comp.AddSample("light", 0, 1.0);
  comp.AddSample("exit", 0, 1.0);
  CommCostModel comm;
  const auto rank = ComputeRankU(g, comp, comm, 1);
  const auto cp = CriticalPathByRank(g, rank);
  EXPECT_EQ(cp, (std::vector<OpId>{a, heavy, exit_op}));
}

// ---- DPOS --------------------------------------------------------------------

struct CostedChain {
  Graph g;
  CompCostModel comp;
  CommCostModel comm;
  std::vector<OpId> ops;

  // `n` ops in a chain, each costing `w` seconds on every device.
  CostedChain(int n, double w, int devices, int64_t edge_bytes = 64) {
    OpId prev = kInvalidOp;
    for (int i = 0; i < n; ++i) {
      const OpId id = g.AddOp(NamedOp("op" + std::to_string(i)));
      for (DeviceId d = 0; d < devices; ++d)
        comp.AddSample("op" + std::to_string(i), d, w);
      if (prev != kInvalidOp) g.AddEdge(prev, id, edge_bytes);
      ops.push_back(id);
      prev = id;
    }
    for (DeviceId i = 0; i < devices; ++i)
      for (DeviceId j = 0; j < devices; ++j)
        if (i != j) {
          comm.AddSample(i, j, 0, 1e-5);
          comm.AddSample(i, j, 1 << 20, 1e-5 + 1e-4);
        }
  }
};

TEST(Dpos, PlacesEveryOp) {
  CostedChain chain(10, 0.001, 2);
  const Cluster c = Cluster::SingleServer(2);
  const DposResult r = Dpos(chain.g, c, chain.comp, chain.comm);
  for (OpId id : chain.g.LiveOps())
    EXPECT_NE(r.strategy.placement[static_cast<size_t>(id)], kInvalidDevice);
  EXPECT_EQ(r.strategy.execution_order.size(),
            static_cast<size_t>(chain.g.num_live_ops()));
}

TEST(Dpos, ChainStaysOnOneDeviceWhenCommCostly) {
  CostedChain chain(8, 0.001, 2);
  const Cluster c = Cluster::SingleServer(2);
  const DposResult r = Dpos(chain.g, c, chain.comp, chain.comm);
  const DeviceId first =
      r.strategy.placement[static_cast<size_t>(chain.ops[0])];
  for (OpId id : chain.ops)
    EXPECT_EQ(r.strategy.placement[static_cast<size_t>(id)], first);
  // Chain of 8 x 1ms = 8 ms end to end.
  EXPECT_NEAR(r.ft_exit, 0.008, 1e-6);
}

TEST(Dpos, IndependentBranchesUseBothDevices) {
  Graph g;
  CompCostModel comp;
  CommCostModel comm;
  // Two independent chains of 4 ops.
  for (int b = 0; b < 2; ++b) {
    OpId prev = kInvalidOp;
    for (int i = 0; i < 4; ++i) {
      const std::string name = StrFormat("b%d_%d", b, i);
      const OpId id = g.AddOp(NamedOp(name));
      comp.AddSample(name, 0, 0.001);
      comp.AddSample(name, 1, 0.001);
      if (prev != kInvalidOp) g.AddEdge(prev, id, 64);
      prev = id;
    }
  }
  comm.AddSample(0, 1, 0, 1e-5);
  comm.AddSample(0, 1, 1 << 20, 1e-4);
  comm.AddSample(1, 0, 0, 1e-5);
  comm.AddSample(1, 0, 1 << 20, 1e-4);
  const DposResult r = Dpos(g, Cluster::SingleServer(2), comp, comm);
  // Both chains in parallel: makespan ~4 ms, not 8 ms.
  EXPECT_LT(r.ft_exit, 0.0055);
}

TEST(Dpos, HonorsColocation) {
  CostedChain chain(4, 0.001, 2);
  Operation apply;
  apply.name = "apply";
  apply.type = OpType::kApplyGradient;
  apply.output_shape = TensorShape{0};
  apply.colocate_with = chain.ops[1];
  const OpId apply_id = chain.g.AddOp(std::move(apply));
  chain.g.AddEdge(chain.ops.back(), apply_id, 64);
  const DposResult r = Dpos(chain.g, Cluster::SingleServer(2), chain.comp,
                            chain.comm);
  EXPECT_EQ(r.strategy.placement[static_cast<size_t>(apply_id)],
            r.strategy.placement[static_cast<size_t>(chain.ops[1])]);
}

TEST(Dpos, MemoryInfeasibleDeviceAvoided) {
  CostedChain chain(2, 0.001, 2);
  // A huge op that only fits on one device once another big op sits there.
  Operation big;
  big.name = "big";
  big.cost_key = "big";
  big.type = OpType::kMatMul;
  big.output_shape = TensorShape{4};
  big.param_bytes = int64_t{6} * 1024 * 1024 * 1024;
  const OpId big_id = chain.g.AddOp(std::move(big));
  Operation big2;
  big2.name = "big2";
  big2.cost_key = "big2";
  big2.type = OpType::kMatMul;
  big2.output_shape = TensorShape{4};
  big2.param_bytes = int64_t{6} * 1024 * 1024 * 1024;
  const OpId big2_id = chain.g.AddOp(std::move(big2));
  for (DeviceId d = 0; d < 2; ++d) {
    chain.comp.AddSample("big", d, 0.001);
    chain.comp.AddSample("big2", d, 0.001);
  }
  const Cluster c = Cluster::SingleServer(2);
  const DposResult r = Dpos(chain.g, c, chain.comp, chain.comm);
  // 6 GB + 6 GB exceeds one device's planned budget: they must separate.
  EXPECT_NE(r.strategy.placement[static_cast<size_t>(big_id)],
            r.strategy.placement[static_cast<size_t>(big2_id)]);
  EXPECT_FALSE(r.memory_overflow);
}

TEST(Dpos, ExecutionOrderSortedByStartTime) {
  CostedChain chain(10, 0.001, 2);
  const DposResult r = Dpos(chain.g, Cluster::SingleServer(2), chain.comp,
                            chain.comm);
  for (size_t i = 1; i < r.strategy.execution_order.size(); ++i) {
    const OpId prev = r.strategy.execution_order[i - 1];
    const OpId cur = r.strategy.execution_order[i];
    EXPECT_LE(r.start_time[static_cast<size_t>(prev)],
              r.start_time[static_cast<size_t>(cur)]);
  }
}

TEST(Dpos, RealizedCriticalPathEndsAtLatestOp) {
  CostedChain chain(6, 0.002, 2);
  const DposResult r = Dpos(chain.g, Cluster::SingleServer(2), chain.comp,
                            chain.comm);
  const auto cp = RealizedCriticalPath(chain.g, r, chain.comm);
  ASSERT_FALSE(cp.empty());
  EXPECT_EQ(cp.back(), chain.ops.back());
  EXPECT_EQ(cp.front(), chain.ops.front());
}

TEST(Dpos, SingleDeviceDegenerates) {
  CostedChain chain(5, 0.001, 1);
  const DposResult r = Dpos(chain.g, Cluster::SingleServer(1), chain.comp,
                            chain.comm);
  EXPECT_NEAR(r.ft_exit, 0.005, 1e-9);
}

// Theorem 1 property check: ω_DPOS <= 2·ω_opt + C_max, with ω_opt lower-
// bounded by max(total_work / |D|, longest compute chain) and C_max the
// maximal total transmission time along any chain.
class DposBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DposBoundSweep, RespectsTheoremOneBound) {
  Rng rng(GetParam());
  const int n_ops = 20 + static_cast<int>(rng.NextBelow(60));
  const int n_dev = 2 + static_cast<int>(rng.NextBelow(3));
  Graph g;
  CompCostModel comp;
  CommCostModel comm;
  std::vector<OpId> ids;
  for (int i = 0; i < n_ops; ++i) {
    const std::string name = "op" + std::to_string(i);
    const OpId id = g.AddOp(NamedOp(name));
    const double w = rng.NextDouble(1e-4, 5e-3);
    for (DeviceId d = 0; d < n_dev; ++d) comp.AddSample(name, d, w);
    // Random edges from up to 2 earlier ops.
    for (int k = 0; k < 2; ++k) {
      if (!ids.empty() && rng.NextBool(0.7)) {
        const OpId src = ids[rng.NextBelow(ids.size())];
        g.AddEdge(src, id, static_cast<int64_t>(rng.NextBelow(1 << 22)));
      }
    }
    ids.push_back(id);
  }
  for (DeviceId i = 0; i < n_dev; ++i)
    for (DeviceId j = 0; j < n_dev; ++j)
      if (i != j) {
        comm.AddSample(i, j, 0, 1e-5);
        comm.AddSample(i, j, 1 << 22, 1e-5 + (1 << 22) / 9e9);
      }

  const Cluster c = Cluster::SingleServer(n_dev);
  const DposResult r = Dpos(g, c, comp, comm);

  double total_work = 0.0;
  for (OpId id : g.LiveOps())
    total_work += comp.EstimateOrExplore(g.op(id), 0);
  const auto compute_chain = g.LongestPathFromExit(
      [&](const Operation& op) { return comp.EstimateOrExplore(op, 0); },
      [](const Edge&) { return 0.0; });
  const auto comm_chain = g.LongestPathFromExit(
      [](const Operation&) { return 0.0; },
      [&](const Edge& e) { return comm.MaxOverPairs(e.bytes); });
  double lb = total_work / n_dev, cmax = 0.0;
  for (OpId id : g.LiveOps()) {
    lb = std::max(lb, compute_chain[static_cast<size_t>(id)]);
    cmax = std::max(cmax, comm_chain[static_cast<size_t>(id)]);
  }
  EXPECT_LE(r.ft_exit, 2.0 * lb + cmax + 1e-9)
      << "ops=" << n_ops << " devices=" << n_dev;
}

INSTANTIATE_TEST_SUITE_P(RandomDags, DposBoundSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

}  // namespace
}  // namespace fastt
